// Package agilepower reproduces "Agile, efficient virtualization power
// management with low-latency server power states" (Isci et al., ISCA
// 2013): an end-to-end power-aware virtualization manager that
// consolidates VMs via live migration and parks idle servers in
// low-latency sleep states (ACPI S3), evaluated against traditional
// soft-off (S5) management, plain load-balancing DRM, and static
// provisioning over a calibrated datacenter simulation.
//
// The quickest way in is a Scenario:
//
//	sc := agilepower.Scenario{
//		Hosts: 8, HostCores: 16, HostMemoryGB: 64,
//		VMs:     agilepower.DiurnalFleet(32, 1),
//		Horizon: 24 * time.Hour,
//		Manager: agilepower.ManagerConfig{Policy: agilepower.DPMS3},
//	}
//	res, err := sc.Run()
//
// Result carries energy, SLA, action counts and the time series needed
// to regenerate the paper's figures.
package agilepower

import (
	"context"
	"fmt"
	"time"

	"agilepower/internal/chaos"
	"agilepower/internal/core"
	"agilepower/internal/ctrlplane"
	"agilepower/internal/events"
	"agilepower/internal/faults"
	"agilepower/internal/migrate"
	"agilepower/internal/parallel"
	"agilepower/internal/power"
	"agilepower/internal/script"
	"agilepower/internal/telemetry"
	"agilepower/internal/workload"
)

// Re-exported types so library users never import internal packages.
type (
	// Profile is a server power calibration (states, latencies, curve).
	Profile = power.Profile
	// StateSpec describes one sleep state of a platform.
	StateSpec = power.StateSpec
	// State is a platform power state (S0, S3, S5).
	State = power.State
	// Watts is electrical power.
	Watts = power.Watts
	// Joules is energy.
	Joules = power.Joules
	// Policy selects the management behaviour to run.
	Policy = core.Policy
	// ManagerConfig tunes the control loop.
	ManagerConfig = core.Config
	// ForecastSpec selects the demand predictor.
	ForecastSpec = core.ForecastSpec
	// IncrementalMode selects incremental vs full-scan manager
	// planning (byte-identical results; a wall-clock knob).
	IncrementalMode = core.IncrementalMode
	// Oracle computes analytic lower bounds.
	Oracle = core.Oracle
	// MigrationModel parameterizes pre-copy live migration.
	MigrationModel = migrate.Model
	// Facility models datacenter infrastructure overhead (PUE).
	Facility = power.Facility
	// ManagerStats are controller action counters.
	ManagerStats = core.Stats
	// MigrationStats are migration counters.
	MigrationStats = migrate.Stats
	// Trace is a CPU demand trace.
	Trace = workload.Trace
	// Series is a recorded time series.
	Series = telemetry.Series
	// SLATracker scores delivered versus demanded CPU.
	SLATracker = telemetry.SLATracker
	// Event is one audit record (placement, migration, power action).
	Event = events.Event
	// EventLog is the bounded audit trail of a run.
	EventLog = events.Log
	// FaultConfig selects injected faults (failed/slow transitions,
	// migration aborts and stalls, transient host crashes). The zero
	// value is fully dormant: runs are byte-identical to fault-unaware
	// builds.
	FaultConfig = faults.Config
	// CtrlPlaneConfig parameterizes the imperfect management network
	// between manager and hosts (telemetry delay and loss, lossy
	// retried commands, heartbeat liveness). The zero value is fully
	// dormant: runs are byte-identical to plane-unaware builds.
	CtrlPlaneConfig = ctrlplane.Config
	// ScriptEvent is one timed action in a scenario's event script
	// (crash, maintenance, power-cap, demand-surge, fault retune,
	// control-plane degradation). An empty script schedules nothing:
	// runs are byte-identical to script-unaware builds.
	ScriptEvent = script.Event
	// AssertSpec is one predicate a scenario run must satisfy,
	// checked continuously against evaluation ticks or once against
	// the final Result.
	AssertSpec = script.Assertion
	// ChaosParams parameterizes one named chaos pattern (see
	// ChaosPatterns and Scenario.WithChaos).
	ChaosParams = chaos.Params
)

// Script actions and assertion kinds, re-exported so scenario literals
// never import internal packages.
const (
	ActionCrash          = script.ActionCrash
	ActionMaintenance    = script.ActionMaintenance
	ActionMaintenanceEnd = script.ActionMaintenanceEnd
	ActionPowerCap       = script.ActionPowerCap
	ActionDemandSurge    = script.ActionDemandSurge
	ActionFaultRate      = script.ActionFaultRate
	ActionWakeFail       = script.ActionWakeFail
	ActionCtrlDegrade    = script.ActionCtrlDegrade
	ActionCtrlPartition  = script.ActionCtrlPartition

	AssertNoStrandedVM    = script.KindNoStrandedVM
	AssertPowerBelow      = script.KindPowerBelow
	AssertNoPendingVM     = script.KindNoPendingVM
	AssertActiveHostsMin  = script.KindActiveHostsMin
	AssertSLAViolationMax = script.KindSLAViolationMax
	AssertSatisfactionMin = script.KindSatisfactionMin
	AssertEnergyBelow     = script.KindEnergyBelow
)

// Chaos pattern names (see internal/chaos for semantics).
const (
	ChaosCascadingFailure = chaos.CascadingFailure
	ChaosAZOutage         = chaos.AZOutage
	ChaosThermalEmergency = chaos.ThermalEmergency
	ChaosFlakyResume      = chaos.FlakyResume
	ChaosControlPartition = chaos.ControlPartition
)

// ChaosPatterns lists every named chaos pattern, in stable order.
func ChaosPatterns() []string { return chaos.Patterns() }

// Power states.
const (
	S0 = power.S0
	S3 = power.S3
	S5 = power.S5
)

// Preset policies (see internal/core for semantics).
var (
	Static   = core.Static
	NoPM     = core.NoPM
	DPMS5    = core.DPMS5
	DPMS3    = core.DPMS3
	DVFSOnly = core.DVFSOnly
)

// Forecast kinds.
const (
	ForecastDefault    = core.ForecastDefault
	ForecastLastValue  = core.ForecastLastValue
	ForecastEWMA       = core.ForecastEWMA
	ForecastPeakWindow = core.ForecastPeakWindow
)

// Incremental-planning modes (ManagerConfig.Incremental).
const (
	IncrementalDefault = core.IncrementalDefault
	IncrementalOn      = core.IncrementalOn
	IncrementalOff     = core.IncrementalOff
)

// Policies returns the standard comparison set (Static, NoPM, DPM-S5,
// DPM-S3).
func Policies() []Policy { return core.Policies() }

// DefaultProfile returns the calibrated 2-socket enterprise server
// model documented in DESIGN.md.
func DefaultProfile() *Profile { return power.DefaultProfile() }

// DefaultMigrationModel returns the 10 GbE pre-copy calibration.
func DefaultMigrationModel() MigrationModel { return migrate.DefaultModel() }

// DefaultFacility returns the mid-efficiency datacenter overhead model.
func DefaultFacility() Facility { return power.DefaultFacility() }

// FaultPreset returns the standard fault mix at intensity rate ∈
// [0, 1] (0 = dormant) — the knob the robustness experiment sweeps.
func FaultPreset(rate float64) FaultConfig { return faults.Preset(rate) }

// CtrlPreset returns the standard degraded-management-network mix for
// a mean one-way delay and per-leg loss probability (both zero =
// dormant) — the two knobs the ctrlplane experiment sweeps.
func CtrlPreset(delay time.Duration, loss float64) CtrlPlaneConfig {
	return ctrlplane.Preset(delay, loss)
}

// HostClass describes one group of identical hosts in a heterogeneous
// fleet.
type HostClass struct {
	// Count is how many hosts of this class to create.
	Count int
	// Cores and MemoryGB size each host (defaults 16 / 256).
	Cores    float64
	MemoryGB float64
	// Profile is the class's power calibration (default
	// DefaultProfile).
	Profile *Profile
}

// VMSpec describes one VM in a scenario.
type VMSpec struct {
	Name     string
	VCPUs    float64
	MemoryGB float64
	Trace    *Trace
	// SLOTarget defaults to 0.95.
	SLOTarget float64
	// Shares weight the VM's claim under host contention (default
	// 1000), hypervisor-style.
	Shares int
	// Group is an optional anti-affinity group: VMs sharing a
	// non-empty group (replicas of one service) are never co-located,
	// the availability constraint that caps consolidation.
	Group string
	// ReservedCores guarantees a CPU minimum under contention.
	ReservedCores float64
	// LimitCores caps delivered CPU below VCPUs (0 = uncapped).
	LimitCores float64
}

// Scenario is a declarative experiment: a fleet, a workload, a policy,
// and a horizon.
type Scenario struct {
	// Name labels the run in reports.
	Name string
	// Hosts is the fleet size (required).
	Hosts int
	// HostCores and HostMemoryGB size each host (defaults 16 cores /
	// 256 GB — consolidation-grade virtualization hosts carry far more
	// memory per core than compute nodes, and memory is the packing
	// constraint that would otherwise cap consolidation).
	HostCores    float64
	HostMemoryGB float64
	// Profile is the per-host power calibration (default
	// DefaultProfile).
	Profile *Profile
	// HostClasses, when non-empty, builds a heterogeneous fleet and
	// overrides Hosts/HostCores/HostMemoryGB/Profile. The analytic
	// Oracle helpers assume a homogeneous fleet and use the
	// class-weighted mean core count when classes are present.
	HostClasses []HostClass
	// VMs is the workload (required).
	VMs []VMSpec
	// Horizon is the simulated duration (default 24h).
	Horizon time.Duration
	// Manager tunes the control loop and selects the policy.
	Manager ManagerConfig
	// Migration overrides the live-migration model.
	Migration *MigrationModel
	// Churn adds dynamic VM arrivals and departures (nil = static
	// population).
	Churn *ChurnSpec
	// EvalStep is the demand evaluation period (default 1 minute).
	EvalStep time.Duration
	// Shards partitions each evaluation tick's per-host work into this
	// many fixed, ID-contiguous host ranges run concurrently inside the
	// simulation (clamped to the fleet size; 0 or 1 keeps the serial
	// loop). Purely a wall-clock knob for datacenter-scale fleets:
	// results are byte-identical for every value.
	Shards int
	// EvalWorkers bounds the goroutines serving shards (<= 0 means
	// min(Shards, GOMAXPROCS)). Like Shards, invisible in results.
	EvalWorkers int
	// Delta switches the evaluation tick from a full per-host scan to
	// event-driven delta evaluation: only hosts whose inputs changed
	// since the last tick (demand edge, placement, migration, power
	// transition, DVFS move) are re-evaluated, and quiescent hosts'
	// energy integrates analytically. Purely a wall-clock knob like
	// Shards: results are byte-identical with it on or off.
	Delta bool
	// TelemetryCap, when positive, bounds each recorded time series
	// (power, demand, delivered, active hosts) to at most this many
	// stored samples via deterministic bucket folding — memory stays
	// O(cap) for any horizon. 0 stores every evaluation step.
	TelemetryCap int
	// Seed drives all simulation randomness (default 1).
	Seed uint64
	// ColdWorld disables the snapshot/fork world reuse in the grid
	// runners (RunPolicies, RunReplicated, the experiment grids): every
	// cell rebuilds its world from scratch via Start instead of forking
	// a shared Prototype. Purely a debugging escape hatch — results are
	// byte-identical either way, forking is just faster.
	ColdWorld bool
	// Faults, when non-nil and enabled, injects transition failures,
	// migration aborts/stalls, and transient host crashes, all drawn
	// from a substream of Seed. Nil (or a dormant config) leaves the
	// simulation byte-identical to a fault-free build.
	Faults *FaultConfig
	// CtrlPlane, when non-nil and enabled, interposes an imperfect
	// message layer between manager and cluster: delayed/lossy
	// telemetry, retried commands, heartbeat liveness. Nil (or a
	// dormant config) leaves the simulation byte-identical to a
	// plane-free build.
	CtrlPlane *CtrlPlaneConfig
	// Script is the scenario's timed event script: crashes, drains,
	// power caps, demand surges, fault retunes, control-plane
	// degradation windows, each compiled to one engine event at Start.
	// Empty leaves the run byte-identical to a script-free build.
	// Events that retune faults require Faults to be enabled; events
	// that impair the plane require CtrlPlane to be enabled.
	Script []ScriptEvent
	// Asserts are predicates the run must satisfy; violations land in
	// Result.Assertions (and drive nonzero CLI exits) without stopping
	// the run. Empty adds no checks and changes no bytes.
	Asserts []AssertSpec
}

func (s Scenario) withDefaults() Scenario {
	if s.HostCores == 0 {
		s.HostCores = 16
	}
	if s.HostMemoryGB == 0 {
		s.HostMemoryGB = 256
	}
	if s.Horizon == 0 {
		s.Horizon = 24 * time.Hour
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Validate checks the scenario.
func (s Scenario) Validate() error {
	s = s.withDefaults()
	if s.Hosts <= 0 && len(s.HostClasses) == 0 {
		return fmt.Errorf("agilepower: scenario needs hosts > 0 or host classes")
	}
	for i, hc := range s.HostClasses {
		if hc.Count <= 0 {
			return fmt.Errorf("agilepower: host class %d has count %d", i, hc.Count)
		}
	}
	if len(s.VMs) == 0 {
		return fmt.Errorf("agilepower: scenario needs at least one VM")
	}
	for i, v := range s.VMs {
		if v.Trace == nil {
			return fmt.Errorf("agilepower: vm %d (%s) has no trace", i, v.Name)
		}
	}
	if s.Shards < 0 {
		return fmt.Errorf("agilepower: negative shards %d", s.Shards)
	}
	if s.EvalWorkers < 0 {
		return fmt.Errorf("agilepower: negative eval workers %d", s.EvalWorkers)
	}
	if s.TelemetryCap < 0 {
		return fmt.Errorf("agilepower: negative telemetry cap %d", s.TelemetryCap)
	}
	if s.Churn != nil {
		if err := s.Churn.Validate(); err != nil {
			return err
		}
	}
	if s.Faults != nil {
		if err := s.Faults.Validate(); err != nil {
			return err
		}
	}
	if s.CtrlPlane != nil {
		if err := s.CtrlPlane.Validate(); err != nil {
			return err
		}
	}
	hosts := s.totalHosts()
	for i, e := range s.Script {
		if err := e.Validate(hosts); err != nil {
			return fmt.Errorf("agilepower: script event %d: %w", i, err)
		}
		if e.NeedsFaults() && (s.Faults == nil || !s.Faults.Enabled()) {
			return fmt.Errorf("agilepower: script event %d (%s) needs fault injection enabled (set Scenario.Faults)", i, e.Action)
		}
		if e.NeedsCtrlPlane() && (s.CtrlPlane == nil || !s.CtrlPlane.Enabled()) {
			return fmt.Errorf("agilepower: script event %d (%s) needs a control plane enabled (set Scenario.CtrlPlane)", i, e.Action)
		}
	}
	for i, a := range s.Asserts {
		if err := a.Validate(); err != nil {
			return fmt.Errorf("agilepower: assertion %d: %w", i, err)
		}
	}
	return nil
}

// totalHosts returns the fleet size after class expansion.
func (s Scenario) totalHosts() int {
	if len(s.HostClasses) == 0 {
		return s.Hosts
	}
	n := 0
	for _, hc := range s.HostClasses {
		n += hc.Count
	}
	return n
}

// WithChaos appends the named pattern's generated event script to a
// copy of the scenario. Generation is a pure function of the scenario
// seed and the params — deterministic across runs — and an intensity
// of zero appends nothing at all. Patterns may be stacked by chaining
// calls (use distinct Salt values to decorrelate same-pattern
// instances).
func (s Scenario) WithChaos(p ChaosParams) (Scenario, error) {
	s2 := s.withDefaults()
	evs, err := chaos.Generate(chaos.World{
		Hosts:     s2.totalHosts(),
		HostPeakW: s2.maxHostPeakW(),
		Faults:    s2.Faults != nil && s2.Faults.Enabled(),
		CtrlPlane: s2.CtrlPlane != nil && s2.CtrlPlane.Enabled(),
		Seed:      s2.Seed,
	}, p)
	if err != nil {
		return s, err
	}
	if len(evs) == 0 {
		return s, nil
	}
	out := s
	out.Script = append(append([]ScriptEvent(nil), s.Script...), evs...)
	return out, nil
}

// maxHostPeakW returns the largest single-host peak draw across the
// scenario's host classes — the unit chaos power ramps budget in.
func (s Scenario) maxHostPeakW() float64 {
	base := resolvedProfile(s)
	peak := float64(base.ActivePower(1))
	for _, hc := range s.HostClasses {
		if hc.Profile != nil {
			if p := float64(hc.Profile.ActivePower(1)); p > peak {
				peak = p
			}
		}
	}
	return peak
}

// Result is the outcome of one scenario run.
type Result struct {
	Scenario string
	Policy   string
	Horizon  time.Duration

	// Energy and power.
	Energy     Joules
	MeanPowerW float64
	PeakPowerW float64

	// SLA.
	Satisfaction      float64
	ViolationFraction float64
	UnmetCoreHours    float64

	// Management overhead.
	Manager    ManagerStats
	Migrations MigrationStats
	Sleeps     int
	Wakes      int
	// ResumeFailures counts S3 resumes that fell back to a full boot
	// (nonzero only when the profile injects failures).
	ResumeFailures int

	// Churn summarizes dynamic provisioning (zero when the scenario
	// had no ChurnSpec).
	Churn ChurnStats

	// Robustness (all zero unless the scenario injected faults).
	// FaultCounters is the manager's reaction ledger: retries,
	// quarantines, aborted migrations, re-plans (see core.Ctr*).
	FaultCounters map[string]int
	// SuspendFailures and WakeFailures count injected transitions that
	// did not take; Crashes counts transient host crashes.
	SuspendFailures int
	WakeFailures    int
	Crashes         int
	// StrandedVMHours integrates VMs frozen on crashed hosts over time
	// (VM·hours) — the availability cost crashes exact.
	StrandedVMHours float64
	// StrandedVMs counts VMs still frozen on crashed hosts when the
	// run ended — the end-of-run health signal the CLIs turn into a
	// nonzero exit.
	StrandedVMs int

	// Assertions holds one verdict per Scenario.Asserts entry, in
	// order; AssertionFailures counts the violated ones.
	Assertions        []AssertionResult
	AssertionFailures int

	// Events is the audit trail of everything the manager did.
	Events *EventLog

	// Series for figure regeneration.
	Power       *Series
	Demand      *Series
	Delivered   *Series
	ActiveHosts *Series

	// Fleet parameters, for oracle comparisons.
	Hosts     int
	HostCores float64
	Profile   *Profile

	// EvalTicks and HostEvals count evaluation passes and the per-host
	// evaluations they performed — the delta-evaluation skip ratio is
	// 1 − HostEvals/(EvalTicks×Hosts). Execution diagnostics like wall
	// time: deterministic within an evaluation mode but different
	// between delta and full, so experiments report them on the
	// progress stream, never in byte-compared reports.
	EvalTicks int64
	HostEvals int64
}

// Run executes the scenario to its horizon and collects the result.
// It is the one-shot form of Start → RunUntil → Result; use Start for
// interactive sessions with operator actions.
func (s Scenario) Run() (*Result, error) {
	se, err := s.Start()
	if err != nil {
		return nil, err
	}
	if err := se.RunUntil(s.withDefaults().Horizon); err != nil {
		return nil, err
	}
	return se.Result(), nil
}

// RunPolicies runs the scenario once per policy (same workload, same
// seed) and returns results in the given order. The runs are
// independent simulations and execute concurrently on up to
// GOMAXPROCS workers; results are identical to a sequential loop (use
// RunPoliciesWorkers to pin the worker count).
func (s Scenario) RunPolicies(policies []Policy) ([]*Result, error) {
	return s.RunPoliciesWorkers(0, policies)
}

// RunPoliciesWorkers is RunPolicies with an explicit concurrency
// bound (workers <= 0 means GOMAXPROCS, 1 means sequential). The
// world — host fleet plus initial placement — is built once as a
// Prototype and forked per policy (unless ColdWorld is set); each
// worker then runs its fork on its own engine, so results — and any
// report rendered from them in policy order — are byte-identical for
// every worker count, and to a cold per-policy Start.
func (s Scenario) RunPoliciesWorkers(workers int, policies []Policy) ([]*Result, error) {
	var proto *Prototype
	if !s.ColdWorld {
		// A prototype failure (validation or construction) falls back to
		// the cold path, which reproduces the same error per policy —
		// callers see exactly what a cold loop reported.
		if p, err := s.Prototype(); err == nil {
			proto = p
		}
	}
	return parallel.Map(context.Background(), len(policies), workers,
		func(_ context.Context, i int) (*Result, error) {
			sc := s
			sc.Manager.Policy = policies[i]
			res, err := runScenario(proto, sc)
			if err != nil {
				return nil, fmt.Errorf("policy %q: %w", policies[i].Name, err)
			}
			return res, nil
		})
}

// TotalMigrations returns all completed migrations.
func (r *Result) TotalMigrations() int { return r.Migrations.Completed }

// EnergyKWh returns energy in kilowatt-hours.
func (r *Result) EnergyKWh() float64 { return r.Energy.KWh() }

// Oracle returns the analytic oracle matching this run's fleet.
func (r *Result) Oracle() *Oracle {
	return &Oracle{
		Hosts:     r.Hosts,
		HostCores: r.HostCores,
		Profile:   r.Profile,
	}
}

// OracleEnergy returns the zero-latency perfect-knowledge power
// manager's energy over this run's recorded demand.
func (r *Result) OracleEnergy() (Joules, error) {
	return r.Oracle().Energy(r.Demand, r.Horizon)
}

// ProportionalEnergy returns the ideal energy-proportional fleet's
// energy over this run's recorded demand.
func (r *Result) ProportionalEnergy() (Joules, error) {
	return r.Oracle().ProportionalEnergy(r.Demand, r.Horizon)
}

// FacilityEnergy converts the run's IT energy into meter energy under
// the given facility overhead model.
func (r *Result) FacilityEnergy(f Facility) (Joules, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	return f.Energy(r.Energy, r.Horizon), nil
}

// SavingsVs returns the fractional energy saving of r relative to
// base (positive when r uses less energy).
func (r *Result) SavingsVs(base *Result) float64 {
	if base.Energy <= 0 {
		return 0
	}
	return 1 - float64(r.Energy)/float64(base.Energy)
}
