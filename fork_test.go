package agilepower

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"agilepower/internal/cluster"
	"agilepower/internal/host"
	"agilepower/internal/sim"
)

// assertSameResult compares two runs the way the incremental-mode test
// does — every headline metric, every action count, and the event log
// entry by entry — so a fork that drifts from a cold start by even one
// event fails with the exact divergence point.
func assertSameResult(t *testing.T, a, b *Result) {
	t.Helper()
	if a.Energy != b.Energy {
		t.Fatalf("energy diverged: %v vs %v", a.Energy, b.Energy)
	}
	if a.Satisfaction != b.Satisfaction || a.ViolationFraction != b.ViolationFraction ||
		a.UnmetCoreHours != b.UnmetCoreHours {
		t.Fatalf("SLA diverged: (%v,%v,%v) vs (%v,%v,%v)",
			a.Satisfaction, a.ViolationFraction, a.UnmetCoreHours,
			b.Satisfaction, b.ViolationFraction, b.UnmetCoreHours)
	}
	if a.Migrations.Completed != b.Migrations.Completed ||
		a.Sleeps != b.Sleeps || a.Wakes != b.Wakes ||
		a.ResumeFailures != b.ResumeFailures ||
		a.SuspendFailures != b.SuspendFailures ||
		a.WakeFailures != b.WakeFailures ||
		a.Crashes != b.Crashes ||
		a.Manager.FreqChanges != b.Manager.FreqChanges {
		t.Fatalf("action counts diverged: %+v vs %+v", a.Manager, b.Manager)
	}
	if a.StrandedVMHours != b.StrandedVMHours {
		t.Fatalf("stranded hours diverged: %v vs %v", a.StrandedVMHours, b.StrandedVMHours)
	}
	if len(a.FaultCounters) != len(b.FaultCounters) {
		t.Fatalf("fault counters diverged: %v vs %v", a.FaultCounters, b.FaultCounters)
	}
	for k, v := range a.FaultCounters {
		if b.FaultCounters[k] != v {
			t.Fatalf("fault counter %s diverged: %d vs %d", k, v, b.FaultCounters[k])
		}
	}
	if a.Events.Len() != b.Events.Len() {
		t.Fatalf("event logs diverged: %d vs %d", a.Events.Len(), b.Events.Len())
	}
	bEvents := b.Events.All()
	for i, ea := range a.Events.All() {
		if ea != bEvents[i] {
			t.Fatalf("event %d diverged: %v vs %v", i, ea, bEvents[i])
		}
	}
}

// forkCases is the feature matrix the fork-identity tests run over:
// churn, fault injection, a lossy control plane, predictive wake, DVFS,
// heterogeneous fleets, sharded and delta evaluation — every subsystem
// whose RNG stream or event order a sloppy snapshot could perturb.
func forkCases() []struct {
	name string
	sc   Scenario
} {
	return []struct {
		name string
		sc   Scenario
	}{
		{"dpm-s3 mixed churn", Scenario{
			Hosts: 6, VMs: MixedFleet(24, 5), Horizon: 8 * time.Hour, Seed: 5,
			Manager: ManagerConfig{Policy: DPMS3},
			Churn:   &ChurnSpec{ArrivalsPerHour: 3, MeanLifetime: 2 * time.Hour},
		}},
		{"dpm-s5 predictive", Scenario{
			Hosts: 6, VMs: WorkdayFleet(18, 1, 5), Horizon: 12 * time.Hour, Seed: 5,
			Manager: ManagerConfig{Policy: DPMS5, PredictiveWake: true},
		}},
		{"faulted dvfs combo", func() Scenario {
			f := FaultPreset(0.2)
			return Scenario{
				Hosts: 6, VMs: DiurnalFleet(18, 5), Horizon: 8 * time.Hour, Seed: 5,
				Manager: ManagerConfig{Policy: Policy{
					Name: "combo", LoadBalance: true, Consolidate: true,
					PowerManage: true, SleepState: S3, DVFS: true,
				}},
				Faults: &f,
			}
		}()},
		{"lossy ctrlplane", func() Scenario {
			cp := CtrlPreset(50*time.Millisecond, 0.05)
			return Scenario{
				Hosts: 8, VMs: ReplicatedFleet(6, 3, 5), Horizon: 8 * time.Hour, Seed: 5,
				Manager:   ManagerConfig{Policy: DPMS3, PanicShortfall: 0.3},
				CtrlPlane: &cp,
			}
		}()},
		{"hetero resume-failures", func() Scenario {
			p := DefaultProfile()
			p.ResumeFailProb = 0.2
			return Scenario{
				HostClasses: []HostClass{{Count: 3, Cores: 32}, {Count: 4}},
				Profile:     p,
				VMs:         BatchFleet(16, 5),
				Horizon:     8 * time.Hour,
				Seed:        5,
				Manager:     ManagerConfig{Policy: DPMS3},
			}
		}()},
		{"sharded delta churn", Scenario{
			Hosts: 8, VMs: MixedFleet(32, 7), Horizon: 8 * time.Hour, Seed: 7,
			Shards: 2, EvalWorkers: 2, Delta: true, TelemetryCap: 64,
			Manager: ManagerConfig{Policy: DPMS5},
			Churn:   &ChurnSpec{ArrivalsPerHour: 2, MeanLifetime: 3 * time.Hour},
		}},
	}
}

// TestForkMatchesColdStart is the tentpole's identity bar: a session
// forked from a prototype must produce exactly the Result and event log
// a cold Start of the same scenario does, across the full feature
// matrix.
func TestForkMatchesColdStart(t *testing.T) {
	for _, tc := range forkCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cold, err := tc.sc.Run()
			if err != nil {
				t.Fatal(err)
			}
			proto, err := tc.sc.Prototype()
			if err != nil {
				t.Fatal(err)
			}
			forked, err := proto.Run(tc.sc)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, cold, forked)
		})
	}
}

// TestForkGridMatchesColdStart forks several distinct cells — different
// policies, seeds, fault and control-plane settings — from ONE
// prototype, interleaved, and checks each against its own cold run.
// This is the experiment-grid usage pattern: one world, many cells.
func TestForkGridMatchesColdStart(t *testing.T) {
	base := Scenario{
		Hosts: 6, VMs: MixedFleet(24, 5), Horizon: 8 * time.Hour, Seed: 5,
		Manager: ManagerConfig{Policy: NoPM},
	}
	proto, err := base.Prototype()
	if err != nil {
		t.Fatal(err)
	}
	faulted := FaultPreset(0.1)
	lossy := CtrlPreset(2*time.Second, 0.05)
	cells := []Scenario{
		base,
		func() Scenario { sc := base; sc.Manager.Policy = DPMS3; return sc }(),
		func() Scenario { sc := base; sc.Manager.Policy = DPMS5; sc.Seed = 11; return sc }(),
		func() Scenario { sc := base; sc.Manager.Policy = DPMS3; sc.Faults = &faulted; return sc }(),
		func() Scenario { sc := base; sc.Manager.Policy = DPMS5; sc.CtrlPlane = &lossy; return sc }(),
		func() Scenario {
			sc := base
			sc.Manager.Policy = DPMS3
			sc.Churn = &ChurnSpec{ArrivalsPerHour: 2, MeanLifetime: 2 * time.Hour}
			return sc
		}(),
	}
	for i, sc := range cells {
		sc := sc
		t.Run(fmt.Sprintf("cell-%d", i), func(t *testing.T) {
			cold, err := sc.Run()
			if err != nil {
				t.Fatal(err)
			}
			forked, err := proto.Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, cold, forked)
		})
	}
}

// TestConcurrentForksMatchColdStart drives many forks of one prototype
// from concurrent goroutines — the parallel.Map usage inside
// RunPoliciesWorkers and RunReplicatedWorkers — and checks every run
// against a sequential cold baseline. Run under -race (make race), this
// is the proof that Fork only reads the prototype.
func TestConcurrentForksMatchColdStart(t *testing.T) {
	base := Scenario{
		Hosts: 6, VMs: MixedFleet(24, 5), Horizon: 6 * time.Hour, Seed: 5,
		Manager: ManagerConfig{Policy: DPMS3},
		Churn:   &ChurnSpec{ArrivalsPerHour: 2, MeanLifetime: 2 * time.Hour},
	}
	proto, err := base.Prototype()
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	cold := make([]*Result, n)
	for i := 0; i < n; i++ {
		sc := base
		sc.Seed = uint64(i + 1)
		res, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		cold[i] = res
	}
	forked := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sc := base
			sc.Seed = uint64(i + 1)
			forked[i], errs[i] = proto.Run(sc)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("fork %d: %v", i, errs[i])
		}
		assertSameResult(t, cold[i], forked[i])
	}
}

// TestForkRejectsWorldMismatch pins the compatibility contract: cell
// fields may vary per fork, but any world-defining field that differs
// from the prototype must be rejected by name, never run silently on
// the wrong fleet.
func TestForkRejectsWorldMismatch(t *testing.T) {
	base := Scenario{
		Hosts: 4, VMs: MixedFleet(8, 5), Horizon: 4 * time.Hour, Seed: 5,
		Manager: ManagerConfig{Policy: DPMS3},
	}
	proto, err := base.Prototype()
	if err != nil {
		t.Fatal(err)
	}
	mutations := []struct {
		field  string
		mutate func(sc Scenario) Scenario
	}{
		{"Hosts", func(sc Scenario) Scenario { sc.Hosts = 5; return sc }},
		{"HostCores", func(sc Scenario) Scenario { sc.HostCores = 32; return sc }},
		{"Horizon", func(sc Scenario) Scenario { sc.Horizon = 6 * time.Hour; return sc }},
		// An equal copy of the fleet is still a different fleet: cells
		// must share the prototype's VMs slice, not merely equal specs.
		{"VMs", func(sc Scenario) Scenario { sc.VMs = append([]VMSpec(nil), sc.VMs...); return sc }},
		{"Shards", func(sc Scenario) Scenario { sc.Shards = 2; return sc }},
		{"Delta", func(sc Scenario) Scenario { sc.Delta = true; return sc }},
		{"TelemetryCap", func(sc Scenario) Scenario { sc.TelemetryCap = 32; return sc }},
		{"Migration", func(sc Scenario) Scenario {
			m := DefaultMigrationModel()
			m.BandwidthGbps *= 2
			sc.Migration = &m
			return sc
		}},
	}
	for _, m := range mutations {
		t.Run(m.field, func(t *testing.T) {
			_, err := proto.Fork(m.mutate(base))
			if err == nil {
				t.Fatalf("fork with mismatched %s succeeded, want error", m.field)
			}
			if !strings.Contains(err.Error(), m.field) {
				t.Fatalf("mismatch error %q does not name field %s", err, m.field)
			}
		})
	}
	// The cell fields stay free: a different name, seed, policy, faults
	// and control plane must all fork fine.
	fc := FaultPreset(0.1)
	cp := CtrlPreset(time.Second, 0.1)
	cell := base
	cell.Name = "cell"
	cell.Seed = 99
	cell.Manager.Policy = DPMS5
	cell.Faults = &fc
	cell.CtrlPlane = &cp
	se, err := proto.Fork(cell)
	if err != nil {
		t.Fatalf("fork with cell-level overrides: %v", err)
	}
	se.Result()
}

// TestForkRequiresPristineCluster pins the cluster-level guard: a world
// that has started ticking cannot be the source of a fork.
func TestForkRequiresPristineCluster(t *testing.T) {
	sc := Scenario{
		Hosts: 4, VMs: MixedFleet(8, 5), Horizon: 4 * time.Hour, Seed: 5,
		Manager: ManagerConfig{Policy: DPMS3},
	}.withDefaults()
	eng := sim.NewEngine(sc.Seed)
	cl, _, _, err := buildWorld(eng, sc, resolvedProfile(sc))
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	if _, err := cl.Fork(sim.NewEngine(1)); err == nil {
		t.Fatal("fork of a started cluster succeeded, want error")
	}
}

// legacyPlaceInitial is the pre-screening placement loop, kept verbatim
// as the reference: try hosts round-robin and let the cluster's AddVM
// reject until one admits the VM — O(VMs × hosts) failed admissions in
// the worst case.
func legacyPlaceInitial(cl *cluster.Cluster, specs []VMSpec) error {
	hosts := cl.Hosts()
	n := len(hosts)
	for i, spec := range specs {
		cfg := vmConfig(spec)
		var lastErr error
		placed := false
		for try := 0; try < n; try++ {
			j := (i + try) % n
			if _, lastErr = cl.AddVM(cfg, hosts[j].ID()); lastErr == nil {
				placed = true
				break
			}
		}
		if !placed {
			return fmt.Errorf("agilepower: placing vm %d (%s): %w", i, spec.Name, lastErr)
		}
	}
	return nil
}

// tightFleet builds a fleet that stresses every admission screen: VMs
// big enough to fill hosts (memory rejections on most probes), reserved
// cores near the host limit (CPU rejections), and anti-affinity groups
// (group rejections) — the sizes at which the old retry loop actually
// retried.
func tightFleet() []VMSpec {
	specs := make([]VMSpec, 0, 26)
	for i := 0; i < 10; i++ {
		specs = append(specs, VMSpec{
			Name: fmt.Sprintf("big-%d", i), VCPUs: 4, MemoryGB: 10,
			Trace: ConstantTrace(1),
		})
	}
	for i := 0; i < 6; i++ {
		specs = append(specs, VMSpec{
			Name: fmt.Sprintf("resv-%d", i), VCPUs: 4, MemoryGB: 2,
			ReservedCores: 1.5, Trace: ConstantTrace(0.5),
		})
	}
	for i := 0; i < 8; i++ {
		specs = append(specs, VMSpec{
			Name: fmt.Sprintf("rep-%d", i), VCPUs: 2, MemoryGB: 1,
			Group: fmt.Sprintf("svc-%d", i%4), Trace: ConstantTrace(0.25),
		})
	}
	return specs
}

// TestPlaceInitialMatchesLegacyRetry is the regression gate for the
// screened placement rewrite: on a memory-, CPU-, and group-constrained
// fleet — where the old loop demonstrably retried — the screened
// placeInitial must land every VM on exactly the host the legacy
// try-until-AddVM-succeeds chain chose.
func TestPlaceInitialMatchesLegacyRetry(t *testing.T) {
	build := func() *cluster.Cluster {
		cl, err := cluster.New(sim.NewEngine(1), cluster.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for h := 0; h < 4; h++ {
			if _, err := cl.AddHost(host.Config{Cores: 4, MemoryGB: 32}); err != nil {
				t.Fatal(err)
			}
		}
		return cl
	}
	specs := tightFleet()

	legacy := build()
	if err := legacyPlaceInitial(legacy, specs); err != nil {
		t.Fatal(err)
	}
	screened := build()
	if err := placeInitial(screened, specs); err != nil {
		t.Fatal(err)
	}

	lh, sh := legacy.Hosts(), screened.Hosts()
	retried := false
	for j := range lh {
		lv, sv := lh[j].VMs(), sh[j].VMs()
		if len(lv) != len(sv) {
			t.Fatalf("host %d: legacy holds %d VMs, screened holds %d", j+1, len(lv), len(sv))
		}
		for k := range lv {
			if lv[k] != sv[k] {
				t.Fatalf("host %d slot %d: legacy placed vm %d, screened placed vm %d",
					j+1, k, lv[k], sv[k])
			}
		}
		if len(lv) > 0 && lh[j].MemFreeGB() < 10 {
			retried = true // at least one host is too full for the big VMs
		}
	}
	if !retried {
		t.Fatal("fixture too loose: no host filled enough to force the retry path")
	}

	// Overflow must fail with the identical error text too.
	over := append(append([]VMSpec(nil), specs...),
		VMSpec{Name: "too-big", VCPUs: 4, MemoryGB: 33, Trace: ConstantTrace(1)})
	el := legacyPlaceInitial(build(), over)
	es := placeInitial(build(), over)
	if el == nil || es == nil {
		t.Fatalf("overflow fleet placed: legacy=%v screened=%v", el, es)
	}
	if el.Error() != es.Error() {
		t.Fatalf("overflow errors diverged:\nlegacy:   %v\nscreened: %v", el, es)
	}
}
