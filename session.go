package agilepower

import (
	"fmt"
	"time"

	"agilepower/internal/cluster"
	"agilepower/internal/core"
	"agilepower/internal/ctrlplane"
	"agilepower/internal/faults"
	"agilepower/internal/host"
	"agilepower/internal/power"
	"agilepower/internal/sim"
	"agilepower/internal/vm"
)

// Session is a live simulation: the clock is stepped explicitly, and
// operator actions (maintenance, manual queries) interleave with the
// manager's control loop. Scenario.Run is the one-shot convenience
// wrapper around Start → RunUntil(Horizon) → Result.
type Session struct {
	scenario Scenario
	eng      *sim.Engine
	cl       *cluster.Cluster
	mgr      *core.Manager
	churn    ChurnStats
	profile  *Profile
	hosts    int
	cores    float64
	finished bool
}

// Start builds the scenario's cluster and manager and performs the
// initial evaluation, leaving the clock at zero.
func (s Scenario) Start() (*Session, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine(s.Seed)
	cl, err := cluster.New(eng, cluster.Config{
		EvalStep:     s.EvalStep,
		Migration:    s.Migration,
		Horizon:      s.Horizon,
		Shards:       s.Shards,
		EvalWorkers:  s.EvalWorkers,
		Delta:        s.Delta,
		TelemetryCap: s.TelemetryCap,
	})
	if err != nil {
		return nil, err
	}
	profile := s.Profile
	if profile == nil {
		profile = power.DefaultProfile()
	}
	totalHosts, meanCores, err := buildHosts(cl, s, profile)
	if err != nil {
		return nil, err
	}
	if err := placeInitial(cl, s.VMs); err != nil {
		return nil, err
	}
	mgr, err := core.NewManager(cl, s.Manager)
	if err != nil {
		return nil, err
	}
	// Fault injection: only an enabled config constructs an injector —
	// even forking the RNG for a dormant one would perturb the stream
	// and break byte-identity with fault-free runs.
	if s.Faults != nil && s.Faults.Enabled() {
		inj, err := faults.New(eng, *s.Faults)
		if err != nil {
			return nil, err
		}
		cl.InjectFaults(inj, inj)
		fleet := cl.Hosts()
		inj.ScheduleCrashes(len(fleet), func(idx int, repair time.Duration) bool {
			return cl.CrashHost(fleet[idx].ID(), repair) == nil
		})
	}
	// Control plane: same dormancy rule as faults. The RNG fork order
	// is fixed — faults first, then ctrlplane — so enabling one
	// subsystem reseeds the other's substream deterministically; both
	// packages document the ordering.
	var cp *ctrlplane.Plane
	if s.CtrlPlane != nil && s.CtrlPlane.Enabled() {
		cp, err = ctrlplane.New(eng, cl, *s.CtrlPlane, mgr.Counters())
		if err != nil {
			return nil, err
		}
		mgr.AttachControlPlane(cp)
	}
	se := &Session{
		scenario: s,
		eng:      eng,
		cl:       cl,
		mgr:      mgr,
		profile:  profile,
		hosts:    totalHosts,
		cores:    meanCores,
	}
	if s.Churn != nil {
		scheduleChurn(eng, cl, *s.Churn, s.Horizon, &se.churn)
	}
	cl.Start()
	mgr.Start()
	if cp != nil {
		cp.Start()
	}
	return se, nil
}

// Now returns the current virtual time.
func (se *Session) Now() time.Duration { return time.Duration(se.eng.Now()) }

// RunUntil advances virtual time to at (absolute).
func (se *Session) RunUntil(at time.Duration) error {
	if se.finished {
		return fmt.Errorf("agilepower: session already finished")
	}
	if at < se.Now() {
		return fmt.Errorf("agilepower: cannot run to %v, already at %v", at, se.Now())
	}
	se.eng.RunUntil(at)
	return nil
}

// Step advances virtual time by d.
func (se *Session) Step(d time.Duration) error { return se.RunUntil(se.Now() + d) }

// EnterMaintenance drains host id and holds it out of service.
func (se *Session) EnterMaintenance(id int) error {
	return se.mgr.EnterMaintenance(host.ID(id))
}

// ExitMaintenance returns host id to service.
func (se *Session) ExitMaintenance(id int) error {
	return se.mgr.ExitMaintenance(host.ID(id))
}

// MaintenanceReady reports whether host id has fully drained.
func (se *Session) MaintenanceReady(id int) bool {
	return se.mgr.MaintenanceReady(host.ID(id))
}

// RemoveVM departs a VM immediately (operator decommission).
func (se *Session) RemoveVM(id int) error { return se.cl.RemoveVM(vm.ID(id)) }

// AddVM submits a new VM for provisioning; it is placed by the manager
// within a monitoring tick. Returns the VM's id.
func (se *Session) AddVM(spec VMSpec) (int, error) {
	if spec.Trace == nil {
		return 0, fmt.Errorf("agilepower: vm needs a trace")
	}
	v, err := se.cl.AddPendingVM(vm.Config{
		Name:          spec.Name,
		VCPUs:         spec.VCPUs,
		MemoryGB:      spec.MemoryGB,
		Trace:         spec.Trace,
		SLOTarget:     spec.SLOTarget,
		Shares:        spec.Shares,
		Group:         spec.Group,
		ReservedCores: spec.ReservedCores,
		LimitCores:    spec.LimitCores,
	})
	if err != nil {
		return 0, err
	}
	return int(v.ID()), nil
}

// ActiveHosts returns how many hosts can serve right now.
func (se *Session) ActiveHosts() int { return len(se.cl.AvailableHosts()) }

// PowerW returns the instantaneous cluster draw in watts.
func (se *Session) PowerW() float64 { return float64(se.cl.TotalPower()) }

// DemandCores returns the instantaneous total demand.
func (se *Session) DemandCores() float64 { return se.cl.TotalDemand() }

// Events returns the audit log so far.
func (se *Session) Events() *EventLog { return se.cl.Events() }

// CheckInvariants verifies structural consistency (for tests and
// debugging).
func (se *Session) CheckInvariants() error { return se.cl.CheckInvariants() }

// Result finalizes accounting at the current time and collects the
// outcome. The session cannot be advanced afterwards.
func (se *Session) Result() *Result {
	se.cl.Flush()
	se.cl.Close() // retire the shard workers, if any
	se.finished = true
	horizon := se.Now()
	if horizon == 0 {
		horizon = time.Nanosecond // avoid division by zero on empty runs
	}
	churnStatsFrom(se.cl, &se.churn)
	evalTicks, hostEvals := se.cl.EvalCounts()
	agg := se.cl.AggregateSLA()
	entries, exits := se.cl.PowerActions()
	suspendFails, wakeFails, crashes := se.cl.TransitionFaultStats()
	return &Result{
		Scenario:          se.scenario.Name,
		Policy:            se.mgr.Config().Policy.Name,
		Horizon:           horizon,
		Energy:            se.cl.TotalEnergy(),
		MeanPowerW:        float64(se.cl.TotalEnergy()) / horizon.Seconds(),
		PeakPowerW:        se.cl.PowerSeries().Max(),
		Satisfaction:      agg.Satisfaction(),
		ViolationFraction: agg.ViolationFraction(),
		UnmetCoreHours:    agg.UnmetCoreSeconds() / 3600,
		Manager:           se.mgr.Stats(),
		Migrations:        se.cl.Migrations().Stats(),
		Sleeps:            entries,
		Wakes:             exits,
		ResumeFailures:    se.cl.ResumeFailures(),
		Churn:             se.churn,
		FaultCounters:     se.mgr.Counters().Snapshot(),
		SuspendFailures:   suspendFails,
		WakeFailures:      wakeFails,
		Crashes:           crashes,
		StrandedVMHours:   se.cl.StrandedVMSeconds() / 3600,
		Events:            se.cl.Events(),
		Power:             se.cl.PowerSeries(),
		Demand:            se.cl.DemandSeries(),
		Delivered:         se.cl.DeliveredSeries(),
		ActiveHosts:       se.cl.ActiveHostSeries(),
		Hosts:             se.hosts,
		HostCores:         se.cores,
		Profile:           se.profile,
		EvalTicks:         evalTicks,
		HostEvals:         hostEvals,
	}
}

// buildHosts creates the host fleet from the scenario (classes or
// homogeneous) and returns (count, mean cores).
func buildHosts(cl *cluster.Cluster, s Scenario, profile *Profile) (int, float64, error) {
	if len(s.HostClasses) > 0 {
		totalHosts, meanCores := 0, 0.0
		for _, hc := range s.HostClasses {
			cores := hc.Cores
			if cores == 0 {
				cores = 16
			}
			mem := hc.MemoryGB
			if mem == 0 {
				mem = 256
			}
			prof := hc.Profile
			if prof == nil {
				prof = profile
			}
			for i := 0; i < hc.Count; i++ {
				if _, err := cl.AddHost(host.Config{
					Cores:    cores,
					MemoryGB: mem,
					Profile:  prof.Clone(),
				}); err != nil {
					return 0, 0, err
				}
			}
			totalHosts += hc.Count
			meanCores += cores * float64(hc.Count)
		}
		return totalHosts, meanCores / float64(totalHosts), nil
	}
	for i := 0; i < s.Hosts; i++ {
		if _, err := cl.AddHost(host.Config{
			Cores:    s.HostCores,
			MemoryGB: s.HostMemoryGB,
			Profile:  profile.Clone(),
		}); err != nil {
			return 0, 0, err
		}
	}
	return s.Hosts, s.HostCores, nil
}

// placeInitial spreads the fleet round-robin, retrying forward on
// memory or anti-affinity conflicts.
func placeInitial(cl *cluster.Cluster, specs []VMSpec) error {
	hosts := cl.Hosts()
	for i, spec := range specs {
		cfg := vm.Config{
			Name:          spec.Name,
			VCPUs:         spec.VCPUs,
			MemoryGB:      spec.MemoryGB,
			Trace:         spec.Trace,
			SLOTarget:     spec.SLOTarget,
			Shares:        spec.Shares,
			Group:         spec.Group,
			ReservedCores: spec.ReservedCores,
			LimitCores:    spec.LimitCores,
		}
		var lastErr error
		placed := false
		for try := 0; try < len(hosts); try++ {
			on := hosts[(i+try)%len(hosts)].ID()
			if _, lastErr = cl.AddVM(cfg, on); lastErr == nil {
				placed = true
				break
			}
		}
		if !placed {
			return fmt.Errorf("agilepower: placing vm %d (%s): %w", i, spec.Name, lastErr)
		}
	}
	return nil
}
