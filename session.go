package agilepower

import (
	"fmt"
	"time"

	"agilepower/internal/cluster"
	"agilepower/internal/core"
	"agilepower/internal/ctrlplane"
	"agilepower/internal/faults"
	"agilepower/internal/host"
	"agilepower/internal/power"
	"agilepower/internal/script"
	"agilepower/internal/sim"
	"agilepower/internal/vm"
)

// Session is a live simulation: the clock is stepped explicitly, and
// operator actions (maintenance, manual queries) interleave with the
// manager's control loop. Scenario.Run is the one-shot convenience
// wrapper around Start → RunUntil(Horizon) → Result.
type Session struct {
	scenario Scenario
	eng      *sim.Engine
	cl       *cluster.Cluster
	mgr      *core.Manager
	churn    ChurnStats
	profile  *Profile
	hosts    int
	cores    float64
	finished bool

	// Script and assertion state (nil without a script/asserts).
	// baseFaults is the scenario's construction-time fault config, the
	// restore point for bounded fault-rate/wake-fail windows.
	inj        *faults.Injector
	cp         *ctrlplane.Plane
	asserts    *assertEngine
	baseFaults faults.Config
}

// Start builds the scenario's cluster and manager and performs the
// initial evaluation, leaving the clock at zero.
func (s Scenario) Start() (*Session, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine(s.Seed)
	profile := resolvedProfile(s)
	cl, totalHosts, meanCores, err := buildWorld(eng, s, profile)
	if err != nil {
		return nil, err
	}
	return startSession(s, eng, cl, profile, totalHosts, meanCores)
}

// resolvedProfile returns the scenario's power calibration, defaulted.
func resolvedProfile(s Scenario) *Profile {
	if s.Profile != nil {
		return s.Profile
	}
	return power.DefaultProfile()
}

// buildWorld performs the scenario's world construction: the empty
// cluster, the host fleet, and the initial placement. None of it
// schedules engine events or consumes randomness — the property that
// lets Prototype capture the result once and Fork replay the remaining
// Start steps per cell with byte-identical output.
func buildWorld(eng *sim.Engine, s Scenario, profile *Profile) (*cluster.Cluster, int, float64, error) {
	cl, err := cluster.New(eng, cluster.Config{
		EvalStep:     s.EvalStep,
		Migration:    s.Migration,
		Horizon:      s.Horizon,
		Shards:       s.Shards,
		EvalWorkers:  s.EvalWorkers,
		Delta:        s.Delta,
		TelemetryCap: s.TelemetryCap,
	})
	if err != nil {
		return nil, 0, 0, err
	}
	totalHosts, meanCores, err := buildHosts(cl, s, profile)
	if err != nil {
		return nil, 0, 0, err
	}
	if err := placeInitial(cl, s.VMs); err != nil {
		return nil, 0, 0, err
	}
	return cl, totalHosts, meanCores, nil
}

// startSession runs every Start step after world construction: the
// manager, fault injection, the control plane, churn, and the
// start-of-time evaluations. The step order — and with it the engine's
// event sequence and RNG fork order — is shared verbatim by the cold
// Start path and Prototype.Fork, which is what makes forked runs
// byte-identical to cold ones.
func startSession(s Scenario, eng *sim.Engine, cl *cluster.Cluster, profile *Profile, totalHosts int, meanCores float64) (*Session, error) {
	// Scenario scripts that rescale demand at runtime invalidate the
	// manager's lazy forecast replay (it reads demand at past times);
	// declare the possibility before the manager is built.
	scriptTunesFaults := false
	for _, e := range s.Script {
		if e.ScalesDemand() {
			s.Manager.DemandShocks = true
		}
		if e.Action == script.ActionFaultRate {
			scriptTunesFaults = true
		}
	}
	mgr, err := core.NewManager(cl, s.Manager)
	if err != nil {
		return nil, err
	}
	// Fault injection: only an enabled config constructs an injector —
	// even forking the RNG for a dormant one would perturb the stream
	// and break byte-identity with fault-free runs.
	var inj *faults.Injector
	if s.Faults != nil && s.Faults.Enabled() {
		inj, err = faults.New(eng, *s.Faults)
		if err != nil {
			return nil, err
		}
		cl.InjectFaults(inj, inj)
		fleet := cl.Hosts()
		crash := func(idx int, repair time.Duration) bool {
			return cl.CrashHost(fleet[idx].ID(), repair) == nil
		}
		if scriptTunesFaults {
			// A fault-rate event may introduce a crash process the base
			// config lacks; start every per-host process now (paused
			// while MTBF is zero) so the schedule is seed-pure.
			inj.ScheduleCrashProcesses(len(fleet), crash)
		} else {
			inj.ScheduleCrashes(len(fleet), crash)
		}
	}
	// Control plane: same dormancy rule as faults. The RNG fork order
	// is fixed — faults first, then ctrlplane — so enabling one
	// subsystem reseeds the other's substream deterministically; both
	// packages document the ordering.
	var cp *ctrlplane.Plane
	if s.CtrlPlane != nil && s.CtrlPlane.Enabled() {
		cp, err = ctrlplane.New(eng, cl, *s.CtrlPlane, mgr.Counters())
		if err != nil {
			return nil, err
		}
		mgr.AttachControlPlane(cp)
	}
	se := &Session{
		scenario: s,
		eng:      eng,
		cl:       cl,
		mgr:      mgr,
		profile:  profile,
		hosts:    totalHosts,
		cores:    meanCores,
		inj:      inj,
		cp:       cp,
	}
	if inj != nil {
		se.baseFaults = inj.Config()
	}
	if s.Churn != nil {
		scheduleChurn(eng, cl, *s.Churn, s.Horizon, &se.churn)
	}
	// Script events and assertion hooks are pure additions: an empty
	// script schedules nothing and empty asserts register no observer,
	// so script-free runs stay byte-identical (dormancy by
	// construction).
	if len(s.Script) > 0 {
		se.compileScript(s.Script)
	}
	if len(s.Asserts) > 0 {
		se.asserts = newAssertEngine(s.Asserts)
		cl.OnTick(se.asserts.tick)
	}
	cl.Start()
	mgr.Start()
	if cp != nil {
		cp.Start()
	}
	return se, nil
}

// Prototype is a scenario's world, built once: validation, the host
// fleet, and the initial placement are already done, captured in a
// pristine (never-started) cluster. Fork stamps out runnable Sessions
// from it with flat slice copies — no per-host construction, no
// re-placement, no profile clones — so a grid of experiment cells over
// one fleet pays world construction once instead of once per cell.
//
// A Prototype is immutable after creation: Fork only reads it, so any
// number of forks may proceed concurrently (the parallel policy and
// replication runners do exactly that).
type Prototype struct {
	// world is the normalized scenario the world was built from; Fork
	// checks cells against it so a fork can never silently run on a
	// different fleet than it asked for.
	world   Scenario
	profile *Profile
	cl      *cluster.Cluster
	hosts   int
	cores   float64
}

// Prototype builds the scenario's world once for repeated forking.
// The cell-level knobs (Name, Seed, Manager, Faults, CtrlPlane, Churn)
// of the receiving scenario are ignored — each Fork supplies its own —
// while the world-defining fields (fleet shape, VMs, horizon,
// evaluation knobs) are fixed here and must match on every Fork.
func (s Scenario) Prototype() (*Prototype, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine(s.Seed)
	profile := resolvedProfile(s)
	cl, totalHosts, meanCores, err := buildWorld(eng, s, profile)
	if err != nil {
		return nil, err
	}
	return &Prototype{world: s, profile: profile, cl: cl, hosts: totalHosts, cores: meanCores}, nil
}

// Fork materializes a runnable Session for one experiment cell from
// the prototype's world: the cluster forks as flat slice copies, then
// the post-construction Start steps (manager, faults, control plane,
// churn, initial evaluation) run exactly as a cold Start would, on a
// fresh engine seeded with the cell's Seed. The result is
// byte-identical to sc.Start() for any sc whose world fields match the
// prototype's.
func (p *Prototype) Fork(sc Scenario) (*Session, error) {
	sc = sc.withDefaults()
	if err := p.compatible(sc); err != nil {
		return nil, err
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine(sc.Seed)
	cl, err := p.cl.Fork(eng)
	if err != nil {
		return nil, err
	}
	return startSession(sc, eng, cl, p.profile, p.hosts, p.cores)
}

// Run is the one-shot form of Fork → RunUntil(Horizon) → Result, the
// forked counterpart of Scenario.Run.
func (p *Prototype) Run(sc Scenario) (*Result, error) {
	se, err := p.Fork(sc)
	if err != nil {
		return nil, err
	}
	if err := se.RunUntil(sc.withDefaults().Horizon); err != nil {
		return nil, err
	}
	return se.Result(), nil
}

// compatible checks that a cell scenario describes the same world the
// prototype captured. Cell fields (Name, Seed, Manager, Faults,
// CtrlPlane, Churn, ColdWorld) are free to vary; everything that went
// into world construction must match. VMs must be the same slice, not
// merely equal specs: prototype reuse is only sound when cells share
// one fleet.
func (p *Prototype) compatible(sc Scenario) error {
	w := p.world
	mismatch := ""
	switch {
	case sc.Hosts != w.Hosts:
		mismatch = "Hosts"
	case sc.HostCores != w.HostCores:
		mismatch = "HostCores"
	case sc.HostMemoryGB != w.HostMemoryGB:
		mismatch = "HostMemoryGB"
	case sc.Profile != w.Profile:
		mismatch = "Profile"
	case !sameHostClasses(sc.HostClasses, w.HostClasses):
		mismatch = "HostClasses"
	case !sameVMs(sc.VMs, w.VMs):
		mismatch = "VMs"
	case sc.Horizon != w.Horizon:
		mismatch = "Horizon"
	case !sameMigration(sc.Migration, w.Migration):
		mismatch = "Migration"
	case sc.EvalStep != w.EvalStep:
		mismatch = "EvalStep"
	case sc.Shards != w.Shards:
		mismatch = "Shards"
	case sc.EvalWorkers != w.EvalWorkers:
		mismatch = "EvalWorkers"
	case sc.Delta != w.Delta:
		mismatch = "Delta"
	case sc.TelemetryCap != w.TelemetryCap:
		mismatch = "TelemetryCap"
	}
	if mismatch != "" {
		return fmt.Errorf("agilepower: forked scenario differs from prototype world in %s", mismatch)
	}
	return nil
}

// sameVMs reports whether two scenarios share one VM fleet — the same
// backing slice, not just equal specs.
func sameVMs(a, b []VMSpec) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

// sameHostClasses compares class lists element-wise (HostClass is
// comparable; profile pointers must match).
func sameHostClasses(a, b []HostClass) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sameMigration compares optional migration models by value.
func sameMigration(a, b *MigrationModel) bool {
	if a == nil || b == nil {
		return a == b
	}
	return *a == *b
}

// runScenario runs one grid cell: as a fork of proto when a prototype
// is available, and as a cold start otherwise. The two paths produce
// identical bytes; proto == nil is the ColdWorld escape hatch (and the
// fallback when prototype construction itself failed, so the cold path
// re-surfaces the construction error per cell).
func runScenario(proto *Prototype, sc Scenario) (*Result, error) {
	if proto != nil {
		return proto.Run(sc)
	}
	return sc.Run()
}

// Now returns the current virtual time.
func (se *Session) Now() time.Duration { return time.Duration(se.eng.Now()) }

// RunUntil advances virtual time to at (absolute).
func (se *Session) RunUntil(at time.Duration) error {
	if se.finished {
		return fmt.Errorf("agilepower: session already finished")
	}
	if at < se.Now() {
		return fmt.Errorf("agilepower: cannot run to %v, already at %v", at, se.Now())
	}
	se.eng.RunUntil(at)
	return nil
}

// Step advances virtual time by d.
func (se *Session) Step(d time.Duration) error { return se.RunUntil(se.Now() + d) }

// EnterMaintenance drains host id and holds it out of service.
func (se *Session) EnterMaintenance(id int) error {
	return se.mgr.EnterMaintenance(host.ID(id))
}

// ExitMaintenance returns host id to service.
func (se *Session) ExitMaintenance(id int) error {
	return se.mgr.ExitMaintenance(host.ID(id))
}

// MaintenanceReady reports whether host id has fully drained.
func (se *Session) MaintenanceReady(id int) bool {
	return se.mgr.MaintenanceReady(host.ID(id))
}

// RemoveVM departs a VM immediately (operator decommission).
func (se *Session) RemoveVM(id int) error { return se.cl.RemoveVM(vm.ID(id)) }

// AddVM submits a new VM for provisioning; it is placed by the manager
// within a monitoring tick. Returns the VM's id.
func (se *Session) AddVM(spec VMSpec) (int, error) {
	if spec.Trace == nil {
		return 0, fmt.Errorf("agilepower: vm needs a trace")
	}
	v, err := se.cl.AddPendingVM(vm.Config{
		Name:          spec.Name,
		VCPUs:         spec.VCPUs,
		MemoryGB:      spec.MemoryGB,
		Trace:         spec.Trace,
		SLOTarget:     spec.SLOTarget,
		Shares:        spec.Shares,
		Group:         spec.Group,
		ReservedCores: spec.ReservedCores,
		LimitCores:    spec.LimitCores,
	})
	if err != nil {
		return 0, err
	}
	return int(v.ID()), nil
}

// ActiveHosts returns how many hosts can serve right now.
func (se *Session) ActiveHosts() int { return len(se.cl.AvailableHosts()) }

// PowerW returns the instantaneous cluster draw in watts.
func (se *Session) PowerW() float64 { return float64(se.cl.TotalPower()) }

// DemandCores returns the instantaneous total demand.
func (se *Session) DemandCores() float64 { return se.cl.TotalDemand() }

// Events returns the audit log so far.
func (se *Session) Events() *EventLog { return se.cl.Events() }

// Progress is one evaluation tick's cluster-wide aggregates, the
// public face of the cluster's tick observer: what a streaming client
// watches while a run advances.
type Progress struct {
	// At is the virtual time of the tick.
	At time.Duration
	// PowerW is the instantaneous cluster draw.
	PowerW float64
	// DemandCores and DeliveredCores are the fleet-wide CPU totals.
	DemandCores    float64
	DeliveredCores float64
	// ActiveHosts counts hosts able to serve.
	ActiveHosts int
	// StrandedVMs and PendingVMs are the unhealthy/unplaced counts.
	StrandedVMs int
	PendingVMs  int
}

// OnProgress registers fn to observe every evaluation tick. Observers
// chain — the scenario assertion engine and any number of progress
// listeners coexist — and registering one schedules no events and
// consumes no randomness, so an observed run stays byte-identical to
// an unobserved one. fn runs on the simulation goroutine: it must not
// block, and it must not call back into the session.
func (se *Session) OnProgress(fn func(Progress)) {
	se.cl.OnTick(func(ts cluster.TickStats) {
		fn(Progress{
			At:             time.Duration(ts.Now),
			PowerW:         ts.PowerW,
			DemandCores:    ts.Demand,
			DeliveredCores: ts.Delivered,
			ActiveHosts:    ts.Active,
			StrandedVMs:    ts.Stranded,
			PendingVMs:     ts.Pending,
		})
	})
}

// CheckInvariants verifies structural consistency (for tests and
// debugging).
func (se *Session) CheckInvariants() error { return se.cl.CheckInvariants() }

// Result finalizes accounting at the current time and collects the
// outcome. The session cannot be advanced afterwards.
func (se *Session) Result() *Result {
	se.cl.Flush()
	se.cl.Close() // retire the shard workers, if any
	se.finished = true
	horizon := se.Now()
	if horizon == 0 {
		horizon = time.Nanosecond // avoid division by zero on empty runs
	}
	churnStatsFrom(se.cl, &se.churn)
	evalTicks, hostEvals := se.cl.EvalCounts()
	agg := se.cl.AggregateSLA()
	entries, exits := se.cl.PowerActions()
	suspendFails, wakeFails, crashes := se.cl.TransitionFaultStats()
	res := &Result{
		Scenario:          se.scenario.Name,
		Policy:            se.mgr.Config().Policy.Name,
		Horizon:           horizon,
		Energy:            se.cl.TotalEnergy(),
		MeanPowerW:        float64(se.cl.TotalEnergy()) / horizon.Seconds(),
		PeakPowerW:        se.cl.PowerSeries().Max(),
		Satisfaction:      agg.Satisfaction(),
		ViolationFraction: agg.ViolationFraction(),
		UnmetCoreHours:    agg.UnmetCoreSeconds() / 3600,
		Manager:           se.mgr.Stats(),
		Migrations:        se.cl.Migrations().Stats(),
		Sleeps:            entries,
		Wakes:             exits,
		ResumeFailures:    se.cl.ResumeFailures(),
		Churn:             se.churn,
		FaultCounters:     se.mgr.Counters().Snapshot(),
		SuspendFailures:   suspendFails,
		WakeFailures:      wakeFails,
		Crashes:           crashes,
		StrandedVMHours:   se.cl.StrandedVMSeconds() / 3600,
		Events:            se.cl.Events(),
		Power:             se.cl.PowerSeries(),
		Demand:            se.cl.DemandSeries(),
		Delivered:         se.cl.DeliveredSeries(),
		ActiveHosts:       se.cl.ActiveHostSeries(),
		Hosts:             se.hosts,
		HostCores:         se.cores,
		Profile:           se.profile,
		EvalTicks:         evalTicks,
		HostEvals:         hostEvals,
		StrandedVMs:       se.cl.StrandedCount(),
	}
	if se.asserts != nil {
		se.asserts.finish(res)
	}
	return res
}

// buildHosts creates the host fleet from the scenario (classes or
// homogeneous) and returns (count, mean cores). Power profiles are
// interned: every host of a class shares one immutable Profile
// instance (machines never mutate their profile) instead of cloning it
// per host — at 100k hosts that is 100k fewer deep copies per cell.
func buildHosts(cl *cluster.Cluster, s Scenario, profile *Profile) (int, float64, error) {
	if len(s.HostClasses) > 0 {
		totalHosts, meanCores := 0, 0.0
		for _, hc := range s.HostClasses {
			cores := hc.Cores
			if cores == 0 {
				cores = 16
			}
			mem := hc.MemoryGB
			if mem == 0 {
				mem = 256
			}
			prof := hc.Profile
			if prof == nil {
				prof = profile
			}
			for i := 0; i < hc.Count; i++ {
				if _, err := cl.AddHost(host.Config{
					Cores:    cores,
					MemoryGB: mem,
					Profile:  prof,
				}); err != nil {
					return 0, 0, err
				}
			}
			totalHosts += hc.Count
			meanCores += cores * float64(hc.Count)
		}
		return totalHosts, meanCores / float64(totalHosts), nil
	}
	for i := 0; i < s.Hosts; i++ {
		if _, err := cl.AddHost(host.Config{
			Cores:    s.HostCores,
			MemoryGB: s.HostMemoryGB,
			Profile:  profile,
		}); err != nil {
			return 0, 0, err
		}
	}
	return s.Hosts, s.HostCores, nil
}

// vmConfig translates a VMSpec into the cluster's vm.Config.
func vmConfig(spec VMSpec) vm.Config {
	return vm.Config{
		Name:          spec.Name,
		VCPUs:         spec.VCPUs,
		MemoryGB:      spec.MemoryGB,
		Trace:         spec.Trace,
		SLOTarget:     spec.SLOTarget,
		Shares:        spec.Shares,
		Group:         spec.Group,
		ReservedCores: spec.ReservedCores,
		LimitCores:    spec.LimitCores,
	}
}

// placeInitial spreads the fleet round-robin, skipping forward past
// hosts that cannot take the VM.
//
// Admission is screened through a per-host mirror of exactly the
// arithmetic host.Place rejects with — committed memory accumulated in
// placement order and reserved CPU against the same 1e-9 epsilon — so
// the first host the screen accepts is the first host the old
// try-until-AddVM-succeeds chain would have landed on, without paying
// a failed (error-allocating) AddVM call per skipped host. That chain
// was O(VMs × hosts) AddVM calls in the worst case; the screen is
// three comparisons per probe. If the screen and the cluster ever
// disagree (a VM spec error, or an admission rule the mirror does not
// model), the legacy retry chain runs verbatim for that VM, so
// placement and errors stay bit-for-bit what the old loop produced.
func placeInitial(cl *cluster.Cluster, specs []VMSpec) error {
	hosts := cl.Hosts()
	n := len(hosts)
	memCap := make([]float64, n)
	memUsed := make([]float64, n)
	cpuCap := make([]float64, n)
	cpuRes := make([]float64, n)
	for j, h := range hosts {
		memCap[j] = h.MemoryGB()
		memUsed[j] = h.MemUsedGB()
		cpuCap[j] = h.Cores()
		cpuRes[j] = h.CPUReservedCores()
	}
	for i, spec := range specs {
		cfg := vmConfig(spec)
		placed := false
		for try := 0; try < n; try++ {
			j := (i + try) % n
			// Mirror of host.Place's admission checks (same expressions,
			// same accumulation order, so the FP results are bitwise
			// identical to what Place would compute).
			if spec.MemoryGB > memCap[j]-memUsed[j] {
				continue
			}
			if cpuRes[j]+spec.ReservedCores > cpuCap[j]+1e-9 {
				continue
			}
			if spec.Group != "" && cl.GroupConflict(hosts[j].ID(), spec.Group, 0) {
				continue
			}
			if _, err := cl.AddVM(cfg, hosts[j].ID()); err != nil {
				break // screen disagreed with the cluster: legacy chain below
			}
			memUsed[j] += spec.MemoryGB
			cpuRes[j] += spec.ReservedCores
			placed = true
			break
		}
		if placed {
			continue
		}
		// Legacy retry chain, preserved verbatim: replaying from the top
		// reproduces the old loop's placement — and its error, when no
		// host takes the VM — exactly. Failed AddVM calls have no side
		// effects, so the screened attempt above does not perturb it.
		var lastErr error
		for try := 0; try < n; try++ {
			j := (i + try) % n
			if _, lastErr = cl.AddVM(cfg, hosts[j].ID()); lastErr == nil {
				memUsed[j] += spec.MemoryGB
				cpuRes[j] += spec.ReservedCores
				placed = true
				break
			}
		}
		if !placed {
			return fmt.Errorf("agilepower: placing vm %d (%s): %w", i, spec.Name, lastErr)
		}
	}
	return nil
}
