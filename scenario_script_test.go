package agilepower

import (
	"strings"
	"testing"
	"time"
)

// scriptedScenario is the small fleet the event-script behavior tests
// run: busy enough that DPM keeps several hosts serving, small enough
// to run in milliseconds.
func scriptedScenario() Scenario {
	return Scenario{
		Name:    "scripted",
		Hosts:   8,
		VMs:     MixedFleet(32, 5),
		Horizon: 6 * time.Hour,
		Seed:    5,
		Manager: ManagerConfig{Policy: DPMS3},
	}
}

// An empty script and no assertions must leave the run byte-identical
// to a script-free build: nothing is scheduled, no observer registers.
func TestEmptyScriptDormant(t *testing.T) {
	plain := scriptedScenario()
	scripted := scriptedScenario()
	scripted.Script = []ScriptEvent{}
	scripted.Asserts = []AssertSpec{}

	a, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := scripted.Run()
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, a, b)
	if b.Assertions != nil || b.AssertionFailures != 0 {
		t.Fatalf("empty assert list produced verdicts: %+v", b.Assertions)
	}
}

// A scripted run replays byte-identically: scripts draw nothing from
// the engine RNG and schedule fixed events.
func TestScriptedRunDeterministic(t *testing.T) {
	sc := scriptedScenario()
	sc.Script = []ScriptEvent{
		{At: time.Hour, Action: ActionCrash, Host: 1, Repair: 20 * time.Minute},
		{At: 2 * time.Hour, Action: ActionDemandSurge, Factor: 2, Duration: time.Hour},
		{At: 4 * time.Hour, Action: ActionPowerCap, Watts: 1000, Duration: time.Hour},
	}
	sc.Asserts = []AssertSpec{{Kind: AssertSLAViolationMax, Frac: 1}}
	a, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, a, b)
}

// A scripted crash takes the host down, strands its VMs for the repair
// window, and the fleet recovers afterwards.
func TestScriptCrashEvent(t *testing.T) {
	sc := scriptedScenario()
	sc.Script = []ScriptEvent{
		{At: time.Hour, Action: ActionCrash, Host: 1, HostTo: 8, Repair: 30 * time.Minute},
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The range covers the whole fleet, so every serving host crashes
	// (parked ones become wake holds instead): the crash must be real —
	// counted, and stranding VM time.
	if res.Crashes == 0 {
		t.Fatal("no host crashed")
	}
	if res.StrandedVMHours <= 0 {
		t.Fatal("crash stranded no VM time")
	}
	if res.StrandedVMs != 0 {
		t.Fatalf("%d VMs still stranded at the horizon (repair was 30m)", res.StrandedVMs)
	}
}

// A maintenance window drains the host and returns it afterwards.
func TestScriptMaintenanceWindow(t *testing.T) {
	sc := scriptedScenario()
	sc.Script = []ScriptEvent{
		{At: time.Hour, Action: ActionMaintenance, Host: 1},
		{At: 3 * time.Hour, Action: ActionMaintenanceEnd, Host: 1},
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range res.Events.All() {
		if strings.Contains(e.String(), "migration") {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("maintenance drain produced no migrations")
	}
	if res.Satisfaction < 0.9 {
		t.Fatalf("maintenance wrecked the run: satisfaction %v", res.Satisfaction)
	}
}

// A power cap shrinks the active-host budget while it holds; lifting
// it restores normal operation.
func TestScriptPowerCap(t *testing.T) {
	base := scriptedScenario()
	capped := scriptedScenario()
	// Cap to roughly two hosts' peak for two mid-run hours.
	capped.Script = []ScriptEvent{
		{At: 2 * time.Hour, Action: ActionPowerCap, Watts: 500, Duration: 2 * time.Hour},
	}
	a, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := capped.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 500 W buys a budget of 2 hosts (250 W peak each): the capped run
	// must hold fewer hosts active across the window.
	baseMean := a.ActiveHosts.TimeMean(2*time.Hour, 4*time.Hour)
	cappedMean := b.ActiveHosts.TimeMean(2*time.Hour, 4*time.Hour)
	if cappedMean >= baseMean {
		t.Fatalf("cap did not shrink the fleet: %v vs %v active hosts", cappedMean, baseMean)
	}
	caps := b.FaultCounters["power_cap_evacuations"] + b.FaultCounters["power_cap_deferred_wakes"]
	if caps == 0 {
		t.Fatal("cap enforcement left no counter trace")
	}
}

// A demand surge scales matching VMs up and restores them afterwards.
func TestScriptDemandSurge(t *testing.T) {
	base := scriptedScenario()
	surged := scriptedScenario()
	surged.Script = []ScriptEvent{
		{At: 2 * time.Hour, Action: ActionDemandSurge, Factor: 3, Duration: time.Hour},
	}
	a, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := surged.Run()
	if err != nil {
		t.Fatal(err)
	}
	inWindow := b.Demand.TimeMean(2*time.Hour, 3*time.Hour)
	baseWindow := a.Demand.TimeMean(2*time.Hour, 3*time.Hour)
	if inWindow < 2*baseWindow {
		t.Fatalf("surge barely moved demand: %v vs base %v", inWindow, baseWindow)
	}
	after := b.Demand.TimeMean(4*time.Hour, 6*time.Hour)
	baseAfter := a.Demand.TimeMean(4*time.Hour, 6*time.Hour)
	if after > baseAfter*1.05 {
		t.Fatalf("surge not restored: %v vs base %v after the window", after, baseAfter)
	}
}

// A surge targeting a fleet prefix with no members applies to nothing
// and bumps the skipped counter.
func TestScriptSurgeUnknownFleet(t *testing.T) {
	sc := scriptedScenario()
	sc.Script = []ScriptEvent{
		{At: time.Hour, Action: ActionDemandSurge, Factor: 2, Fleet: "nosuch"},
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultCounters["script_skipped"] == 0 {
		t.Fatal("unmatched surge not counted as skipped")
	}
}

// Continuous assertions latch violations with grace and windows; final
// assertions check the aggregates. Failed assertions are counted but
// do not error the run.
func TestAssertionsVerdicts(t *testing.T) {
	sc := scriptedScenario()
	sc.Script = []ScriptEvent{
		{At: time.Hour, Action: ActionCrash, Host: 1, HostTo: 8, Repair: time.Hour},
	}
	sc.Asserts = []AssertSpec{
		// Violated: the crash strands VMs for a full hour.
		{Kind: AssertNoStrandedVM, Over: 10 * time.Minute},
		// Passes: the window starts after the repair completed.
		{Kind: AssertNoStrandedVM, From: 3 * time.Hour, Over: 10 * time.Minute},
		// Passes: bound loose enough for the whole fleet.
		{Kind: AssertPowerBelow, Watts: 8 * 300},
		// Violated: no run burns less than a watt-hour.
		{Kind: AssertEnergyBelow, KWh: 0.001},
		// Passes trivially.
		{Kind: AssertSLAViolationMax, Frac: 1},
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assertions) != len(sc.Asserts) {
		t.Fatalf("%d verdicts for %d assertions", len(res.Assertions), len(sc.Asserts))
	}
	wantViolated := []bool{true, false, false, true, false}
	for i, want := range wantViolated {
		if got := res.Assertions[i].Violated; got != want {
			t.Errorf("assertion %d (%s): violated = %v, want %v",
				i, res.Assertions[i].Assert.String(), got, want)
		}
	}
	if res.AssertionFailures != 2 {
		t.Fatalf("failures = %d, want 2", res.AssertionFailures)
	}
	// The stranded-VM violation latched only after its grace.
	if at := res.Assertions[0].At; at < time.Hour+10*time.Minute {
		t.Fatalf("violation latched at %v, before the grace ran out", at)
	}
	if res.Assertions[0].Observed <= 0 {
		t.Fatal("violation recorded no observed value")
	}
	// Final verdicts stamp the horizon.
	if res.Assertions[3].At != res.Horizon {
		t.Fatalf("final verdict at %v, want horizon %v", res.Assertions[3].At, res.Horizon)
	}
}

// Asserting must not perturb the simulation: a run with assertions is
// byte-identical to the same run without them.
func TestAssertionsDoNotPerturbRun(t *testing.T) {
	plain := scriptedScenario()
	asserted := scriptedScenario()
	asserted.Asserts = []AssertSpec{
		{Kind: AssertNoStrandedVM},
		{Kind: AssertPowerBelow, Watts: 1},     // certain to fail
		{Kind: AssertSatisfactionMin, Frac: 1}, // likely to fail
	}
	a, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := asserted.Run()
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, a, b)
	if b.AssertionFailures == 0 {
		t.Fatal("expected at least one failed assertion")
	}
}

// Scenario.Validate statically rejects scripts that need subsystems
// the scenario does not enable, and bad events and assertions.
func TestScriptValidation(t *testing.T) {
	sc := scriptedScenario()
	sc.Script = []ScriptEvent{{Action: ActionFaultRate, Rate: 0.5}}
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "fault") {
		t.Fatalf("fault-rate without faults: %v", err)
	}
	sc = scriptedScenario()
	sc.Script = []ScriptEvent{{Action: ActionCtrlPartition, Duration: time.Minute}}
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "control plane") {
		t.Fatalf("partition without plane: %v", err)
	}
	sc = scriptedScenario()
	sc.Script = []ScriptEvent{{Action: ActionCrash, Host: 99}}
	if err := sc.Validate(); err == nil {
		t.Fatal("out-of-range crash accepted")
	}
	sc = scriptedScenario()
	sc.Asserts = []AssertSpec{{Kind: "always-green"}}
	if err := sc.Validate(); err == nil {
		t.Fatal("unknown assertion kind accepted")
	}
}

// Fault-rate and wake-fail events retune a live injector and restore
// the base configuration after the window, deterministically.
func TestScriptFaultRetune(t *testing.T) {
	sc := scriptedScenario()
	fc := FaultPreset(0.05)
	sc.Faults = &fc
	sc.Horizon = 8 * time.Hour
	sc.Script = []ScriptEvent{
		{At: 2 * time.Hour, Action: ActionWakeFail, Prob: 1, Duration: 2 * time.Hour},
	}
	a, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, a, b)
}

// WithChaos appends a generated script; zero intensity appends nothing
// and leaves the run byte-identical to the pattern-free scenario.
func TestWithChaosZeroIntensityDormant(t *testing.T) {
	base := scriptedScenario()
	chaotic, err := base.WithChaos(ChaosParams{Pattern: ChaosAZOutage, Intensity: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(chaotic.Script) != 0 {
		t.Fatalf("dormant pattern emitted %d events", len(chaotic.Script))
	}
	a, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := chaotic.Run()
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, a, b)
}

// An active chaos pattern materializes into the script and the
// resulting run replays byte-identically.
func TestWithChaosRunDeterministic(t *testing.T) {
	base := scriptedScenario()
	sc, err := base.WithChaos(ChaosParams{
		Pattern: ChaosCascadingFailure, Intensity: 0.8, At: time.Hour, Duration: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Script) == 0 {
		t.Fatal("active pattern emitted no events")
	}
	a, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, a, b)
}
