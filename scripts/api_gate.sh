#!/bin/sh
# End-to-end gate for the async simulation service: build a
# race-enabled agilepmd, start it, drive a burst of concurrent
# sessions through /v1/runs with cmd/apiload (which fails on any
# failed request or a cache hit rate below the floor), then shut the
# daemon down gracefully and check it drained and persisted its
# terminal job ledger.
#
# Tunables (environment):
#   APIGATE_PORT         listen port          (default 18097)
#   APIGATE_SESSIONS     concurrent sessions  (default 200)
#   APIGATE_PER_SESSION  requests per session (default 2)
#   APIGATE_LABEL        non-empty: record the bench lines into
#                        BENCH_api.json under this label
#   APIGATE_RACE         0 disables the race-enabled daemon build
set -eu

PORT="${APIGATE_PORT:-18097}"
SESSIONS="${APIGATE_SESSIONS:-200}"
PER="${APIGATE_PER_SESSION:-2}"
LABEL="${APIGATE_LABEL:-}"
RACE="${APIGATE_RACE:-1}"

cd "$(dirname "$0")/.."
tmp="$(mktemp -d)"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

if [ "$RACE" = "1" ]; then
    go build -race -o "$tmp/agilepmd" ./cmd/agilepmd
else
    go build -o "$tmp/agilepmd" ./cmd/agilepmd
fi
go build -o "$tmp/apiload" ./cmd/apiload

"$tmp/agilepmd" -addr "127.0.0.1:$PORT" -grace 60s -state "$tmp/state.json" \
    >"$tmp/daemon.log" 2>&1 &
pid=$!

# apiload polls /healthz itself; its exit code is the gate.
if ! "$tmp/apiload" -addr "http://127.0.0.1:$PORT" \
    -sessions "$SESSIONS" -per-session "$PER" \
    -max-failed 0 -min-hit-rate 0.05 -min-hit-speedup 100 >"$tmp/bench.txt"; then
    echo "api_gate: load run failed; daemon log tail:" >&2
    tail -20 "$tmp/daemon.log" >&2
    exit 1
fi

if [ -n "$LABEL" ]; then
    go run ./cmd/benchjson -label "$LABEL" -out BENCH_api.json <"$tmp/bench.txt"
fi

# Graceful shutdown: drain the queue, persist the terminal ledger,
# exit cleanly.
kill -TERM "$pid"
wait "$pid" || {
    echo "api_gate: daemon exited nonzero; log tail:" >&2
    tail -20 "$tmp/daemon.log" >&2
    exit 1
}
pid=""
if ! grep -q '"counters"' "$tmp/state.json"; then
    echo "api_gate: state file missing or malformed" >&2
    exit 1
fi
echo "api_gate: OK ($SESSIONS sessions x $PER requests, state persisted)"
