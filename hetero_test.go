package agilepower

import (
	"testing"
	"time"
)

func TestHostClassesBuildFleet(t *testing.T) {
	lowPower := DefaultProfile()
	lowPower.Name = "micro"
	lowPower.PeakPower = 120
	lowPower.IdlePower = 60
	lowPower.DeepIdlePower = 45

	sc := Scenario{
		HostClasses: []HostClass{
			{Count: 2, Cores: 32, MemoryGB: 512},
			{Count: 4, Cores: 8, MemoryGB: 128, Profile: lowPower},
		},
		VMs:     ConstantFleet(12, 1),
		Horizon: 4 * time.Hour,
		Manager: ManagerConfig{Policy: DPMS3},
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Hosts != 6 {
		t.Fatalf("hosts = %d, want 6", res.Hosts)
	}
	// Weighted mean cores: (2*32 + 4*8)/6 = 16.
	if res.HostCores != 16 {
		t.Fatalf("mean cores = %v, want 16", res.HostCores)
	}
	if res.Satisfaction < 0.99 {
		t.Fatalf("satisfaction = %v on heterogeneous fleet", res.Satisfaction)
	}
	// Light load (12 cores on 128): consolidation parks hosts.
	if res.Sleeps == 0 {
		t.Fatal("heterogeneous fleet never consolidated")
	}
}

func TestHostClassesValidation(t *testing.T) {
	sc := Scenario{
		HostClasses: []HostClass{{Count: 0}},
		VMs:         ConstantFleet(2, 1),
	}
	if err := sc.Validate(); err == nil {
		t.Fatal("accepted zero-count host class")
	}
	// Classes alone (no Hosts) are sufficient.
	sc = Scenario{
		HostClasses: []HostClass{{Count: 2}},
		VMs:         ConstantFleet(2, 1),
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("classes-only scenario rejected: %v", err)
	}
}

func TestHostClassDefaults(t *testing.T) {
	sc := Scenario{
		HostClasses: []HostClass{{Count: 2}}, // default 16 cores / 256 GB
		VMs:         ConstantFleet(4, 0.5),
		Horizon:     time.Hour,
		Manager:     ManagerConfig{Policy: Static},
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Hosts != 2 || res.HostCores != 16 {
		t.Fatalf("defaults not applied: hosts=%d cores=%v", res.Hosts, res.HostCores)
	}
}

func TestRunReplicated(t *testing.T) {
	sc := Scenario{
		Hosts:   4,
		Horizon: 6 * time.Hour,
		Manager: ManagerConfig{Policy: DPMS3},
		VMs:     DiurnalFleet(16, 1), // replaced per seed below
	}
	rep, err := sc.RunReplicated(Seeds(1, 4), func(seed uint64) []VMSpec {
		return DiurnalFleet(16, seed)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 4 {
		t.Fatalf("runs = %d", len(rep.Runs))
	}
	if rep.EnergyKWh.N != 4 || rep.EnergyKWh.Mean <= 0 {
		t.Fatalf("energy stat = %+v", rep.EnergyKWh)
	}
	// Different workload draws must actually differ.
	if rep.EnergyKWh.Std == 0 {
		t.Fatal("replicated runs identical; fleet regeneration broken")
	}
	if rep.EnergyKWh.Min > rep.EnergyKWh.Mean || rep.EnergyKWh.Max < rep.EnergyKWh.Mean {
		t.Fatalf("stat bounds wrong: %+v", rep.EnergyKWh)
	}
	if rep.Satisfaction.Mean < 0.95 {
		t.Fatalf("satisfaction = %v", rep.Satisfaction.Mean)
	}
}

func TestRunReplicatedNeedsSeeds(t *testing.T) {
	sc := smallScenario()
	if _, err := sc.RunReplicated(nil, nil); err == nil {
		t.Fatal("accepted empty seed list")
	}
}

func TestSeedsHelper(t *testing.T) {
	s := Seeds(10, 3)
	if len(s) != 3 || s[0] != 10 || s[2] != 12 {
		t.Fatalf("Seeds = %v", s)
	}
}

func TestStatString(t *testing.T) {
	st := newStat([]float64{1, 2, 3})
	if st.Mean != 2 || st.N != 3 || st.Min != 1 || st.Max != 3 {
		t.Fatalf("stat = %+v", st)
	}
	if st.String() != "2.000 ± 1.000" {
		t.Fatalf("String = %q", st.String())
	}
	if z := newStat(nil); z.N != 0 {
		t.Fatal("empty stat nonzero")
	}
}
