package agilepower

import (
	"testing"
	"time"
)

// The whole stack must be exactly reproducible: same scenario, same
// numbers, across every policy and feature combination. This is the
// repo's central testing guarantee (the engine forbids wall-clock and
// global-RNG leakage), so exercise it broadly.
func TestDeterminismMatrix(t *testing.T) {
	cases := []struct {
		name string
		sc   Scenario
	}{
		{"dpm-s3 mixed", Scenario{
			Hosts: 6, VMs: MixedFleet(24, 5), Horizon: 8 * time.Hour, Seed: 5,
			Manager: ManagerConfig{Policy: DPMS3},
		}},
		{"dpm-s5 predictive", Scenario{
			Hosts: 6, VMs: WorkdayFleet(18, 1, 5), Horizon: 12 * time.Hour, Seed: 5,
			Manager: ManagerConfig{Policy: DPMS5, PredictiveWake: true},
		}},
		{"dvfs combined churn", Scenario{
			Hosts: 6, VMs: DiurnalFleet(18, 5), Horizon: 8 * time.Hour, Seed: 5,
			Manager: ManagerConfig{Policy: Policy{
				Name: "combo", LoadBalance: true, Consolidate: true,
				PowerManage: true, SleepState: S3, DVFS: true,
			}},
			Churn: &ChurnSpec{ArrivalsPerHour: 3, MeanLifetime: 2 * time.Hour},
		}},
		{"replicated groups panic", Scenario{
			Hosts: 8, VMs: ReplicatedFleet(6, 3, 5), Horizon: 8 * time.Hour, Seed: 5,
			Manager: ManagerConfig{Policy: DPMS3, PanicShortfall: 0.3},
		}},
		{"hetero resume-failures", func() Scenario {
			p := DefaultProfile()
			p.ResumeFailProb = 0.2
			return Scenario{
				HostClasses: []HostClass{{Count: 3, Cores: 32}, {Count: 4}},
				Profile:     p,
				VMs:         BatchFleet(16, 5),
				Horizon:     8 * time.Hour,
				Seed:        5,
				Manager:     ManagerConfig{Policy: DPMS3},
			}
		}()},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			a, err := tc.sc.Run()
			if err != nil {
				t.Fatal(err)
			}
			b, err := tc.sc.Run()
			if err != nil {
				t.Fatal(err)
			}
			if a.Energy != b.Energy {
				t.Fatalf("energy diverged: %v vs %v", a.Energy, b.Energy)
			}
			if a.Satisfaction != b.Satisfaction || a.ViolationFraction != b.ViolationFraction {
				t.Fatalf("SLA diverged")
			}
			if a.Migrations.Completed != b.Migrations.Completed ||
				a.Sleeps != b.Sleeps || a.Wakes != b.Wakes ||
				a.ResumeFailures != b.ResumeFailures ||
				a.Manager.FreqChanges != b.Manager.FreqChanges {
				t.Fatalf("action counts diverged: %+v vs %+v", a.Manager, b.Manager)
			}
			if a.Events.Len() != b.Events.Len() {
				t.Fatalf("event logs diverged: %d vs %d", a.Events.Len(), b.Events.Len())
			}
			for i, ea := range a.Events.All() {
				if ea != b.Events.All()[i] {
					t.Fatalf("event %d diverged: %v vs %v", i, ea, b.Events.All()[i])
				}
			}
		})
	}
}
