package agilepower_test

// The benchmark harness regenerates every table and figure in the
// paper's (reconstructed) evaluation — see DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded results.
//
//	go test -bench=. -benchmem                 # quick mode, all experiments
//	go test -bench=BenchmarkFigureF5 -full     # one experiment at paper scale
//
// Each benchmark prints its experiment's report once (on the first
// iteration) and then measures the cost of regenerating it, so
// `-bench` output doubles as the reproduction artifact.

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"sync"
	"testing"

	"agilepower/internal/experiments"
)

var fullScale = flag.Bool("full", false, "run experiments at paper scale instead of quick mode")

var printOnce sync.Map

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	opts := experiments.Options{Quick: !*fullScale}
	// Print the report once per experiment per process so the bench
	// run doubles as the figure regeneration artifact.
	if _, done := printOnce.LoadOrStore(id, true); !done {
		fmt.Fprintf(os.Stdout, "\n=== experiment %s ===\n", id)
		if err := experiments.Run(id, os.Stdout, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := experiments.Run(id, &buf, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableT1 regenerates the power-state characterization table.
func BenchmarkTableT1(b *testing.B) { benchExperiment(b, "t1") }

// BenchmarkFigureF2 regenerates the suspend/resume power trace.
func BenchmarkFigureF2(b *testing.B) { benchExperiment(b, "f2") }

// BenchmarkFigureF3 regenerates the S3-vs-S5 break-even analysis.
func BenchmarkFigureF3(b *testing.B) { benchExperiment(b, "f3") }

// BenchmarkFigureF4 regenerates the energy-proportionality curves.
func BenchmarkFigureF4(b *testing.B) { benchExperiment(b, "f4") }

// BenchmarkFigureF5 regenerates the day-long trace-driven run.
func BenchmarkFigureF5(b *testing.B) { benchExperiment(b, "f5") }

// BenchmarkFigureF6 regenerates the performance-impact comparison.
func BenchmarkFigureF6(b *testing.B) { benchExperiment(b, "f6") }

// BenchmarkFigureF7 regenerates the scale-out sweep.
func BenchmarkFigureF7(b *testing.B) { benchExperiment(b, "f7") }

// BenchmarkFigureF8 regenerates the management-overhead comparison.
func BenchmarkFigureF8(b *testing.B) { benchExperiment(b, "f8") }

// BenchmarkFigureF9 regenerates the control-period sensitivity sweep.
func BenchmarkFigureF9(b *testing.B) { benchExperiment(b, "f9") }

// BenchmarkFigureF10 regenerates the energy-performance scatter.
func BenchmarkFigureF10(b *testing.B) { benchExperiment(b, "f10") }

// BenchmarkTableT2 regenerates the end-to-end summary table.
func BenchmarkTableT2(b *testing.B) { benchExperiment(b, "t2") }

// BenchmarkTableProv regenerates the dynamic-provisioning table.
func BenchmarkTableProv(b *testing.B) { benchExperiment(b, "prov") }

// BenchmarkFigurePredict regenerates the predictive-wake ablation.
func BenchmarkFigurePredict(b *testing.B) { benchExperiment(b, "predict") }

// BenchmarkFigureDVFS regenerates the DVFS-vs-sleep-states comparison.
func BenchmarkFigureDVFS(b *testing.B) { benchExperiment(b, "dvfs") }

// BenchmarkRobustness regenerates the policy × fault-rate robustness
// grid.
func BenchmarkRobustness(b *testing.B) { benchExperiment(b, "robust") }

// BenchmarkCtrlPlane regenerates the policy × delay×loss grid under an
// imperfect control plane.
func BenchmarkCtrlPlane(b *testing.B) { benchExperiment(b, "ctrl") }

// BenchmarkAblations regenerates the design-choice ablation tables.
func BenchmarkAblations(b *testing.B) { benchExperiment(b, "ablate") }
