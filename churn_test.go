package agilepower

import (
	"testing"
	"time"
)

func churnScenario(policy Policy) Scenario {
	return Scenario{
		Name:    "churn-test",
		Hosts:   8,
		VMs:     ConstantFleet(8, 0.5),
		Horizon: 12 * time.Hour,
		Manager: ManagerConfig{Policy: policy},
		Churn: &ChurnSpec{
			ArrivalsPerHour: 6,
			MeanLifetime:    2 * time.Hour,
			DemandCores:     1,
		},
	}
}

func TestChurnSpecValidate(t *testing.T) {
	bad := ChurnSpec{ArrivalsPerHour: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted negative arrival rate")
	}
	sc := churnScenario(DPMS3)
	sc.Churn = &bad
	if _, err := sc.Run(); err == nil {
		t.Fatal("Run accepted invalid churn")
	}
}

func TestChurnArrivalsPlacedAndDeparted(t *testing.T) {
	res, err := churnScenario(DPMS3).Run()
	if err != nil {
		t.Fatal(err)
	}
	// ~72 expected arrivals over 12h at 6/h.
	if res.Churn.Arrived < 40 || res.Churn.Arrived > 110 {
		t.Fatalf("arrived = %d, want ~72", res.Churn.Arrived)
	}
	if res.Churn.Placed == 0 {
		t.Fatal("no arrivals were placed")
	}
	if res.Churn.Departed == 0 {
		t.Fatal("no VMs departed")
	}
	if res.Manager.Provisioned != res.Churn.Placed {
		t.Fatalf("manager provisioned %d but cluster placed %d",
			res.Manager.Provisioned, res.Churn.Placed)
	}
	// Provisioning is fast when capacity is awake or wakes in seconds:
	// p95 within one control period + a wake.
	if res.Churn.ProvisionP95 > 10*time.Minute {
		t.Fatalf("p95 provision latency = %v", res.Churn.ProvisionP95)
	}
	if res.Churn.ProvisionP50 > res.Churn.ProvisionP95 || res.Churn.ProvisionP95 > res.Churn.ProvisionMax {
		t.Fatalf("latency percentiles disordered: %+v", res.Churn)
	}
}

func TestChurnUnderStaticPolicyStillProvisions(t *testing.T) {
	// Provisioning is basic duty even for the static (no-optimization)
	// baseline.
	res, err := churnScenario(Static).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Churn.Placed == 0 {
		t.Fatal("static policy never placed arrivals")
	}
	if res.Migrations.Completed != 0 || res.Sleeps != 0 {
		t.Fatal("static policy took optimization actions")
	}
}

func TestChurnDeterministic(t *testing.T) {
	a, err := churnScenario(DPMS3).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := churnScenario(DPMS3).Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Churn != b.Churn || a.Energy != b.Energy {
		t.Fatalf("churn runs diverged: %+v vs %+v", a.Churn, b.Churn)
	}
}

func TestNoChurnZeroStats(t *testing.T) {
	res, err := smallScenario().Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Churn != (ChurnStats{}) {
		t.Fatalf("churn stats nonzero without churn: %+v", res.Churn)
	}
}
