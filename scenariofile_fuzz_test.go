package agilepower

import (
	"testing"
)

// FuzzParseScenario hardens the scenario-file decoder: arbitrary JSON
// must either yield a scenario its own Validate accepts or an error —
// never panic, never materialize an invalid scenario.
func FuzzParseScenario(f *testing.F) {
	f.Add(`{"hosts":4,"fleets":[{"kind":"mixed","count":8}],"horizonHours":2,"policy":"dpm-s3"}`)
	f.Add(`{"hosts":8,"fleets":[{"kind":"replicated","services":3,"replicas":2}],"manager":{"targetUtil":0.7,"forecast":"ewma"}}`)
	f.Add(`{"hosts":2,"fleets":[{"kind":"flat","count":4,"demand":2}],"ctrlplane":{"delayMS":2000,"loss":0.1}}`)
	f.Add(`{"hosts":2,"fleets":[{"kind":"flat"}],"ctrlplane":{"delayMS":-5}}`)
	f.Add(`{"hosts":2,"fleets":[{"kind":"flat"}],"ctrlplane":{"loss":7}}`)
	f.Add(`{"hostClasses":[{"count":2,"cores":32}],"fleets":[{"kind":"diurnal","count":4}],"churn":{"arrivalsPerHour":2}}`)
	f.Add(`{"hosts":4,"fleets":[{"kind":"spiky","count":3,"spikes":-1}]}`)
	f.Add(`{"hosts":-3,"fleets":[{"kind":"batch","count":1}],"horizonHours":-1}`)
	f.Add(`{"fleets":[{"kind":"nope"}]}`)
	f.Add(`{"hosts":4,"fleets":[]}`)
	f.Add(`{`)
	f.Add(`null`)
	f.Add(`[]`)
	f.Add(`{"hosts":4,"fleets":[{"kind":"flat","count":2}],"faults":{"rate":0.3},"events":[{"at":"1h","action":"crash","target":"host-1..2","repair":"30m"},{"at":"2h","action":"fault-rate","rate":0.9,"duration":"1h"}]}`)
	f.Add(`{"hosts":4,"fleets":[{"kind":"flat","count":2}],"events":[{"at":"90m","action":"demand-surge","factor":3,"fleet":"flat","duration":"1h"},{"at":"3h","action":"power-cap","watts":700}]}`)
	f.Add(`{"hosts":4,"fleets":[{"kind":"flat","count":2}],"assert":[{"kind":"no-stranded-vm","over":"10m"},{"kind":"power-below","watts":2000},{"kind":"sla-violation-max","frac":0.1}]}`)
	f.Add(`{"hosts":8,"fleets":[{"kind":"diurnal","count":8}],"chaos":[{"pattern":"az-outage","intensity":0.5,"at":"2h","duration":"1h","salt":3},{"pattern":"thermal-emergency","intensity":1}]}`)
	f.Add(`{"hosts":4,"fleets":[{"kind":"flat","count":2}],"events":[{"at":"-1h","action":"crash","target":"host-1"}]}`)
	f.Add(`{"hosts":4,"fleets":[{"kind":"flat","count":2}],"chaos":[{"pattern":"flaky-resume","intensity":1}]}`)
	f.Add(`{"hosts":4,"fleets":[{"kind":"flat","count":2}],"telemtryCap":100}`)
	f.Add(`{"hosts":4,"fleets":[{"kind":"flat","count":2}]} trailing`)
	f.Fuzz(func(t *testing.T, input string) {
		sc, err := ParseScenario([]byte(input))
		if err != nil {
			return
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("decoder produced a scenario its own Validate rejects: %v\ninput: %s", err, input)
		}
		// A materialized control plane is never dormant — dormant files
		// must leave the field nil so no plane is ever constructed.
		if sc.CtrlPlane != nil && !sc.CtrlPlane.Enabled() {
			t.Fatalf("decoder materialized a dormant control plane from %s", input)
		}
	})
}
