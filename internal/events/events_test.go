package events

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestKindStrings(t *testing.T) {
	kinds := map[Kind]string{
		VMPlaced:           "vm-placed",
		VMRemoved:          "vm-removed",
		VMArrived:          "vm-arrived",
		MigrationStarted:   "migration-started",
		MigrationCompleted: "migration-completed",
		HostSleeping:       "host-sleeping",
		HostWaking:         "host-waking",
		HostSettled:        "host-settled",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d → %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() != "event?" {
		t.Error("unknown kind name")
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 90 * time.Minute, Kind: MigrationStarted, VM: 7, Host: 3, Detail: "1→3"}
	s := e.String()
	for _, want := range []string{"01:30:00", "migration-started", "vm=7", "host=3", "1→3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event string %q missing %q", s, want)
		}
	}
	// Zero subjects are omitted.
	s = Event{Kind: HostSettled, Host: 2}.String()
	if strings.Contains(s, "vm=") {
		t.Fatalf("zero VM rendered: %q", s)
	}
}

func TestLogAppendAndFilter(t *testing.T) {
	l := NewLog(100)
	l.Append(Event{At: 1 * time.Minute, Kind: VMPlaced, VM: 1, Host: 2})
	l.Append(Event{At: 2 * time.Minute, Kind: HostSleeping, Host: 2})
	l.Append(Event{At: 3 * time.Minute, Kind: VMPlaced, VM: 3, Host: 4})
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	placed := l.Filter(OfKind(VMPlaced))
	if len(placed) != 2 {
		t.Fatalf("placed = %d", len(placed))
	}
	if got := l.Filter(OfKind(VMPlaced), ForVM(3)); len(got) != 1 || got[0].Host != 4 {
		t.Fatalf("combined filter = %v", got)
	}
	if got := l.Filter(ForHost(2)); len(got) != 2 {
		t.Fatalf("host filter = %d", len(got))
	}
	if got := l.Filter(Between(90*time.Second, 4*time.Minute)); len(got) != 2 {
		t.Fatalf("time filter = %d", len(got))
	}
	counts := l.Counts()
	if counts[VMPlaced] != 2 || counts[HostSleeping] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestLogBoundedDropsOldestHalf(t *testing.T) {
	l := NewLog(10)
	for i := 0; i < 15; i++ {
		l.Append(Event{At: time.Duration(i) * time.Second, Kind: VMPlaced, VM: i + 1})
	}
	if l.Len() > 10 {
		t.Fatalf("len = %d exceeds cap", l.Len())
	}
	if l.Dropped() != 5 {
		t.Fatalf("dropped = %d, want 5", l.Dropped())
	}
	// The newest events survive.
	all := l.All()
	if all[len(all)-1].VM != 15 {
		t.Fatalf("lost the newest event: %v", all[len(all)-1])
	}
	if all[0].VM != 6 {
		t.Fatalf("oldest retained = %v, want vm 6", all[0])
	}
}

func TestLogWrite(t *testing.T) {
	l := NewLog(4)
	for i := 0; i < 7; i++ {
		l.Append(Event{At: time.Duration(i) * time.Second, Kind: HostWaking, Host: 1})
	}
	var buf bytes.Buffer
	if err := l.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "earlier events dropped") {
		t.Fatalf("drop notice missing:\n%s", out)
	}
	if strings.Count(out, "host-waking") != l.Len() {
		t.Fatalf("wrong line count:\n%s", out)
	}
}

func TestNewLogDefaultCap(t *testing.T) {
	l := NewLog(0)
	if l.cap != 100_000 {
		t.Fatalf("default cap = %d", l.cap)
	}
}
