// Package events records the structured audit trail of a simulation:
// every placement, migration, power transition and provisioning action,
// timestamped in virtual time. Operators read it as a timeline; tests
// read it as ground truth about what the manager actually did.
package events

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Kind classifies an event.
type Kind int

const (
	// VMPlaced — a VM landed on a host (initial placement or
	// provisioning).
	VMPlaced Kind = iota
	// VMRemoved — a VM departed the cluster.
	VMRemoved
	// VMArrived — a VM arrived and awaits placement.
	VMArrived
	// MigrationStarted — pre-copy began.
	MigrationStarted
	// MigrationCompleted — the VM switched hosts.
	MigrationCompleted
	// HostSleeping — a host began entering a sleep state.
	HostSleeping
	// HostWaking — a host began exiting a sleep state.
	HostWaking
	// HostSettled — a host completed a transition.
	HostSettled
	// MigrationFailed — an in-flight migration aborted; the VM stays on
	// its source host.
	MigrationFailed
	// HostCrashed — a host crashed and is down for repair.
	HostCrashed
	// DemandScaled — a scenario event rescaled a fleet's demand
	// (demand-surge); Detail carries the fleet selector and factor.
	DemandScaled
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case VMPlaced:
		return "vm-placed"
	case VMRemoved:
		return "vm-removed"
	case VMArrived:
		return "vm-arrived"
	case MigrationStarted:
		return "migration-started"
	case MigrationCompleted:
		return "migration-completed"
	case HostSleeping:
		return "host-sleeping"
	case HostWaking:
		return "host-waking"
	case HostSettled:
		return "host-settled"
	case MigrationFailed:
		return "migration-failed"
	case HostCrashed:
		return "host-crashed"
	case DemandScaled:
		return "demand-scaled"
	default:
		return "event?"
	}
}

// Event is one audit record. VM and Host are the subjects (zero when
// not applicable); Detail carries kind-specific context ("S3", "host
// 3→7").
type Event struct {
	At     time.Duration
	Kind   Kind
	VM     int
	Host   int
	Detail string
}

// String renders one line of the timeline.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-20s", fmtAt(e.At), e.Kind)
	if e.VM != 0 {
		fmt.Fprintf(&b, " vm=%d", e.VM)
	}
	if e.Host != 0 {
		fmt.Fprintf(&b, " host=%d", e.Host)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " %s", e.Detail)
	}
	return b.String()
}

func fmtAt(d time.Duration) string {
	h := int(d.Hours())
	m := int(d.Minutes()) % 60
	sec := int(d.Seconds()) % 60
	return fmt.Sprintf("%02d:%02d:%02d", h, m, sec)
}

// Log is an append-only bounded event recorder. When the cap is
// reached, the oldest half is dropped (keeping a simulation from
// accumulating unbounded history); Dropped reports how many were lost.
type Log struct {
	cap     int
	events  []Event
	dropped int
	// shared marks a copy-on-write clone: events aliases another log's
	// backing array and must be detached (copied) before the first
	// append. Cloning a pristine world's construction log is pure
	// bookkeeping this way — forks that never record an event (or are
	// thrown away) never pay for the copy.
	shared bool
}

// NewLog returns a log bounded at capacity (≤0 selects 100,000).
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = 100_000
	}
	return &Log{cap: capacity}
}

// Append records an event.
func (l *Log) Append(e Event) {
	if l.shared {
		l.detach()
	}
	if len(l.events) >= l.cap {
		drop := l.cap / 2
		l.dropped += drop
		l.events = append(l.events[:0], l.events[drop:]...)
	}
	l.events = append(l.events, e)
}

// Clone returns an independent copy of the log: same cap, same
// retained events, same drop count. Appends to either side never
// affect the other — the snapshot/fork layer uses this to give each
// forked run its own audit trail seeded with the prototype's
// construction events. The copy is lazy: clone and source share the
// backing array until one of them appends (both sides detach before
// their first write, so the shared prefix is never mutated).
func (l *Log) Clone() *Log {
	out := &Log{cap: l.cap, dropped: l.dropped}
	if len(l.events) > 0 {
		out.events = l.events[:len(l.events):len(l.events)]
		out.shared = true
		l.shared = true
	}
	return out
}

// detach gives a copy-on-write log its own backing array.
func (l *Log) detach() {
	owned := make([]Event, len(l.events))
	copy(owned, l.events)
	l.events = owned
	l.shared = false
}

// Len returns the number of retained events.
func (l *Log) Len() int { return len(l.events) }

// Dropped returns how many events were discarded to stay within the
// cap.
func (l *Log) Dropped() int { return l.dropped }

// All returns the retained events in order (callers must not mutate).
func (l *Log) All() []Event { return l.events }

// Filter returns the retained events matching every provided
// predicate.
func (l *Log) Filter(preds ...func(Event) bool) []Event {
	var out []Event
outer:
	for _, e := range l.events {
		for _, p := range preds {
			if !p(e) {
				continue outer
			}
		}
		out = append(out, e)
	}
	return out
}

// OfKind selects events by kind.
func OfKind(kinds ...Kind) func(Event) bool {
	return func(e Event) bool {
		for _, k := range kinds {
			if e.Kind == k {
				return true
			}
		}
		return false
	}
}

// ForVM selects events about one VM.
func ForVM(id int) func(Event) bool {
	return func(e Event) bool { return e.VM == id }
}

// ForHost selects events about one host.
func ForHost(id int) func(Event) bool {
	return func(e Event) bool { return e.Host == id }
}

// Between selects events in [from, to).
func Between(from, to time.Duration) func(Event) bool {
	return func(e Event) bool { return e.At >= from && e.At < to }
}

// Write renders the retained events one per line.
func (l *Log) Write(w io.Writer) error {
	if l.dropped > 0 {
		if _, err := fmt.Fprintf(w, "(%d earlier events dropped)\n", l.dropped); err != nil {
			return err
		}
	}
	for _, e := range l.events {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}

// Counts returns how many retained events there are per kind.
func (l *Log) Counts() map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range l.events {
		out[e.Kind]++
	}
	return out
}
