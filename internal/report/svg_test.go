package report

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"

	"agilepower/internal/telemetry"
)

func demoSeries(name string, scale float64) *telemetry.Series {
	s := telemetry.NewSeries(name)
	for h := 0; h <= 24; h++ {
		s.Append(time.Duration(h)*time.Hour, scale*float64(h%12))
	}
	return s
}

func TestSVGChartRenders(t *testing.T) {
	var buf bytes.Buffer
	c := SVGChart{Title: "power <vs> demand", YLabel: "W"}
	if err := c.Write(&buf, demoSeries("power_w", 100), demoSeries("demand", 40)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatalf("not a complete svg: %q...", out[:60])
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Fatalf("polylines = %d, want 2", strings.Count(out, "<polyline"))
	}
	// Title is XML-escaped.
	if !strings.Contains(out, "power &lt;vs&gt; demand") {
		t.Fatal("title not escaped")
	}
	// Legend entries for both series.
	if !strings.Contains(out, ">power_w<") || !strings.Contains(out, ">demand<") {
		t.Fatal("legend missing series names")
	}
	// Axis ticks exist.
	if !strings.Contains(out, "6.0h") || !strings.Contains(out, "24.0h") {
		t.Fatalf("time ticks missing:\n%s", out)
	}
}

func TestSVGChartErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := (SVGChart{}).Write(&buf); err == nil {
		t.Fatal("accepted zero series")
	}
	empty := telemetry.NewSeries("x")
	if err := (SVGChart{}).Write(&buf, empty); err == nil {
		t.Fatal("accepted empty series")
	}
	zero := telemetry.NewSeries("z")
	zero.Append(0, 0)
	if err := (SVGChart{}).Write(&buf, zero); err == nil {
		t.Fatal("accepted all-zero single-point series")
	}
}

func TestSVGChartCoordinatesInCanvas(t *testing.T) {
	var buf bytes.Buffer
	c := SVGChart{Width: 400, Height: 200}
	if err := c.Write(&buf, demoSeries("s", 10)); err != nil {
		t.Fatal(err)
	}
	// Crude bounds check: no polyline coordinate beyond the canvas.
	out := buf.String()
	start := strings.Index(out, `<polyline points="`) + len(`<polyline points="`)
	end := strings.Index(out[start:], `"`)
	for _, pair := range strings.Fields(out[start : start+end]) {
		parts := strings.Split(pair, ",")
		if len(parts) != 2 {
			t.Fatalf("bad point %q", pair)
		}
		x, err1 := strconv.ParseFloat(parts[0], 64)
		y, err2 := strconv.ParseFloat(parts[1], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad point %q: %v %v", pair, err1, err2)
		}
		if x < 0 || x > 400 || y < 0 || y > 200 {
			t.Fatalf("point %q outside canvas", pair)
		}
	}
}
