package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"agilepower/internal/telemetry"
)

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("T1", "state", "power_w", "latency")
	tbl.AddRow("S3", 12.0, "8s")
	tbl.AddRow("S5", 4.5, "190s")
	if tbl.Rows() != 2 {
		t.Fatalf("Rows = %d", tbl.Rows())
	}
	var buf bytes.Buffer
	if err := tbl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "T1\n") {
		t.Fatalf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.Contains(lines[1], "state") || !strings.Contains(lines[1], "power_w") {
		t.Fatalf("header wrong: %q", lines[1])
	}
	if !strings.Contains(lines[3], "12") || !strings.Contains(lines[4], "4.500") {
		t.Fatalf("rows wrong: %q", out)
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tbl := NewTable("", "name", "note")
	tbl.AddRow("a,b", `say "hi"`)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

func TestFormatFloat(t *testing.T) {
	if formatFloat(3) != "3" {
		t.Fatalf("int float = %q", formatFloat(3))
	}
	if formatFloat(3.14159) != "3.142" {
		t.Fatalf("frac float = %q", formatFloat(3.14159))
	}
}

func TestChartRendersBars(t *testing.T) {
	s := telemetry.NewSeries("power")
	s.Append(0, 50)
	s.Append(time.Hour, 100)
	var buf bytes.Buffer
	c := Chart{Title: "F4", Width: 10, YLabel: "W"}
	if err := c.Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "F4") || !strings.Contains(out, "max=100") {
		t.Fatalf("chart header wrong: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("chart lines = %d", len(lines))
	}
	// Half-value bar should be 5 hashes; full 10.
	if strings.Count(lines[1], "#") != 5 || strings.Count(lines[2], "#") != 10 {
		t.Fatalf("bar scaling wrong: %q", out)
	}
}

func TestChartEmptySeriesSafe(t *testing.T) {
	var buf bytes.Buffer
	c := Chart{}
	if err := c.Write(&buf, telemetry.NewSeries("x")); err != nil {
		t.Fatal(err)
	}
}

func TestMultiSeriesCSV(t *testing.T) {
	a := telemetry.NewSeries("demand")
	a.Append(0, 1)
	a.Append(time.Minute, 2)
	b := telemetry.NewSeries("power")
	b.Append(0, 100)
	b.Append(time.Minute, 200)
	var buf bytes.Buffer
	if err := MultiSeriesCSV(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	want := "offset_seconds,demand,power\n0,1,100\n60,2,200\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
	if err := MultiSeriesCSV(&buf); err == nil {
		t.Fatal("accepted zero series")
	}
}
