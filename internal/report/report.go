// Package report renders experiment results as aligned ASCII tables,
// CSV, and simple text charts — the output layer of the benchmark
// harness that regenerates the paper's tables and figures.
package report

import (
	"fmt"
	"io"
	"strings"

	"agilepower/internal/telemetry"
)

// Table is a simple column-aligned table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// formatFloat renders floats compactly: integers without decimals,
// otherwise 3 significant decimals.
func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}

// AddSeparator appends a horizontal rule between row groups (rendered
// as a dashed line by Write; CSV output and Rows skip it).
func (t *Table) AddSeparator() { t.rows = append(t.rows, nil) }

// Rows returns the number of data rows (separators excluded).
func (t *Table) Rows() int {
	n := 0
	for _, row := range t.rows {
		if row != nil {
			n++
		}
	}
	return n
}

// Write renders the table.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		if row == nil {
			writeRow(sep)
			continue
		}
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (no title line).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRec := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteString("\n")
	}
	writeRec(t.Headers)
	for _, row := range t.rows {
		if row == nil {
			continue
		}
		writeRec(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Chart renders a time series as a horizontal-bar ASCII chart, one row
// per sample: the textual stand-in for the paper's figures.
type Chart struct {
	Title string
	// Width is the bar width in characters (default 50).
	Width int
	// YLabel names the value axis.
	YLabel string
}

// Write renders the series. Bars are scaled to the series maximum.
func (c *Chart) Write(w io.Writer, s *telemetry.Series) error {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	max := s.Max()
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s", c.Title)
		if c.YLabel != "" {
			fmt.Fprintf(&b, "  (%s, max=%s)", c.YLabel, formatFloat(max))
		}
		b.WriteString("\n")
	}
	for _, p := range s.Points() {
		n := 0
		if max > 0 {
			n = int(p.Value / max * float64(width))
		}
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "%10s |%s%s %s\n",
			fmtDur(p.At), strings.Repeat("#", n), strings.Repeat(" ", width-n), formatFloat(p.Value))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// MultiSeries renders several series as CSV columns sharing a time
// axis (sampled at each series' own points, aligned by downsampling
// callers do beforehand).
func MultiSeriesCSV(w io.Writer, series ...*telemetry.Series) error {
	if len(series) == 0 {
		return fmt.Errorf("report: no series")
	}
	var b strings.Builder
	b.WriteString("offset_seconds")
	for _, s := range series {
		b.WriteString(",")
		b.WriteString(s.Name)
	}
	b.WriteString("\n")
	// Use the first series' time axis; read others as step functions.
	for _, p := range series[0].Points() {
		fmt.Fprintf(&b, "%.0f", p.At.Seconds())
		for _, s := range series {
			fmt.Fprintf(&b, ",%s", formatFloat(s.At(p.At)))
		}
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func fmtDur(d interface{ Hours() float64 }) string {
	h := d.Hours()
	return fmt.Sprintf("%05.2fh", h)
}
