package report

import (
	"fmt"
	"io"
	"strings"
	"time"

	"agilepower/internal/telemetry"
)

// SVGChart renders one or more time series as a standalone SVG line
// chart — the figure-regeneration artifact (`cmd/sweep -svg`). Pure
// string assembly, no dependencies.
type SVGChart struct {
	Title  string
	YLabel string
	// Width and Height are the canvas size in pixels (defaults
	// 720×360).
	Width, Height int
}

// svgPalette cycles for multiple series.
var svgPalette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

const svgMargin = 50

// Write renders the chart with one polyline per series. All series
// share the time axis of the longest one; the y-axis spans [0, max].
func (c SVGChart) Write(w io.Writer, series ...*telemetry.Series) error {
	if len(series) == 0 {
		return fmt.Errorf("report: svg chart needs at least one series")
	}
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 720
	}
	if height <= 0 {
		height = 360
	}
	plotW := float64(width - 2*svgMargin)
	plotH := float64(height - 2*svgMargin)

	var maxT time.Duration
	maxV := 0.0
	for _, s := range series {
		pts := s.Points()
		if len(pts) > 0 {
			if t := pts[len(pts)-1].At; t > maxT {
				maxT = t
			}
		}
		if v := s.Max(); v > maxV {
			maxV = v
		}
	}
	if maxT == 0 || maxV == 0 {
		return fmt.Errorf("report: svg chart has no drawable data")
	}

	x := func(at time.Duration) float64 {
		return svgMargin + plotW*float64(at)/float64(maxT)
	}
	y := func(v float64) float64 {
		return svgMargin + plotH*(1-v/maxV)
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="24" font-size="16">%s</text>`+"\n", svgMargin, escapeXML(c.Title))
	}
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		svgMargin, height-svgMargin, width-svgMargin, height-svgMargin)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		svgMargin, svgMargin, svgMargin, height-svgMargin)
	// Y ticks at quarters.
	for i := 0; i <= 4; i++ {
		v := maxV * float64(i) / 4
		yy := y(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			svgMargin, yy, width-svgMargin, yy)
		fmt.Fprintf(&b, `<text x="4" y="%.1f">%s</text>`+"\n", yy+4, formatFloat(v))
	}
	// X ticks at quarters (hours).
	for i := 0; i <= 4; i++ {
		at := time.Duration(float64(maxT) * float64(i) / 4)
		xx := x(at)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d">%.1fh</text>`+"\n", xx-12, height-svgMargin+18, at.Hours())
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="4" y="%d">%s</text>`+"\n", svgMargin-10, escapeXML(c.YLabel))
	}
	// Series polylines + legend.
	for i, s := range series {
		color := svgPalette[i%len(svgPalette)]
		var pl strings.Builder
		for _, p := range s.Points() {
			fmt.Fprintf(&pl, "%.1f,%.1f ", x(p.At), y(p.Value))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
			strings.TrimSpace(pl.String()), color)
		lx := width - svgMargin - 150
		ly := svgMargin + 16*i
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="3"/>`+"\n",
			lx, ly, lx+20, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", lx+26, ly+4, escapeXML(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
