package rescache

import (
	"fmt"
	"sync"
	"testing"
)

func TestKeyDomainSeparation(t *testing.T) {
	// (version, body) pairs that concatenate identically must not
	// collide: the separator byte keeps "v1"+"x" and "v1x"+"" apart.
	a := Key("v1", []byte("x"))
	b := Key("v1x", []byte(""))
	if a == b {
		t.Fatalf("version/body concatenation collides: %s", a)
	}
	if a != Key("v1", []byte("x")) {
		t.Fatal("key is not deterministic")
	}
	if len(a) != 64 {
		t.Fatalf("key length = %d, want 64 hex chars", len(a))
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Get("k"); ok {
		t.Fatal("empty cache reported a hit")
	}
	if !c.Put("k", []byte("value")) {
		t.Fatal("put rejected under budget")
	}
	got, ok := c.Get("k")
	if !ok || string(got) != "value" {
		t.Fatalf("get = %q, %v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Bytes != 5 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", st.HitRate())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(30) // room for three 10-byte values
	val := func() []byte { return make([]byte, 10) }
	c.Put("a", val())
	c.Put("b", val())
	c.Put("c", val())
	// Touch a so b is now the LRU entry.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("d", val()) // evicts b
	if c.Contains("b") {
		t.Fatal("b survived eviction")
	}
	for _, k := range []string{"a", "c", "d"} {
		if !c.Contains(k) {
			t.Fatalf("%s evicted, want b only", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Bytes != 30 || st.Entries != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOversizeValueRejected(t *testing.T) {
	c := New(10)
	c.Put("small", make([]byte, 8))
	if c.Put("big", make([]byte, 11)) {
		t.Fatal("value above the whole budget was stored")
	}
	if !c.Contains("small") {
		t.Fatal("rejected put evicted existing entries")
	}
	if st := c.Stats(); st.Rejected != 1 || st.Evictions != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReputRefreshesValueAndBytes(t *testing.T) {
	c := New(100)
	c.Put("k", make([]byte, 40))
	c.Put("k", make([]byte, 10))
	st := c.Stats()
	if st.Bytes != 10 || st.Entries != 1 || st.Puts != 1 {
		t.Fatalf("stats after re-put = %+v", st)
	}
	v, _ := c.Get("k")
	if len(v) != 10 {
		t.Fatalf("value len = %d, want 10", len(v))
	}
}

func TestZeroBudgetStoresNothing(t *testing.T) {
	c := New(0)
	if c.Put("k", []byte("v")) {
		t.Fatal("zero-budget cache accepted a value")
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("zero-budget cache returned a hit")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1 << 14)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("key-%d", (g*500+i)%64)
				if v, ok := c.Get(k); ok {
					if string(v) != k {
						t.Errorf("corrupted value for %s: %q", k, v)
						return
					}
				} else {
					c.Put(k, []byte(k))
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits == 0 || st.Entries == 0 {
		t.Fatalf("stats = %+v", st)
	}
}
