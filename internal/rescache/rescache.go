// Package rescache is the content-addressed result cache behind the
// simulation service. Every run in this repository is deterministic: a
// scenario request, its seed, and the code version fully determine the
// result bytes. That makes a result cacheable forever under a key
// derived from exactly those three inputs — a hit is a map lookup
// where a miss is a simulation, and the cached bytes are guaranteed
// byte-identical to what a fresh run would produce (the service's
// tests gate this across the policy grid).
//
// The cache is a plain LRU over response byte slices with a byte
// budget: inserting past the budget evicts least-recently-used entries
// until the new entry fits. Hit/miss/eviction counters feed the
// /metrics endpoint.
package rescache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// Key derives the content address for a result: SHA-256 over the code
// version and the canonical request encoding, hex-encoded. Callers are
// responsible for canonicalization (encoding/json.Marshal of a fixed
// struct is canonical: field order is declaration order and map keys
// are sorted).
func Key(codeVersion string, canonical []byte) string {
	h := sha256.New()
	h.Write([]byte(codeVersion))
	h.Write([]byte{0}) // domain separator: version and body never blur
	h.Write(canonical)
	return hex.EncodeToString(h.Sum(nil))
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Puts      uint64
	Rejected  uint64 // values larger than the whole budget
	Bytes     int64
	Entries   int
}

// HitRate returns hits / (hits + misses), 0 when nothing was looked
// up yet.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type entry struct {
	key string
	val []byte
}

// Cache is a byte-budgeted LRU keyed by content address. The zero
// value is not usable; use New. All methods are safe for concurrent
// use.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	lru     *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses, evictions, puts, rejected uint64
}

// New returns a cache that holds at most budgetBytes of cached value
// bytes (keys and bookkeeping are not charged). A non-positive budget
// yields a cache that stores nothing — every Get is a miss, so the
// service degrades to always-simulate rather than failing.
func New(budgetBytes int64) *Cache {
	return &Cache{
		budget:  budgetBytes,
		lru:     list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached bytes for key. The returned slice is the
// cache's own backing array: callers must treat it as immutable (the
// service only ever writes it to an http.ResponseWriter).
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Contains reports whether key is cached without touching recency or
// the hit/miss counters.
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Put inserts val under key, evicting least-recently-used entries
// until it fits. It reports whether the value was stored: a value
// larger than the entire budget is rejected (storing it would evict
// everything and then still not fit a second one). Re-putting an
// existing key refreshes its value and recency.
func (c *Cache) Put(key string, val []byte) bool {
	size := int64(len(val))
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.budget {
		c.rejected++
		return false
	}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry)
		c.bytes += size - int64(len(e.val))
		e.val = val
		c.lru.MoveToFront(el)
	} else {
		c.entries[key] = c.lru.PushFront(&entry{key: key, val: val})
		c.bytes += size
		c.puts++
	}
	for c.bytes > c.budget {
		c.evictOldest()
	}
	return true
}

// evictOldest removes the LRU tail; callers hold c.mu.
func (c *Cache) evictOldest() {
	el := c.lru.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= int64(len(e.val))
	c.evictions++
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Puts:      c.puts,
		Rejected:  c.rejected,
		Bytes:     c.bytes,
		Entries:   len(c.entries),
	}
}
