// Package apimetrics is a dependency-free Prometheus text-format
// exposition layer for the simulation service: counters, callback
// gauges, and fixed-bucket histograms, rendered in registration order
// by WritePrometheus. It implements just enough of the exposition
// format (version 0.0.4) for a Prometheus scraper or a human with
// curl — the operator idiom the service's /metrics endpoint follows —
// without pulling the client library into a zero-dependency module.
package apimetrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	name, help string
	n          atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta (must be non-negative; counters only go up).
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is a point-in-time value read from a callback at scrape time,
// so gauges can surface live state (queue depth, cache bytes) without
// a write on every change.
type Gauge struct {
	name, help string
	fn         func() float64
}

// FuncCounter renders as a Prometheus counter but reads its value from
// a callback at scrape time — for monotonic counts owned by another
// subsystem (the job queue's lifetime counters, the cache's hit
// count) that would otherwise need double bookkeeping.
type FuncCounter struct {
	name, help string
	fn         func() uint64
}

// Histogram is a fixed-bucket cumulative histogram of observations —
// the Prometheus histogram type: one cumulative count per upper bound,
// plus _sum and _count series.
type Histogram struct {
	name, help string
	bounds     []float64 // ascending upper bounds, +Inf implicit
	counts     []atomic.Uint64
	count      atomic.Uint64
	sum        atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound admits v; sort.SearchFloat64s
	// finds the insertion point, which is exactly that index.
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefBuckets spans 1ms to ~4m in powers of four — wide enough to
// cover a cache hit (microseconds round to the lowest bucket) and a
// hyperscale cold run in one histogram.
func DefBuckets() []float64 {
	return []float64{0.001, 0.004, 0.016, 0.064, 0.256, 1.024, 4.096, 16.384, 65.536, 262.144}
}

// Registry holds instruments and renders them in registration order.
type Registry struct {
	mu    sync.Mutex
	order []any // *Counter | *Gauge | *Histogram
	names map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) register(name string, inst any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic(fmt.Sprintf("apimetrics: duplicate metric %q", name))
	}
	r.names[name] = true
	r.order = append(r.order, inst)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(name, c)
	return c
}

// Gauge registers a callback-backed gauge.
func (r *Registry) Gauge(name, help string, fn func() float64) *Gauge {
	g := &Gauge{name: name, help: help, fn: fn}
	r.register(name, g)
	return g
}

// CounterFunc registers a callback-backed counter.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) *FuncCounter {
	c := &FuncCounter{name: name, help: help, fn: fn}
	r.register(name, c)
	return c
}

// Histogram registers a histogram with the given ascending bucket
// upper bounds (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("apimetrics: histogram %q buckets not ascending", name))
		}
	}
	h := &Histogram{name: name, help: help, bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
	r.register(name, h)
	return h
}

// fmtFloat renders a float the way Prometheus clients do: shortest
// round-trip representation, integers without an exponent.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered instrument in text
// exposition format, in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	order := append([]any(nil), r.order...)
	r.mu.Unlock()
	for _, inst := range order {
		var err error
		switch m := inst.(type) {
		case *Counter:
			_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
				m.name, m.help, m.name, m.name, m.Value())
		case *FuncCounter:
			_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
				m.name, m.help, m.name, m.name, m.fn())
		case *Gauge:
			_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
				m.name, m.help, m.name, m.name, fmtFloat(m.fn()))
		case *Histogram:
			if _, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n",
				m.name, m.help, m.name); err != nil {
				return err
			}
			// Cumulative counts: each le bucket includes all smaller ones.
			cum := uint64(0)
			for i, bound := range m.bounds {
				cum += m.counts[i].Load()
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n",
					m.name, fmtFloat(bound), cum); err != nil {
					return err
				}
			}
			_, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
				m.name, m.Count(), m.name, fmtFloat(m.Sum()), m.name, m.Count())
		}
		if err != nil {
			return err
		}
	}
	return nil
}
