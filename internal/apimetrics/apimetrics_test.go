package apimetrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("api_runs_total", "total runs")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d", c.Value())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := "# HELP api_runs_total total runs\n# TYPE api_runs_total counter\napi_runs_total 5\n"
	if b.String() != want {
		t.Fatalf("exposition = %q, want %q", b.String(), want)
	}
}

func TestGaugeReadsCallbackAtScrape(t *testing.T) {
	r := NewRegistry()
	depth := 0
	r.Gauge("api_queue_depth", "queued jobs", func() float64 { return float64(depth) })
	depth = 7
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "api_queue_depth 7\n") {
		t.Fatalf("exposition = %q", b.String())
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("api_run_wall_seconds", "run wall time", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 56.05 {
		t.Fatalf("sum = %v", h.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE api_run_wall_seconds histogram",
		`api_run_wall_seconds_bucket{le="0.1"} 1`,
		`api_run_wall_seconds_bucket{le="1"} 3`,
		`api_run_wall_seconds_bucket{le="10"} 4`,
		`api_run_wall_seconds_bucket{le="+Inf"} 5`,
		"api_run_wall_seconds_sum 56.05",
		"api_run_wall_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `h_bucket{le="1"} 1`) {
		t.Fatalf("exposition = %q", b.String())
	}
}

func TestRegistrationOrderPreserved(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz", "")
	r.Counter("aaa", "")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Index(b.String(), "zzz") > strings.Index(b.String(), "aaa") {
		t.Fatalf("registration order not preserved:\n%s", b.String())
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("dup", "", func() float64 { return 0 })
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1})
	c := r.Counter("c", "")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.5)
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || c.Value() != 8000 {
		t.Fatalf("count = %d, counter = %d", h.Count(), c.Value())
	}
	if h.Sum() != 4000 {
		t.Fatalf("sum = %v", h.Sum())
	}
}
