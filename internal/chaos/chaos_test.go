package chaos

import (
	"reflect"
	"testing"
	"time"

	"agilepower/internal/script"
)

func world() World {
	return World{Hosts: 24, HostPeakW: 250, Faults: true, CtrlPlane: true, Seed: 7}
}

// Every pattern must be a pure function of (World, Params): two calls
// with identical inputs emit identical scripts.
func TestGenerateDeterministic(t *testing.T) {
	for _, name := range Patterns() {
		p := Params{Pattern: name, Intensity: 0.6, At: 2 * time.Hour, Duration: time.Hour, Salt: 3}
		a, err := Generate(world(), p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := Generate(world(), p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: generation not deterministic:\n%v\nvs\n%v", name, a, b)
		}
		if len(a) == 0 {
			t.Fatalf("%s: active pattern emitted no events", name)
		}
		hosts := world().Hosts
		for _, e := range a {
			if err := e.Validate(hosts); err != nil {
				t.Fatalf("%s emitted invalid event %v: %v", name, e, err)
			}
		}
	}
}

// Intensity <= 0 is dormant before any other check: nil script, no
// error, even for worlds the active pattern would reject.
func TestZeroIntensityDormant(t *testing.T) {
	for _, name := range Patterns() {
		for _, in := range []float64{0, -1} {
			evs, err := Generate(World{}, Params{Pattern: name, Intensity: in})
			if err != nil || evs != nil {
				t.Fatalf("%s at intensity %v: got (%v, %v), want (nil, nil)", name, in, evs, err)
			}
		}
	}
}

// Distinct salts must decorrelate instances of the same pattern.
func TestSaltDecorrelates(t *testing.T) {
	base := Params{Pattern: AZOutage, Intensity: 0.5, At: time.Hour}
	seen := map[int]bool{}
	for salt := uint64(0); salt < 16; salt++ {
		p := base
		p.Salt = salt
		evs, err := Generate(world(), p)
		if err != nil {
			t.Fatal(err)
		}
		seen[evs[0].Host] = true
	}
	if len(seen) < 2 {
		t.Fatalf("16 salts produced %d distinct outage windows", len(seen))
	}
}

func TestGenerateErrors(t *testing.T) {
	cases := []struct {
		name string
		w    World
		p    Params
	}{
		{"unknown pattern", world(), Params{Pattern: "meteor-strike", Intensity: 1}},
		{"no hosts", World{Seed: 1}, Params{Pattern: AZOutage, Intensity: 1}},
		{"negative at", world(), Params{Pattern: AZOutage, Intensity: 1, At: -time.Hour}},
		{"negative duration", world(), Params{Pattern: AZOutage, Intensity: 1, Duration: -time.Minute}},
		{"flaky-resume without faults", World{Hosts: 8, Seed: 1}, Params{Pattern: FlakyResume, Intensity: 1}},
		{"partition without plane", World{Hosts: 8, Seed: 1}, Params{Pattern: ControlPartition, Intensity: 1}},
		{"thermal without peak", World{Hosts: 8, Seed: 1}, Params{Pattern: ThermalEmergency, Intensity: 1}},
	}
	for _, c := range cases {
		if _, err := Generate(c.w, c.p); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

// The blast radius scales with intensity, respects the override, and
// always leaves at least one survivor.
func TestBlastBounds(t *testing.T) {
	if n := blast(24, 1, 4, 0); n != 6 {
		t.Fatalf("full-intensity az blast = %d, want 6", n)
	}
	if n := blast(24, 0.01, 4, 0); n != 1 {
		t.Fatalf("tiny blast = %d, want 1", n)
	}
	if n := blast(24, 0.5, 4, 11); n != 11 {
		t.Fatalf("override ignored: %d", n)
	}
	if n := blast(2, 1, 1, 5); n != 1 {
		t.Fatalf("survivor rule violated: %d of 2 hosts", n)
	}
}

// The thermal ramp steps down inside the first half of the window and
// always ends with an uncap at At+Duration.
func TestThermalShape(t *testing.T) {
	p := Params{Pattern: ThermalEmergency, Intensity: 1, At: 2 * time.Hour, Duration: 2 * time.Hour}
	evs, err := Generate(world(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 4 steps + uncap", len(evs))
	}
	full := 250.0 * 24
	prev := full + 1
	for _, e := range evs[:4] {
		if e.Action != script.ActionPowerCap {
			t.Fatalf("unexpected action %s", e.Action)
		}
		if e.Watts >= prev {
			t.Fatalf("ramp not monotonic: %v then %v", prev, e.Watts)
		}
		if e.At < p.At || e.At > p.At+p.Duration/2 {
			t.Fatalf("step at %v outside the ramp half-window", e.At)
		}
		prev = e.Watts
	}
	if floor := evs[3].Watts; floor != full*0.5 {
		t.Fatalf("floor = %v, want half the fleet peak", floor)
	}
	last := evs[4]
	if last.Watts != 0 || last.At != p.At+p.Duration {
		t.Fatalf("missing uncap: %+v", last)
	}
}

// Cascading failure sends a smaller second wave while the first wave's
// repairs are still pending, never re-crashing a first-wave host.
func TestCascadingWaves(t *testing.T) {
	p := Params{Pattern: CascadingFailure, Intensity: 1, At: time.Hour, Duration: time.Hour}
	evs, err := Generate(world(), p)
	if err != nil {
		t.Fatal(err)
	}
	var first, second []script.Event
	for _, e := range evs {
		switch e.At {
		case p.At:
			first = append(first, e)
		case p.At + p.Duration/4:
			second = append(second, e)
		default:
			t.Fatalf("event at unexpected time %v", e.At)
		}
	}
	if len(first) == 0 || len(second) == 0 || len(second) > len(first) {
		t.Fatalf("wave sizes %d/%d", len(first), len(second))
	}
	hit := map[int]bool{}
	for _, e := range evs {
		if hit[e.Host] {
			t.Fatalf("host %d crashed twice", e.Host)
		}
		hit[e.Host] = true
		if e.Repair != p.Duration/2 {
			t.Fatalf("repair %v, want half window", e.Repair)
		}
	}
}
