// Package chaos turns named failure patterns into deterministic event
// scripts. Each pattern — a cascading crash wave, an availability-zone
// outage, a thermal power-cap ramp, a flaky-resume burst, a control
// plane partition — is a parameterized generator: given a World
// (what the scenario built) and Params (when, how hard), it emits a
// script.Event sequence that the session layer schedules like any
// hand-written scenario script.
//
// Determinism: every random choice (which hosts, which order) comes
// from a private RNG seeded by mixing the world seed, the pattern
// name, and the caller's salt — never from the engine's stream — so
// generation is a pure function of (World, Params) and the same
// scenario replays byte-identically. Dormancy: Intensity <= 0 returns
// a nil script before anything else is checked, so a zeroed pattern
// is indistinguishable from no pattern at all.
package chaos

import (
	"fmt"
	"math"
	"time"

	"agilepower/internal/script"
	"agilepower/internal/sim"
)

// Pattern names.
const (
	// CascadingFailure crashes a first wave of random hosts at At and a
	// second wave a quarter of the way into Duration — the migration
	// storm from the first wave is still in flight when the second
	// lands.
	CascadingFailure = "cascading-failure"
	// AZOutage crashes one contiguous host range (a correlated failure
	// domain: a rack, a feed, an availability zone) for Duration.
	AZOutage = "az-outage"
	// ThermalEmergency ramps a power-feed cap down in four steps across
	// the first half of Duration, holds, then lifts the cap — the
	// cooling-failure drill.
	ThermalEmergency = "thermal-emergency"
	// FlakyResume raises the wake-failure probability to Intensity for
	// Duration — resumes that fall back asleep exactly when capacity is
	// wanted. Requires the scenario to enable fault injection.
	FlakyResume = "flaky-resume"
	// ControlPartition severs the control plane completely for
	// Duration. Requires the scenario to enable a control plane.
	ControlPartition = "control-partition"
)

// Patterns lists every pattern name, in stable order.
func Patterns() []string {
	return []string{CascadingFailure, AZOutage, ThermalEmergency, FlakyResume, ControlPartition}
}

// World is what the pattern generators know about the scenario they
// will run inside: enough to size and gate the scripts they emit,
// nothing more.
type World struct {
	// Hosts is the fleet size (host IDs are 1..Hosts).
	Hosts int
	// HostPeakW is the largest single-host peak draw, the unit the
	// thermal ramp budgets in.
	HostPeakW float64
	// Faults and CtrlPlane report whether those subsystems are enabled
	// (patterns that retune them refuse dormant worlds rather than
	// silently doing nothing).
	Faults    bool
	CtrlPlane bool
	// Seed is the scenario seed; generation mixes it with the pattern
	// name and salt.
	Seed uint64
}

// Params tunes one pattern instance.
type Params struct {
	// Pattern names the generator (one of the Pattern constants).
	Pattern string
	// Intensity in (0, 1] scales how hard the pattern hits; <= 0 is
	// dormant (Generate returns nil). Values above 1 are clamped.
	Intensity float64
	// At is when the pattern begins (offset from the run start).
	At time.Duration
	// Duration is the pattern's window (default 1 hour).
	Duration time.Duration
	// Hosts, when positive, overrides the intensity-derived blast
	// radius for host-targeting patterns.
	Hosts int
	// Salt decorrelates two instances of the same pattern in one
	// scenario.
	Salt uint64
}

// mix folds the pattern name and salt into the world seed (splitmix64
// finalizer) so distinct patterns draw unrelated choices from the
// same scenario seed.
func mix(seed uint64, pattern string, salt uint64) uint64 {
	z := seed ^ (salt * 0x9E3779B97F4A7C15)
	for _, c := range pattern {
		z = (z ^ uint64(c)) * 0xBF58476D1CE4E5B9
	}
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// Generate emits the pattern's event script. Intensity <= 0 returns
// (nil, nil) — dormant by construction — before any other check.
func Generate(w World, p Params) ([]script.Event, error) {
	if p.Intensity <= 0 {
		return nil, nil
	}
	if p.Intensity > 1 {
		p.Intensity = 1
	}
	if p.At < 0 {
		return nil, fmt.Errorf("chaos: %s starts before the run (%v)", p.Pattern, p.At)
	}
	if p.Duration < 0 {
		return nil, fmt.Errorf("chaos: %s has negative duration %v", p.Pattern, p.Duration)
	}
	if p.Duration == 0 {
		p.Duration = time.Hour
	}
	if w.Hosts < 1 {
		return nil, fmt.Errorf("chaos: world has no hosts")
	}
	rng := sim.NewRNG(mix(w.Seed, p.Pattern, p.Salt))
	switch p.Pattern {
	case CascadingFailure:
		return cascadingFailure(w, p, rng)
	case AZOutage:
		return azOutage(w, p, rng)
	case ThermalEmergency:
		return thermalEmergency(w, p)
	case FlakyResume:
		if !w.Faults {
			return nil, fmt.Errorf("chaos: %s needs fault injection enabled in the scenario", p.Pattern)
		}
		return []script.Event{{
			At:       p.At,
			Action:   script.ActionWakeFail,
			Prob:     p.Intensity,
			Duration: p.Duration,
		}}, nil
	case ControlPartition:
		if !w.CtrlPlane {
			return nil, fmt.Errorf("chaos: %s needs a control plane enabled in the scenario", p.Pattern)
		}
		return []script.Event{{
			At:       p.At,
			Action:   script.ActionCtrlPartition,
			Duration: p.Duration,
		}}, nil
	default:
		return nil, fmt.Errorf("chaos: unknown pattern %q (have %v)", p.Pattern, Patterns())
	}
}

// blast converts intensity into a host count: ceil(intensity × hosts
// / div), at least 1, at most hosts-1 (something must survive to
// absorb the refugees).
func blast(hosts int, intensity float64, div float64, override int) int {
	n := override
	if n <= 0 {
		n = int(math.Ceil(intensity * float64(hosts) / div))
	}
	if n < 1 {
		n = 1
	}
	if n > hosts-1 {
		n = hosts - 1
	}
	if n < 1 {
		n = 1 // single-host world: crash the one host anyway
	}
	return n
}

// cascadingFailure crashes wave one at At and wave two (half the
// size, drawn from the survivors) at At + Duration/4, while wave
// one's evacuation migrations are still in flight. Repairs land at
// half the window so the run can be asserted on recovery.
func cascadingFailure(w World, p Params, rng *sim.RNG) ([]script.Event, error) {
	n1 := blast(w.Hosts, p.Intensity, 8, p.Hosts)
	n2 := (n1 + 1) / 2
	order := rng.Perm(w.Hosts)
	repair := p.Duration / 2
	var evs []script.Event
	for i := 0; i < n1 && i < len(order); i++ {
		evs = append(evs, script.Event{
			At: p.At, Action: script.ActionCrash,
			Host: order[i] + 1, Repair: repair,
		})
	}
	second := p.At + p.Duration/4
	for i := n1; i < n1+n2 && i < len(order); i++ {
		evs = append(evs, script.Event{
			At: second, Action: script.ActionCrash,
			Host: order[i] + 1, Repair: repair,
		})
	}
	return evs, nil
}

// azOutage crashes one contiguous host range for the whole window —
// the correlated-domain failure a random crash process never
// produces.
func azOutage(w World, p Params, rng *sim.RNG) ([]script.Event, error) {
	n := blast(w.Hosts, p.Intensity, 4, p.Hosts)
	start := 1
	if w.Hosts > n {
		start = 1 + rng.Intn(w.Hosts-n+1)
	}
	return []script.Event{{
		At: p.At, Action: script.ActionCrash,
		Host: start, HostTo: start + n - 1, Repair: p.Duration,
	}}, nil
}

// thermalEmergency ramps a power cap down in four equal steps across
// the first half of the window — from the full fleet peak to
// (1 − intensity/2) of it — holds the floor, then lifts the cap at
// At + Duration. No randomness: a thermal event hits the whole feed.
func thermalEmergency(w World, p Params) ([]script.Event, error) {
	if w.HostPeakW <= 0 {
		return nil, fmt.Errorf("chaos: %s needs the world's host peak power", p.Pattern)
	}
	full := w.HostPeakW * float64(w.Hosts)
	floor := full * (1 - 0.5*p.Intensity)
	const steps = 4
	evs := make([]script.Event, 0, steps+1)
	for i := 1; i <= steps; i++ {
		watts := full + (floor-full)*float64(i)/steps
		evs = append(evs, script.Event{
			At:     p.At + p.Duration/2*time.Duration(i-1)/steps,
			Action: script.ActionPowerCap,
			Watts:  watts,
		})
	}
	evs = append(evs, script.Event{At: p.At + p.Duration, Action: script.ActionPowerCap, Watts: 0})
	return evs, nil
}
