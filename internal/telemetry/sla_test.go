package telemetry

import (
	"math"
	"testing"
	"time"
)

func TestSLAFullSatisfaction(t *testing.T) {
	var s SLATracker
	s.Record(time.Minute, 4, 4, 0.95)
	if s.Satisfaction() != 1 {
		t.Fatalf("satisfaction = %v, want 1", s.Satisfaction())
	}
	if s.ViolationTime() != 0 {
		t.Fatal("violation recorded for full delivery")
	}
	if s.UnmetCoreSeconds() != 0 {
		t.Fatal("unmet work recorded for full delivery")
	}
}

func TestSLAViolationAccounting(t *testing.T) {
	var s SLATracker
	s.Record(time.Minute, 4, 2, 0.95) // 50% delivery: violation
	s.Record(time.Minute, 4, 4, 0.95) // fine
	if s.ViolationTime() != time.Minute {
		t.Fatalf("violation time = %v, want 1m", s.ViolationTime())
	}
	if got := s.ViolationFraction(); got != 0.5 {
		t.Fatalf("violation fraction = %v, want 0.5", got)
	}
	if got := s.Satisfaction(); got != 0.75 {
		t.Fatalf("satisfaction = %v, want 0.75", got)
	}
	// Shortfall: 2 cores for 60s.
	if got := s.UnmetCoreSeconds(); got != 120 {
		t.Fatalf("unmet = %v, want 120", got)
	}
	total, violated := s.Intervals()
	if total != 2 || violated != 1 {
		t.Fatalf("intervals = %d/%d, want 2/1", violated, total)
	}
}

func TestSLASLOTargetBoundary(t *testing.T) {
	var s SLATracker
	// Exactly at target: not a violation.
	s.Record(time.Minute, 10, 9.5, 0.95)
	if s.ViolationTime() != 0 {
		t.Fatal("delivery exactly at target counted as violation")
	}
	// Just below target: violation.
	s.Record(time.Minute, 10, 9.4, 0.95)
	if s.ViolationTime() != time.Minute {
		t.Fatal("delivery below target not counted")
	}
}

func TestSLAZeroDemandIsHealthy(t *testing.T) {
	var s SLATracker
	s.Record(time.Hour, 0, 0, 0.95)
	if s.Satisfaction() != 1 || s.ViolationTime() != 0 {
		t.Fatal("idle VM scored unhealthy")
	}
	total, _ := s.Intervals()
	if total != 0 {
		t.Fatal("zero-demand interval counted")
	}
}

func TestSLADeliveryClamped(t *testing.T) {
	var s SLATracker
	s.Record(time.Minute, 2, 5, 0.95) // over-delivery clamps to demand
	if s.Satisfaction() != 1 {
		t.Fatalf("satisfaction = %v, want 1 after clamping", s.Satisfaction())
	}
	s.Record(time.Minute, 2, -3, 0.95) // negative clamps to 0
	if got := s.Satisfaction(); got != 0.5 {
		t.Fatalf("satisfaction = %v, want 0.5", got)
	}
}

func TestSLARecordOutage(t *testing.T) {
	var s SLATracker
	s.RecordOutage(30*time.Second, 4)
	if s.ViolationTime() != 30*time.Second {
		t.Fatalf("outage violation = %v", s.ViolationTime())
	}
	if s.UnmetCoreSeconds() != 120 {
		t.Fatalf("outage unmet = %v, want 120", s.UnmetCoreSeconds())
	}
}

func TestSLAIgnoresNonPositiveDt(t *testing.T) {
	var s SLATracker
	s.Record(0, 4, 0, 0.95)
	s.Record(-time.Second, 4, 0, 0.95)
	if s.ViolationTime() != 0 || s.DemandCoreSeconds() != 0 {
		t.Fatal("non-positive dt recorded")
	}
}

func TestSLAMerge(t *testing.T) {
	var a, b SLATracker
	a.Record(time.Minute, 4, 2, 0.95)
	b.Record(2*time.Minute, 4, 4, 0.95)
	a.Merge(&b)
	if a.DemandCoreSeconds() != 4*60+4*120 {
		t.Fatalf("merged demand = %v", a.DemandCoreSeconds())
	}
	if a.DeliveredCoreSeconds() != 2*60+4*120 {
		t.Fatalf("merged delivered = %v", a.DeliveredCoreSeconds())
	}
	// Observed time sums: the merged fraction is violation VM-time
	// over total VM-time (1m violated of 3m observed).
	if got := a.ViolationFraction(); got != 1.0/3 {
		t.Fatalf("merged violation fraction = %v, want 1m/3m", got)
	}
	total, violated := a.Intervals()
	if total != 2 || violated != 1 {
		t.Fatalf("merged intervals = %d/%d", violated, total)
	}
}

func TestSLASatisfactionPrecision(t *testing.T) {
	var s SLATracker
	for i := 0; i < 1000; i++ {
		s.Record(time.Second, 1, 0.9, 0.95)
	}
	if math.Abs(s.Satisfaction()-0.9) > 1e-9 {
		t.Fatalf("satisfaction drifted: %v", s.Satisfaction())
	}
}
