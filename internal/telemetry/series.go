// Package telemetry collects and summarizes simulation measurements:
// time series (power, demand, host counts), distribution summaries
// (percentiles), and SLA accounting of demanded-versus-delivered CPU.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Point is one sample of a time series.
type Point struct {
	At    time.Duration
	Value float64
}

// Series is an append-only time series. Samples must be appended in
// non-decreasing time order (simulations are single-threaded and move
// forward). A Series is not safe for concurrent use: even the read
// accessors At and Summarize maintain internal caches (the step-lookup
// cursor and the sorted copy backing percentiles).
type Series struct {
	Name   string
	points []Point
	// cursor remembers where the last At lookup landed. Consumers
	// overwhelmingly replay a series in time order (SLA sweeps, report
	// rendering, property tests), so the next sample is almost always a
	// step or two forward — amortized O(1) instead of a binary search
	// per call. Backward seeks fall back to search.
	cursor int
	// sorted caches the value-sorted copy behind Summarize; sortedOK
	// goes false on Append/Reset so the cache is rebuilt at most once
	// per series version, however many percentiles a report takes.
	sorted   []float64
	sortedOK bool

	// cap, when positive, bounds the stored sample count: appends
	// accumulate into fixed-width buckets of stride raw samples each,
	// and when the store fills, adjacent buckets are folded pairwise in
	// place and the stride doubles. Memory stays O(cap) for any run
	// length. 0 (the default) stores every sample.
	cap    int
	stride int
	// pendCount tracks how many raw samples the open tail bucket has
	// absorbed (0 = no open bucket); pendSum is their running sum. The
	// tail point is updated in place so readers always see a complete
	// series without a flush step.
	pendCount int
	pendSum   float64
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// NewSeriesCap returns an empty named series with room for capacity
// samples before the backing array has to grow. Simulations that know
// their sample count up front (horizon / evaluation step) use this to
// keep the hot recording path allocation-free.
func NewSeriesCap(name string, capacity int) *Series {
	if capacity < 0 {
		capacity = 0
	}
	return &Series{Name: name, points: make([]Point, 0, capacity)}
}

// Reset empties the series in place, keeping the backing array so a
// rerun of the same shape appends without reallocating. Slices
// previously handed out by Points are invalidated by the next Append.
func (s *Series) Reset() {
	s.points = s.points[:0]
	s.cursor = 0
	s.sortedOK = false
	if s.cap > 0 {
		s.stride = 1
	}
	s.pendCount = 0
	s.pendSum = 0
}

// SetCap bounds the series to at most n stored samples (n is rounded
// up to an even minimum of 4). Once bounded, each stored point is the
// mean of a fixed-width bucket of raw samples, timestamped at the
// bucket start; when the store fills, adjacent buckets fold pairwise
// and the bucket width doubles, so memory stays O(n) for any run
// length. Folding is a pure function of the append sequence, so a
// capped series is still byte-identical across shard/worker/delta
// configurations. Must be called before the first Append.
func (s *Series) SetCap(n int) {
	if len(s.points) > 0 || s.pendCount > 0 {
		panic(fmt.Sprintf("telemetry: SetCap on non-empty series %q", s.Name))
	}
	if n <= 0 {
		s.cap, s.stride = 0, 0
		return
	}
	if n < 4 {
		n = 4
	}
	if n%2 == 1 {
		n++
	}
	s.cap = n
	s.stride = 1
}

// Cap returns the stored-sample bound (0 = unbounded).
func (s *Series) Cap() int { return s.cap }

// Append adds a sample. It panics on time going backwards, which would
// mean the simulation's causality was violated.
func (s *Series) Append(at time.Duration, v float64) {
	if n := len(s.points); n > 0 && at < s.points[n-1].At {
		panic(fmt.Sprintf("telemetry: series %q time going backwards: %v after %v", s.Name, at, s.points[n-1].At))
	}
	if s.cap > 0 {
		s.appendBounded(at, v)
		return
	}
	s.points = append(s.points, Point{At: at, Value: v})
	s.sortedOK = false
}

// appendBounded absorbs a raw sample into the bucketed store.
func (s *Series) appendBounded(at time.Duration, v float64) {
	if cap(s.points) < s.cap {
		// The bounded store allocates on first append, not in SetCap:
		// building a world costs no telemetry memory until the series
		// actually records, which keeps cluster construction (and the
		// snapshot/fork path) lean. One allocation, then steady-state
		// appends never touch the heap.
		pts := make([]Point, len(s.points), s.cap)
		copy(pts, s.points)
		s.points = pts
	}
	s.sortedOK = false
	if s.pendCount == 0 {
		// Open a new bucket at this sample's time.
		s.points = append(s.points, Point{At: at, Value: v})
		s.pendSum = v
		s.pendCount = 1
	} else {
		s.pendSum += v
		s.pendCount++
		s.points[len(s.points)-1].Value = s.pendSum / float64(s.pendCount)
	}
	if s.pendCount == s.stride {
		s.pendCount = 0
		s.pendSum = 0
		if len(s.points) == s.cap {
			s.fold()
		}
	}
}

// fold halves the store by merging adjacent bucket pairs and doubles
// the stride. Every bucket is full (stride raw samples) when fold
// runs, so the mean-of-means equals the mean over the merged bucket.
func (s *Series) fold() {
	h := len(s.points) / 2
	for i := 0; i < h; i++ {
		a, b := s.points[2*i], s.points[2*i+1]
		s.points[i] = Point{At: a.At, Value: (a.Value + b.Value) / 2}
	}
	s.points = s.points[:h]
	s.stride *= 2
	s.cursor = 0
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.points) }

// Points returns the underlying samples (callers must not mutate).
func (s *Series) Points() []Point { return s.points }

// Values returns just the sample values.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.points))
	for i, p := range s.points {
		out[i] = p.Value
	}
	return out
}

// atScanLimit bounds how many samples At walks forward from the cursor
// before handing the rest of the jump to a binary search, so a single
// far-forward seek costs O(log n) instead of O(n) while dense in-order
// replay never leaves the cheap path.
const atScanLimit = 32

// At returns the value in effect at time at, treating the series as a
// step function (last sample at or before at). Returns 0 before the
// first sample.
//
// Lookups are amortized O(1) when queried in non-decreasing time order
// (the common access pattern): a cursor advances with the queries, and
// only backward seeks or long forward jumps fall back to binary
// search. The cursor makes At a mutating call — see the Series comment
// on concurrency.
func (s *Series) At(at time.Duration) float64 {
	n := len(s.points)
	if n == 0 || at < s.points[0].At {
		return 0
	}
	i := s.cursor
	if i >= n {
		i = n - 1
	}
	if s.points[i].At > at {
		// Backward seek: the answer is strictly before the cursor.
		// points[0].At <= at, so the search result is >= 1.
		i = sort.Search(i, func(j int) bool { return s.points[j].At > at }) - 1
	} else {
		for steps := 0; i+1 < n && s.points[i+1].At <= at; steps++ {
			if steps == atScanLimit {
				lo := i + 1
				i = lo + sort.Search(n-lo, func(j int) bool { return s.points[lo+j].At > at }) - 1
				break
			}
			i++
		}
	}
	s.cursor = i
	return s.points[i].Value
}

// Integrate returns the time integral of the step function over
// [from, to] in value·seconds. A power series in watts integrates to
// joules.
func (s *Series) Integrate(from, to time.Duration) float64 {
	if to <= from || len(s.points) == 0 {
		return 0
	}
	total := 0.0
	for i, p := range s.points {
		segStart := p.At
		var segEnd time.Duration
		if i+1 < len(s.points) {
			segEnd = s.points[i+1].At
		} else {
			segEnd = to
		}
		if segStart < from {
			segStart = from
		}
		if segEnd > to {
			segEnd = to
		}
		if segEnd > segStart {
			total += p.Value * (segEnd - segStart).Seconds()
		}
	}
	return total
}

// TimeMean returns the time-weighted mean over [from, to].
func (s *Series) TimeMean(from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	return s.Integrate(from, to) / (to - from).Seconds()
}

// Max returns the maximum sample value (0 for an empty series).
func (s *Series) Max() float64 {
	max := 0.0
	for i, p := range s.points {
		if i == 0 || p.Value > max {
			max = p.Value
		}
	}
	return max
}

// Downsample returns a new series with one time-weighted mean sample
// per bucket of width step, covering [0, horizon). Reports shrink
// day-long minute-resolution series to plottable sizes with this.
func (s *Series) Downsample(step, horizon time.Duration) *Series {
	if step <= 0 {
		return NewSeries(s.Name)
	}
	return s.DownsampleInto(NewSeriesCap(s.Name, int((horizon+step-1)/step)), step, horizon)
}

// DownsampleInto is Downsample writing into dst: dst is Reset and its
// backing array reused when it has the capacity, so report loops that
// render several same-shape series can recycle one scratch buffer.
// dst keeps its own Name. Returns dst.
func (s *Series) DownsampleInto(dst *Series, step, horizon time.Duration) *Series {
	dst.Reset()
	if step <= 0 {
		return dst
	}
	for start := time.Duration(0); start < horizon; start += step {
		end := start + step
		if end > horizon {
			end = horizon
		}
		dst.Append(start, s.TimeMean(start, end))
	}
	return dst
}

// Summary describes a sample distribution.
type Summary struct {
	Count              int
	Mean, Min, Max     float64
	P50, P90, P95, P99 float64
}

// Summarize computes distribution statistics of values.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return summarizeSorted(sorted)
}

// Summarize computes distribution statistics of the series' sample
// values. The sorted copy the percentiles need is cached on the series
// and invalidated by Append/Reset, so rendering code can take repeated
// summaries of a finished series without re-sorting each time.
func (s *Series) Summarize() Summary {
	if len(s.points) == 0 {
		return Summary{}
	}
	if !s.sortedOK {
		s.sorted = s.sorted[:0]
		for _, p := range s.points {
			s.sorted = append(s.sorted, p.Value)
		}
		sort.Float64s(s.sorted)
		s.sortedOK = true
	}
	return summarizeSorted(s.sorted)
}

// summarizeSorted builds the Summary from an already-sorted value
// slice (shared by the package-level Summarize and the cached series
// method).
func summarizeSorted(sorted []float64) Summary {
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return Summary{
		Count: len(sorted),
		Mean:  sum / float64(len(sorted)),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		P50:   percentile(sorted, 0.50),
		P90:   percentile(sorted, 0.90),
		P95:   percentile(sorted, 0.95),
		P99:   percentile(sorted, 0.99),
	}
}

// percentile interpolates the p-th percentile of sorted values.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo] + frac*(sorted[hi]-sorted[lo])
}
