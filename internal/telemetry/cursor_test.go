package telemetry

import (
	"sort"
	"testing"
	"time"
)

// atReference is the pre-cursor At implementation (a binary search per
// call) used as the oracle for the cursor fast path.
func atReference(s *Series, at time.Duration) float64 {
	i := sort.Search(len(s.points), func(i int) bool { return s.points[i].At > at })
	if i == 0 {
		return 0
	}
	return s.points[i-1].Value
}

func denseSeries(n int) *Series {
	s := NewSeries("x")
	for i := 0; i < n; i++ {
		s.Append(time.Duration(i)*time.Minute, float64(i))
	}
	return s
}

// TestSeriesAtCursorPatterns drives the cursor through every access
// pattern it optimizes or must survive — in-order replay, repeated
// queries, sub-sample steps, long forward jumps past the linear-scan
// limit, backward seeks, and pre-first-sample queries — and checks
// each answer against the binary-search reference.
func TestSeriesAtCursorPatterns(t *testing.T) {
	s := denseSeries(500)
	check := func(at time.Duration) {
		t.Helper()
		if got, want := s.At(at), atReference(s, at); got != want {
			t.Fatalf("At(%v) = %v, want %v (cursor=%d)", at, got, want, s.cursor)
		}
	}
	// Forward in-order replay at sub-sample resolution.
	for at := time.Duration(0); at < 50*time.Minute; at += 20 * time.Second {
		check(at)
	}
	// Repeated queries at one instant.
	for i := 0; i < 5; i++ {
		check(30 * time.Minute)
	}
	// Long forward jump (well past atScanLimit samples ahead).
	check(400 * time.Minute)
	// Backward seeks: far, then near.
	check(10 * time.Minute)
	check(9 * time.Minute)
	// Before the first sample, then forward again.
	check(-time.Second)
	check(200 * time.Minute)
	// Past the last sample.
	check(24 * time.Hour)
	// Zig-zag sweep.
	for i := 0; i < 200; i++ {
		at := time.Duration((i*37)%500) * time.Minute
		check(at)
		check(at + 30*time.Second)
	}
}

// TestSeriesAtCursorSurvivesAppend checks that lookups interleaved
// with appends stay correct: the cursor indexes only already-appended
// samples, so growth cannot invalidate it.
func TestSeriesAtCursorSurvivesAppend(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i < 100; i++ {
		s.Append(time.Duration(i)*time.Second, float64(i))
		at := time.Duration(i) * time.Second
		if got, want := s.At(at), atReference(s, at); got != want {
			t.Fatalf("step %d: At = %v, want %v", i, got, want)
		}
	}
	// Reset rewinds the cursor with the samples.
	s.Reset()
	s.Append(0, 7)
	if got := s.At(time.Hour); got != 7 {
		t.Fatalf("At after Reset = %v, want 7", got)
	}
}

// TestSeriesSummarizeCached checks the cached percentile path against
// the package-level Summarize and its invalidation on Append and
// Reset.
func TestSeriesSummarizeCached(t *testing.T) {
	s := NewSeries("x")
	for _, v := range []float64{4, 1, 3, 2, 5} {
		s.Append(time.Duration(s.Len())*time.Second, v)
	}
	want := Summarize(s.Values())
	if got := s.Summarize(); got != want {
		t.Fatalf("Summarize = %+v, want %+v", got, want)
	}
	// Second call hits the cache and must agree.
	if got := s.Summarize(); got != want {
		t.Fatalf("cached Summarize = %+v, want %+v", got, want)
	}
	// Append invalidates.
	s.Append(10*time.Second, 100)
	want = Summarize(s.Values())
	if got := s.Summarize(); got != want {
		t.Fatalf("post-Append Summarize = %+v, want %+v", got, want)
	}
	// Reset invalidates down to empty.
	s.Reset()
	if got := s.Summarize(); got != (Summary{}) {
		t.Fatalf("post-Reset Summarize = %+v, want zero", got)
	}
	s.Append(0, 9)
	if got := s.Summarize(); got.Count != 1 || got.P50 != 9 {
		t.Fatalf("post-Reset refill Summarize = %+v", got)
	}
}

// BenchmarkSeriesAtInOrder measures the cursor fast path: a full
// in-order replay of a day-long minute-resolution series at 20-second
// query resolution (the SLA sweep access pattern).
func BenchmarkSeriesAtInOrder(b *testing.B) {
	s := denseSeries(1440)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for at := time.Duration(0); at < 1440*time.Minute; at += 20 * time.Second {
			s.At(at)
		}
	}
}

// BenchmarkSeriesAtRandom measures the fallback path under a
// cursor-hostile random access pattern.
func BenchmarkSeriesAtRandom(b *testing.B) {
	s := denseSeries(1440)
	offsets := make([]time.Duration, 1024)
	for i := range offsets {
		offsets[i] = time.Duration((i*911)%1440) * time.Minute
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.At(offsets[i%len(offsets)])
	}
}

// BenchmarkSeriesSummarizeCached measures repeated summaries of a
// finished series (the report-rendering pattern) with the cached sort.
func BenchmarkSeriesSummarizeCached(b *testing.B) {
	s := denseSeries(1440)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Summarize()
	}
}

// BenchmarkSeriesSummarizeFresh is the pre-cache baseline: a copy and
// a full sort on every call.
func BenchmarkSeriesSummarizeFresh(b *testing.B) {
	s := denseSeries(1440)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Summarize(s.Values())
	}
}
