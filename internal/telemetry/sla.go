package telemetry

import "time"

// SLATracker scores delivered CPU against demand. The cluster calls
// Record once per interval per VM with what the VM wanted and what the
// host scheduler actually gave it; the tracker accumulates the SLA
// picture the paper's performance-overhead results are built from.
type SLATracker struct {
	demandCoreSec    float64
	deliveredCoreSec float64

	// violationTime accumulates wall time during which delivery was
	// below the SLO target fraction of demand.
	violationTime time.Duration
	// unmetCoreSec accumulates the raw shortfall.
	unmetCoreSec float64
	// observedTime is total recorded time (for normalizing).
	observedTime time.Duration
	// intervals counts Record calls with nonzero demand.
	intervals int
	violated  int
}

// Record scores one interval of length dt where demanded cores were
// requested and delivered cores were provided, against an SLO target
// fraction (delivered/demanded below target counts as violation).
func (s *SLATracker) Record(dt time.Duration, demanded, delivered, sloTarget float64) {
	if dt <= 0 {
		return
	}
	if delivered > demanded {
		delivered = demanded
	}
	if delivered < 0 {
		delivered = 0
	}
	secs := dt.Seconds()
	s.demandCoreSec += demanded * secs
	s.deliveredCoreSec += delivered * secs
	s.observedTime += dt
	if demanded <= 0 {
		return
	}
	s.intervals++
	if delivered < sloTarget*demanded {
		s.violationTime += dt
		s.violated++
	}
	if shortfall := demanded - delivered; shortfall > 0 {
		s.unmetCoreSec += shortfall * secs
	}
}

// RecordOutage scores an interval in which the VM was completely
// unserved (e.g. migration downtime, or its host is asleep while it is
// queued): full demand, zero delivery.
func (s *SLATracker) RecordOutage(dt time.Duration, demanded float64) {
	s.Record(dt, demanded, 0, 1)
}

// Satisfaction returns delivered/demanded core-seconds in [0,1]
// (1 when nothing was demanded).
func (s *SLATracker) Satisfaction() float64 {
	if s.demandCoreSec <= 0 {
		return 1
	}
	return s.deliveredCoreSec / s.demandCoreSec
}

// ViolationTime returns total time spent below the SLO target.
func (s *SLATracker) ViolationTime() time.Duration { return s.violationTime }

// ViolationFraction returns the fraction of observed time in
// violation.
func (s *SLATracker) ViolationFraction() float64 {
	if s.observedTime <= 0 {
		return 0
	}
	return float64(s.violationTime) / float64(s.observedTime)
}

// UnmetCoreSeconds returns the accumulated raw shortfall.
func (s *SLATracker) UnmetCoreSeconds() float64 { return s.unmetCoreSec }

// DemandCoreSeconds returns total demanded work.
func (s *SLATracker) DemandCoreSeconds() float64 { return s.demandCoreSec }

// DeliveredCoreSeconds returns total delivered work.
func (s *SLATracker) DeliveredCoreSeconds() float64 { return s.deliveredCoreSec }

// Intervals returns (recorded, violated) interval counts.
func (s *SLATracker) Intervals() (total, violated int) { return s.intervals, s.violated }

// Merge folds other into s, combining trackers from multiple VMs into
// a cluster-wide view. Observed time sums, so the merged
// ViolationFraction is violation VM-time over total VM-time — the
// average violation fraction across the fleet.
func (s *SLATracker) Merge(other *SLATracker) {
	s.demandCoreSec += other.demandCoreSec
	s.deliveredCoreSec += other.deliveredCoreSec
	s.violationTime += other.violationTime
	s.unmetCoreSec += other.unmetCoreSec
	s.observedTime += other.observedTime
	s.intervals += other.intervals
	s.violated += other.violated
}
