package telemetry

import "sort"

// Counters is a named-counter set for low-rate management events
// (retries, quarantines, aborted migrations). It is deliberately dumb:
// integer adds keyed by string, with deterministic (sorted) enumeration
// so reports and tests that walk all counters are reproducible.
type Counters struct {
	vals map[string]int
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{vals: make(map[string]int)}
}

// Inc adds one to the named counter.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Add adds n to the named counter (negative n subtracts).
func (c *Counters) Add(name string, n int) { c.vals[name] += n }

// Max raises the named counter to n if n is larger — a high-water
// mark (telemetry staleness peaks, queue depths).
func (c *Counters) Max(name string, n int) {
	if n > c.vals[name] {
		c.vals[name] = n
	}
}

// Get returns the named counter's value (zero when never touched).
func (c *Counters) Get(name string) int { return c.vals[name] }

// Names returns every touched counter name in sorted order.
func (c *Counters) Names() []string {
	out := make([]string, 0, len(c.vals))
	for k := range c.vals {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int {
	out := make(map[string]int, len(c.vals))
	for k, v := range c.vals {
		out[k] = v
	}
	return out
}
