package telemetry

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSeriesAppendAndAt(t *testing.T) {
	s := NewSeries("power")
	s.Append(0, 100)
	s.Append(10*time.Second, 200)
	s.Append(20*time.Second, 50)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 100},
		{5 * time.Second, 100},
		{10 * time.Second, 200},
		{15 * time.Second, 200},
		{25 * time.Second, 50},
	}
	for _, c := range cases {
		if got := s.At(c.at); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.at, got, c.want)
		}
	}
	if s.At(-time.Second) != 0 {
		t.Error("At before first sample should be 0")
	}
}

func TestSeriesAppendBackwardsPanics(t *testing.T) {
	s := NewSeries("x")
	s.Append(10*time.Second, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards append did not panic")
		}
	}()
	s.Append(5*time.Second, 2)
}

func TestSeriesIntegrate(t *testing.T) {
	s := NewSeries("power")
	s.Append(0, 100)
	s.Append(10*time.Second, 200)
	// 10s at 100W + 10s at 200W = 3000 J over [0, 20s].
	if got := s.Integrate(0, 20*time.Second); got != 3000 {
		t.Fatalf("Integrate = %v, want 3000", got)
	}
	// Partial window [5s, 15s]: 5s*100 + 5s*200 = 1500.
	if got := s.Integrate(5*time.Second, 15*time.Second); got != 1500 {
		t.Fatalf("partial Integrate = %v, want 1500", got)
	}
	if got := s.Integrate(10*time.Second, 10*time.Second); got != 0 {
		t.Fatalf("empty window = %v, want 0", got)
	}
	if got := (&Series{}).Integrate(0, time.Second); got != 0 {
		t.Fatalf("empty series = %v, want 0", got)
	}
}

func TestSeriesTimeMean(t *testing.T) {
	s := NewSeries("p")
	s.Append(0, 100)
	s.Append(10*time.Second, 200)
	if got := s.TimeMean(0, 20*time.Second); got != 150 {
		t.Fatalf("TimeMean = %v, want 150", got)
	}
	if got := s.TimeMean(5*time.Second, 5*time.Second); got != 0 {
		t.Fatalf("degenerate TimeMean = %v", got)
	}
}

func TestSeriesMax(t *testing.T) {
	s := NewSeries("p")
	if s.Max() != 0 {
		t.Fatal("empty Max != 0")
	}
	s.Append(0, -5)
	s.Append(time.Second, -2)
	if s.Max() != -2 {
		t.Fatalf("Max = %v, want -2 (all-negative series)", s.Max())
	}
	s.Append(2*time.Second, 7)
	if s.Max() != 7 {
		t.Fatalf("Max = %v, want 7", s.Max())
	}
}

func TestSeriesDownsample(t *testing.T) {
	s := NewSeries("p")
	s.Append(0, 100)
	s.Append(30*time.Second, 200)
	d := s.Downsample(time.Minute, 2*time.Minute)
	if d.Len() != 2 {
		t.Fatalf("downsample len = %d, want 2", d.Len())
	}
	if d.Points()[0].Value != 150 {
		t.Fatalf("bucket 0 = %v, want 150", d.Points()[0].Value)
	}
	if d.Points()[1].Value != 200 {
		t.Fatalf("bucket 1 = %v, want 200", d.Points()[1].Value)
	}
}

func TestSeriesValues(t *testing.T) {
	s := NewSeries("p")
	s.Append(0, 1)
	s.Append(time.Second, 2)
	v := s.Values()
	if len(v) != 2 || v[0] != 1 || v[1] != 2 {
		t.Fatalf("Values = %v", v)
	}
}

func TestSummarize(t *testing.T) {
	sum := Summarize([]float64{4, 1, 3, 2, 5})
	if sum.Count != 5 || sum.Mean != 3 || sum.Min != 1 || sum.Max != 5 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.P50 != 3 {
		t.Fatalf("P50 = %v, want 3", sum.P50)
	}
	if sum.P90 != 4.6 {
		t.Fatalf("P90 = %v, want 4.6", sum.P90)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 {
		t.Fatal("empty summary nonzero")
	}
	s := Summarize([]float64{42})
	if s.P50 != 42 || s.P99 != 42 || s.Mean != 42 {
		t.Fatalf("single-sample summary = %+v", s)
	}
}

// Property: percentiles are ordered and bounded by min/max.
func TestSummarizeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			// Telemetry values are physical quantities (watts, cores);
			// keep inputs in a range where naive summation cannot
			// overflow.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		s := Summarize(vals)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P95 &&
			s.P95 <= s.P99 && s.P99 <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: integrating a step series over its full span equals the
// sum of per-segment areas computed independently.
func TestIntegrateProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) < 2 {
			return true
		}
		s := NewSeries("x")
		for i, v := range vals {
			s.Append(time.Duration(i)*time.Second, float64(v))
		}
		end := time.Duration(len(vals)) * time.Second
		got := s.Integrate(0, end)
		want := 0.0
		for _, v := range vals {
			want += float64(v)
		}
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if p := percentile(sorted, 0.5); p != 5 {
		t.Fatalf("percentile(0.5) = %v, want 5", p)
	}
	many := make([]float64, 101)
	for i := range many {
		many[i] = float64(i)
	}
	sort.Float64s(many)
	if p := percentile(many, 0.99); p != 99 {
		t.Fatalf("P99 of 0..100 = %v, want 99", p)
	}
}

func TestNewSeriesCapPreallocates(t *testing.T) {
	s := NewSeriesCap("power", 100)
	if s.Len() != 0 {
		t.Fatalf("fresh series has %d samples", s.Len())
	}
	if got := cap(s.points); got < 100 {
		t.Fatalf("capacity = %d, want >= 100", got)
	}
	// Appending within capacity must not reallocate the backing array.
	s.Append(0, 1)
	base := &s.points[0]
	for i := 1; i < 100; i++ {
		s.Append(time.Duration(i)*time.Second, float64(i))
	}
	if &s.points[0] != base {
		t.Fatal("backing array reallocated despite preallocation")
	}
	// Negative capacity is treated as zero, not a panic.
	if s := NewSeriesCap("x", -5); s.Len() != 0 {
		t.Fatalf("NewSeriesCap(-5) has %d samples", s.Len())
	}
}

func TestSeriesReset(t *testing.T) {
	s := NewSeriesCap("x", 8)
	for i := 0; i < 8; i++ {
		s.Append(time.Duration(i)*time.Second, float64(i))
	}
	before := cap(s.points)
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("len after Reset = %d", s.Len())
	}
	if cap(s.points) != before {
		t.Fatalf("Reset changed capacity: %d -> %d", before, cap(s.points))
	}
	// Time may restart from zero after a reset, and At sees only the
	// new samples.
	s.Append(0, 42)
	if got := s.At(time.Hour); got != 42 {
		t.Fatalf("At after Reset = %v, want 42", got)
	}
}

func TestDownsampleIntoReusesBuffer(t *testing.T) {
	src := NewSeries("src")
	for i := 0; i < 60; i++ {
		src.Append(time.Duration(i)*time.Minute, float64(i%10))
	}
	scratch := NewSeriesCap("scratch", 6)
	got := src.DownsampleInto(scratch, 10*time.Minute, time.Hour)
	if got != scratch {
		t.Fatal("DownsampleInto did not return dst")
	}
	want := src.Downsample(10*time.Minute, time.Hour)
	if got.Len() != want.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), want.Len())
	}
	for i, p := range got.Points() {
		if wp := want.Points()[i]; p != wp {
			t.Fatalf("point %d = %+v, want %+v", i, p, wp)
		}
	}
	// A second pass of the same shape must not grow the buffer.
	before := cap(scratch.points)
	src.DownsampleInto(scratch, 10*time.Minute, time.Hour)
	if cap(scratch.points) != before {
		t.Fatalf("reuse grew buffer: %d -> %d", before, cap(scratch.points))
	}
}

func TestDownsampleZeroStep(t *testing.T) {
	src := NewSeries("src")
	src.Append(0, 1)
	if got := src.Downsample(0, time.Hour); got.Len() != 0 {
		t.Fatalf("Downsample(0) produced %d samples", got.Len())
	}
}

func TestSetCapFoldsAndBoundsMemory(t *testing.T) {
	s := NewSeries("bounded")
	s.SetCap(4)
	// 8 raw samples at 1-minute spacing; after the 4th the store folds
	// to 2 points of stride 2, fills back to 4, folds to 2 of stride 4.
	for i := 0; i < 8; i++ {
		s.Append(time.Duration(i)*time.Minute, float64(i))
	}
	if s.Len() > 4 {
		t.Fatalf("len %d exceeds cap 4", s.Len())
	}
	// Final state: stride-4 buckets [0..3] and [4..7], both closed.
	pts := s.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %v, want 2 stride-4 buckets", pts)
	}
	if pts[0].At != 0 || pts[0].Value != 1.5 {
		t.Fatalf("bucket 0 = %+v, want {0 1.5}", pts[0])
	}
	if pts[1].At != 4*time.Minute || pts[1].Value != 5.5 {
		t.Fatalf("bucket 1 = %+v, want {4m 5.5}", pts[1])
	}
}

func TestSetCapPreservesMeanExactlyAtBucketCloses(t *testing.T) {
	// The overall mean of stored values (weighted by full buckets) must
	// track the raw mean whenever every bucket is closed.
	s := NewSeries("mean")
	s.SetCap(8)
	sum := 0.0
	n := 1024
	for i := 0; i < n; i++ {
		v := float64((i*37)%101) / 7
		sum += v
		s.Append(time.Duration(i)*time.Second, v)
	}
	got := 0.0
	for _, p := range s.Points() {
		got += p.Value
	}
	got /= float64(s.Len())
	want := sum / float64(n)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("bucketed mean %v, raw mean %v", got, want)
	}
}

func TestSetCapOpenTailVisibleWithoutFlush(t *testing.T) {
	s := NewSeries("tail")
	s.SetCap(4)
	for i := 0; i < 6; i++ { // folds once at 4, then 2 more raw samples
		s.Append(time.Duration(i)*time.Minute, float64(i))
	}
	// stride is 2 after the fold: samples 4 and 5 form one closed bucket.
	pts := s.Points()
	if len(pts) != 3 {
		t.Fatalf("points = %v", pts)
	}
	if pts[2].Value != 4.5 {
		t.Fatalf("tail bucket = %+v, want mean 4.5", pts[2])
	}
	// A 7th sample opens a fresh partial bucket that is readable at once.
	s.Append(6*time.Minute, 42)
	pts = s.Points()
	if pts[len(pts)-1].Value != 42 {
		t.Fatalf("open tail = %+v, want 42", pts[len(pts)-1])
	}
}

func TestSetCapSteadyStateAllocFree(t *testing.T) {
	s := NewSeries("alloc")
	s.SetCap(64)
	at := time.Duration(0)
	i := 0
	allocs := testing.AllocsPerRun(5000, func() {
		s.Append(at, float64(i%13))
		at += time.Second
		i++
	})
	if allocs != 0 {
		t.Fatalf("bounded append allocates %v/op, want 0", allocs)
	}
}

func TestSetCapOnNonEmptyPanics(t *testing.T) {
	s := NewSeries("late")
	s.Append(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("SetCap on non-empty series did not panic")
		}
	}()
	s.SetCap(8)
}

func TestSetCapResetRestoresStride(t *testing.T) {
	s := NewSeries("reset")
	s.SetCap(4)
	for i := 0; i < 16; i++ {
		s.Append(time.Duration(i)*time.Minute, 1)
	}
	s.Reset()
	if s.Len() != 0 || s.Cap() != 4 {
		t.Fatalf("after reset: len %d cap %d", s.Len(), s.Cap())
	}
	s.Append(0, 7)
	if got := s.Points()[0].Value; got != 7 {
		t.Fatalf("first point after reset = %v", got)
	}
}
