package telemetry

import "testing"

func TestCountersAddGetNames(t *testing.T) {
	c := NewCounters()
	if c.Get("missing") != 0 {
		t.Fatal("untouched counter not zero")
	}
	c.Inc("b")
	c.Add("a", 3)
	c.Add("a", -1)
	if c.Get("a") != 2 || c.Get("b") != 1 {
		t.Fatalf("values = %d/%d, want 2/1", c.Get("a"), c.Get("b"))
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v, want sorted [a b]", names)
	}
	snap := c.Snapshot()
	snap["a"] = 99
	if c.Get("a") != 2 {
		t.Fatal("snapshot aliases live counters")
	}
}

func TestCountersMaxIsHighWaterMark(t *testing.T) {
	c := NewCounters()
	c.Max("peak", 5)
	c.Max("peak", 3)
	if c.Get("peak") != 5 {
		t.Fatalf("peak = %d, want 5 (lower sample must not regress it)", c.Get("peak"))
	}
	c.Max("peak", 8)
	if c.Get("peak") != 8 {
		t.Fatalf("peak = %d, want 8", c.Get("peak"))
	}
	// A non-positive sample on an untouched name leaves it untouched.
	c.Max("idle", -1)
	if c.Get("idle") != 0 {
		t.Fatalf("idle = %d, want 0", c.Get("idle"))
	}
}
