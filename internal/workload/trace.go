// Package workload provides demand traces and synthetic trace
// generators. It is the reproduction's substitute for the production
// enterprise utilization traces the paper's evaluation is driven by:
// the policies' behaviour depends on trough depth, spike steepness and
// diurnal period, which are all first-class generator parameters here.
//
// A trace is a step function of CPU demand (in cores) sampled at a
// fixed interval. Demand is what the VM *wants*; what it receives is
// decided by the host scheduler in internal/host.
package workload

import (
	"fmt"
	"time"
)

// Trace is a fixed-interval step function of CPU demand in cores.
type Trace struct {
	// Interval is the sampling period.
	Interval time.Duration
	// Samples holds the demand (cores) for each interval. The trace
	// repeats cyclically after the last sample, so a 24-hour trace
	// drives simulations of any length.
	Samples []float64
}

// NewTrace validates and wraps samples.
func NewTrace(interval time.Duration, samples []float64) (*Trace, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("workload: non-positive interval %v", interval)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	for i, s := range samples {
		if s < 0 {
			return nil, fmt.Errorf("workload: negative demand %v at sample %d", s, i)
		}
	}
	return &Trace{Interval: interval, Samples: samples}, nil
}

// Constant returns a trace that always demands d cores.
func Constant(d float64) *Trace {
	return &Trace{Interval: time.Minute, Samples: []float64{d}}
}

// Duration is the length of one cycle of the trace.
func (t *Trace) Duration() time.Duration {
	return time.Duration(len(t.Samples)) * t.Interval
}

// At returns the demand at virtual time at, wrapping cyclically.
func (t *Trace) At(at time.Duration) float64 {
	if at < 0 {
		at = 0
	}
	idx := int(at/t.Interval) % len(t.Samples)
	return t.Samples[idx]
}

// NextChange returns the time of the next sample boundary strictly
// after at. Simulations use it to schedule demand re-evaluation only
// when something can change.
func (t *Trace) NextChange(at time.Duration) time.Duration {
	return (at/t.Interval + 1) * t.Interval
}

// Peak returns the maximum demand in the trace.
func (t *Trace) Peak() float64 {
	max := 0.0
	for _, s := range t.Samples {
		if s > max {
			max = s
		}
	}
	return max
}

// Mean returns the average demand over one cycle.
func (t *Trace) Mean() float64 {
	sum := 0.0
	for _, s := range t.Samples {
		sum += s
	}
	return sum / float64(len(t.Samples))
}

// Scale returns a copy with every sample multiplied by f (f ≥ 0).
func (t *Trace) Scale(f float64) *Trace {
	if f < 0 {
		f = 0
	}
	out := make([]float64, len(t.Samples))
	for i, s := range t.Samples {
		out[i] = s * f
	}
	return &Trace{Interval: t.Interval, Samples: out}
}

// Clamp returns a copy with every sample limited to at most max.
func (t *Trace) Clamp(max float64) *Trace {
	out := make([]float64, len(t.Samples))
	for i, s := range t.Samples {
		if s > max {
			s = max
		}
		out[i] = s
	}
	return &Trace{Interval: t.Interval, Samples: out}
}

// Add returns the pointwise sum of two traces with the same interval,
// wrapping the shorter one cyclically to the length of the longer.
func Add(a, b *Trace) (*Trace, error) {
	if a.Interval != b.Interval {
		return nil, fmt.Errorf("workload: interval mismatch %v vs %v", a.Interval, b.Interval)
	}
	n := len(a.Samples)
	if len(b.Samples) > n {
		n = len(b.Samples)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = a.Samples[i%len(a.Samples)] + b.Samples[i%len(b.Samples)]
	}
	return &Trace{Interval: a.Interval, Samples: out}, nil
}
