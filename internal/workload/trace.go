// Package workload provides demand traces and synthetic trace
// generators. It is the reproduction's substitute for the production
// enterprise utilization traces the paper's evaluation is driven by:
// the policies' behaviour depends on trough depth, spike steepness and
// diurnal period, which are all first-class generator parameters here.
//
// A trace is a step function of CPU demand (in cores) sampled at a
// fixed interval. Demand is what the VM *wants*; what it receives is
// decided by the host scheduler in internal/host.
package workload

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Never is the NextChange result for a trace whose value never
// changes: no re-evaluation is ever required on its account.
const Never = time.Duration(math.MaxInt64)

// Trace is a fixed-interval step function of CPU demand in cores.
type Trace struct {
	// Interval is the sampling period.
	Interval time.Duration
	// Samples holds the demand (cores) for each interval. The trace
	// repeats cyclically after the last sample, so a 24-hour trace
	// drives simulations of any length.
	Samples []float64

	// nextEdge[i] is the absolute sample position in (i, i+len] of the
	// first sample whose value differs from Samples[i], walking
	// cyclically; nil means the trace is constant. Built lazily under
	// nextOnce because traces are shared read-only across concurrently
	// running simulations.
	nextOnce sync.Once
	nextEdge []int32
}

// NewTrace validates and wraps samples.
func NewTrace(interval time.Duration, samples []float64) (*Trace, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("workload: non-positive interval %v", interval)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	for i, s := range samples {
		if s < 0 {
			return nil, fmt.Errorf("workload: negative demand %v at sample %d", s, i)
		}
	}
	return &Trace{Interval: interval, Samples: samples}, nil
}

// Constant returns a trace that always demands d cores.
func Constant(d float64) *Trace {
	return &Trace{Interval: time.Minute, Samples: []float64{d}}
}

// Duration is the length of one cycle of the trace.
func (t *Trace) Duration() time.Duration {
	return time.Duration(len(t.Samples)) * t.Interval
}

// At returns the demand at virtual time at, wrapping cyclically.
func (t *Trace) At(at time.Duration) float64 {
	if at < 0 {
		at = 0
	}
	idx := int(at/t.Interval) % len(t.Samples)
	return t.Samples[idx]
}

// NextChange returns the earliest time strictly after at when the
// trace's value differs from its value at at, or Never for a constant
// trace. Delta evaluation uses it to skip hosts whose demand cannot
// have moved: equal consecutive samples are not changes, so a batch
// trace that idles for hours reports the next run start, not the next
// sample boundary.
func (t *Trace) NextChange(at time.Duration) time.Duration {
	t.nextOnce.Do(t.buildNextEdge)
	if t.nextEdge == nil {
		return Never
	}
	if at < 0 {
		at = 0
	}
	cycleLen := t.Duration()
	cycle := at / cycleLen
	idx := int((at % cycleLen) / t.Interval)
	return cycle*cycleLen + time.Duration(t.nextEdge[idx])*t.Interval
}

// buildNextEdge fills the cyclic jump table consulted by NextChange.
func (t *Trace) buildNextEdge() {
	n := len(t.Samples)
	// Edge positions: j such that Samples[j] != Samples[j-1] (cyclic).
	first := -1 // smallest edge position
	for j := 0; j < n; j++ {
		prev := t.Samples[(j+n-1)%n]
		if t.Samples[j] != prev {
			first = j
			break
		}
	}
	if first == -1 {
		return // constant: nextEdge stays nil
	}
	edges := make([]int32, n)
	// For i >= last the next edge wraps to first in the following cycle.
	next := int32(first + n)
	for i := n - 1; i >= 0; i-- {
		edges[i] = next
		if i > 0 && t.Samples[i] != t.Samples[i-1] {
			next = int32(i)
		}
	}
	t.nextEdge = edges
}

// Peak returns the maximum demand in the trace.
func (t *Trace) Peak() float64 {
	max := 0.0
	for _, s := range t.Samples {
		if s > max {
			max = s
		}
	}
	return max
}

// Mean returns the average demand over one cycle.
func (t *Trace) Mean() float64 {
	sum := 0.0
	for _, s := range t.Samples {
		sum += s
	}
	return sum / float64(len(t.Samples))
}

// Scale returns a copy with every sample multiplied by f (f ≥ 0).
func (t *Trace) Scale(f float64) *Trace {
	if f < 0 {
		f = 0
	}
	out := make([]float64, len(t.Samples))
	for i, s := range t.Samples {
		out[i] = s * f
	}
	return &Trace{Interval: t.Interval, Samples: out}
}

// Clamp returns a copy with every sample limited to at most max.
func (t *Trace) Clamp(max float64) *Trace {
	out := make([]float64, len(t.Samples))
	for i, s := range t.Samples {
		if s > max {
			s = max
		}
		out[i] = s
	}
	return &Trace{Interval: t.Interval, Samples: out}
}

// Add returns the pointwise sum of two traces with the same interval,
// wrapping the shorter one cyclically to the length of the longer.
func Add(a, b *Trace) (*Trace, error) {
	if a.Interval != b.Interval {
		return nil, fmt.Errorf("workload: interval mismatch %v vs %v", a.Interval, b.Interval)
	}
	n := len(a.Samples)
	if len(b.Samples) > n {
		n = len(b.Samples)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = a.Samples[i%len(a.Samples)] + b.Samples[i%len(b.Samples)]
	}
	return &Trace{Interval: a.Interval, Samples: out}, nil
}
