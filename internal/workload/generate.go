package workload

import (
	"math"
	"time"

	"agilepower/internal/sim"
)

// Generators below synthesize the workload classes the paper's
// evaluation draws on: diurnal enterprise load with deep night troughs,
// flash-crowd spikes that stress wake-up latency, batch jobs, and
// mean-reverting noise. All generators are deterministic given an RNG.

// DiurnalSpec parameterizes an enterprise day/night demand curve.
type DiurnalSpec struct {
	// Interval is the sampling period (default 1 minute).
	Interval time.Duration
	// Days is the number of 24-hour cycles to generate (default 1).
	Days int
	// BaseCores is the trough (night) demand.
	BaseCores float64
	// PeakCores is the midday peak demand.
	PeakCores float64
	// PeakHour is the hour of day [0,24) when demand peaks (default 14).
	PeakHour float64
	// NoiseFrac adds zero-mean Gaussian noise with stddev equal to this
	// fraction of the local demand.
	NoiseFrac float64
	// PhaseJitter shifts the whole curve by up to ± this duration,
	// decorrelating VMs so cluster demand is smooth rather than
	// lock-stepped.
	PhaseJitter time.Duration
	// WeekendScale, when in (0,1), multiplies demand on days 6 and 7
	// of each week (enterprise load drops on weekends). Day 1 of the
	// trace is a Monday. Weekly structure defeats purely daily
	// predictors — see the predict experiment.
	WeekendScale float64
}

func (s *DiurnalSpec) defaults() {
	if s.Interval <= 0 {
		s.Interval = time.Minute
	}
	if s.Days <= 0 {
		s.Days = 1
	}
	if s.PeakHour == 0 {
		s.PeakHour = 14
	}
}

// Diurnal generates a day/night cycle: a raised cosine between
// BaseCores and PeakCores peaking at PeakHour, with optional noise and
// phase jitter.
func Diurnal(rng *sim.RNG, spec DiurnalSpec) *Trace {
	spec.defaults()
	day := 24 * time.Hour
	n := int(time.Duration(spec.Days) * day / spec.Interval)
	shift := time.Duration(0)
	if spec.PhaseJitter > 0 {
		shift = time.Duration(rng.Range(-float64(spec.PhaseJitter), float64(spec.PhaseJitter)))
	}
	samples := make([]float64, n)
	amp := (spec.PeakCores - spec.BaseCores) / 2
	mid := (spec.PeakCores + spec.BaseCores) / 2
	for i := range samples {
		at := time.Duration(i)*spec.Interval + shift
		hour := math.Mod(at.Hours(), 24)
		// Raised cosine with maximum at PeakHour.
		v := mid + amp*math.Cos(2*math.Pi*(hour-spec.PeakHour)/24)
		if spec.WeekendScale > 0 && spec.WeekendScale < 1 {
			dayOfWeek := int(time.Duration(i)*spec.Interval/(24*time.Hour)) % 7
			if dayOfWeek >= 5 { // Saturday, Sunday
				v *= spec.WeekendScale
			}
		}
		if spec.NoiseFrac > 0 {
			v += rng.Norm(0, spec.NoiseFrac*v)
		}
		if v < 0 {
			v = 0
		}
		samples[i] = v
	}
	return &Trace{Interval: spec.Interval, Samples: samples}
}

// SpikeSpec parameterizes a flash-crowd overlay.
type SpikeSpec struct {
	Interval time.Duration
	// Length is the total trace length (default 24h).
	Length time.Duration
	// BaseCores is the steady demand outside spikes.
	BaseCores float64
	// SpikeCores is the demand during a spike.
	SpikeCores float64
	// Spikes is how many spikes to place (uniformly at random).
	Spikes int
	// SpikeLen is the duration of each spike (default 10 minutes).
	SpikeLen time.Duration
	// RampLen is the rise time from base to spike demand (default one
	// interval — a near-instant flash crowd).
	RampLen time.Duration
	// Starts, when non-empty, pins the spike onset times instead of
	// placing Spikes uniformly at random. Sharing the same Starts
	// across a fleet of VMs models a correlated flash crowd — the
	// arrival pattern that stresses wake-up latency, because the whole
	// tier surges at once.
	Starts []time.Duration
	// StartJitter shifts each pinned start by a uniform ± offset, so
	// correlated VMs do not move in perfect lockstep.
	StartJitter time.Duration
}

func (s *SpikeSpec) defaults() {
	if s.Interval <= 0 {
		s.Interval = time.Minute
	}
	if s.Length <= 0 {
		s.Length = 24 * time.Hour
	}
	if s.SpikeLen <= 0 {
		s.SpikeLen = 10 * time.Minute
	}
	if s.RampLen <= 0 {
		s.RampLen = s.Interval
	}
}

// Spiky generates steady demand with randomly placed flash-crowd
// spikes. This is the workload that punishes slow wake-up: serving the
// spike needs capacity that a power manager may have parked.
func Spiky(rng *sim.RNG, spec SpikeSpec) *Trace {
	spec.defaults()
	n := int(spec.Length / spec.Interval)
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = spec.BaseCores
	}
	spikeIv := int(spec.SpikeLen / spec.Interval)
	rampIv := int(spec.RampLen / spec.Interval)
	if rampIv < 1 {
		rampIv = 1
	}
	starts := make([]int, 0, spec.Spikes)
	if len(spec.Starts) > 0 {
		for _, at := range spec.Starts {
			if spec.StartJitter > 0 {
				at += time.Duration(rng.Range(-float64(spec.StartJitter), float64(spec.StartJitter)))
			}
			idx := int(at / spec.Interval)
			if idx < 0 {
				idx = 0
			}
			if idx < n {
				starts = append(starts, idx)
			}
		}
	} else {
		for s := 0; s < spec.Spikes; s++ {
			starts = append(starts, rng.Intn(n))
		}
	}
	for _, start := range starts {
		for j := 0; j < spikeIv && start+j < n; j++ {
			v := spec.SpikeCores
			if j < rampIv {
				v = spec.BaseCores + (spec.SpikeCores-spec.BaseCores)*float64(j+1)/float64(rampIv)
			}
			if v > samples[start+j] {
				samples[start+j] = v
			}
		}
	}
	return &Trace{Interval: spec.Interval, Samples: samples}
}

// BatchSpec parameterizes a periodic batch job.
type BatchSpec struct {
	Interval time.Duration
	Length   time.Duration
	// IdleCores is the demand between runs.
	IdleCores float64
	// RunCores is the demand during a run.
	RunCores float64
	// Period is the spacing between run starts (default 4h).
	Period time.Duration
	// RunLen is the duration of each run (default 45 minutes).
	RunLen time.Duration
}

func (s *BatchSpec) defaults() {
	if s.Interval <= 0 {
		s.Interval = time.Minute
	}
	if s.Length <= 0 {
		s.Length = 24 * time.Hour
	}
	if s.Period <= 0 {
		s.Period = 4 * time.Hour
	}
	if s.RunLen <= 0 {
		s.RunLen = 45 * time.Minute
	}
}

// Batch generates a mostly idle trace with periodic full-load runs,
// offset by a random phase.
func Batch(rng *sim.RNG, spec BatchSpec) *Trace {
	spec.defaults()
	n := int(spec.Length / spec.Interval)
	samples := make([]float64, n)
	offset := time.Duration(rng.Float64() * float64(spec.Period))
	for i := range samples {
		at := time.Duration(i) * spec.Interval
		inPeriod := (at + offset) % spec.Period
		if inPeriod < spec.RunLen {
			samples[i] = spec.RunCores
		} else {
			samples[i] = spec.IdleCores
		}
	}
	return &Trace{Interval: spec.Interval, Samples: samples}
}

// WorkdaySpec parameterizes a step-ramp business-day curve: low
// overnight demand jumping to full daytime load within minutes of a
// fixed opening time, every day — the market-open pattern where a
// recurring ramp is *steep* relative to server boot latency. This is
// the workload where predictive wake matters.
type WorkdaySpec struct {
	Interval time.Duration
	// Days is the number of 24-hour cycles (default 1).
	Days int
	// LowCores is the overnight demand.
	LowCores float64
	// HighCores is the business-hours demand.
	HighCores float64
	// OpenHour and CloseHour bound the business day (defaults 9, 18).
	OpenHour  float64
	CloseHour float64
	// JumpLen is how long the open/close transitions take (default 2
	// minutes).
	JumpLen time.Duration
	// OpenJitter shifts each VM's open/close by a uniform ± offset so
	// the fleet ramps over a couple of minutes rather than one tick.
	OpenJitter time.Duration
	// NoiseFrac adds zero-mean Gaussian noise proportional to demand.
	NoiseFrac float64
	// Weekends, when true, keeps days 6 and 7 of each week at
	// LowCores: no business-day ramp on Saturday/Sunday.
	Weekends bool
}

func (s *WorkdaySpec) defaults() {
	if s.Interval <= 0 {
		s.Interval = time.Minute
	}
	if s.Days <= 0 {
		s.Days = 1
	}
	if s.OpenHour == 0 {
		s.OpenHour = 9
	}
	if s.CloseHour == 0 {
		s.CloseHour = 18
	}
	if s.JumpLen <= 0 {
		s.JumpLen = 2 * time.Minute
	}
}

// Workday generates the step-ramp business-day curve.
func Workday(rng *sim.RNG, spec WorkdaySpec) *Trace {
	spec.defaults()
	shift := time.Duration(0)
	if spec.OpenJitter > 0 {
		shift = time.Duration(rng.Range(-float64(spec.OpenJitter), float64(spec.OpenJitter)))
	}
	day := 24 * time.Hour
	n := int(time.Duration(spec.Days) * day / spec.Interval)
	samples := make([]float64, n)
	open := time.Duration(spec.OpenHour*float64(time.Hour)) + shift
	close := time.Duration(spec.CloseHour*float64(time.Hour)) + shift
	for i := range samples {
		inDay := (time.Duration(i) * spec.Interval) % day
		v := spec.LowCores
		if spec.Weekends {
			if dayOfWeek := int(time.Duration(i)*spec.Interval/day) % 7; dayOfWeek >= 5 {
				if spec.NoiseFrac > 0 {
					v += rng.Norm(0, spec.NoiseFrac*v)
				}
				if v < 0 {
					v = 0
				}
				samples[i] = v
				continue
			}
		}
		switch {
		case inDay >= open && inDay < open+spec.JumpLen:
			frac := float64(inDay-open) / float64(spec.JumpLen)
			v = spec.LowCores + frac*(spec.HighCores-spec.LowCores)
		case inDay >= open+spec.JumpLen && inDay < close:
			v = spec.HighCores
		case inDay >= close && inDay < close+spec.JumpLen:
			frac := float64(inDay-close) / float64(spec.JumpLen)
			v = spec.HighCores - frac*(spec.HighCores-spec.LowCores)
		}
		if spec.NoiseFrac > 0 {
			v += rng.Norm(0, spec.NoiseFrac*v)
		}
		if v < 0 {
			v = 0
		}
		samples[i] = v
	}
	return &Trace{Interval: spec.Interval, Samples: samples}
}

// OUSpec parameterizes a mean-reverting (Ornstein-Uhlenbeck) demand
// walk, a standard model for noisy service demand.
type OUSpec struct {
	Interval time.Duration
	Length   time.Duration
	// MeanCores is the long-run mean demand.
	MeanCores float64
	// Volatility is the per-step noise magnitude (cores).
	Volatility float64
	// Reversion in (0,1] is the pull back to the mean per step.
	Reversion float64
	// MaxCores clamps the walk (default 4× mean).
	MaxCores float64
}

func (s *OUSpec) defaults() {
	if s.Interval <= 0 {
		s.Interval = time.Minute
	}
	if s.Length <= 0 {
		s.Length = 24 * time.Hour
	}
	if s.Reversion <= 0 || s.Reversion > 1 {
		s.Reversion = 0.1
	}
	if s.MaxCores <= 0 {
		s.MaxCores = 4 * s.MeanCores
	}
}

// RandomWalk generates a mean-reverting demand walk.
func RandomWalk(rng *sim.RNG, spec OUSpec) *Trace {
	spec.defaults()
	n := int(spec.Length / spec.Interval)
	samples := make([]float64, n)
	v := spec.MeanCores
	for i := range samples {
		v += spec.Reversion*(spec.MeanCores-v) + rng.Norm(0, spec.Volatility)
		if v < 0 {
			v = 0
		}
		if v > spec.MaxCores {
			v = spec.MaxCores
		}
		samples[i] = v
	}
	return &Trace{Interval: spec.Interval, Samples: samples}
}
