package workload

import (
	"testing"
	"time"

	"agilepower/internal/sim"
)

func TestDiurnalShape(t *testing.T) {
	rng := sim.NewRNG(1)
	tr := Diurnal(rng, DiurnalSpec{BaseCores: 1, PeakCores: 5})
	if tr.Duration() != 24*time.Hour {
		t.Fatalf("duration = %v, want 24h", tr.Duration())
	}
	// Peak should be near hour 14, trough near hour 2.
	peak := tr.At(14 * time.Hour)
	trough := tr.At(2 * time.Hour)
	if peak < 4.5 || peak > 5.5 {
		t.Fatalf("peak demand = %v, want ~5", peak)
	}
	if trough < 0.5 || trough > 1.5 {
		t.Fatalf("trough demand = %v, want ~1", trough)
	}
	if peak <= trough {
		t.Fatal("no day/night contrast")
	}
}

func TestDiurnalNeverNegative(t *testing.T) {
	rng := sim.NewRNG(2)
	tr := Diurnal(rng, DiurnalSpec{BaseCores: 0.1, PeakCores: 2, NoiseFrac: 0.5})
	for i, s := range tr.Samples {
		if s < 0 {
			t.Fatalf("negative demand %v at sample %d", s, i)
		}
	}
}

func TestDiurnalMultipleDays(t *testing.T) {
	rng := sim.NewRNG(3)
	tr := Diurnal(rng, DiurnalSpec{Days: 3, BaseCores: 1, PeakCores: 2})
	if tr.Duration() != 72*time.Hour {
		t.Fatalf("duration = %v, want 72h", tr.Duration())
	}
}

func TestDiurnalDeterministic(t *testing.T) {
	a := Diurnal(sim.NewRNG(7), DiurnalSpec{BaseCores: 1, PeakCores: 4, NoiseFrac: 0.1})
	b := Diurnal(sim.NewRNG(7), DiurnalSpec{BaseCores: 1, PeakCores: 4, NoiseFrac: 0.1})
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("same seed produced different traces")
		}
	}
}

func TestDiurnalPhaseJitterShiftsPeak(t *testing.T) {
	spec := DiurnalSpec{BaseCores: 0, PeakCores: 10, PhaseJitter: 3 * time.Hour}
	shifted := false
	for seed := uint64(0); seed < 10; seed++ {
		tr := Diurnal(sim.NewRNG(seed), spec)
		if tr.At(14*time.Hour) < 9.5 {
			shifted = true
		}
	}
	if !shifted {
		t.Fatal("phase jitter never moved the peak")
	}
}

func TestSpikyHasSpikesAndBase(t *testing.T) {
	rng := sim.NewRNG(4)
	tr := Spiky(rng, SpikeSpec{BaseCores: 1, SpikeCores: 8, Spikes: 5})
	peak := tr.Peak()
	if peak != 8 {
		t.Fatalf("peak = %v, want 8", peak)
	}
	atBase := 0
	for _, s := range tr.Samples {
		if s == 1 {
			atBase++
		}
	}
	if atBase < len(tr.Samples)/2 {
		t.Fatalf("only %d/%d samples at base; spikes dominate", atBase, len(tr.Samples))
	}
}

func TestSpikyZeroSpikesIsFlat(t *testing.T) {
	tr := Spiky(sim.NewRNG(5), SpikeSpec{BaseCores: 2, SpikeCores: 9, Spikes: 0})
	for _, s := range tr.Samples {
		if s != 2 {
			t.Fatal("flat trace has non-base samples")
		}
	}
}

func TestSpikyRamp(t *testing.T) {
	// With a long ramp, samples between base and spike must exist.
	tr := Spiky(sim.NewRNG(6), SpikeSpec{
		BaseCores: 0, SpikeCores: 10, Spikes: 3,
		SpikeLen: 30 * time.Minute, RampLen: 10 * time.Minute,
	})
	mid := false
	for _, s := range tr.Samples {
		if s > 1 && s < 9 {
			mid = true
		}
	}
	if !mid {
		t.Fatal("ramped spike has no intermediate samples")
	}
}

func TestBatchPeriodicity(t *testing.T) {
	tr := Batch(sim.NewRNG(7), BatchSpec{
		IdleCores: 0.2, RunCores: 4,
		Period: 2 * time.Hour, RunLen: 30 * time.Minute,
	})
	runSamples, idleSamples := 0, 0
	for _, s := range tr.Samples {
		switch s {
		case 4:
			runSamples++
		case 0.2:
			idleSamples++
		default:
			t.Fatalf("unexpected sample %v", s)
		}
	}
	// 30 min of every 2h → a quarter of samples at run level.
	frac := float64(runSamples) / float64(runSamples+idleSamples)
	if frac < 0.2 || frac > 0.3 {
		t.Fatalf("run fraction = %v, want ~0.25", frac)
	}
}

func TestRandomWalkBounds(t *testing.T) {
	tr := RandomWalk(sim.NewRNG(8), OUSpec{MeanCores: 2, Volatility: 1})
	for _, s := range tr.Samples {
		if s < 0 || s > 8 {
			t.Fatalf("walk escaped [0, 4*mean]: %v", s)
		}
	}
}

func TestRandomWalkMeanReversion(t *testing.T) {
	tr := RandomWalk(sim.NewRNG(9), OUSpec{
		MeanCores: 3, Volatility: 0.3, Reversion: 0.2, Length: 72 * time.Hour,
	})
	m := tr.Mean()
	if m < 2.5 || m > 3.5 {
		t.Fatalf("walk mean = %v, want ~3", m)
	}
}
