package workload

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestNewTraceValidation(t *testing.T) {
	if _, err := NewTrace(0, []float64{1}); err == nil {
		t.Error("accepted zero interval")
	}
	if _, err := NewTrace(time.Minute, nil); err == nil {
		t.Error("accepted empty trace")
	}
	if _, err := NewTrace(time.Minute, []float64{1, -2}); err == nil {
		t.Error("accepted negative demand")
	}
	if _, err := NewTrace(time.Minute, []float64{1, 2}); err != nil {
		t.Errorf("rejected valid trace: %v", err)
	}
}

func TestAtStepsAndWraps(t *testing.T) {
	tr, _ := NewTrace(time.Minute, []float64{1, 2, 3})
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 1},
		{30 * time.Second, 1},
		{time.Minute, 2},
		{2*time.Minute + 59*time.Second, 3},
		{3 * time.Minute, 1}, // wrap
		{7 * time.Minute, 2}, // wrap twice
		{-time.Minute, 1},    // clamp negative
	}
	for _, c := range cases {
		if got := tr.At(c.at); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestNextChange(t *testing.T) {
	tr, _ := NewTrace(time.Minute, []float64{1, 2})
	if got := tr.NextChange(0); got != time.Minute {
		t.Fatalf("NextChange(0) = %v", got)
	}
	if got := tr.NextChange(59 * time.Second); got != time.Minute {
		t.Fatalf("NextChange(59s) = %v", got)
	}
	if got := tr.NextChange(time.Minute); got != 2*time.Minute {
		t.Fatalf("NextChange(1m) = %v", got)
	}
}

func TestPeakMeanDuration(t *testing.T) {
	tr, _ := NewTrace(time.Minute, []float64{1, 3, 2})
	if tr.Peak() != 3 {
		t.Fatalf("Peak = %v", tr.Peak())
	}
	if tr.Mean() != 2 {
		t.Fatalf("Mean = %v", tr.Mean())
	}
	if tr.Duration() != 3*time.Minute {
		t.Fatalf("Duration = %v", tr.Duration())
	}
}

func TestScaleClamp(t *testing.T) {
	tr, _ := NewTrace(time.Minute, []float64{1, 2, 4})
	s := tr.Scale(2)
	if s.Samples[2] != 8 {
		t.Fatalf("Scale: %v", s.Samples)
	}
	if tr.Samples[2] != 4 {
		t.Fatal("Scale mutated the original")
	}
	c := tr.Clamp(1.5)
	if c.Samples[0] != 1 || c.Samples[1] != 1.5 || c.Samples[2] != 1.5 {
		t.Fatalf("Clamp: %v", c.Samples)
	}
	n := tr.Scale(-1)
	for _, v := range n.Samples {
		if v != 0 {
			t.Fatal("negative scale should floor at 0")
		}
	}
}

func TestAddCyclicExtension(t *testing.T) {
	a, _ := NewTrace(time.Minute, []float64{1, 1, 1, 1})
	b, _ := NewTrace(time.Minute, []float64{10, 20})
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{11, 21, 11, 21}
	for i := range want {
		if sum.Samples[i] != want[i] {
			t.Fatalf("Add = %v, want %v", sum.Samples, want)
		}
	}
}

func TestAddIntervalMismatch(t *testing.T) {
	a, _ := NewTrace(time.Minute, []float64{1})
	b, _ := NewTrace(time.Second, []float64{1})
	if _, err := Add(a, b); err == nil {
		t.Fatal("Add accepted interval mismatch")
	}
}

func TestConstant(t *testing.T) {
	tr := Constant(2.5)
	if tr.At(0) != 2.5 || tr.At(100*time.Hour) != 2.5 {
		t.Fatal("Constant trace not constant")
	}
}

// Property: At() always returns one of the trace's sample values and
// never negative.
func TestAtProperty(t *testing.T) {
	tr, _ := NewTrace(time.Minute, []float64{0, 1.5, 7, 0.25})
	inSet := map[float64]bool{0: true, 1.5: true, 7: true, 0.25: true}
	f := func(secs uint32) bool {
		v := tr.At(time.Duration(secs) * time.Second)
		return v >= 0 && inSet[v]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Mean scales linearly with Scale.
func TestScaleMeanProperty(t *testing.T) {
	tr, _ := NewTrace(time.Minute, []float64{1, 2, 3, 4, 5})
	f := func(fRaw uint8) bool {
		factor := float64(fRaw) / 16
		s := tr.Scale(factor)
		return math.Abs(s.Mean()-tr.Mean()*factor) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
