package workload

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestNewTraceValidation(t *testing.T) {
	if _, err := NewTrace(0, []float64{1}); err == nil {
		t.Error("accepted zero interval")
	}
	if _, err := NewTrace(time.Minute, nil); err == nil {
		t.Error("accepted empty trace")
	}
	if _, err := NewTrace(time.Minute, []float64{1, -2}); err == nil {
		t.Error("accepted negative demand")
	}
	if _, err := NewTrace(time.Minute, []float64{1, 2}); err != nil {
		t.Errorf("rejected valid trace: %v", err)
	}
}

func TestAtStepsAndWraps(t *testing.T) {
	tr, _ := NewTrace(time.Minute, []float64{1, 2, 3})
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 1},
		{30 * time.Second, 1},
		{time.Minute, 2},
		{2*time.Minute + 59*time.Second, 3},
		{3 * time.Minute, 1}, // wrap
		{7 * time.Minute, 2}, // wrap twice
		{-time.Minute, 1},    // clamp negative
	}
	for _, c := range cases {
		if got := tr.At(c.at); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestNextChange(t *testing.T) {
	tr, _ := NewTrace(time.Minute, []float64{1, 2})
	if got := tr.NextChange(0); got != time.Minute {
		t.Fatalf("NextChange(0) = %v", got)
	}
	if got := tr.NextChange(59 * time.Second); got != time.Minute {
		t.Fatalf("NextChange(59s) = %v", got)
	}
	if got := tr.NextChange(time.Minute); got != 2*time.Minute {
		t.Fatalf("NextChange(1m) = %v", got)
	}
}

func TestNextChangeSkipsEqualSamples(t *testing.T) {
	// Runs of equal samples are not changes: {1,1,2,2,1} changes at
	// samples 2 and 4 only (and wraps back to 1→... at cycle end the
	// value 1 continues into sample 0, so the wrap edge is sample 2 of
	// the next cycle... exercised below).
	tr, _ := NewTrace(time.Minute, []float64{1, 1, 2, 2, 1})
	if got := tr.NextChange(0); got != 2*time.Minute {
		t.Fatalf("NextChange(0) = %v, want 2m", got)
	}
	if got := tr.NextChange(90 * time.Second); got != 2*time.Minute {
		t.Fatalf("NextChange(90s) = %v, want 2m", got)
	}
	if got := tr.NextChange(2 * time.Minute); got != 4*time.Minute {
		t.Fatalf("NextChange(2m) = %v, want 4m", got)
	}
	// At sample 4 (value 1), the value stays 1 through the wrap into
	// samples 0 and 1 of the next cycle; the next change is sample 2 of
	// the next cycle, at 5m+2m.
	if got := tr.NextChange(4 * time.Minute); got != 7*time.Minute {
		t.Fatalf("NextChange(4m) = %v, want 7m", got)
	}
	// Deep into a later cycle the table still applies.
	if got := tr.NextChange(10*time.Minute + 30*time.Second); got != 12*time.Minute {
		t.Fatalf("NextChange(10m30s) = %v, want 12m", got)
	}
}

func TestNextChangeConstantIsNever(t *testing.T) {
	if got := Constant(2).NextChange(0); got != Never {
		t.Fatalf("Constant NextChange = %v, want Never", got)
	}
	tr, _ := NewTrace(time.Minute, []float64{3, 3, 3})
	if got := tr.NextChange(time.Hour); got != Never {
		t.Fatalf("flat multi-sample NextChange = %v, want Never", got)
	}
}

// Oracle: NextChange must agree with brute-force per-tick sampling —
// the value is constant on [at, NextChange) and differs at NextChange.
// This is exactly the contract delta evaluation relies on to skip
// quiescent hosts.
func TestNextChangeAgainstSamplingOracle(t *testing.T) {
	traces := []*Trace{
		Constant(1.5),
		mustTrace(t, time.Minute, []float64{1, 2}),
		mustTrace(t, time.Minute, []float64{1, 1, 2, 2, 1}),
		mustTrace(t, 30*time.Second, []float64{0, 0, 0, 5, 5, 0, 3}),
		mustTrace(t, time.Minute, []float64{2, 2, 2, 2}),
		mustTrace(t, 15*time.Second, []float64{1, 2, 1, 2, 2}),
	}
	for ti, tr := range traces {
		cycle := tr.Duration()
		horizon := 3 * cycle
		step := tr.Interval / 3 // probe off-boundary times too
		for at := time.Duration(0); at < horizon; at += step {
			got := tr.NextChange(at)
			// Brute force: scan tick by tick for the next differing value.
			want := Never
			v := tr.At(at)
			for probe := at + tr.Interval/6; probe < at+2*cycle+tr.Interval; probe += tr.Interval / 6 {
				if tr.At(probe) != v {
					// Round down to the sample boundary the change sits on.
					want = probe / tr.Interval * tr.Interval
					break
				}
			}
			if got != want {
				t.Fatalf("trace %d: NextChange(%v) = %v, oracle %v", ti, at, got, want)
			}
			if got != Never {
				if tr.At(got) == v {
					t.Fatalf("trace %d: value did not change at NextChange(%v)=%v", ti, at, got)
				}
				if got <= at {
					t.Fatalf("trace %d: NextChange(%v)=%v not strictly after", ti, at, got)
				}
			}
		}
	}
}

func mustTrace(t *testing.T, iv time.Duration, samples []float64) *Trace {
	t.Helper()
	tr, err := NewTrace(iv, samples)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestPeakMeanDuration(t *testing.T) {
	tr, _ := NewTrace(time.Minute, []float64{1, 3, 2})
	if tr.Peak() != 3 {
		t.Fatalf("Peak = %v", tr.Peak())
	}
	if tr.Mean() != 2 {
		t.Fatalf("Mean = %v", tr.Mean())
	}
	if tr.Duration() != 3*time.Minute {
		t.Fatalf("Duration = %v", tr.Duration())
	}
}

func TestScaleClamp(t *testing.T) {
	tr, _ := NewTrace(time.Minute, []float64{1, 2, 4})
	s := tr.Scale(2)
	if s.Samples[2] != 8 {
		t.Fatalf("Scale: %v", s.Samples)
	}
	if tr.Samples[2] != 4 {
		t.Fatal("Scale mutated the original")
	}
	c := tr.Clamp(1.5)
	if c.Samples[0] != 1 || c.Samples[1] != 1.5 || c.Samples[2] != 1.5 {
		t.Fatalf("Clamp: %v", c.Samples)
	}
	n := tr.Scale(-1)
	for _, v := range n.Samples {
		if v != 0 {
			t.Fatal("negative scale should floor at 0")
		}
	}
}

func TestAddCyclicExtension(t *testing.T) {
	a, _ := NewTrace(time.Minute, []float64{1, 1, 1, 1})
	b, _ := NewTrace(time.Minute, []float64{10, 20})
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{11, 21, 11, 21}
	for i := range want {
		if sum.Samples[i] != want[i] {
			t.Fatalf("Add = %v, want %v", sum.Samples, want)
		}
	}
}

func TestAddIntervalMismatch(t *testing.T) {
	a, _ := NewTrace(time.Minute, []float64{1})
	b, _ := NewTrace(time.Second, []float64{1})
	if _, err := Add(a, b); err == nil {
		t.Fatal("Add accepted interval mismatch")
	}
}

func TestConstant(t *testing.T) {
	tr := Constant(2.5)
	if tr.At(0) != 2.5 || tr.At(100*time.Hour) != 2.5 {
		t.Fatal("Constant trace not constant")
	}
}

// Property: At() always returns one of the trace's sample values and
// never negative.
func TestAtProperty(t *testing.T) {
	tr, _ := NewTrace(time.Minute, []float64{0, 1.5, 7, 0.25})
	inSet := map[float64]bool{0: true, 1.5: true, 7: true, 0.25: true}
	f := func(secs uint32) bool {
		v := tr.At(time.Duration(secs) * time.Second)
		return v >= 0 && inSet[v]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Mean scales linearly with Scale.
func TestScaleMeanProperty(t *testing.T) {
	tr, _ := NewTrace(time.Minute, []float64{1, 2, 3, 4, 5})
	f := func(fRaw uint8) bool {
		factor := float64(fRaw) / 16
		s := tr.Scale(factor)
		return math.Abs(s.Mean()-tr.Mean()*factor) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
