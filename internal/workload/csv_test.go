package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestCSVRoundTrip(t *testing.T) {
	orig, _ := NewTrace(time.Minute, []float64{0, 1.5, 3.25, 2})
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Interval != orig.Interval {
		t.Fatalf("interval = %v, want %v", got.Interval, orig.Interval)
	}
	if len(got.Samples) != len(orig.Samples) {
		t.Fatalf("samples = %d, want %d", len(got.Samples), len(orig.Samples))
	}
	for i := range orig.Samples {
		if got.Samples[i] != orig.Samples[i] {
			t.Fatalf("sample %d = %v, want %v", i, got.Samples[i], orig.Samples[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"too short", "offset_seconds,demand_cores\n0,1\n"},
		{"bad offset", "h,d\nx,1\n60,2\n"},
		{"bad demand", "h,d\n0,x\n60,2\n"},
		{"negative demand", "h,d\n0,-1\n60,2\n"},
		{"uneven spacing", "h,d\n0,1\n60,2\n200,3\n"},
		{"non-increasing", "h,d\n60,1\n60,2\n"},
		{"missing column", "h,d\n0\n60,2\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tc.in)); err == nil {
				t.Errorf("ReadCSV accepted %s", tc.name)
			}
		})
	}
}

func TestReadCSVInfersInterval(t *testing.T) {
	in := "offset_seconds,demand_cores\n0,1\n300,2\n600,3\n"
	tr, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Interval != 5*time.Minute {
		t.Fatalf("interval = %v, want 5m", tr.Interval)
	}
}
