package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV hardens the trace parser: arbitrary input must either
// parse into a valid trace or return an error — never panic, never
// yield a trace that violates its own invariants.
func FuzzReadCSV(f *testing.F) {
	f.Add("offset_seconds,demand_cores\n0,1\n60,2\n")
	f.Add("h,d\n0,0\n300,1.5\n600,0\n")
	f.Add("offset_seconds,demand_cores\n0,1\n60,-2\n")
	f.Add("garbage")
	f.Add("")
	f.Add("a,b\n1e300,1\n2e300,2\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if tr.Interval <= 0 {
			t.Fatalf("parsed trace with interval %v", tr.Interval)
		}
		if len(tr.Samples) == 0 {
			t.Fatal("parsed empty trace")
		}
		for _, s := range tr.Samples {
			if s < 0 {
				t.Fatalf("parsed negative demand %v", s)
			}
		}
		// A parsed trace must round-trip.
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("round-trip write failed: %v", err)
		}
	})
}
