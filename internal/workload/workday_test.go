package workload

import (
	"testing"
	"time"

	"agilepower/internal/sim"
)

func TestWorkdayShape(t *testing.T) {
	tr := Workday(sim.NewRNG(1), WorkdaySpec{LowCores: 0.5, HighCores: 4})
	if tr.Duration() != 24*time.Hour {
		t.Fatalf("duration = %v", tr.Duration())
	}
	if got := tr.At(3 * time.Hour); got != 0.5 {
		t.Fatalf("night demand = %v, want 0.5", got)
	}
	if got := tr.At(12 * time.Hour); got != 4 {
		t.Fatalf("midday demand = %v, want 4", got)
	}
	if got := tr.At(20 * time.Hour); got != 0.5 {
		t.Fatalf("evening demand = %v, want 0.5", got)
	}
}

func TestWorkdayRampIsSteep(t *testing.T) {
	tr := Workday(sim.NewRNG(1), WorkdaySpec{LowCores: 0, HighCores: 10, JumpLen: 2 * time.Minute})
	// At 8:59 still low; by 9:03 fully high.
	if tr.At(8*time.Hour+59*time.Minute) != 0 {
		t.Fatal("demand rose before open")
	}
	if tr.At(9*time.Hour+3*time.Minute) != 10 {
		t.Fatal("demand not at high 3 minutes after open")
	}
	// Mid-ramp sample exists.
	mid := tr.At(9*time.Hour + 1*time.Minute)
	if mid <= 0 || mid >= 10 {
		t.Fatalf("mid-ramp = %v", mid)
	}
}

func TestWorkdayMultiDayRepeats(t *testing.T) {
	tr := Workday(sim.NewRNG(1), WorkdaySpec{Days: 3, LowCores: 1, HighCores: 5})
	if tr.Duration() != 72*time.Hour {
		t.Fatalf("duration = %v", tr.Duration())
	}
	for day := 0; day < 3; day++ {
		at := time.Duration(day)*24*time.Hour + 12*time.Hour
		if tr.At(at) != 5 {
			t.Fatalf("day %d midday = %v", day, tr.At(at))
		}
	}
}

func TestWorkdayJitterShiftsOpen(t *testing.T) {
	shifted := false
	for seed := uint64(0); seed < 10; seed++ {
		tr := Workday(sim.NewRNG(seed), WorkdaySpec{
			LowCores: 0, HighCores: 10, OpenJitter: 10 * time.Minute,
		})
		// With jitter, the 9:00 sharp boundary moves: some seeds are
		// still ramping (or already done) at 9:00 exactly.
		if tr.At(9*time.Hour) != tr.At(9*time.Hour+20*time.Minute) {
			shifted = true
		}
	}
	if !shifted {
		t.Fatal("jitter never moved the open boundary")
	}
}

func TestWorkdayNoiseNonNegative(t *testing.T) {
	tr := Workday(sim.NewRNG(3), WorkdaySpec{LowCores: 0.1, HighCores: 3, NoiseFrac: 0.5})
	for i, s := range tr.Samples {
		if s < 0 {
			t.Fatalf("negative sample %v at %d", s, i)
		}
	}
}

func TestWorkdayWeekends(t *testing.T) {
	tr := Workday(sim.NewRNG(1), WorkdaySpec{
		Days: 7, LowCores: 0.5, HighCores: 4, Weekends: true,
	})
	// Friday (day 5) midday is busy; Saturday (day 6) midday is not.
	fri := 4*24*time.Hour + 12*time.Hour
	sat := 5*24*time.Hour + 12*time.Hour
	sun := 6*24*time.Hour + 12*time.Hour
	if tr.At(fri) != 4 {
		t.Fatalf("friday midday = %v", tr.At(fri))
	}
	if tr.At(sat) != 0.5 || tr.At(sun) != 0.5 {
		t.Fatalf("weekend midday = %v / %v, want 0.5", tr.At(sat), tr.At(sun))
	}
}

func TestDiurnalWeekendScale(t *testing.T) {
	tr := Diurnal(sim.NewRNG(1), DiurnalSpec{
		Days: 7, BaseCores: 1, PeakCores: 5, WeekendScale: 0.3,
	})
	mon := 14 * time.Hour
	sat := 5*24*time.Hour + 14*time.Hour
	ratio := tr.At(sat) / tr.At(mon)
	if ratio < 0.25 || ratio > 0.35 {
		t.Fatalf("weekend/weekday ratio = %v, want ~0.3", ratio)
	}
}
