package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// WriteCSV writes the trace as rows of (offset_seconds, demand_cores)
// with a header, the interchange format for bringing external
// utilization traces into the simulator.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"offset_seconds", "demand_cores"}); err != nil {
		return err
	}
	for i, s := range t.Samples {
		off := time.Duration(i) * t.Interval
		rec := []string{
			strconv.FormatFloat(off.Seconds(), 'f', 0, 64),
			strconv.FormatFloat(s, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV (or any CSV with the same
// two columns). Rows must be evenly spaced; the interval is inferred
// from the first two rows.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace csv: %w", err)
	}
	if len(recs) < 3 { // header + at least two samples to infer interval
		return nil, fmt.Errorf("workload: trace csv needs a header and ≥2 rows, got %d", len(recs))
	}
	recs = recs[1:] // drop header
	offs := make([]float64, len(recs))
	samples := make([]float64, len(recs))
	for i, rec := range recs {
		if len(rec) < 2 {
			return nil, fmt.Errorf("workload: row %d has %d columns, want 2", i+2, len(rec))
		}
		off, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: row %d offset: %w", i+2, err)
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: row %d demand: %w", i+2, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("workload: row %d negative demand %v", i+2, v)
		}
		offs[i] = off
		samples[i] = v
	}
	interval := time.Duration((offs[1] - offs[0]) * float64(time.Second))
	if interval <= 0 {
		return nil, fmt.Errorf("workload: non-increasing offsets in rows 2-3")
	}
	for i := 1; i < len(offs); i++ {
		want := offs[0] + float64(i)*interval.Seconds()
		if diff := offs[i] - want; diff > 0.5 || diff < -0.5 {
			return nil, fmt.Errorf("workload: row %d offset %v not evenly spaced (want %v)", i+2, offs[i], want)
		}
	}
	return NewTrace(interval, samples)
}
