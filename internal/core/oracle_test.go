package core

import (
	"math"
	"testing"
	"time"

	"agilepower/internal/power"
	"agilepower/internal/telemetry"
)

func testOracle() *Oracle {
	return &Oracle{
		Hosts:     4,
		HostCores: 16,
		Profile:   power.DefaultProfile(),
	}
}

func TestOracleValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Oracle)
	}{
		{"zero hosts", func(o *Oracle) { o.Hosts = 0 }},
		{"zero cores", func(o *Oracle) { o.HostCores = 0 }},
		{"nil profile", func(o *Oracle) { o.Profile = nil }},
		{"bad target", func(o *Oracle) { o.TargetUtil = 2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := testOracle()
			tc.mut(o)
			if err := o.Validate(); err == nil {
				t.Errorf("accepted %s", tc.name)
			}
		})
	}
}

func TestOraclePowerAtIdleKeepsOneHost(t *testing.T) {
	o := testOracle()
	got, err := o.PowerAt(0)
	if err != nil {
		t.Fatal(err)
	}
	// One host deep-idle (120 W) + three parked in S3 (12 W each).
	want := power.Watts(120 + 3*12)
	if got != want {
		t.Fatalf("idle oracle power = %v, want %v", got, want)
	}
}

func TestOraclePowerAtScalesHosts(t *testing.T) {
	o := testOracle()
	// Demand 16 cores needs exactly 1 host at full tilt (TargetUtil=1).
	got, err := o.PowerAt(16)
	if err != nil {
		t.Fatal(err)
	}
	want := power.Watts(250 + 3*12)
	if got != want {
		t.Fatalf("power(16) = %v, want %v", got, want)
	}
	// Demand 17 cores needs 2 hosts at util 17/32.
	got, err = o.PowerAt(17)
	if err != nil {
		t.Fatal(err)
	}
	util := 17.0 / 32
	want = power.Watts(2)*o.Profile.ActivePower(util) + power.Watts(2*12)
	if math.Abs(float64(got-want)) > 1e-9 {
		t.Fatalf("power(17) = %v, want %v", got, want)
	}
}

func TestOraclePowerAtSaturates(t *testing.T) {
	o := testOracle()
	// Demand beyond the fleet: all hosts at peak.
	got, err := o.PowerAt(1000)
	if err != nil {
		t.Fatal(err)
	}
	if got != power.Watts(4*250) {
		t.Fatalf("saturated power = %v, want 1000", got)
	}
}

func TestOracleHonoursTargetUtil(t *testing.T) {
	o := testOracle()
	o.TargetUtil = 0.5 // usable 8 cores per host
	got, err := o.PowerAt(9)
	if err != nil {
		t.Fatal(err)
	}
	// 9 cores needs 2 hosts at util 9/32.
	want := power.Watts(2)*o.Profile.ActivePower(9.0/32) + power.Watts(2*12)
	if math.Abs(float64(got-want)) > 1e-9 {
		t.Fatalf("power = %v, want %v", got, want)
	}
}

func TestOracleEnergyIntegration(t *testing.T) {
	o := testOracle()
	s := telemetry.NewSeries("demand")
	s.Append(0, 0)
	s.Append(time.Hour, 16)
	e, err := o.Energy(s, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Hour 1: 156 W; hour 2: 286 W.
	want := 156.0*3600 + 286.0*3600
	if math.Abs(float64(e)-want) > 1 {
		t.Fatalf("energy = %v, want %v", e, want)
	}
}

func TestOracleEnergyEmptySeries(t *testing.T) {
	o := testOracle()
	if _, err := o.Energy(telemetry.NewSeries("x"), time.Hour); err == nil {
		t.Fatal("empty series accepted")
	}
}

func TestProportionalEnergy(t *testing.T) {
	o := testOracle()
	s := telemetry.NewSeries("demand")
	s.Append(0, 32) // half the 64-core fleet
	e, err := o.ProportionalEnergy(s, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// 32 cores × (250/16) W/core = 500 W for an hour.
	if math.Abs(float64(e)-500*3600) > 1 {
		t.Fatalf("proportional energy = %v, want %v", e, 500*3600)
	}
}

func TestProportionalBelowOracle(t *testing.T) {
	o := testOracle()
	s := telemetry.NewSeries("demand")
	s.Append(0, 5)
	s.Append(6*time.Hour, 40)
	s.Append(12*time.Hour, 10)
	prop, err := o.ProportionalEnergy(s, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := o.Energy(s, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if prop >= ideal {
		t.Fatalf("proportional %v should undercut oracle %v", prop, ideal)
	}
}
