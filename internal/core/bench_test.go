package core

import (
	"testing"
	"time"

	"agilepower/internal/cluster"
	"agilepower/internal/host"
	"agilepower/internal/sim"
	"agilepower/internal/vm"
	"agilepower/internal/workload"
)

func benchItems(n int, rng *sim.RNG) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			Key:     i,
			CPU:     rng.Range(0.2, 2.5),
			MemGB:   rng.Range(2, 16),
			Current: rng.Intn(32) + 1,
		}
	}
	return items
}

func benchBins(n int) []Bin {
	bins := make([]Bin, n)
	for i := range bins {
		bins[i] = Bin{Key: i + 1, CPUCap: 16 * 0.7, MemCap: 256}
	}
	return bins
}

// BenchmarkPackFFD packs 200 VMs into 32 hosts, the planner's inner
// loop at the paper's cluster scale.
func BenchmarkPackFFD(b *testing.B) {
	items := benchItems(200, sim.NewRNG(1))
	bins := benchBins(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := Pack(items, bins, PackFFD); !ok {
			b.Fatal("pack failed")
		}
	}
}

// BenchmarkPackBFD is the best-fit variant of the same packing.
func BenchmarkPackBFD(b *testing.B) {
	items := benchItems(200, sim.NewRNG(1))
	bins := benchBins(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := Pack(items, bins, PackBFD); !ok {
			b.Fatal("pack failed")
		}
	}
}

// BenchmarkMinBins measures the minimal-host search (the scale-down
// decision) at 200 VMs / 32 hosts.
func BenchmarkMinBins(b *testing.B) {
	items := benchItems(200, sim.NewRNG(1))
	bins := benchBins(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := MinBins(items, bins, PackFFD); !ok {
			b.Fatal("minbins failed")
		}
	}
}

// BenchmarkManagerControlStep measures one full manager control period
// (forecast, place, power decisions, drain, balance) over a 32-host /
// 160-VM cluster under the paper's DPM-S3 policy — the management
// plane's hot path.
func BenchmarkManagerControlStep(b *testing.B) {
	eng := sim.NewEngine(1)
	cl, err := cluster.New(eng, cluster.Config{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, err := cl.AddHost(host.Config{Cores: 16, MemoryGB: 256}); err != nil {
			b.Fatal(err)
		}
	}
	rng := sim.NewRNG(1)
	for i := 0; i < 160; i++ {
		tr := workload.Diurnal(rng.Fork(), workload.DiurnalSpec{BaseCores: 0.4, PeakCores: 3})
		if _, err := cl.AddVM(vm.Config{VCPUs: 4, MemoryGB: 8, Trace: tr}, host.ID(i%32+1)); err != nil {
			b.Fatal(err)
		}
	}
	m, err := NewManager(cl, Config{Policy: DPMS3})
	if err != nil {
		b.Fatal(err)
	}
	cl.Start()
	m.Start()
	eng.RunUntil(time.Hour)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.step()
	}
}

// BenchmarkPeakWindowForecast measures the forecaster's sliding-window
// maintenance over a day of minute samples.
func BenchmarkPeakWindowForecast(b *testing.B) {
	rng := sim.NewRNG(1)
	samples := make([]float64, 1440)
	for i := range samples {
		samples[i] = rng.Range(0, 4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, _ := ForecastSpec{Kind: ForecastPeakWindow}.New()
		for j, v := range samples {
			f.Observe(sim.Time(j)*sim.Time(60_000_000_000), v)
		}
		if f.Forecast() < 0 {
			b.Fatal("negative forecast")
		}
	}
}

// hyperscaleManagerFixture builds a 16,384-host / 131,072-VM fleet in
// steady state: a quiescent majority on constant demand with a diurnal
// minority sharing a pooled trace set. The demand levels are chosen so
// the control step observes everything but actuates nothing — per-host
// load (≈13.4 cores) sits under the 0.90·16 load-balance threshold,
// fleet demand under the 0.85 wake threshold, and above the Σ 0.70·16
// packing capacity so MinBins proves consolidation infeasible without
// packing — which is exactly the regime where incremental planning
// must win: churn is near zero while the fleet is enormous.
func hyperscaleManagerFixture(b *testing.B, mode IncrementalMode) (*sim.Engine, *Manager) {
	b.Helper()
	eng := sim.NewEngine(1)
	cl, err := cluster.New(eng, cluster.Config{})
	if err != nil {
		b.Fatal(err)
	}
	const nHosts = 16384
	for i := 0; i < nHosts; i++ {
		if _, err := cl.AddHost(host.Config{Cores: 16, MemoryGB: 256}); err != nil {
			b.Fatal(err)
		}
	}
	rng := sim.NewRNG(1)
	diurnal := make([]*workload.Trace, 256)
	for i := range diurnal {
		diurnal[i] = workload.Diurnal(rng.Fork(), workload.DiurnalSpec{
			BaseCores: 0.3, PeakCores: 1.2,
		})
	}
	constant := []*workload.Trace{
		workload.Constant(1.60), workload.Constant(1.65),
		workload.Constant(1.70), workload.Constant(1.75),
	}
	for i := 0; i < nHosts*8; i++ {
		hid := host.ID(i%nHosts + 1)
		var tr *workload.Trace
		if (int(hid)-1)%8 == 0 {
			tr = diurnal[i%len(diurnal)]
		} else {
			tr = constant[i%len(constant)]
		}
		if _, err := cl.AddVM(vm.Config{VCPUs: 2, MemoryGB: 8, Trace: tr}, hid); err != nil {
			b.Fatal(err)
		}
	}
	m, err := NewManager(cl, Config{Policy: DPMS3, Incremental: mode})
	if err != nil {
		b.Fatal(err)
	}
	cl.Start()
	m.Start()
	eng.RunUntil(time.Hour)
	return eng, m
}

// BenchmarkManagerControlStepHyperscale measures one steady-state
// control period over the 16,384-host fleet, full-scan ("eager") vs
// incremental planning. The incremental run must also be allocation
// free — CI gates on both (see make bench-manager-smoke).
func BenchmarkManagerControlStepHyperscale(b *testing.B) {
	for _, mode := range []struct {
		name string
		inc  IncrementalMode
	}{
		{"eager", IncrementalOff},
		{"incremental", IncrementalOn},
	} {
		b.Run(mode.name, func(b *testing.B) {
			_, m := hyperscaleManagerFixture(b, mode.inc)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.step()
			}
		})
	}
}
