package core

import (
	"testing"
	"time"

	"agilepower/internal/cluster"
	"agilepower/internal/host"
	"agilepower/internal/power"
	"agilepower/internal/sim"
	"agilepower/internal/vm"
	"agilepower/internal/workload"
)

func maintenanceSetup(t *testing.T, policy Policy) (*sim.Engine, *cluster.Cluster, *Manager) {
	t.Helper()
	eng := sim.NewEngine(1)
	cl, err := cluster.New(eng, cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := cl.AddHost(host.Config{Cores: 16, MemoryGB: 64}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if _, err := cl.AddVM(vm.Config{VCPUs: 4, MemoryGB: 8, Trace: workload.Constant(1)}, host.ID(i%4+1)); err != nil {
			t.Fatal(err)
		}
	}
	m, err := NewManager(cl, Config{Policy: policy, Period: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	m.Start()
	return eng, cl, m
}

func TestMaintenanceDrainsAndHolds(t *testing.T) {
	eng, cl, m := maintenanceSetup(t, NoPM)
	eng.RunUntil(5 * time.Minute)
	if err := m.EnterMaintenance(1); err != nil {
		t.Fatal(err)
	}
	if !m.InMaintenance(1) {
		t.Fatal("host not marked")
	}
	eng.RunUntil(30 * time.Minute)
	h, _ := cl.Host(1)
	if h.NumVMs() != 0 {
		t.Fatalf("maintenance host still has %d VMs", h.NumVMs())
	}
	if !m.MaintenanceReady(1) {
		t.Fatal("drained maintenance host not ready")
	}
	// Held out of service but NOT parked (operator wants it on).
	if !h.Available() {
		t.Fatalf("maintenance host was parked: %v/%v", h.Machine().State(), h.Machine().Phase())
	}
	// VMs all live elsewhere and are served.
	agg := cl.AggregateSLA()
	if agg.Satisfaction() < 0.99 {
		t.Fatalf("satisfaction = %v during maintenance", agg.Satisfaction())
	}
}

func TestMaintenanceNotParkedUnderDPM(t *testing.T) {
	eng, cl, m := maintenanceSetup(t, DPMS3)
	eng.RunUntil(5 * time.Minute)
	// Under DPM consolidation some hosts are already parked; hold one
	// that is still serving.
	var target host.ID
	for _, h := range cl.Hosts() {
		if h.Available() {
			target = h.ID()
			break
		}
	}
	if target == 0 {
		t.Fatal("no available host to maintain")
	}
	if err := m.EnterMaintenance(target); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(time.Hour)
	h, _ := cl.Host(target)
	if h.Machine().State() != power.S0 {
		t.Fatalf("maintenance host parked in %v under DPM", h.Machine().State())
	}
	if h.NumVMs() != 0 {
		t.Fatalf("maintenance host holds %d VMs", h.NumVMs())
	}
	if !m.MaintenanceReady(target) {
		t.Fatal("not ready")
	}
}

func TestMaintenanceNotReclaimedByScaleUp(t *testing.T) {
	eng, cl, m := maintenanceSetup(t, DPMS3)
	eng.RunUntil(5 * time.Minute)
	if err := m.EnterMaintenance(1); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(20 * time.Minute)
	// Force pressure: every remaining host oversubscribed would pull
	// back evacuating hosts — but never a maintenance hold.
	for i := 0; i < 12; i++ {
		if _, err := cl.AddPendingVM(vm.Config{VCPUs: 4, MemoryGB: 8, Trace: workload.Constant(4)}); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(time.Hour)
	h, _ := cl.Host(1)
	if h.NumVMs() != 0 {
		t.Fatalf("maintenance hold violated under pressure: %d VMs", h.NumVMs())
	}
	if !m.InMaintenance(1) {
		t.Fatal("maintenance flag dropped")
	}
}

func TestExitMaintenanceReturnsToService(t *testing.T) {
	eng, cl, m := maintenanceSetup(t, NoPM)
	eng.RunUntil(5 * time.Minute)
	if err := m.EnterMaintenance(1); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(30 * time.Minute)
	if err := m.ExitMaintenance(1); err != nil {
		t.Fatal(err)
	}
	if m.InMaintenance(1) || m.MaintenanceReady(1) {
		t.Fatal("maintenance state not cleared")
	}
	// New arrivals may land on it again.
	v, err := cl.AddPendingVM(vm.Config{VCPUs: 4, MemoryGB: 8, Trace: workload.Constant(1)})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(40 * time.Minute)
	if _, placed := cl.Placement(v.ID()); !placed {
		t.Fatal("arrival not placed after maintenance exit")
	}
}

func TestMaintenanceErrors(t *testing.T) {
	eng, cl, m := maintenanceSetup(t, DPMS3)
	if err := m.EnterMaintenance(99); err == nil {
		t.Fatal("unknown host accepted")
	}
	if err := m.ExitMaintenance(1); err == nil {
		t.Fatal("exit without enter accepted")
	}
	// A host mid-transition cannot enter maintenance; once it settles
	// asleep, maintenance becomes a wake hold (nothing to drain).
	eng.RunUntil(time.Minute)
	var parked host.ID
	for _, h := range cl.Hosts() {
		if h.Empty() && h.Available() {
			parked = h.ID()
			break
		}
	}
	if parked != 0 {
		if err := cl.SleepHost(parked, power.S3); err != nil {
			t.Fatal(err)
		}
		if err := m.EnterMaintenance(parked); err == nil {
			t.Fatal("mid-transition host accepted for maintenance")
		}
		eng.RunUntil(eng.Now() + time.Minute) // let the S3 entry settle
		if err := m.EnterMaintenance(parked); err != nil {
			t.Fatalf("settled parked host rejected: %v", err)
		}
		if !m.InMaintenance(parked) || !m.MaintenanceReady(parked) {
			t.Fatal("parked maintenance host not held/ready")
		}
		if err := m.ExitMaintenance(parked); err != nil {
			t.Fatal(err)
		}
	}
	if m.MaintenanceReady(99) {
		t.Fatal("unknown host ready")
	}
}
