package core

import (
	"fmt"
	"time"

	"agilepower/internal/power"
	"agilepower/internal/telemetry"
)

// Oracle computes the analytic lower bounds the paper compares
// against: a perfect-knowledge power manager with zero-latency
// transitions, and an ideally energy-proportional fleet. Both are
// evaluated over a recorded cluster demand series rather than by
// running a controller — the oracle, by definition, never mispredicts
// and never pays transition costs.
type Oracle struct {
	// Hosts is the fleet size.
	Hosts int
	// HostCores is per-host CPU capacity.
	HostCores float64
	// Profile is the per-host power calibration.
	Profile *power.Profile
	// TargetUtil is the packing headroom the oracle honours (so it is
	// comparable to the controller, which also refuses to run hosts
	// flat out). Default 1.0 — a true lower bound.
	TargetUtil float64
	// SleepState is where inactive hosts park (default S3).
	SleepState power.State
}

// Validate checks the oracle parameters.
func (o *Oracle) Validate() error {
	if o.Hosts <= 0 {
		return fmt.Errorf("core: oracle needs hosts > 0, got %d", o.Hosts)
	}
	if o.HostCores <= 0 {
		return fmt.Errorf("core: oracle needs host cores > 0, got %v", o.HostCores)
	}
	if o.Profile == nil {
		return fmt.Errorf("core: oracle needs a power profile")
	}
	if err := o.Profile.Validate(); err != nil {
		return err
	}
	if o.TargetUtil < 0 || o.TargetUtil > 1 {
		return fmt.Errorf("core: oracle target util %v outside [0,1]", o.TargetUtil)
	}
	return nil
}

func (o *Oracle) defaults() Oracle {
	out := *o
	if out.TargetUtil == 0 {
		out.TargetUtil = 1.0
	}
	if out.SleepState == power.S0 {
		out.SleepState = power.S3
	}
	return out
}

// PowerAt returns the fleet draw of the ideal power manager at total
// demand d: the fewest hosts that serve d within the headroom target,
// evenly loaded, with the rest parked.
func (o *Oracle) PowerAt(d float64) (power.Watts, error) {
	oo := o.defaults()
	if err := oo.Validate(); err != nil {
		return 0, err
	}
	if d < 0 {
		d = 0
	}
	perHost := oo.HostCores * oo.TargetUtil
	n := 0
	if d > 0 {
		n = int((d + perHost - 1e-9) / perHost)
		if float64(n)*perHost < d {
			n++
		}
	}
	if n < 1 {
		n = 1 // even an idle cluster keeps one host on
	}
	if n > oo.Hosts {
		n = oo.Hosts
	}
	util := d / (float64(n) * oo.HostCores)
	if util > 1 {
		util = 1
	}
	active := power.Watts(float64(n)) * oo.Profile.ActivePower(util)
	sleepP := power.Watts(0)
	if spec, ok := oo.Profile.SleepSpec(oo.SleepState); ok {
		sleepP = spec.Power
	}
	parked := power.Watts(float64(oo.Hosts-n)) * sleepP
	return active + parked, nil
}

// Energy integrates the ideal power manager over a recorded demand
// series up to horizon.
func (o *Oracle) Energy(demand *telemetry.Series, horizon time.Duration) (power.Joules, error) {
	oo := o.defaults()
	if err := oo.Validate(); err != nil {
		return 0, err
	}
	return integrate(demand, horizon, func(d float64) power.Watts {
		w, _ := oo.PowerAt(d) // validated above
		return w
	})
}

// ProportionalEnergy integrates the ideal energy-proportional fleet:
// power is exactly peak-per-core times used cores, zero at idle. This
// is the absolute floor no real system reaches.
func (o *Oracle) ProportionalEnergy(demand *telemetry.Series, horizon time.Duration) (power.Joules, error) {
	oo := o.defaults()
	if err := oo.Validate(); err != nil {
		return 0, err
	}
	perCore := float64(oo.Profile.PeakPower) / oo.HostCores
	totalCores := float64(oo.Hosts) * oo.HostCores
	return integrate(demand, horizon, func(d float64) power.Watts {
		if d > totalCores {
			d = totalCores
		}
		return power.Watts(d * perCore)
	})
}

// integrate walks the step-function series and accumulates f(value)
// over time.
func integrate(s *telemetry.Series, horizon time.Duration, f func(float64) power.Watts) (power.Joules, error) {
	pts := s.Points()
	if len(pts) == 0 {
		return 0, fmt.Errorf("core: empty demand series")
	}
	total := power.Joules(0)
	for i, p := range pts {
		start := p.At
		end := horizon
		if i+1 < len(pts) {
			end = pts[i+1].At
		}
		if end > horizon {
			end = horizon
		}
		if end > start {
			total += power.WattSeconds(f(p.Value), end-start)
		}
	}
	return total, nil
}
