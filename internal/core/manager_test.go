package core

import (
	"testing"
	"time"

	"agilepower/internal/cluster"
	"agilepower/internal/host"
	"agilepower/internal/power"
	"agilepower/internal/sim"
	"agilepower/internal/vm"
	"agilepower/internal/workload"
)

// runScenario builds a cluster of nHosts 16-core/64GB hosts with one
// 4-vCPU/8GB VM per trace, runs the policy for horizon, and returns
// the pieces for inspection.
func runScenario(t *testing.T, nHosts int, traces []*workload.Trace, cfg Config, horizon time.Duration) (*cluster.Cluster, *Manager) {
	t.Helper()
	eng := sim.NewEngine(42)
	cl, err := cluster.New(eng, cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nHosts; i++ {
		if _, err := cl.AddHost(host.Config{Cores: 16, MemoryGB: 64}); err != nil {
			t.Fatal(err)
		}
	}
	for i, tr := range traces {
		on := host.ID(i%nHosts + 1)
		if _, err := cl.AddVM(vm.Config{VCPUs: 4, MemoryGB: 8, Trace: tr}, on); err != nil {
			t.Fatal(err)
		}
	}
	m, err := NewManager(cl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	m.Start()
	eng.RunUntil(horizon)
	cl.Flush()
	return cl, m
}

func flatTraces(n int, demand float64) []*workload.Trace {
	out := make([]*workload.Trace, n)
	for i := range out {
		out[i] = workload.Constant(demand)
	}
	return out
}

func TestNewManagerValidatesConfig(t *testing.T) {
	eng := sim.NewEngine(1)
	cl, _ := cluster.New(eng, cluster.Config{})
	bad := Config{Policy: DPMS3, TargetUtil: 2}
	if _, err := NewManager(cl, bad); err == nil {
		t.Fatal("accepted bad target util")
	}
	bad = Config{Policy: Policy{Name: "x", PowerManage: true, Consolidate: true}} // no sleep state
	if _, err := NewManager(cl, bad); err == nil {
		t.Fatal("accepted power-manage without sleep state")
	}
	bad = Config{Policy: DPMS3, WakeThreshold: 0.6, TargetUtil: 0.7}
	if _, err := NewManager(cl, bad); err == nil {
		t.Fatal("accepted wake threshold below target utilization")
	}
}

func TestPolicyPresetsValid(t *testing.T) {
	for _, p := range Policies() {
		if err := p.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", p.Name, err)
		}
	}
	if len(Policies()) != 4 {
		t.Fatalf("expected 4 preset policies")
	}
}

func TestStaticPolicyDoesNothing(t *testing.T) {
	cl, m := runScenario(t, 4, flatTraces(4, 1), Config{Policy: Static}, 2*time.Hour)
	st := m.Stats()
	if st.MigrationsLB+st.MigrationsConsolidation != 0 {
		t.Fatalf("static policy migrated: %+v", st)
	}
	entries, exits := cl.PowerActions()
	if entries+exits != 0 {
		t.Fatal("static policy touched power states")
	}
	if len(cl.AvailableHosts()) != 4 {
		t.Fatal("static policy changed host availability")
	}
}

func TestNoPMNeverSleeps(t *testing.T) {
	cl, m := runScenario(t, 4, flatTraces(8, 0.5), Config{Policy: NoPM}, 4*time.Hour)
	entries, _ := cl.PowerActions()
	if entries != 0 {
		t.Fatal("NoPM parked hosts")
	}
	if m.Stats().Sleeps+m.Stats().Wakes != 0 {
		t.Fatal("NoPM counted power actions")
	}
}

func TestDPMS3ConsolidatesLightLoad(t *testing.T) {
	// 8 VMs at 0.5 cores each = 4 cores total on 4×16-core hosts:
	// packs onto one host easily.
	cl, m := runScenario(t, 4, flatTraces(8, 0.5), Config{Policy: DPMS3}, 4*time.Hour)
	if got := len(cl.AvailableHosts()); got != 1 {
		t.Fatalf("available hosts = %d, want consolidation to 1", got)
	}
	st := m.Stats()
	if st.Sleeps != 3 {
		t.Fatalf("sleeps = %d, want 3", st.Sleeps)
	}
	if st.MigrationsConsolidation == 0 {
		t.Fatal("no consolidation migrations recorded")
	}
	// Parked hosts are in S3.
	for _, h := range cl.Hosts() {
		if !h.Available() && h.Machine().State() != power.S3 {
			t.Fatalf("host %d parked in %v, want S3", h.ID(), h.Machine().State())
		}
	}
	// SLA stays essentially intact (only migration downtime).
	agg := cl.AggregateSLA()
	if agg.Satisfaction() < 0.99 {
		t.Fatalf("satisfaction = %v after consolidation", agg.Satisfaction())
	}
}

func TestDPMS5ParksInS5(t *testing.T) {
	cl, _ := runScenario(t, 4, flatTraces(8, 0.5), Config{Policy: DPMS5}, 4*time.Hour)
	parked := 0
	for _, h := range cl.Hosts() {
		if h.Machine().State() == power.S5 {
			parked++
		}
	}
	if parked != 3 {
		t.Fatalf("S5-parked hosts = %d, want 3", parked)
	}
}

func TestDPMSavesEnergyVsStatic(t *testing.T) {
	traces := flatTraces(8, 0.5)
	clStatic, _ := runScenario(t, 4, traces, Config{Policy: Static}, 6*time.Hour)
	clDPM, _ := runScenario(t, 4, traces, Config{Policy: DPMS3}, 6*time.Hour)
	if clDPM.TotalEnergy() >= clStatic.TotalEnergy() {
		t.Fatalf("DPM energy %v not below static %v", clDPM.TotalEnergy(), clStatic.TotalEnergy())
	}
	// Light load on 4 hosts: DPM should save a lot (3 of 4 hosts
	// parked most of the time).
	ratio := float64(clDPM.TotalEnergy()) / float64(clStatic.TotalEnergy())
	if ratio > 0.6 {
		t.Fatalf("DPM/static energy ratio = %v, want well under 0.6", ratio)
	}
}

func TestWakeOnPressure(t *testing.T) {
	// Load starts tiny then jumps to demand that needs several hosts.
	samples := make([]float64, 240)
	for i := range samples {
		if i < 120 {
			samples[i] = 0.25
		} else {
			samples[i] = 4 // per VM
		}
	}
	tr, _ := workload.NewTrace(time.Minute, samples)
	traces := make([]*workload.Trace, 8)
	for i := range traces {
		traces[i] = tr
	}
	// 8 VMs × 4 cores = 32 cores at peak: needs ≥2 hosts at target 0.7.
	cfg := Config{Policy: DPMS3, Period: 2 * time.Minute, Forecast: ForecastSpec{Kind: ForecastLastValue}}
	cl, m := runScenario(t, 4, traces, cfg, 4*time.Hour)
	st := m.Stats()
	if st.Sleeps == 0 {
		t.Fatal("never consolidated during the quiet phase")
	}
	if st.Wakes == 0 {
		t.Fatal("never woke hosts for the load jump")
	}
	if got := len(cl.AvailableHosts()); got < 3 {
		t.Fatalf("available hosts at peak = %d, want ≥3", got)
	}
	// Demand is eventually fully served.
	if cl.DeliveredSeries().At(3*time.Hour) < 31 {
		t.Fatalf("delivered at steady peak = %v, want ~32", cl.DeliveredSeries().At(3*time.Hour))
	}
}

func TestLoadBalancingSpreadsHotHost(t *testing.T) {
	// All 6 VMs (4 cores demand each = 24 > 16 cores) start on host 1;
	// NoPM must offload some.
	eng := sim.NewEngine(1)
	cl, err := cluster.New(eng, cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := cl.AddHost(host.Config{Cores: 16, MemoryGB: 64}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		if _, err := cl.AddVM(vm.Config{VCPUs: 4, MemoryGB: 8, Trace: workload.Constant(4)}, 1); err != nil {
			t.Fatal(err)
		}
	}
	m, err := NewManager(cl, Config{Policy: NoPM, Period: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	m.Start()
	eng.RunUntil(time.Hour)
	cl.Flush()

	if m.Stats().MigrationsLB == 0 {
		t.Fatal("load balancer never moved a VM off the hot host")
	}
	h1, _ := cl.Host(1)
	if h1.NumVMs() >= 6 {
		t.Fatal("hot host not relieved")
	}
	// After balancing, total demand 24 on 48 cores is fully served.
	if got := cl.DeliveredSeries().At(55 * time.Minute); got < 23.9 {
		t.Fatalf("delivered = %v, want 24", got)
	}
}

func TestMinActiveRespected(t *testing.T) {
	cfg := Config{Policy: DPMS3, MinActive: 2}
	cl, _ := runScenario(t, 4, flatTraces(2, 0.25), cfg, 4*time.Hour)
	if got := len(cl.AvailableHosts()); got != 2 {
		t.Fatalf("available hosts = %d, want MinActive=2", got)
	}
}

func TestSpareHostsKeptAwake(t *testing.T) {
	cfg := Config{Policy: DPMS3, SpareHosts: 1}
	cl, _ := runScenario(t, 4, flatTraces(8, 0.5), cfg, 4*time.Hour)
	// Packing needs 1 host; spare adds 1.
	if got := len(cl.AvailableHosts()); got != 2 {
		t.Fatalf("available hosts = %d, want 2 (1 packed + 1 spare)", got)
	}
}

func TestHysteresisPreventsFlapping(t *testing.T) {
	// Demand oscillating inside the hysteresis band must not trigger
	// park/wake cycles. The band: packing at TargetUtil (0.7) never
	// frees a host at 18 cores on 2 hosts, and demand of 26 cores
	// stays below the wake threshold (0.85 × 32 = 27.2).
	samples := make([]float64, 480)
	for i := range samples {
		if i%20 < 10 {
			samples[i] = 18.0 / 8
		} else {
			samples[i] = 26.0 / 8
		}
	}
	tr, _ := workload.NewTrace(time.Minute, samples)
	traces := make([]*workload.Trace, 8)
	for i := range traces {
		traces[i] = tr
	}
	cfg := Config{Policy: DPMS3, Forecast: ForecastSpec{Kind: ForecastLastValue}}
	cl, m := runScenario(t, 2, traces, cfg, 8*time.Hour)
	entries, exits := cl.PowerActions()
	if entries+exits != 0 {
		t.Fatalf("hysteresis band leaked: %d entries, %d exits (stats %+v)", entries, exits, m.Stats())
	}
}

func TestManagerStartIdempotent(t *testing.T) {
	eng := sim.NewEngine(1)
	cl, _ := cluster.New(eng, cluster.Config{})
	cl.AddHost(host.Config{Cores: 16, MemoryGB: 64})
	m, err := NewManager(cl, Config{Policy: NoPM})
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	m.Start()
	m.Start() // second call must not double the control loop
	eng.RunUntil(time.Hour)
	if m.Stats().ControlSteps > 13 { // 60/5 + first
		t.Fatalf("control steps = %d; double loop suspected", m.Stats().ControlSteps)
	}
}

func TestConfigDefaults(t *testing.T) {
	eng := sim.NewEngine(1)
	cl, _ := cluster.New(eng, cluster.Config{})
	m, err := NewManager(cl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.Config()
	if cfg.Policy.Name != DPMS3.Name {
		t.Fatalf("default policy = %q", cfg.Policy.Name)
	}
	if cfg.Period != 5*time.Minute || cfg.TargetUtil != 0.70 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if cfg.Forecast.Kind != ForecastPeakWindow {
		t.Fatalf("default forecast = %v", cfg.Forecast.Kind)
	}
}
