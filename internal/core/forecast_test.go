package core

import (
	"math"
	"testing"
	"time"
)

func TestForecastKindStrings(t *testing.T) {
	if ForecastLastValue.String() != "last-value" ||
		ForecastEWMA.String() != "ewma" ||
		ForecastPeakWindow.String() != "peak-window" {
		t.Fatal("kind names wrong")
	}
	if ForecastKind(99).String() != "forecast?" {
		t.Fatal("unknown kind name wrong")
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := (ForecastSpec{Kind: ForecastEWMA, Alpha: 2}).New(); err == nil {
		t.Error("accepted alpha > 1")
	}
	if _, err := (ForecastSpec{Kind: ForecastEWMA, Alpha: -0.5}).New(); err == nil {
		t.Error("accepted negative alpha")
	}
	if _, err := (ForecastSpec{Kind: ForecastPeakWindow, Window: -time.Second}).New(); err == nil {
		t.Error("accepted negative window")
	}
	if _, err := (ForecastSpec{Kind: ForecastKind(42)}).New(); err == nil {
		t.Error("accepted unknown kind")
	}
}

func TestLastValue(t *testing.T) {
	f, err := ForecastSpec{Kind: ForecastLastValue}.New()
	if err != nil {
		t.Fatal(err)
	}
	if f.Forecast() != 0 {
		t.Fatal("unprimed forecast nonzero")
	}
	f.Observe(0, 3)
	f.Observe(time.Minute, 7)
	if f.Forecast() != 7 {
		t.Fatalf("forecast = %v, want 7", f.Forecast())
	}
}

func TestEWMAConvergesAndSmooths(t *testing.T) {
	f, err := ForecastSpec{Kind: ForecastEWMA, Alpha: 0.5}.New()
	if err != nil {
		t.Fatal(err)
	}
	f.Observe(0, 10)
	if f.Forecast() != 10 {
		t.Fatalf("first observation should prime: %v", f.Forecast())
	}
	f.Observe(time.Minute, 0)
	if f.Forecast() != 5 {
		t.Fatalf("ewma = %v, want 5", f.Forecast())
	}
	// Converges to a constant signal.
	for i := 0; i < 50; i++ {
		f.Observe(time.Duration(i)*time.Minute, 4)
	}
	if math.Abs(f.Forecast()-4) > 1e-6 {
		t.Fatalf("ewma did not converge: %v", f.Forecast())
	}
}

func TestPeakWindowTracksMax(t *testing.T) {
	f, err := ForecastSpec{Kind: ForecastPeakWindow, Window: 10 * time.Minute}.New()
	if err != nil {
		t.Fatal(err)
	}
	if f.Forecast() != 0 {
		t.Fatal("empty window should forecast 0")
	}
	f.Observe(0, 2)
	f.Observe(1*time.Minute, 8) // the spike
	f.Observe(2*time.Minute, 3)
	if f.Forecast() != 8 {
		t.Fatalf("forecast = %v, want spike 8", f.Forecast())
	}
	// Spike still inside the window at t=11 (observed at 1m, window 10m).
	f.Observe(11*time.Minute, 1)
	if f.Forecast() != 8 {
		t.Fatalf("forecast = %v, spike expired too early", f.Forecast())
	}
	// At t=12 the spike (1m + 10m window) has expired.
	f.Observe(12*time.Minute, 1)
	if f.Forecast() != 3 {
		t.Fatalf("forecast = %v, want 3 (next max in window)", f.Forecast())
	}
}

func TestPeakWindowMonotoneDeque(t *testing.T) {
	f, _ := ForecastSpec{Kind: ForecastPeakWindow, Window: time.Hour}.New()
	// Increasing then decreasing values: forecast is always the max
	// seen within the window.
	vals := []float64{1, 4, 2, 9, 3, 3, 5}
	max := 0.0
	for i, v := range vals {
		f.Observe(time.Duration(i)*time.Minute, v)
		if v > max {
			max = v
		}
		if f.Forecast() != max {
			t.Fatalf("after %v: forecast = %v, want %v", v, f.Forecast(), max)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	f, err := ForecastSpec{Kind: ForecastEWMA}.New() // alpha defaults to 0.3
	if err != nil {
		t.Fatal(err)
	}
	f.Observe(0, 10)
	f.Observe(time.Minute, 0)
	if math.Abs(f.Forecast()-7) > 1e-9 {
		t.Fatalf("default alpha forecast = %v, want 7", f.Forecast())
	}
	if _, err := (ForecastSpec{Kind: ForecastPeakWindow}).New(); err != nil {
		t.Fatalf("default window rejected: %v", err)
	}
}
