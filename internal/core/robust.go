package core

import (
	"time"

	"agilepower/internal/host"
	"agilepower/internal/power"
	"agilepower/internal/sim"
	"agilepower/internal/telemetry"
	"agilepower/internal/vm"
)

// Counter names the manager reports through its telemetry.Counters.
// They only ever move under fault injection; a fault-free run leaves
// the set empty.
const (
	// CtrTransitionRetries — power-transition retries issued (suspend
	// or wake) after an injected failure.
	CtrTransitionRetries = "transition_retries"
	// CtrSuspendFailures — suspends the manager observed not taking
	// (host settled back in S0 while marked for parking).
	CtrSuspendFailures = "suspend_failures"
	// CtrWakeFailures — wakes the manager observed not taking (host
	// fell back asleep while a wake was requested).
	CtrWakeFailures = "wake_failures"
	// CtrQuarantines — hosts barred from power actions after
	// exhausting their transition retries.
	CtrQuarantines = "quarantines"
	// CtrMigrationsAborted — migrations that failed mid-flight.
	CtrMigrationsAborted = "migrations_aborted"
	// CtrMigrationReplans — re-planning passes run in response to an
	// aborted migration.
	CtrMigrationReplans = "migration_replans"
	// CtrDegradedKeepOn — evacuations abandoned because the host could
	// not be suspended: it stays on and serving (energy spent, SLA
	// kept).
	CtrDegradedKeepOn = "degraded_keep_on"
	// CtrCrashesObserved — host crashes the manager reacted to.
	CtrCrashesObserved = "crashes_observed"
	// CtrCapEvacuations — hosts marked for evacuation because the
	// active-host count exceeded a power-feed cap budget.
	CtrCapEvacuations = "power_cap_evacuations"
	// CtrCapDeferredWakes — wake opportunities the manager declined
	// because waking would exceed the power-feed cap budget.
	CtrCapDeferredWakes = "power_cap_deferred_wakes"
	// CtrScriptSkipped — scenario script events that could not be
	// applied when they fired (e.g. crashing an already-down host) and
	// were skipped.
	CtrScriptSkipped = "script_skipped"
)

// Counters returns the manager's robustness counters (all zero in a
// fault-free run).
func (m *Manager) Counters() *telemetry.Counters { return m.counters }

// Quarantined reports whether the host is currently barred from power
// actions, expiring the hold lazily.
func (m *Manager) Quarantined(id host.ID) bool { return m.isQuarantined(id) }

// sleepHost parks a host in the policy sleep state, tracking the
// request so the settle handler can tell success from an injected
// suspend failure. Over a control plane the order is asynchronous:
// success is only known when the ack lands (commandResult).
func (m *Manager) sleepHost(id host.ID) error {
	if m.cp != nil {
		// Async sends bypass the cluster's dirty feed; invalidate so
		// no cached plan outlives the intent change.
		m.invalidate()
		m.parking[id] = true
		m.cp.SendSleep(id, m.cfg.Policy.SleepState)
		return nil
	}
	if err := m.cl.SleepHost(id, m.cfg.Policy.SleepState); err != nil {
		return err
	}
	m.parking[id] = true
	return nil
}

// wakeHost starts waking a host, tracking the request so the settle
// handler can tell success from an injected wake failure. Over a
// control plane the order is asynchronous, like sleepHost.
func (m *Manager) wakeHost(id host.ID) error {
	if m.cp != nil {
		// Async sends bypass the cluster's dirty feed; scaleUp appends
		// to the census's waking set after a successful send, so the
		// cached census must not be served again unrebuilt.
		m.invalidate()
		m.wakingReq[id] = true
		m.cp.SendWake(id)
		return nil
	}
	if err := m.cl.WakeHost(id); err != nil {
		return err
	}
	m.wakingReq[id] = true
	return nil
}

// hostSettled is the manager's reaction to every completed host power
// transition: the settled state against the outstanding request tells
// it whether the transition took.
func (m *Manager) hostSettled(id host.ID, st power.State) {
	if st == power.S0 {
		if m.parking[id] {
			// We asked for sleep and got S0 back: the suspend failed.
			delete(m.parking, id)
			m.suspendFailed(id)
		} else {
			// A completed wake (requested or a crash repair): the host
			// proved it can transition, so forgive past failures.
			delete(m.wakingReq, id)
			delete(m.retries, id)
			delete(m.retryAt, id)
		}
		// React to new capacity immediately — the point of low-latency
		// states is not waiting for the next period to use it.
		m.wokeAt[id] = m.cl.Engine().Now()
		if m.started {
			m.step()
		}
		return
	}
	// Settled in a sleep state.
	if m.parking[id] {
		// The park took; the host sleeps clean.
		delete(m.parking, id)
		delete(m.retries, id)
		delete(m.retryAt, id)
		return
	}
	if m.wakingReq[id] {
		// We asked for S0 and the host fell back asleep: the wake
		// failed.
		delete(m.wakingReq, id)
		m.wakeFailed(id)
	}
}

// suspendFailed handles a suspend that did not take. The host is up
// and still marked evacuating; retry the park after a backoff, or —
// once retries are exhausted — quarantine it and return it to service
// (graceful degradation: burn watts, not SLA).
func (m *Manager) suspendFailed(id host.ID) {
	m.counters.Inc(CtrSuspendFailures)
	m.retries[id]++
	n := m.retries[id]
	if n > m.cfg.MaxTransitionRetries {
		m.quarantine(id)
		delete(m.evacuating, id)
		m.invalidate()
		m.counters.Inc(CtrDegradedKeepOn)
		return
	}
	m.counters.Inc(CtrTransitionRetries)
	// The host stays evacuating; drainEvacuating holds the park until
	// the backoff expires, then re-issues it.
	m.retryAt[id] = m.cl.Engine().Now() + sim.Time(m.backoff(n))
}

// wakeFailed handles a wake that fell back asleep. Unlike a failed
// park, waiting for the control loop is not enough — scaleUp only acts
// on pressure — so the retry is scheduled explicitly.
func (m *Manager) wakeFailed(id host.ID) {
	m.counters.Inc(CtrWakeFailures)
	m.retries[id]++
	n := m.retries[id]
	if n > m.cfg.MaxTransitionRetries {
		// The host cannot be brought up; quarantine it asleep and let
		// scaleUp find capacity elsewhere.
		m.quarantine(id)
		return
	}
	m.counters.Inc(CtrTransitionRetries)
	at := m.cl.Engine().Now() + sim.Time(m.backoff(n))
	m.retryAt[id] = at
	m.cl.Engine().ScheduleFunc(at, func() { m.retryWake(id) })
}

// retryWake re-issues a failed wake once its backoff expires. The
// capacity was judged needed when the wake was first requested; if the
// need has since faded, scale-down will park the host again.
func (m *Manager) retryWake(id host.ID) {
	if !m.started {
		return
	}
	h, ok := m.cl.Host(id)
	if !ok {
		return
	}
	mach := h.Machine()
	if !(mach.State().IsSleep() && mach.Phase() == power.Settled) {
		return // something else already moved it
	}
	if m.distrusted(id) || m.hostCmdPending(id) {
		return
	}
	delete(m.retryAt, id)
	if err := m.wakeHost(id); err == nil && m.cp == nil {
		m.stats.Wakes++
	}
}

// backoff returns the capped exponential delay before retry attempt n
// (1-based): base·2^(n-1), at most RetryBackoffMax.
func (m *Manager) backoff(n int) time.Duration {
	d := m.cfg.RetryBackoffBase
	for i := 1; i < n; i++ {
		d *= 2
		if d >= m.cfg.RetryBackoffMax {
			return m.cfg.RetryBackoffMax
		}
	}
	if d > m.cfg.RetryBackoffMax {
		d = m.cfg.RetryBackoffMax
	}
	return d
}

// quarantine bars a host from power actions for QuarantineHold.
func (m *Manager) quarantine(id host.ID) {
	m.counters.Inc(CtrQuarantines)
	m.quarantined[id] = m.cl.Engine().Now() + sim.Time(m.cfg.QuarantineHold)
	delete(m.retries, id)
	delete(m.retryAt, id)
}

// isQuarantined reports whether the host is under a quarantine hold,
// expiring it lazily.
func (m *Manager) isQuarantined(id host.ID) bool {
	until, ok := m.quarantined[id]
	if !ok {
		return false
	}
	if m.cl.Engine().Now() >= until {
		delete(m.quarantined, id)
		return false
	}
	return true
}

// parkHeld reports whether a re-park of the host must wait for a retry
// backoff to expire.
func (m *Manager) parkHeld(id host.ID) bool {
	at, ok := m.retryAt[id]
	return ok && m.cl.Engine().Now() < at
}

// migrationHeld reports whether the VM is still inside the backoff
// window after an aborted migration, expiring it lazily.
func (m *Manager) migrationHeld(id vm.ID) bool {
	at, ok := m.migRetryAt[id]
	if !ok {
		return false
	}
	if m.cl.Engine().Now() >= at {
		delete(m.migRetryAt, id)
		return false
	}
	return true
}

// migrationFailed is the manager's reaction to an aborted migration:
// count it, put the VM on a backoff so a flaky path is not hammered,
// and re-plan the in-progress drains immediately with what is known
// now.
func (m *Manager) migrationFailed(vid vm.ID, src, dst host.ID) {
	m.counters.Inc(CtrMigrationsAborted)
	m.migFails[vid]++
	m.migRetryAt[vid] = m.cl.Engine().Now() + sim.Time(m.cfg.MigrationRetryBackoff)
	if m.started && (m.cfg.Policy.Consolidate || m.cfg.Policy.LoadBalance) {
		m.counters.Inc(CtrMigrationReplans)
		m.continueMoves()
	}
}

// hostCrashed is the manager's reaction to a transient host crash: all
// transition intent for the host is void (the repair supersedes it),
// and a full control step runs immediately to wake replacement
// capacity for the stranded VMs' demand.
func (m *Manager) hostCrashed(id host.ID) {
	if m.cp != nil {
		// With a control plane the manager has no oracle: it learns of
		// crashes from missed heartbeats (livenessChanged), with
		// hysteresis, not from this synchronous callback.
		return
	}
	m.counters.Inc(CtrCrashesObserved)
	delete(m.evacuating, id)
	delete(m.parking, id)
	delete(m.wakingReq, id)
	delete(m.retries, id)
	delete(m.retryAt, id)
	m.invalidate()
	if m.started {
		m.step()
	}
}
