package core

import "testing"

func TestPackGroupsNeverShareBin(t *testing.T) {
	items := []Item{
		{Key: 1, CPU: 1, MemGB: 1, Current: -1, Group: "db"},
		{Key: 2, CPU: 1, MemGB: 1, Current: -1, Group: "db"},
		{Key: 3, CPU: 1, MemGB: 1, Current: -1, Group: "db"},
		{Key: 4, CPU: 1, MemGB: 1, Current: -1}, // unconstrained
	}
	assign, ok := Pack(items, bins(3, 10, 64), PackFFD)
	if !ok {
		t.Fatal("pack failed")
	}
	if assign[1] == assign[2] || assign[1] == assign[3] || assign[2] == assign[3] {
		t.Fatalf("group members share a bin: %v", assign)
	}
}

func TestPackGroupInfeasibleWhenBinsShort(t *testing.T) {
	items := []Item{
		{Key: 1, CPU: 1, MemGB: 1, Current: -1, Group: "db"},
		{Key: 2, CPU: 1, MemGB: 1, Current: -1, Group: "db"},
		{Key: 3, CPU: 1, MemGB: 1, Current: -1, Group: "db"},
	}
	if _, ok := Pack(items, bins(2, 100, 100), PackFFD); ok {
		t.Fatal("3 replicas packed into 2 bins")
	}
}

func TestPackStickyRespectsGroups(t *testing.T) {
	// Both items claim bin 1 as home; only one may stay.
	items := []Item{
		{Key: 1, CPU: 1, MemGB: 1, Current: 1, Group: "db"},
		{Key: 2, CPU: 1, MemGB: 1, Current: 1, Group: "db"},
	}
	assign, ok := Pack(items, bins(2, 10, 64), PackFFD)
	if !ok {
		t.Fatal("pack failed")
	}
	if assign[1] == assign[2] {
		t.Fatalf("sticky pass co-located group: %v", assign)
	}
}

func TestPackBinPreexistingGroups(t *testing.T) {
	// Bin 1 already hosts a "db" member (not a packing item).
	theBins := []Bin{
		{Key: 1, CPUCap: 10, MemCap: 64, Groups: []string{"db"}},
		{Key: 2, CPUCap: 10, MemCap: 64},
	}
	items := []Item{{Key: 1, CPU: 1, MemGB: 1, Current: -1, Group: "db"}}
	assign, ok := Pack(items, theBins, PackFFD)
	if !ok || assign[1] != 2 {
		t.Fatalf("pre-existing group ignored: %v ok=%v", assign, ok)
	}
}

func TestMinBinsGroupFloor(t *testing.T) {
	// Tiny items, but 4 replicas force 4 bins regardless of capacity.
	items := []Item{
		{Key: 1, CPU: 0.1, MemGB: 1, Current: -1, Group: "svc"},
		{Key: 2, CPU: 0.1, MemGB: 1, Current: -1, Group: "svc"},
		{Key: 3, CPU: 0.1, MemGB: 1, Current: -1, Group: "svc"},
		{Key: 4, CPU: 0.1, MemGB: 1, Current: -1, Group: "svc"},
	}
	k, _, ok := MinBins(items, bins(6, 10, 64), PackFFD)
	if !ok || k != 4 {
		t.Fatalf("MinBins = %d ok=%v, want floor 4", k, ok)
	}
}
