package core

import (
	"testing"
	"time"

	"agilepower/internal/cluster"
	"agilepower/internal/host"
	"agilepower/internal/sim"
	"agilepower/internal/vm"
	"agilepower/internal/workload"
)

// TestPredictiveWakePreArmsRamp runs two days of a steep workday
// ramp under DPM-S3 with prediction: on day two the manager must have
// capacity available *before* the 9:00 jump.
func TestPredictiveWakePreArmsRamp(t *testing.T) {
	eng := sim.NewEngine(3)
	cl, err := cluster.New(eng, cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	const hosts = 6
	for i := 0; i < hosts; i++ {
		if _, err := cl.AddHost(host.Config{Cores: 16, MemoryGB: 256}); err != nil {
			t.Fatal(err)
		}
	}
	rng := sim.NewRNG(3)
	for i := 0; i < 24; i++ {
		tr := workload.Workday(rng.Fork(), workload.WorkdaySpec{
			Days: 2, LowCores: 0.3, HighCores: 3, OpenJitter: 2 * time.Minute,
		})
		if _, err := cl.AddVM(vm.Config{VCPUs: 4, MemoryGB: 8, Trace: tr}, host.ID(i%hosts+1)); err != nil {
			t.Fatal(err)
		}
	}
	m, err := NewManager(cl, Config{Policy: DPMS3, PredictiveWake: true})
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	m.Start()
	eng.RunUntil(48 * time.Hour)
	cl.Flush()

	// During day-2 night the cluster is consolidated…
	nightActive := cl.ActiveHostSeries().At(24*time.Hour + 4*time.Hour)
	if nightActive > 3 {
		t.Fatalf("night active hosts = %v, expected consolidation", nightActive)
	}
	// …but just before the learned 9:00 ramp, capacity is pre-armed
	// (wake lead = 2×period + exit ≈ 10 min).
	preRamp := cl.ActiveHostSeries().At(24*time.Hour + 8*time.Hour + 57*time.Minute)
	if preRamp <= nightActive {
		t.Fatalf("no pre-arming: active at 8:57 = %v vs night %v", preRamp, nightActive)
	}
}

// TestPredictiveWakeOffByDefault ensures the model is not built unless
// asked.
func TestPredictiveWakeOffByDefault(t *testing.T) {
	eng := sim.NewEngine(1)
	cl, _ := cluster.New(eng, cluster.Config{})
	cl.AddHost(host.Config{Cores: 16, MemoryGB: 64})
	m, err := NewManager(cl, Config{Policy: DPMS3})
	if err != nil {
		t.Fatal(err)
	}
	if m.diurnal != nil {
		t.Fatal("diurnal model built without PredictiveWake")
	}
	if m.predictedDemand() != 0 {
		t.Fatal("prediction nonzero when disabled")
	}
}
