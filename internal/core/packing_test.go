package core

import (
	"testing"
	"testing/quick"
)

func bins(n int, cpu, mem float64) []Bin {
	out := make([]Bin, n)
	for i := range out {
		out[i] = Bin{Key: i + 1, CPUCap: cpu, MemCap: mem}
	}
	return out
}

func TestPackStickyPlacement(t *testing.T) {
	items := []Item{
		{Key: 1, CPU: 4, MemGB: 8, Current: 2},
		{Key: 2, CPU: 4, MemGB: 8, Current: 1},
	}
	assign, ok := Pack(items, bins(2, 10, 64), PackFFD)
	if !ok {
		t.Fatal("pack failed")
	}
	if assign[1] != 2 || assign[2] != 1 {
		t.Fatalf("sticky placement broken: %v", assign)
	}
	if len(Moves(items, assign)) != 0 {
		t.Fatal("no-op plan produced moves")
	}
}

func TestPackMovesWhenCurrentGone(t *testing.T) {
	items := []Item{
		{Key: 1, CPU: 4, MemGB: 8, Current: 9}, // host 9 not in bins
	}
	assign, ok := Pack(items, bins(2, 10, 64), PackFFD)
	if !ok {
		t.Fatal("pack failed")
	}
	if assign[1] != 1 {
		t.Fatalf("FFD should pick first bin: %v", assign)
	}
	moves := Moves(items, assign)
	if len(moves) != 1 || moves[0] != 1 {
		t.Fatalf("moves = %v", moves)
	}
}

func TestPackRespectsCPUAndMemory(t *testing.T) {
	// CPU-constrained: two 6-CPU items cannot share a 10-CPU bin.
	items := []Item{
		{Key: 1, CPU: 6, MemGB: 1, Current: -1},
		{Key: 2, CPU: 6, MemGB: 1, Current: -1},
	}
	assign, ok := Pack(items, bins(2, 10, 64), PackFFD)
	if !ok || assign[1] == assign[2] {
		t.Fatalf("CPU constraint violated: %v ok=%v", assign, ok)
	}
	// Memory-constrained.
	items = []Item{
		{Key: 1, CPU: 1, MemGB: 40, Current: -1},
		{Key: 2, CPU: 1, MemGB: 40, Current: -1},
	}
	assign, ok = Pack(items, bins(2, 10, 64), PackFFD)
	if !ok || assign[1] == assign[2] {
		t.Fatalf("memory constraint violated: %v ok=%v", assign, ok)
	}
}

func TestPackInfeasible(t *testing.T) {
	items := []Item{{Key: 1, CPU: 20, MemGB: 1, Current: -1}}
	if _, ok := Pack(items, bins(3, 10, 64), PackFFD); ok {
		t.Fatal("oversized item packed")
	}
}

func TestPackBFDPrefersTightFit(t *testing.T) {
	theBins := []Bin{
		{Key: 1, CPUCap: 10, MemCap: 64},
		{Key: 2, CPUCap: 4, MemCap: 64},
	}
	items := []Item{{Key: 1, CPU: 3.5, MemGB: 1, Current: -1}}
	assign, ok := Pack(items, theBins, PackBFD)
	if !ok || assign[1] != 2 {
		t.Fatalf("BFD chose %v, want tight bin 2", assign)
	}
	// FFD takes the first bin instead.
	assign, ok = Pack(items, theBins, PackFFD)
	if !ok || assign[1] != 1 {
		t.Fatalf("FFD chose %v, want first bin 1", assign)
	}
}

func TestPackStickyYieldsToOversizedHome(t *testing.T) {
	// Item's current bin exists but is already too small for it.
	theBins := []Bin{
		{Key: 1, CPUCap: 2, MemCap: 64},
		{Key: 2, CPUCap: 10, MemCap: 64},
	}
	items := []Item{{Key: 1, CPU: 5, MemGB: 1, Current: 1}}
	assign, ok := Pack(items, theBins, PackFFD)
	if !ok || assign[1] != 2 {
		t.Fatalf("assign = %v, want overflow to bin 2", assign)
	}
}

func TestMinBinsFindsMinimum(t *testing.T) {
	// 4 items of 5 CPU each; bins of 10 CPU → 2 bins suffice.
	items := []Item{
		{Key: 1, CPU: 5, MemGB: 1, Current: -1},
		{Key: 2, CPU: 5, MemGB: 1, Current: -1},
		{Key: 3, CPU: 5, MemGB: 1, Current: -1},
		{Key: 4, CPU: 5, MemGB: 1, Current: -1},
	}
	k, assign, ok := MinBins(items, bins(5, 10, 64), PackFFD)
	if !ok || k != 2 {
		t.Fatalf("MinBins = %d ok=%v, want 2", k, ok)
	}
	if len(assign) != 4 {
		t.Fatalf("assignment incomplete: %v", assign)
	}
}

func TestMinBinsEmptyItems(t *testing.T) {
	k, assign, ok := MinBins(nil, bins(3, 10, 64), PackFFD)
	if !ok || k != 0 || len(assign) != 0 {
		t.Fatalf("empty MinBins = %d %v %v", k, assign, ok)
	}
}

func TestMinBinsInfeasible(t *testing.T) {
	items := []Item{{Key: 1, CPU: 100, MemGB: 1, Current: -1}}
	if _, _, ok := MinBins(items, bins(3, 10, 64), PackFFD); ok {
		t.Fatal("infeasible MinBins succeeded")
	}
}

func TestValidateInputs(t *testing.T) {
	if err := Validate([]Item{{Key: 1, CPU: -1}}, nil); err == nil {
		t.Error("negative item accepted")
	}
	if err := Validate(nil, []Bin{{Key: 1, CPUCap: -1}}); err == nil {
		t.Error("negative bin accepted")
	}
	if err := Validate(nil, []Bin{{Key: 1}, {Key: 1}}); err == nil {
		t.Error("duplicate bin keys accepted")
	}
	if err := Validate([]Item{{Key: 1}, {Key: 1}}, nil); err == nil {
		t.Error("duplicate item keys accepted")
	}
	if err := Validate([]Item{{Key: 1, CPU: 1, MemGB: 1}}, bins(1, 10, 64)); err != nil {
		t.Errorf("valid input rejected: %v", err)
	}
}

func TestPackKindString(t *testing.T) {
	if PackFFD.String() != "ffd" || PackBFD.String() != "bfd" || PackKind(9).String() != "pack?" {
		t.Fatal("pack kind names wrong")
	}
}

// Property: any successful packing respects every bin's CPU and memory
// capacity and assigns every item exactly once.
func TestPackCapacityProperty(t *testing.T) {
	f := func(cpus []uint8, kindRaw bool) bool {
		if len(cpus) == 0 || len(cpus) > 40 {
			return true
		}
		kind := PackFFD
		if kindRaw {
			kind = PackBFD
		}
		items := make([]Item, len(cpus))
		for i, c := range cpus {
			items[i] = Item{
				Key:     i,
				CPU:     float64(c%12) / 2, // 0..5.5
				MemGB:   float64(c%16) + 1, // 1..16
				Current: i % 5,
			}
		}
		theBins := bins(12, 11, 64)
		assign, ok := Pack(items, theBins, kind)
		if !ok {
			return true // infeasible is allowed; capacity says nothing
		}
		if len(assign) != len(items) {
			return false
		}
		cpuUsed := make(map[int]float64)
		memUsed := make(map[int]float64)
		for _, it := range items {
			b, ok := assign[it.Key]
			if !ok {
				return false
			}
			cpuUsed[b] += it.CPU
			memUsed[b] += it.MemGB
		}
		for _, b := range theBins {
			if cpuUsed[b.Key] > b.CPUCap+1e-6 || memUsed[b.Key] > b.MemCap+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
