package core

import (
	"fmt"
	"sort"
	"time"

	"agilepower/internal/cluster"
	"agilepower/internal/ctrlplane"
	"agilepower/internal/host"
	"agilepower/internal/power"
	"agilepower/internal/sim"
	"agilepower/internal/telemetry"
	"agilepower/internal/vm"
)

// Stats are cumulative manager counters — the raw material for the
// paper's management-overhead comparison (migrations and power actions
// per hour, DPM vs base DRM).
type Stats struct {
	ControlSteps int
	// MigrationsLB counts load-balancing moves (base DRM overhead).
	MigrationsLB int
	// MigrationsConsolidation counts packing/evacuation moves (the
	// extra overhead power management adds).
	MigrationsConsolidation int
	// MigrationsFailed counts rejected migration requests (slots full,
	// memory pressure) — retried on later steps.
	MigrationsFailed int
	Wakes            int
	Sleeps           int
	// Provisioned counts pending VMs placed onto hosts.
	Provisioned int
	// Panics counts emergency-brake activations (see
	// Config.PanicShortfall).
	Panics int
	// FreqChanges counts DVFS adjustments.
	FreqChanges int
}

// Manager is the power-aware virtualization manager: the paper's
// contribution. It runs a periodic control loop over a cluster,
// forecasting demand, balancing load, consolidating VMs, and driving
// host power states.
type Manager struct {
	cl  *cluster.Cluster
	cfg Config

	forecasts map[vm.ID]Forecaster
	// evacuating marks hosts being drained for parking. A host stays
	// marked until it is parked or reclaimed by a scale-up.
	evacuating map[host.ID]bool

	// sleepDelay is the resolved flap-damping delay (see
	// Config.SleepDelay); shrinkSince tracks how long a scale-down
	// opportunity has persisted (negative = none open).
	sleepDelay  time.Duration
	shrinkSince sim.Time
	shrinkOpen  bool
	// wokeAt records each host's last settle into S0, for the park
	// cooldown.
	wokeAt map[host.ID]sim.Time
	// maintenance marks hosts held out of service by an operator; they
	// drain like evacuating hosts but are never parked or reclaimed by
	// scale-up.
	maintenance map[host.ID]bool
	// Panic-brake state: consecutive over-shortfall ticks and the time
	// until which scale-down is suspended.
	panicTicks int
	panicUntil sim.Time
	// diurnal is the learned time-of-day demand model (nil unless
	// Config.PredictiveWake).
	diurnal *diurnalModel
	// wakeLead is how far ahead predictive wake looks: the sleep
	// state's exit latency plus one control period.
	wakeLead time.Duration

	// Robustness state (see robust.go). parking and wakingReq track
	// outstanding transition requests so the settle handler can tell a
	// success from an injected failure; retries/retryAt hold the capped
	// exponential backoff schedule per host; quarantined bars flaky
	// hosts from power actions until the recorded time; migFails and
	// migRetryAt put VMs whose migrations aborted on a re-plan backoff.
	parking     map[host.ID]bool
	wakingReq   map[host.ID]bool
	retries     map[host.ID]int
	retryAt     map[host.ID]sim.Time
	quarantined map[host.ID]sim.Time
	migFails    map[vm.ID]int
	migRetryAt  map[vm.ID]sim.Time
	counters    *telemetry.Counters

	// cp, when attached, is the imperfect message layer every power and
	// migration order travels over (see ctrl.go); trusted is the
	// liveness-filtered placement scratch it maintains. Both stay nil
	// in plane-free runs so the direct paths are untouched.
	cp      *ctrlplane.Plane
	trusted []*host.Host

	// Scratch buffers reused across control steps so the periodic
	// loops do not allocate. The control phases run sequentially and
	// never nest (callbacks fire from future events, not synchronously
	// inside a phase), so at most one forecast snapshot, one census,
	// and one load map are live at any moment.
	fc      map[vm.ID]float64   // observeAll result
	fcSeen  map[vm.ID]bool      // observeAll liveness mark
	loads   map[host.ID]float64 // hostForecastLoads result
	migTo   map[vm.ID]host.ID   // hostForecastLoads in-flight index
	inbound map[host.ID]float64 // inboundMemory result
	cen     census              // takeCensus backing arrays
	lbVMs   []vm.ID             // balanceLoad sort scratch

	stats   Stats
	started bool
}

// NewManager builds a manager over the cluster. The cluster must not
// have been started yet: the manager hooks host settle events.
func NewManager(cl *cluster.Cluster, cfg Config) (*Manager, error) {
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Manager{
		cl:          cl,
		cfg:         cfg,
		forecasts:   make(map[vm.ID]Forecaster),
		evacuating:  make(map[host.ID]bool),
		wokeAt:      make(map[host.ID]sim.Time),
		maintenance: make(map[host.ID]bool),
		parking:     make(map[host.ID]bool),
		wakingReq:   make(map[host.ID]bool),
		retries:     make(map[host.ID]int),
		retryAt:     make(map[host.ID]sim.Time),
		quarantined: make(map[host.ID]sim.Time),
		migFails:    make(map[vm.ID]int),
		migRetryAt:  make(map[vm.ID]sim.Time),
		counters:    telemetry.NewCounters(),
		fc:          make(map[vm.ID]float64),
		fcSeen:      make(map[vm.ID]bool),
		loads:       make(map[host.ID]float64),
		migTo:       make(map[vm.ID]host.ID),
		inbound:     make(map[host.ID]float64),
	}
	if cfg.PredictiveWake {
		m.diurnal = newDiurnalModel(0.4)
	}
	cl.OnHostSettled(m.hostSettled)
	cl.OnMigrationFailed(m.migrationFailed)
	cl.OnHostCrashed(m.hostCrashed)
	cl.OnMigrationDone(func(vm.ID, host.ID) {
		// Continue in-progress plans as slots free up: drains and
		// rebalances issue follow-up moves immediately instead of
		// trickling a few migrations per control period.
		if m.started && (m.cfg.Policy.Consolidate || m.cfg.Policy.LoadBalance) {
			m.continueMoves()
		}
	})
	return m, nil
}

// continueMoves re-runs the migration-issuing phases with fresh
// forecasts (no power decisions), used when migration slots free up.
func (m *Manager) continueMoves() {
	forecasts := m.observeAll()
	m.drainEvacuating(forecasts)
	if m.cfg.Policy.LoadBalance {
		m.balanceLoad(forecasts)
	}
}

// EnterMaintenance marks a host for evacuation and keeps it out of
// service once drained: the operational "put host in maintenance mode"
// flow, reusing the consolidation drain machinery. The host is not
// parked; it sits available-but-unused (ready for firmware work) until
// ExitMaintenance.
func (m *Manager) EnterMaintenance(id host.ID) error {
	h, ok := m.cl.Host(id)
	if !ok {
		return fmt.Errorf("core: unknown host %d", id)
	}
	if !h.Available() {
		return fmt.Errorf("core: host %d is not available (%v/%v)", id, h.Machine().State(), h.Machine().Phase())
	}
	m.maintenance[id] = true
	m.evacuating[id] = true
	if m.started {
		m.continueMoves()
	}
	return nil
}

// ExitMaintenance returns a host to service.
func (m *Manager) ExitMaintenance(id host.ID) error {
	if !m.maintenance[id] {
		return fmt.Errorf("core: host %d is not in maintenance", id)
	}
	delete(m.maintenance, id)
	delete(m.evacuating, id)
	if m.started {
		m.step()
	}
	return nil
}

// InMaintenance reports whether the host is held for maintenance.
func (m *Manager) InMaintenance(id host.ID) bool { return m.maintenance[id] }

// MaintenanceReady reports whether a maintenance host has fully
// drained (safe to touch).
func (m *Manager) MaintenanceReady(id host.ID) bool {
	if !m.maintenance[id] {
		return false
	}
	h, ok := m.cl.Host(id)
	return ok && h.Empty() && m.cl.Migrations().HostLoad(int(id)) == 0
}

// Config returns the manager's effective (defaulted) configuration.
func (m *Manager) Config() Config { return m.cfg }

// Stats returns a snapshot of the cumulative counters.
func (m *Manager) Stats() Stats { return m.stats }

// Start schedules the periodic control loop plus, for power-managing
// policies, a fast wake check every cluster evaluation step (the
// monitoring plane raises pressure alarms far more often than the
// placement optimizer runs). The Static policy schedules nothing: it
// is the unmanaged baseline.
func (m *Manager) Start() {
	if m.started {
		return
	}
	m.started = true
	m.resolveSleepDelay()
	// Predictive wake looks ahead far enough to finish a wake (exit
	// latency) plus two control periods of reaction slack before a
	// learned ramp hits.
	m.wakeLead = 2 * m.cfg.Period
	if hosts := m.cl.Hosts(); len(hosts) > 0 && m.cfg.Policy.PowerManage {
		if spec, ok := hosts[0].Machine().Profile().SleepSpec(m.cfg.Policy.SleepState); ok {
			m.wakeLead += spec.ExitLatency
		}
	}
	eng := m.cl.Engine()
	var tick func()
	tick = func() {
		m.step()
		eng.AfterFunc(m.cfg.Period, tick)
	}
	eng.AfterFunc(0, tick)
	// The fast tick runs for every policy: provisioning monitoring
	// (placing arrivals) is basic duty, not power management. Only the
	// scale-up half inside wakeCheck is power-gated.
	if m.cl.EvalStep() < m.cfg.Period {
		var fast func()
		fast = func() {
			m.wakeCheck()
			eng.AfterFunc(m.cl.EvalStep(), fast)
		}
		eng.AfterFunc(m.cl.EvalStep(), fast)
	}
}

// resolveSleepDelay computes the latency-aware default scale-down
// persistence: twice the sleep state's round-trip latency. Slow states
// are parked cautiously; agile ones immediately. This is where the
// paper's core argument lands in the controller: transition latency
// sets how aggressive power management can afford to be.
func (m *Manager) resolveSleepDelay() {
	switch {
	case m.cfg.SleepDelay > 0:
		m.sleepDelay = m.cfg.SleepDelay
	case m.cfg.SleepDelay < 0:
		m.sleepDelay = 0
	default:
		hosts := m.cl.Hosts()
		if len(hosts) == 0 || !m.cfg.Policy.PowerManage {
			return
		}
		if spec, ok := hosts[0].Machine().Profile().SleepSpec(m.cfg.Policy.SleepState); ok {
			m.sleepDelay = 2 * spec.CycleLatency()
		}
	}
}

// totalForecast sums forecasts in VM-ID order (map iteration order
// would make the floating-point sum, and thus threshold decisions,
// nondeterministic across runs).
func (m *Manager) totalForecast(forecasts map[vm.ID]float64) float64 {
	total := 0.0
	for _, v := range m.cl.VMs() {
		total += forecasts[v.ID()]
	}
	return total
}

// wakeCheck is the fast path: place arrivals and scale up if pressure
// demands it, nothing else.
func (m *Manager) wakeCheck() {
	forecasts := m.observeAll()
	m.placePending(forecasts)
	if m.cfg.Policy.PowerManage {
		m.checkPanic()
		m.scaleUp(forecasts, m.takeCensus())
	}
	if m.cfg.Policy.DVFS {
		m.adjustFrequencies(forecasts)
	}
}

// checkPanic is the emergency brake: under sustained unserved demand
// it wakes the whole fleet and suspends scale-down for PanicHold.
func (m *Manager) checkPanic() {
	if m.cfg.PanicShortfall <= 0 {
		return
	}
	demand, delivered := m.cl.LastEvaluation()
	if demand <= 0 || 1-delivered/demand <= m.cfg.PanicShortfall {
		m.panicTicks = 0
		return
	}
	m.panicTicks++
	if m.panicTicks < 2 {
		return
	}
	m.panicTicks = 0
	m.stats.Panics++
	m.panicUntil = m.cl.Engine().Now() + sim.Time(m.cfg.PanicHold)
	// Everything wakes; evacuations (except operator maintenance)
	// cancel.
	for id := range m.evacuating {
		if !m.maintenance[id] {
			delete(m.evacuating, id)
		}
	}
	for _, h := range m.cl.Hosts() {
		if m.distrusted(h.ID()) || m.hostCmdPending(h.ID()) {
			continue
		}
		if h.Machine().State().IsSleep() && h.Machine().Phase() == power.Settled {
			if err := m.wakeHost(h.ID()); err == nil && m.cp == nil {
				m.stats.Wakes++
			}
		}
	}
}

// placePending puts arrived-but-unplaced VMs onto the serving host
// with the most forecast slack (respecting memory admission). VMs that
// fit nowhere stay pending; their demand keeps pressure on scaleUp,
// which wakes capacity for them.
func (m *Manager) placePending(forecasts map[vm.ID]float64) {
	pending := m.cl.PendingVMs()
	if len(pending) == 0 {
		return
	}
	c := m.takeCensus()
	// Static policies have no census distinction; any available host
	// (serving or evacuating) can take a new VM, preferring serving.
	// Maintenance holds are respected, as are liveness suspicions.
	candidates := append([]*host.Host(nil), m.trustedServing(c)...)
	for _, h := range c.evacuating {
		if !m.maintenance[h.ID()] && !m.distrusted(h.ID()) {
			candidates = append(candidates, h)
		}
	}
	if len(candidates) == 0 {
		return
	}
	loads := m.hostForecastLoads(forecasts)
	inboundMem := m.inboundMemory()
	for _, vid := range pending {
		v, ok := m.cl.VM(vid)
		if !ok {
			continue
		}
		var best *host.Host
		bestSlack := 0.0
		for _, h := range candidates {
			memFree := h.MemFreeGB() - inboundMem[h.ID()]
			if memFree < v.MemoryGB() {
				continue
			}
			if m.cl.GroupConflict(h.ID(), v.Group(), vid) {
				continue
			}
			slack := h.Cores()*m.cfg.TargetUtil - loads[h.ID()] - forecasts[vid]
			if slack < 0 && loads[h.ID()]+forecasts[vid] > h.Cores() {
				continue // would overload outright
			}
			if best == nil || slack > bestSlack {
				best = h
				bestSlack = slack
			}
		}
		if best == nil {
			continue
		}
		if err := m.cl.PlaceVM(vid, best.ID()); err != nil {
			continue
		}
		m.stats.Provisioned++
		loads[best.ID()] += forecasts[vid]
		// A placed VM re-anchors an evacuating host into service.
		delete(m.evacuating, best.ID())
	}
}

// forecast returns the predicted demand of one VM, updating its
// forecaster with the current observation first (callers must do this
// once per step, via observeAll).
func (m *Manager) observeAll() map[vm.ID]float64 {
	now := m.cl.Engine().Now()
	out, seen := m.fc, m.fcSeen
	clear(out)
	clear(seen)
	for _, v := range m.cl.VMs() {
		f, ok := m.forecasts[v.ID()]
		if !ok {
			var err error
			f, err = m.cfg.Forecast.New()
			if err != nil {
				// Config was validated at construction; a failure here
				// is a programming error.
				panic(fmt.Sprintf("core: forecaster construction: %v", err))
			}
			m.forecasts[v.ID()] = f
		}
		f.Observe(now, v.Demand(now))
		fc := f.Forecast()
		// Never forecast below the VM's cap nor above it.
		if fc > v.VCPUs() {
			fc = v.VCPUs()
		}
		out[v.ID()] = fc
		seen[v.ID()] = true
	}
	// Drop forecasters (and robustness bookkeeping) of departed VMs.
	for id := range m.forecasts {
		if !seen[id] {
			delete(m.forecasts, id)
			delete(m.migFails, id)
			delete(m.migRetryAt, id)
		}
	}
	if m.diurnal != nil {
		total := 0.0
		for _, v := range m.cl.VMs() {
			total += v.Demand(now)
		}
		m.diurnal.Observe(now, total)
	}
	return out
}

// predictedDemand returns the learned demand peak within the wake-lead
// window, or 0 when prediction is off or unprimed.
func (m *Manager) predictedDemand() float64 {
	if m.diurnal == nil {
		return 0
	}
	v, ok := m.diurnal.PredictWindowMax(m.cl.Engine().Now(), m.wakeLead)
	if !ok {
		return 0
	}
	return v
}

// census classifies hosts by power condition.
type census struct {
	serving    []*host.Host // available and not marked evacuating
	evacuating []*host.Host // available but being drained
	waking     []*host.Host // exiting a sleep state
	sleeping   []*host.Host // settled in S3/S5
	entering   []*host.Host // on their way into a sleep state
}

func (m *Manager) takeCensus() census {
	// Reuse the previous census's backing arrays; the returned value
	// (and any slices appended to it by the caller) must be dead by the
	// next takeCensus call, which the sequential control phases ensure.
	c := census{
		serving:    m.cen.serving[:0],
		evacuating: m.cen.evacuating[:0],
		waking:     m.cen.waking[:0],
		sleeping:   m.cen.sleeping[:0],
		entering:   m.cen.entering[:0],
	}
	for _, h := range m.cl.Hosts() {
		if m.ctrlDead(h.ID()) {
			// Presumed dead: plan around the host entirely. Its VMs'
			// demand still pressures scale-up (observeAll sees them), so
			// replacement capacity wakes without double-placing them.
			continue
		}
		mach := h.Machine()
		switch {
		case m.cp != nil && mach.Crashed():
			// With a control plane the manager cannot see the crash
			// directly; until liveness says otherwise the host keeps its
			// last-known class (commands sent to it will bounce).
			if m.evacuating[h.ID()] {
				c.evacuating = append(c.evacuating, h)
			} else {
				c.serving = append(c.serving, h)
			}
		case mach.Available():
			if m.evacuating[h.ID()] {
				c.evacuating = append(c.evacuating, h)
			} else {
				c.serving = append(c.serving, h)
			}
		case mach.Phase() == power.Exiting:
			c.waking = append(c.waking, h)
		case mach.Phase() == power.Entering:
			c.entering = append(c.entering, h)
		case mach.State().IsSleep():
			c.sleeping = append(c.sleeping, h)
		}
	}
	m.cen = c // retain grown backing arrays for the next step
	return c
}

func coresOf(hs []*host.Host) float64 {
	total := 0.0
	for _, h := range hs {
		total += h.Cores()
	}
	return total
}

// step runs one control period.
func (m *Manager) step() {
	m.stats.ControlSteps++
	forecasts := m.observeAll()

	// Provisioning is basic duty for every policy, including the
	// static baseline: new VMs get placed; only *optimization* actions
	// are policy-gated.
	m.placePending(forecasts)
	if m.cfg.Policy.PowerManage {
		m.managePower(forecasts)
	}
	// Draining always runs: consolidation marks hosts only under those
	// policies, but operator maintenance holds must drain under any
	// policy.
	m.drainEvacuating(forecasts)
	if m.cfg.Policy.LoadBalance {
		m.balanceLoad(forecasts)
	}
	if m.cfg.Policy.DVFS {
		m.adjustFrequencies(forecasts)
	}
}

// adjustFrequencies clocks each available host to its forecast load
// plus the packing headroom (a software governor at management
// granularity). Hosts whose profiles have no DVFS range are left
// alone.
func (m *Manager) adjustFrequencies(forecasts map[vm.ID]float64) {
	loads := m.hostForecastLoads(forecasts)
	for _, h := range m.cl.Hosts() {
		if !h.Available() {
			continue
		}
		fmin := h.Machine().Profile().FreqMin
		if fmin <= 0 {
			continue
		}
		f := loads[h.ID()] / (h.Cores() * m.cfg.TargetUtil)
		if f < fmin {
			f = fmin
		}
		if f > 1 {
			f = 1
		}
		if err := h.SetFrequency(f); err == nil {
			m.stats.FreqChanges++
		}
	}
}

// managePower decides the active host set: wake on pressure, evacuate
// on slack, park drained hosts.
func (m *Manager) managePower(forecasts map[vm.ID]float64) {
	c := m.takeCensus()
	if m.scaleUp(forecasts, c) {
		m.shrinkOpen = false
		return
	}
	if m.cl.Engine().Now() < m.panicUntil {
		// Emergency brake engaged: no scale-down until the hold ends.
		m.shrinkOpen = false
		return
	}
	// Scale down: only with no wakes in flight (a wake in flight means
	// we recently judged capacity short — parking now would flap). Wake
	// orders still in transit on the control plane count as in flight.
	if len(c.waking) == 0 && m.pendingWakeCores(c) == 0 && len(c.serving) > m.cfg.MinActive {
		m.considerScaleDown(forecasts, c)
	} else {
		m.shrinkOpen = false
	}
}

// scaleUp wakes capacity when forecast pressure exceeds the wake
// threshold of what is (or will shortly be) available. It reports
// whether it acted or pressure is high.
func (m *Manager) scaleUp(forecasts map[vm.ID]float64, c census) bool {
	total := m.totalForecast(forecasts)
	if p := m.predictedDemand(); p > total {
		// Wake ahead of a learned recurring ramp.
		total = p
	}
	servingCores := coresOf(c.serving)
	// Wake orders still in transit are capacity already asked for:
	// counting it keeps pressure from re-waking the fleet every fast
	// tick while commands crawl through the message layer.
	incomingCores := coresOf(c.waking) + m.pendingWakeCores(c)
	if total <= m.cfg.WakeThreshold*(servingCores+incomingCores) && len(c.serving)+len(c.waking) >= m.cfg.MinActive {
		return false
	}
	needCores := total / m.cfg.TargetUtil
	haveCores := servingCores + incomingCores
	// Cheapest capacity first: reclaim hosts being evacuated (they are
	// on and serving already). Maintenance hosts are operator-held and
	// never reclaimed.
	for _, h := range c.evacuating {
		if haveCores >= needCores && len(c.serving)+len(c.waking) >= m.cfg.MinActive {
			break
		}
		if m.maintenance[h.ID()] {
			continue
		}
		if m.distrusted(h.ID()) || m.hostCmdPending(h.ID()) {
			// A park order already in flight (or a liveness suspicion)
			// makes this host unreliable capacity; wake elsewhere.
			continue
		}
		delete(m.evacuating, h.ID())
		c.serving = append(c.serving, h)
		haveCores += h.Cores()
	}
	// Then wake sleepers, lowest ID first (deterministic). Quarantined
	// hosts are skipped (they proved flaky), as are hosts whose failed
	// wake already has a scheduled retry pending.
	for _, h := range c.sleeping {
		if haveCores >= needCores && len(c.serving)+len(c.waking) >= m.cfg.MinActive {
			break
		}
		if m.isQuarantined(h.ID()) || m.parkHeld(h.ID()) {
			continue
		}
		if m.distrusted(h.ID()) || m.hostCmdPending(h.ID()) {
			continue
		}
		if err := m.wakeHost(h.ID()); err == nil {
			if m.cp == nil {
				m.stats.Wakes++
			}
			haveCores += h.Cores()
			c.waking = append(c.waking, h)
		}
	}
	return true
}

// considerScaleDown checks whether the packing frees at least one
// host, and acts once the opportunity has persisted for the
// latency-aware sleep delay.
func (m *Manager) considerScaleDown(forecasts map[vm.ID]float64, c census) {
	hosts, k, ok := m.packServing(forecasts, c)
	keep := k + m.cfg.SpareHosts
	if keep < m.cfg.MinActive {
		keep = m.cfg.MinActive
	}
	if p := m.predictedDemand(); p > 0 && len(hosts) > 0 {
		avgCores := coresOf(hosts) / float64(len(hosts))
		needed := int(p/(m.cfg.TargetUtil*avgCores)) + 1
		if needed > keep {
			keep = needed
		}
	}
	if !ok || keep >= len(hosts) {
		m.shrinkOpen = false
		return
	}
	now := m.cl.Engine().Now()
	if !m.shrinkOpen {
		m.shrinkOpen = true
		m.shrinkSince = now
	}
	if now-m.shrinkSince < m.sleepDelay {
		return // opportunity must persist before we act
	}
	for _, h := range hosts[keep:] {
		// Recently woken hosts are immune: parking them right after a
		// surge faded is the definition of flapping. Quarantined hosts
		// are immune too — their transitions cannot be trusted.
		if at, ok := m.wokeAt[h.ID()]; ok && now-at < m.cfg.ParkCooldown {
			continue
		}
		if m.isQuarantined(h.ID()) {
			continue
		}
		if m.distrusted(h.ID()) || m.hostCmdPending(h.ID()) {
			continue
		}
		if !m.telemetryFresh(h.ID()) {
			// Freshness guard: never park a host whose telemetry is
			// older than the staleness limit — keep it on conservatively.
			m.counters.Inc(CtrStaleKeepOn)
			continue
		}
		m.evacuating[h.ID()] = true
	}
	m.shrinkOpen = false
}

// packServing orders serving hosts by forecast load (descending, so
// the keep-set is the loaded prefix and migrations are minimized) and
// returns the ordered hosts plus the minimal prefix length that packs
// all VMs.
func (m *Manager) packServing(forecasts map[vm.ID]float64, c census) ([]*host.Host, int, bool) {
	items, exclude := m.buildItems(forecasts)
	loads := make(map[host.ID]float64)
	for _, v := range m.cl.VMs() {
		if exclude[v.ID()] {
			continue
		}
		if hid, ok := m.cl.Placement(v.ID()); ok {
			loads[hid] += forecasts[v.ID()]
		}
	}
	hosts := append([]*host.Host(nil), c.serving...)
	sort.Slice(hosts, func(i, j int) bool {
		li, lj := loads[hosts[i].ID()], loads[hosts[j].ID()]
		if li != lj {
			return li > lj
		}
		return hosts[i].ID() < hosts[j].ID()
	})
	bins := m.buildBins(hosts)
	k, _, ok := MinBins(items, bins, m.cfg.Packing)
	return hosts, k, ok
}

// buildItems converts non-migrating VMs into packing items. Migrating
// VMs are excluded (their landing is already decided); exclude reports
// which were skipped.
func (m *Manager) buildItems(forecasts map[vm.ID]float64) (items []Item, exclude map[vm.ID]bool) {
	exclude = make(map[vm.ID]bool)
	for _, v := range m.cl.VMs() {
		if m.cl.Migrating(v.ID()) {
			exclude[v.ID()] = true
			continue
		}
		cur := -1
		if hid, ok := m.cl.Placement(v.ID()); ok {
			cur = int(hid)
		}
		cpu := forecasts[v.ID()]
		if r := v.ReservedCores(); r > cpu {
			// A reservation is committed capacity whether or not the
			// VM is using it right now.
			cpu = r
		}
		items = append(items, Item{
			Key:     int(v.ID()),
			CPU:     cpu,
			MemGB:   v.MemoryGB(),
			Current: cur,
			Group:   v.Group(),
		})
	}
	return items, exclude
}

// buildBins converts hosts into packing bins, charging in-flight
// inbound migrations against the destination's capacity.
func (m *Manager) buildBins(hosts []*host.Host) []Bin {
	inboundCPU := make(map[host.ID]float64)
	inboundMem := make(map[host.ID]float64)
	inboundGroups := make(map[host.ID][]string)
	for _, mig := range m.cl.Migrations().Inflights() {
		if v, ok := m.cl.VM(mig.VM); ok {
			dst := host.ID(mig.Dst)
			inboundCPU[dst] += v.Demand(m.cl.Engine().Now())
			inboundMem[dst] += v.MemoryGB()
			if g := v.Group(); g != "" {
				inboundGroups[dst] = append(inboundGroups[dst], g)
			}
		}
	}
	bins := make([]Bin, len(hosts))
	for i, h := range hosts {
		cpu := h.Cores()*m.cfg.TargetUtil - inboundCPU[h.ID()]
		mem := h.MemoryGB() - inboundMem[h.ID()]
		if cpu < 0 {
			cpu = 0
		}
		if mem < 0 {
			mem = 0
		}
		bins[i] = Bin{Key: int(h.ID()), CPUCap: cpu, MemCap: mem, Groups: inboundGroups[h.ID()]}
	}
	return bins
}

// drainEvacuating moves VMs off hosts marked for evacuation and parks
// the ones that are empty. Destinations come from a packing of the
// evacuees into the residual capacity of the serving hosts, so drains
// succeed even when serving hosts sit near the packing target; if the
// evacuees genuinely do not fit, an evacuating host is reclaimed.
func (m *Manager) drainEvacuating(forecasts map[vm.ID]float64) {
	if len(m.evacuating) == 0 {
		return
	}
	c := m.takeCensus()
	assign, ok := m.planDrain(forecasts, c)
	if !ok {
		// Not enough room: reclaim the evacuating host with the most
		// VMs (cheapest to bring back to service) and retry next step.
		// Maintenance holds are operator decisions and stay.
		var reclaim *host.Host
		for _, h := range c.evacuating {
			if m.maintenance[h.ID()] {
				continue
			}
			if reclaim == nil || h.NumVMs() > reclaim.NumVMs() {
				reclaim = h
			}
		}
		if reclaim != nil {
			delete(m.evacuating, reclaim.ID())
		}
		return
	}
	migrated := 0
	for _, src := range c.evacuating {
		for _, vid := range src.VMs() {
			if m.cl.Migrating(vid) || m.migrationHeld(vid) || m.migCmdPending(vid) {
				continue
			}
			if m.cfg.MaxMigrationsPerStep > 0 && migrated >= m.cfg.MaxMigrationsPerStep {
				break
			}
			dstKey, planned := assign[int(vid)]
			if !planned {
				continue
			}
			if err := m.startMigration(vid, host.ID(dstKey)); err != nil {
				m.stats.MigrationsFailed++
				continue
			}
			m.stats.MigrationsConsolidation++
			migrated++
		}
	}
	// Park fully drained hosts.
	ids := make([]host.ID, 0, len(m.evacuating))
	for id := range m.evacuating {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if m.maintenance[id] {
			// Drained maintenance hosts stay on and held, not parked.
			continue
		}
		h, ok := m.cl.Host(id)
		if !ok || !h.Available() || !h.Empty() {
			continue
		}
		if m.cl.Migrations().HostLoad(int(id)) > 0 {
			continue
		}
		if m.parkHeld(id) {
			// A failed suspend's backoff has not expired; hold the
			// re-park until it does.
			continue
		}
		if m.distrusted(id) || m.hostCmdPending(id) {
			continue
		}
		if m.cfg.Policy.PowerManage {
			// Over a control plane the park is only intent until its ack
			// lands: commandResult counts it and clears the evacuation.
			if err := m.sleepHost(id); err == nil && m.cp == nil {
				m.stats.Sleeps++
				delete(m.evacuating, id)
			}
		}
	}
}

// planDrain packs the VMs sitting on evacuating hosts into the
// residual capacity of the serving hosts. Serving hosts' own VMs are
// pre-charged against their bins (they stay put); only evacuees are
// packing items.
func (m *Manager) planDrain(forecasts map[vm.ID]float64, c census) (Assignment, bool) {
	bins := m.buildBins(m.trustedServing(c))
	binIdx := make(map[int]int, len(bins))
	for i, b := range bins {
		binIdx[b.Key] = i
	}
	evacIDs := make(map[host.ID]bool, len(c.evacuating))
	for _, h := range c.evacuating {
		evacIDs[h.ID()] = true
	}
	var items []Item
	for _, v := range m.cl.VMs() {
		if m.cl.Migrating(v.ID()) {
			continue
		}
		hid, ok := m.cl.Placement(v.ID())
		if !ok {
			continue
		}
		if evacIDs[hid] {
			items = append(items, Item{
				Key:     int(v.ID()),
				CPU:     forecasts[v.ID()],
				MemGB:   v.MemoryGB(),
				Current: -1, // must move
				Group:   v.Group(),
			})
			continue
		}
		if i, ok := binIdx[int(hid)]; ok {
			bins[i].CPUCap -= forecasts[v.ID()]
			bins[i].MemCap -= v.MemoryGB()
			if bins[i].CPUCap < 0 {
				bins[i].CPUCap = 0
			}
			if bins[i].MemCap < 0 {
				bins[i].MemCap = 0
			}
			if g := v.Group(); g != "" {
				bins[i].Groups = append(bins[i].Groups, g)
			}
		}
	}
	return Pack(items, bins, m.cfg.Packing)
}

// pickLBDestination picks the load-balancing target for one VM: the
// serving host that ends up coolest after the move, provided the move
// strictly improves balance (destination post-load below the source's
// current load — which also rules out ping-pong) and does not push the
// destination over its raw capacity. Unlike drain placement, no
// target-util slack is demanded: on a cluster hotter than the packing
// target, equalizing heat is still strictly better than leaving one
// host saturated.
func (m *Manager) pickLBDestination(vid vm.ID, src *host.Host, forecasts map[vm.ID]float64, loads map[host.ID]float64, serving []*host.Host) *host.Host {
	v, ok := m.cl.VM(vid)
	if !ok {
		return nil
	}
	inboundMem := m.inboundMemory()
	f := forecasts[vid]
	var best *host.Host
	bestPost := 0.0
	for _, h := range serving {
		if h.ID() == src.ID() || m.distrusted(h.ID()) {
			continue
		}
		post := loads[h.ID()] + f
		if post >= loads[src.ID()] { // no strict improvement
			continue
		}
		if post > h.Cores() { // would overload the destination outright
			continue
		}
		if h.MemFreeGB()-inboundMem[h.ID()] < v.MemoryGB() {
			continue
		}
		if m.cl.GroupConflict(h.ID(), v.Group(), vid) {
			continue
		}
		if !m.cl.Migrations().CanStart(int(src.ID()), int(h.ID())) {
			continue
		}
		if best == nil || post < bestPost {
			best = h
			bestPost = post
		}
	}
	return best
}

// pickDestination finds the serving host with the most forecast slack
// that can take the VM (best-fit by slack keeps the packing tight
// without starving any host).
func (m *Manager) pickDestination(vid vm.ID, forecasts map[vm.ID]float64, serving []*host.Host) *host.Host {
	v, ok := m.cl.VM(vid)
	if !ok {
		return nil
	}
	cur, _ := m.cl.Placement(vid)
	loads := m.hostForecastLoads(forecasts)
	inboundMem := m.inboundMemory()

	var best *host.Host
	bestSlack := 0.0
	for _, h := range serving {
		if h.ID() == cur || m.distrusted(h.ID()) {
			continue
		}
		slack := h.Cores()*m.cfg.TargetUtil - loads[h.ID()] - forecasts[vid]
		memFree := h.MemFreeGB() - inboundMem[h.ID()]
		if slack < 0 || memFree < v.MemoryGB() {
			continue
		}
		if m.cl.GroupConflict(h.ID(), v.Group(), vid) {
			continue
		}
		if !m.cl.Migrations().CanStart(int(cur), int(h.ID())) {
			continue
		}
		if best == nil || slack > bestSlack {
			best = h
			bestSlack = slack
		}
	}
	return best
}

// hostForecastLoads sums forecast demand per host, charging in-flight
// migrations to their destinations.
func (m *Manager) hostForecastLoads(forecasts map[vm.ID]float64) map[host.ID]float64 {
	loads, migratingTo := m.loads, m.migTo
	clear(loads)
	clear(migratingTo)
	for _, mig := range m.cl.Migrations().Inflights() {
		migratingTo[mig.VM] = host.ID(mig.Dst)
	}
	for _, v := range m.cl.VMs() {
		if dst, ok := migratingTo[v.ID()]; ok {
			loads[dst] += forecasts[v.ID()]
			continue
		}
		if hid, ok := m.cl.Placement(v.ID()); ok {
			loads[hid] += forecasts[v.ID()]
		}
	}
	return loads
}

// inboundMemory sums in-flight inbound migration memory per host
// (beyond what the host already reserves itself, this is used for
// planning against stale reads).
func (m *Manager) inboundMemory() map[host.ID]float64 {
	out := m.inbound
	clear(out)
	for _, mig := range m.cl.Migrations().Inflights() {
		if v, ok := m.cl.VM(mig.VM); ok {
			out[host.ID(mig.Dst)] += v.MemoryGB()
		}
	}
	return out
}

// balanceLoad is the base-DRM behaviour: offload hot hosts onto the
// coolest serving hosts.
func (m *Manager) balanceLoad(forecasts map[vm.ID]float64) {
	c := m.takeCensus()
	if len(c.serving) < 2 {
		return
	}
	loads := m.hostForecastLoads(forecasts)
	for _, src := range c.serving {
		// Hot when forecast exceeds the LB threshold of raw capacity.
		// Suspect hosts are left alone: migrating off a host that may
		// have crashed only burns command retries.
		if m.distrusted(src.ID()) {
			continue
		}
		if loads[src.ID()] <= m.cfg.LBThreshold*src.Cores() {
			continue
		}
		// Move smallest VMs first: cheapest moves that relieve
		// pressure with least disruption. src.VMs() is the host's own
		// cached view — copy into scratch before sorting by load.
		vids := append(m.lbVMs[:0], src.VMs()...)
		m.lbVMs = vids
		sort.Slice(vids, func(i, j int) bool {
			fi, fj := forecasts[vids[i]], forecasts[vids[j]]
			if fi != fj {
				return fi < fj
			}
			return vids[i] < vids[j]
		})
		for _, vid := range vids {
			if loads[src.ID()] <= m.cfg.TargetUtil*src.Cores() {
				break
			}
			if m.cl.Migrating(vid) || forecasts[vid] <= 0 || m.migrationHeld(vid) || m.migCmdPending(vid) {
				continue
			}
			dst := m.pickLBDestination(vid, src, forecasts, loads, c.serving)
			if dst == nil {
				continue
			}
			if err := m.startMigration(vid, dst.ID()); err != nil {
				m.stats.MigrationsFailed++
				continue
			}
			m.stats.MigrationsLB++
			loads[src.ID()] -= forecasts[vid]
			loads[dst.ID()] += forecasts[vid]
		}
	}
}
