package core

import (
	"fmt"
	"sort"
	"time"

	"agilepower/internal/cluster"
	"agilepower/internal/ctrlplane"
	"agilepower/internal/host"
	"agilepower/internal/power"
	"agilepower/internal/sim"
	"agilepower/internal/telemetry"
	"agilepower/internal/vm"
)

// Stats are cumulative manager counters — the raw material for the
// paper's management-overhead comparison (migrations and power actions
// per hour, DPM vs base DRM).
type Stats struct {
	ControlSteps int
	// MigrationsLB counts load-balancing moves (base DRM overhead).
	MigrationsLB int
	// MigrationsConsolidation counts packing/evacuation moves (the
	// extra overhead power management adds).
	MigrationsConsolidation int
	// MigrationsFailed counts rejected migration requests (slots full,
	// memory pressure) — retried on later steps.
	MigrationsFailed int
	Wakes            int
	Sleeps           int
	// Provisioned counts pending VMs placed onto hosts.
	Provisioned int
	// Panics counts emergency-brake activations (see
	// Config.PanicShortfall).
	Panics int
	// FreqChanges counts DVFS adjustments.
	FreqChanges int
}

// Manager is the power-aware virtualization manager: the paper's
// contribution. It runs a periodic control loop over a cluster,
// forecasting demand, balancing load, consolidating VMs, and driving
// host power states.
type Manager struct {
	cl  *cluster.Cluster
	cfg Config

	// evacuating marks hosts being drained for parking. A host stays
	// marked until it is parked or reclaimed by a scale-up.
	evacuating map[host.ID]bool

	// sleepDelay is the resolved flap-damping delay (see
	// Config.SleepDelay); shrinkSince tracks how long a scale-down
	// opportunity has persisted (negative = none open).
	sleepDelay  time.Duration
	shrinkSince sim.Time
	shrinkOpen  bool
	// wokeAt records each host's last settle into S0, for the park
	// cooldown.
	wokeAt map[host.ID]sim.Time
	// maintenance marks hosts held out of service by an operator; they
	// drain like evacuating hosts but are never parked or reclaimed by
	// scale-up.
	maintenance map[host.ID]bool
	// Panic-brake state: consecutive over-shortfall ticks and the time
	// until which scale-down is suspended.
	panicTicks int
	panicUntil sim.Time
	// diurnal is the learned time-of-day demand model (nil unless
	// Config.PredictiveWake).
	diurnal *diurnalModel
	// wakeLead is how far ahead predictive wake looks: the sleep
	// state's exit latency plus one control period.
	wakeLead time.Duration

	// Robustness state (see robust.go). parking and wakingReq track
	// outstanding transition requests so the settle handler can tell a
	// success from an injected failure; retries/retryAt hold the capped
	// exponential backoff schedule per host; quarantined bars flaky
	// hosts from power actions until the recorded time; migFails and
	// migRetryAt put VMs whose migrations aborted on a re-plan backoff.
	parking     map[host.ID]bool
	wakingReq   map[host.ID]bool
	retries     map[host.ID]int
	retryAt     map[host.ID]sim.Time
	quarantined map[host.ID]sim.Time
	migFails    map[vm.ID]int
	migRetryAt  map[vm.ID]sim.Time
	counters    *telemetry.Counters

	// cp, when attached, is the imperfect message layer every power and
	// migration order travels over (see ctrl.go); trusted is the
	// liveness-filtered placement scratch it maintains. Both stay nil
	// in plane-free runs so the direct paths are untouched.
	cp      *ctrlplane.Plane
	trusted []*host.Host

	// Dense per-VM planning state, indexed vm.ID-1 (IDs are monotonic
	// and never reused; slots of departed VMs go stale but are never
	// read — every consumer iterates live-VM lists). These double as
	// the scratch buffers that keep the periodic loops allocation-free:
	// the control phases run sequentially and never nest (callbacks
	// fire from future events, not synchronously inside a phase), so at
	// most one forecast snapshot, one census, and one load vector are
	// live at any moment.
	fcs     []Forecaster // per-VM forecasters
	fcv     []float64    // observeAll result: clamped forecasts
	fcSeenB []bool       // eagerObserve liveness mark
	lastObs []sim.Time   // lazy mode: when each VM was last observed
	loads   []float64    // hostForecastLoads result, by host.ID-1
	inbound []float64    // inboundMemory result, by host.ID-1
	migTo   map[vm.ID]host.ID
	cen     census  // takeCensus backing arrays
	lbVMs   []vm.ID // balanceLoad sort scratch
	items   []Item  // buildItems scratch

	// Incremental planning state (see incremental.go). inc gates every
	// cache; lazyFC additionally gates the due-heap forecast
	// maintenance (peak-window/last-value without predictive wake).
	inc     bool
	lazyFC  bool
	epoch   uint64 // planning-input generation
	fcEpoch uint64 // forecast-value / VM-set generation
	vmSeen  uint64 // cluster VMEpoch handled through
	maxInit vm.ID  // highest VM ID with initialized lazy state
	// invNow/invPrev track the two most recent distinct manager
	// invocation times — the observation grid the lazy catch-up replays.
	invNow  sim.Time
	invPrev sim.Time
	due     []fcDue // forecast due-heap

	// Cache keys: each cached value remembers the counters it was
	// computed under and is reused only on exact match.
	cenEpoch  uint64
	cenOK     bool
	totFC     uint64
	totOK     bool
	totVal    float64
	loadsE    uint64
	loadsF    uint64
	loadsOK   bool
	inbE      uint64
	inbOK     bool
	planE     uint64
	planF     uint64
	planValid bool
	planHosts []*host.Host // packServing sorted-host cache/scratch
	planK     int
	planOK    bool
	sortLoads []float64 // packServing per-host load scratch

	// Power-feed cap (scenario power-cap events): capWatts is the feed
	// limit, capBudget the derived active-host budget. Zero means
	// uncapped — the default, and the only state the allocation-free
	// benchmarks exercise.
	capWatts  float64
	capBudget int

	stats   Stats
	started bool
}

// NewManager builds a manager over the cluster. The cluster must not
// have been started yet: the manager hooks host settle events.
func NewManager(cl *cluster.Cluster, cfg Config) (*Manager, error) {
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Manager{
		cl:          cl,
		cfg:         cfg,
		evacuating:  make(map[host.ID]bool),
		wokeAt:      make(map[host.ID]sim.Time),
		maintenance: make(map[host.ID]bool),
		parking:     make(map[host.ID]bool),
		wakingReq:   make(map[host.ID]bool),
		retries:     make(map[host.ID]int),
		retryAt:     make(map[host.ID]sim.Time),
		quarantined: make(map[host.ID]sim.Time),
		migFails:    make(map[vm.ID]int),
		migRetryAt:  make(map[vm.ID]sim.Time),
		counters:    telemetry.NewCounters(),
		migTo:       make(map[vm.ID]host.ID),
	}
	if cfg.PredictiveWake {
		m.diurnal = newDiurnalModel(0.4)
	}
	m.inc = cfg.Incremental > 0
	// Lazy forecast maintenance needs the forecast to be a pure
	// function of deadline-computable moments: peak-window and
	// last-value qualify; EWMA evolves on every observation and the
	// diurnal model consumes the whole demand sum each invocation, so
	// those run the eager sweep (with the epoch caches still active).
	m.lazyFC = m.inc && !cfg.PredictiveWake && !cfg.DemandShocks &&
		(cfg.Forecast.Kind == ForecastPeakWindow || cfg.Forecast.Kind == ForecastLastValue)
	if m.inc {
		// The cluster's event feed is the invalidation signal for every
		// epoch-keyed cache: it fires on each event-path change to a
		// host's scheduling inputs, in delta and full-scan evaluation
		// modes alike.
		cl.OnHostDirty(func(host.ID) { m.epoch++ })
	}
	cl.OnHostSettled(m.hostSettled)
	cl.OnMigrationFailed(m.migrationFailed)
	cl.OnHostCrashed(m.hostCrashed)
	cl.OnMigrationDone(func(vm.ID, host.ID) {
		// Continue in-progress plans as slots free up: drains and
		// rebalances issue follow-up moves immediately instead of
		// trickling a few migrations per control period.
		if m.started && (m.cfg.Policy.Consolidate || m.cfg.Policy.LoadBalance) {
			m.continueMoves()
		}
	})
	return m, nil
}

// continueMoves re-runs the migration-issuing phases with fresh
// forecasts (no power decisions), used when migration slots free up.
func (m *Manager) continueMoves() {
	forecasts := m.observeAll()
	m.drainEvacuating(forecasts)
	if m.cfg.Policy.LoadBalance {
		m.balanceLoad(forecasts)
	}
}

// EnterMaintenance marks a host for evacuation and keeps it out of
// service once drained: the operational "put host in maintenance mode"
// flow, reusing the consolidation drain machinery. An available host
// is not parked; it sits available-but-unused (ready for firmware
// work) until ExitMaintenance. A host settled in a sleep state has
// nothing to drain: the hold simply makes it ineligible for wake —
// the shape of a rack losing its power feed while parked. Hosts
// mid-transition are rejected; retry once they settle.
func (m *Manager) EnterMaintenance(id host.ID) error {
	h, ok := m.cl.Host(id)
	if !ok {
		return fmt.Errorf("core: unknown host %d", id)
	}
	mach := h.Machine()
	switch {
	case mach.Available():
		m.maintenance[id] = true
		m.evacuating[id] = true
	case mach.Phase() == power.Settled && mach.State().IsSleep():
		m.maintenance[id] = true
	default:
		return fmt.Errorf("core: host %d is mid-transition (%v/%v)", id, mach.State(), mach.Phase())
	}
	m.invalidate()
	if m.started {
		m.continueMoves()
	}
	return nil
}

// ExitMaintenance returns a host to service.
func (m *Manager) ExitMaintenance(id host.ID) error {
	if !m.maintenance[id] {
		return fmt.Errorf("core: host %d is not in maintenance", id)
	}
	delete(m.maintenance, id)
	delete(m.evacuating, id)
	m.invalidate()
	if m.started {
		m.step()
	}
	return nil
}

// InMaintenance reports whether the host is held for maintenance.
func (m *Manager) InMaintenance(id host.ID) bool { return m.maintenance[id] }

// MaintenanceReady reports whether a maintenance host has fully
// drained (safe to touch).
func (m *Manager) MaintenanceReady(id host.ID) bool {
	if !m.maintenance[id] {
		return false
	}
	h, ok := m.cl.Host(id)
	return ok && h.Empty() && m.cl.Migrations().HostLoad(int(id)) == 0
}

// Config returns the manager's effective (defaulted) configuration.
func (m *Manager) Config() Config { return m.cfg }

// Stats returns a snapshot of the cumulative counters.
func (m *Manager) Stats() Stats { return m.stats }

// Start schedules the periodic control loop plus, for power-managing
// policies, a fast wake check every cluster evaluation step (the
// monitoring plane raises pressure alarms far more often than the
// placement optimizer runs). The Static policy schedules nothing: it
// is the unmanaged baseline.
func (m *Manager) Start() {
	if m.started {
		return
	}
	m.started = true
	m.resolveSleepDelay()
	// Predictive wake looks ahead far enough to finish a wake (exit
	// latency) plus two control periods of reaction slack before a
	// learned ramp hits.
	m.wakeLead = 2 * m.cfg.Period
	if hosts := m.cl.Hosts(); len(hosts) > 0 && m.cfg.Policy.PowerManage {
		if spec, ok := hosts[0].Machine().Profile().SleepSpec(m.cfg.Policy.SleepState); ok {
			m.wakeLead += spec.ExitLatency
		}
	}
	eng := m.cl.Engine()
	var tick func()
	tick = func() {
		m.step()
		eng.AfterFunc(m.cfg.Period, tick)
	}
	eng.AfterFunc(0, tick)
	// The fast tick runs for every policy: provisioning monitoring
	// (placing arrivals) is basic duty, not power management. Only the
	// scale-up half inside wakeCheck is power-gated.
	if m.cl.EvalStep() < m.cfg.Period {
		var fast func()
		fast = func() {
			m.wakeCheck()
			eng.AfterFunc(m.cl.EvalStep(), fast)
		}
		eng.AfterFunc(m.cl.EvalStep(), fast)
	}
}

// resolveSleepDelay computes the latency-aware default scale-down
// persistence: twice the sleep state's round-trip latency. Slow states
// are parked cautiously; agile ones immediately. This is where the
// paper's core argument lands in the controller: transition latency
// sets how aggressive power management can afford to be.
func (m *Manager) resolveSleepDelay() {
	switch {
	case m.cfg.SleepDelay > 0:
		m.sleepDelay = m.cfg.SleepDelay
	case m.cfg.SleepDelay < 0:
		m.sleepDelay = 0
	default:
		hosts := m.cl.Hosts()
		if len(hosts) == 0 || !m.cfg.Policy.PowerManage {
			return
		}
		if spec, ok := hosts[0].Machine().Profile().SleepSpec(m.cfg.Policy.SleepState); ok {
			m.sleepDelay = 2 * spec.CycleLatency()
		}
	}
}

// totalForecast sums forecasts in VM-list order (a fixed order keeps
// the floating-point sum, and thus threshold decisions, deterministic
// across runs). The sum is pure in the VM set and forecast values, so
// it is cached under the forecast generation — an unchanged fcEpoch
// means an identical list summed in the identical order.
func (m *Manager) totalForecast(forecasts []float64) float64 {
	if m.inc && m.totOK && m.totFC == m.fcEpoch {
		return m.totVal
	}
	total := 0.0
	for _, v := range m.cl.VMs() {
		total += forecasts[v.ID()-1]
	}
	m.totVal = total
	m.totFC = m.fcEpoch
	m.totOK = true
	return total
}

// wakeCheck is the fast path: place arrivals and scale up if pressure
// demands it, nothing else.
func (m *Manager) wakeCheck() {
	forecasts := m.observeAll()
	m.placePending(forecasts)
	if m.cfg.Policy.PowerManage {
		m.checkPanic()
		m.scaleUp(forecasts, m.takeCensus())
	}
	if m.cfg.Policy.DVFS {
		m.adjustFrequencies(forecasts)
	}
}

// checkPanic is the emergency brake: under sustained unserved demand
// it wakes the whole fleet and suspends scale-down for PanicHold.
func (m *Manager) checkPanic() {
	if m.cfg.PanicShortfall <= 0 {
		return
	}
	demand, delivered := m.cl.LastEvaluation()
	if demand <= 0 || 1-delivered/demand <= m.cfg.PanicShortfall {
		m.panicTicks = 0
		return
	}
	m.panicTicks++
	if m.panicTicks < 2 {
		return
	}
	m.panicTicks = 0
	m.stats.Panics++
	m.panicUntil = m.cl.Engine().Now() + sim.Time(m.cfg.PanicHold)
	m.invalidate()
	// Everything wakes; evacuations (except operator maintenance)
	// cancel.
	for id := range m.evacuating {
		if !m.maintenance[id] {
			delete(m.evacuating, id)
		}
	}
	c := m.takeCensus()
	on := len(c.serving) + len(c.evacuating) + len(c.waking)
	for _, h := range m.cl.Hosts() {
		if m.capBudget > 0 && on >= m.capBudget {
			// Even panic respects the feed budget: tripping a breaker
			// serves nobody. The cap wins over wakes, never over
			// already-serving hosts.
			m.counters.Inc(CtrCapDeferredWakes)
			break
		}
		if m.distrusted(h.ID()) || m.hostCmdPending(h.ID()) {
			continue
		}
		if h.Machine().State().IsSleep() && h.Machine().Phase() == power.Settled {
			if err := m.wakeHost(h.ID()); err == nil {
				if m.cp == nil {
					m.stats.Wakes++
				}
				on++
			}
		}
	}
}

// placePending puts arrived-but-unplaced VMs onto the serving host
// with the most forecast slack (respecting memory admission). VMs that
// fit nowhere stay pending; their demand keeps pressure on scaleUp,
// which wakes capacity for them.
func (m *Manager) placePending(forecasts []float64) {
	// Counter check first: PendingVMs scans the whole VM list to build
	// its result, which the quiescent fast tick must not pay for.
	if m.cl.PendingCount() == 0 {
		return
	}
	pending := m.cl.PendingVMs()
	if len(pending) == 0 {
		return
	}
	c := m.takeCensus()
	// Static policies have no census distinction; any available host
	// (serving or evacuating) can take a new VM, preferring serving.
	// Maintenance holds are respected, as are liveness suspicions.
	candidates := append([]*host.Host(nil), m.trustedServing(c)...)
	for _, h := range c.evacuating {
		if !m.maintenance[h.ID()] && !m.distrusted(h.ID()) {
			candidates = append(candidates, h)
		}
	}
	if len(candidates) == 0 {
		return
	}
	loads := m.hostForecastLoads(forecasts)
	inboundMem := m.inboundMemory()
	for _, vid := range pending {
		v, ok := m.cl.VM(vid)
		if !ok {
			continue
		}
		var best *host.Host
		bestSlack := 0.0
		for _, h := range candidates {
			memFree := h.MemFreeGB() - inboundMem[h.ID()-1]
			if memFree < v.MemoryGB() {
				continue
			}
			if m.cl.GroupConflict(h.ID(), v.Group(), vid) {
				continue
			}
			slack := h.Cores()*m.cfg.TargetUtil - loads[h.ID()-1] - forecasts[vid-1]
			if slack < 0 && loads[h.ID()-1]+forecasts[vid-1] > h.Cores() {
				continue // would overload outright
			}
			if best == nil || slack > bestSlack {
				best = h
				bestSlack = slack
			}
		}
		if best == nil {
			continue
		}
		if err := m.cl.PlaceVM(vid, best.ID()); err != nil {
			continue
		}
		// PlaceVM fired the dirty feed, so the epoch already moved; the
		// in-phase load update below matches what the eager path does
		// and is discarded at the next (now-stale) cache read.
		m.stats.Provisioned++
		loads[best.ID()-1] += forecasts[vid-1]
		// A placed VM re-anchors an evacuating host into service.
		delete(m.evacuating, best.ID())
	}
}

// observeAll brings every VM's forecaster up to the current moment and
// returns the clamped forecast vector (indexed vm.ID-1). It is the
// single gateway every manager entry point (step, wakeCheck,
// continueMoves) passes through, which is what lets the lazy path
// record the invocation grid: between two recorded invocation times no
// observation ever happened, so the catch-up in ensureForecasts can
// replay the grid bitwise.
func (m *Manager) observeAll() []float64 {
	now := m.cl.Engine().Now()
	if now > m.invNow {
		m.invPrev = m.invNow
		m.invNow = now
	}
	if m.lazyFC {
		m.ensureForecasts(now)
	} else {
		m.eagerObserve(now)
	}
	return m.fcv
}

// predictedDemand returns the learned demand peak within the wake-lead
// window, or 0 when prediction is off or unprimed.
func (m *Manager) predictedDemand() float64 {
	if m.diurnal == nil {
		return 0
	}
	v, ok := m.diurnal.PredictWindowMax(m.cl.Engine().Now(), m.wakeLead)
	if !ok {
		return 0
	}
	return v
}

// census classifies hosts by power condition.
type census struct {
	serving    []*host.Host // available and not marked evacuating
	evacuating []*host.Host // available but being drained
	waking     []*host.Host // exiting a sleep state
	sleeping   []*host.Host // settled in S3/S5
	entering   []*host.Host // on their way into a sleep state
}

func (m *Manager) takeCensus() census {
	// The census is pure in host machine states, liveness, and the
	// evacuating set — all epoch-tracked — so an unchanged epoch means
	// the cached classification is exactly what a rebuild would
	// produce. Callers that append to a returned census (scaleUp grows
	// serving/waking past the cached lengths) always bump the epoch
	// first via the reclaim or wake they perform, so the cached headers
	// below never see those appends.
	if m.inc && m.cenOK && m.cenEpoch == m.epoch {
		return m.cen
	}
	// Reuse the previous census's backing arrays; the returned value
	// (and any slices appended to it by the caller) must be dead by the
	// next takeCensus call, which the sequential control phases ensure.
	c := census{
		serving:    m.cen.serving[:0],
		evacuating: m.cen.evacuating[:0],
		waking:     m.cen.waking[:0],
		sleeping:   m.cen.sleeping[:0],
		entering:   m.cen.entering[:0],
	}
	for _, h := range m.cl.Hosts() {
		if m.ctrlDead(h.ID()) {
			// Presumed dead: plan around the host entirely. Its VMs'
			// demand still pressures scale-up (observeAll sees them), so
			// replacement capacity wakes without double-placing them.
			continue
		}
		mach := h.Machine()
		switch {
		case m.cp != nil && mach.Crashed():
			// With a control plane the manager cannot see the crash
			// directly; until liveness says otherwise the host keeps its
			// last-known class (commands sent to it will bounce).
			if m.evacuating[h.ID()] {
				c.evacuating = append(c.evacuating, h)
			} else {
				c.serving = append(c.serving, h)
			}
		case mach.Available():
			if m.evacuating[h.ID()] {
				c.evacuating = append(c.evacuating, h)
			} else {
				c.serving = append(c.serving, h)
			}
		case mach.Phase() == power.Exiting:
			c.waking = append(c.waking, h)
		case mach.Phase() == power.Entering:
			c.entering = append(c.entering, h)
		case mach.State().IsSleep():
			c.sleeping = append(c.sleeping, h)
		}
	}
	m.cen = c // retain grown backing arrays for the next step
	m.cenEpoch = m.epoch
	m.cenOK = true
	return c
}

func coresOf(hs []*host.Host) float64 {
	total := 0.0
	for _, h := range hs {
		total += h.Cores()
	}
	return total
}

// step runs one control period.
func (m *Manager) step() {
	m.stats.ControlSteps++
	forecasts := m.observeAll()

	// Provisioning is basic duty for every policy, including the
	// static baseline: new VMs get placed; only *optimization* actions
	// are policy-gated.
	m.placePending(forecasts)
	if m.cfg.Policy.PowerManage {
		m.managePower(forecasts)
	}
	// Draining always runs: consolidation marks hosts only under those
	// policies, but operator maintenance holds must drain under any
	// policy.
	m.drainEvacuating(forecasts)
	if m.cfg.Policy.LoadBalance {
		m.balanceLoad(forecasts)
	}
	if m.cfg.Policy.DVFS {
		m.adjustFrequencies(forecasts)
	}
}

// adjustFrequencies clocks each available host to its forecast load
// plus the packing headroom (a software governor at management
// granularity). Hosts whose profiles have no DVFS range are left
// alone.
func (m *Manager) adjustFrequencies(forecasts []float64) {
	loads := m.hostForecastLoads(forecasts)
	for _, h := range m.cl.Hosts() {
		if !h.Available() {
			continue
		}
		fmin := h.Machine().Profile().FreqMin
		if fmin <= 0 {
			continue
		}
		f := loads[h.ID()-1] / (h.Cores() * m.cfg.TargetUtil)
		if f < fmin {
			f = fmin
		}
		if f > 1 {
			f = 1
		}
		if err := h.SetFrequency(f); err == nil {
			m.stats.FreqChanges++
		}
	}
}

// managePower decides the active host set: wake on pressure, evacuate
// on slack, park drained hosts.
func (m *Manager) managePower(forecasts []float64) {
	c := m.takeCensus()
	if m.enforcePowerCap(forecasts, c) {
		c = m.takeCensus()
	}
	if m.scaleUp(forecasts, c) {
		m.shrinkOpen = false
		return
	}
	if m.cl.Engine().Now() < m.panicUntil {
		// Emergency brake engaged: no scale-down until the hold ends.
		m.shrinkOpen = false
		return
	}
	// Scale down: only with no wakes in flight (a wake in flight means
	// we recently judged capacity short — parking now would flap). Wake
	// orders still in transit on the control plane count as in flight.
	if len(c.waking) == 0 && m.pendingWakeCores(c) == 0 && len(c.serving) > m.cfg.MinActive {
		m.considerScaleDown(forecasts, c)
	} else {
		m.shrinkOpen = false
	}
}

// scaleUp wakes capacity when forecast pressure exceeds the wake
// threshold of what is (or will shortly be) available. It reports
// whether it acted or pressure is high.
func (m *Manager) scaleUp(forecasts []float64, c census) bool {
	total := m.totalForecast(forecasts)
	if p := m.predictedDemand(); p > total {
		// Wake ahead of a learned recurring ramp.
		total = p
	}
	servingCores := coresOf(c.serving)
	// Wake orders still in transit are capacity already asked for:
	// counting it keeps pressure from re-waking the fleet every fast
	// tick while commands crawl through the message layer.
	incomingCores := coresOf(c.waking) + m.pendingWakeCores(c)
	if total <= m.cfg.WakeThreshold*(servingCores+incomingCores) && len(c.serving)+len(c.waking) >= m.cfg.MinActive {
		return false
	}
	needCores := total / m.cfg.TargetUtil
	haveCores := servingCores + incomingCores
	// Cheapest capacity first: reclaim hosts being evacuated (they are
	// on and serving already). Maintenance hosts are operator-held and
	// never reclaimed.
	for _, h := range c.evacuating {
		if haveCores >= needCores && len(c.serving)+len(c.waking) >= m.cfg.MinActive {
			break
		}
		if m.capBudget > 0 && len(c.serving)+len(c.waking) >= m.capBudget {
			// Reclaiming would keep the host on past the feed budget —
			// cap enforcement marked it for a reason.
			m.counters.Inc(CtrCapDeferredWakes)
			break
		}
		if m.maintenance[h.ID()] {
			continue
		}
		if m.distrusted(h.ID()) || m.hostCmdPending(h.ID()) {
			// A park order already in flight (or a liveness suspicion)
			// makes this host unreliable capacity; wake elsewhere.
			continue
		}
		delete(m.evacuating, h.ID())
		m.invalidate()
		c.serving = append(c.serving, h)
		haveCores += h.Cores()
	}
	// Then wake sleepers, lowest ID first (deterministic). Quarantined
	// hosts are skipped (they proved flaky), as are hosts whose failed
	// wake already has a scheduled retry pending.
	for _, h := range c.sleeping {
		if haveCores >= needCores && len(c.serving)+len(c.waking) >= m.cfg.MinActive {
			break
		}
		if m.capBudget > 0 && len(c.serving)+len(c.evacuating)+len(c.waking) >= m.capBudget {
			// The feed budget is full: demand pressure must wait for
			// load to fall or the cap to lift. Best-effort semantics —
			// the cap wins over wake pressure, never over hosts already
			// serving.
			m.counters.Inc(CtrCapDeferredWakes)
			break
		}
		if m.isQuarantined(h.ID()) || m.parkHeld(h.ID()) {
			continue
		}
		if m.distrusted(h.ID()) || m.hostCmdPending(h.ID()) {
			continue
		}
		if err := m.wakeHost(h.ID()); err == nil {
			if m.cp == nil {
				m.stats.Wakes++
			}
			haveCores += h.Cores()
			c.waking = append(c.waking, h)
		}
	}
	return true
}

// SetPowerCap installs (watts > 0) or lifts (watts <= 0) a power-feed
// cap. The cap is enforced as an active-host budget: the largest host
// peak draw in the fleet divides the feed, so any budget-sized active
// set peaks below the cap regardless of which hosts are on. Semantics
// are best-effort by design — when even MinActive hosts exceed the
// budget, MinActive wins (hosts keep serving; SLA over cap), and
// hosts already on are drained rather than dropped.
func (m *Manager) SetPowerCap(watts float64) {
	if watts <= 0 {
		m.capWatts, m.capBudget = 0, 0
		m.invalidate()
		return
	}
	peak := 0.0
	for _, h := range m.cl.Hosts() {
		if p := float64(h.Machine().Profile().ActivePower(1)); p > peak {
			peak = p
		}
	}
	budget := 1
	if peak > 0 {
		if b := int(watts / peak); b > 1 {
			budget = b
		}
	}
	m.capWatts = watts
	m.capBudget = budget
	m.invalidate()
	if m.started {
		m.step()
	}
}

// PowerCap returns the current power-feed cap in watts (0 when
// uncapped).
func (m *Manager) PowerCap() float64 { return m.capWatts }

// enforcePowerCap drains the least-loaded serving hosts while the
// committed-on count exceeds the cap budget, reporting whether it
// marked anything. Unlike considerScaleDown it bypasses the
// shrink-persistence damper and the wake cooldown: a feed cap is a
// physical limit, not an optimization opportunity.
func (m *Manager) enforcePowerCap(forecasts []float64, c census) bool {
	if m.capBudget <= 0 {
		return false
	}
	keep := m.capBudget
	if keep < m.cfg.MinActive {
		keep = m.cfg.MinActive
	}
	over := len(c.serving) + len(c.waking) - keep
	if over <= 0 {
		return false
	}
	loads := m.hostForecastLoads(forecasts)
	cand := append([]*host.Host(nil), c.serving...)
	sort.Slice(cand, func(i, j int) bool {
		li, lj := loads[cand[i].ID()-1], loads[cand[j].ID()-1]
		if li != lj {
			return li < lj
		}
		return cand[i].ID() < cand[j].ID()
	})
	acted := false
	for _, h := range cand {
		if over <= 0 {
			break
		}
		if m.distrusted(h.ID()) || m.hostCmdPending(h.ID()) {
			continue
		}
		m.evacuating[h.ID()] = true
		m.invalidate()
		m.counters.Inc(CtrCapEvacuations)
		acted = true
		over--
	}
	return acted
}

// considerScaleDown checks whether the packing frees at least one
// host, and acts once the opportunity has persisted for the
// latency-aware sleep delay.
func (m *Manager) considerScaleDown(forecasts []float64, c census) {
	hosts, k, ok := m.packServing(forecasts, c)
	keep := k + m.cfg.SpareHosts
	if keep < m.cfg.MinActive {
		keep = m.cfg.MinActive
	}
	if p := m.predictedDemand(); p > 0 && len(hosts) > 0 {
		avgCores := coresOf(hosts) / float64(len(hosts))
		needed := int(p/(m.cfg.TargetUtil*avgCores)) + 1
		if needed > keep {
			keep = needed
		}
	}
	if !ok || keep >= len(hosts) {
		m.shrinkOpen = false
		return
	}
	now := m.cl.Engine().Now()
	if !m.shrinkOpen {
		m.shrinkOpen = true
		m.shrinkSince = now
	}
	if now-m.shrinkSince < m.sleepDelay {
		return // opportunity must persist before we act
	}
	for _, h := range hosts[keep:] {
		// Recently woken hosts are immune: parking them right after a
		// surge faded is the definition of flapping. Quarantined hosts
		// are immune too — their transitions cannot be trusted.
		if at, ok := m.wokeAt[h.ID()]; ok && now-at < m.cfg.ParkCooldown {
			continue
		}
		if m.isQuarantined(h.ID()) {
			continue
		}
		if m.distrusted(h.ID()) || m.hostCmdPending(h.ID()) {
			continue
		}
		if !m.telemetryFresh(h.ID()) {
			// Freshness guard: never park a host whose telemetry is
			// older than the staleness limit — keep it on conservatively.
			m.counters.Inc(CtrStaleKeepOn)
			continue
		}
		m.evacuating[h.ID()] = true
		m.invalidate()
	}
	m.shrinkOpen = false
}

// packServing orders serving hosts by forecast load (descending, so
// the keep-set is the loaded prefix and migrations are minimized) and
// returns the ordered hosts plus the minimal prefix length that packs
// all VMs. The whole result — sorted view, prefix, feasibility — is
// pure in the serving census, the forecasts, the placements, and the
// in-flight migration set, all tracked by (epoch, fcEpoch); on an
// exact key match the cached plan is returned without re-sorting or
// re-packing anything.
func (m *Manager) packServing(forecasts []float64, c census) ([]*host.Host, int, bool) {
	if m.inc && m.planValid && m.planE == m.epoch && m.planF == m.fcEpoch {
		return m.planHosts, m.planK, m.planOK
	}
	items := m.buildItems(forecasts)
	m.growHostSlots()
	loads := m.sortLoads
	for i := range loads {
		loads[i] = 0
	}
	for _, v := range m.cl.VMs() {
		if m.cl.Migrating(v.ID()) {
			// Excluded from items too: a migrating VM's landing is
			// already decided.
			continue
		}
		if hid, ok := m.cl.Placement(v.ID()); ok {
			loads[hid-1] += forecasts[v.ID()-1]
		}
	}
	hosts := append(m.planHosts[:0], c.serving...)
	sort.Slice(hosts, func(i, j int) bool {
		li, lj := loads[hosts[i].ID()-1], loads[hosts[j].ID()-1]
		if li != lj {
			return li > lj
		}
		return hosts[i].ID() < hosts[j].ID()
	})
	bins := m.buildBins(hosts)
	k, _, ok := MinBins(items, bins, m.cfg.Packing)
	m.planHosts = hosts
	m.planK = k
	m.planOK = ok
	m.planE = m.epoch
	m.planF = m.fcEpoch
	m.planValid = true
	return hosts, k, ok
}

// buildItems converts non-migrating VMs into packing items. Migrating
// VMs are skipped (their landing is already decided).
func (m *Manager) buildItems(forecasts []float64) []Item {
	items := m.items[:0]
	for _, v := range m.cl.VMs() {
		if m.cl.Migrating(v.ID()) {
			continue
		}
		cur := -1
		if hid, ok := m.cl.Placement(v.ID()); ok {
			cur = int(hid)
		}
		cpu := forecasts[v.ID()-1]
		if r := v.ReservedCores(); r > cpu {
			// A reservation is committed capacity whether or not the
			// VM is using it right now.
			cpu = r
		}
		items = append(items, Item{
			Key:     int(v.ID()),
			CPU:     cpu,
			MemGB:   v.MemoryGB(),
			Current: cur,
			Group:   v.Group(),
		})
	}
	m.items = items
	return items
}

// buildBins converts hosts into packing bins, charging in-flight
// inbound migrations against the destination's capacity.
func (m *Manager) buildBins(hosts []*host.Host) []Bin {
	inboundCPU := make(map[host.ID]float64)
	inboundMem := make(map[host.ID]float64)
	inboundGroups := make(map[host.ID][]string)
	for _, mig := range m.cl.Migrations().Inflights() {
		if v, ok := m.cl.VM(mig.VM); ok {
			dst := host.ID(mig.Dst)
			inboundCPU[dst] += m.cl.VMDemand(v, m.cl.Engine().Now())
			inboundMem[dst] += v.MemoryGB()
			if g := v.Group(); g != "" {
				inboundGroups[dst] = append(inboundGroups[dst], g)
			}
		}
	}
	bins := make([]Bin, len(hosts))
	for i, h := range hosts {
		cpu := h.Cores()*m.cfg.TargetUtil - inboundCPU[h.ID()]
		mem := h.MemoryGB() - inboundMem[h.ID()]
		if cpu < 0 {
			cpu = 0
		}
		if mem < 0 {
			mem = 0
		}
		bins[i] = Bin{Key: int(h.ID()), CPUCap: cpu, MemCap: mem, Groups: inboundGroups[h.ID()]}
	}
	return bins
}

// drainEvacuating moves VMs off hosts marked for evacuation and parks
// the ones that are empty. Destinations come from a packing of the
// evacuees into the residual capacity of the serving hosts, so drains
// succeed even when serving hosts sit near the packing target; if the
// evacuees genuinely do not fit, an evacuating host is reclaimed.
func (m *Manager) drainEvacuating(forecasts []float64) {
	if len(m.evacuating) == 0 {
		return
	}
	c := m.takeCensus()
	assign, ok := m.planDrain(forecasts, c)
	if !ok {
		// Not enough room: reclaim the evacuating host with the most
		// VMs (cheapest to bring back to service) and retry next step.
		// Maintenance holds are operator decisions and stay.
		var reclaim *host.Host
		for _, h := range c.evacuating {
			if m.maintenance[h.ID()] {
				continue
			}
			if reclaim == nil || h.NumVMs() > reclaim.NumVMs() {
				reclaim = h
			}
		}
		if reclaim != nil {
			delete(m.evacuating, reclaim.ID())
			m.invalidate()
		}
		return
	}
	migrated := 0
	for _, src := range c.evacuating {
		for _, vid := range src.VMs() {
			if m.cl.Migrating(vid) || m.migrationHeld(vid) || m.migCmdPending(vid) {
				continue
			}
			if m.cfg.MaxMigrationsPerStep > 0 && migrated >= m.cfg.MaxMigrationsPerStep {
				break
			}
			dstKey, planned := assign[int(vid)]
			if !planned {
				continue
			}
			if err := m.startMigration(vid, host.ID(dstKey)); err != nil {
				m.stats.MigrationsFailed++
				continue
			}
			m.stats.MigrationsConsolidation++
			migrated++
		}
	}
	// Park fully drained hosts.
	ids := make([]host.ID, 0, len(m.evacuating))
	for id := range m.evacuating {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if m.maintenance[id] {
			// Drained maintenance hosts stay on and held, not parked.
			continue
		}
		h, ok := m.cl.Host(id)
		if !ok || !h.Available() || !h.Empty() {
			continue
		}
		if m.cl.Migrations().HostLoad(int(id)) > 0 {
			continue
		}
		if m.parkHeld(id) {
			// A failed suspend's backoff has not expired; hold the
			// re-park until it does.
			continue
		}
		if m.distrusted(id) || m.hostCmdPending(id) {
			continue
		}
		if m.cfg.Policy.PowerManage {
			// Over a control plane the park is only intent until its ack
			// lands: commandResult counts it and clears the evacuation.
			if err := m.sleepHost(id); err == nil && m.cp == nil {
				m.stats.Sleeps++
				delete(m.evacuating, id)
			}
		}
	}
}

// planDrain packs the VMs sitting on evacuating hosts into the
// residual capacity of the serving hosts. Serving hosts' own VMs are
// pre-charged against their bins (they stay put); only evacuees are
// packing items.
func (m *Manager) planDrain(forecasts []float64, c census) (Assignment, bool) {
	bins := m.buildBins(m.trustedServing(c))
	binIdx := make(map[int]int, len(bins))
	for i, b := range bins {
		binIdx[b.Key] = i
	}
	evacIDs := make(map[host.ID]bool, len(c.evacuating))
	for _, h := range c.evacuating {
		evacIDs[h.ID()] = true
	}
	var items []Item
	for _, v := range m.cl.VMs() {
		if m.cl.Migrating(v.ID()) {
			continue
		}
		hid, ok := m.cl.Placement(v.ID())
		if !ok {
			continue
		}
		if evacIDs[hid] {
			items = append(items, Item{
				Key:     int(v.ID()),
				CPU:     forecasts[v.ID()-1],
				MemGB:   v.MemoryGB(),
				Current: -1, // must move
				Group:   v.Group(),
			})
			continue
		}
		if i, ok := binIdx[int(hid)]; ok {
			bins[i].CPUCap -= forecasts[v.ID()-1]
			bins[i].MemCap -= v.MemoryGB()
			if bins[i].CPUCap < 0 {
				bins[i].CPUCap = 0
			}
			if bins[i].MemCap < 0 {
				bins[i].MemCap = 0
			}
			if g := v.Group(); g != "" {
				bins[i].Groups = append(bins[i].Groups, g)
			}
		}
	}
	return Pack(items, bins, m.cfg.Packing)
}

// pickLBDestination picks the load-balancing target for one VM: the
// serving host that ends up coolest after the move, provided the move
// strictly improves balance (destination post-load below the source's
// current load — which also rules out ping-pong) and does not push the
// destination over its raw capacity. Unlike drain placement, no
// target-util slack is demanded: on a cluster hotter than the packing
// target, equalizing heat is still strictly better than leaving one
// host saturated.
func (m *Manager) pickLBDestination(vid vm.ID, src *host.Host, forecasts []float64, loads []float64, serving []*host.Host) *host.Host {
	v, ok := m.cl.VM(vid)
	if !ok {
		return nil
	}
	inboundMem := m.inboundMemory()
	f := forecasts[vid-1]
	var best *host.Host
	bestPost := 0.0
	for _, h := range serving {
		if h.ID() == src.ID() || m.distrusted(h.ID()) {
			continue
		}
		post := loads[h.ID()-1] + f
		if post >= loads[src.ID()-1] { // no strict improvement
			continue
		}
		if post > h.Cores() { // would overload the destination outright
			continue
		}
		if h.MemFreeGB()-inboundMem[h.ID()-1] < v.MemoryGB() {
			continue
		}
		if m.cl.GroupConflict(h.ID(), v.Group(), vid) {
			continue
		}
		if !m.cl.Migrations().CanStart(int(src.ID()), int(h.ID())) {
			continue
		}
		if best == nil || post < bestPost {
			best = h
			bestPost = post
		}
	}
	return best
}

// pickDestination finds the serving host with the most forecast slack
// that can take the VM (best-fit by slack keeps the packing tight
// without starving any host).
func (m *Manager) pickDestination(vid vm.ID, forecasts []float64, serving []*host.Host) *host.Host {
	v, ok := m.cl.VM(vid)
	if !ok {
		return nil
	}
	cur, _ := m.cl.Placement(vid)
	loads := m.hostForecastLoads(forecasts)
	inboundMem := m.inboundMemory()

	var best *host.Host
	bestSlack := 0.0
	for _, h := range serving {
		if h.ID() == cur || m.distrusted(h.ID()) {
			continue
		}
		slack := h.Cores()*m.cfg.TargetUtil - loads[h.ID()-1] - forecasts[vid-1]
		memFree := h.MemFreeGB() - inboundMem[h.ID()-1]
		if slack < 0 || memFree < v.MemoryGB() {
			continue
		}
		if m.cl.GroupConflict(h.ID(), v.Group(), vid) {
			continue
		}
		if !m.cl.Migrations().CanStart(int(cur), int(h.ID())) {
			continue
		}
		if best == nil || slack > bestSlack {
			best = h
			bestSlack = slack
		}
	}
	return best
}

// hostForecastLoads sums forecast demand per host (indexed host.ID-1),
// charging in-flight migrations to their destinations. Pure in the
// placements, the in-flight set, and the forecasts — so an unchanged
// (epoch, fcEpoch) pair returns the cached vector. Phases that mutate
// the returned vector in place after a successful actuation (pending
// placement, load balancing) always move the epoch first via the
// actuation itself, so the mutated cache is recomputed at its next
// read, exactly as the eager path rebuilds it each call.
func (m *Manager) hostForecastLoads(forecasts []float64) []float64 {
	if m.inc && m.loadsOK && m.loadsE == m.epoch && m.loadsF == m.fcEpoch {
		return m.loads
	}
	m.growHostSlots()
	loads, migratingTo := m.loads, m.migTo
	for i := range loads {
		loads[i] = 0
	}
	clear(migratingTo)
	for _, mig := range m.cl.Migrations().Inflights() {
		migratingTo[mig.VM] = host.ID(mig.Dst)
	}
	for _, v := range m.cl.VMs() {
		if dst, ok := migratingTo[v.ID()]; ok {
			loads[dst-1] += forecasts[v.ID()-1]
			continue
		}
		if hid, ok := m.cl.Placement(v.ID()); ok {
			loads[hid-1] += forecasts[v.ID()-1]
		}
	}
	m.loadsE = m.epoch
	m.loadsF = m.fcEpoch
	m.loadsOK = true
	return loads
}

// inboundMemory sums in-flight inbound migration memory per host
// (indexed host.ID-1; beyond what the host already reserves itself,
// this is used for planning against stale reads). Pure in the
// in-flight migration set, which only moves with the epoch.
func (m *Manager) inboundMemory() []float64 {
	if m.inc && m.inbOK && m.inbE == m.epoch {
		return m.inbound
	}
	m.growHostSlots()
	out := m.inbound
	for i := range out {
		out[i] = 0
	}
	for _, mig := range m.cl.Migrations().Inflights() {
		if v, ok := m.cl.VM(mig.VM); ok {
			out[mig.Dst-1] += v.MemoryGB()
		}
	}
	m.inbE = m.epoch
	m.inbOK = true
	return out
}

// balanceLoad is the base-DRM behaviour: offload hot hosts onto the
// coolest serving hosts.
func (m *Manager) balanceLoad(forecasts []float64) {
	c := m.takeCensus()
	if len(c.serving) < 2 {
		return
	}
	loads := m.hostForecastLoads(forecasts)
	for _, src := range c.serving {
		// Hot when forecast exceeds the LB threshold of raw capacity.
		// Suspect hosts are left alone: migrating off a host that may
		// have crashed only burns command retries.
		if m.distrusted(src.ID()) {
			continue
		}
		if loads[src.ID()-1] <= m.cfg.LBThreshold*src.Cores() {
			continue
		}
		// Move smallest VMs first: cheapest moves that relieve
		// pressure with least disruption. src.VMs() is the host's own
		// cached view — copy into scratch before sorting by load.
		vids := append(m.lbVMs[:0], src.VMs()...)
		m.lbVMs = vids
		sort.Slice(vids, func(i, j int) bool {
			fi, fj := forecasts[vids[i]-1], forecasts[vids[j]-1]
			if fi != fj {
				return fi < fj
			}
			return vids[i] < vids[j]
		})
		for _, vid := range vids {
			if loads[src.ID()-1] <= m.cfg.TargetUtil*src.Cores() {
				break
			}
			if m.cl.Migrating(vid) || forecasts[vid-1] <= 0 || m.migrationHeld(vid) || m.migCmdPending(vid) {
				continue
			}
			dst := m.pickLBDestination(vid, src, forecasts, loads, c.serving)
			if dst == nil {
				continue
			}
			if err := m.startMigration(vid, dst.ID()); err != nil {
				m.stats.MigrationsFailed++
				continue
			}
			// startMigration moved the epoch (the cluster's dirty feed
			// on the direct path, an explicit bump on the async path),
			// so this in-phase rebalance of the cached vector matches
			// the eager path and is discarded at the next cache read.
			m.stats.MigrationsLB++
			loads[src.ID()-1] -= forecasts[vid-1]
			loads[dst.ID()-1] += forecasts[vid-1]
		}
	}
}
