// Incremental planning-input maintenance: the machinery that lets the
// manager's per-step cost scale with fleet churn instead of fleet
// size.
//
// The manager's decisions are pure functions of (cluster state, the
// manager's own intent sets, liveness). Everything here caches those
// pure intermediates — the census, the total forecast, per-host
// forecast loads, inbound memory, and the packing plan — keyed by two
// generation counters:
//
//   - epoch   bumps on every event that can change a planning input:
//     the cluster's dirty-host feed (placements, migrations, crashes,
//     power transitions, settles, DVFS), the manager's own writes to
//     its evacuating/maintenance sets, control-plane command results
//     and liveness transitions, and command sends whose effects the
//     cluster cannot see yet.
//   - fcEpoch bumps whenever any VM's clamped forecast value changes
//     bitwise, or the VM set itself changes (arrivals, departures).
//
// A cached value is reused only when its keys are exactly the current
// counters — i.e. when its inputs are provably bitwise-unchanged since
// it was computed. Any change, however small, forces a full identical
// recompute. That is the soundness argument for byte-identity: the
// incremental manager never *delta-updates* a float aggregate (which
// would reorder floating-point sums) and never reuses a plan across a
// real change (a fresh MinBins could legitimately return a different
// prefix). Reuse happens only at zero relevant dirt; the golden
// determinism matrix enforces the equivalence end to end.
//
// Forecast maintenance is the one place a cheap recompute does not
// exist — the eager path calls Observe on every VM at every manager
// invocation. For the peak-window and last-value forecasters the
// observation stream is reconstructible lazily: a VM's forecast can
// only change when its demand trace changes value or when the deque
// head falls out of the window. Both moments are computable in
// advance, so VMs sit in a due-heap and are caught up — bitwise
// exactly, see ensureForecasts — only when such a deadline passes.
// EWMA forecasters evolve on every observation and the diurnal model
// needs the full demand sum every invocation, so those configurations
// fall back to the eager sweep (correct, just not cheap), still with
// epoch-keyed caches on top.
package core

import (
	"fmt"
	"math"

	"agilepower/internal/sim"
	"agilepower/internal/vm"
)

// neverDue mirrors workload.Never: a due key meaning "no deadline".
const neverDue = sim.Time(math.MaxInt64)

// fcDue is one entry in the forecast due-heap: the earliest moment vid
// must be re-observed.
type fcDue struct {
	key sim.Time
	vid vm.ID
}

// invalidate marks every epoch-keyed cache stale. Called on any
// manager-side event the cluster's dirty feed cannot see (intent-set
// writes, command sends, liveness transitions). Over-invalidation is
// always sound — it only costs a recompute — so borderline sites call
// this unconditionally.
func (m *Manager) invalidate() { m.epoch++ }

// growVMSlots extends the dense per-VM state (indexed vm.ID-1) to the
// cluster's ID high-water mark. VM IDs are monotonic and never reused;
// slots of departed VMs go stale but are never read, since every
// consumer iterates live-VM lists.
func (m *Manager) growVMSlots() {
	n := int(m.cl.MaxVMID())
	if len(m.fcv) >= n {
		return
	}
	m.fcs = append(m.fcs, make([]Forecaster, n-len(m.fcs))...)
	m.fcv = append(m.fcv, make([]float64, n-len(m.fcv))...)
	m.fcSeenB = append(m.fcSeenB, make([]bool, n-len(m.fcSeenB))...)
	m.lastObs = append(m.lastObs, make([]sim.Time, n-len(m.lastObs))...)
}

// growHostSlots extends the dense per-host state (indexed host.ID-1).
// Hosts are never removed, so len(cl.Hosts()) is the ID high-water
// mark.
func (m *Manager) growHostSlots() {
	n := len(m.cl.Hosts())
	if len(m.loads) >= n {
		return
	}
	m.loads = append(m.loads, make([]float64, n-len(m.loads))...)
	m.inbound = append(m.inbound, make([]float64, n-len(m.inbound))...)
	m.sortLoads = append(m.sortLoads, make([]float64, n-len(m.sortLoads))...)
}

// newForecaster builds one forecaster from the validated spec.
func (m *Manager) newForecaster() Forecaster {
	f, err := m.cfg.Forecast.New()
	if err != nil {
		// Config was validated at construction; a failure here is a
		// programming error.
		panic(fmt.Sprintf("core: forecaster construction: %v", err))
	}
	return f
}

// dueKeyFor computes the next moment v's forecast can change: its next
// demand-trace change, or — for the peak-window forecaster — the
// moment the deque head expires (head.at+window+1ns, since the eager
// cut condition is the strict head.at+window < now). With fewer than
// two samples an expiry cannot change the forecast (the monotonic
// deque would re-admit the same value), so only the demand change
// counts then.
func (m *Manager) dueKeyFor(v *vm.VM, f Forecaster, now sim.Time) sim.Time {
	key := v.NextDemandChange(now)
	if pw, ok := f.(*peakWindow); ok {
		if exp, due := pw.nextExpiry(); due {
			if k := exp + 1; k < key {
				key = k
			}
		}
	}
	return key
}

// pushDue inserts a due-heap entry. A VM is in the heap iff it has a
// finite deadline; keys are immutable while queued (the deque only
// changes when the VM is processed, and the demand trace is fixed), so
// no decrease-key is ever needed.
func (m *Manager) pushDue(key sim.Time, vid vm.ID) {
	if key == neverDue {
		return
	}
	m.due = append(m.due, fcDue{key: key, vid: vid})
	i := len(m.due) - 1
	for i > 0 {
		p := (i - 1) / 2
		if m.due[p].key <= m.due[i].key {
			break
		}
		m.due[p], m.due[i] = m.due[i], m.due[p]
		i = p
	}
}

// popDue removes and returns the minimum-key entry.
func (m *Manager) popDue() fcDue {
	d := m.due[0]
	last := len(m.due) - 1
	m.due[0] = m.due[last]
	m.due = m.due[:last]
	i := 0
	for {
		l, r, s := 2*i+1, 2*i+2, i
		if l < len(m.due) && m.due[l].key < m.due[s].key {
			s = l
		}
		if r < len(m.due) && m.due[r].key < m.due[s].key {
			s = r
		}
		if s == i {
			break
		}
		m.due[i], m.due[s] = m.due[s], m.due[i]
		i = s
	}
	return d
}

// ensureForecasts is the lazy replacement for the eager per-VM Observe
// sweep. It reproduces the eager forecaster state bitwise:
//
// Between two processings of a VM, its demand is constant (a change
// would have been a deadline) and no deque head expired (ditto), so
// every eager Observe in that span only refreshed the same-value tail
// — of which only the last survives in the deque. Replaying exactly
// two observations therefore lands in the identical state: one at
// invPrev (the last manager invocation before now, recreating the
// final tail refresh) and one at now (the observation the eager sweep
// would make this invocation). Both are idempotent when times
// coincide, and the catch-up is skipped when the VM was already
// observed at or after invPrev.
func (m *Manager) ensureForecasts(now sim.Time) {
	// Fleet membership moved: initialize newcomers (their first eager
	// observation would happen this invocation too) and bump fcEpoch —
	// totals and plans iterate the VM list, so set changes invalidate
	// them even when no forecast value moved.
	if ve := m.cl.VMEpoch(); ve != m.vmSeen {
		m.vmSeen = ve
		m.fcEpoch++
		m.growVMSlots()
		for id := m.maxInit + 1; id <= m.cl.MaxVMID(); id++ {
			v, ok := m.cl.VM(id)
			if !ok {
				continue // created and departed between invocations
			}
			i := id - 1
			f := m.newForecaster()
			m.fcs[i] = f
			f.Observe(now, m.cl.VMDemand(v, now))
			fc := f.Forecast()
			if fc > v.VCPUs() {
				fc = v.VCPUs()
			}
			m.fcv[i] = fc
			m.lastObs[i] = now
			m.pushDue(m.dueKeyFor(v, f, now), id)
		}
		m.maxInit = m.cl.MaxVMID()
	}
	// Catch up every VM whose deadline passed.
	for len(m.due) > 0 && m.due[0].key <= now {
		d := m.popDue()
		v, ok := m.cl.VM(d.vid)
		if !ok {
			continue // departed while queued; drop the stale entry
		}
		i := d.vid - 1
		f := m.fcs[i]
		if m.invPrev > m.lastObs[i] {
			f.Observe(m.invPrev, m.cl.VMDemand(v, m.invPrev))
		}
		f.Observe(now, m.cl.VMDemand(v, now))
		m.lastObs[i] = now
		fc := f.Forecast()
		if fc > v.VCPUs() {
			fc = v.VCPUs()
		}
		if fc != m.fcv[i] {
			m.fcv[i] = fc
			m.fcEpoch++
		}
		m.pushDue(m.dueKeyFor(v, f, now), d.vid)
	}
}

// eagerObserve is the full per-VM sweep: every live VM is observed at
// now and its clamped forecast recorded. Used by the full-scan mode
// and by incremental configurations whose forecaster cannot be
// maintained lazily (EWMA, predictive wake). Departed VMs' forecasters
// and migration bookkeeping are pruned, exactly as the pre-incremental
// manager did (the pruning is memory-only: IDs are never reused, so a
// stale entry could never be read).
func (m *Manager) eagerObserve(now sim.Time) {
	m.growVMSlots()
	seen := m.fcSeenB
	for i := range seen {
		seen[i] = false
	}
	for _, v := range m.cl.VMs() {
		i := v.ID() - 1
		f := m.fcs[i]
		if f == nil {
			f = m.newForecaster()
			m.fcs[i] = f
		}
		f.Observe(now, m.cl.VMDemand(v, now))
		fc := f.Forecast()
		// Never forecast below the VM's cap nor above it.
		if fc > v.VCPUs() {
			fc = v.VCPUs()
		}
		if fc != m.fcv[i] {
			m.fcv[i] = fc
			m.fcEpoch++
		}
		seen[i] = true
	}
	if ve := m.cl.VMEpoch(); ve != m.vmSeen {
		m.vmSeen = ve
		m.fcEpoch++
	}
	// Drop forecasters (and robustness bookkeeping) of departed VMs.
	for i := range m.fcs {
		if m.fcs[i] != nil && !seen[i] {
			m.fcs[i] = nil
			delete(m.migFails, vm.ID(i+1))
			delete(m.migRetryAt, vm.ID(i+1))
		}
	}
	if m.diurnal != nil {
		total := 0.0
		for _, v := range m.cl.VMs() {
			total += m.cl.VMDemand(v, now)
		}
		m.diurnal.Observe(now, total)
	}
}
