package core

import (
	"testing"
	"time"

	"agilepower/internal/cluster"
	"agilepower/internal/host"
	"agilepower/internal/sim"
	"agilepower/internal/vm"
	"agilepower/internal/workload"
)

// TestManagedStress runs the full manager (DPM-S3) over a volatile
// workload with random VM churn and operator maintenance actions,
// checking cluster invariants continuously. Any structural corruption
// the manager could introduce — double placement, parking a loaded
// host, leaking reservations — fails here.
func TestManagedStress(t *testing.T) {
	for _, policy := range []Policy{DPMS3, DPMS5, NoPM} {
		t.Run(policy.Name, func(t *testing.T) {
			eng := sim.NewEngine(2024)
			cl, err := cluster.New(eng, cluster.Config{})
			if err != nil {
				t.Fatal(err)
			}
			const hosts = 6
			for i := 0; i < hosts; i++ {
				if _, err := cl.AddHost(host.Config{Cores: 16, MemoryGB: 128}); err != nil {
					t.Fatal(err)
				}
			}
			rng := sim.NewRNG(5)
			for i := 0; i < 18; i++ {
				tr := workload.RandomWalk(rng.Fork(), workload.OUSpec{
					MeanCores:  1.5,
					Volatility: 0.8,
					Length:     12 * time.Hour,
				})
				if _, err := cl.AddVM(vm.Config{VCPUs: 4, MemoryGB: 8, Trace: tr}, host.ID(i%hosts+1)); err != nil {
					t.Fatal(err)
				}
			}
			m, err := NewManager(cl, Config{Policy: policy, Period: 3 * time.Minute})
			if err != nil {
				t.Fatal(err)
			}
			cl.Start()
			m.Start()

			var vms []vm.ID
			for _, v := range cl.VMs() {
				vms = append(vms, v.ID())
			}
			inMaint := map[host.ID]bool{}
			for step := 0; step < 300; step++ {
				eng.RunUntil(eng.Now() + time.Duration(rng.Intn(150)+30)*time.Second)
				switch rng.Intn(6) {
				case 0: // arrival
					v, err := cl.AddPendingVM(vm.Config{
						VCPUs: 4, MemoryGB: rng.Range(4, 16),
						Trace: workload.Constant(rng.Range(0.2, 3)),
					})
					if err == nil {
						vms = append(vms, v.ID())
					}
				case 1: // departure
					if len(vms) > 0 {
						i := rng.Intn(len(vms))
						if err := cl.RemoveVM(vms[i]); err == nil {
							vms = append(vms[:i], vms[i+1:]...)
						}
					}
				case 2: // operator maintenance toggle
					hid := host.ID(rng.Intn(hosts) + 1)
					if inMaint[hid] {
						if err := m.ExitMaintenance(hid); err == nil {
							delete(inMaint, hid)
						}
					} else if len(inMaint) == 0 { // at most one held at a time
						if err := m.EnterMaintenance(hid); err == nil {
							inMaint[hid] = true
						}
					}
				default: // let the manager work
				}
				if err := cl.CheckInvariants(); err != nil {
					t.Fatalf("step %d at %v: %v", step, eng.Now(), err)
				}
			}
			eng.RunUntil(eng.Now() + time.Hour)
			cl.Flush()
			if err := cl.CheckInvariants(); err != nil {
				t.Fatalf("final: %v", err)
			}
			// The run must have been lively, or the stress proves
			// nothing.
			if policy.PowerManage && m.Stats().Sleeps == 0 {
				t.Fatal("power-managing stress run never slept a host")
			}
			if cl.Migrations().Stats().Completed == 0 {
				t.Fatal("stress run never migrated")
			}
		})
	}
}
