// Control-plane integration: when a ctrlplane.Plane is attached, the
// manager stops actuating the cluster synchronously. Power and
// migration orders travel as sequence-numbered messages that can be
// delayed, dropped and retried; crash knowledge comes from heartbeat
// liveness instead of direct observation; and scale-down decisions are
// gated on telemetry freshness. Without a plane every path below is a
// nil-check no-op and the manager behaves exactly as before.

package core

import (
	"agilepower/internal/ctrlplane"
	"agilepower/internal/host"
	"agilepower/internal/power"
	"agilepower/internal/vm"
)

// CtrStaleKeepOn counts scale-down candidates kept on because their
// telemetry was older than the control plane's staleness limit — the
// conservative fallback when the manager cannot trust its view.
const CtrStaleKeepOn = "stale_keep_on"

// AttachControlPlane interposes the message layer between the manager
// and its cluster. Call it after NewManager and before Start. The
// manager registers for command completions (to reconcile its intent
// with what actually happened) and liveness transitions (to plan
// around presumed-dead hosts).
func (m *Manager) AttachControlPlane(cp *ctrlplane.Plane) {
	m.cp = cp
	cp.OnCommandResult(m.commandResult)
	cp.OnLiveness(m.livenessChanged)
}

// ctrlDead reports whether liveness monitoring presumes the host dead.
func (m *Manager) ctrlDead(id host.ID) bool {
	return m.cp != nil && m.cp.Status(id) == ctrlplane.Dead
}

// distrusted reports whether the host is under liveness suspicion
// (suspect or presumed dead): it gets no new VMs, no migrations toward
// it, and no power orders, but its resident VMs stay in the books — a
// suspicion can be false, and releasing their placements would
// double-place them.
func (m *Manager) distrusted(id host.ID) bool {
	return m.cp != nil && m.cp.Status(id) != ctrlplane.Alive
}

// telemetryFresh reports whether the host's telemetry is recent enough
// to justify a power-down decision. Without a plane the manager's view
// is synchronous and always fresh.
func (m *Manager) telemetryFresh(id host.ID) bool {
	return m.cp == nil || m.cp.Fresh(id)
}

// hostCmdPending reports whether a power order for the host is still
// in flight — issuing another would race the retransmit machinery.
func (m *Manager) hostCmdPending(id host.ID) bool {
	return m.cp != nil && m.cp.HostCmdPending(id)
}

// migCmdPending reports whether a migration order for the VM is still
// in flight.
func (m *Manager) migCmdPending(id vm.ID) bool {
	return m.cp != nil && m.cp.MigrationPending(id)
}

// startMigration issues a migration order, directly or over the
// message layer. The async path always returns nil: rejections arrive
// later as nacks and are reconciled in commandResult.
func (m *Manager) startMigration(vid vm.ID, dst host.ID) error {
	if m.cp != nil {
		// The cluster sees nothing until the command lands, so its
		// dirty feed stays silent — but callers mutate the cached load
		// vector after a successful send, and that mutation must not
		// survive into the next cache read (the eager path rebuilds
		// loads fresh each call). Move the epoch explicitly.
		m.invalidate()
		m.cp.SendMigrate(vid, dst)
		return nil
	}
	return m.cl.StartMigration(vid, dst)
}

// trustedServing filters liveness-suspect hosts out of a census's
// serving set for placement decisions. Plane-free managers get the
// census slice back untouched (the hot path stays allocation-free).
func (m *Manager) trustedServing(c census) []*host.Host {
	if m.cp == nil {
		return c.serving
	}
	out := m.trusted[:0]
	for _, h := range c.serving {
		if m.distrusted(h.ID()) {
			continue
		}
		out = append(out, h)
	}
	m.trusted = out
	return out
}

// pendingWakeCores sums the capacity of sleeping hosts whose wake
// order is still in flight, so scale-up neither double-issues wakes
// nor over-provisions while commands are in transit.
func (m *Manager) pendingWakeCores(c census) float64 {
	if m.cp == nil {
		return 0
	}
	total := 0.0
	for _, h := range c.sleeping {
		if m.wakingReq[h.ID()] && m.cp.HostCmdPending(h.ID()) {
			total += h.Cores()
		}
	}
	return total
}

// commandResult is the exactly-once completion of one command. err is
// nil on an acked success, the host's rejection otherwise, or
// ctrlplane.ErrLost when no ack survived — in which case the command
// may still have executed, so the manager reconciles against observable
// state before declaring failure (a delayed ack landing after a retry
// already succeeded is counted by the plane and never reaches here
// twice).
func (m *Manager) commandResult(cmd ctrlplane.Command, err error) {
	// Command completions arrive from the message layer, invisible to
	// the cluster's dirty feed, and may touch the evacuating/intent
	// sets below; invalidate unconditionally (over-invalidation is
	// sound and completions are rare).
	m.invalidate()
	switch cmd.Kind {
	case ctrlplane.CmdSleep:
		ok := err == nil
		if !ok {
			if h, found := m.cl.Host(cmd.Host); found {
				mach := h.Machine()
				if !mach.Available() && !mach.Crashed() {
					ok = true // the order took; only the ack was lost
				}
			}
		}
		if ok {
			m.stats.Sleeps++
			delete(m.evacuating, cmd.Host)
		} else {
			// The park never happened: clear the intent so the settle
			// handler does not misread a later transition, and leave the
			// host evacuating for the next control step to retry.
			delete(m.parking, cmd.Host)
		}
	case ctrlplane.CmdWake:
		ok := err == nil
		if !ok {
			if h, found := m.cl.Host(cmd.Host); found {
				mach := h.Machine()
				if mach.Available() || (mach.Phase() == power.Exiting && !mach.Crashed()) {
					ok = true
				}
			}
		}
		if ok {
			m.stats.Wakes++
		} else {
			delete(m.wakingReq, cmd.Host)
		}
	case ctrlplane.CmdMigrate:
		if err != nil && !m.cl.Migrating(cmd.VM) {
			m.stats.MigrationsFailed++
		}
	}
}

// livenessChanged reacts to heartbeat-liveness transitions. A presumed
// death voids all transition intent for the host (mirroring direct
// crash observation) and replans immediately; a recovery — including a
// false suspicion clearing — also replans, since the host's capacity
// is trustworthy again. The suspect state needs no action here: the
// census and placement guards handle it.
func (m *Manager) livenessChanged(id host.ID, s ctrlplane.Status) {
	// Liveness shifts the census (Dead hosts are planned around) and
	// the trust guards; none of it flows through the cluster's dirty
	// feed. Invalidate for every transition, including Suspect — the
	// cost is one recompute, the alternative is a stale plan.
	m.invalidate()
	switch s {
	case ctrlplane.Dead:
		m.counters.Inc(CtrCrashesObserved)
		delete(m.evacuating, id)
		delete(m.parking, id)
		delete(m.wakingReq, id)
		delete(m.retries, id)
		delete(m.retryAt, id)
		if m.started {
			m.step()
		}
	case ctrlplane.Alive:
		if m.started {
			m.step()
		}
	}
}
