package core

import (
	"time"
)

// diurnalModel learns the cluster's demand by time of day: an EWMA per
// half-hour bucket, updated as observations stream in. The manager's
// predictive-wake feature reads the learned curve at (now + lead) to
// wake capacity *ahead* of recurring ramps — the classic mitigation
// for slow power states. It is deliberately blind to anything that
// does not repeat daily (flash crowds), which is exactly the gap the
// paper's low-latency states close.
type diurnalModel struct {
	alpha   float64
	buckets [48]float64
	primed  [48]bool
	// seen counts fully primed buckets; predictions are unreliable
	// until at least half the day has been observed once.
	seen int
}

const diurnalBucket = 30 * time.Minute

func newDiurnalModel(alpha float64) *diurnalModel {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.4
	}
	return &diurnalModel{alpha: alpha}
}

func bucketOf(at time.Duration) int {
	day := 24 * time.Hour
	inDay := at % day
	return int(inDay / diurnalBucket)
}

// Observe feeds one total-demand sample.
func (m *diurnalModel) Observe(at time.Duration, demand float64) {
	b := bucketOf(at)
	if !m.primed[b] {
		m.buckets[b] = demand
		m.primed[b] = true
		m.seen++
		return
	}
	m.buckets[b] = m.alpha*demand + (1-m.alpha)*m.buckets[b]
}

// Ready reports whether enough of the day has been observed for
// predictions to mean anything.
func (m *diurnalModel) Ready() bool { return m.seen >= 24 }

// Predict returns the learned demand at time at (wrapping daily), and
// false when the model is not ready or the bucket was never observed.
func (m *diurnalModel) Predict(at time.Duration) (float64, bool) {
	if !m.Ready() {
		return 0, false
	}
	b := bucketOf(at)
	if !m.primed[b] {
		return 0, false
	}
	return m.buckets[b], true
}

// PredictWindowMax returns the maximum learned demand over [from,
// from+window], the value a wake decision must cover.
func (m *diurnalModel) PredictWindowMax(from time.Duration, window time.Duration) (float64, bool) {
	if !m.Ready() {
		return 0, false
	}
	max := 0.0
	any := false
	consider := func(at time.Duration) {
		if v, ok := m.Predict(at); ok {
			any = true
			if v > max {
				max = v
			}
		}
	}
	for at := from; at < from+window; at += diurnalBucket {
		consider(at)
	}
	// Always sample the window endpoint: a steep ramp sitting just
	// inside the horizon is exactly what the lookahead exists for.
	consider(from + window)
	return max, any
}
