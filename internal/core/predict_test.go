package core

import (
	"math"
	"testing"
	"time"
)

func TestDiurnalModelLearnsCurve(t *testing.T) {
	m := newDiurnalModel(0.5)
	// Two days of a simple curve: 10 cores at night, 40 by day.
	demand := func(at time.Duration) float64 {
		h := math.Mod(at.Hours(), 24)
		if h >= 9 && h < 17 {
			return 40
		}
		return 10
	}
	for at := time.Duration(0); at < 48*time.Hour; at += 15 * time.Minute {
		m.Observe(at, demand(at))
	}
	if !m.Ready() {
		t.Fatal("model not ready after two full days")
	}
	if v, ok := m.Predict(12 * time.Hour); !ok || math.Abs(v-40) > 1 {
		t.Fatalf("midday prediction = %v/%v, want ~40", v, ok)
	}
	if v, ok := m.Predict(3 * time.Hour); !ok || math.Abs(v-10) > 1 {
		t.Fatalf("night prediction = %v/%v, want ~10", v, ok)
	}
	// Predictions wrap daily.
	if v, _ := m.Predict(27 * time.Hour); math.Abs(v-10) > 1 {
		t.Fatalf("wrapped prediction = %v", v)
	}
}

func TestDiurnalModelNotReadyEarly(t *testing.T) {
	m := newDiurnalModel(0.4)
	for at := time.Duration(0); at < 2*time.Hour; at += 15 * time.Minute {
		m.Observe(at, 5)
	}
	if m.Ready() {
		t.Fatal("model ready after 2 hours of one day")
	}
	if _, ok := m.Predict(time.Hour); ok {
		t.Fatal("unready model predicted")
	}
	if _, ok := m.PredictWindowMax(0, time.Hour); ok {
		t.Fatal("unready model predicted window")
	}
}

func TestPredictWindowMaxCoversRamp(t *testing.T) {
	m := newDiurnalModel(0.5)
	for day := 0; day < 2; day++ {
		for at := time.Duration(0); at < 24*time.Hour; at += 15 * time.Minute {
			full := time.Duration(day)*24*time.Hour + at
			v := 10.0
			if at >= 8*time.Hour {
				v = 50
			}
			m.Observe(full, v)
		}
	}
	// At 7:40, a 30-minute lookahead must see the 8:00 jump.
	v, ok := m.PredictWindowMax(2*24*time.Hour+7*time.Hour+40*time.Minute, 30*time.Minute)
	if !ok || v < 45 {
		t.Fatalf("window max = %v/%v, want ~50", v, ok)
	}
	// At 3:00 with a small window, still night.
	v, ok = m.PredictWindowMax(2*24*time.Hour+3*time.Hour, 30*time.Minute)
	if !ok || v > 15 {
		t.Fatalf("night window max = %v/%v, want ~10", v, ok)
	}
}

func TestDiurnalModelAlphaDefault(t *testing.T) {
	m := newDiurnalModel(0) // invalid → default
	if m.alpha != 0.4 {
		t.Fatalf("alpha = %v", m.alpha)
	}
	m = newDiurnalModel(2)
	if m.alpha != 0.4 {
		t.Fatalf("alpha = %v for out-of-range input", m.alpha)
	}
}

func TestBucketOf(t *testing.T) {
	if bucketOf(0) != 0 {
		t.Fatal("bucket(0)")
	}
	if bucketOf(30*time.Minute) != 1 {
		t.Fatal("bucket(30m)")
	}
	if bucketOf(23*time.Hour+45*time.Minute) != 47 {
		t.Fatal("bucket(23:45)")
	}
	if bucketOf(24*time.Hour) != 0 {
		t.Fatal("bucket wraps")
	}
}
