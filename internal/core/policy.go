package core

import (
	"fmt"
	"time"

	"agilepower/internal/power"
)

// Policy selects which management behaviours the controller runs. The
// paper's evaluation compares four corners of this space plus an
// analytic oracle (see oracle.go).
type Policy struct {
	// Name labels the policy in reports.
	Name string
	// LoadBalance enables DRM behaviour: spreading load off overloaded
	// hosts. All non-static policies have it.
	LoadBalance bool
	// Consolidate enables packing VMs onto few hosts via migration.
	Consolidate bool
	// PowerManage enables parking emptied hosts and waking them on
	// demand.
	PowerManage bool
	// SleepState is the park state when PowerManage is on.
	SleepState power.State
	// DVFS scales each active host's frequency to its forecast load —
	// the processor-level alternative the paper's intro contrasts with.
	// It saves only dynamic power, so on its own it cannot approach
	// energy proportionality; combined with PowerManage it trims the
	// awake hosts' draw.
	DVFS bool
}

// Preset policies.
var (
	// Static — no management at all: every host stays on, VMs never
	// move. The "provisioned for peak" datacenter.
	Static = Policy{Name: "static"}
	// NoPM — base distributed resource management: load balancing
	// only, no power actions. The adoption baseline the paper compares
	// overheads against.
	NoPM = Policy{Name: "nopm-drm", LoadBalance: true}
	// DPMS5 — traditional power management using soft-off: consolidate
	// and shut servers down. High-latency transitions make it timid
	// and slow to react.
	DPMS5 = Policy{Name: "dpm-s5", LoadBalance: true, Consolidate: true, PowerManage: true, SleepState: power.S5}
	// DPMS3 — the paper's contribution: the same manager driving
	// low-latency suspend-to-RAM states.
	DPMS3 = Policy{Name: "dpm-s3", LoadBalance: true, Consolidate: true, PowerManage: true, SleepState: power.S3}
	// DVFSOnly — frequency scaling without any consolidation or
	// parking: every host stays on, clocked down to its load. The
	// baseline that shows why processor-level knobs are not enough.
	DVFSOnly = Policy{Name: "dvfs", LoadBalance: true, DVFS: true}
)

// Policies returns the standard comparison set in report order.
func Policies() []Policy { return []Policy{Static, NoPM, DPMS5, DPMS3} }

// Validate checks the policy for consistency.
func (p Policy) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("core: policy needs a name")
	}
	if p.PowerManage && !p.SleepState.IsSleep() {
		return fmt.Errorf("core: policy %q power-manages without a sleep state", p.Name)
	}
	if p.PowerManage && !p.Consolidate {
		return fmt.Errorf("core: policy %q cannot power-manage without consolidation", p.Name)
	}
	return nil
}

// IncrementalMode selects whether the manager maintains its planning
// inputs (forecasts, census, host loads, packing plan) incrementally
// from the cluster's dirty-host event feed, or rebuilds them from a
// full fleet scan on every control step. Both modes produce
// byte-identical decisions and reports — incremental maintenance only
// changes what work is skipped when nothing relevant changed — so the
// default is on. The off mode exists as the determinism control for
// the golden matrix and as a debugging escape hatch.
type IncrementalMode int

const (
	// IncrementalDefault (the zero value) selects the package default,
	// currently incremental planning on.
	IncrementalDefault IncrementalMode = 0
	// IncrementalOn maintains planning inputs from per-host deltas.
	IncrementalOn IncrementalMode = 1
	// IncrementalOff rebuilds planning inputs by full scan each step.
	IncrementalOff IncrementalMode = -1
)

// String names the mode.
func (m IncrementalMode) String() string {
	switch {
	case m > 0:
		return "incremental"
	case m < 0:
		return "full-scan"
	default:
		return "default"
	}
}

// Config tunes the manager's control loop.
type Config struct {
	// Policy selects behaviour (default DPMS3).
	Policy Policy
	// Period is the control loop interval (default 5 minutes).
	Period time.Duration
	// TargetUtil is the CPU headroom target for packing: a host is
	// filled to at most this fraction of its cores (default 0.70).
	TargetUtil float64
	// WakeThreshold: when forecast demand exceeds this fraction of
	// active capacity, hosts are woken (default 0.85). The gap between
	// WakeThreshold and TargetUtil is the utilization hysteresis band:
	// right after a scale-down the kept hosts run at ≈TargetUtil, so
	// demand must grow by the band before anything is woken again.
	WakeThreshold float64
	// ParkCooldown is how long after a host wakes before it may be
	// evacuated again (default 2× Period). Without it, a host woken
	// for a surge is the least-loaded server the moment the surge
	// fades and would be re-parked immediately — wake/park flapping
	// that burns transition energy and migration churn.
	ParkCooldown time.Duration
	// SleepDelay is how long a scale-down opportunity must persist
	// before hosts are evacuated — the flap damper, and the knob that
	// encodes transition risk. Zero selects the latency-aware default:
	// twice the sleep state's round-trip (entry+exit) latency, so slow
	// states (S5) are parked far more cautiously than agile ones (S3),
	// exactly the conservatism real managers need with high-latency
	// transitions. Negative disables the delay entirely.
	SleepDelay time.Duration
	// MinActive is the floor on available hosts (default 1).
	MinActive int
	// SpareHosts keeps this many extra hosts awake beyond the packing
	// requirement, as an insurance buffer against wake latency
	// (default 0).
	SpareHosts int
	// Forecast selects the demand predictor (default peak-window).
	Forecast ForecastSpec
	// Packing selects the bin-packing heuristic (default FFD).
	Packing PackKind
	// PanicShortfall arms the emergency brake: when the fraction of
	// cluster demand going unserved exceeds this for two consecutive
	// monitoring ticks, the manager wakes every sleeping host, cancels
	// evacuations, and suspends scale-down for PanicHold. Zero
	// disables the brake (the default — it is an operator opt-in
	// backstop, not part of the paper's policy).
	PanicShortfall float64
	// PanicHold is how long scale-down stays suspended after a panic
	// (default 15 minutes).
	PanicHold time.Duration
	// PredictiveWake enables time-of-day demand prediction: the
	// manager learns the cluster's diurnal curve (EWMA per half-hour
	// bucket) and wakes capacity ahead of recurring ramps, covering the
	// sleep state's exit latency. The classic mitigation for slow
	// states — and deliberately blind to unpredictable surges, which is
	// the gap only low-latency states close.
	PredictiveWake bool
	// MaxMigrationsPerStep caps migrations launched per control period
	// (default 0 = unlimited; the per-host migration limit still
	// applies).
	MaxMigrationsPerStep int
	// LBThreshold is the host utilization fraction above which load
	// balancing offloads VMs (default 0.90).
	LBThreshold float64

	// MaxTransitionRetries is how many times a failed power transition
	// (a suspend that did not take, a resume that fell back asleep) is
	// retried with backoff before the host is quarantined (default 3;
	// negative disables retries — first failure quarantines).
	MaxTransitionRetries int
	// RetryBackoffBase is the first retry delay after a failed
	// transition; each further failure doubles it, capped at
	// RetryBackoffMax (defaults 30s and 10m).
	RetryBackoffBase time.Duration
	RetryBackoffMax  time.Duration
	// QuarantineHold is how long a host that exhausted its transition
	// retries is barred from further power actions (default 1h). A
	// suspend-quarantined host stays on and serving — graceful
	// degradation spends energy, never SLA.
	QuarantineHold time.Duration
	// MigrationRetryBackoff is how long after an aborted migration the
	// VM is exempt from new move attempts (default 2m), so a flaky
	// path is not hammered every control period.
	MigrationRetryBackoff time.Duration

	// DemandShocks declares that VM demand may be rescaled at runtime
	// (scenario demand-surge events). Lazy forecast maintenance replays
	// demand reads at past times and would see the post-shock scale for
	// pre-shock moments, so it is disabled when shocks are possible;
	// the eager sweep (still epoch-cached) reads demand only at the
	// current instant and stays exact.
	DemandShocks bool

	// Incremental selects incremental planning-input maintenance
	// (default on; see IncrementalMode). Decisions and reports are
	// byte-identical either way.
	Incremental IncrementalMode
}

func (c *Config) applyDefaults() {
	if c.Policy.Name == "" {
		c.Policy = DPMS3
	}
	if c.Period <= 0 {
		c.Period = 5 * time.Minute
	}
	if c.TargetUtil == 0 {
		c.TargetUtil = 0.70
	}
	if c.WakeThreshold == 0 {
		c.WakeThreshold = 0.85
	}
	if c.ParkCooldown == 0 {
		c.ParkCooldown = 2 * c.Period
	}
	if c.PanicHold == 0 {
		c.PanicHold = 15 * time.Minute
	}
	if c.MinActive <= 0 {
		c.MinActive = 1
	}
	if c.Forecast.Kind == ForecastDefault {
		c.Forecast = ForecastSpec{Kind: ForecastPeakWindow, Window: c.Forecast.Window, Alpha: c.Forecast.Alpha}
	}
	if c.LBThreshold == 0 {
		c.LBThreshold = 0.90
	}
	if c.MaxTransitionRetries == 0 {
		c.MaxTransitionRetries = 3
	} else if c.MaxTransitionRetries < 0 {
		c.MaxTransitionRetries = 0
	}
	if c.RetryBackoffBase <= 0 {
		c.RetryBackoffBase = 30 * time.Second
	}
	if c.RetryBackoffMax <= 0 {
		c.RetryBackoffMax = 10 * time.Minute
	}
	if c.QuarantineHold <= 0 {
		c.QuarantineHold = time.Hour
	}
	if c.MigrationRetryBackoff <= 0 {
		c.MigrationRetryBackoff = 2 * time.Minute
	}
	if c.Incremental == IncrementalDefault {
		c.Incremental = IncrementalOn
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if err := c.Policy.Validate(); err != nil {
		return err
	}
	if c.TargetUtil <= 0 || c.TargetUtil > 1 {
		return fmt.Errorf("core: target utilization %v outside (0,1]", c.TargetUtil)
	}
	if c.WakeThreshold <= 0 || c.WakeThreshold > 1 {
		return fmt.Errorf("core: wake threshold %v outside (0,1]", c.WakeThreshold)
	}
	if c.WakeThreshold <= c.TargetUtil {
		return fmt.Errorf("core: wake threshold %v must exceed target utilization %v (hysteresis band)",
			c.WakeThreshold, c.TargetUtil)
	}
	if c.LBThreshold <= 0 || c.LBThreshold > 1 {
		return fmt.Errorf("core: load-balance threshold %v outside (0,1]", c.LBThreshold)
	}
	if c.SpareHosts < 0 {
		return fmt.Errorf("core: negative spare hosts %d", c.SpareHosts)
	}
	if c.MaxMigrationsPerStep < 0 {
		return fmt.Errorf("core: negative migration cap %d", c.MaxMigrationsPerStep)
	}
	if c.ParkCooldown < 0 {
		return fmt.Errorf("core: negative park cooldown %v", c.ParkCooldown)
	}
	if c.PanicShortfall < 0 || c.PanicShortfall > 1 {
		return fmt.Errorf("core: panic shortfall %v outside [0,1]", c.PanicShortfall)
	}
	if c.PanicHold < 0 {
		return fmt.Errorf("core: negative panic hold %v", c.PanicHold)
	}
	if c.RetryBackoffMax < c.RetryBackoffBase {
		return fmt.Errorf("core: retry backoff max %v below base %v", c.RetryBackoffMax, c.RetryBackoffBase)
	}
	return nil
}
