package core

import (
	"testing"
	"time"

	"agilepower/internal/cluster"
	"agilepower/internal/host"
	"agilepower/internal/sim"
	"agilepower/internal/vm"
	"agilepower/internal/workload"
)

// panicScenario: light load that consolidates hard, then a demand wall
// that overwhelms the packed hosts. The policy is DPM-S5: with S3 the
// ordinary wake path clears the wall within a minute and the brake
// never needs to fire (verified by TestPanicNeverNeededUnderS3), so
// the brake's real constituency is slow states.
func panicScenario(t *testing.T, panicShortfall float64) (*sim.Engine, *cluster.Cluster, *Manager) {
	t.Helper()
	eng := sim.NewEngine(1)
	cl, err := cluster.New(eng, cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := cl.AddHost(host.Config{Cores: 16, MemoryGB: 256}); err != nil {
			t.Fatal(err)
		}
	}
	// 0.25 cores for 2h, then 4 cores each (24 VMs × 4 = 96 on 96
	// cores: the whole fleet is needed instantly).
	samples := make([]float64, 8*60)
	for i := range samples {
		if i < 120 {
			samples[i] = 0.25
		} else {
			samples[i] = 4
		}
	}
	tr, _ := workload.NewTrace(time.Minute, samples)
	for i := 0; i < 24; i++ {
		if _, err := cl.AddVM(vm.Config{VCPUs: 4, MemoryGB: 8, Trace: tr}, host.ID(i%6+1)); err != nil {
			t.Fatal(err)
		}
	}
	m, err := NewManager(cl, Config{
		Policy:         DPMS5,
		PanicShortfall: panicShortfall,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	m.Start()
	return eng, cl, m
}

func TestPanicBrakeFires(t *testing.T) {
	eng, cl, m := panicScenario(t, 0.2)
	eng.RunUntil(4 * time.Hour)
	cl.Flush()
	if m.Stats().Panics == 0 {
		t.Fatal("brake never fired under a demand wall")
	}
	// After the wall, everything is awake and serving.
	if got := len(cl.AvailableHosts()); got != 6 {
		t.Fatalf("available hosts = %d after panic, want 6", got)
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPanicSuspendsScaleDown(t *testing.T) {
	eng, cl, m := panicScenario(t, 0.2)
	// Run just past the wall so the panic fires, then check that the
	// fleet stays awake through the hold even though forecast noise
	// might suggest shrinking.
	eng.RunUntil(2*time.Hour + 10*time.Minute)
	if m.Stats().Panics == 0 {
		t.Fatal("panic not fired by 2h10m")
	}
	fired := eng.Now()
	eng.RunUntil(fired + 10*time.Minute) // inside the 15m hold
	entries, _ := cl.PowerActions()
	entriesAtHold := entries
	eng.RunUntil(fired + 14*time.Minute)
	entries2, _ := cl.PowerActions()
	if entries2 != entriesAtHold {
		t.Fatalf("hosts parked during panic hold: %d → %d", entriesAtHold, entries2)
	}
}

// TestPanicNeverNeededUnderS3 documents the agility result: the same
// demand wall under DPM-S3 is absorbed by the ordinary wake path
// before the brake's two-tick trigger can fire.
func TestPanicNeverNeededUnderS3(t *testing.T) {
	eng := sim.NewEngine(1)
	cl, err := cluster.New(eng, cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := cl.AddHost(host.Config{Cores: 16, MemoryGB: 256}); err != nil {
			t.Fatal(err)
		}
	}
	samples := make([]float64, 8*60)
	for i := range samples {
		if i < 120 {
			samples[i] = 0.25
		} else {
			samples[i] = 4
		}
	}
	tr, _ := workload.NewTrace(time.Minute, samples)
	for i := 0; i < 24; i++ {
		if _, err := cl.AddVM(vm.Config{VCPUs: 4, MemoryGB: 8, Trace: tr}, host.ID(i%6+1)); err != nil {
			t.Fatal(err)
		}
	}
	m, err := NewManager(cl, Config{Policy: DPMS3, PanicShortfall: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	m.Start()
	eng.RunUntil(4 * time.Hour)
	if m.Stats().Panics != 0 {
		t.Fatalf("S3 needed the brake (%d panics); agility regressed", m.Stats().Panics)
	}
	d, del := cl.LastEvaluation()
	if del < d-1e-6 {
		t.Fatalf("demand not fully served at steady state: %v/%v", del, d)
	}
}

func TestPanicDisabledByDefault(t *testing.T) {
	_, _, m := panicScenario(t, 0)
	if m.Config().PanicShortfall != 0 {
		t.Fatal("panic enabled by default")
	}
	// checkPanic with the brake disarmed must be a no-op.
	m.checkPanic()
	if m.Stats().Panics != 0 {
		t.Fatal("disabled brake fired")
	}
}

func TestPanicConfigValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	cl, _ := cluster.New(eng, cluster.Config{})
	if _, err := NewManager(cl, Config{Policy: DPMS3, PanicShortfall: 1.5}); err == nil {
		t.Fatal("accepted shortfall > 1")
	}
	if _, err := NewManager(cl, Config{Policy: DPMS3, PanicHold: -time.Minute}); err == nil {
		t.Fatal("accepted negative hold")
	}
	m, err := NewManager(cl, Config{Policy: DPMS3, PanicShortfall: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Config().PanicHold != 15*time.Minute {
		t.Fatalf("default hold = %v", m.Config().PanicHold)
	}
}
