// Package core implements the paper's primary contribution: an
// end-to-end power-aware virtualization manager. It periodically
// forecasts VM demand, consolidates VMs onto the fewest hosts that can
// serve the forecast with headroom (via live migration), parks the
// emptied hosts in a low-latency sleep state, and wakes them back on
// demand. Baseline policies (plain load-balancing DRM, traditional
// S5-based power management, static provisioning) are expressed in the
// same framework so the paper's comparisons are apples-to-apples.
package core

import (
	"fmt"
	"time"
)

// Forecaster predicts a VM's near-future CPU demand from its observed
// samples. The manager keeps one per VM.
type Forecaster interface {
	// Observe feeds one demand sample.
	Observe(at time.Duration, demand float64)
	// Forecast returns the predicted demand for the next control
	// period.
	Forecast() float64
}

// ForecastKind selects a forecaster implementation.
type ForecastKind int

const (
	// ForecastDefault (the zero value) selects the package default,
	// currently the peak-window forecaster.
	ForecastDefault ForecastKind = iota
	// ForecastLastValue predicts the most recent observation. Cheap
	// and agile, but blind to noise.
	ForecastLastValue
	// ForecastEWMA predicts an exponentially weighted moving average.
	ForecastEWMA
	// ForecastPeakWindow predicts the maximum over a sliding window —
	// the conservative choice that absorbs short spikes, which the
	// paper's manager needs when wake-up latency is high.
	ForecastPeakWindow
)

// String names the kind.
func (k ForecastKind) String() string {
	switch k {
	case ForecastDefault:
		return "default"
	case ForecastLastValue:
		return "last-value"
	case ForecastEWMA:
		return "ewma"
	case ForecastPeakWindow:
		return "peak-window"
	default:
		return "forecast?"
	}
}

// ForecastSpec configures forecaster construction.
type ForecastSpec struct {
	Kind ForecastKind
	// Alpha is the EWMA smoothing factor in (0,1] (default 0.3).
	Alpha float64
	// Window is the peak-window length (default 15 minutes).
	Window time.Duration
}

// New builds a forecaster from the spec.
func (s ForecastSpec) New() (Forecaster, error) {
	switch s.Kind {
	case ForecastDefault, ForecastPeakWindow:
		w := s.Window
		if w == 0 {
			w = 15 * time.Minute
		}
		if w < 0 {
			return nil, fmt.Errorf("core: negative peak window %v", w)
		}
		return &peakWindow{window: w}, nil
	case ForecastLastValue:
		return &lastValue{}, nil
	case ForecastEWMA:
		alpha := s.Alpha
		if alpha == 0 {
			alpha = 0.3
		}
		if alpha <= 0 || alpha > 1 {
			return nil, fmt.Errorf("core: ewma alpha %v outside (0,1]", alpha)
		}
		return &ewma{alpha: alpha}, nil
	default:
		return nil, fmt.Errorf("core: unknown forecast kind %d", s.Kind)
	}
}

type lastValue struct {
	last float64
}

func (f *lastValue) Observe(_ time.Duration, d float64) { f.last = d }
func (f *lastValue) Forecast() float64                  { return f.last }

type ewma struct {
	alpha  float64
	value  float64
	primed bool
}

func (f *ewma) Observe(_ time.Duration, d float64) {
	if !f.primed {
		f.value = d
		f.primed = true
		return
	}
	f.value = f.alpha*d + (1-f.alpha)*f.value
}

func (f *ewma) Forecast() float64 { return f.value }

type sample struct {
	at time.Duration
	v  float64
}

type peakWindow struct {
	window  time.Duration
	samples []sample // monotonic deque: decreasing values
}

func (f *peakWindow) Observe(at time.Duration, d float64) {
	// Drop samples that fell out of the window.
	cut := 0
	for cut < len(f.samples) && f.samples[cut].at+f.window < at {
		cut++
	}
	f.samples = f.samples[cut:]
	// Maintain the decreasing-max deque invariant.
	for len(f.samples) > 0 && f.samples[len(f.samples)-1].v <= d {
		f.samples = f.samples[:len(f.samples)-1]
	}
	f.samples = append(f.samples, sample{at: at, v: d})
}

func (f *peakWindow) Forecast() float64 {
	if len(f.samples) == 0 {
		return 0
	}
	return f.samples[0].v
}

// nextExpiry reports when the head sample will fall out of the window
// — the next moment the forecast value can change without a new demand
// sample. With zero or one samples there is nothing behind the head to
// promote, so expiry alone cannot change Forecast() and no deadline is
// due. The incremental manager uses this to skip Observe calls on VMs
// whose forecast provably cannot have moved.
func (f *peakWindow) nextExpiry() (time.Duration, bool) {
	if len(f.samples) < 2 {
		return 0, false
	}
	return f.samples[0].at + f.window, true
}
