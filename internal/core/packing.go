package core

import (
	"fmt"
	"sort"
)

// The placement planner answers: given forecast per-VM demand, which
// hosts should be active and where should each VM run? It is a
// two-constraint (CPU with headroom, memory strict) bin-packing with a
// minimal-moves bias: VMs stay where they are whenever their current
// host is among the chosen bins and still fits, so consolidation churn
// stays comparable to base DRM — the paper's "comparable overheads"
// claim depends on this.

// Item is one VM to place.
type Item struct {
	// Key identifies the VM.
	Key int
	// CPU is the forecast demand in cores.
	CPU float64
	// MemGB is the VM memory footprint.
	MemGB float64
	// Current is the bin key of the host the VM currently runs on
	// (negative if none).
	Current int
	// Group is the item's anti-affinity group: two items with the same
	// non-empty group never share a bin.
	Group string
}

// Bin is one candidate host.
type Bin struct {
	// Key identifies the host.
	Key int
	// CPUCap is usable CPU: host cores × target utilization headroom.
	CPUCap float64
	// MemCap is usable memory in GB.
	MemCap float64
	// Groups lists anti-affinity groups already present on the host
	// (from residents that are not packing items); items of these
	// groups cannot land here.
	Groups []string
}

// Assignment maps item keys to bin keys.
type Assignment map[int]int

// PackKind selects the bin-packing heuristic for items that must move.
type PackKind int

const (
	// PackFFD is first-fit-decreasing: items in decreasing CPU order,
	// each into the first bin with room.
	PackFFD PackKind = iota
	// PackBFD is best-fit-decreasing: each item into the feasible bin
	// with the least CPU slack remaining.
	PackBFD
)

// String names the heuristic.
func (k PackKind) String() string {
	switch k {
	case PackFFD:
		return "ffd"
	case PackBFD:
		return "bfd"
	default:
		return "pack?"
	}
}

type binState struct {
	bin     Bin
	cpuUsed float64
	memUsed float64
	groups  map[string]bool
}

func (b *binState) fits(it Item) bool {
	if it.Group != "" && b.groups[it.Group] {
		return false
	}
	return b.cpuUsed+it.CPU <= b.bin.CPUCap+1e-9 && b.memUsed+it.MemGB <= b.bin.MemCap+1e-9
}

func (b *binState) add(it Item) {
	b.cpuUsed += it.CPU
	b.memUsed += it.MemGB
	if it.Group != "" {
		if b.groups == nil {
			b.groups = make(map[string]bool)
		}
		b.groups[it.Group] = true
	}
}

// Pack assigns every item to a bin, keeping items on their current bin
// when possible and packing the rest with the chosen heuristic. It
// reports ok=false if some item cannot be placed (the chosen bin set
// is too small).
func Pack(items []Item, bins []Bin, kind PackKind) (Assignment, bool) {
	states := make([]*binState, len(bins))
	byKey := make(map[int]*binState, len(bins))
	for i, b := range bins {
		st := &binState{bin: b}
		for _, g := range b.Groups {
			if st.groups == nil {
				st.groups = make(map[string]bool)
			}
			st.groups[g] = true
		}
		states[i] = st
		byKey[b.Key] = st
	}
	// Deterministic processing order: decreasing CPU, ties by key.
	order := append([]Item(nil), items...)
	sort.Slice(order, func(i, j int) bool {
		if order[i].CPU != order[j].CPU {
			return order[i].CPU > order[j].CPU
		}
		return order[i].Key < order[j].Key
	})

	assign := make(Assignment, len(items))
	var movers []Item
	// Pass 1: sticky placement on the current bin.
	for _, it := range order {
		if st, ok := byKey[it.Current]; ok && st.fits(it) {
			st.add(it)
			assign[it.Key] = it.Current
			continue
		}
		movers = append(movers, it)
	}
	// Pass 2: pack the movers.
	for _, it := range movers {
		var chosen *binState
		switch kind {
		case PackBFD:
			bestSlack := 0.0
			for _, st := range states {
				if !st.fits(it) {
					continue
				}
				slack := st.bin.CPUCap - st.cpuUsed - it.CPU
				if chosen == nil || slack < bestSlack {
					chosen = st
					bestSlack = slack
				}
			}
		default: // PackFFD
			for _, st := range states {
				if st.fits(it) {
					chosen = st
					break
				}
			}
		}
		if chosen == nil {
			return nil, false
		}
		chosen.add(it)
		assign[it.Key] = chosen.bin.Key
	}
	return assign, true
}

// Moves returns the item keys whose assignment differs from their
// current bin, in deterministic (ascending key) order.
func Moves(items []Item, assign Assignment) []int {
	var out []int
	for _, it := range items {
		if to, ok := assign[it.Key]; ok && to != it.Current {
			out = append(out, it.Key)
		}
	}
	sort.Ints(out)
	return out
}

// MinBins returns the smallest prefix length k of bins such that all
// items pack into bins[:k], and the corresponding assignment. Bins
// should be pre-ordered by preference (e.g. currently-loaded hosts
// first to minimize migrations). Returns ok=false if even all bins are
// insufficient.
func MinBins(items []Item, bins []Bin, kind PackKind) (k int, assign Assignment, ok bool) {
	if len(items) == 0 {
		return 0, Assignment{}, true
	}
	// Lower bound from aggregate capacity, to skip infeasible prefixes.
	needCPU, needMem := 0.0, 0.0
	for _, it := range items {
		needCPU += it.CPU
		needMem += it.MemGB
	}
	cumCPU, cumMem := 0.0, 0.0
	for k = 1; k <= len(bins); k++ {
		cumCPU += bins[k-1].CPUCap
		cumMem += bins[k-1].MemCap
		if cumCPU+1e-9 < needCPU || cumMem+1e-9 < needMem {
			continue
		}
		if a, ok := Pack(items, bins[:k], kind); ok {
			return k, a, true
		}
	}
	return len(bins), nil, false
}

// Validate sanity-checks the planner inputs.
func Validate(items []Item, bins []Bin) error {
	seen := make(map[int]bool, len(bins))
	for _, b := range bins {
		if b.CPUCap < 0 || b.MemCap < 0 {
			return fmt.Errorf("core: bin %d has negative capacity", b.Key)
		}
		if seen[b.Key] {
			return fmt.Errorf("core: duplicate bin key %d", b.Key)
		}
		seen[b.Key] = true
	}
	seenIt := make(map[int]bool, len(items))
	for _, it := range items {
		if it.CPU < 0 || it.MemGB < 0 {
			return fmt.Errorf("core: item %d has negative size", it.Key)
		}
		if seenIt[it.Key] {
			return fmt.Errorf("core: duplicate item key %d", it.Key)
		}
		seenIt[it.Key] = true
	}
	return nil
}
