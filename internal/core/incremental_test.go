package core

import (
	"fmt"
	"testing"
	"time"

	"agilepower/internal/cluster"
	"agilepower/internal/ctrlplane"
	"agilepower/internal/host"
	"agilepower/internal/sim"
	"agilepower/internal/vm"
	"agilepower/internal/workload"
)

// The incremental planner must be indistinguishable from the full-scan
// planner: same forecasts, same census, same packing, same actions,
// bit for bit, under arbitrary churn. These tests drive paired worlds
// — one manager per mode, identical in every other respect — through
// scripted adds, removes, crashes, maintenance, injected transition
// faults (driving quarantines), and optionally a lossy control plane
// (driving suspect/dead liveness), comparing the planning state at
// every checkpoint.

// parityEvent is one scripted churn action, applied identically to
// both worlds.
type parityEvent struct {
	at    sim.Time
	kind  string // "add", "remove", "crash", "maint-in", "maint-out"
	host  host.ID
	vm    vm.ID
	trace int // index into the shared trace pool (kind "add")
}

// parityScript generates a deterministic churn script from a seed. The
// script — not the worlds — owns the randomness, so both sides see the
// exact same sequence.
func parityScript(seed uint64, hosts int, vms int, horizon sim.Time) []parityEvent {
	rng := sim.NewRNG(seed)
	var evs []parityEvent
	at := func() sim.Time { return sim.Time(rng.Range(0.1, 0.9) * float64(horizon)) }
	for i := 0; i < 6; i++ {
		evs = append(evs, parityEvent{at: at(), kind: "add", trace: rng.Intn(8)})
	}
	for i := 0; i < 4; i++ {
		evs = append(evs, parityEvent{at: at(), kind: "remove", vm: vm.ID(rng.Intn(vms) + 1)})
	}
	for i := 0; i < 2; i++ {
		evs = append(evs, parityEvent{at: at(), kind: "crash", host: host.ID(rng.Intn(hosts) + 1)})
	}
	h := host.ID(rng.Intn(hosts) + 1)
	evs = append(evs, parityEvent{at: horizon / 4, kind: "maint-in", host: h})
	evs = append(evs, parityEvent{at: horizon / 2, kind: "maint-out", host: h})
	return evs
}

// parityWorld is one side of the paired simulation.
type parityWorld struct {
	eng *sim.Engine
	cl  *cluster.Cluster
	m   *Manager
}

// buildParityWorld constructs one world: identical fleet, workloads,
// faults, and script on both sides; only the planning mode differs.
func buildParityWorld(t *testing.T, mode IncrementalMode, traces []*workload.Trace,
	script []parityEvent, withPlane bool) *parityWorld {
	t.Helper()
	const nHosts, nVMs = 16, 64
	eng := sim.NewEngine(7)
	cl, err := cluster.New(eng, cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nHosts; i++ {
		if _, err := cl.AddHost(host.Config{Cores: 16, MemoryGB: 64}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nVMs; i++ {
		cfg := vm.Config{VCPUs: 4, MemoryGB: 4, Trace: traces[i%len(traces)]}
		if _, err := cl.AddVM(cfg, host.ID(i%nHosts+1)); err != nil {
			t.Fatal(err)
		}
	}
	// A few injected transition failures with a tight retry budget so
	// the script also exercises retries and quarantines.
	cl.InjectFaults(&scriptFaults{sleepFails: 4, wakeFails: 2, migFails: 3},
		&scriptFaults{migFails: 3})
	m, err := NewManager(cl, Config{
		Policy:               DPMS3,
		Period:               5 * time.Minute,
		MaxTransitionRetries: 1,
		Incremental:          mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	var cp *ctrlplane.Plane
	if withPlane {
		cp, err = ctrlplane.New(eng, cl, ctrlplane.Config{
			CmdDelay: 40 * time.Millisecond, CmdJitter: 20 * time.Millisecond,
			CmdLossProb: 0.05,
		}, m.Counters())
		if err != nil {
			t.Fatal(err)
		}
		m.AttachControlPlane(cp)
	}
	for _, ev := range script {
		ev := ev
		eng.ScheduleFunc(ev.at, func() {
			switch ev.kind {
			case "add":
				cl.AddPendingVM(vm.Config{VCPUs: 2, MemoryGB: 4, Trace: traces[ev.trace]})
			case "remove":
				cl.RemoveVM(ev.vm) // may fail (migrating/gone) — identically on both sides
			case "crash":
				cl.CrashHost(ev.host, 30*time.Minute)
			case "maint-in":
				m.EnterMaintenance(ev.host)
			case "maint-out":
				m.ExitMaintenance(ev.host)
			}
		})
	}
	cl.Start()
	m.Start()
	if cp != nil {
		cp.Start()
	}
	return &parityWorld{eng: eng, cl: cl, m: m}
}

func compareHosts(t *testing.T, what string, a, b []*host.Host) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s length diverged: %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		if a[i].ID() != b[i].ID() {
			t.Fatalf("%s[%d] diverged: host %d vs %d", what, i, a[i].ID(), b[i].ID())
		}
	}
}

// comparePlanning asserts every planning intermediate and output is
// bitwise identical across the two worlds: forecasts, census classes,
// the sorted packing plan, load vectors, and the action counters.
func comparePlanning(t *testing.T, a, b *parityWorld) {
	t.Helper()
	if a.m.stats != b.m.stats {
		t.Fatalf("stats diverged:\n  incremental %+v\n  full-scan   %+v", a.m.stats, b.m.stats)
	}
	fa, fb := a.m.observeAll(), b.m.observeAll()
	if len(fa) != len(fb) {
		t.Fatalf("forecast vector length diverged: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("forecast for vm %d diverged: %v vs %v", i+1, fa[i], fb[i])
		}
	}
	if ta, tb := a.m.totalForecast(fa), b.m.totalForecast(fb); ta != tb {
		t.Fatalf("total forecast diverged: %v vs %v", ta, tb)
	}
	ca, cb := a.m.takeCensus(), b.m.takeCensus()
	compareHosts(t, "serving", ca.serving, cb.serving)
	compareHosts(t, "evacuating", ca.evacuating, cb.evacuating)
	compareHosts(t, "waking", ca.waking, cb.waking)
	compareHosts(t, "sleeping", ca.sleeping, cb.sleeping)
	compareHosts(t, "entering", ca.entering, cb.entering)
	ha, ka, oka := a.m.packServing(fa, ca)
	hb, kb, okb := b.m.packServing(fb, cb)
	if ka != kb || oka != okb {
		t.Fatalf("packing diverged: k=%d ok=%v vs k=%d ok=%v", ka, oka, kb, okb)
	}
	compareHosts(t, "plan", ha, hb)
	la, lb := a.m.hostForecastLoads(fa), b.m.hostForecastLoads(fb)
	if len(la) != len(lb) {
		t.Fatalf("load vector length diverged: %d vs %d", len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("load for host %d diverged: %v vs %v", i+1, la[i], lb[i])
		}
	}
}

// TestIncrementalPlanningParity is the property test: across random
// churn scripts — pending arrivals, departures, crashes, maintenance,
// injected transition faults driving retries and quarantines — the
// incremental and full-scan planners agree on every intermediate at
// every checkpoint.
func TestIncrementalPlanningParity(t *testing.T) {
	const horizon = 8 * time.Hour
	for seed := uint64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			trng := sim.NewRNG(seed * 101)
			traces := make([]*workload.Trace, 8)
			for i := range traces {
				if i%2 == 0 {
					traces[i] = workload.Diurnal(trng.Fork(), workload.DiurnalSpec{
						BaseCores: 0.4, PeakCores: 2.5,
					})
				} else {
					traces[i] = workload.Constant(trng.Range(0.5, 2))
				}
			}
			script := parityScript(seed, 16, 64, sim.Time(horizon))
			a := buildParityWorld(t, IncrementalOn, traces, script, false)
			b := buildParityWorld(t, IncrementalOff, traces, script, false)
			for hour := 1; hour <= 8; hour++ {
				to := sim.Time(hour) * sim.Time(time.Hour)
				a.eng.RunUntil(to)
				b.eng.RunUntil(to)
				comparePlanning(t, a, b)
			}
		})
	}
}

// TestIncrementalPlanningParityCtrlPlane repeats the parity property
// under a lossy, delayed control plane, so liveness transitions
// (suspect, presumed-dead, recovery) and asynchronous command
// completions also hit the incremental invalidation paths.
func TestIncrementalPlanningParityCtrlPlane(t *testing.T) {
	const horizon = 8 * time.Hour
	for seed := uint64(1); seed <= 2; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			trng := sim.NewRNG(seed * 131)
			traces := make([]*workload.Trace, 8)
			for i := range traces {
				if i%2 == 0 {
					traces[i] = workload.Diurnal(trng.Fork(), workload.DiurnalSpec{
						BaseCores: 0.4, PeakCores: 2.5,
					})
				} else {
					traces[i] = workload.Constant(trng.Range(0.5, 2))
				}
			}
			script := parityScript(seed+10, 16, 64, sim.Time(horizon))
			a := buildParityWorld(t, IncrementalOn, traces, script, true)
			b := buildParityWorld(t, IncrementalOff, traces, script, true)
			for hour := 1; hour <= 8; hour++ {
				to := sim.Time(hour) * sim.Time(time.Hour)
				a.eng.RunUntil(to)
				b.eng.RunUntil(to)
				comparePlanning(t, a, b)
			}
		})
	}
}

// TestManagerStepSteadyStateAllocFree pins the tentpole's steady-state
// contract: on a quiescent fleet — no pending VMs, no feasible
// consolidation, demand below the wake threshold, no hot hosts — a
// cached control step allocates nothing at all.
func TestManagerStepSteadyStateAllocFree(t *testing.T) {
	eng := sim.NewEngine(1)
	cl, err := cluster.New(eng, cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	const nHosts = 64
	for i := 0; i < nHosts; i++ {
		if _, err := cl.AddHost(host.Config{Cores: 16, MemoryGB: 256}); err != nil {
			t.Fatal(err)
		}
	}
	// 8 VMs per host at ~1.675 cores each: per-host load ≈ 13.4 stays
	// under the 0.90·16 load-balance threshold, the fleet total
	// (≈857.6) stays under the 0.85·1024 wake threshold, but exceeds
	// the Σ 0.70·16 packing capacity (716.8) so MinBins proves every
	// consolidation prefix infeasible without packing anything.
	demands := []float64{1.60, 1.65, 1.70, 1.75}
	for i := 0; i < nHosts*8; i++ {
		cfg := vm.Config{VCPUs: 2, MemoryGB: 8, Trace: workload.Constant(demands[i%4])}
		if _, err := cl.AddVM(cfg, host.ID(i%nHosts+1)); err != nil {
			t.Fatal(err)
		}
	}
	m, err := NewManager(cl, Config{Policy: DPMS3, Incremental: IncrementalOn})
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	m.Start()
	eng.RunUntil(time.Hour)
	if allocs := testing.AllocsPerRun(100, func() { m.step() }); allocs != 0 {
		t.Fatalf("steady-state control step allocates: %v allocs/op, want 0", allocs)
	}
}
