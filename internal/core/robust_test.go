package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"agilepower/internal/cluster"
	"agilepower/internal/faults"
	"agilepower/internal/host"
	"agilepower/internal/migrate"
	"agilepower/internal/power"
	"agilepower/internal/sim"
	"agilepower/internal/vm"
	"agilepower/internal/workload"
)

// scriptFaults fails the first N transitions/migrations of each kind,
// then injects nothing — deterministic by construction.
type scriptFaults struct {
	sleepFails, wakeFails, migFails int
}

func (s *scriptFaults) SleepFault(power.State) power.Fault {
	if s.sleepFails > 0 {
		s.sleepFails--
		return power.Fault{Fail: true}
	}
	return power.Fault{}
}

func (s *scriptFaults) WakeFault(power.State) power.Fault {
	if s.wakeFails > 0 {
		s.wakeFails--
		return power.Fault{Fail: true}
	}
	return power.Fault{}
}

func (s *scriptFaults) MigrationFault(float64) migrate.Fault {
	if s.migFails > 0 {
		s.migFails--
		return migrate.Fault{Fail: true}
	}
	return migrate.Fault{}
}

// runFaulted is runScenario with fault injectors installed before the
// cluster starts.
func runFaulted(t *testing.T, nHosts int, traces []*workload.Trace, cfg Config,
	horizon time.Duration, pf power.FaultInjector, mf migrate.FaultInjector) (*cluster.Cluster, *Manager) {
	t.Helper()
	eng := sim.NewEngine(42)
	cl, err := cluster.New(eng, cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nHosts; i++ {
		if _, err := cl.AddHost(host.Config{Cores: 16, MemoryGB: 64}); err != nil {
			t.Fatal(err)
		}
	}
	for i, tr := range traces {
		on := host.ID(i%nHosts + 1)
		if _, err := cl.AddVM(vm.Config{VCPUs: 8, MemoryGB: 8, Trace: tr}, on); err != nil {
			t.Fatal(err)
		}
	}
	cl.InjectFaults(pf, mf)
	m, err := NewManager(cl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	m.Start()
	eng.RunUntil(sim.Time(horizon))
	cl.Flush()
	return cl, m
}

func TestSuspendRetriesExhaustedQuarantinesHost(t *testing.T) {
	// One VM on host 1, host 2 empty: DPM parks host 2. Every suspend
	// fails, so the manager retries once, then quarantines the host and
	// keeps it on (graceful degradation).
	cfg := Config{
		Policy:               DPMS3,
		MaxTransitionRetries: 1,
		RetryBackoffBase:     30 * time.Second,
		RetryBackoffMax:      time.Minute,
		QuarantineHold:       10 * time.Hour,
	}
	inj := &scriptFaults{sleepFails: 100}
	cl, m := runFaulted(t, 2, flatTraces(1, 2), cfg, 2*time.Hour, inj, inj)

	c := m.Counters()
	if got := c.Get(CtrSuspendFailures); got != 2 {
		t.Fatalf("suspend failures = %d, want 2 (initial + one retry)", got)
	}
	if got := c.Get(CtrTransitionRetries); got != 1 {
		t.Fatalf("transition retries = %d, want 1", got)
	}
	if got := c.Get(CtrQuarantines); got != 1 {
		t.Fatalf("quarantines = %d, want 1", got)
	}
	if got := c.Get(CtrDegradedKeepOn); got != 1 {
		t.Fatalf("degraded keep-on = %d, want 1", got)
	}
	if !m.Quarantined(2) {
		t.Fatal("host 2 not quarantined after exhausting retries")
	}
	// Degradation keeps the host serving, never stuck mid-transition.
	h, _ := cl.Host(2)
	if !h.Available() {
		t.Fatal("quarantined host not returned to service")
	}
	sf, _, _ := cl.TransitionFaultStats()
	if sf != 2 {
		t.Fatalf("machine-level suspend failures = %d, want 2", sf)
	}
}

func TestWakeFailureRetriedUntilHostReturns(t *testing.T) {
	// Demand is flat-low for 4 hours (host 2 parks), then steps far
	// above one host's capacity: the manager must wake host 2, whose
	// first wake falls back asleep.
	lowHigh := make([]float64, 16)
	for i := range lowHigh {
		if i < 8 {
			lowHigh[i] = 1
		} else {
			lowHigh[i] = 8
		}
	}
	tr, err := workload.NewTrace(30*time.Minute, lowHigh)
	if err != nil {
		t.Fatal(err)
	}
	traces := []*workload.Trace{tr, tr, tr}
	cfg := Config{
		Policy:           DPMS3,
		RetryBackoffBase: 30 * time.Second,
	}
	inj := &scriptFaults{wakeFails: 1}
	cl, m := runFaulted(t, 2, traces, cfg, 8*time.Hour, inj, inj)

	c := m.Counters()
	if got := c.Get(CtrWakeFailures); got != 1 {
		t.Fatalf("wake failures = %d, want 1", got)
	}
	if got := c.Get(CtrTransitionRetries); got < 1 {
		t.Fatalf("transition retries = %d, want >= 1", got)
	}
	// The retry brought the host back: under surge load everything runs.
	for _, h := range cl.Hosts() {
		if !h.Available() {
			t.Fatalf("host %d still down under surge load", h.ID())
		}
	}
	if m.Quarantined(1) || m.Quarantined(2) {
		t.Fatal("single wake failure must not quarantine")
	}
	_, wf, _ := cl.TransitionFaultStats()
	if wf != 1 {
		t.Fatalf("machine-level wake failures = %d, want 1", wf)
	}
}

func TestMigrationAbortReplansAndRetries(t *testing.T) {
	// Two lightly-loaded VMs on separate hosts: consolidation moves one
	// across. The first attempt aborts mid-flight; the manager re-plans
	// and retries after the backoff, and the move eventually lands.
	cfg := Config{
		Policy:                DPMS3,
		MigrationRetryBackoff: time.Minute,
	}
	inj := &scriptFaults{migFails: 1}
	cl, m := runFaulted(t, 2, flatTraces(2, 2), cfg, 4*time.Hour, inj, inj)

	c := m.Counters()
	if got := c.Get(CtrMigrationsAborted); got != 1 {
		t.Fatalf("migrations aborted = %d, want 1", got)
	}
	if got := c.Get(CtrMigrationReplans); got < 1 {
		t.Fatalf("migration replans = %d, want >= 1", got)
	}
	st := cl.Migrations().Stats()
	if st.Aborted != 1 || st.Completed < 1 {
		t.Fatalf("migration stats = %+v, want 1 abort and a completed retry", st)
	}
	// Consolidation finished despite the fault: one host sleeps.
	if m.Stats().Sleeps == 0 {
		t.Fatal("consolidation never parked a host after the aborted move")
	}
}

// robustFingerprint runs a faulted scenario with the real seeded
// injector and flattens everything timing-sensitive — the manager's
// counters, migration stats, and the full event log — into one string.
func robustFingerprint(t *testing.T) string {
	t.Helper()
	eng := sim.NewEngine(42)
	cl, err := cluster.New(eng, cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := cl.AddHost(host.Config{Cores: 16, MemoryGB: 64}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		on := host.ID(i%4 + 1)
		if _, err := cl.AddVM(vm.Config{VCPUs: 4, MemoryGB: 8, Trace: workload.Constant(2)}, on); err != nil {
			t.Fatal(err)
		}
	}
	inj, err := faults.New(eng, faults.Preset(0.4))
	if err != nil {
		t.Fatal(err)
	}
	cl.InjectFaults(inj, inj)
	m, err := NewManager(cl, Config{Policy: DPMS3, RetryBackoffBase: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	m.Start()
	eng.RunUntil(sim.Time(6 * time.Hour))
	cl.Flush()

	out := ""
	for _, name := range m.Counters().Names() {
		out += fmt.Sprintf("%s=%d\n", name, m.Counters().Get(name))
	}
	out += fmt.Sprintf("mig=%+v\n", cl.Migrations().Stats())
	sf, wf, cr := cl.TransitionFaultStats()
	out += fmt.Sprintf("faults=%d/%d/%d\n", sf, wf, cr)
	for _, e := range cl.Events().All() {
		out += e.String() + "\n"
	}
	return out
}

func TestBackoffScheduleDeterministicAcrossReruns(t *testing.T) {
	// Same seed → the whole recovery timeline (every retry instant,
	// every backoff expiry, every re-plan) replays byte-identically.
	a := robustFingerprint(t)
	b := robustFingerprint(t)
	if a != b {
		t.Fatalf("faulted run diverged across reruns of the same seed:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	// And it actually exercised the retry machinery.
	if a == "" || !strings.Contains(a, "transition_retries") {
		t.Fatalf("fingerprint shows no retries — fault rate too low?\n%s", a)
	}
}

func TestBackoffCappedExponential(t *testing.T) {
	eng := sim.NewEngine(1)
	cl, _ := cluster.New(eng, cluster.Config{})
	m, err := NewManager(cl, Config{
		Policy:           DPMS3,
		RetryBackoffBase: 10 * time.Second,
		RetryBackoffMax:  75 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{10 * time.Second, 20 * time.Second, 40 * time.Second,
		75 * time.Second, 75 * time.Second}
	for i, w := range want {
		if got := m.backoff(i + 1); got != w {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestQuarantineExpiresLazily(t *testing.T) {
	// The hold is never swept by a timer: it expires the first time
	// someone asks after the deadline, and the expired entry is dropped.
	eng := sim.NewEngine(1)
	cl, err := cluster.New(eng, cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.AddHost(host.Config{Cores: 16, MemoryGB: 64}); err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(cl, Config{Policy: DPMS3, QuarantineHold: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	m.quarantine(1)
	if !m.Quarantined(1) {
		t.Fatal("host not quarantined right after the hold starts")
	}
	eng.RunUntil(sim.Time(time.Hour - time.Second))
	if !m.Quarantined(1) {
		t.Fatal("hold expired early")
	}
	eng.RunUntil(sim.Time(time.Hour))
	if m.Quarantined(1) {
		t.Fatal("hold survived its deadline")
	}
	if len(m.quarantined) != 0 {
		t.Fatalf("expired hold not dropped from the map: %v", m.quarantined)
	}
	// Unknown hosts are simply not quarantined.
	if m.Quarantined(99) {
		t.Fatal("unknown host reported quarantined")
	}
}

func TestQuarantinedHostEligibleAgainAfterHold(t *testing.T) {
	// Two suspend failures exhaust the single retry and quarantine host
	// 2 back into service. Once the hold lapses the host is a power
	// candidate again; the injector is spent by then, so the re-park
	// finally takes and the host ends asleep.
	cfg := Config{
		Policy:               DPMS3,
		MaxTransitionRetries: 1,
		RetryBackoffBase:     30 * time.Second,
		RetryBackoffMax:      time.Minute,
		QuarantineHold:       30 * time.Minute,
	}
	inj := &scriptFaults{sleepFails: 2}
	cl, m := runFaulted(t, 2, flatTraces(1, 2), cfg, 3*time.Hour, inj, inj)

	c := m.Counters()
	if got := c.Get(CtrQuarantines); got != 1 {
		t.Fatalf("quarantines = %d, want 1", got)
	}
	if got := c.Get(CtrSuspendFailures); got != 2 {
		t.Fatalf("suspend failures = %d, want 2", got)
	}
	if m.Quarantined(2) {
		t.Fatal("hold still active hours after it lapsed")
	}
	if m.Stats().Sleeps == 0 {
		t.Fatal("host never re-parked after the hold lapsed")
	}
	h, _ := cl.Host(2)
	if h.Available() {
		t.Fatal("host still up: the post-hold park never took")
	}
}

func TestRequarantineAfterFreshRetryExhaustion(t *testing.T) {
	// A host that keeps failing its suspends cycles: retries exhaust,
	// quarantine, hold lapses, the manager tries again with a fresh
	// retry budget, and the host is re-quarantined.
	cfg := Config{
		Policy:               DPMS3,
		MaxTransitionRetries: 1,
		RetryBackoffBase:     30 * time.Second,
		RetryBackoffMax:      time.Minute,
		QuarantineHold:       30 * time.Minute,
	}
	inj := &scriptFaults{sleepFails: 100}
	cl, m := runFaulted(t, 2, flatTraces(1, 2), cfg, 3*time.Hour, inj, inj)

	c := m.Counters()
	if got := c.Get(CtrQuarantines); got < 2 {
		t.Fatalf("quarantines = %d, want >= 2 (re-quarantined after the hold)", got)
	}
	if got := c.Get(CtrDegradedKeepOn); got < 2 {
		t.Fatalf("degraded keep-on = %d, want >= 2", got)
	}
	// Each cycle spends the full fresh budget: failures track cycles.
	if sf := c.Get(CtrSuspendFailures); sf < 4 {
		t.Fatalf("suspend failures = %d, want >= 4 (2 per cycle)", sf)
	}
	// Graceful degradation holds throughout: the host keeps serving.
	h, _ := cl.Host(2)
	if !h.Available() {
		t.Fatal("unparkable host not returned to service")
	}
}

func TestRobustConfigDefaults(t *testing.T) {
	eng := sim.NewEngine(1)
	cl, _ := cluster.New(eng, cluster.Config{})
	m, err := NewManager(cl, Config{Policy: DPMS3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.Config()
	if cfg.MaxTransitionRetries != 3 || cfg.RetryBackoffBase != 30*time.Second ||
		cfg.RetryBackoffMax != 10*time.Minute || cfg.QuarantineHold != time.Hour ||
		cfg.MigrationRetryBackoff != 2*time.Minute {
		t.Fatalf("robustness defaults wrong: %+v", cfg)
	}
	// Backoff cap below base is rejected.
	bad := Config{Policy: DPMS3, RetryBackoffBase: time.Minute, RetryBackoffMax: time.Second}
	if _, err := NewManager(cl, bad); err == nil {
		t.Fatal("accepted backoff max below base")
	}
}
