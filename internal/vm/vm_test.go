package vm

import (
	"testing"
	"time"

	"agilepower/internal/workload"
)

func validConfig() Config {
	return Config{
		Name:     "web-1",
		VCPUs:    4,
		MemoryGB: 8,
		Trace:    workload.Constant(2),
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero vcpus", func(c *Config) { c.VCPUs = 0 }},
		{"negative vcpus", func(c *Config) { c.VCPUs = -1 }},
		{"zero memory", func(c *Config) { c.MemoryGB = 0 }},
		{"nil trace", func(c *Config) { c.Trace = nil }},
		{"slo above 1", func(c *Config) { c.SLOTarget = 1.5 }},
		{"negative slo", func(c *Config) { c.SLOTarget = -0.1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := validConfig()
			tc.mut(&c)
			if _, err := New(1, c); err == nil {
				t.Errorf("New accepted config with %s", tc.name)
			}
		})
	}
}

func TestNewDefaults(t *testing.T) {
	c := validConfig()
	c.Name = ""
	v, err := New(7, c)
	if err != nil {
		t.Fatal(err)
	}
	if v.Name() != "vm-7" {
		t.Fatalf("default name = %q", v.Name())
	}
	if v.SLOTarget() != 0.95 {
		t.Fatalf("default SLO = %v, want 0.95", v.SLOTarget())
	}
	if v.ID() != 7 {
		t.Fatalf("ID = %v", v.ID())
	}
}

func TestDemandCappedAtVCPUs(t *testing.T) {
	c := validConfig()
	c.Trace = workload.Constant(100) // demands far more than 4 vcpus
	v, err := New(1, c)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Demand(0); got != 4 {
		t.Fatalf("demand = %v, want cap at 4", got)
	}
}

func TestDemandFollowsTrace(t *testing.T) {
	tr, _ := workload.NewTrace(time.Minute, []float64{1, 3})
	c := validConfig()
	c.Trace = tr
	v, _ := New(1, c)
	if v.Demand(0) != 1 {
		t.Fatalf("demand(0) = %v", v.Demand(0))
	}
	if v.Demand(time.Minute) != 3 {
		t.Fatalf("demand(1m) = %v", v.Demand(time.Minute))
	}
	if v.NextDemandChange(30*time.Second) != time.Minute {
		t.Fatalf("next change = %v", v.NextDemandChange(30*time.Second))
	}
}

func TestAccessors(t *testing.T) {
	v, _ := New(3, validConfig())
	if v.VCPUs() != 4 || v.MemoryGB() != 8 || v.Name() != "web-1" {
		t.Fatal("accessors return wrong values")
	}
	if v.Trace() == nil {
		t.Fatal("Trace() nil")
	}
	if v.String() != "web-1(4vcpu,8GB)" {
		t.Fatalf("String = %q", v.String())
	}
}

func TestResourceTripleAccessors(t *testing.T) {
	c := validConfig()
	c.Shares = 2000
	c.Group = "db"
	c.ReservedCores = 1.5
	c.LimitCores = 3
	v, err := New(9, c)
	if err != nil {
		t.Fatal(err)
	}
	if v.Shares() != 2000 || v.Group() != "db" {
		t.Fatalf("shares/group = %d/%q", v.Shares(), v.Group())
	}
	if v.ReservedCores() != 1.5 || v.LimitCores() != 3 {
		t.Fatalf("reservation/limit = %v/%v", v.ReservedCores(), v.LimitCores())
	}
}
