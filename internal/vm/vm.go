// Package vm models virtual machines: their resource sizing, their
// time-varying CPU demand (bound to a workload trace), and the
// service-level expectation against which delivered capacity is
// scored.
package vm

import (
	"fmt"
	"time"

	"agilepower/internal/workload"
)

// ID identifies a VM within a cluster.
type ID int

// VM is a virtual machine. Memory matters for migration cost; vCPUs
// cap how much CPU the VM can consume; the trace drives demand.
type VM struct {
	id   ID
	name string

	vcpus    float64 // maximum CPU consumption in cores
	memoryGB float64

	trace *workload.Trace

	// sloTarget is the fraction of demanded CPU the VM must receive to
	// be considered healthy (e.g. 0.95). Deliveries below the target
	// count as SLA violation time.
	sloTarget float64

	// shares weight the VM's claim under contention, hypervisor-style
	// (default 1000). A 2000-share VM gets twice the allocation of a
	// 1000-share VM per unit of demand when the host is oversubscribed.
	shares int

	// group names an anti-affinity group: VMs sharing a non-empty
	// group (replicas of one service) must never share a host, so one
	// host failure cannot take out the whole service. Consolidation
	// has to respect this — the availability constraint that caps how
	// tightly a cluster can pack.
	group string

	// reserved is the guaranteed CPU minimum in cores: under
	// contention the VM receives at least min(demand, reserved) before
	// shares divide the rest. Hosts admit VMs only while the sum of
	// reservations fits their capacity.
	reserved float64
	// limit caps delivered CPU below the vCPU count (0 = no extra
	// cap). The hypervisor triple: reservation / limit / shares.
	limit float64
}

// Config describes a VM to create.
type Config struct {
	Name     string
	VCPUs    float64
	MemoryGB float64
	Trace    *workload.Trace
	// SLOTarget defaults to 0.95 when zero.
	SLOTarget float64
	// Shares defaults to 1000 when zero.
	Shares int
	// Group is an optional anti-affinity group name: VMs sharing a
	// non-empty group are never co-located.
	Group string
	// ReservedCores guarantees a CPU minimum (default 0).
	ReservedCores float64
	// LimitCores caps delivered CPU below VCPUs (0 = uncapped).
	LimitCores float64
}

// New validates cfg and builds a VM with the given id.
func New(id ID, cfg Config) (*VM, error) {
	if cfg.VCPUs <= 0 {
		return nil, fmt.Errorf("vm %q: vcpus %v must be positive", cfg.Name, cfg.VCPUs)
	}
	if cfg.MemoryGB <= 0 {
		return nil, fmt.Errorf("vm %q: memory %v GB must be positive", cfg.Name, cfg.MemoryGB)
	}
	if cfg.Trace == nil {
		return nil, fmt.Errorf("vm %q: nil demand trace", cfg.Name)
	}
	if cfg.SLOTarget < 0 || cfg.SLOTarget > 1 {
		return nil, fmt.Errorf("vm %q: slo target %v outside [0,1]", cfg.Name, cfg.SLOTarget)
	}
	if cfg.Shares < 0 {
		return nil, fmt.Errorf("vm %q: negative shares %d", cfg.Name, cfg.Shares)
	}
	if cfg.ReservedCores < 0 || cfg.ReservedCores > cfg.VCPUs {
		return nil, fmt.Errorf("vm %q: reservation %v outside [0, vcpus=%v]", cfg.Name, cfg.ReservedCores, cfg.VCPUs)
	}
	if cfg.LimitCores < 0 || (cfg.LimitCores > 0 && cfg.LimitCores > cfg.VCPUs) {
		return nil, fmt.Errorf("vm %q: limit %v outside [0, vcpus=%v]", cfg.Name, cfg.LimitCores, cfg.VCPUs)
	}
	if cfg.LimitCores > 0 && cfg.ReservedCores > cfg.LimitCores {
		return nil, fmt.Errorf("vm %q: reservation %v above limit %v", cfg.Name, cfg.ReservedCores, cfg.LimitCores)
	}
	slo := cfg.SLOTarget
	if slo == 0 {
		slo = 0.95
	}
	shares := cfg.Shares
	if shares == 0 {
		shares = 1000
	}
	name := cfg.Name
	if name == "" {
		name = fmt.Sprintf("vm-%d", id)
	}
	return &VM{
		id:        id,
		name:      name,
		vcpus:     cfg.VCPUs,
		memoryGB:  cfg.MemoryGB,
		trace:     cfg.Trace,
		sloTarget: slo,
		shares:    shares,
		group:     cfg.Group,
		reserved:  cfg.ReservedCores,
		limit:     cfg.LimitCores,
	}, nil
}

// ID returns the VM's identifier.
func (v *VM) ID() ID { return v.id }

// Name returns the VM's display name.
func (v *VM) Name() string { return v.name }

// VCPUs returns the VM's CPU cap in cores.
func (v *VM) VCPUs() float64 { return v.vcpus }

// MemoryGB returns the VM's memory footprint.
func (v *VM) MemoryGB() float64 { return v.memoryGB }

// SLOTarget returns the delivered/demanded fraction the VM requires.
func (v *VM) SLOTarget() float64 { return v.sloTarget }

// Shares returns the VM's contention weight.
func (v *VM) Shares() int { return v.shares }

// Group returns the VM's anti-affinity group ("" = unconstrained).
func (v *VM) Group() string { return v.group }

// ReservedCores returns the guaranteed CPU minimum.
func (v *VM) ReservedCores() float64 { return v.reserved }

// LimitCores returns the delivery cap (0 = none beyond vCPUs).
func (v *VM) LimitCores() float64 { return v.limit }

// Trace returns the VM's demand trace.
func (v *VM) Trace() *workload.Trace { return v.trace }

// Demand returns the CPU the VM wants at virtual time at, capped at
// its vCPU count and its limit.
func (v *VM) Demand(at time.Duration) float64 {
	d := v.trace.At(at)
	if d > v.vcpus {
		d = v.vcpus
	}
	if v.limit > 0 && d > v.limit {
		d = v.limit
	}
	return d
}

// NextDemandChange returns the next time after at when the VM's demand
// can change.
func (v *VM) NextDemandChange(at time.Duration) time.Duration {
	return v.trace.NextChange(at)
}

// String implements fmt.Stringer.
func (v *VM) String() string {
	return fmt.Sprintf("%s(%gvcpu,%gGB)", v.name, v.vcpus, v.memoryGB)
}
