// Package faults is the deterministic fault-injection subsystem: a
// seed-driven injector that perturbs power-state transitions, live
// migrations, and host liveness so the management layer's robustness
// can be measured instead of assumed.
//
// The paper's core claim is about *risk*: minute-scale S5 transitions
// make power-gating decisions dangerous, and low-latency S3 states
// shrink that danger. A fault-free simulation never exercises the risk
// side of that trade-off. This package injects the failure modes real
// fleets see — suspends that do not take, resumes that fall back
// asleep, migrations that stall or abort at switchover, hosts that
// crash and need repair — all driven by a substream forked from the
// simulation RNG, so every run remains byte-for-byte reproducible from
// its seed.
//
// Dormancy contract: a Config with every probability at zero is
// Enabled() == false and callers must not construct an injector for
// it. A constructed injector draws randomness only for knobs whose
// probability is in (0, 1) (see sim.RNG.Bernoulli), so partial
// configurations perturb nothing they do not touch.
//
// Substream fork order: when several seed-driven subsystems are
// enabled together, the session forks their substreams in a fixed
// order — faults first, then ctrlplane — so a given (seed, config)
// pair always reproduces the same run.
package faults

import (
	"fmt"
	"time"

	"agilepower/internal/migrate"
	"agilepower/internal/power"
	"agilepower/internal/sim"
)

// Config selects which faults to inject and how hard.
type Config struct {
	// SuspendFailProb is the probability a sleep entry does not take:
	// the host burns the entry latency and settles back in S0.
	SuspendFailProb float64
	// WakeFailProb is the probability a sleep exit does not take: the
	// host burns the exit latency and falls back asleep.
	WakeFailProb float64
	// TransitionSlowProb is the probability a transition (either
	// direction) is slowed by an exponentially distributed extra
	// latency with mean TransitionSlowMean.
	TransitionSlowProb float64
	TransitionSlowMean time.Duration

	// MigrationFailProb is the probability a migration aborts at
	// switchover after its full pre-copy; the VM stays on its source.
	MigrationFailProb float64
	// MigrationStallProb is the probability a migration's pre-copy is
	// stretched by an exponentially distributed stall with mean
	// MigrationStallMean.
	MigrationStallProb float64
	MigrationStallMean time.Duration

	// CrashMTBF, when positive, gives each host an independent
	// exponential crash process with this mean time between crashes.
	// A crash takes the host down instantly; it returns to service
	// after an exponentially distributed repair delay with mean
	// CrashRepairMean. Crashes only strike available hosts — parked or
	// transitioning hosts are skipped (the process keeps ticking).
	CrashMTBF time.Duration
	// CrashRepairMean is the mean repair delay (default 10 minutes
	// when crashes are enabled).
	CrashRepairMean time.Duration
}

// Enabled reports whether the configuration injects anything at all.
// Disabled configurations must stay injector-free so runs are
// byte-identical to fault-unaware builds.
func (c Config) Enabled() bool {
	return c.SuspendFailProb > 0 || c.WakeFailProb > 0 ||
		(c.TransitionSlowProb > 0 && c.TransitionSlowMean > 0) ||
		c.MigrationFailProb > 0 ||
		(c.MigrationStallProb > 0 && c.MigrationStallMean > 0) ||
		c.CrashMTBF > 0
}

// Validate checks the configuration.
func (c Config) Validate() error {
	probs := []struct {
		name string
		v    float64
	}{
		{"suspend failure", c.SuspendFailProb},
		{"wake failure", c.WakeFailProb},
		{"transition slow", c.TransitionSlowProb},
		{"migration failure", c.MigrationFailProb},
		{"migration stall", c.MigrationStallProb},
	}
	for _, p := range probs {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s probability %v outside [0,1]", p.name, p.v)
		}
	}
	if c.TransitionSlowMean < 0 {
		return fmt.Errorf("faults: negative transition slow mean %v", c.TransitionSlowMean)
	}
	if c.MigrationStallMean < 0 {
		return fmt.Errorf("faults: negative migration stall mean %v", c.MigrationStallMean)
	}
	if c.CrashMTBF < 0 {
		return fmt.Errorf("faults: negative crash MTBF %v", c.CrashMTBF)
	}
	if c.CrashRepairMean < 0 {
		return fmt.Errorf("faults: negative crash repair mean %v", c.CrashRepairMean)
	}
	return nil
}

// Preset returns the standard fault mix at intensity rate ∈ [0, 1],
// the knob the robustness experiment sweeps. Rate 0 returns the zero
// Config (fully dormant); rising rates scale every failure mode
// together: suspend failures at the full rate, wake and migration
// switchover failures at half rate (resumes and switchovers are the
// rarer defects in practice), slowdowns at the full rate, and a crash
// process whose per-host MTBF shrinks as 50h/rate.
func Preset(rate float64) Config {
	if rate <= 0 {
		return Config{}
	}
	if rate > 1 {
		rate = 1
	}
	return Config{
		SuspendFailProb:    rate,
		WakeFailProb:       rate / 2,
		TransitionSlowProb: rate,
		TransitionSlowMean: 20 * time.Second,
		MigrationFailProb:  rate / 2,
		MigrationStallProb: rate,
		MigrationStallMean: 30 * time.Second,
		CrashMTBF:          time.Duration(float64(50*time.Hour) / rate),
		CrashRepairMean:    10 * time.Minute,
	}
}

// Stats count what the injector actually did.
type Stats struct {
	SuspendFaults   int
	WakeFaults      int
	SlowTransitions int
	MigrationFaults int
	MigrationStalls int
	CrashesFired    int
	CrashesSkipped  int // crash ticks that found the host unavailable
}

// Injector draws fault decisions from its own RNG substream. It
// implements power.FaultInjector and migrate.FaultInjector, and runs
// the per-host crash processes. Like everything else in the simulator
// it is single-threaded: one injector per engine.
type Injector struct {
	eng   *sim.Engine
	rng   *sim.RNG
	cfg   Config
	stats Stats
}

// New builds an injector for cfg, forking the engine's RNG so fault
// decisions consume an independent substream. cfg must be Enabled()
// and valid; constructing an injector for a dormant configuration is a
// caller bug because the fork alone perturbs the engine's stream.
func New(eng *sim.Engine, cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, fmt.Errorf("faults: refusing to build an injector for a dormant config")
	}
	if cfg.CrashMTBF > 0 && cfg.CrashRepairMean == 0 {
		cfg.CrashRepairMean = 10 * time.Minute
	}
	return &Injector{eng: eng, rng: eng.RNG().Fork(), cfg: cfg}, nil
}

// Config returns the injector's configuration.
func (i *Injector) Config() Config { return i.cfg }

// Tune replaces the injector's configuration at runtime (scenario
// fault-rate events). The new config is validated and the repair
// default applied; it may even be fully dormant — running crash
// processes pause (ticking without drawing randomness) until a later
// Tune re-arms them. Determinism is unaffected: every fault decision
// reads the config at its own event time, inside the engine, so a
// Tune scheduled as a simulation event lands identically on every
// replay.
func (i *Injector) Tune(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.CrashMTBF > 0 && cfg.CrashRepairMean == 0 {
		cfg.CrashRepairMean = 10 * time.Minute
	}
	i.cfg = cfg
	return nil
}

// Stats returns a snapshot of what has been injected so far.
func (i *Injector) Stats() Stats { return i.stats }

// slow draws the extra-latency decision shared by both transition
// directions: one Bernoulli plus, on success, one exponential draw.
func (i *Injector) slow() time.Duration {
	if i.cfg.TransitionSlowMean <= 0 {
		return 0
	}
	if !i.rng.Bernoulli(i.cfg.TransitionSlowProb) {
		return 0
	}
	i.stats.SlowTransitions++
	return time.Duration(i.rng.Exp(float64(i.cfg.TransitionSlowMean)))
}

// SleepFault implements power.FaultInjector.
func (i *Injector) SleepFault(power.State) power.Fault {
	f := power.Fault{Extra: i.slow()}
	if i.rng.Bernoulli(i.cfg.SuspendFailProb) {
		f.Fail = true
		i.stats.SuspendFaults++
	}
	return f
}

// WakeFault implements power.FaultInjector.
func (i *Injector) WakeFault(power.State) power.Fault {
	f := power.Fault{Extra: i.slow()}
	if i.rng.Bernoulli(i.cfg.WakeFailProb) {
		f.Fail = true
		i.stats.WakeFaults++
	}
	return f
}

// MigrationFault implements migrate.FaultInjector.
func (i *Injector) MigrationFault(float64) migrate.Fault {
	var f migrate.Fault
	if i.cfg.MigrationStallMean > 0 && i.rng.Bernoulli(i.cfg.MigrationStallProb) {
		f.Stall = time.Duration(i.rng.Exp(float64(i.cfg.MigrationStallMean)))
		i.stats.MigrationStalls++
	}
	if i.rng.Bernoulli(i.cfg.MigrationFailProb) {
		f.Fail = true
		i.stats.MigrationFaults++
	}
	return f
}

// ScheduleCrashes starts one independent crash process per host index
// in [0, hosts). At each tick the crash callback is invoked with the
// host index and an exponentially drawn repair delay; it reports
// whether the crash was applied (false when the host was asleep or
// mid-transition, in which case the process simply ticks again later).
// The next tick is always scheduled at repair + Exp(MTBF) past the
// current one, so a host that dodges a crash is not owed one sooner.
//
// Call it once, before the simulation runs, so event ordering is
// deterministic. It is a no-op when the config has no crash process.
func (i *Injector) ScheduleCrashes(hosts int, crash func(idx int, repair time.Duration) bool) {
	if i.cfg.CrashMTBF <= 0 {
		return
	}
	for idx := 0; idx < hosts; idx++ {
		i.scheduleCrash(idx, crash)
	}
}

// ScheduleCrashProcesses starts one crash process per host index
// unconditionally, paused while CrashMTBF is zero. Scenario scripts
// that Tune a crash rate in at runtime need the processes to exist
// from t=0 so the tick schedule is a pure function of the seed.
func (i *Injector) ScheduleCrashProcesses(hosts int, crash func(idx int, repair time.Duration) bool) {
	for idx := 0; idx < hosts; idx++ {
		i.scheduleCrash(idx, crash)
	}
}

func (i *Injector) scheduleCrash(idx int, crash func(idx int, repair time.Duration) bool) {
	if i.cfg.CrashMTBF <= 0 {
		// Paused: re-check each simulated hour without drawing
		// randomness, so a later Tune can re-arm the process with the
		// substream untouched (resume lag is at most one hour).
		i.eng.AfterFunc(time.Hour, func() { i.scheduleCrash(idx, crash) })
		return
	}
	wait := time.Duration(i.rng.Exp(float64(i.cfg.CrashMTBF)))
	i.eng.AfterFunc(wait, func() {
		repair := time.Duration(i.rng.Exp(float64(i.cfg.CrashRepairMean)))
		if crash(idx, repair) {
			i.stats.CrashesFired++
		} else {
			i.stats.CrashesSkipped++
		}
		i.scheduleCrash(idx, crash)
	})
}
