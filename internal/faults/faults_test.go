package faults

import (
	"testing"
	"time"

	"agilepower/internal/power"
	"agilepower/internal/sim"
)

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
	cases := []Config{
		{SuspendFailProb: 0.1},
		{WakeFailProb: 0.1},
		{TransitionSlowProb: 0.1, TransitionSlowMean: time.Second},
		{MigrationFailProb: 0.1},
		{MigrationStallProb: 0.1, MigrationStallMean: time.Second},
		{CrashMTBF: time.Hour},
	}
	for i, c := range cases {
		if !c.Enabled() {
			t.Errorf("case %d: %+v not enabled", i, c)
		}
	}
	// A slow/stall probability without a mean injects nothing.
	if (Config{TransitionSlowProb: 0.5}).Enabled() {
		t.Error("slow prob without mean reports enabled")
	}
	if (Config{MigrationStallProb: 0.5}).Enabled() {
		t.Error("stall prob without mean reports enabled")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SuspendFailProb: -0.1},
		{WakeFailProb: 1.5},
		{TransitionSlowProb: 2},
		{MigrationFailProb: -1},
		{MigrationStallProb: 7},
		{TransitionSlowMean: -time.Second},
		{MigrationStallMean: -time.Second},
		{CrashMTBF: -time.Hour},
		{CrashRepairMean: -time.Minute},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: %+v validated", i, c)
		}
	}
	if err := Preset(0.2).Validate(); err != nil {
		t.Fatalf("preset invalid: %v", err)
	}
}

func TestPreset(t *testing.T) {
	if Preset(0).Enabled() {
		t.Fatal("preset(0) not dormant")
	}
	if Preset(-1).Enabled() {
		t.Fatal("preset(-1) not dormant")
	}
	c := Preset(0.1)
	if c.SuspendFailProb != 0.1 || c.WakeFailProb != 0.05 || c.CrashMTBF != 500*time.Hour {
		t.Fatalf("preset(0.1) = %+v", c)
	}
	// Clamp above 1.
	if got := Preset(5).SuspendFailProb; got != 1 {
		t.Fatalf("preset(5) suspend prob = %v, want 1", got)
	}
}

func TestNewRefusesDormantConfig(t *testing.T) {
	if _, err := New(sim.NewEngine(1), Config{}); err == nil {
		t.Fatal("New accepted a dormant config")
	}
	if _, err := New(sim.NewEngine(1), Config{SuspendFailProb: 2}); err == nil {
		t.Fatal("New accepted an invalid config")
	}
}

// Same seed, same call sequence → identical decisions, the property
// every other determinism guarantee in the simulator rests on.
func TestInjectorDeterministicAcrossRuns(t *testing.T) {
	run := func() ([]power.Fault, []time.Duration) {
		inj, err := New(sim.NewEngine(7), Preset(0.3))
		if err != nil {
			t.Fatal(err)
		}
		var fs []power.Fault
		for i := 0; i < 50; i++ {
			fs = append(fs, inj.SleepFault(power.S3), inj.WakeFault(power.S3))
		}
		var stalls []time.Duration
		for i := 0; i < 50; i++ {
			stalls = append(stalls, inj.MigrationFault(8).Stall)
		}
		return fs, stalls
	}
	f1, s1 := run()
	f2, s2 := run()
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("transition fault %d differs: %+v vs %+v", i, f1[i], f2[i])
		}
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("stall %d differs: %v vs %v", i, s1[i], s2[i])
		}
	}
}

func TestInjectorActuallyInjects(t *testing.T) {
	inj, err := New(sim.NewEngine(3), Preset(0.5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		inj.SleepFault(power.S3)
		inj.WakeFault(power.S3)
		inj.MigrationFault(8)
	}
	st := inj.Stats()
	if st.SuspendFaults == 0 || st.WakeFaults == 0 || st.SlowTransitions == 0 ||
		st.MigrationFaults == 0 || st.MigrationStalls == 0 {
		t.Fatalf("expected all fault kinds at rate 0.5 over 200 draws: %+v", st)
	}
	// Rough sanity on rates: suspend failures should be near 100 of 200.
	if st.SuspendFaults < 60 || st.SuspendFaults > 140 {
		t.Fatalf("suspend faults %d wildly off p=0.5 over 200", st.SuspendFaults)
	}
}

func TestScheduleCrashes(t *testing.T) {
	eng := sim.NewEngine(5)
	cfg := Config{CrashMTBF: time.Hour, CrashRepairMean: 10 * time.Minute}
	inj, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	type hit struct {
		idx    int
		at     sim.Time
		repair time.Duration
	}
	var hits []hit
	inj.ScheduleCrashes(3, func(idx int, repair time.Duration) bool {
		hits = append(hits, hit{idx, eng.Now(), repair})
		return idx != 2 // host 2 always dodges
	})
	eng.RunUntil(sim.Time(24 * time.Hour))
	if len(hits) == 0 {
		t.Fatal("no crash ticks over 24h at 1h MTBF")
	}
	seen := map[int]bool{}
	for _, h := range hits {
		if h.idx < 0 || h.idx > 2 {
			t.Fatalf("crash for unknown host %d", h.idx)
		}
		if h.repair < 0 {
			t.Fatalf("negative repair %v", h.repair)
		}
		seen[h.idx] = true
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Fatalf("not every host's process ticked: %v", seen)
	}
	st := inj.Stats()
	if st.CrashesFired == 0 || st.CrashesSkipped == 0 {
		t.Fatalf("want both fired and skipped crashes, got %+v", st)
	}
	if st.CrashesFired+st.CrashesSkipped != len(hits) {
		t.Fatalf("stats %d+%d != %d ticks", st.CrashesFired, st.CrashesSkipped, len(hits))
	}
}

func TestScheduleCrashesNoopWithoutMTBF(t *testing.T) {
	eng := sim.NewEngine(5)
	inj, err := New(eng, Config{SuspendFailProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	inj.ScheduleCrashes(4, func(int, time.Duration) bool {
		t.Fatal("crash process ran without an MTBF")
		return false
	})
	eng.RunUntil(sim.Time(time.Hour))
}
