package migrate

import (
	"testing"
	"time"

	"agilepower/internal/sim"
)

// scriptMigInjector returns pre-scripted faults in order, then zero.
type scriptMigInjector struct{ faults []Fault }

func (s *scriptMigInjector) MigrationFault(float64) Fault {
	if len(s.faults) == 0 {
		return Fault{}
	}
	f := s.faults[0]
	s.faults = s.faults[1:]
	return f
}

func TestMigrationStallLengthensPreCopy(t *testing.T) {
	eng, m := newTestManager(t, 2)
	stall := 30 * time.Second
	m.SetFaultInjector(&scriptMigInjector{faults: []Fault{{Stall: stall}}})
	var done *Migration
	m.OnComplete(func(mg *Migration) { done = mg })
	mig, err := m.Start(1, 10, 20, 8)
	if err != nil {
		t.Fatal(err)
	}
	if mig.End != mig.Start+sim.Time(mig.Plan.Duration+stall) {
		t.Fatalf("End = %v, want plan %v + stall %v", mig.End, mig.Plan.Duration, stall)
	}
	eng.RunUntil(mig.End - 1)
	if done != nil {
		t.Fatal("completed before the stalled duration")
	}
	eng.RunUntil(mig.End)
	if done == nil {
		t.Fatal("stalled migration never completed")
	}
	st := m.Stats()
	if st.Stalled != 1 || st.StallTime != stall || st.Completed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMigrationFaultAborts(t *testing.T) {
	eng, m := newTestManager(t, 2)
	m.SetFaultInjector(&scriptMigInjector{faults: []Fault{{Fail: true}}})
	var failed, completed *Migration
	m.OnFailed(func(mg *Migration) { failed = mg })
	m.OnComplete(func(mg *Migration) { completed = mg })
	mig, err := m.Start(1, 10, 20, 8)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(mig.End)
	if completed != nil {
		t.Fatal("failed migration fired OnComplete")
	}
	if failed == nil || !failed.Failed {
		t.Fatalf("OnFailed not fired correctly: %+v", failed)
	}
	if m.Migrating(1) || m.HostLoad(10) != 0 || m.HostLoad(20) != 0 {
		t.Fatal("aborted migration still tracked")
	}
	st := m.Stats()
	if st.Aborted != 1 || st.Completed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The pre-copy traffic was spent despite the abort.
	if st.TrafficGB != mig.Plan.TrafficGB {
		t.Fatalf("traffic %v, want %v", st.TrafficGB, mig.Plan.TrafficGB)
	}
	// The VM can immediately be retried.
	if _, err := m.Start(1, 10, 30, 8); err != nil {
		t.Fatalf("retry rejected: %v", err)
	}
}

func TestFailHostAbortsTouchingMigrations(t *testing.T) {
	eng, m := newTestManager(t, 4)
	var failed []*Migration
	var completed []*Migration
	m.OnFailed(func(mg *Migration) { failed = append(failed, mg) })
	m.OnComplete(func(mg *Migration) { completed = append(completed, mg) })
	// Two migrations touch host 1 (as src and dst), one does not.
	if _, err := m.Start(1, 1, 2, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start(2, 3, 1, 8); err != nil {
		t.Fatal(err)
	}
	bystander, err := m.Start(3, 4, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if n := m.FailHost(1); n != 2 {
		t.Fatalf("FailHost aborted %d, want 2", n)
	}
	if len(failed) != 2 {
		t.Fatalf("OnFailed fired %d times, want 2", len(failed))
	}
	if m.Inflight() != 1 || !m.Migrating(3) {
		t.Fatal("bystander migration was disturbed")
	}
	if m.HostLoad(1) != 0 {
		t.Fatalf("host 1 load %d after FailHost", m.HostLoad(1))
	}
	// The cancelled completion events must not fire later.
	eng.RunUntil(bystander.End)
	if len(completed) != 1 || completed[0].VM != 3 {
		t.Fatalf("completions = %v, want just vm 3", len(completed))
	}
	st := m.Stats()
	if st.Aborted != 2 || st.Completed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFailHostNothingInflight(t *testing.T) {
	_, m := newTestManager(t, 2)
	if n := m.FailHost(7); n != 0 {
		t.Fatalf("FailHost on idle manager aborted %d", n)
	}
}
