package migrate

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"agilepower/internal/sim"
	"agilepower/internal/vm"
)

// Manager errors.
var (
	// ErrHostSaturated — starting the migration would exceed a host's
	// concurrent-migration limit.
	ErrHostSaturated = errors.New("migrate: host at concurrent migration limit")
	// ErrAlreadyMigrating — the VM is already in flight.
	ErrAlreadyMigrating = errors.New("migrate: vm already migrating")
	// ErrSamePlace — source equals destination.
	ErrSamePlace = errors.New("migrate: source and destination are the same host")
)

// Migration is one in-flight (or completed) VM move. Hosts are
// identified by opaque ints supplied by the caller (the cluster layer).
type Migration struct {
	VM       vm.ID
	Src, Dst int
	Start    sim.Time
	End      sim.Time
	Plan     Plan
}

// Stats are cumulative manager counters.
type Stats struct {
	Started   int
	Completed int
	TrafficGB float64
	// TotalDowntime is the sum of stop-and-copy pauses across all
	// completed migrations — direct SLA impact of management actions.
	TotalDowntime time.Duration
	// TotalDuration is the sum of wall durations of completed moves.
	TotalDuration time.Duration
}

// Manager tracks in-flight migrations, enforces per-host concurrency
// limits, and fires a completion callback through the simulation
// engine when each move finishes.
type Manager struct {
	eng   *sim.Engine
	model Model
	// perHostLimit caps concurrent migrations touching one host
	// (inbound plus outbound), as real hypervisors do.
	perHostLimit int

	inflight map[vm.ID]*Migration
	perHost  map[int]int
	stats    Stats

	onComplete func(*Migration)
}

// NewManager builds a manager. perHostLimit ≤ 0 selects the default
// of 4 concurrent migrations per host (the order of what enterprise
// hypervisors allow on a 10 GbE migration network).
func NewManager(eng *sim.Engine, model Model, perHostLimit int) (*Manager, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if perHostLimit <= 0 {
		perHostLimit = 4
	}
	return &Manager{
		eng:          eng,
		model:        model,
		perHostLimit: perHostLimit,
		inflight:     make(map[vm.ID]*Migration),
		perHost:      make(map[int]int),
	}, nil
}

// Model returns the manager's migration model.
func (m *Manager) Model() Model { return m.model }

// OnComplete registers fn to run when any migration completes.
func (m *Manager) OnComplete(fn func(*Migration)) { m.onComplete = fn }

// Inflight returns the number of migrations currently in flight.
func (m *Manager) Inflight() int { return len(m.inflight) }

// Migrating reports whether the VM is currently in flight.
func (m *Manager) Migrating(id vm.ID) bool {
	_, ok := m.inflight[id]
	return ok
}

// HostLoad returns how many in-flight migrations touch host h.
func (m *Manager) HostLoad(h int) int { return m.perHost[h] }

// Inflights returns the in-flight migrations ordered by VM ID, for
// deterministic planning by the management layer.
func (m *Manager) Inflights() []*Migration {
	out := make([]*Migration, 0, len(m.inflight))
	for _, mig := range m.inflight {
		out = append(out, mig)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].VM < out[j].VM })
	return out
}

// CanStart reports whether a src→dst migration would be admitted.
func (m *Manager) CanStart(src, dst int) bool {
	return src != dst &&
		m.perHost[src] < m.perHostLimit &&
		m.perHost[dst] < m.perHostLimit
}

// Start begins migrating the VM with the given memory footprint from
// src to dst. The returned Migration completes (callback fires) after
// the planned duration.
func (m *Manager) Start(id vm.ID, src, dst int, memGB float64) (*Migration, error) {
	if src == dst {
		return nil, fmt.Errorf("%w: host %d", ErrSamePlace, src)
	}
	if m.Migrating(id) {
		return nil, fmt.Errorf("%w: vm %d", ErrAlreadyMigrating, id)
	}
	if m.perHost[src] >= m.perHostLimit {
		return nil, fmt.Errorf("%w: source %d", ErrHostSaturated, src)
	}
	if m.perHost[dst] >= m.perHostLimit {
		return nil, fmt.Errorf("%w: destination %d", ErrHostSaturated, dst)
	}
	plan, err := m.model.Plan(memGB)
	if err != nil {
		return nil, err
	}
	mig := &Migration{
		VM:    id,
		Src:   src,
		Dst:   dst,
		Start: m.eng.Now(),
		End:   m.eng.Now() + plan.Duration,
		Plan:  plan,
	}
	m.inflight[id] = mig
	m.perHost[src]++
	m.perHost[dst]++
	m.stats.Started++
	m.eng.Schedule(mig.End, func() { m.complete(mig) })
	return mig, nil
}

func (m *Manager) complete(mig *Migration) {
	delete(m.inflight, mig.VM)
	m.perHost[mig.Src]--
	m.perHost[mig.Dst]--
	if m.perHost[mig.Src] == 0 {
		delete(m.perHost, mig.Src)
	}
	if m.perHost[mig.Dst] == 0 {
		delete(m.perHost, mig.Dst)
	}
	m.stats.Completed++
	m.stats.TrafficGB += mig.Plan.TrafficGB
	m.stats.TotalDowntime += mig.Plan.Downtime
	m.stats.TotalDuration += mig.Plan.Duration
	if m.onComplete != nil {
		m.onComplete(mig)
	}
}

// Stats returns a snapshot of cumulative counters.
func (m *Manager) Stats() Stats { return m.stats }

// CPUOverhead returns the extra cores consumed on host h right now by
// in-flight migrations.
func (m *Manager) CPUOverhead(h int) float64 {
	return float64(m.perHost[h]) * m.model.CPUOverheadCores
}
