package migrate

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"agilepower/internal/sim"
	"agilepower/internal/vm"
)

// Manager errors.
var (
	// ErrHostSaturated — starting the migration would exceed a host's
	// concurrent-migration limit.
	ErrHostSaturated = errors.New("migrate: host at concurrent migration limit")
	// ErrAlreadyMigrating — the VM is already in flight.
	ErrAlreadyMigrating = errors.New("migrate: vm already migrating")
	// ErrSamePlace — source equals destination.
	ErrSamePlace = errors.New("migrate: source and destination are the same host")
)

// Fault is one injected defect on a migration. Stall lengthens the
// pre-copy (network congestion, dirty-page churn); Fail makes the
// final switchover abort after the full (stalled) duration — the VM
// stays on its source and the caller re-plans.
type Fault struct {
	Fail  bool
	Stall time.Duration
}

// FaultInjector decides faults for migrations. Nil (the default) is
// fully dormant. Injectors must be deterministic functions of their own
// seeded stream so simulations stay reproducible.
type FaultInjector interface {
	MigrationFault(memGB float64) Fault
}

// Migration is one in-flight (or completed) VM move. Hosts are
// identified by opaque ints supplied by the caller (the cluster layer).
type Migration struct {
	VM       vm.ID
	Src, Dst int
	Start    sim.Time
	End      sim.Time
	Plan     Plan
	// Failed marks a migration whose switchover aborts (injected fault
	// or a crash of an endpoint host): the VM never leaves its source.
	Failed bool

	// ev is the scheduled completion, kept so an endpoint crash can
	// abort the move early.
	ev *sim.Event
}

// Stats are cumulative manager counters.
type Stats struct {
	Started   int
	Completed int
	TrafficGB float64
	// TotalDowntime is the sum of stop-and-copy pauses across all
	// completed migrations — direct SLA impact of management actions.
	TotalDowntime time.Duration
	// TotalDuration is the sum of wall durations of completed moves.
	TotalDuration time.Duration
	// Aborted counts migrations that ran and then failed (injected
	// switchover faults and endpoint crashes), distinct from requests
	// rejected at Start.
	Aborted int
	// Stalled counts migrations that were slowed by injected stalls;
	// StallTime is the total extra pre-copy time.
	Stalled   int
	StallTime time.Duration
}

// Manager tracks in-flight migrations, enforces per-host concurrency
// limits, and fires a completion callback through the simulation
// engine when each move finishes.
type Manager struct {
	eng   *sim.Engine
	model Model
	// perHostLimit caps concurrent migrations touching one host
	// (inbound plus outbound), as real hypervisors do.
	perHostLimit int

	inflight map[vm.ID]*Migration
	perHost  map[int]int
	stats    Stats

	// faults, when non-nil, is consulted on every admitted migration.
	faults FaultInjector

	onComplete func(*Migration)
	onFailed   func(*Migration)
}

// NewManager builds a manager. perHostLimit ≤ 0 selects the default
// of 4 concurrent migrations per host (the order of what enterprise
// hypervisors allow on a 10 GbE migration network).
func NewManager(eng *sim.Engine, model Model, perHostLimit int) (*Manager, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if perHostLimit <= 0 {
		perHostLimit = 4
	}
	return &Manager{
		eng:          eng,
		model:        model,
		perHostLimit: perHostLimit,
		inflight:     make(map[vm.ID]*Migration),
		perHost:      make(map[int]int),
	}, nil
}

// Model returns the manager's migration model.
func (m *Manager) Model() Model { return m.model }

// OnComplete registers fn to run when any migration completes.
func (m *Manager) OnComplete(fn func(*Migration)) { m.onComplete = fn }

// OnFailed registers fn to run when any migration aborts. The VM is
// still on its source host; the caller releases whatever it reserved
// at the destination.
func (m *Manager) OnFailed(fn func(*Migration)) { m.onFailed = fn }

// SetFaultInjector installs a migration fault injector (nil disables
// injection entirely — the default).
func (m *Manager) SetFaultInjector(f FaultInjector) { m.faults = f }

// Inflight returns the number of migrations currently in flight.
func (m *Manager) Inflight() int { return len(m.inflight) }

// Migrating reports whether the VM is currently in flight.
func (m *Manager) Migrating(id vm.ID) bool {
	_, ok := m.inflight[id]
	return ok
}

// HostLoad returns how many in-flight migrations touch host h.
func (m *Manager) HostLoad(h int) int { return m.perHost[h] }

// Inflights returns the in-flight migrations ordered by VM ID, for
// deterministic planning by the management layer.
func (m *Manager) Inflights() []*Migration {
	out := make([]*Migration, 0, len(m.inflight))
	for _, mig := range m.inflight {
		out = append(out, mig)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].VM < out[j].VM })
	return out
}

// CanStart reports whether a src→dst migration would be admitted.
func (m *Manager) CanStart(src, dst int) bool {
	return src != dst &&
		m.perHost[src] < m.perHostLimit &&
		m.perHost[dst] < m.perHostLimit
}

// Start begins migrating the VM with the given memory footprint from
// src to dst. The returned Migration completes (callback fires) after
// the planned duration.
func (m *Manager) Start(id vm.ID, src, dst int, memGB float64) (*Migration, error) {
	if src == dst {
		return nil, fmt.Errorf("%w: host %d", ErrSamePlace, src)
	}
	if m.Migrating(id) {
		return nil, fmt.Errorf("%w: vm %d", ErrAlreadyMigrating, id)
	}
	if m.perHost[src] >= m.perHostLimit {
		return nil, fmt.Errorf("%w: source %d", ErrHostSaturated, src)
	}
	if m.perHost[dst] >= m.perHostLimit {
		return nil, fmt.Errorf("%w: destination %d", ErrHostSaturated, dst)
	}
	plan, err := m.model.Plan(memGB)
	if err != nil {
		return nil, err
	}
	duration := plan.Duration
	failed := false
	if m.faults != nil {
		f := m.faults.MigrationFault(memGB)
		if f.Stall > 0 {
			duration += f.Stall
			m.stats.Stalled++
			m.stats.StallTime += f.Stall
		}
		failed = f.Fail
	}
	mig := &Migration{
		VM:     id,
		Src:    src,
		Dst:    dst,
		Start:  m.eng.Now(),
		End:    m.eng.Now() + duration,
		Plan:   plan,
		Failed: failed,
	}
	m.inflight[id] = mig
	m.perHost[src]++
	m.perHost[dst]++
	m.stats.Started++
	mig.ev = m.eng.Schedule(mig.End, func() { m.complete(mig) })
	return mig, nil
}

// FailHost aborts every in-flight migration touching host h (which
// crashed): their completion events are cancelled and each fires the
// failure path immediately. It returns how many were aborted.
func (m *Manager) FailHost(h int) int {
	aborted := 0
	for _, mig := range m.Inflights() {
		if mig.Src != h && mig.Dst != h {
			continue
		}
		mig.ev.Cancel()
		mig.Failed = true
		mig.End = m.eng.Now()
		m.complete(mig)
		aborted++
	}
	return aborted
}

func (m *Manager) complete(mig *Migration) {
	delete(m.inflight, mig.VM)
	m.perHost[mig.Src]--
	m.perHost[mig.Dst]--
	if m.perHost[mig.Src] == 0 {
		delete(m.perHost, mig.Src)
	}
	if m.perHost[mig.Dst] == 0 {
		delete(m.perHost, mig.Dst)
	}
	if mig.Failed {
		// The pre-copy traffic was spent even though the move aborted.
		m.stats.Aborted++
		m.stats.TrafficGB += mig.Plan.TrafficGB
		if m.onFailed != nil {
			m.onFailed(mig)
		}
		return
	}
	m.stats.Completed++
	m.stats.TrafficGB += mig.Plan.TrafficGB
	m.stats.TotalDowntime += mig.Plan.Downtime
	m.stats.TotalDuration += mig.Plan.Duration
	if m.onComplete != nil {
		m.onComplete(mig)
	}
}

// Stats returns a snapshot of cumulative counters.
func (m *Manager) Stats() Stats { return m.stats }

// CPUOverhead returns the extra cores consumed on host h right now by
// in-flight migrations.
func (m *Manager) CPUOverhead(h int) float64 {
	return float64(m.perHost[h]) * m.model.CPUOverheadCores
}
