// Package migrate models pre-copy live migration of VMs between
// hosts, the mechanism the paper's management layer uses to
// consolidate load before parking servers. The model reproduces the
// properties the controller trades off against: duration proportional
// to memory over bandwidth (amplified by dirty-page re-copying), a
// short stop-and-copy downtime, CPU overhead on both endpoints, and a
// per-host concurrency limit.
package migrate

import (
	"fmt"
	"time"
)

// Model holds the parameters of the pre-copy migration algorithm.
type Model struct {
	// BandwidthGbps is the migration link speed (default 10 Gb/s).
	BandwidthGbps float64
	// DirtyFracPerSec is the fraction of the VM's memory dirtied per
	// second while it keeps running during pre-copy (default 0.02).
	DirtyFracPerSec float64
	// StopCopyThresholdGB — when the remaining dirty set is below this,
	// the VM is paused and the rest is copied (default 0.0625 = 64 MB).
	StopCopyThresholdGB float64
	// MaxIterations caps pre-copy rounds before forcing stop-and-copy
	// (default 30).
	MaxIterations int
	// CPUOverheadCores is the extra CPU consumed on both source and
	// destination while a migration is in flight (default 0.5).
	CPUOverheadCores float64
}

// DefaultModel returns the calibration used throughout the
// reproduction: 10 GbE migration network, 2%/s dirty rate, 64 MB
// stop-and-copy threshold.
func DefaultModel() Model {
	return Model{
		BandwidthGbps:       10,
		DirtyFracPerSec:     0.02,
		StopCopyThresholdGB: 0.0625,
		MaxIterations:       30,
		CPUOverheadCores:    0.5,
	}
}

// Validate checks the model parameters.
func (m Model) Validate() error {
	if m.BandwidthGbps <= 0 {
		return fmt.Errorf("migrate: bandwidth %v Gbps must be positive", m.BandwidthGbps)
	}
	if m.DirtyFracPerSec < 0 {
		return fmt.Errorf("migrate: negative dirty fraction %v", m.DirtyFracPerSec)
	}
	if m.StopCopyThresholdGB <= 0 {
		return fmt.Errorf("migrate: stop-copy threshold %v GB must be positive", m.StopCopyThresholdGB)
	}
	if m.MaxIterations < 1 {
		return fmt.Errorf("migrate: max iterations %d must be ≥1", m.MaxIterations)
	}
	if m.CPUOverheadCores < 0 {
		return fmt.Errorf("migrate: negative CPU overhead %v", m.CPUOverheadCores)
	}
	return nil
}

// Plan is the predicted cost of migrating one VM.
type Plan struct {
	// Duration is total wall time from start to switch-over.
	Duration time.Duration
	// Downtime is the stop-and-copy pause at the end, during which the
	// VM serves nothing.
	Downtime time.Duration
	// Iterations is the number of pre-copy rounds.
	Iterations int
	// TrafficGB is the total bytes moved.
	TrafficGB float64
}

// Plan simulates the pre-copy iteration schedule for a VM with memGB
// of memory and returns the predicted cost.
func (m Model) Plan(memGB float64) (Plan, error) {
	if err := m.Validate(); err != nil {
		return Plan{}, err
	}
	if memGB <= 0 {
		return Plan{}, fmt.Errorf("migrate: memory %v GB must be positive", memGB)
	}
	bwGBps := m.BandwidthGbps / 8
	dirtyGBps := m.DirtyFracPerSec * memGB

	remaining := memGB
	totalSecs := 0.0
	traffic := 0.0
	iters := 0
	for iters < m.MaxIterations {
		iters++
		t := remaining / bwGBps
		totalSecs += t
		traffic += remaining
		// Pages dirtied while this round was copying become the next
		// round's work, but never more than the whole memory.
		remaining = dirtyGBps * t
		if remaining > memGB {
			remaining = memGB
		}
		if remaining <= m.StopCopyThresholdGB {
			break
		}
		if dirtyGBps >= bwGBps {
			// Pre-copy cannot converge; force stop-and-copy with the
			// current dirty set.
			break
		}
	}
	downtimeSecs := remaining / bwGBps
	totalSecs += downtimeSecs
	traffic += remaining
	return Plan{
		Duration:   time.Duration(totalSecs * float64(time.Second)),
		Downtime:   time.Duration(downtimeSecs * float64(time.Second)),
		Iterations: iters,
		TrafficGB:  traffic,
	}, nil
}
