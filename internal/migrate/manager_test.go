package migrate

import (
	"errors"
	"testing"
	"time"

	"agilepower/internal/sim"
	"agilepower/internal/vm"
)

func newTestManager(t *testing.T, limit int) (*sim.Engine, *Manager) {
	t.Helper()
	eng := sim.NewEngine(1)
	m, err := NewManager(eng, DefaultModel(), limit)
	if err != nil {
		t.Fatal(err)
	}
	return eng, m
}

func TestNewManagerRejectsInvalidModel(t *testing.T) {
	bad := DefaultModel()
	bad.BandwidthGbps = 0
	if _, err := NewManager(sim.NewEngine(1), bad, 2); err == nil {
		t.Fatal("NewManager accepted invalid model")
	}
}

func TestStartAndComplete(t *testing.T) {
	eng, m := newTestManager(t, 2)
	var done *Migration
	m.OnComplete(func(mg *Migration) { done = mg })

	mig, err := m.Start(1, 10, 20, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Migrating(1) || m.Inflight() != 1 {
		t.Fatal("migration not tracked")
	}
	if m.HostLoad(10) != 1 || m.HostLoad(20) != 1 {
		t.Fatal("host load not tracked")
	}
	eng.RunUntil(mig.End)
	if done == nil || done.VM != 1 {
		t.Fatal("completion callback not fired")
	}
	if m.Migrating(1) || m.Inflight() != 0 {
		t.Fatal("migration still tracked after completion")
	}
	if m.HostLoad(10) != 0 || m.HostLoad(20) != 0 {
		t.Fatal("host load not released")
	}
	st := m.Stats()
	if st.Started != 1 || st.Completed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.TotalDowntime <= 0 || st.TrafficGB < 8 {
		t.Fatalf("stats missing downtime/traffic: %+v", st)
	}
}

func TestStartRejectsSamePlace(t *testing.T) {
	_, m := newTestManager(t, 2)
	if _, err := m.Start(1, 5, 5, 8); !errors.Is(err, ErrSamePlace) {
		t.Fatalf("err = %v, want ErrSamePlace", err)
	}
}

func TestStartRejectsDoubleMigration(t *testing.T) {
	_, m := newTestManager(t, 4)
	if _, err := m.Start(1, 10, 20, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start(1, 20, 30, 8); !errors.Is(err, ErrAlreadyMigrating) {
		t.Fatalf("err = %v, want ErrAlreadyMigrating", err)
	}
}

func TestPerHostLimitEnforced(t *testing.T) {
	_, m := newTestManager(t, 1)
	if _, err := m.Start(1, 10, 20, 8); err != nil {
		t.Fatal(err)
	}
	// Host 10 is saturated as a source.
	if _, err := m.Start(2, 10, 30, 8); !errors.Is(err, ErrHostSaturated) {
		t.Fatalf("err = %v, want ErrHostSaturated (source)", err)
	}
	// Host 20 is saturated as a destination.
	if _, err := m.Start(3, 30, 20, 8); !errors.Is(err, ErrHostSaturated) {
		t.Fatalf("err = %v, want ErrHostSaturated (dest)", err)
	}
	// An unrelated pair is fine.
	if _, err := m.Start(4, 30, 40, 8); err != nil {
		t.Fatalf("unrelated migration rejected: %v", err)
	}
	if m.CanStart(10, 40) || m.CanStart(40, 20) {
		t.Fatal("CanStart disagrees with Start")
	}
	if !m.CanStart(50, 60) {
		t.Fatal("CanStart rejects free pair")
	}
}

func TestLimitReleasedAfterCompletion(t *testing.T) {
	eng, m := newTestManager(t, 1)
	mig, err := m.Start(1, 10, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(mig.End + time.Second)
	if _, err := m.Start(2, 10, 20, 2); err != nil {
		t.Fatalf("slot not released after completion: %v", err)
	}
}

func TestDefaultPerHostLimit(t *testing.T) {
	_, m := newTestManager(t, 0) // 0 selects default of 4
	for i := 1; i <= 4; i++ {
		if _, err := m.Start(vm.ID(i), 10, 20+i, 2); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Start(5, 10, 40, 2); !errors.Is(err, ErrHostSaturated) {
		t.Fatalf("fifth outbound from host 10 = %v, want ErrHostSaturated", err)
	}
}

func TestCPUOverhead(t *testing.T) {
	_, m := newTestManager(t, 4)
	if m.CPUOverhead(10) != 0 {
		t.Fatal("idle host has overhead")
	}
	if _, err := m.Start(1, 10, 20, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start(2, 10, 30, 2); err != nil {
		t.Fatal(err)
	}
	want := 2 * DefaultModel().CPUOverheadCores
	if m.CPUOverhead(10) != want {
		t.Fatalf("overhead = %v, want %v", m.CPUOverhead(10), want)
	}
	if m.CPUOverhead(20) != DefaultModel().CPUOverheadCores {
		t.Fatal("destination overhead wrong")
	}
}

func TestMigrationTimesRecorded(t *testing.T) {
	eng, m := newTestManager(t, 2)
	eng.RunUntil(10 * time.Second)
	mig, err := m.Start(1, 1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mig.Start != 10*time.Second {
		t.Fatalf("start = %v, want 10s", mig.Start)
	}
	if mig.End != mig.Start+mig.Plan.Duration {
		t.Fatalf("end %v != start+duration %v", mig.End, mig.Start+mig.Plan.Duration)
	}
}
