package migrate

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultModelValid(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Model)
	}{
		{"zero bandwidth", func(m *Model) { m.BandwidthGbps = 0 }},
		{"negative dirty", func(m *Model) { m.DirtyFracPerSec = -1 }},
		{"zero threshold", func(m *Model) { m.StopCopyThresholdGB = 0 }},
		{"zero iterations", func(m *Model) { m.MaxIterations = 0 }},
		{"negative overhead", func(m *Model) { m.CPUOverheadCores = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := DefaultModel()
			tc.mut(&m)
			if err := m.Validate(); err == nil {
				t.Errorf("Validate accepted %s", tc.name)
			}
		})
	}
}

func TestPlanScalesWithMemory(t *testing.T) {
	m := DefaultModel()
	small, err := m.Plan(2)
	if err != nil {
		t.Fatal(err)
	}
	large, err := m.Plan(16)
	if err != nil {
		t.Fatal(err)
	}
	if large.Duration <= small.Duration {
		t.Fatalf("16GB migration (%v) not longer than 2GB (%v)", large.Duration, small.Duration)
	}
	// 10 Gbps = 1.25 GB/s, so 16 GB takes ≥ 12.8s for the first copy.
	if large.Duration < 12*time.Second {
		t.Fatalf("16GB duration = %v, implausibly fast", large.Duration)
	}
}

func TestPlanDowntimeSmall(t *testing.T) {
	m := DefaultModel()
	p, err := m.Plan(8)
	if err != nil {
		t.Fatal(err)
	}
	// Converged pre-copy ends with ≤ threshold remaining: downtime is
	// threshold/bandwidth at most (64MB over 1.25GB/s = 50ms).
	if p.Downtime > 100*time.Millisecond {
		t.Fatalf("downtime = %v, want under 100ms for converging pre-copy", p.Downtime)
	}
	if p.Downtime <= 0 {
		t.Fatal("downtime should be positive")
	}
}

func TestPlanNonConvergingForcesStopCopy(t *testing.T) {
	m := DefaultModel()
	m.BandwidthGbps = 1       // 0.125 GB/s
	m.DirtyFracPerSec = 0.125 // 8GB VM dirties 1 GB/s >> bandwidth
	p, err := m.Plan(8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Iterations > 2 {
		t.Fatalf("non-converging migration ran %d iterations, want early stop-and-copy", p.Iterations)
	}
	// Whole memory gets re-copied in the final pause.
	if p.Downtime < 10*time.Second {
		t.Fatalf("downtime = %v, want large forced stop-and-copy", p.Downtime)
	}
}

func TestPlanMaxIterationsCap(t *testing.T) {
	m := DefaultModel()
	m.MaxIterations = 3
	m.StopCopyThresholdGB = 1e-9 // force hitting the cap
	p, err := m.Plan(8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Iterations != 3 {
		t.Fatalf("iterations = %d, want cap 3", p.Iterations)
	}
}

func TestPlanRejectsNonPositiveMemory(t *testing.T) {
	m := DefaultModel()
	if _, err := m.Plan(0); err == nil {
		t.Fatal("Plan accepted zero memory")
	}
	if _, err := m.Plan(-4); err == nil {
		t.Fatal("Plan accepted negative memory")
	}
}

func TestPlanTrafficAtLeastMemory(t *testing.T) {
	m := DefaultModel()
	p, err := m.Plan(8)
	if err != nil {
		t.Fatal(err)
	}
	if p.TrafficGB < 8 {
		t.Fatalf("traffic %v GB less than memory 8 GB", p.TrafficGB)
	}
}

func TestZeroDirtyRateSingleIteration(t *testing.T) {
	m := DefaultModel()
	m.DirtyFracPerSec = 0
	p, err := m.Plan(8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Iterations != 1 {
		t.Fatalf("iterations = %d with no dirtying, want 1", p.Iterations)
	}
	// 8 GB at 1.25 GB/s = 6.4s plus negligible stop-copy.
	if p.Duration < 6*time.Second || p.Duration > 7*time.Second {
		t.Fatalf("duration = %v, want ~6.4s", p.Duration)
	}
}

// Properties: duration/downtime/traffic are positive and downtime ≤
// duration for any memory size; in the converging pre-copy regime
// (dirty rate well below bandwidth) duration is also monotone in
// memory. Monotonicity deliberately excludes the convergence boundary:
// a VM whose dirty rate reaches link bandwidth falls back to an early
// forced stop-and-copy, which can finish *sooner* (with much larger
// downtime) than a slightly smaller VM that pre-copies for many rounds.
func TestPlanProperties(t *testing.T) {
	m := DefaultModel()
	bwGBps := m.BandwidthGbps / 8
	f := func(memRaw uint16) bool {
		mem := 0.5 + float64(memRaw%512)/4 // 0.5 .. 128.25 GB
		p, err := m.Plan(mem)
		if err != nil {
			return false
		}
		if !(p.Duration > 0 && p.Downtime > 0 && p.Downtime <= p.Duration && p.TrafficGB >= mem) {
			return false
		}
		// Monotone only where both sizes converge comfortably.
		if m.DirtyFracPerSec*(mem+1) < 0.5*bwGBps {
			p2, err := m.Plan(mem + 1)
			if err != nil || p2.Duration < p.Duration {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
