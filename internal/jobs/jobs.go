// Package jobs is the bounded async job queue behind the simulation
// service: submissions return immediately with a job ID, a fixed pool
// of workers executes runs, and clients poll, stream, or block on the
// job's completion. The queue is multi-tenant fair — workers pick the
// next job round-robin across tenants, so one tenant submitting ten
// thousand runs cannot starve another's single request — and applies
// backpressure by rejecting submissions past a global and a per-tenant
// queue-depth bound instead of buffering without limit.
//
// Jobs move queued → running → done|failed|cancelled. Cancelling a
// queued job removes it immediately; cancelling a running job cancels
// its context and the runner is expected to observe it between
// progress steps. Drain is the graceful-shutdown path: stop accepting,
// cancel everything still queued, and give running jobs a deadline to
// finish before their contexts are cancelled too.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"
)

// State is a job's lifecycle position.
type State int

const (
	Queued State = iota
	Running
	Done
	Failed
	Cancelled
)

// String returns the lowercase wire name.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Cancelled:
		return "cancelled"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Cancelled }

// Submission errors, distinguishable so the HTTP layer can map them to
// status codes (429 for backpressure, 503 for draining).
var (
	ErrQueueFull  = errors.New("jobs: queue full")
	ErrTenantFull = errors.New("jobs: tenant queue full")
	ErrDraining   = errors.New("jobs: queue draining")
	ErrNotFound   = errors.New("jobs: job not found")
	ErrTerminal   = errors.New("jobs: job already terminal")
)

// Runner executes one job. It must return promptly once ctx is
// cancelled (the simulation service checks between progress chunks).
// The returned bytes become the job's result.
type Runner func(ctx context.Context, j *Job) ([]byte, error)

// Config tunes the queue.
type Config struct {
	// Workers is the executor pool size (<= 0 means GOMAXPROCS).
	Workers int
	// MaxQueued bounds jobs waiting across all tenants (<= 0 means
	// 4096). Submissions past it fail with ErrQueueFull.
	MaxQueued int
	// MaxQueuedPerTenant bounds one tenant's waiting jobs (<= 0 means
	// MaxQueued). Submissions past it fail with ErrTenantFull.
	MaxQueuedPerTenant int
	// MaxTerminal bounds how many finished jobs stay queryable; the
	// oldest terminal jobs are forgotten past it (<= 0 means 65536).
	MaxTerminal int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 4096
	}
	if c.MaxQueuedPerTenant <= 0 {
		c.MaxQueuedPerTenant = c.MaxQueued
	}
	if c.MaxTerminal <= 0 {
		c.MaxTerminal = 65536
	}
	return c
}

// Job is one unit of work. All mutable state is guarded by the owning
// queue's mutex; accessors take it.
type Job struct {
	q       *Queue
	id      string
	seq     uint64
	tenant  string
	payload any

	state      State
	err        string
	result     []byte
	cached     bool
	cancelled  bool // cancel requested while running
	cancelCtx  context.CancelFunc
	submitted  time.Time
	started    time.Time
	finished   time.Time
	done       chan struct{}
	subs       []chan any
	subClosed  bool
	progressed uint64
}

// ID returns the job's identifier ("j1", "j2", …).
func (j *Job) ID() string { return j.id }

// Tenant returns the submitting tenant.
func (j *Job) Tenant() string { return j.tenant }

// Payload returns the submission payload, immutable after Submit.
func (j *Job) Payload() any { return j.payload }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.q.mu.Lock()
	defer j.q.mu.Unlock()
	return j.state
}

// Result returns the result bytes and error message; valid once Done
// is closed. The byte slice must be treated as immutable.
func (j *Job) Result() ([]byte, string) {
	j.q.mu.Lock()
	defer j.q.mu.Unlock()
	return j.result, j.err
}

// Cached reports whether the result was served from the result cache
// without executing.
func (j *Job) Cached() bool {
	j.q.mu.Lock()
	defer j.q.mu.Unlock()
	return j.cached
}

// Status is a point-in-time job snapshot for the HTTP surface.
type Status struct {
	ID          string  `json:"id"`
	Tenant      string  `json:"tenant"`
	State       string  `json:"state"`
	Cached      bool    `json:"cached,omitempty"`
	Error       string  `json:"error,omitempty"`
	SubmittedAt string  `json:"submittedAt"`
	WallSeconds float64 `json:"wallSeconds,omitempty"`
	Progress    uint64  `json:"progressEvents,omitempty"`
}

// Snapshot returns the job's status.
func (j *Job) Snapshot() Status {
	j.q.mu.Lock()
	defer j.q.mu.Unlock()
	st := Status{
		ID:          j.id,
		Tenant:      j.tenant,
		State:       j.state.String(),
		Cached:      j.cached,
		Error:       j.err,
		SubmittedAt: j.submitted.UTC().Format(time.RFC3339Nano),
		Progress:    j.progressed,
	}
	if !j.started.IsZero() {
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		st.WallSeconds = end.Sub(j.started).Seconds()
	}
	return st
}

// Publish fans v out to the job's subscribers. Sends never block:
// a subscriber that has fallen 64 events behind loses the oldest-
// unread ones (progress is lossy by design; the terminal result is
// delivered via Done, which cannot be missed).
func (j *Job) Publish(v any) {
	j.q.mu.Lock()
	j.progressed++
	subs := append([]chan any(nil), j.subs...)
	j.q.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- v:
		default:
		}
	}
}

// Subscribe registers a progress listener; the returned cancel must be
// called (it is idempotent). Events published before Subscribe are not
// replayed.
func (j *Job) Subscribe() (<-chan any, func()) {
	ch := make(chan any, 64)
	j.q.mu.Lock()
	j.subs = append(j.subs, ch)
	j.q.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			j.q.mu.Lock()
			for i, c := range j.subs {
				if c == ch {
					j.subs = append(j.subs[:i], j.subs[i+1:]...)
					break
				}
			}
			j.q.mu.Unlock()
		})
	}
	return ch, cancel
}

// Counters is a snapshot of the queue's lifetime counters.
type Counters struct {
	Submitted uint64
	Completed uint64 // reached Done (includes cache-hit completions)
	Failed    uint64
	Cancelled uint64
	Rejected  uint64 // backpressure + draining rejections
	CacheHits uint64 // SubmitCompleted fast-path completions
}

// tenantQ is one tenant's FIFO of queued jobs.
type tenantQ struct {
	name string
	jobs []*Job
	head int
}

func (t *tenantQ) depth() int { return len(t.jobs) - t.head }

func (t *tenantQ) push(j *Job) { t.jobs = append(t.jobs, j) }

func (t *tenantQ) pop() *Job {
	j := t.jobs[t.head]
	t.jobs[t.head] = nil
	t.head++
	if t.head == len(t.jobs) {
		t.jobs = t.jobs[:0]
		t.head = 0
	}
	return j
}

// remove deletes job j from the FIFO (cancellation of a queued job).
func (t *tenantQ) remove(j *Job) bool {
	for i := t.head; i < len(t.jobs); i++ {
		if t.jobs[i] == j {
			copy(t.jobs[i:], t.jobs[i+1:])
			t.jobs = t.jobs[:len(t.jobs)-1]
			return true
		}
	}
	return false
}

// Queue is the bounded, tenant-fair job queue. Use New; the zero
// value is not usable.
type Queue struct {
	cfg Config
	run Runner

	mu       sync.Mutex
	cond     *sync.Cond
	byID     map[string]*Job
	tenants  map[string]*tenantQ
	ring     []*tenantQ // tenants with queued work, round-robin order
	rr       int
	queued   int
	running  int
	nextSeq  uint64
	draining bool
	stopped  bool
	workers  sync.WaitGroup
	ctrs     Counters
	terminal []*Job // FIFO of finished jobs for MaxTerminal eviction
}

// New builds a queue; call Start to launch the workers.
func New(cfg Config, run Runner) *Queue {
	q := &Queue{
		cfg:     cfg.withDefaults(),
		run:     run,
		byID:    make(map[string]*Job),
		tenants: make(map[string]*tenantQ),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Start launches the worker pool.
func (q *Queue) Start() {
	q.workers.Add(q.cfg.Workers)
	for w := 0; w < q.cfg.Workers; w++ {
		go q.worker()
	}
}

// Submit enqueues a job for tenant. It returns immediately; the job
// runs when a worker and the tenant's round-robin turn allow.
func (q *Queue) Submit(tenant string, payload any) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining {
		q.ctrs.Rejected++
		return nil, ErrDraining
	}
	if q.queued >= q.cfg.MaxQueued {
		q.ctrs.Rejected++
		return nil, ErrQueueFull
	}
	tq := q.tenants[tenant]
	if tq == nil {
		tq = &tenantQ{name: tenant}
		q.tenants[tenant] = tq
	}
	if tq.depth() >= q.cfg.MaxQueuedPerTenant {
		q.ctrs.Rejected++
		return nil, ErrTenantFull
	}
	j := q.newJobLocked(tenant, payload)
	if tq.depth() == 0 {
		q.ring = append(q.ring, tq)
	}
	tq.push(j)
	q.queued++
	q.cond.Signal()
	return j, nil
}

// SubmitCompleted records an already-done job — the result-cache hit
// path: the job is born terminal with the cached bytes, no worker
// involvement, and counts as a completion and a cache hit.
func (q *Queue) SubmitCompleted(tenant string, payload any, result []byte) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining {
		q.ctrs.Rejected++
		return nil, ErrDraining
	}
	j := q.newJobLocked(tenant, payload)
	now := time.Now()
	j.state = Done
	j.cached = true
	j.result = result
	j.started = now
	j.finished = now
	close(j.done)
	q.ctrs.Completed++
	q.ctrs.CacheHits++
	q.retireLocked(j)
	return j, nil
}

// newJobLocked allocates and registers a queued job; callers hold
// q.mu.
func (q *Queue) newJobLocked(tenant string, payload any) *Job {
	q.nextSeq++
	j := &Job{
		q:         q,
		seq:       q.nextSeq,
		id:        "j" + strconv.FormatUint(q.nextSeq, 10),
		tenant:    tenant,
		payload:   payload,
		state:     Queued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	q.byID[j.id] = j
	q.ctrs.Submitted++
	return j
}

// Get returns the job with the given ID.
func (q *Queue) Get(id string) (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.byID[id]
	return j, ok
}

// Jobs returns all known jobs in submission order, optionally
// filtered by tenant ("" = all).
func (q *Queue) Jobs(tenant string) []*Job {
	q.mu.Lock()
	out := make([]*Job, 0, len(q.byID))
	for _, j := range q.byID {
		if tenant == "" || j.tenant == tenant {
			out = append(out, j)
		}
	}
	q.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].seq < out[k].seq })
	return out
}

// Cancel cancels the job: a queued job is removed immediately, a
// running job has its context cancelled (the runner unwinds at its
// next progress step). Terminal jobs return ErrTerminal.
func (q *Queue) Cancel(id string) error {
	q.mu.Lock()
	j, ok := q.byID[id]
	if !ok {
		q.mu.Unlock()
		return ErrNotFound
	}
	switch j.state {
	case Queued:
		q.cancelQueuedLocked(j)
		q.mu.Unlock()
		return nil
	case Running:
		j.cancelled = true
		cancel := j.cancelCtx
		q.mu.Unlock()
		cancel()
		return nil
	default:
		q.mu.Unlock()
		return ErrTerminal
	}
}

// cancelQueuedLocked removes a still-queued job from its tenant FIFO
// and marks it cancelled; callers hold q.mu.
func (q *Queue) cancelQueuedLocked(j *Job) {
	tq := q.tenants[j.tenant]
	if tq != nil && tq.remove(j) {
		q.queued--
		if tq.depth() == 0 {
			q.dropFromRingLocked(tq)
		}
	}
	q.finishCancelledLocked(j)
}

// finishCancelledLocked marks a dequeued job cancelled and retires it;
// callers hold q.mu.
func (q *Queue) finishCancelledLocked(j *Job) {
	j.state = Cancelled
	j.finished = time.Now()
	close(j.done)
	q.ctrs.Cancelled++
	q.retireLocked(j)
}

func (q *Queue) dropFromRingLocked(tq *tenantQ) {
	for i, r := range q.ring {
		if r == tq {
			q.ring = append(q.ring[:i], q.ring[i+1:]...)
			if q.rr > i {
				q.rr--
			}
			if len(q.ring) > 0 {
				q.rr %= len(q.ring)
			} else {
				q.rr = 0
			}
			return
		}
	}
}

// nextLocked pops the next job round-robin across tenants; callers
// hold q.mu. Returns nil when nothing is queued.
func (q *Queue) nextLocked() *Job {
	if len(q.ring) == 0 {
		return nil
	}
	q.rr %= len(q.ring)
	tq := q.ring[q.rr]
	j := tq.pop()
	q.queued--
	if tq.depth() == 0 {
		q.ring = append(q.ring[:q.rr], q.ring[q.rr+1:]...)
		if len(q.ring) > 0 {
			q.rr %= len(q.ring)
		} else {
			q.rr = 0
		}
	} else {
		q.rr++ // fairness: next tenant gets the next worker
	}
	return j
}

// worker executes jobs until the queue stops.
func (q *Queue) worker() {
	defer q.workers.Done()
	for {
		q.mu.Lock()
		var j *Job
		for {
			if j = q.nextLocked(); j != nil {
				break
			}
			if q.stopped {
				q.mu.Unlock()
				return
			}
			q.cond.Wait()
		}
		ctx, cancel := context.WithCancel(context.Background())
		j.state = Running
		j.started = time.Now()
		j.cancelCtx = cancel
		q.running++
		q.mu.Unlock()

		result, err := q.run(ctx, j)
		cancel()

		q.mu.Lock()
		q.running--
		j.finished = time.Now()
		j.cancelCtx = nil
		switch {
		case err == nil:
			j.state = Done
			j.result = result
			q.ctrs.Completed++
		case j.cancelled || errors.Is(err, context.Canceled):
			j.state = Cancelled
			j.err = "cancelled"
			q.ctrs.Cancelled++
		default:
			j.state = Failed
			j.err = err.Error()
			q.ctrs.Failed++
		}
		close(j.done)
		q.retireLocked(j)
		if q.draining && q.running == 0 && q.queued == 0 {
			q.cond.Broadcast() // wake Drain's waiter
		}
		q.mu.Unlock()
	}
}

// retireLocked appends j to the terminal FIFO and forgets the oldest
// finished jobs past MaxTerminal; callers hold q.mu.
func (q *Queue) retireLocked(j *Job) {
	q.terminal = append(q.terminal, j)
	for len(q.terminal) > q.cfg.MaxTerminal {
		old := q.terminal[0]
		q.terminal[0] = nil
		q.terminal = q.terminal[1:]
		delete(q.byID, old.id)
	}
}

// Depth returns the queued and running job counts.
func (q *Queue) Depth() (queued, running int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued, q.running
}

// Counters returns the lifetime counters.
func (q *Queue) Counters() Counters {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.ctrs
}

// Draining reports whether the queue has stopped accepting work.
func (q *Queue) Draining() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.draining
}

// Drain shuts the queue down gracefully: new submissions fail with
// ErrDraining, still-queued jobs are cancelled immediately, and
// running jobs get until ctx expires to finish before their contexts
// are cancelled. Drain returns once every job is terminal and the
// workers have exited; the error reports whether running jobs had to
// be force-cancelled.
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	if q.draining {
		q.mu.Unlock()
		return nil
	}
	q.draining = true
	// Cancel everything still queued, FIFO per tenant.
	for len(q.ring) > 0 {
		if j := q.nextLocked(); j != nil {
			q.finishCancelledLocked(j)
		}
	}
	q.mu.Unlock()

	// Give running jobs until the deadline.
	settled := make(chan struct{})
	go func() {
		q.mu.Lock()
		for q.running > 0 {
			q.cond.Wait()
		}
		q.mu.Unlock()
		close(settled)
	}()
	forced := false
	select {
	case <-settled:
	case <-ctx.Done():
		forced = true
		q.mu.Lock()
		for _, j := range q.byID {
			if j.state == Running && j.cancelCtx != nil {
				j.cancelled = true
				j.cancelCtx()
			}
		}
		q.mu.Unlock()
		<-settled // runners observe cancellation and unwind
	}

	// Retire the workers.
	q.mu.Lock()
	q.stopped = true
	q.cond.Broadcast()
	q.mu.Unlock()
	q.workers.Wait()
	if forced {
		return fmt.Errorf("jobs: drain deadline expired; running jobs were cancelled")
	}
	return nil
}
