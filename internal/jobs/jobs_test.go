package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// sleepRunner returns a runner that blocks until its context is
// cancelled or release is closed.
func sleepRunner(release <-chan struct{}) Runner {
	return func(ctx context.Context, j *Job) ([]byte, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return []byte(j.ID()), nil
		}
	}
}

func TestSubmitRunsToDone(t *testing.T) {
	q := New(Config{Workers: 2}, func(ctx context.Context, j *Job) ([]byte, error) {
		return []byte("result-" + j.ID()), nil
	})
	q.Start()
	defer q.Drain(context.Background())
	j, err := q.Submit("t1", nil)
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if j.State() != Done {
		t.Fatalf("state = %v", j.State())
	}
	res, errMsg := j.Result()
	if string(res) != "result-j1" || errMsg != "" {
		t.Fatalf("result = %q, err = %q", res, errMsg)
	}
	if c := q.Counters(); c.Submitted != 1 || c.Completed != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestFailedJobCarriesError(t *testing.T) {
	q := New(Config{Workers: 1}, func(ctx context.Context, j *Job) ([]byte, error) {
		return nil, errors.New("boom")
	})
	q.Start()
	defer q.Drain(context.Background())
	j, _ := q.Submit("t1", nil)
	<-j.Done()
	if j.State() != Failed {
		t.Fatalf("state = %v", j.State())
	}
	if _, errMsg := j.Result(); errMsg != "boom" {
		t.Fatalf("err = %q", errMsg)
	}
}

func TestBackpressureGlobalAndPerTenant(t *testing.T) {
	release := make(chan struct{})
	q := New(Config{Workers: 1, MaxQueued: 3, MaxQueuedPerTenant: 2}, sleepRunner(release))
	q.Start()
	defer func() { close(release); q.Drain(context.Background()) }()
	// Occupy the single worker so subsequent submissions stay queued.
	running, _ := q.Submit("t0", nil)
	waitState(t, running, Running)

	if _, err := q.Submit("a", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit("a", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit("a", nil); !errors.Is(err, ErrTenantFull) {
		t.Fatalf("third same-tenant submit: %v, want ErrTenantFull", err)
	}
	if _, err := q.Submit("b", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit("c", nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit past global bound: %v, want ErrQueueFull", err)
	}
	if c := q.Counters(); c.Rejected != 2 {
		t.Fatalf("rejected = %d, want 2", c.Rejected)
	}
}

func TestTenantFairness(t *testing.T) {
	// One worker, tenant A floods 8 jobs, then tenant B submits one.
	// Fair round-robin must run B's job second, not ninth.
	var mu sync.Mutex
	var order []string
	step := make(chan struct{}, 16)
	q := New(Config{Workers: 1}, func(ctx context.Context, j *Job) ([]byte, error) {
		mu.Lock()
		order = append(order, j.Tenant())
		mu.Unlock()
		<-step
		return nil, nil
	})
	var jobs []*Job
	for i := 0; i < 8; i++ {
		j, err := q.Submit("a", nil)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	b, err := q.Submit("b", nil)
	if err != nil {
		t.Fatal(err)
	}
	jobs = append(jobs, b)
	q.Start() // start after enqueueing so the ring order is fixed
	for range jobs {
		step <- struct{}{}
	}
	for _, j := range jobs {
		<-j.Done()
	}
	q.Drain(context.Background())
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 9 {
		t.Fatalf("ran %d jobs", len(order))
	}
	if order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v: tenant b starved behind tenant a's backlog", order)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	q := New(Config{Workers: 1}, sleepRunner(release))
	q.Start()
	running, _ := q.Submit("t", nil)
	waitState(t, running, Running)
	queued, _ := q.Submit("t", nil)
	if err := q.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	<-queued.Done()
	if queued.State() != Cancelled {
		t.Fatalf("state = %v", queued.State())
	}
	if err := q.Cancel(queued.ID()); !errors.Is(err, ErrTerminal) {
		t.Fatalf("re-cancel: %v, want ErrTerminal", err)
	}
	close(release)
	<-running.Done()
	q.Drain(context.Background())
}

func TestCancelRunningJobCancelsContext(t *testing.T) {
	entered := make(chan struct{})
	q := New(Config{Workers: 1}, func(ctx context.Context, j *Job) ([]byte, error) {
		close(entered)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	q.Start()
	j, _ := q.Submit("t", nil)
	<-entered
	if err := q.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if j.State() != Cancelled {
		t.Fatalf("state = %v", j.State())
	}
	q.Drain(context.Background())
}

func TestCancelUnknownJob(t *testing.T) {
	q := New(Config{Workers: 1}, sleepRunner(nil))
	if err := q.Cancel("j999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestSubmitCompletedFastPath(t *testing.T) {
	q := New(Config{Workers: 1}, func(ctx context.Context, j *Job) ([]byte, error) {
		t.Error("runner executed for a cache-hit job")
		return nil, nil
	})
	q.Start()
	defer q.Drain(context.Background())
	j, err := q.SubmitCompleted("t", nil, []byte("cached"))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	default:
		t.Fatal("cache-hit job not immediately done")
	}
	if !j.Cached() || j.State() != Done {
		t.Fatalf("cached = %v, state = %v", j.Cached(), j.State())
	}
	res, _ := j.Result()
	if string(res) != "cached" {
		t.Fatalf("result = %q", res)
	}
	if c := q.Counters(); c.CacheHits != 1 || c.Completed != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestDrainCancelsQueuedLetsRunningFinish(t *testing.T) {
	release := make(chan struct{})
	q := New(Config{Workers: 1}, sleepRunner(release))
	q.Start()
	running, _ := q.Submit("t", nil)
	waitState(t, running, Running)
	queued, _ := q.Submit("t", nil)

	drained := make(chan error, 1)
	go func() { drained <- q.Drain(context.Background()) }()
	<-queued.Done()
	if queued.State() != Cancelled {
		t.Fatalf("queued job state = %v, want Cancelled", queued.State())
	}
	if _, err := q.Submit("t", nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: %v", err)
	}
	close(release) // running job finishes normally
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if running.State() != Done {
		t.Fatalf("running job state = %v, want Done", running.State())
	}
}

func TestDrainDeadlineForcesCancel(t *testing.T) {
	q := New(Config{Workers: 1}, sleepRunner(nil)) // only unblocks via ctx
	q.Start()
	j, _ := q.Submit("t", nil)
	waitState(t, j, Running)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := q.Drain(ctx); err == nil {
		t.Fatal("forced drain reported success")
	}
	if j.State() != Cancelled {
		t.Fatalf("state = %v, want Cancelled", j.State())
	}
}

func TestProgressPubSub(t *testing.T) {
	start := make(chan struct{})
	q := New(Config{Workers: 1}, func(ctx context.Context, j *Job) ([]byte, error) {
		<-start
		for i := 0; i < 5; i++ {
			j.Publish(i)
		}
		return nil, nil
	})
	q.Start()
	defer q.Drain(context.Background())
	j, _ := q.Submit("t", nil)
	ch, cancel := j.Subscribe()
	defer cancel()
	close(start)
	<-j.Done()
	got := 0
	for {
		select {
		case <-ch:
			got++
			continue
		default:
		}
		break
	}
	if got != 5 {
		t.Fatalf("received %d progress events, want 5", got)
	}
	if j.Snapshot().Progress != 5 {
		t.Fatalf("snapshot progress = %d", j.Snapshot().Progress)
	}
}

func TestTerminalEviction(t *testing.T) {
	q := New(Config{Workers: 2, MaxTerminal: 4}, func(ctx context.Context, j *Job) ([]byte, error) {
		return nil, nil
	})
	q.Start()
	defer q.Drain(context.Background())
	var last *Job
	for i := 0; i < 10; i++ {
		j, err := q.Submit("t", nil)
		if err != nil {
			t.Fatal(err)
		}
		<-j.Done()
		last = j
	}
	if _, ok := q.Get("j1"); ok {
		t.Fatal("oldest terminal job survived past MaxTerminal")
	}
	if _, ok := q.Get(last.ID()); !ok {
		t.Fatal("newest terminal job evicted")
	}
	if n := len(q.Jobs("")); n != 4 {
		t.Fatalf("jobs retained = %d, want 4", n)
	}
}

// TestConcurrentSubmitCancelComplete is the race-detector workout: 16
// goroutines submit, a chaser cancels every other job by ID, workers
// complete the rest, all interleaved.
func TestConcurrentSubmitCancelComplete(t *testing.T) {
	var executed atomic.Uint64
	q := New(Config{Workers: 4, MaxQueued: 100000}, func(ctx context.Context, j *Job) ([]byte, error) {
		executed.Add(1)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
		return []byte("ok"), nil
	})
	q.Start()
	const goroutines, perG = 16, 50
	var wg sync.WaitGroup
	jobCh := make(chan *Job, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				j, err := q.Submit(fmt.Sprintf("tenant-%d", g%4), i)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				jobCh <- j
			}
		}(g)
	}
	var cwg sync.WaitGroup
	cwg.Add(1)
	go func() {
		defer cwg.Done()
		i := 0
		for j := range jobCh {
			if i%2 == 0 {
				q.Cancel(j.ID()) // any outcome is legal; must not race
			}
			<-j.Done()
			if s := j.State(); s != Done && s != Cancelled {
				t.Errorf("job %s settled as %v", j.ID(), s)
			}
			i++
		}
	}()
	wg.Wait()
	close(jobCh)
	cwg.Wait()
	if err := q.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	c := q.Counters()
	if c.Submitted != goroutines*perG {
		t.Fatalf("submitted = %d", c.Submitted)
	}
	if c.Completed+c.Cancelled != c.Submitted {
		t.Fatalf("completed %d + cancelled %d != submitted %d", c.Completed, c.Cancelled, c.Submitted)
	}
	queued, running := q.Depth()
	if queued != 0 || running != 0 {
		t.Fatalf("depth after drain = %d/%d", queued, running)
	}
}

func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %v (state %v)", j.ID(), want, j.State())
}
