package sim

import (
	"math"
	"time"
)

// RNG is a small, fast, deterministic random number generator
// (xoshiro256** seeded via splitmix64). Simulations must be exactly
// reproducible from a seed across runs and platforms, which is why we
// carry our own generator instead of depending on math/rand's global
// state.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Uint64 returns the next value in the sequence.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bernoulli reports true with probability p. When the outcome is
// certain (p <= 0 or p >= 1) no randomness is drawn, so dormant
// probabilistic paths (fault injection at rate zero) leave the stream
// untouched and runs stay byte-identical to builds without them.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// DurationJitter returns a uniform duration in [0, max). Zero or
// negative max draws nothing, mirroring Bernoulli's no-draw rule so
// jitter-free configurations leave the stream untouched.
func (r *RNG) DurationJitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(r.Float64() * float64(max))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork derives an independent generator from this one. Substreams let
// each simulated component consume randomness without perturbing the
// sequences seen by other components.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }
