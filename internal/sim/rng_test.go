package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(4)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) covered %d values, want 7", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRangeBounds(t *testing.T) {
	r := NewRNG(6)
	for i := 0; i < 1000; i++ {
		v := r.Range(3, 9)
		if v < 3 || v >= 9 {
			t.Fatalf("Range(3,9) = %v", v)
		}
	}
}

func TestNormStatistics(t *testing.T) {
	r := NewRNG(7)
	n := 100000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("normal stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestExpStatistics(t *testing.T) {
	r := NewRNG(8)
	n := 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(5)
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if math.Abs(mean-5) > 0.1 {
		t.Fatalf("exponential mean = %v, want ~5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRNG(9)
	child := parent.Fork()
	// The fork must not replay the parent's stream.
	a := parent.Uint64()
	b := child.Uint64()
	if a == b {
		t.Fatal("fork replays parent stream")
	}
}

func TestDurationJitterBoundsAndDormancy(t *testing.T) {
	a, b := NewRNG(9), NewRNG(9)
	for i := 0; i < 1000; i++ {
		d := a.DurationJitter(time.Second)
		if d < 0 || d >= time.Second {
			t.Fatalf("jitter %v outside [0, 1s)", d)
		}
		// Same seed, same draws.
		if got := b.DurationJitter(time.Second); got != d {
			t.Fatalf("jitter diverged at draw %d: %v vs %v", i, got, d)
		}
	}
	// A non-positive max must not touch the stream at all: a config
	// with zero jitter stays byte-identical to one with no jitter draw.
	c, d := NewRNG(11), NewRNG(11)
	if c.DurationJitter(0) != 0 || c.DurationJitter(-time.Second) != 0 {
		t.Fatal("non-positive max produced nonzero jitter")
	}
	if c.Uint64() != d.Uint64() {
		t.Fatal("DurationJitter(<=0) consumed a draw")
	}
}
