package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEngine(1)
	if e.Now() != 0 {
		t.Fatalf("new engine clock = %v, want 0", e.Now())
	}
}

func TestScheduleAndRunOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(3*time.Second, func() { got = append(got, 3) })
	e.Schedule(1*time.Second, func() { got = append(got, 1) })
	e.Schedule(2*time.Second, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("final clock = %v, want 3s", e.Now())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.Schedule(5*time.Second, func() {
		e.After(2*time.Second, func() { at = e.Now() })
	})
	e.Run()
	if at != 7*time.Second {
		t.Fatalf("After fired at %v, want 7s", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10*time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5*time.Second, func() {})
	})
	e.Run()
}

func TestCancelPreventsExecution(t *testing.T) {
	e := NewEngine(1)
	ran := false
	ev := e.Schedule(time.Second, func() { ran = true })
	ev.Cancel()
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	e := NewEngine(1)
	ran := false
	later := e.Schedule(2*time.Second, func() { ran = true })
	e.Schedule(1*time.Second, func() { later.Cancel() })
	e.Run()
	if ran {
		t.Fatal("event cancelled mid-run still executed")
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for i := 1; i <= 5; i++ {
		d := time.Duration(i) * time.Second
		e.Schedule(d, func() { fired = append(fired, e.Now()) })
	}
	e.RunUntil(3 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events by 3s, want 3", len(fired))
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("clock = %v after RunUntil(3s)", e.Now())
	}
	// Resume: the remaining events must still be there.
	e.RunUntil(10 * time.Second)
	if len(fired) != 5 {
		t.Fatalf("fired %d events total, want 5", len(fired))
	}
	if e.Now() != 10*time.Second {
		t.Fatalf("clock = %v after RunUntil(10s)", e.Now())
	}
}

func TestRunUntilAdvancesEmptyQueue(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(time.Minute)
	if e.Now() != time.Minute {
		t.Fatalf("clock = %v, want 1m", e.Now())
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() {
			count++
			if count == 4 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 4 {
		t.Fatalf("executed %d events after Stop, want 4", count)
	}
	if e.Pending() != 6 {
		t.Fatalf("pending = %d, want 6", e.Pending())
	}
}

func TestNextEventTime(t *testing.T) {
	e := NewEngine(1)
	if e.NextEventTime() != Infinity {
		t.Fatal("empty queue should report Infinity")
	}
	ev := e.Schedule(4*time.Second, func() {})
	e.Schedule(9*time.Second, func() {})
	if e.NextEventTime() != 4*time.Second {
		t.Fatalf("next = %v, want 4s", e.NextEventTime())
	}
	ev.Cancel()
	if e.NextEventTime() != 9*time.Second {
		t.Fatalf("next after cancel = %v, want 9s", e.NextEventTime())
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 7; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() {})
	}
	e.Run()
	if e.Fired() != 7 {
		t.Fatalf("Fired = %d, want 7", e.Fired())
	}
}

func TestEventAt(t *testing.T) {
	e := NewEngine(1)
	ev := e.Schedule(42*time.Second, func() {})
	if ev.At() != 42*time.Second {
		t.Fatalf("At = %v, want 42s", ev.At())
	}
}

func TestNestedScheduling(t *testing.T) {
	// An event chain where each event schedules the next should run to
	// completion in order.
	e := NewEngine(1)
	depth := 0
	var next func()
	next = func() {
		depth++
		if depth < 100 {
			e.After(time.Second, next)
		}
	}
	e.After(time.Second, next)
	e.Run()
	if depth != 100 {
		t.Fatalf("chain depth = %d, want 100", depth)
	}
	if e.Now() != 100*time.Second {
		t.Fatalf("clock = %v, want 100s", e.Now())
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	if Seconds(90*time.Second) != 90 {
		t.Fatal("Seconds(90s) != 90")
	}
	if FromSeconds(2.5) != 2500*time.Millisecond {
		t.Fatalf("FromSeconds(2.5) = %v", FromSeconds(2.5))
	}
}

// Property: events always execute in non-decreasing time order,
// regardless of insertion order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(7)
		var times []Time
		for _, d := range delays {
			e.Schedule(time.Duration(d)*time.Millisecond, func() {
				times = append(times, e.Now())
			})
		}
		e.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPendingExcludesCancelled(t *testing.T) {
	e := NewEngine(1)
	events := make([]*Event, 10)
	for i := range events {
		events[i] = e.Schedule(time.Duration(i+1)*time.Second, func() {})
	}
	if e.Pending() != 10 {
		t.Fatalf("pending = %d, want 10", e.Pending())
	}
	// Cancel from the middle of the heap, not just the head.
	for i := 2; i < 9; i++ {
		events[i].Cancel()
	}
	if e.Pending() != 3 {
		t.Fatalf("pending after cancelling 7 = %d, want 3", e.Pending())
	}
	// Double-cancel stays a no-op.
	events[4].Cancel()
	if e.Pending() != 3 {
		t.Fatalf("pending after double cancel = %d, want 3", e.Pending())
	}
	e.Run()
	if e.Fired() != 3 {
		t.Fatalf("fired = %d, want 3", e.Fired())
	}
	if e.Pending() != 0 {
		t.Fatalf("pending after run = %d, want 0", e.Pending())
	}
}

func TestCancelHeavySchedule(t *testing.T) {
	// The manager pattern that motivated eager removal: every control
	// period schedules a timer and cancels the previous one. The queue
	// must not accumulate dead events, and execution order must match
	// the (time, seq) contract exactly.
	e := NewEngine(1)
	const n = 10000
	var fired []int
	var prev *Event
	for i := 0; i < n; i++ {
		i := i
		ev := e.Schedule(time.Duration(i+1)*time.Millisecond, func() { fired = append(fired, i) })
		if prev != nil {
			prev.Cancel()
		}
		prev = ev
		if e.Pending() != 1 {
			t.Fatalf("pending = %d after %d reschedules, want 1", e.Pending(), i+1)
		}
	}
	e.Run()
	if len(fired) != 1 || fired[0] != n-1 {
		t.Fatalf("fired = %v, want just [%d]", fired, n-1)
	}
}

func TestCancelAfterFireIsNoOp(t *testing.T) {
	e := NewEngine(1)
	ev := e.Schedule(time.Second, func() {})
	e.Schedule(2*time.Second, func() {})
	e.Run()
	ev.Cancel() // already fired: must not disturb the (empty) queue
	if e.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", e.Pending())
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestCancelledHeadAdvancesNextEventTime(t *testing.T) {
	e := NewEngine(1)
	head := e.Schedule(time.Second, func() {})
	e.Schedule(5*time.Second, func() {})
	head.Cancel()
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	if e.NextEventTime() != 5*time.Second {
		t.Fatalf("next = %v, want 5s", e.NextEventTime())
	}
	e.RunUntil(10 * time.Second)
	if e.Fired() != 1 {
		t.Fatalf("fired = %d, want 1", e.Fired())
	}
}
