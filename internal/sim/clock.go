// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, a priority event queue, and a reproducible random
// number generator. All other substrates (power state machines, hosts,
// migrations, the management control loop) are driven by this kernel.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, measured as a duration since the
// start of the simulation. Using time.Duration keeps arithmetic exact
// (integer nanoseconds) and lets callers use natural literals such as
// 5*time.Minute.
type Time = time.Duration

// Infinity is a sentinel time later than any event a simulation will
// schedule. It is used for "never" deadlines.
const Infinity Time = 1<<63 - 1

// Clock tracks the current virtual time. It only moves forward.
type Clock struct {
	now Time
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// advance moves the clock to t. It panics if t is in the past, because
// a backwards clock means the event queue invariant was violated and
// all downstream accounting would silently corrupt.
func (c *Clock) advance(t Time) {
	if t < c.now {
		panic(fmt.Sprintf("sim: clock moved backwards: %v -> %v", c.now, t))
	}
	c.now = t
}

// Seconds converts a virtual time to float64 seconds, the unit used in
// reports and power/energy math.
func Seconds(t Time) float64 { return t.Seconds() }

// FromSeconds converts float64 seconds to a virtual time.
func FromSeconds(s float64) Time { return Time(s * float64(time.Second)) }
