package sim

import (
	"container/heap"
	"fmt"
)

// Engine is the discrete-event simulation core. It owns the clock, the
// event queue, and a deterministic RNG. Engines are not safe for
// concurrent use; a simulation is a single logical thread of control.
type Engine struct {
	clock Clock
	queue eventQueue
	rng   *RNG
	seq   uint64

	fired   uint64
	stopped bool

	// free is the pool of fired ScheduleFunc/AfterFunc events awaiting
	// reuse. Periodic ticks (cluster evaluation, manager control loops,
	// power-transition settles) dominate a simulation's event count and
	// never retain their events, so the steady state schedules without
	// allocating.
	free []*Event
}

// NewEngine returns an engine with the clock at zero and a deterministic
// RNG derived from seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.clock.Now() }

// RNG returns the engine's deterministic random number generator.
func (e *Engine) RNG() *RNG { return e.rng }

// Pending returns the number of live events currently queued.
// Cancelled events are removed from the queue eagerly, so they never
// count here.
func (e *Engine) Pending() int { return len(e.queue) }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Schedule queues fn to run at absolute virtual time at. Scheduling in
// the past panics: it indicates a logic error in the caller.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.clock.Now() {
		panic(fmt.Sprintf("sim: scheduling event in the past: at=%v now=%v", at, e.clock.Now()))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn, index: -1, eng: e}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After queues fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.Schedule(e.clock.Now()+d, fn)
}

// ScheduleFunc queues fn to run at absolute virtual time at, without
// handing out the event. Because no caller can retain (or cancel) it,
// the engine recycles the event object after it fires; hot periodic
// schedules should prefer this over Schedule to keep the event loop
// allocation-free.
func (e *Engine) ScheduleFunc(at Time, fn func()) {
	if at < e.clock.Now() {
		panic(fmt.Sprintf("sim: scheduling event in the past: at=%v now=%v", at, e.clock.Now()))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.fn, ev.cancel = at, fn, false
		ev.seq = e.seq
	} else {
		ev = &Event{at: at, seq: e.seq, fn: fn, index: -1, eng: e, pooled: true}
	}
	e.seq++
	heap.Push(&e.queue, ev)
}

// AfterFunc queues fn to run d after the current time, pooling the
// event like ScheduleFunc.
func (e *Engine) AfterFunc(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.ScheduleFunc(e.clock.Now()+d, fn)
}

// Stop halts Run/RunUntil after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// step pops and executes the next event. It reports false when the
// queue is empty. Cancelled events are dequeued by Cancel itself, so
// the loop below only guards against a cancellation that happens
// while the event is being popped (it cannot today; belt and braces).
func (e *Engine) step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancel {
			continue
		}
		e.clock.advance(ev.at)
		e.fired++
		fn := ev.fn
		if ev.pooled {
			// Recycle before running fn so a tick that immediately
			// reschedules itself reuses this very object.
			ev.fn = nil
			e.free = append(e.free, ev)
		}
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.step() {
	}
}

// RunUntil executes events with time ≤ deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline remain
// queued so the simulation can be resumed.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 {
			break
		}
		next := e.peek()
		if next.at > deadline {
			break
		}
		e.step()
	}
	if !e.stopped && deadline > e.clock.Now() {
		e.clock.advance(deadline)
	}
}

// peek returns the earliest queued event, or nil. Cancelled events
// never linger in the queue (Cancel removes them eagerly), so the
// head is always live.
func (e *Engine) peek() *Event {
	if len(e.queue) == 0 {
		return nil
	}
	return e.queue[0]
}

// NextEventTime returns the time of the earliest queued event, or
// Infinity when the queue is empty.
func (e *Engine) NextEventTime() Time {
	ev := e.peek()
	if ev == nil {
		return Infinity
	}
	return ev.at
}
