package sim

import (
	"testing"
	"time"
)

// BenchmarkEngineThroughput measures raw event dispatch: schedule and
// run 100k chained events.
func BenchmarkEngineThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine(1)
		n := 0
		var next func()
		next = func() {
			n++
			if n < 100_000 {
				e.After(time.Millisecond, next)
			}
		}
		e.After(0, next)
		e.Run()
	}
}

// BenchmarkEngineQueuePressure measures heap behaviour with 10k
// simultaneously queued events in random time order.
func BenchmarkEngineQueuePressure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine(uint64(i + 1))
		rng := e.RNG()
		for j := 0; j < 10_000; j++ {
			e.Schedule(time.Duration(rng.Intn(1_000_000))*time.Microsecond, func() {})
		}
		e.Run()
	}
}

// BenchmarkRNGUint64 measures the generator.
func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

// BenchmarkRNGNorm measures Gaussian draws (Box–Muller).
func BenchmarkRNGNorm(b *testing.B) {
	r := NewRNG(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Norm(0, 1)
	}
	_ = sink
}
