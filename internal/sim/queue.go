package sim

import "container/heap"

// Event is a scheduled callback. The callback runs with the engine's
// clock set to the event's time.
type Event struct {
	at     Time
	seq    uint64 // tie-breaker: FIFO among same-time events
	index  int    // heap index; -1 when not queued
	fn     func()
	cancel bool
	eng    *Engine // owning engine, for eager dequeue on Cancel
	// pooled marks events scheduled via ScheduleFunc/AfterFunc: no
	// caller holds a reference, so the engine recycles them after they
	// fire instead of leaving them to the garbage collector. Events
	// returned from Schedule/After are never pooled — retained handles
	// stay valid (and cancellable) forever.
	pooled bool
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel removes the event from its engine's queue so the callback
// will not run. The removal is eager (O(log n)): cancel-heavy
// schedules — a manager re-planning wake timers every control period,
// say — neither pile dead events into the heap nor distort Pending.
// Cancelling an already-fired or already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e.cancel {
		return
	}
	e.cancel = true
	if e.eng != nil && e.index >= 0 {
		heap.Remove(&e.eng.queue, e.index)
	}
}

// Cancelled reports whether the event was cancelled.
func (e *Event) Cancelled() bool { return e.cancel }

// eventQueue is a min-heap of events ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

var _ heap.Interface = (*eventQueue)(nil)
