package sim

import "container/heap"

// Event is a scheduled callback. The callback runs with the engine's
// clock set to the event's time.
type Event struct {
	at     Time
	seq    uint64 // tie-breaker: FIFO among same-time events
	index  int    // heap index; -1 when not queued
	fn     func()
	cancel bool
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel marks the event so its callback will not run. Cancelling an
// already-fired or already-cancelled event is a no-op.
func (e *Event) Cancel() { e.cancel = true }

// Cancelled reports whether the event was cancelled.
func (e *Event) Cancelled() bool { return e.cancel }

// eventQueue is a min-heap of events ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

var _ heap.Interface = (*eventQueue)(nil)
