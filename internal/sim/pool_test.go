package sim

import (
	"testing"
	"time"
)

// TestScheduleFuncPoolReuse verifies that events scheduled through the
// non-returning API are recycled: a self-rescheduling tick — the shape
// of every periodic loop in the simulator — must reuse one event
// object instead of allocating a fresh one per firing.
func TestScheduleFuncPoolReuse(t *testing.T) {
	eng := NewEngine(1)
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired < 1000 {
			eng.AfterFunc(Time(time.Second), tick)
		}
	}
	eng.AfterFunc(0, tick)
	// Warm up: the first firing seeds the freelist.
	eng.RunUntil(Time(time.Second))
	avg := testing.AllocsPerRun(100, func() {
		eng.RunUntil(eng.Now() + Time(time.Second))
	})
	if avg != 0 {
		t.Fatalf("self-rescheduling AfterFunc tick allocates %.2f per firing, want 0", avg)
	}
	if fired == 0 {
		t.Fatal("tick never fired")
	}
}

// TestScheduleFuncInterleavedWithRetained checks that pooling never
// recycles events handed out by Schedule/After: a retained handle must
// stay cancellable (and report Cancelled) even after many pooled
// events have been recycled through the freelist.
func TestScheduleFuncInterleavedWithRetained(t *testing.T) {
	eng := NewEngine(1)
	ran := false
	retained := eng.After(Time(10*time.Second), func() { ran = true })
	for i := 0; i < 100; i++ {
		eng.AfterFunc(Time(time.Second), func() {})
	}
	eng.RunUntil(Time(5 * time.Second))
	retained.Cancel()
	eng.RunUntil(Time(20 * time.Second))
	if ran {
		t.Fatal("cancelled retained event ran after pooled events recycled")
	}
	if !retained.Cancelled() {
		t.Fatal("retained handle lost its cancelled mark")
	}
}
