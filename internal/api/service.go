// The async simulation service: the v1 HTTP surface over the job
// queue, the content-addressed result cache, the shared-world
// prototype cache, streaming progress, and the Prometheus metrics
// endpoint. The legacy synchronous /api routes live in api.go; this
// file is everything that makes the daemon multi-tenant and
// production-shaped.
package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"agilepower"
	"agilepower/internal/apimetrics"
	"agilepower/internal/jobs"
	"agilepower/internal/rescache"
)

// RunResult is the canonical terminal payload of an async run: the
// run summary with no server-assigned fields (no job ID, no cached
// flag), so a cache hit's bytes are identical to the cold run that
// populated it. Whether a response came from the cache travels out of
// band (the X-Cache header and the job's cached flag).
type RunResult struct {
	Name     string  `json:"name"`
	Policy   string  `json:"policy"`
	Hosts    int     `json:"hosts"`
	VMs      int     `json:"vms"`
	HorizonH float64 `json:"horizonHours"`

	EnergyKWh         float64 `json:"energyKWh"`
	MeanPowerW        float64 `json:"meanPowerW"`
	PeakPowerW        float64 `json:"peakPowerW"`
	Satisfaction      float64 `json:"satisfaction"`
	ViolationFraction float64 `json:"violationFraction"`
	Migrations        int     `json:"migrations"`
	Sleeps            int     `json:"sleeps"`
	Wakes             int     `json:"wakes"`
	OracleKWh         float64 `json:"oracleKWh,omitempty"`

	ChurnArrived     int     `json:"churnArrived,omitempty"`
	ChurnPlaced      int     `json:"churnPlaced,omitempty"`
	ProvisionP95Secs float64 `json:"provisionP95Secs,omitempty"`

	SuspendFailures   int `json:"suspendFailures,omitempty"`
	WakeFailures      int `json:"wakeFailures,omitempty"`
	Crashes           int `json:"crashes,omitempty"`
	AssertionFailures int `json:"assertionFailures,omitempty"`
}

// ProgressEvent is one streamed progress sample (an SSE "progress"
// event), the wire form of agilepower.Progress.
type ProgressEvent struct {
	AtHours        float64 `json:"atHours"`
	PowerW         float64 `json:"powerW"`
	DemandCores    float64 `json:"demandCores"`
	DeliveredCores float64 `json:"deliveredCores"`
	ActiveHosts    int     `json:"activeHosts"`
	StrandedVMs    int     `json:"strandedVMs,omitempty"`
	PendingVMs     int     `json:"pendingVMs,omitempty"`
}

// SubmitResponse acknowledges an async submission (202).
type SubmitResponse struct {
	Job       jobs.Status `json:"job"`
	StatusURL string      `json:"statusUrl"`
	ResultURL string      `json:"resultUrl"`
	StreamURL string      `json:"streamUrl"`
}

// runPayload is the internal job payload: the scenario to execute,
// its result-cache key, and (for /v1/runs jobs) the world fingerprint
// that lets repeated fleet shapes fork a shared prototype.
type runPayload struct {
	key      string
	worldKey string // "" = always run cold (scenario-file jobs)
	sc       agilepower.Scenario
}

// protoEntry is one cached world: the base scenario that owns the VM
// slice and profile pointer (Prototype.Fork requires pointer
// identity, not just equal specs) plus the built prototype. The
// sync.Once makes the first job for a shape pay construction while
// concurrent jobs for the same shape wait instead of duplicating it.
type protoEntry struct {
	once  sync.Once
	sc    agilepower.Scenario
	proto *agilepower.Prototype
	err   error
}

// protoCacheMax bounds distinct cached world shapes; each entry holds
// a full host fleet and VM traces, so the map cannot grow with every
// novel request forever.
const protoCacheMax = 64

// instruments is the server's direct-write metric set (callback
// instruments read the queue and cache at scrape time and need no
// fields here).
type instruments struct {
	start   time.Time
	runWall *apimetrics.Histogram
	waitReq *apimetrics.Histogram
}

// registerMetrics wires the /metrics instruments to the queue, the
// cache, and the executor.
func (s *Server) registerMetrics() {
	m := s.metrics
	s.im.start = time.Now()
	m.Gauge("agilepower_jobs_queued", "Jobs waiting in the queue.", func() float64 {
		queued, _ := s.queue.Depth()
		return float64(queued)
	})
	m.Gauge("agilepower_jobs_running", "Jobs currently executing.", func() float64 {
		_, running := s.queue.Depth()
		return float64(running)
	})
	m.CounterFunc("agilepower_jobs_submitted_total", "Jobs accepted for execution.", func() uint64 {
		return s.queue.Counters().Submitted
	})
	m.CounterFunc("agilepower_jobs_completed_total", "Jobs that reached done (including cache hits).", func() uint64 {
		return s.queue.Counters().Completed
	})
	m.CounterFunc("agilepower_jobs_failed_total", "Jobs that failed.", func() uint64 {
		return s.queue.Counters().Failed
	})
	m.CounterFunc("agilepower_jobs_cancelled_total", "Jobs cancelled before or during execution.", func() uint64 {
		return s.queue.Counters().Cancelled
	})
	m.CounterFunc("agilepower_jobs_rejected_total", "Submissions rejected by backpressure or draining.", func() uint64 {
		return s.queue.Counters().Rejected
	})
	m.Gauge("agilepower_runs_per_second", "Mean completed runs per second since start.", func() float64 {
		secs := time.Since(s.im.start).Seconds()
		if secs <= 0 {
			return 0
		}
		return float64(s.queue.Counters().Completed) / secs
	})
	m.CounterFunc("agilepower_cache_hits_total", "Result-cache hits.", func() uint64 {
		return s.cache.Stats().Hits
	})
	m.CounterFunc("agilepower_cache_misses_total", "Result-cache misses.", func() uint64 {
		return s.cache.Stats().Misses
	})
	m.CounterFunc("agilepower_cache_evictions_total", "Result-cache LRU evictions.", func() uint64 {
		return s.cache.Stats().Evictions
	})
	m.Gauge("agilepower_cache_hit_ratio", "Result-cache hits / lookups (0 before any lookup).", func() float64 {
		return s.cache.Stats().HitRate()
	})
	m.Gauge("agilepower_cache_bytes", "Result-cache resident bytes.", func() float64 {
		return float64(s.cache.Stats().Bytes)
	})
	m.Gauge("agilepower_cache_entries", "Result-cache resident entries.", func() float64 {
		return float64(s.cache.Stats().Entries)
	})
	s.im.runWall = m.Histogram("agilepower_run_wall_seconds",
		"Wall-clock seconds per executed simulation (cache hits excluded).", nil)
	s.im.waitReq = m.Histogram("agilepower_wait_request_seconds",
		"Handler seconds for POST /v1/runs?wait=1, hits and misses together.", nil)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WritePrometheus(w)
}

// canonicalRunRequest returns the request's canonical bytes for
// content addressing: the decoded struct re-marshalled (deterministic
// field order), with the tenant cleared — results are a pure function
// of the scenario, so tenants submitting identical runs share cache
// entries — and a format tag so run-request keys can never collide
// with scenario-file keys.
func canonicalRunRequest(req RunRequest) ([]byte, error) {
	req.Tenant = ""
	data, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	return append([]byte("run:"), data...), nil
}

// worldFingerprint hashes the world-defining request fields — the
// cell knobs Prototype.Fork lets vary (name, policy, manager tuning,
// churn, tenant) are cleared — keying the prototype cache so repeated
// fleet shapes skip world construction. Seed stays in: the fleet
// builders consume it, so different seeds are different worlds.
func worldFingerprint(req RunRequest) (string, error) {
	req.Name = ""
	req.Policy = ""
	req.PeriodMinutes = 0
	req.TargetUtil = 0
	req.SpareHosts = 0
	req.PredictiveWake = false
	req.Churn = nil
	req.Tenant = ""
	data, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	return rescache.Key(agilepower.CodeVersion, append([]byte("world:"), data...)), nil
}

// protoFor returns the cached world entry for a fingerprint, creating
// it if needed (bounded: a full cache drops an arbitrary entry — the
// map holds entire fleets and must not grow with every novel shape).
func (s *Server) protoFor(worldKey string) *protoEntry {
	s.protoMu.Lock()
	defer s.protoMu.Unlock()
	if e, ok := s.protos[worldKey]; ok {
		return e
	}
	if len(s.protos) >= protoCacheMax {
		for k := range s.protos {
			delete(s.protos, k)
			break
		}
	}
	e := &protoEntry{}
	s.protos[worldKey] = e
	return e
}

// startSession builds the job's session: a fork of the shared world
// prototype when the payload carries a world fingerprint, a cold
// start otherwise. Forked and cold runs are byte-identical (the
// determinism gate pins it); forking just skips host construction and
// initial placement for repeated fleet shapes.
func (s *Server) startSession(p *runPayload) (*agilepower.Session, error) {
	if p.worldKey == "" {
		return p.sc.Start()
	}
	e := s.protoFor(p.worldKey)
	e.once.Do(func() {
		e.sc = p.sc
		e.proto, e.err = p.sc.Prototype()
	})
	if e.err != nil {
		// Prototype construction failed; the cold path re-surfaces the
		// same error (or succeeds where construction has since been
		// fixed — it cannot be, but cold is the conservative fallback).
		return p.sc.Start()
	}
	// Overlay the cell knobs on the entry's base scenario so the world
	// fields keep pointer identity with the prototype (Fork requires
	// the same VMs slice and profile pointer, not merely equal specs).
	cell := e.sc
	cell.Name = p.sc.Name
	cell.Manager = p.sc.Manager
	cell.Churn = p.sc.Churn
	return e.proto.Fork(cell)
}

// runJob is the queue's Runner: execute the payload's scenario in
// chunks of simulated time (checking for cancellation between
// chunks), publish throttled progress to subscribers, encode the
// canonical result, and populate the result cache.
func (s *Server) runJob(ctx context.Context, j *jobs.Job) ([]byte, error) {
	p, ok := j.Payload().(*runPayload)
	if !ok {
		return nil, fmt.Errorf("api: job %s has no run payload", j.ID())
	}
	started := time.Now()
	se, err := s.startSession(p)
	if err != nil {
		return nil, err
	}
	// Progress: observers run on this goroutine (inside RunUntil), so
	// lastEmit needs no lock. Emit at most one event per ProgressEvery
	// of simulated time; the terminal result is delivered via Done and
	// cannot be missed.
	lastEmit := -s.cfg.ProgressEvery
	se.OnProgress(func(pr agilepower.Progress) {
		if pr.At-lastEmit < s.cfg.ProgressEvery {
			return
		}
		lastEmit = pr.At
		j.Publish(ProgressEvent{
			AtHours:        pr.At.Hours(),
			PowerW:         pr.PowerW,
			DemandCores:    pr.DemandCores,
			DeliveredCores: pr.DeliveredCores,
			ActiveHosts:    pr.ActiveHosts,
			StrandedVMs:    pr.StrandedVMs,
			PendingVMs:     pr.PendingVMs,
		})
	})
	horizon := p.sc.Horizon
	if horizon <= 0 {
		horizon = 24 * time.Hour
	}
	for now := time.Duration(0); now < horizon; {
		if ctx.Err() != nil {
			se.Result() // retire the session's workers before abandoning it
			return nil, ctx.Err()
		}
		now += s.cfg.RunChunk
		if now > horizon {
			now = horizon
		}
		if err := se.RunUntil(now); err != nil {
			return nil, err
		}
	}
	res := se.Result()
	out := RunResult{
		Name:              p.sc.Name,
		Policy:            res.Policy,
		Hosts:             res.Hosts,
		VMs:               len(p.sc.VMs),
		HorizonH:          res.Horizon.Hours(),
		EnergyKWh:         res.EnergyKWh(),
		MeanPowerW:        res.MeanPowerW,
		PeakPowerW:        res.PeakPowerW,
		Satisfaction:      res.Satisfaction,
		ViolationFraction: res.ViolationFraction,
		Migrations:        res.Migrations.Completed,
		Sleeps:            res.Sleeps,
		Wakes:             res.Wakes,
		ChurnArrived:      res.Churn.Arrived,
		ChurnPlaced:       res.Churn.Placed,
		ProvisionP95Secs:  res.Churn.ProvisionP95.Seconds(),
		SuspendFailures:   res.SuspendFailures,
		WakeFailures:      res.WakeFailures,
		Crashes:           res.Crashes,
		AssertionFailures: res.AssertionFailures,
	}
	if oracle, err := res.OracleEnergy(); err == nil {
		out.OracleKWh = oracle.KWh()
	}
	body, err := json.Marshal(out)
	if err != nil {
		return nil, err
	}
	s.cache.Put(p.key, body)
	s.im.runWall.Observe(time.Since(started).Seconds())
	return body, nil
}

// submitError maps queue submission errors to HTTP status codes.
func submitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, jobs.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "server draining")
	case errors.Is(err, jobs.ErrQueueFull), errors.Is(err, jobs.ErrTenantFull):
		writeError(w, http.StatusTooManyRequests, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func jobURLs(j *jobs.Job) SubmitResponse {
	base := "/v1/jobs/" + j.ID()
	return SubmitResponse{
		Job:       j.Snapshot(),
		StatusURL: base,
		ResultURL: base + "/result",
		StreamURL: base + "/stream",
	}
}

// writeAccepted emits the 202 acknowledgement for an async
// submission.
func writeAccepted(w http.ResponseWriter, j *jobs.Job) {
	resp := jobURLs(j)
	w.Header().Set("Location", resp.StatusURL)
	writeJSON(w, http.StatusAccepted, resp)
}

// writeResult emits a terminal run result with its cache disposition.
func writeResult(w http.ResponseWriter, body []byte, hit bool, jobID string) {
	if hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	if jobID != "" {
		w.Header().Set("X-Job-Id", jobID)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// submitCommon runs the shared async-submission tail: cache lookup,
// enqueue (or cache-hit fast path), and the wait=1 blocking mode.
func (s *Server) submitCommon(w http.ResponseWriter, r *http.Request, tenant, key string, sc agilepower.Scenario, worldKey string) {
	began := time.Now()
	wait := r.URL.Query().Get("wait") == "1" || r.URL.Query().Get("wait") == "true"
	if body, ok := s.cache.Get(key); ok {
		// Cache hit: no simulation, no queue wait — the job is born
		// terminal for bookkeeping and the bytes are served as stored
		// (identical to the cold response that populated them).
		j, err := s.queue.SubmitCompleted(tenant, nil, body)
		if err != nil {
			submitError(w, err)
			return
		}
		if wait {
			writeResult(w, body, true, j.ID())
			s.im.waitReq.Observe(time.Since(began).Seconds())
			return
		}
		writeAccepted(w, j)
		return
	}
	j, err := s.queue.Submit(tenant, &runPayload{key: key, worldKey: worldKey, sc: sc})
	if err != nil {
		submitError(w, err)
		return
	}
	if !wait {
		writeAccepted(w, j)
		return
	}
	select {
	case <-r.Context().Done():
		// The client went away; the job keeps running (its result still
		// populates the cache for the retry).
		return
	case <-j.Done():
	}
	body, errMsg := j.Result()
	switch j.State() {
	case jobs.Done:
		writeResult(w, body, j.Cached(), j.ID())
		s.im.waitReq.Observe(time.Since(began).Seconds())
	case jobs.Cancelled:
		writeError(w, http.StatusConflict, "job %s cancelled", j.ID())
	default:
		writeError(w, http.StatusUnprocessableEntity, "run failed: %s", errMsg)
	}
}

// handleSubmitRun is POST /v1/runs: the async (202 + job ID) form of
// run submission, with ?wait=1 to block for the terminal result.
func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	sc, err := s.buildScenario(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	canonical, err := canonicalRunRequest(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	worldKey, err := worldFingerprint(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.submitCommon(w, r, req.Tenant, rescache.Key(agilepower.CodeVersion, canonical), sc, worldKey)
}

// handleSubmitScenario is POST /v1/scenarios: submit a full scenario
// file (fleets, events, assertions, chaos — the format cmd/scenario
// and `agilepm -config` load) as an async job. The tenant comes from
// the X-Tenant header or ?tenant= (the file format has no tenant
// field). Scenario-file jobs always run cold — their worlds vary too
// much to pool — but their results are cached like any other.
func (s *Server) handleSubmitScenario(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	// Decode the file form first (strictly, mirroring ParseScenario) so
	// the canonical bytes and admission counts come from the decoded
	// struct, not the client's formatting.
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f agilepower.ScenarioFile
	if err := dec.Decode(&f); err != nil {
		writeError(w, http.StatusBadRequest, "decoding scenario file: %v", err)
		return
	}
	if hosts := f.TotalHosts(); hosts <= 0 || hosts > s.cfg.MaxHosts {
		writeError(w, http.StatusBadRequest, "hosts must be in [1, %d]", s.cfg.MaxHosts)
		return
	}
	if vms := f.TotalVMs(); vms <= 0 || vms > s.cfg.MaxVMs {
		writeError(w, http.StatusBadRequest, "vms must be in [1, %d]", s.cfg.MaxVMs)
		return
	}
	sc, err := f.Build()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if sc.Horizon < 0 || sc.Horizon > s.cfg.MaxHorizon {
		writeError(w, http.StatusBadRequest, "horizon must be in (0, %v]", s.cfg.MaxHorizon)
		return
	}
	if err := sc.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	canonical, err := f.Canonical()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = r.URL.Query().Get("tenant")
	}
	key := rescache.Key(agilepower.CodeVersion, append([]byte("scenario:"), canonical...))
	s.submitCommon(w, r, tenant, key, sc, "")
}

func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	j, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "job %q not found", r.PathValue("id"))
		return nil, false
	}
	return j, true
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	all := s.queue.Jobs(r.URL.Query().Get("tenant"))
	out := make([]jobs.Status, 0, len(all))
	for _, j := range all {
		out = append(out, j.Snapshot())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	switch err := s.queue.Cancel(id); {
	case errors.Is(err, jobs.ErrNotFound):
		writeError(w, http.StatusNotFound, "job %q not found", id)
	case errors.Is(err, jobs.ErrTerminal):
		writeError(w, http.StatusConflict, "job %q already terminal", id)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
	default:
		j, _ := s.queue.Get(id)
		if j != nil {
			// A running job unwinds asynchronously; report its state as
			// of now.
			writeJSON(w, http.StatusOK, j.Snapshot())
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	body, errMsg := j.Result()
	switch j.State() {
	case jobs.Done:
		writeResult(w, body, j.Cached(), j.ID())
	case jobs.Failed:
		writeError(w, http.StatusUnprocessableEntity, "run failed: %s", errMsg)
	case jobs.Cancelled:
		writeError(w, http.StatusConflict, "job %s cancelled", j.ID())
	default:
		writeError(w, http.StatusConflict, "job %s not finished (state %s)", j.ID(), j.State())
	}
}

// sseEvent writes one Server-Sent Event. data must be newline-free
// (json.Marshal output is).
func sseEvent(w io.Writer, event string, data []byte) error {
	_, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}

// handleJobStream is GET /v1/jobs/{id}/stream: a Server-Sent Events
// feed of the job — an initial "status" event, throttled "progress"
// events while it runs (lossy by design: a slow client misses
// samples, never the outcome), and a terminal "result" / "failed" /
// "cancelled" event, after which the stream closes.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ch, cancelSub := j.Subscribe()
	defer cancelSub()

	status, _ := json.Marshal(j.Snapshot())
	if sseEvent(w, "status", status) != nil {
		return
	}
	fl.Flush()

	terminal := func() {
		body, errMsg := j.Result()
		switch j.State() {
		case jobs.Done:
			_ = sseEvent(w, "result", body)
		case jobs.Cancelled:
			_ = sseEvent(w, "cancelled", []byte(`{"state":"cancelled"}`))
		default:
			msg, _ := json.Marshal(map[string]string{"state": "failed", "error": errMsg})
			_ = sseEvent(w, "failed", msg)
		}
		fl.Flush()
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-j.Done():
			// Flush progress already buffered before the terminal event.
			for {
				select {
				case ev := <-ch:
					data, _ := json.Marshal(ev)
					if sseEvent(w, "progress", data) != nil {
						return
					}
				default:
					terminal()
					return
				}
			}
		case ev := <-ch:
			data, _ := json.Marshal(ev)
			if sseEvent(w, "progress", data) != nil {
				return
			}
			fl.Flush()
		}
	}
}
