package api

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"agilepower/internal/jobs"
)

// newService builds a server with explicit config plus its test
// listener, returning both (tests reach into the server for counters).
func newService(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = s.Close()
	})
	return s, ts
}

func postURL(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// postWait submits a run with wait=1 and returns (status, X-Cache,
// body bytes).
func postWait(t *testing.T, base, body string) (int, string, []byte) {
	t.Helper()
	resp := postURL(t, base+"/v1/runs?wait=1", body)
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("X-Cache"), raw
}

func waitJobState(t *testing.T, base, id, want string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st jobs.Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s state = %s, want %s", id, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

const smallRun = `{"hosts":4,"vms":8,"fleet":"flat","flatDemand":0.5,"horizonHours":1,"seed":7}`

func TestAsyncRunLifecycle(t *testing.T) {
	_, ts := newService(t, Config{})

	resp := postURL(t, ts.URL+"/v1/runs", smallRun)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sub.Job.ID == "" || sub.Job.State != "queued" && sub.Job.State != "running" && sub.Job.State != "done" {
		t.Fatalf("submit ack = %+v", sub)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+sub.Job.ID {
		t.Fatalf("Location = %q", loc)
	}

	waitJobState(t, ts.URL, sub.Job.ID, "done")

	res, err := http.Get(ts.URL + sub.ResultURL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d", res.StatusCode)
	}
	if xc := res.Header.Get("X-Cache"); xc != "miss" {
		t.Fatalf("X-Cache = %q, want miss", xc)
	}
	var out RunResult
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Policy != "dpm-s3" || out.EnergyKWh <= 0 || out.Satisfaction <= 0 {
		t.Fatalf("result = %+v", out)
	}

	// The job list knows it.
	listResp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	list := decode[[]jobs.Status](t, listResp)
	if len(list) != 1 || list[0].ID != sub.Job.ID {
		t.Fatalf("jobs list = %+v", list)
	}
}

// TestCacheByteIdentityAcrossPolicies is the acceptance gate for the
// result cache: for every policy, a repeated identical request is
// served from the cache (X-Cache: hit) without executing the
// simulator, and its bytes are identical both to the cold response
// that populated the entry and to a cold run on a completely separate
// server — the byte-identity guarantee that makes content addressing
// sound.
func TestCacheByteIdentityAcrossPolicies(t *testing.T) {
	s, ts := newService(t, Config{})
	_, ts2 := newService(t, Config{}) // fresh server: independent cold runs

	for _, policy := range []string{"static", "nopm-drm", "dpm-s5", "dpm-s3"} {
		body := fmt.Sprintf(`{"hosts":8,"vms":32,"fleet":"mixed","horizonHours":4,"seed":11,"policy":%q}`, policy)
		execBefore := s.im.runWall.Count()

		st, xc, cold := postWait(t, ts.URL, body)
		if st != http.StatusOK || xc != "miss" {
			t.Fatalf("%s cold: status %d X-Cache %q", policy, st, xc)
		}
		if got := s.im.runWall.Count(); got != execBefore+1 {
			t.Fatalf("%s cold: executions = %d, want %d", policy, got, execBefore+1)
		}

		st, xc, hot := postWait(t, ts.URL, body)
		if st != http.StatusOK || xc != "hit" {
			t.Fatalf("%s hot: status %d X-Cache %q", policy, st, xc)
		}
		if !bytes.Equal(cold, hot) {
			t.Fatalf("%s: cached bytes differ from cold bytes:\ncold %s\nhot  %s", policy, cold, hot)
		}
		if got := s.im.runWall.Count(); got != execBefore+1 {
			t.Fatalf("%s hot: cache hit executed the simulator (executions %d)", policy, got)
		}

		st, xc, other := postWait(t, ts2.URL, body)
		if st != http.StatusOK || xc != "miss" {
			t.Fatalf("%s other server: status %d X-Cache %q", policy, st, xc)
		}
		if !bytes.Equal(cold, other) {
			t.Fatalf("%s: cold bytes differ across servers:\nA %s\nB %s", policy, cold, other)
		}
	}
	if hits := s.queue.Counters().CacheHits; hits != 4 {
		t.Fatalf("cache-hit completions = %d, want 4", hits)
	}
}

// TestPrototypeReuseAcrossPolicies: jobs sharing a world shape fork
// one cached prototype — and the forked results must byte-match a
// cold server that never pools worlds.
func TestPrototypeReuseAcrossPolicies(t *testing.T) {
	s, ts := newService(t, Config{})
	for _, policy := range []string{"static", "dpm-s3", "dpm-s5"} {
		body := fmt.Sprintf(`{"hosts":6,"vms":24,"fleet":"diurnal","horizonHours":3,"seed":5,"policy":%q}`, policy)
		if st, _, _ := postWait(t, ts.URL, body); st != http.StatusOK {
			t.Fatalf("%s: status %d", policy, st)
		}
	}
	s.protoMu.Lock()
	worlds := len(s.protos)
	s.protoMu.Unlock()
	if worlds != 1 {
		t.Fatalf("cached worlds = %d, want 1 (policies share a fleet shape)", worlds)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newService(t, Config{})
	// One cold run and one hit so the counters are nonzero.
	if st, _, _ := postWait(t, ts.URL, smallRun); st != http.StatusOK {
		t.Fatalf("cold status %d", st)
	}
	if st, xc, _ := postWait(t, ts.URL, smallRun); st != http.StatusOK || xc != "hit" {
		t.Fatalf("hot status %d X-Cache %q", st, xc)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"# TYPE agilepower_jobs_queued gauge",
		"agilepower_jobs_queued 0",
		"# TYPE agilepower_jobs_completed_total counter",
		"agilepower_jobs_completed_total 2",
		"agilepower_cache_hits_total 1",
		"agilepower_cache_misses_total 1",
		"agilepower_cache_hit_ratio 0.5",
		"# TYPE agilepower_run_wall_seconds histogram",
		"agilepower_run_wall_seconds_count 1",
		"agilepower_wait_request_seconds_count 2",
		"# TYPE agilepower_runs_per_second gauge",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, text)
		}
	}
}

func TestProgressPublished(t *testing.T) {
	_, ts := newService(t, Config{ProgressEvery: 10 * time.Minute})
	resp := postURL(t, ts.URL+"/v1/runs", `{"hosts":4,"vms":8,"fleet":"flat","horizonHours":2,"seed":9}`)
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st := waitJobState(t, ts.URL, sub.Job.ID, "done")
	// 2h at one event per 10 simulated minutes ⇒ at least 10 published.
	if st.Progress < 10 {
		t.Fatalf("progress events = %d, want >= 10", st.Progress)
	}
	if st.WallSeconds <= 0 {
		t.Fatalf("wallSeconds = %v", st.WallSeconds)
	}
}

// TestJobStreamSSE reads the Server-Sent Events feed of a finished
// job: a status event followed by the terminal result event carrying
// the exact result bytes.
func TestJobStreamSSE(t *testing.T) {
	_, ts := newService(t, Config{})
	resp := postURL(t, ts.URL+"/v1/runs", smallRun)
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitJobState(t, ts.URL, sub.Job.ID, "done")

	stream, err := http.Get(ts.URL + sub.StreamURL)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	var events []string
	var resultData string
	sc := bufio.NewScanner(stream.Body)
	current := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			current = strings.TrimPrefix(line, "event: ")
			events = append(events, current)
		case strings.HasPrefix(line, "data: ") && current == "result":
			resultData = strings.TrimPrefix(line, "data: ")
		}
	}
	if len(events) < 2 || events[0] != "status" || events[len(events)-1] != "result" {
		t.Fatalf("event sequence = %v", events)
	}
	var out RunResult
	if err := json.Unmarshal([]byte(resultData), &out); err != nil {
		t.Fatalf("result event not JSON: %v (%q)", err, resultData)
	}
	if out.EnergyKWh <= 0 {
		t.Fatalf("streamed result = %+v", out)
	}
}

// TestSubmitScenarioFile drives POST /v1/scenarios with a full
// scenario file — fleets, a timed event script, and assertions — and
// checks the result is cached like any run.
func TestSubmitScenarioFile(t *testing.T) {
	_, ts := newService(t, Config{})
	file := `{
		"name": "svc-drill",
		"hosts": 8,
		"fleets": [{"kind": "diurnal", "count": 24}],
		"horizonHours": 4,
		"policy": "dpm-s3",
		"seed": 13,
		"events": [{"at": "1h", "action": "maintenance", "target": "host-1"},
		           {"at": "2h", "action": "maintenance-end", "target": "host-1"}],
		"assert": [{"kind": "no-stranded-vm", "over": "10m"}]
	}`
	post := func() (int, string, []byte) {
		resp := postURL(t, ts.URL+"/v1/scenarios?wait=1&tenant=ops", file)
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header.Get("X-Cache"), raw
	}
	st, xc, cold := post()
	if st != http.StatusOK || xc != "miss" {
		t.Fatalf("cold: status %d X-Cache %q body %s", st, xc, cold)
	}
	var out RunResult
	if err := json.Unmarshal(cold, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != "svc-drill" || out.EnergyKWh <= 0 || out.AssertionFailures != 0 {
		t.Fatalf("scenario result = %+v", out)
	}
	st, xc, hot := post()
	if st != http.StatusOK || xc != "hit" || !bytes.Equal(cold, hot) {
		t.Fatalf("hot: status %d X-Cache %q identical=%v", st, xc, bytes.Equal(cold, hot))
	}

	// Unknown keys are rejected, mirroring ParseScenario.
	resp := postURL(t, ts.URL+"/v1/scenarios", `{"hosts":4,"fleets":[{"kind":"flat","count":4}],"telemtryCap":5}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("typo'd scenario status = %d, want 400", resp.StatusCode)
	}
}

// TestBackpressureAndCancel pins the HTTP mapping of queue
// backpressure (429) and both cancellation paths (queued and
// running).
func TestBackpressureAndCancel(t *testing.T) {
	_, ts := newService(t, Config{Workers: 1, QueueDepth: 1, TenantQueueDepth: 1, RunChunk: 30 * time.Minute})

	// A long run to occupy the single worker.
	long := `{"hosts":32,"vms":128,"fleet":"diurnal","horizonHours":700,"seed":3}`
	resp := postURL(t, ts.URL+"/v1/runs", long)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker submit status = %d", resp.StatusCode)
	}
	var blocker SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&blocker); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitJobState(t, ts.URL, blocker.Job.ID, "running")

	// Second job queues (the worker is busy)…
	resp = postURL(t, ts.URL+"/v1/runs", smallRun)
	var queued SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&queued); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit status = %d", resp.StatusCode)
	}

	// …and the third exceeds QueueDepth: backpressure, not buffering.
	resp = postURL(t, ts.URL+"/v1/runs", `{"hosts":4,"vms":8,"fleet":"flat","horizonHours":1,"seed":99}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit status = %d, want 429", resp.StatusCode)
	}

	// Cancel the queued job: immediate.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.Job.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	waitJobState(t, ts.URL, queued.Job.ID, "cancelled")

	// Cancel the running job: its context unwinds between chunks.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+blocker.Job.ID, nil)
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	waitJobState(t, ts.URL, blocker.Job.ID, "cancelled")

	// Cancelling a terminal job conflicts.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+blocker.Job.ID, nil)
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusConflict {
		t.Fatalf("double cancel status = %d, want 409", dresp.StatusCode)
	}
}

func TestDrainRejectsSubmissions(t *testing.T) {
	s, ts := newService(t, Config{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	resp := postURL(t, ts.URL+"/v1/runs", smallRun)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status = %d, want 503", resp.StatusCode)
	}
}

// TestConcurrentSessions is the in-process load test: many client
// goroutines, several tenants, a hot/cold request mix — zero failed
// jobs and byte-identical hot responses, verified under `make race`.
func TestConcurrentSessions(t *testing.T) {
	s, ts := newService(t, Config{})

	const clients = 24
	const perClient = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	var mu sync.Mutex
	byBody := map[string][]byte{} // first-seen bytes per request body

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				// Three hot shapes shared across clients plus one cold
				// per-client seed.
				seed := (c*perClient+i)%3 + 1
				if i == perClient-1 {
					seed = 1000 + c
				}
				body := fmt.Sprintf(
					`{"hosts":4,"vms":8,"fleet":"flat","flatDemand":0.5,"horizonHours":1,"seed":%d,"tenant":"t%d"}`,
					seed, c%4)
				resp, err := http.Post(ts.URL+"/v1/runs?wait=1", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					continue
				}
				raw, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d: %s", resp.StatusCode, raw)
					continue
				}
				mu.Lock()
				if prev, ok := byBody[body]; ok && !bytes.Equal(prev, raw) {
					errs <- fmt.Errorf("nondeterministic bytes for %s", body)
				} else if !ok {
					byBody[body] = raw
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	ctrs := s.queue.Counters()
	if ctrs.Failed != 0 || ctrs.Rejected != 0 {
		t.Fatalf("counters = %+v, want zero failed/rejected", ctrs)
	}
	if ctrs.CacheHits == 0 {
		t.Fatalf("no cache hits across %d hot requests", clients*perClient)
	}
}

func TestShardsDeltaKnobsByteIdentical(t *testing.T) {
	_, ts := newService(t, Config{})
	base := `{"hosts":8,"vms":32,"fleet":"mixed","horizonHours":3,"seed":21%s}`
	st, _, plain := postWait(t, ts.URL, fmt.Sprintf(base, ``))
	if st != http.StatusOK {
		t.Fatalf("plain status %d", st)
	}
	for _, knobs := range []string{
		`,"shards":4,"evalWorkers":2`,
		`,"delta":true`,
		`,"shards":2,"delta":true,"telemetryCap":64`,
	} {
		st, xc, got := postWait(t, ts.URL, fmt.Sprintf(base, knobs))
		if st != http.StatusOK {
			t.Fatalf("%s status %d", knobs, st)
		}
		// Different knobs hash to different cache keys (conservative),
		// so these are cold executions…
		if xc != "miss" {
			t.Fatalf("%s X-Cache = %q", knobs, xc)
		}
		// …whose summary must match the serial run byte-for-byte, except
		// when the telemetry cap folds the recorded series (peak power is
		// computed from the stored samples).
		if strings.Contains(knobs, "telemetryCap") {
			continue
		}
		if !bytes.Equal(plain, got) {
			t.Fatalf("%s: result bytes differ from serial run:\nserial %s\nknobs  %s", knobs, plain, got)
		}
	}
}
