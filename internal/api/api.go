// Package api exposes the simulator and manager over HTTP/JSON: a
// small control plane for submitting scenario runs, browsing results,
// and regenerating the paper's experiments remotely. It is the
// operational wrapper a downstream user scripts against instead of
// linking the library.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"agilepower"
	"agilepower/internal/experiments"
	"agilepower/internal/report"
)

// Limits keep a single HTTP request from launching an unbounded
// simulation.
const (
	maxHosts   = 2048
	maxVMs     = 16384
	maxHorizon = 30 * 24 * time.Hour
)

// RunRequest describes a scenario to execute.
type RunRequest struct {
	Name         string  `json:"name,omitempty"`
	Hosts        int     `json:"hosts"`
	HostCores    float64 `json:"hostCores,omitempty"`
	HostMemoryGB float64 `json:"hostMemoryGB,omitempty"`

	// Fleet selects a workload builder: diurnal, spiky, batch, mixed,
	// flat.
	Fleet string `json:"fleet"`
	// VMs is the fleet size.
	VMs int `json:"vms"`
	// FlatDemand is the per-VM demand in cores for the flat fleet
	// (default 1).
	FlatDemand float64 `json:"flatDemand,omitempty"`

	// Policy: static, nopm-drm, dpm-s5, dpm-s3 (default dpm-s3).
	Policy string `json:"policy,omitempty"`
	// HorizonHours is the simulated duration (default 24).
	HorizonHours float64 `json:"horizonHours,omitempty"`
	// PeriodMinutes is the control period (default 5).
	PeriodMinutes float64 `json:"periodMinutes,omitempty"`
	// TargetUtil is the packing headroom (default 0.70).
	TargetUtil float64 `json:"targetUtil,omitempty"`
	// SpareHosts keeps extra hosts awake (default 0).
	SpareHosts int `json:"spareHosts,omitempty"`
	// PredictiveWake enables the time-of-day demand predictor.
	PredictiveWake bool   `json:"predictiveWake,omitempty"`
	Seed           uint64 `json:"seed,omitempty"`
	// Profile optionally overrides the server power calibration (the
	// JSON format cmd/calibrate emits).
	Profile json.RawMessage `json:"profile,omitempty"`

	// Churn optionally adds dynamic arrivals.
	Churn *ChurnRequest `json:"churn,omitempty"`
}

// ChurnRequest mirrors agilepower.ChurnSpec over JSON.
type ChurnRequest struct {
	ArrivalsPerHour   float64 `json:"arrivalsPerHour"`
	MeanLifetimeHours float64 `json:"meanLifetimeHours,omitempty"`
	DemandCores       float64 `json:"demandCores,omitempty"`
}

// RunResponse summarizes one completed run.
type RunResponse struct {
	ID       int     `json:"id"`
	Name     string  `json:"name"`
	Policy   string  `json:"policy"`
	Hosts    int     `json:"hosts"`
	VMs      int     `json:"vms"`
	HorizonH float64 `json:"horizonHours"`

	EnergyKWh         float64 `json:"energyKWh"`
	MeanPowerW        float64 `json:"meanPowerW"`
	Satisfaction      float64 `json:"satisfaction"`
	ViolationFraction float64 `json:"violationFraction"`
	Migrations        int     `json:"migrations"`
	Sleeps            int     `json:"sleeps"`
	Wakes             int     `json:"wakes"`
	OracleKWh         float64 `json:"oracleKWh,omitempty"`

	ChurnArrived     int     `json:"churnArrived,omitempty"`
	ChurnPlaced      int     `json:"churnPlaced,omitempty"`
	ProvisionP95Secs float64 `json:"provisionP95Secs,omitempty"`
}

// Server is the HTTP control plane. The zero value is not usable; use
// NewServer.
type Server struct {
	mu     sync.Mutex
	nextID int
	runs   map[int]*storedRun

	sessions *sessionStore
}

type storedRun struct {
	resp   RunResponse
	result *agilepower.Result
}

// NewServer returns an empty control plane.
func NewServer() *Server {
	return &Server{nextID: 1, runs: make(map[int]*storedRun), sessions: newSessionStore()}
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /api/policies", s.handlePolicies)
	mux.HandleFunc("GET /api/profile", s.handleProfile)
	mux.HandleFunc("POST /api/runs", s.handleCreateRun)
	mux.HandleFunc("GET /api/runs", s.handleListRuns)
	mux.HandleFunc("GET /api/runs/{id}", s.handleGetRun)
	mux.HandleFunc("GET /api/runs/{id}/series", s.handleRunSeries)
	mux.HandleFunc("GET /api/runs/{id}/events", s.handleRunEvents)
	mux.HandleFunc("GET /api/experiments", s.handleListExperiments)
	mux.HandleFunc("POST /api/experiments/{id}", s.handleRunExperiment)
	s.registerSessionRoutes(mux)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	type policyInfo struct {
		Name        string `json:"name"`
		LoadBalance bool   `json:"loadBalance"`
		Consolidate bool   `json:"consolidate"`
		PowerManage bool   `json:"powerManage"`
		SleepState  string `json:"sleepState,omitempty"`
	}
	var out []policyInfo
	for _, p := range agilepower.Policies() {
		info := policyInfo{
			Name:        p.Name,
			LoadBalance: p.LoadBalance,
			Consolidate: p.Consolidate,
			PowerManage: p.PowerManage,
		}
		if p.PowerManage {
			info.SleepState = p.SleepState.String()
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	p := agilepower.DefaultProfile()
	type stateInfo struct {
		PowerW     float64 `json:"powerW"`
		EntrySecs  float64 `json:"entrySecs"`
		ExitSecs   float64 `json:"exitSecs"`
		BreakEvenS float64 `json:"breakEvenSecs"`
	}
	out := map[string]any{
		"name":       p.Name,
		"peakPowerW": float64(p.PeakPower),
		"idlePowerW": float64(p.IdlePower),
		"deepIdleW":  float64(p.DeepIdlePower),
	}
	states := map[string]stateInfo{}
	for st, spec := range p.Sleep {
		be, _ := p.BreakEven(st)
		states[st.String()] = stateInfo{
			PowerW:     float64(spec.Power),
			EntrySecs:  spec.EntryLatency.Seconds(),
			ExitSecs:   spec.ExitLatency.Seconds(),
			BreakEvenS: be.Seconds(),
		}
	}
	out["sleepStates"] = states
	writeJSON(w, http.StatusOK, out)
}

// buildScenario converts a request into a runnable scenario.
func buildScenario(req RunRequest) (agilepower.Scenario, error) {
	if req.Hosts <= 0 || req.Hosts > maxHosts {
		return agilepower.Scenario{}, fmt.Errorf("hosts must be in [1, %d]", maxHosts)
	}
	if req.VMs <= 0 || req.VMs > maxVMs {
		return agilepower.Scenario{}, fmt.Errorf("vms must be in [1, %d]", maxVMs)
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	var fleet []agilepower.VMSpec
	switch req.Fleet {
	case "diurnal":
		fleet = agilepower.DiurnalFleet(req.VMs, seed)
	case "spiky":
		fleet = agilepower.SpikyFleet(req.VMs, 4, seed)
	case "batch":
		fleet = agilepower.BatchFleet(req.VMs, seed)
	case "mixed", "":
		fleet = agilepower.MixedFleet(req.VMs, seed)
	case "flat":
		d := req.FlatDemand
		if d <= 0 {
			d = 1
		}
		fleet = agilepower.ConstantFleet(req.VMs, d)
	default:
		return agilepower.Scenario{}, fmt.Errorf("unknown fleet %q", req.Fleet)
	}
	var policy agilepower.Policy
	found := false
	name := req.Policy
	if name == "" {
		name = "dpm-s3"
	}
	for _, p := range agilepower.Policies() {
		if p.Name == name {
			policy = p
			found = true
		}
	}
	if !found {
		return agilepower.Scenario{}, fmt.Errorf("unknown policy %q", name)
	}
	horizon := time.Duration(req.HorizonHours * float64(time.Hour))
	if horizon == 0 {
		horizon = 24 * time.Hour
	}
	if horizon < 0 || horizon > maxHorizon {
		return agilepower.Scenario{}, fmt.Errorf("horizon must be in (0, %v]", maxHorizon)
	}
	var profile *agilepower.Profile
	if len(req.Profile) > 0 {
		profile = &agilepower.Profile{}
		if err := json.Unmarshal(req.Profile, profile); err != nil {
			return agilepower.Scenario{}, fmt.Errorf("profile: %w", err)
		}
	}
	sc := agilepower.Scenario{
		Name:         req.Name,
		Hosts:        req.Hosts,
		HostCores:    req.HostCores,
		HostMemoryGB: req.HostMemoryGB,
		Profile:      profile,
		VMs:          fleet,
		Horizon:      horizon,
		Seed:         seed,
		Manager: agilepower.ManagerConfig{
			Policy:         policy,
			Period:         time.Duration(req.PeriodMinutes * float64(time.Minute)),
			TargetUtil:     req.TargetUtil,
			SpareHosts:     req.SpareHosts,
			PredictiveWake: req.PredictiveWake,
		},
	}
	if req.Churn != nil {
		sc.Churn = &agilepower.ChurnSpec{
			ArrivalsPerHour: req.Churn.ArrivalsPerHour,
			MeanLifetime:    time.Duration(req.Churn.MeanLifetimeHours * float64(time.Hour)),
			DemandCores:     req.Churn.DemandCores,
		}
	}
	return sc, nil
}

func (s *Server) handleCreateRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	sc, err := buildScenario(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := sc.Run()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "run failed: %v", err)
		return
	}
	resp := RunResponse{
		Name:              sc.Name,
		Policy:            res.Policy,
		Hosts:             res.Hosts,
		VMs:               len(sc.VMs),
		HorizonH:          res.Horizon.Hours(),
		EnergyKWh:         res.EnergyKWh(),
		MeanPowerW:        res.MeanPowerW,
		Satisfaction:      res.Satisfaction,
		ViolationFraction: res.ViolationFraction,
		Migrations:        res.Migrations.Completed,
		Sleeps:            res.Sleeps,
		Wakes:             res.Wakes,
		ChurnArrived:      res.Churn.Arrived,
		ChurnPlaced:       res.Churn.Placed,
		ProvisionP95Secs:  res.Churn.ProvisionP95.Seconds(),
	}
	if oracle, err := res.OracleEnergy(); err == nil {
		resp.OracleKWh = oracle.KWh()
	}
	s.mu.Lock()
	resp.ID = s.nextID
	s.nextID++
	s.runs[resp.ID] = &storedRun{resp: resp, result: res}
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]RunResponse, 0, len(s.runs))
	for _, run := range s.runs {
		out = append(out, run.resp)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

func atoiPath(r *http.Request) (int, error) {
	return strconv.Atoi(r.PathValue("id"))
}

func (s *Server) lookup(r *http.Request) (*storedRun, error) {
	id, err := atoiPath(r)
	if err != nil {
		return nil, fmt.Errorf("bad run id %q", r.PathValue("id"))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	run, ok := s.runs[id]
	if !ok {
		return nil, fmt.Errorf("run %d not found", id)
	}
	return run, nil
}

func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	run, err := s.lookup(r)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, run.resp)
}

func (s *Server) handleRunSeries(w http.ResponseWriter, r *http.Request) {
	run, err := s.lookup(r)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	step := time.Minute
	if q := r.URL.Query().Get("step"); q != "" {
		step, err = time.ParseDuration(q)
		if err != nil || step <= 0 {
			writeError(w, http.StatusBadRequest, "bad step %q", q)
			return
		}
	}
	horizon := run.result.Horizon
	w.Header().Set("Content-Type", "text/csv")
	err = report.MultiSeriesCSV(w,
		run.result.Demand.Downsample(step, horizon),
		run.result.Power.Downsample(step, horizon),
		run.result.Delivered.Downsample(step, horizon),
		run.result.ActiveHosts.Downsample(step, horizon),
	)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	run, err := s.lookup(r)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := run.result.Events.Write(w); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) handleListExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, experiments.IDs())
}

func (s *Server) handleRunExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	opts := experiments.Options{Quick: r.URL.Query().Get("full") == ""}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := experiments.Run(id, w, opts); err != nil {
		// Headers may already be out; report in-band.
		fmt.Fprintf(w, "\nerror: %v\n", err)
	}
}
