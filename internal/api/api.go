// Package api exposes the simulator and manager over HTTP/JSON: the
// multi-tenant simulation service. Scenario runs are submitted to a
// bounded async job queue (202 + job ID, per-tenant fair scheduling,
// queue-depth backpressure), executed by a worker pool that forks
// shared world prototypes, and served from a content-addressed result
// cache whenever the same (scenario, seed, code version) was run
// before — determinism makes a cache hit byte-identical to a fresh
// run. Progress streams over SSE, and operational state exports in
// Prometheus text format on /metrics. The legacy synchronous /api
// routes remain for small interactive runs and live sessions.
package api

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"agilepower"
	"agilepower/internal/apimetrics"
	"agilepower/internal/experiments"
	"agilepower/internal/jobs"
	"agilepower/internal/report"
	"agilepower/internal/rescache"
)

// Config tunes the service. The zero value gets production defaults;
// every field is also a daemon flag (see cmd/agilepmd).
type Config struct {
	// Workers is the job-executor pool size (<= 0 means GOMAXPROCS).
	Workers int
	// QueueDepth bounds queued jobs across all tenants (<= 0 means
	// 4096); submissions past it are rejected with 429.
	QueueDepth int
	// TenantQueueDepth bounds one tenant's queued jobs (<= 0 means
	// QueueDepth).
	TenantQueueDepth int
	// CacheBytes is the result cache's byte budget (<= 0 means 256
	// MiB). The cache is content-addressed by (scenario, seed, code
	// version); a hit skips the simulator entirely.
	CacheBytes int64
	// MaxHosts, MaxVMs, and MaxHorizon are the admission budget: a
	// request above any of them is rejected with 400. The defaults
	// admit delta-mode hyperscale runs (128k hosts / 1M VMs / 30 days);
	// operators shrink them on small boxes.
	MaxHosts   int
	MaxVMs     int
	MaxHorizon time.Duration
	// RunChunk is how much simulated time a worker advances between
	// cancellation checks (<= 0 means 1h). Smaller is snappier
	// cancellation; results are identical for any value.
	RunChunk time.Duration
	// ProgressEvery throttles streamed progress events to at most one
	// per this much simulated time (<= 0 means 15m).
	ProgressEvery time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
	if c.TenantQueueDepth <= 0 {
		c.TenantQueueDepth = c.QueueDepth
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.MaxHosts <= 0 {
		c.MaxHosts = 131072
	}
	if c.MaxVMs <= 0 {
		c.MaxVMs = 1 << 20
	}
	if c.MaxHorizon <= 0 {
		c.MaxHorizon = 30 * 24 * time.Hour
	}
	if c.RunChunk <= 0 {
		c.RunChunk = time.Hour
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = 15 * time.Minute
	}
	return c
}

// RunRequest describes a scenario to execute.
type RunRequest struct {
	Name         string  `json:"name,omitempty"`
	Hosts        int     `json:"hosts"`
	HostCores    float64 `json:"hostCores,omitempty"`
	HostMemoryGB float64 `json:"hostMemoryGB,omitempty"`

	// Fleet selects a workload builder: diurnal, spiky, batch, mixed,
	// flat.
	Fleet string `json:"fleet"`
	// VMs is the fleet size.
	VMs int `json:"vms"`
	// FlatDemand is the per-VM demand in cores for the flat fleet
	// (default 1).
	FlatDemand float64 `json:"flatDemand,omitempty"`

	// Policy: static, nopm-drm, dpm-s5, dpm-s3 (default dpm-s3).
	Policy string `json:"policy,omitempty"`
	// HorizonHours is the simulated duration (default 24).
	HorizonHours float64 `json:"horizonHours,omitempty"`
	// PeriodMinutes is the control period (default 5).
	PeriodMinutes float64 `json:"periodMinutes,omitempty"`
	// TargetUtil is the packing headroom (default 0.70).
	TargetUtil float64 `json:"targetUtil,omitempty"`
	// SpareHosts keeps extra hosts awake (default 0).
	SpareHosts int `json:"spareHosts,omitempty"`
	// PredictiveWake enables the time-of-day demand predictor.
	PredictiveWake bool   `json:"predictiveWake,omitempty"`
	Seed           uint64 `json:"seed,omitempty"`
	// Profile optionally overrides the server power calibration (the
	// JSON format cmd/calibrate emits).
	Profile json.RawMessage `json:"profile,omitempty"`

	// Churn optionally adds dynamic arrivals.
	Churn *ChurnRequest `json:"churn,omitempty"`

	// Shards, EvalWorkers, Delta, and TelemetryCap are the simulator's
	// wall-clock/memory knobs (see agilepower.Scenario): sharded
	// evaluation, the shard worker-pool bound, event-driven delta
	// evaluation, and the telemetry sample cap. All four are invisible
	// in results — byte-identical for every setting — so they are safe
	// to expose per-request without fragmenting the result cache's
	// effective hit rate across equivalent runs... except that they are
	// part of the request hash (conservative: different knobs, different
	// key).
	Shards       int  `json:"shards,omitempty"`
	EvalWorkers  int  `json:"evalWorkers,omitempty"`
	Delta        bool `json:"delta,omitempty"`
	TelemetryCap int  `json:"telemetryCap,omitempty"`

	// Tenant scopes queue fairness and per-tenant backpressure on the
	// async endpoints ("" is the anonymous tenant).
	Tenant string `json:"tenant,omitempty"`
}

// ChurnRequest mirrors agilepower.ChurnSpec over JSON.
type ChurnRequest struct {
	ArrivalsPerHour   float64 `json:"arrivalsPerHour"`
	MeanLifetimeHours float64 `json:"meanLifetimeHours,omitempty"`
	DemandCores       float64 `json:"demandCores,omitempty"`
}

// RunResponse summarizes one completed run.
type RunResponse struct {
	ID       int     `json:"id"`
	Name     string  `json:"name"`
	Policy   string  `json:"policy"`
	Hosts    int     `json:"hosts"`
	VMs      int     `json:"vms"`
	HorizonH float64 `json:"horizonHours"`

	EnergyKWh         float64 `json:"energyKWh"`
	MeanPowerW        float64 `json:"meanPowerW"`
	Satisfaction      float64 `json:"satisfaction"`
	ViolationFraction float64 `json:"violationFraction"`
	Migrations        int     `json:"migrations"`
	Sleeps            int     `json:"sleeps"`
	Wakes             int     `json:"wakes"`
	OracleKWh         float64 `json:"oracleKWh,omitempty"`

	ChurnArrived     int     `json:"churnArrived,omitempty"`
	ChurnPlaced      int     `json:"churnPlaced,omitempty"`
	ProvisionP95Secs float64 `json:"provisionP95Secs,omitempty"`
}

// Server is the HTTP control plane. The zero value is not usable; use
// NewServer.
type Server struct {
	cfg Config

	mu     sync.Mutex
	nextID int
	runs   map[int]*storedRun

	sessions *sessionStore

	queue   *jobs.Queue
	cache   *rescache.Cache
	metrics *apimetrics.Registry
	im      instruments

	// protos caches built worlds keyed by world fingerprint, so
	// repeated fleet shapes fork a shared Prototype instead of
	// rebuilding hosts and placement per job.
	protoMu sync.Mutex
	protos  map[string]*protoEntry
}

type storedRun struct {
	resp   RunResponse
	result *agilepower.Result
}

// NewServer returns a control plane with started job workers. Call
// Close (or Drain) on shutdown.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		nextID:   1,
		runs:     make(map[int]*storedRun),
		sessions: newSessionStore(),
		cache:    rescache.New(cfg.CacheBytes),
		metrics:  apimetrics.NewRegistry(),
		protos:   make(map[string]*protoEntry),
	}
	s.queue = jobs.New(jobs.Config{
		Workers:            cfg.Workers,
		MaxQueued:          cfg.QueueDepth,
		MaxQueuedPerTenant: cfg.TenantQueueDepth,
	}, s.runJob)
	s.registerMetrics()
	s.queue.Start()
	return s
}

// Queue exposes the job queue (for shutdown draining and tests).
func (s *Server) Queue() *jobs.Queue { return s.queue }

// Drain stops accepting jobs, cancels queued ones, and waits for
// running jobs until ctx expires (then force-cancels them).
func (s *Server) Drain(ctx context.Context) error { return s.queue.Drain(ctx) }

// Close force-drains immediately.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s.queue.Drain(ctx)
	return nil
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /api/policies", s.handlePolicies)
	mux.HandleFunc("GET /api/profile", s.handleProfile)
	mux.HandleFunc("POST /api/runs", s.handleCreateRun)
	mux.HandleFunc("GET /api/runs", s.handleListRuns)
	mux.HandleFunc("GET /api/runs/{id}", s.handleGetRun)
	mux.HandleFunc("GET /api/runs/{id}/series", s.handleRunSeries)
	mux.HandleFunc("GET /api/runs/{id}/events", s.handleRunEvents)
	mux.HandleFunc("GET /api/experiments", s.handleListExperiments)
	mux.HandleFunc("POST /api/experiments/{id}", s.handleRunExperiment)
	// v1: the async multi-tenant service.
	mux.HandleFunc("POST /v1/runs", s.handleSubmitRun)
	mux.HandleFunc("POST /v1/scenarios", s.handleSubmitScenario)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleJobStream)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.registerSessionRoutes(mux)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	type policyInfo struct {
		Name        string `json:"name"`
		LoadBalance bool   `json:"loadBalance"`
		Consolidate bool   `json:"consolidate"`
		PowerManage bool   `json:"powerManage"`
		SleepState  string `json:"sleepState,omitempty"`
	}
	var out []policyInfo
	for _, p := range agilepower.Policies() {
		info := policyInfo{
			Name:        p.Name,
			LoadBalance: p.LoadBalance,
			Consolidate: p.Consolidate,
			PowerManage: p.PowerManage,
		}
		if p.PowerManage {
			info.SleepState = p.SleepState.String()
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	p := agilepower.DefaultProfile()
	type stateInfo struct {
		PowerW     float64 `json:"powerW"`
		EntrySecs  float64 `json:"entrySecs"`
		ExitSecs   float64 `json:"exitSecs"`
		BreakEvenS float64 `json:"breakEvenSecs"`
	}
	out := map[string]any{
		"name":       p.Name,
		"peakPowerW": float64(p.PeakPower),
		"idlePowerW": float64(p.IdlePower),
		"deepIdleW":  float64(p.DeepIdlePower),
	}
	states := map[string]stateInfo{}
	for st, spec := range p.Sleep {
		be, _ := p.BreakEven(st)
		states[st.String()] = stateInfo{
			PowerW:     float64(spec.Power),
			EntrySecs:  spec.EntryLatency.Seconds(),
			ExitSecs:   spec.ExitLatency.Seconds(),
			BreakEvenS: be.Seconds(),
		}
	}
	out["sleepStates"] = states
	writeJSON(w, http.StatusOK, out)
}

// buildScenario converts a request into a runnable scenario, enforcing
// the server's admission budget.
func (s *Server) buildScenario(req RunRequest) (agilepower.Scenario, error) {
	if req.Hosts <= 0 || req.Hosts > s.cfg.MaxHosts {
		return agilepower.Scenario{}, fmt.Errorf("hosts must be in [1, %d]", s.cfg.MaxHosts)
	}
	if req.VMs <= 0 || req.VMs > s.cfg.MaxVMs {
		return agilepower.Scenario{}, fmt.Errorf("vms must be in [1, %d]", s.cfg.MaxVMs)
	}
	if req.Shards < 0 || req.EvalWorkers < 0 || req.TelemetryCap < 0 {
		return agilepower.Scenario{}, fmt.Errorf("shards, evalWorkers, and telemetryCap must be non-negative")
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	var fleet []agilepower.VMSpec
	switch req.Fleet {
	case "diurnal":
		fleet = agilepower.DiurnalFleet(req.VMs, seed)
	case "spiky":
		fleet = agilepower.SpikyFleet(req.VMs, 4, seed)
	case "batch":
		fleet = agilepower.BatchFleet(req.VMs, seed)
	case "mixed", "":
		fleet = agilepower.MixedFleet(req.VMs, seed)
	case "flat":
		d := req.FlatDemand
		if d <= 0 {
			d = 1
		}
		fleet = agilepower.ConstantFleet(req.VMs, d)
	default:
		return agilepower.Scenario{}, fmt.Errorf("unknown fleet %q", req.Fleet)
	}
	var policy agilepower.Policy
	found := false
	name := req.Policy
	if name == "" {
		name = "dpm-s3"
	}
	for _, p := range agilepower.Policies() {
		if p.Name == name {
			policy = p
			found = true
		}
	}
	if !found {
		return agilepower.Scenario{}, fmt.Errorf("unknown policy %q", name)
	}
	horizon := time.Duration(req.HorizonHours * float64(time.Hour))
	if horizon == 0 {
		horizon = 24 * time.Hour
	}
	if horizon < 0 || horizon > s.cfg.MaxHorizon {
		return agilepower.Scenario{}, fmt.Errorf("horizon must be in (0, %v]", s.cfg.MaxHorizon)
	}
	var profile *agilepower.Profile
	if len(req.Profile) > 0 {
		profile = &agilepower.Profile{}
		if err := json.Unmarshal(req.Profile, profile); err != nil {
			return agilepower.Scenario{}, fmt.Errorf("profile: %w", err)
		}
	}
	sc := agilepower.Scenario{
		Name:         req.Name,
		Hosts:        req.Hosts,
		HostCores:    req.HostCores,
		HostMemoryGB: req.HostMemoryGB,
		Profile:      profile,
		VMs:          fleet,
		Horizon:      horizon,
		Seed:         seed,
		Shards:       req.Shards,
		EvalWorkers:  req.EvalWorkers,
		Delta:        req.Delta,
		TelemetryCap: req.TelemetryCap,
		Manager: agilepower.ManagerConfig{
			Policy:         policy,
			Period:         time.Duration(req.PeriodMinutes * float64(time.Minute)),
			TargetUtil:     req.TargetUtil,
			SpareHosts:     req.SpareHosts,
			PredictiveWake: req.PredictiveWake,
		},
	}
	if req.Churn != nil {
		sc.Churn = &agilepower.ChurnSpec{
			ArrivalsPerHour: req.Churn.ArrivalsPerHour,
			MeanLifetime:    time.Duration(req.Churn.MeanLifetimeHours * float64(time.Hour)),
			DemandCores:     req.Churn.DemandCores,
		}
	}
	return sc, nil
}

func (s *Server) handleCreateRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	sc, err := s.buildScenario(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := sc.Run()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "run failed: %v", err)
		return
	}
	resp := RunResponse{
		Name:              sc.Name,
		Policy:            res.Policy,
		Hosts:             res.Hosts,
		VMs:               len(sc.VMs),
		HorizonH:          res.Horizon.Hours(),
		EnergyKWh:         res.EnergyKWh(),
		MeanPowerW:        res.MeanPowerW,
		Satisfaction:      res.Satisfaction,
		ViolationFraction: res.ViolationFraction,
		Migrations:        res.Migrations.Completed,
		Sleeps:            res.Sleeps,
		Wakes:             res.Wakes,
		ChurnArrived:      res.Churn.Arrived,
		ChurnPlaced:       res.Churn.Placed,
		ProvisionP95Secs:  res.Churn.ProvisionP95.Seconds(),
	}
	if oracle, err := res.OracleEnergy(); err == nil {
		resp.OracleKWh = oracle.KWh()
	}
	s.mu.Lock()
	resp.ID = s.nextID
	s.nextID++
	s.runs[resp.ID] = &storedRun{resp: resp, result: res}
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]RunResponse, 0, len(s.runs))
	for _, run := range s.runs {
		out = append(out, run.resp)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

func atoiPath(r *http.Request) (int, error) {
	return strconv.Atoi(r.PathValue("id"))
}

func (s *Server) lookup(r *http.Request) (*storedRun, error) {
	id, err := atoiPath(r)
	if err != nil {
		return nil, fmt.Errorf("bad run id %q", r.PathValue("id"))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	run, ok := s.runs[id]
	if !ok {
		return nil, fmt.Errorf("run %d not found", id)
	}
	return run, nil
}

func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	run, err := s.lookup(r)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, run.resp)
}

func (s *Server) handleRunSeries(w http.ResponseWriter, r *http.Request) {
	run, err := s.lookup(r)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	step := time.Minute
	if q := r.URL.Query().Get("step"); q != "" {
		step, err = time.ParseDuration(q)
		if err != nil || step <= 0 {
			writeError(w, http.StatusBadRequest, "bad step %q", q)
			return
		}
	}
	horizon := run.result.Horizon
	w.Header().Set("Content-Type", "text/csv")
	err = report.MultiSeriesCSV(w,
		run.result.Demand.Downsample(step, horizon),
		run.result.Power.Downsample(step, horizon),
		run.result.Delivered.Downsample(step, horizon),
		run.result.ActiveHosts.Downsample(step, horizon),
	)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	run, err := s.lookup(r)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := run.result.Events.Write(w); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) handleListExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, experiments.IDs())
}

func (s *Server) handleRunExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	opts := experiments.Options{Quick: r.URL.Query().Get("full") == ""}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := experiments.Run(id, w, opts); err != nil {
		// Headers may already be out; report in-band.
		fmt.Fprintf(w, "\nerror: %v\n", err)
	}
}
