package api

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = s.Close()
	})
	return ts
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return out
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestPoliciesEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/api/policies")
	if err != nil {
		t.Fatal(err)
	}
	policies := decode[[]map[string]any](t, resp)
	if len(policies) != 4 {
		t.Fatalf("policies = %d, want 4", len(policies))
	}
	names := map[string]bool{}
	for _, p := range policies {
		names[p["name"].(string)] = true
	}
	if !names["dpm-s3"] || !names["static"] {
		t.Fatalf("policy names = %v", names)
	}
}

func TestProfileEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/api/profile")
	if err != nil {
		t.Fatal(err)
	}
	profile := decode[map[string]any](t, resp)
	if profile["peakPowerW"].(float64) != 250 {
		t.Fatalf("peak = %v", profile["peakPowerW"])
	}
	states := profile["sleepStates"].(map[string]any)
	s3 := states["S3"].(map[string]any)
	if s3["exitSecs"].(float64) != 15 {
		t.Fatalf("S3 exit = %v", s3["exitSecs"])
	}
	if s3["breakEvenSecs"].(float64) < 30 || s3["breakEvenSecs"].(float64) > 60 {
		t.Fatalf("S3 break-even = %v", s3["breakEvenSecs"])
	}
}

func postRun(t *testing.T, ts *httptest.Server, body string) (*http.Response, error) {
	t.Helper()
	return http.Post(ts.URL+"/api/runs", "application/json", strings.NewReader(body))
}

func TestCreateAndFetchRun(t *testing.T) {
	ts := newTestServer(t)
	resp, err := postRun(t, ts, `{"hosts":4,"vms":8,"fleet":"flat","flatDemand":0.5,"horizonHours":2}`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	run := decode[RunResponse](t, resp)
	if run.ID != 1 || run.Policy != "dpm-s3" {
		t.Fatalf("run = %+v", run)
	}
	if run.EnergyKWh <= 0 || run.Satisfaction <= 0 {
		t.Fatalf("metrics missing: %+v", run)
	}
	if run.OracleKWh <= 0 || run.OracleKWh >= run.EnergyKWh {
		t.Fatalf("oracle bound = %v vs energy %v", run.OracleKWh, run.EnergyKWh)
	}

	// Fetch it back.
	resp2, err := http.Get(ts.URL + "/api/runs/1")
	if err != nil {
		t.Fatal(err)
	}
	got := decode[RunResponse](t, resp2)
	if got != run {
		t.Fatalf("fetched %+v, created %+v", got, run)
	}

	// List contains it.
	resp3, err := http.Get(ts.URL + "/api/runs")
	if err != nil {
		t.Fatal(err)
	}
	list := decode[[]RunResponse](t, resp3)
	if len(list) != 1 || list[0].ID != 1 {
		t.Fatalf("list = %+v", list)
	}
}

func TestCreateRunValidation(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		name string
		body string
	}{
		{"bad json", `{`},
		{"zero hosts", `{"hosts":0,"vms":4,"fleet":"flat"}`},
		{"too many hosts", `{"hosts":9999999,"vms":4,"fleet":"flat"}`},
		{"zero vms", `{"hosts":4,"vms":0,"fleet":"flat"}`},
		{"bad fleet", `{"hosts":4,"vms":4,"fleet":"quantum"}`},
		{"bad policy", `{"hosts":4,"vms":4,"fleet":"flat","policy":"yolo"}`},
		{"horizon too long", `{"hosts":4,"vms":4,"fleet":"flat","horizonHours":100000}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := postRun(t, ts, tc.body)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
		})
	}
}

func TestGetRunNotFound(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/api/runs/42")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	resp2, err := http.Get(ts.URL + "/api/runs/notanumber")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp2.StatusCode)
	}
}

func TestRunSeriesCSV(t *testing.T) {
	ts := newTestServer(t)
	if _, err := postRun(t, ts, `{"hosts":2,"vms":4,"fleet":"flat","horizonHours":1}`); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/api/runs/1/series?step=15m")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/csv" {
		t.Fatalf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if !strings.HasPrefix(body, "offset_seconds,") {
		t.Fatalf("csv header missing: %q", body)
	}
	// 1h at 15m step → header + 4 rows.
	if lines := strings.Count(strings.TrimSpace(body), "\n"); lines != 4 {
		t.Fatalf("csv rows = %d, want 4", lines)
	}
	// Bad step rejected.
	resp2, err := http.Get(ts.URL + "/api/runs/1/series?step=banana")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad step status = %d", resp2.StatusCode)
	}
}

func TestChurnOverAPI(t *testing.T) {
	ts := newTestServer(t)
	resp, err := postRun(t, ts, `{"hosts":4,"vms":4,"fleet":"flat","horizonHours":6,
		"churn":{"arrivalsPerHour":4,"meanLifetimeHours":1}}`)
	if err != nil {
		t.Fatal(err)
	}
	run := decode[RunResponse](t, resp)
	if run.ChurnArrived == 0 || run.ChurnPlaced == 0 {
		t.Fatalf("churn not reported: %+v", run)
	}
}

func TestExperimentsEndpoints(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/api/experiments")
	if err != nil {
		t.Fatal(err)
	}
	ids := decode[[]string](t, resp)
	if len(ids) < 10 {
		t.Fatalf("experiment ids = %v", ids)
	}
	resp2, err := http.Post(ts.URL+"/api/experiments/t1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "power-state characterization") {
		t.Fatalf("experiment output: %q", string(raw))
	}
}

func TestMethodRouting(t *testing.T) {
	ts := newTestServer(t)
	// GET on a POST-only route is rejected by the mux.
	resp, err := http.Get(ts.URL + "/api/experiments/t1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", resp.StatusCode)
	}
}
