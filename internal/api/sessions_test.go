package api

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func postJSON(t *testing.T, ts *httptest.Server, path, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func doDelete(t *testing.T, ts *httptest.Server, path string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestSessionLifecycleOverHTTP(t *testing.T) {
	ts := newTestServer(t)

	// Create.
	resp := postJSON(t, ts, "/api/sessions", `{"hosts":4,"vms":8,"fleet":"flat","flatDemand":0.5}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	st := decode[SessionStatus](t, resp)
	if st.ID != 1 || st.NowHours != 0 {
		t.Fatalf("status = %+v", st)
	}

	// Advance to 2h.
	resp = postJSON(t, ts, "/api/sessions/1/advance", `{"toHours":2}`)
	st = decode[SessionStatus](t, resp)
	if st.NowHours != 2 {
		t.Fatalf("nowHours = %v", st.NowHours)
	}
	if st.ActiveHosts < 1 || st.PowerW <= 0 {
		t.Fatalf("status = %+v", st)
	}

	// Advance by 1h more.
	resp = postJSON(t, ts, "/api/sessions/1/advance", `{"byHours":1}`)
	st = decode[SessionStatus](t, resp)
	if st.NowHours != 3 {
		t.Fatalf("nowHours = %v", st.NowHours)
	}

	// Backwards rejected.
	resp = postJSON(t, ts, "/api/sessions/1/advance", `{"toHours":1}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("backwards advance status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Add a VM.
	resp = postJSON(t, ts, "/api/sessions/1/vms", `{"name":"late","demandCores":1}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add vm status = %d", resp.StatusCode)
	}
	vmResp := decode[map[string]int](t, resp)
	if vmResp["vmId"] == 0 {
		t.Fatalf("vm id = %v", vmResp)
	}

	// Maintenance round trip.
	resp = postJSON(t, ts, "/api/sessions/1/maintenance", `{"host":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("maintenance status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, ts, "/api/sessions/1/advance", `{"byHours":1}`)
	resp.Body.Close()
	resp = postJSON(t, ts, "/api/sessions/1/maintenance", `{"host":1,"exit":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("maintenance exit status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Events timeline.
	resp, err := http.Get(ts.URL + "/api/sessions/1/events")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), "vm-placed") {
		t.Fatalf("events missing placements:\n%s", raw)
	}

	// List shows it.
	resp, err = http.Get(ts.URL + "/api/sessions")
	if err != nil {
		t.Fatal(err)
	}
	list := decode[[]SessionStatus](t, resp)
	if len(list) != 1 {
		t.Fatalf("sessions = %d", len(list))
	}

	// Finalize: archived as a run, removed from live set.
	resp = doDelete(t, ts, "/api/sessions/1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("finalize status = %d", resp.StatusCode)
	}
	run := decode[RunResponse](t, resp)
	if run.EnergyKWh <= 0 || run.HorizonH != 4 {
		t.Fatalf("final run = %+v", run)
	}
	resp, err = http.Get(ts.URL + "/api/sessions/1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("finalized session still live: %d", resp.StatusCode)
	}
	// Archived run fetchable.
	resp2, err := http.Get(ts.URL + "/api/runs/" + strconv.Itoa(run.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("archived run missing: %d", resp2.StatusCode)
	}
}

func TestSessionErrors(t *testing.T) {
	ts := newTestServer(t)
	for _, tc := range []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/api/sessions", `{`, http.StatusBadRequest},
		{"POST", "/api/sessions", `{"hosts":0,"vms":2,"fleet":"flat"}`, http.StatusBadRequest},
		{"GET", "/api/sessions/9", "", http.StatusNotFound},
		{"POST", "/api/sessions/9/advance", `{"toHours":1}`, http.StatusNotFound},
	} {
		var resp *http.Response
		var err error
		if tc.method == "POST" {
			resp = postJSON(t, ts, tc.path, tc.body)
		} else {
			resp, err = http.Get(ts.URL + tc.path)
			if err != nil {
				t.Fatal(err)
			}
		}
		if resp.StatusCode != tc.want {
			t.Fatalf("%s %s → %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
		resp.Body.Close()
	}
	// Bad advance payloads on a real session.
	resp := postJSON(t, ts, "/api/sessions", `{"hosts":2,"vms":2,"fleet":"flat"}`)
	resp.Body.Close()
	for _, body := range []string{`{}`, `{"toHours":-1}`, `{"toHours":1e9}`} {
		resp := postJSON(t, ts, "/api/sessions/1/advance", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("advance %q → %d", body, resp.StatusCode)
		}
		resp.Body.Close()
	}
}
