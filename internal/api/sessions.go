package api

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"

	"agilepower"
)

// Live sessions: a scenario is started once and then driven by
// explicit advance/maintenance calls, so external tooling can
// interleave operator actions with simulated time — the HTTP face of
// the library's Session API.
//
//	POST   /api/sessions                     {scenario…}            → {id,…}
//	GET    /api/sessions                                            → list
//	GET    /api/sessions/{id}                                       → status
//	POST   /api/sessions/{id}/advance        {"toHours": 6}         → status
//	POST   /api/sessions/{id}/maintenance    {"host": 2, "exit": false}
//	POST   /api/sessions/{id}/vms            {"name":…,"vcpus":…}   → {vmId}
//	DELETE /api/sessions/{id}                finalize               → RunResponse
//	GET    /api/sessions/{id}/events                                → text timeline

type liveSession struct {
	id      int
	name    string
	session *agilepower.Session
}

// SessionStatus is the live view of one session.
type SessionStatus struct {
	ID          int     `json:"id"`
	Name        string  `json:"name"`
	NowHours    float64 `json:"nowHours"`
	ActiveHosts int     `json:"activeHosts"`
	PowerW      float64 `json:"powerW"`
	DemandCores float64 `json:"demandCores"`
}

type sessionStore struct {
	mu     sync.Mutex
	nextID int
	live   map[int]*liveSession
}

func newSessionStore() *sessionStore {
	return &sessionStore{nextID: 1, live: make(map[int]*liveSession)}
}

func (s *Server) registerSessionRoutes(mux *http.ServeMux) {
	mux.HandleFunc("POST /api/sessions", s.handleCreateSession)
	mux.HandleFunc("GET /api/sessions", s.handleListSessions)
	mux.HandleFunc("GET /api/sessions/{id}", s.handleSessionStatus)
	mux.HandleFunc("POST /api/sessions/{id}/advance", s.handleSessionAdvance)
	mux.HandleFunc("POST /api/sessions/{id}/maintenance", s.handleSessionMaintenance)
	mux.HandleFunc("POST /api/sessions/{id}/vms", s.handleSessionAddVM)
	mux.HandleFunc("DELETE /api/sessions/{id}", s.handleSessionFinalize)
	mux.HandleFunc("GET /api/sessions/{id}/events", s.handleSessionEvents)
}

func (ls *liveSession) status() SessionStatus {
	return SessionStatus{
		ID:          ls.id,
		Name:        ls.name,
		NowHours:    ls.session.Now().Hours(),
		ActiveHosts: ls.session.ActiveHosts(),
		PowerW:      ls.session.PowerW(),
		DemandCores: ls.session.DemandCores(),
	}
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	sc, err := s.buildScenario(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	session, err := sc.Start()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.sessions.mu.Lock()
	ls := &liveSession{id: s.sessions.nextID, name: sc.Name, session: session}
	s.sessions.nextID++
	s.sessions.live[ls.id] = ls
	s.sessions.mu.Unlock()
	writeJSON(w, http.StatusCreated, ls.status())
}

func (s *Server) lookupSession(r *http.Request) (*liveSession, bool) {
	id, err := atoiPath(r)
	if err != nil {
		return nil, false
	}
	s.sessions.mu.Lock()
	defer s.sessions.mu.Unlock()
	ls, ok := s.sessions.live[id]
	return ls, ok
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	s.sessions.mu.Lock()
	out := make([]SessionStatus, 0, len(s.sessions.live))
	for _, ls := range s.sessions.live {
		out = append(out, ls.status())
	}
	s.sessions.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSessionStatus(w http.ResponseWriter, r *http.Request) {
	ls, ok := s.lookupSession(r)
	if !ok {
		writeError(w, http.StatusNotFound, "session not found")
		return
	}
	writeJSON(w, http.StatusOK, ls.status())
}

func (s *Server) handleSessionAdvance(w http.ResponseWriter, r *http.Request) {
	ls, ok := s.lookupSession(r)
	if !ok {
		writeError(w, http.StatusNotFound, "session not found")
		return
	}
	var req struct {
		ToHours float64 `json:"toHours"`
		ByHours float64 `json:"byHours"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	var err error
	switch {
	case req.ToHours > 0:
		// Compare in float hours: huge values would overflow the
		// Duration conversion before any Duration-based check.
		if req.ToHours > s.cfg.MaxHorizon.Hours() {
			writeError(w, http.StatusBadRequest, "target beyond %v", s.cfg.MaxHorizon)
			return
		}
		err = ls.session.RunUntil(time.Duration(req.ToHours * float64(time.Hour)))
	case req.ByHours > 0:
		if req.ByHours+ls.session.Now().Hours() > s.cfg.MaxHorizon.Hours() {
			writeError(w, http.StatusBadRequest, "target beyond %v", s.cfg.MaxHorizon)
			return
		}
		err = ls.session.Step(time.Duration(req.ByHours * float64(time.Hour)))
	default:
		writeError(w, http.StatusBadRequest, "need toHours or byHours > 0")
		return
	}
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ls.status())
}

func (s *Server) handleSessionMaintenance(w http.ResponseWriter, r *http.Request) {
	ls, ok := s.lookupSession(r)
	if !ok {
		writeError(w, http.StatusNotFound, "session not found")
		return
	}
	var req struct {
		Host int  `json:"host"`
		Exit bool `json:"exit"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	var err error
	if req.Exit {
		err = ls.session.ExitMaintenance(req.Host)
	} else {
		err = ls.session.EnterMaintenance(req.Host)
	}
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"host":    req.Host,
		"drained": ls.session.MaintenanceReady(req.Host),
	})
}

func (s *Server) handleSessionAddVM(w http.ResponseWriter, r *http.Request) {
	ls, ok := s.lookupSession(r)
	if !ok {
		writeError(w, http.StatusNotFound, "session not found")
		return
	}
	var req struct {
		Name        string  `json:"name"`
		VCPUs       float64 `json:"vcpus"`
		MemoryGB    float64 `json:"memoryGB"`
		DemandCores float64 `json:"demandCores"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.VCPUs <= 0 {
		req.VCPUs = 4
	}
	if req.MemoryGB <= 0 {
		req.MemoryGB = 8
	}
	if req.DemandCores <= 0 {
		req.DemandCores = 1
	}
	id, err := ls.session.AddVM(agilepower.VMSpec{
		Name:     req.Name,
		VCPUs:    req.VCPUs,
		MemoryGB: req.MemoryGB,
		Trace:    agilepower.ConstantTrace(req.DemandCores),
	})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int{"vmId": id})
}

func (s *Server) handleSessionFinalize(w http.ResponseWriter, r *http.Request) {
	ls, ok := s.lookupSession(r)
	if !ok {
		writeError(w, http.StatusNotFound, "session not found")
		return
	}
	s.sessions.mu.Lock()
	delete(s.sessions.live, ls.id)
	s.sessions.mu.Unlock()

	res := ls.session.Result()
	resp := RunResponse{
		Name:              ls.name,
		Policy:            res.Policy,
		Hosts:             res.Hosts,
		HorizonH:          res.Horizon.Hours(),
		EnergyKWh:         res.EnergyKWh(),
		MeanPowerW:        res.MeanPowerW,
		Satisfaction:      res.Satisfaction,
		ViolationFraction: res.ViolationFraction,
		Migrations:        res.Migrations.Completed,
		Sleeps:            res.Sleeps,
		Wakes:             res.Wakes,
	}
	// The finalized session is archived as a regular run so its series
	// and events stay fetchable.
	s.mu.Lock()
	resp.ID = s.nextID
	s.nextID++
	s.runs[resp.ID] = &storedRun{resp: resp, result: res}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSessionEvents(w http.ResponseWriter, r *http.Request) {
	ls, ok := s.lookupSession(r)
	if !ok {
		writeError(w, http.StatusNotFound, "session not found")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := ls.session.Events().Write(w); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}
