package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"agilepower"
	"agilepower/internal/parallel"
	"agilepower/internal/report"
	"agilepower/internal/telemetry"
)

// dayScenario is the shared end-to-end setup for F5/F6/F8/F9/T2
// [reconstructed]: a 32-host cluster running 160 mixed enterprise VMs
// (diurnal web + spiky API + batch) for a full day. Quick mode shrinks
// to 8 hosts / 40 VMs / 8 hours.
func dayScenario(opts Options) agilepower.Scenario {
	hosts, vms := 32, 160
	horizon := 24 * time.Hour
	if opts.Quick {
		hosts, vms = 8, 40
		horizon = 8 * time.Hour
	}
	return opts.tune(agilepower.Scenario{
		Name:      "datacenter-day",
		Profile:   opts.Profile,
		Hosts:     hosts,
		VMs:       agilepower.MixedFleet(vms, opts.seed()),
		Horizon:   horizon,
		Seed:      opts.seed(),
		Manager:   agilepower.ManagerConfig{},
		CtrlPlane: opts.ctrlPlane(),
	})
}

// F4 — cluster power versus offered load [reconstructed]: the
// energy-proportionality curves. Steady aggregate load is swept from
// 5% to 95% of fleet capacity; for each point every policy runs to
// steady state and the mean cluster power is reported, alongside the
// analytic oracle and ideal-proportional bounds.
func F4(w io.Writer, opts Options) error {
	hosts := 16
	vmsN := 64
	horizon := 4 * time.Hour
	loads := []float64{0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95}
	if opts.Quick {
		hosts, vmsN = 8, 32
		horizon = 2 * time.Hour
		loads = []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	}
	totalCores := float64(hosts) * 16

	tbl := report.NewTable(
		"F4: mean cluster power (W) vs offered load — energy proportionality",
		"load", "static", "nopm", "dpm_s5", "dpm_s3", "oracle", "proportional")
	rows, err := parallel.Map(context.Background(), len(loads), opts.workers(),
		func(_ context.Context, i int) ([]any, error) {
			load := loads[i]
			perVM := load * totalCores / float64(vmsN)
			sc := opts.tune(agilepower.Scenario{
				Name:    fmt.Sprintf("f4-load-%02.0f", load*100),
				Hosts:   hosts,
				VMs:     agilepower.ConstantFleet(vmsN, perVM),
				Horizon: horizon,
				Seed:    opts.seed(),
			})
			results, err := sc.RunPoliciesWorkers(opts.workers(), agilepower.Policies())
			if err != nil {
				return nil, err
			}
			opts.note(results...)
			oracleE, err := results[0].OracleEnergy()
			if err != nil {
				return nil, err
			}
			propE, err := results[0].ProportionalEnergy()
			if err != nil {
				return nil, err
			}
			secs := horizon.Seconds()
			return []any{fmt.Sprintf("%.0f%%", load*100),
				results[0].MeanPowerW, results[1].MeanPowerW,
				results[2].MeanPowerW, results[3].MeanPowerW,
				float64(oracleE) / secs, float64(propE) / secs}, nil
		})
	if err != nil {
		return err
	}
	for _, row := range rows {
		tbl.AddRow(row...)
	}
	return tbl.Write(w)
}

// F5 — day-long trace-driven run [reconstructed]: cluster demand and
// per-policy power over a full day of mixed enterprise load. The
// figure the paper uses to show DPM-S3 tracking the demand curve while
// S5-based management lags the troughs.
func F5(w io.Writer, opts Options) error {
	sc := dayScenario(opts)
	results, err := sc.RunPoliciesWorkers(opts.workers(), agilepower.Policies())
	if err != nil {
		return err
	}
	opts.note(results...)
	fmt.Fprintf(w, "F5: day-long run, %d hosts, %d VMs, horizon %.0fh\n",
		sc.Hosts, len(sc.VMs), hours(sc.Horizon))

	// The demand chart and the four power charts all downsample to the
	// same 24 buckets; one scratch series serves them all.
	step := sc.Horizon / 24
	scratch := telemetry.NewSeriesCap("downsampled", 24)
	chart := report.Chart{Title: "cluster demand (cores)", Width: 40}
	if err := chart.Write(w, results[0].Demand.DownsampleInto(scratch, step, sc.Horizon)); err != nil {
		return err
	}
	for _, r := range results {
		chart := report.Chart{Title: "power: " + r.Policy, Width: 40, YLabel: "W"}
		if err := chart.Write(w, r.Power.DownsampleInto(scratch, step, sc.Horizon)); err != nil {
			return err
		}
	}
	tbl := report.NewTable("F5 energy summary", "policy", "energy_kwh", "savings_vs_static", "mean_active_hosts")
	for _, r := range results {
		tbl.AddRow(r.Policy, r.EnergyKWh(), r.SavingsVs(results[0]),
			r.ActiveHosts.TimeMean(0, sc.Horizon))
	}
	if err := tbl.Write(w); err != nil {
		return err
	}
	if opts.SVGDir != "" {
		series := make([]*telemetry.Series, 0, len(results))
		for _, r := range results {
			ds := r.Power.Downsample(sc.Horizon/96, sc.Horizon)
			ds.Name = "power:" + r.Policy
			series = append(series, ds)
		}
		path := filepath.Join(opts.SVGDir, "f5_power.svg")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		chart := report.SVGChart{Title: "F5: cluster power over the day", YLabel: "W"}
		if err := chart.Write(f, series...); err != nil {
			return err
		}
		fmt.Fprintf(w, "svg written to %s\n", path)
	}
	return nil
}

// F6 — performance impact [reconstructed]: SLA violations and demand
// satisfaction per policy on the day workload. This is where wake
// latency bites: S5-based management strands demand for minutes during
// surges; S3-based management stays near the NoPM baseline.
func F6(w io.Writer, opts Options) error {
	sc := dayScenario(opts)
	results, err := sc.RunPoliciesWorkers(opts.workers(), agilepower.Policies())
	if err != nil {
		return err
	}
	opts.note(results...)
	tbl := report.NewTable(
		"F6: performance impact over the day workload",
		"policy", "satisfaction", "violation_frac", "unmet_core_hours")
	for _, r := range results {
		tbl.AddRow(r.Policy, r.Satisfaction, r.ViolationFraction, r.UnmetCoreHours)
	}
	return tbl.Write(w)
}

// F7 — scale-out simulation [reconstructed]: the paper's claim that
// the approach holds at datacenter scale. Fleet sizes are swept and
// DPM-S3 savings and overheads reported per size.
func F7(w io.Writer, opts Options) error {
	sizes := []int{8, 16, 32, 64, 128, 256}
	horizon := 6 * time.Hour
	if opts.Quick {
		sizes = []int{8, 16, 32}
		horizon = 3 * time.Hour
	}
	tbl := report.NewTable(
		"F7: scale-out — DPM-S3 vs static across fleet sizes",
		"hosts", "vms", "static_kwh", "dpm_s3_kwh", "savings", "satisfaction", "migrations", "power_actions")
	rows, err := parallel.Map(context.Background(), len(sizes), opts.workers(),
		func(_ context.Context, i int) ([]any, error) {
			n := sizes[i]
			sc := opts.tune(agilepower.Scenario{
				Name:    fmt.Sprintf("f7-%d", n),
				Hosts:   n,
				VMs:     agilepower.DiurnalFleet(n*5, opts.seed()),
				Horizon: horizon,
				Seed:    opts.seed(),
			})
			res, err := sc.RunPoliciesWorkers(opts.workers(), []agilepower.Policy{agilepower.Static, agilepower.DPMS3})
			if err != nil {
				return nil, err
			}
			opts.note(res...)
			static, dpm := res[0], res[1]
			return []any{n, n * 5, static.EnergyKWh(), dpm.EnergyKWh(),
				dpm.SavingsVs(static), dpm.Satisfaction,
				dpm.Migrations.Completed, dpm.Sleeps + dpm.Wakes}, nil
		})
	if err != nil {
		return err
	}
	for _, row := range rows {
		tbl.AddRow(row...)
	}
	return tbl.Write(w)
}

// F8 — management overhead [reconstructed]: migrations and power
// actions per hour, DPM versus base DRM. The paper's "comparable
// overheads" claim: power management with low-latency states should
// not cost dramatically more actions than plain load balancing.
func F8(w io.Writer, opts Options) error {
	sc := dayScenario(opts)
	results, err := sc.RunPoliciesWorkers(opts.workers(), []agilepower.Policy{
		agilepower.NoPM, agilepower.DPMS5, agilepower.DPMS3,
	})
	if err != nil {
		return err
	}
	opts.note(results...)
	h := hours(sc.Horizon)
	tbl := report.NewTable(
		"F8: management actions per hour",
		"policy", "migr_lb_per_h", "migr_consol_per_h", "migr_total_per_h", "power_actions_per_h", "migr_downtime_s")
	for _, r := range results {
		tbl.AddRow(r.Policy,
			float64(r.Manager.MigrationsLB)/h,
			float64(r.Manager.MigrationsConsolidation)/h,
			float64(r.Migrations.Completed)/h,
			float64(r.Sleeps+r.Wakes)/h,
			r.Migrations.TotalDowntime.Seconds())
	}
	return tbl.Write(w)
}

// F9 — sensitivity to the control period [reconstructed]: how agility
// (short periods) trades against action churn and what it does to
// energy and violations for DPM-S3.
func F9(w io.Writer, opts Options) error {
	periods := []time.Duration{time.Minute, 2 * time.Minute, 5 * time.Minute, 10 * time.Minute, 20 * time.Minute, 30 * time.Minute}
	if opts.Quick {
		periods = []time.Duration{2 * time.Minute, 10 * time.Minute, 30 * time.Minute}
	}
	base := dayScenario(opts)
	// Index 0 is the static reference every row is normalized against;
	// the remaining indices are one DPM-S3 run per control period. All
	// run through one pool so the reference overlaps the sweep.
	results, err := parallel.Map(context.Background(), 1+len(periods), opts.workers(),
		func(_ context.Context, i int) (*agilepower.Result, error) {
			sc := base
			if i == 0 {
				sc.Manager.Policy = agilepower.Static
			} else {
				sc.Manager.Policy = agilepower.DPMS3
				sc.Manager.Period = periods[i-1]
			}
			return sc.Run()
		})
	if err != nil {
		return err
	}
	opts.note(results...)
	staticRes := results[0]
	tbl := report.NewTable(
		"F9: DPM-S3 sensitivity to control period",
		"period", "savings_vs_static", "violation_frac", "migrations", "power_actions")
	for i, p := range periods {
		r := results[i+1]
		tbl.AddRow(p.String(), r.SavingsVs(staticRes), r.ViolationFraction,
			r.Migrations.Completed, r.Sleeps+r.Wakes)
	}
	return tbl.Write(w)
}

// F10 — energy-performance trade-off scatter [reconstructed]: each
// configuration as a (savings, violation) point. The paper's closing
// figure: DPM-S3 sits in the good corner (high savings, violations
// near the DRM baseline), DPM-S5 trades one for the other.
func F10(w io.Writer, opts Options) error {
	base := dayScenario(opts)
	type variant struct {
		label string
		mut   func(*agilepower.Scenario)
	}
	variants := []variant{
		{"nopm", func(s *agilepower.Scenario) { s.Manager.Policy = agilepower.NoPM }},
		{"dpm-s5", func(s *agilepower.Scenario) { s.Manager.Policy = agilepower.DPMS5 }},
		{"dpm-s3", func(s *agilepower.Scenario) { s.Manager.Policy = agilepower.DPMS3 }},
		{"dpm-s3/tight", func(s *agilepower.Scenario) {
			s.Manager.Policy = agilepower.DPMS3
			s.Manager.TargetUtil = 0.85
			s.Manager.WakeThreshold = 0.92
		}},
		{"dpm-s3/spare1", func(s *agilepower.Scenario) {
			s.Manager.Policy = agilepower.DPMS3
			s.Manager.SpareHosts = 1
		}},
		{"dpm-s5/spare2", func(s *agilepower.Scenario) {
			s.Manager.Policy = agilepower.DPMS5
			s.Manager.SpareHosts = 2
		}},
	}
	// Index 0 is the static reference; the rest are the scatter points.
	results, err := parallel.Map(context.Background(), 1+len(variants), opts.workers(),
		func(_ context.Context, i int) (*agilepower.Result, error) {
			sc := base
			if i == 0 {
				sc.Manager.Policy = agilepower.Static
			} else {
				variants[i-1].mut(&sc)
			}
			return sc.Run()
		})
	if err != nil {
		return err
	}
	opts.note(results...)
	staticRes := results[0]
	tbl := report.NewTable(
		"F10: energy-performance trade-off (vs static provisioning)",
		"config", "savings", "violation_frac", "satisfaction")
	for i, v := range variants {
		r := results[i+1]
		tbl.AddRow(v.label, r.SavingsVs(staticRes), r.ViolationFraction, r.Satisfaction)
	}
	return tbl.Write(w)
}

// T2 — end-to-end summary table [reconstructed]: the paper's bottom
// line per policy on the day workload.
func T2(w io.Writer, opts Options) error {
	sc := dayScenario(opts)
	results, err := sc.RunPoliciesWorkers(opts.workers(), agilepower.Policies())
	if err != nil {
		return err
	}
	opts.note(results...)
	static := results[0]
	oracleE, err := static.OracleEnergy()
	if err != nil {
		return err
	}
	tbl := report.NewTable(
		"T2: end-to-end summary (day workload)",
		"policy", "energy_kwh", "savings_vs_static", "satisfaction", "violation_frac",
		"migrations", "sleeps", "wakes")
	for _, r := range results {
		tbl.AddRow(r.Policy, r.EnergyKWh(), r.SavingsVs(static),
			r.Satisfaction, r.ViolationFraction,
			r.Migrations.Completed, r.Sleeps, r.Wakes)
	}
	if err := tbl.Write(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "oracle (zero-latency DPM) bound: %.2f kWh (savings %.3f vs static)\n",
		oracleE.KWh(), 1-float64(oracleE)/float64(static.Energy)); err != nil {
		return err
	}
	// A fairness-matched oracle honouring the controller's own packing
	// headroom, so the gap attributable to latency/misprediction alone
	// is visible.
	fair := static.Oracle()
	fair.TargetUtil = 0.70
	fairE, err := fair.Energy(static.Demand, sc.Horizon)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "oracle@0.70 headroom: %.2f kWh (savings %.3f vs static)\n",
		fairE.KWh(), 1-float64(fairE)/float64(static.Energy))
	return err
}
