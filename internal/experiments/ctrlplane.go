package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"agilepower"
	"agilepower/internal/core"
	"agilepower/internal/ctrlplane"
	"agilepower/internal/parallel"
	"agilepower/internal/report"
)

// CtrlPlane — policy × management-network grid [extension]: the
// paper's day-long comparison re-run with an imperfect control path
// between manager and hosts — telemetry that arrives late or not at
// all, power/migration commands that are dropped and retried, and
// liveness inferred from heartbeats with hysteresis.
//
// This closes the gap between the simulator's oracle manager and the
// paper's real deployment, where every sensing and actuation message
// crosses a management network. The delay=0/loss=0 row is the control:
// no plane is constructed, so it is byte-identical to the main
// comparison. The degraded cells report what the message layer cost —
// energy and SLA movement plus the plane's own ledger (timeouts,
// retries, suppressed duplicates, lost commands, liveness churn, and
// scale-downs vetoed by the telemetry freshness guard).
func CtrlPlane(w io.Writer, opts Options) error {
	type mix struct {
		delay time.Duration
		loss  float64
	}
	mixes := []mix{
		{0, 0},
		{2 * time.Second, 0},
		{2 * time.Second, 0.05},
		{10 * time.Second, 0.05},
		{10 * time.Second, 0.20},
	}
	policies := []agilepower.Policy{agilepower.DPMS5, agilepower.DPMS3}
	if opts.Quick {
		mixes = []mix{{0, 0}, {5 * time.Second, 0.25}}
	}
	// A -ctrlplane-delay/-ctrlplane-loss mix from the CLI joins the
	// grid as an extra row (the standard rows stay fixed so reports
	// remain comparable across invocations).
	if opts.ctrlPlane() != nil {
		mixes = append(mixes, mix{opts.CtrlDelay, opts.CtrlLoss})
	}
	type cell struct {
		mix mix
		pol agilepower.Policy
	}
	cells := make([]cell, 0, len(mixes)*len(policies))
	for _, mx := range mixes {
		for _, p := range policies {
			cells = append(cells, cell{mx, p})
		}
	}
	sc0 := dayScenario(opts)
	fmt.Fprintf(w, "Control plane: %d hosts, %d VMs, horizon %.0fh, %d delay×loss mixes\n",
		sc0.Hosts, len(sc0.VMs), hours(sc0.Horizon), len(mixes))

	// Every cell shares sc0's fleet and world parameters, so the world
	// is built once and forked per cell (cold fallback on error).
	var proto *agilepower.Prototype
	if !sc0.ColdWorld {
		if p, err := sc0.Prototype(); err == nil {
			proto = p
		}
	}
	rows, err := parallel.Map(context.Background(), len(cells), opts.workers(),
		func(_ context.Context, i int) ([]any, error) {
			c := cells[i]
			sc := sc0
			sc.Name = fmt.Sprintf("ctrl-%s-d%s-l%03.0f", c.pol.Name, c.mix.delay, c.mix.loss*1000)
			sc.Manager.Policy = c.pol
			// Each cell IS a control-plane setting: the cell's mix
			// replaces whatever dayScenario inherited from the Options.
			cfg := agilepower.CtrlPreset(c.mix.delay, c.mix.loss)
			if cfg.Enabled() {
				sc.CtrlPlane = &cfg
			} else {
				sc.CtrlPlane = nil
			}
			res, err := runCell(proto, sc)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", sc.Name, err)
			}
			opts.note(res)
			fc := res.FaultCounters
			return []any{
				c.mix.delay.String(),
				fmt.Sprintf("%.0f%%", c.mix.loss*100),
				res.Policy,
				res.EnergyKWh(),
				res.ViolationFraction,
				res.UnmetCoreHours,
				fc[ctrlplane.CtrCmdTimeouts],
				fc[ctrlplane.CtrCmdRetries],
				fc[ctrlplane.CtrCmdDupes],
				fc[ctrlplane.CtrCmdLost],
				fc[ctrlplane.CtrSuspects],
				fc[ctrlplane.CtrDeaths],
				fc[core.CtrStaleKeepOn],
			}, nil
		})
	if err != nil {
		return err
	}
	tbl := report.NewTable("paper comparison under an imperfect control plane",
		"delay", "loss", "policy", "energy_kwh", "sla_viol", "unmet_core_h",
		"cmd_tmo", "cmd_retry", "cmd_dupe", "cmd_lost",
		"hb_suspect", "hb_dead", "stale_keep")
	for i, row := range rows {
		if i > 0 && i%len(policies) == 0 {
			tbl.AddSeparator()
		}
		tbl.AddRow(row...)
	}
	return tbl.Write(w)
}
