package experiments

import (
	"context"
	"io"
	"time"

	"agilepower"
	"agilepower/internal/parallel"
	"agilepower/internal/report"
)

// Ablations — design-choice benches called out in DESIGN.md: demand
// forecaster, packing heuristic, hysteresis band, and the spare-host
// reserve, all on the DPM-S3 day workload. Each table's variants are
// independent simulations and run through the worker pool; rows are
// emitted in variant order so the report does not depend on the
// worker count.
func Ablations(w io.Writer, opts Options) error {
	base := dayScenario(opts)

	type variant struct {
		label string
		mut   func(*agilepower.ManagerConfig)
	}
	variants := []variant{
		{"baseline (peak-window, ffd, hysteresis, 0 spare)", func(c *agilepower.ManagerConfig) {}},
		{"forecast: last-value", func(c *agilepower.ManagerConfig) {
			c.Forecast = agilepower.ForecastSpec{Kind: agilepower.ForecastLastValue}
		}},
		{"forecast: ewma", func(c *agilepower.ManagerConfig) {
			c.Forecast = agilepower.ForecastSpec{Kind: agilepower.ForecastEWMA}
		}},
		{"packing: bfd", func(c *agilepower.ManagerConfig) {
			c.Packing = 1 // core.PackBFD
		}},
		{"sleep-delay: none", func(c *agilepower.ManagerConfig) {
			c.SleepDelay = -1
		}},
		{"sleep-delay: 10m", func(c *agilepower.ManagerConfig) {
			c.SleepDelay = 10 * time.Minute
		}},
		{"spare hosts: 1", func(c *agilepower.ManagerConfig) { c.SpareHosts = 1 }},
		{"spare hosts: 2", func(c *agilepower.ManagerConfig) { c.SpareHosts = 2 }},
	}

	// Index 0 is the static reference shared by the variant, robustness
	// and latency tables; the rest are the design-choice variants.
	results, err := parallel.Map(context.Background(), 1+len(variants), opts.workers(),
		func(_ context.Context, i int) (*agilepower.Result, error) {
			sc := base
			if i == 0 {
				sc.Manager.Policy = agilepower.Static
			} else {
				sc.Manager.Policy = agilepower.DPMS3
				variants[i-1].mut(&sc.Manager)
			}
			return sc.Run()
		})
	if err != nil {
		return err
	}
	opts.note(results...)
	staticRes := results[0]

	tbl := report.NewTable(
		"Ablations: DPM-S3 design choices on the day workload",
		"variant", "savings_vs_static", "violation_frac", "migrations", "power_actions")
	for i, v := range variants {
		r := results[i+1]
		tbl.AddRow(v.label, r.SavingsVs(staticRes), r.ViolationFraction,
			r.Migrations.Completed, r.Sleeps+r.Wakes)
	}
	if err := tbl.Write(w); err != nil {
		return err
	}

	// Availability constraints: replicas with anti-affinity cannot be
	// co-located, so the number of active hosts can never drop below
	// the widest service. The sweep uses a lightly loaded cluster
	// (packing optimum ~2-3 hosts) so the replica floor actually
	// binds. Each replica count needs its own static reference (the
	// fleet changes), so every row runs a [static, dpm-s3] pair.
	tblA := report.NewTable(
		"Ablations: anti-affinity (replicas per service) vs consolidation (16 hosts, light load)",
		"replicas", "savings_vs_static", "violation_frac", "mean_active_hosts")
	aaHosts, aaVMs := 16, 24
	if opts.Quick {
		aaHosts, aaVMs = 8, 12
	}
	var replicaCounts []int
	for _, replicas := range []int{1, 2, 6, 12} {
		if replicas > aaVMs || replicas > aaHosts {
			continue // a service wider than the fleet cannot be placed
		}
		replicaCounts = append(replicaCounts, replicas)
	}
	rowsA, err := parallel.Map(context.Background(), len(replicaCounts), opts.workers(),
		func(_ context.Context, i int) ([]any, error) {
			replicas := replicaCounts[i]
			sc := base
			sc.Hosts = aaHosts
			sc.VMs = agilepower.ReplicatedFleet(aaVMs/replicas, replicas, opts.seed())
			res, err := sc.RunPoliciesWorkers(opts.workers(),
				[]agilepower.Policy{agilepower.Static, agilepower.DPMS3})
			if err != nil {
				return nil, err
			}
			opts.note(res...)
			st, r := res[0], res[1]
			return []any{replicas, r.SavingsVs(st), r.ViolationFraction,
				r.ActiveHosts.TimeMean(0, sc.Horizon)}, nil
		})
	if err != nil {
		return err
	}
	for _, row := range rowsA {
		tblA.AddRow(row...)
	}
	if err := tblA.Write(w); err != nil {
		return err
	}

	// Robustness: S3 resume failures (fallback to a full boot). The
	// low-latency story must survive occasionally fragile resumes.
	failProbs := []float64{0, 0.02, 0.10, 0.25}
	resR, err := parallel.Map(context.Background(), len(failProbs), opts.workers(),
		func(_ context.Context, i int) (*agilepower.Result, error) {
			profile := agilepower.DefaultProfile()
			profile.ResumeFailProb = failProbs[i]
			sc := base
			sc.Profile = profile
			sc.Manager.Policy = agilepower.DPMS3
			return sc.Run()
		})
	if err != nil {
		return err
	}
	opts.note(resR...)
	tblR := report.NewTable(
		"Ablations: S3 resume-failure robustness",
		"fail_prob", "savings_vs_static", "violation_frac", "resume_failures")
	for i, prob := range failProbs {
		r := resR[i]
		tblR.AddRow(prob, r.SavingsVs(staticRes), r.ViolationFraction, r.ResumeFailures)
	}
	if err := tblR.Write(w); err != nil {
		return err
	}

	// Wake-latency sensitivity: how would savings/violations move if
	// S3 exit latency were worse or better than our calibration?
	exits := []time.Duration{5 * time.Second, 15 * time.Second, 60 * time.Second, 5 * time.Minute}
	resL, err := parallel.Map(context.Background(), len(exits), opts.workers(),
		func(_ context.Context, i int) (*agilepower.Result, error) {
			profile := agilepower.DefaultProfile()
			spec := profile.Sleep[agilepower.S3]
			spec.ExitLatency = exits[i]
			profile.Sleep[agilepower.S3] = spec
			sc := base
			sc.Profile = profile
			sc.Manager.Policy = agilepower.DPMS3
			return sc.Run()
		})
	if err != nil {
		return err
	}
	opts.note(resL...)
	tblL := report.NewTable(
		"Ablations: S3 exit-latency sensitivity",
		"exit_latency", "savings_vs_static", "violation_frac")
	for i, exit := range exits {
		r := resL[i]
		tblL.AddRow(exit.String(), r.SavingsVs(staticRes), r.ViolationFraction)
	}
	return tblL.Write(w)
}
