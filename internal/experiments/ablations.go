package experiments

import (
	"io"
	"time"

	"agilepower"
	"agilepower/internal/report"
)

// Ablations — design-choice benches called out in DESIGN.md: demand
// forecaster, packing heuristic, hysteresis band, and the spare-host
// reserve, all on the DPM-S3 day workload.
func Ablations(w io.Writer, opts Options) error {
	base := dayScenario(opts)
	staticRes, err := func() (*agilepower.Result, error) {
		sc := base
		sc.Manager.Policy = agilepower.Static
		return sc.Run()
	}()
	if err != nil {
		return err
	}

	type variant struct {
		label string
		mut   func(*agilepower.ManagerConfig)
	}
	variants := []variant{
		{"baseline (peak-window, ffd, hysteresis, 0 spare)", func(c *agilepower.ManagerConfig) {}},
		{"forecast: last-value", func(c *agilepower.ManagerConfig) {
			c.Forecast = agilepower.ForecastSpec{Kind: agilepower.ForecastLastValue}
		}},
		{"forecast: ewma", func(c *agilepower.ManagerConfig) {
			c.Forecast = agilepower.ForecastSpec{Kind: agilepower.ForecastEWMA}
		}},
		{"packing: bfd", func(c *agilepower.ManagerConfig) {
			c.Packing = 1 // core.PackBFD
		}},
		{"sleep-delay: none", func(c *agilepower.ManagerConfig) {
			c.SleepDelay = -1
		}},
		{"sleep-delay: 10m", func(c *agilepower.ManagerConfig) {
			c.SleepDelay = 10 * time.Minute
		}},
		{"spare hosts: 1", func(c *agilepower.ManagerConfig) { c.SpareHosts = 1 }},
		{"spare hosts: 2", func(c *agilepower.ManagerConfig) { c.SpareHosts = 2 }},
	}

	tbl := report.NewTable(
		"Ablations: DPM-S3 design choices on the day workload",
		"variant", "savings_vs_static", "violation_frac", "migrations", "power_actions")
	for _, v := range variants {
		sc := base
		sc.Manager.Policy = agilepower.DPMS3
		v.mut(&sc.Manager)
		r, err := sc.Run()
		if err != nil {
			return err
		}
		tbl.AddRow(v.label, r.SavingsVs(staticRes), r.ViolationFraction,
			r.Migrations.Completed, r.Sleeps+r.Wakes)
	}
	if err := tbl.Write(w); err != nil {
		return err
	}

	// Availability constraints: replicas with anti-affinity cannot be
	// co-located, so the number of active hosts can never drop below
	// the widest service. The sweep uses a lightly loaded cluster
	// (packing optimum ~2-3 hosts) so the replica floor actually
	// binds.
	tblA := report.NewTable(
		"Ablations: anti-affinity (replicas per service) vs consolidation (16 hosts, light load)",
		"replicas", "savings_vs_static", "violation_frac", "mean_active_hosts")
	aaHosts, aaVMs := 16, 24
	if opts.Quick {
		aaHosts, aaVMs = 8, 12
	}
	for _, replicas := range []int{1, 2, 6, 12} {
		if replicas > aaVMs || replicas > aaHosts {
			continue // a service wider than the fleet cannot be placed
		}
		sc := base
		sc.Hosts = aaHosts
		sc.VMs = agilepower.ReplicatedFleet(aaVMs/replicas, replicas, opts.seed())
		staticRef := sc
		staticRef.Manager.Policy = agilepower.Static
		st, err := staticRef.Run()
		if err != nil {
			return err
		}
		sc.Manager.Policy = agilepower.DPMS3
		r, err := sc.Run()
		if err != nil {
			return err
		}
		tblA.AddRow(replicas, r.SavingsVs(st), r.ViolationFraction,
			r.ActiveHosts.TimeMean(0, sc.Horizon))
	}
	if err := tblA.Write(w); err != nil {
		return err
	}

	// Robustness: S3 resume failures (fallback to a full boot). The
	// low-latency story must survive occasionally fragile resumes.
	tblR := report.NewTable(
		"Ablations: S3 resume-failure robustness",
		"fail_prob", "savings_vs_static", "violation_frac", "resume_failures")
	for _, prob := range []float64{0, 0.02, 0.10, 0.25} {
		profile := agilepower.DefaultProfile()
		profile.ResumeFailProb = prob
		sc := base
		sc.Profile = profile
		sc.Manager.Policy = agilepower.DPMS3
		r, err := sc.Run()
		if err != nil {
			return err
		}
		tblR.AddRow(prob, r.SavingsVs(staticRes), r.ViolationFraction, r.ResumeFailures)
	}
	if err := tblR.Write(w); err != nil {
		return err
	}

	// Wake-latency sensitivity: how would savings/violations move if
	// S3 exit latency were worse or better than our calibration?
	tblL := report.NewTable(
		"Ablations: S3 exit-latency sensitivity",
		"exit_latency", "savings_vs_static", "violation_frac")
	for _, exit := range []time.Duration{5 * time.Second, 15 * time.Second, 60 * time.Second, 5 * time.Minute} {
		profile := agilepower.DefaultProfile()
		spec := profile.Sleep[agilepower.S3]
		spec.ExitLatency = exit
		profile.Sleep[agilepower.S3] = spec
		sc := base
		sc.Profile = profile
		sc.Manager.Policy = agilepower.DPMS3
		r, err := sc.Run()
		if err != nil {
			return err
		}
		tblL.AddRow(exit.String(), r.SavingsVs(staticRes), r.ViolationFraction)
	}
	return tblL.Write(w)
}
