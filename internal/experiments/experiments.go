// Package experiments implements the reproduction of every table and
// figure in the paper's evaluation (reconstructed — see DESIGN.md).
// Each experiment is a named function that runs the workload, prints
// the same rows/series the paper reports, and returns the numbers for
// programmatic checks. The cmd/powerbench and cmd/sweep binaries and
// the root bench_test.go all drive this package, so the figures are
// regenerated from exactly one implementation.
package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"agilepower"
	"agilepower/internal/parallel"
	"agilepower/internal/power"
)

// Options tunes experiment execution.
type Options struct {
	// Quick shrinks horizons and fleet sizes so the full suite runs in
	// seconds (used by `go test -bench`). Full mode reproduces the
	// paper-scale parameters.
	Quick bool
	// Seed drives workload generation (default 1).
	Seed uint64
	// SVGDir, when non-empty, makes figure experiments also write SVG
	// charts into this directory (currently F5).
	SVGDir string
	// Profile overrides the server power calibration (default
	// power.DefaultProfile). Characterization and cluster experiments
	// both honour it, so alternative platforms can be explored from
	// the CLIs.
	Profile *power.Profile
	// CtrlDelay and CtrlLoss degrade the management network for the
	// cluster-level experiments (CtrlPreset mix): mean one-way message
	// delay and per-leg loss probability. Both zero (the default)
	// builds no control plane at all, keeping reports byte-identical
	// to plane-unaware builds. The ctrlplane experiment sweeps its own
	// grid and ignores these.
	CtrlDelay time.Duration
	CtrlLoss  float64
	// Shards partitions each simulation's evaluation tick into this
	// many concurrent ID-contiguous host ranges (see Scenario.Shards);
	// EvalWorkers bounds the goroutines serving them. Wall-clock knobs
	// for datacenter-scale fleets: every report is byte-identical for
	// every value. The scale experiment defaults to its own shard count
	// when Shards is 0; everything else stays serial.
	Shards      int
	EvalWorkers int
	// Delta selects the evaluation mode for every scenario an
	// experiment builds: DeltaOn forces event-driven delta evaluation,
	// DeltaOff forces the full per-host scan, and DeltaDefault (the
	// zero value) lets each experiment choose — hyperscale defaults to
	// delta, everything else to full. Like Shards, a wall-clock knob:
	// reports are byte-identical in either mode.
	Delta DeltaMode
	// Incremental selects the manager's planning mode for every
	// scenario an experiment builds: IncrementalOn maintains the
	// manager's planning inputs from per-host deltas, IncrementalOff
	// rebuilds them by full scan each control step, and the zero value
	// keeps the manager default (incremental). Like Delta, a
	// wall-clock knob: reports are byte-identical in either mode.
	Incremental agilepower.IncrementalMode
	// TelemetryCap bounds each recorded time series to this many stored
	// samples via deterministic bucket folding (see
	// Scenario.TelemetryCap). 0 leaves experiments to their defaults
	// (unbounded, except hyperscale which sets its own cap).
	TelemetryCap int
	// ColdWorld disables the snapshot/fork world reuse: every grid cell
	// rebuilds its fleet from scratch via a cold Start instead of
	// forking a shared Prototype (see Scenario.ColdWorld). A debugging
	// escape hatch — reports are byte-identical either way.
	ColdWorld bool
	// Workers bounds the number of simulations run concurrently inside
	// an experiment's fan-out (per-policy, per-load, per-period, …) and
	// across experiments in RunAll. 0 means GOMAXPROCS; 1 runs fully
	// sequentially. Every report is byte-identical for every value:
	// each simulation renders into its own slot and the rows/sections
	// are stitched in experiment order.
	Workers int
	// Progress, when non-nil, receives one line per completed
	// experiment in RunAll (id + wall time). It is kept separate from
	// the report writer so long runs are observable on stderr without
	// polluting the stdout report. Lines appear in completion order.
	Progress io.Writer
	// Health, when non-nil, accumulates fleet-hygiene problems across
	// every simulation the experiments run (see Health). CLIs consult
	// it after a sweep to exit nonzero on stranded VMs or failed
	// assertions even when the report itself rendered fine.
	Health *Health
}

// Health accumulates fleet-hygiene problems across simulations: VMs
// still stranded on crashed hosts at the horizon and failed scenario
// assertions. A sweep whose report renders fine can still have left
// wreckage behind; CLIs consult the accumulated verdict to exit
// nonzero. Safe for concurrent use — experiments fan out across
// workers.
type Health struct {
	mu       sync.Mutex
	runs     int
	badRuns  int
	stranded int
	failed   int
}

// Note records one simulation's outcome.
func (h *Health) Note(res *agilepower.Result) {
	if h == nil || res == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.runs++
	if res.StrandedVMs > 0 || res.AssertionFailures > 0 {
		h.badRuns++
		h.stranded += res.StrandedVMs
		h.failed += res.AssertionFailures
	}
}

// Unhealthy reports whether any noted run ended with stranded VMs or
// failed assertions.
func (h *Health) Unhealthy() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.badRuns > 0
}

// Summary renders the one-line verdict CLIs print to stderr.
func (h *Health) Summary() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return fmt.Sprintf("%d of %d runs unhealthy: %d stranded VM(s), %d failed assertion(s)",
		h.badRuns, h.runs, h.stranded, h.failed)
}

// note feeds results into the Options' Health accumulator, if any.
// Every experiment run site routes its results through here.
func (o Options) note(results ...*agilepower.Result) {
	if o.Health == nil {
		return
	}
	for _, r := range results {
		o.Health.Note(r)
	}
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) profile() *power.Profile {
	if o.Profile != nil {
		return o.Profile
	}
	return power.DefaultProfile()
}

// ctrlPlane materializes the Options' control-plane degradation, or
// nil when dormant (so no plane is constructed and byte-identity with
// plane-free runs holds).
func (o Options) ctrlPlane() *agilepower.CtrlPlaneConfig {
	cfg := agilepower.CtrlPreset(o.CtrlDelay, o.CtrlLoss)
	if !cfg.Enabled() {
		return nil
	}
	return &cfg
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return parallel.DefaultWorkers()
	}
	return o.Workers
}

// DeltaMode is the Options' tri-state evaluation-mode selector.
type DeltaMode int

const (
	// DeltaDefault lets each experiment pick its evaluation mode.
	DeltaDefault DeltaMode = iota
	// DeltaOn forces event-driven delta evaluation.
	DeltaOn
	// DeltaOff forces the full per-host scan.
	DeltaOff DeltaMode = -1
)

// tune applies the Options' execution knobs — evaluation-tick
// sharding, delta mode, telemetry cap — to a scenario. Purely
// wall-clock / memory: the scenario's results are byte-identical for
// every setting.
func (o Options) tune(sc agilepower.Scenario) agilepower.Scenario {
	sc.Shards = o.Shards
	sc.EvalWorkers = o.EvalWorkers
	switch o.Delta {
	case DeltaOn:
		sc.Delta = true
	case DeltaOff:
		sc.Delta = false
	}
	if o.Incremental != agilepower.IncrementalDefault {
		sc.Manager.Incremental = o.Incremental
	}
	if o.TelemetryCap > 0 {
		sc.TelemetryCap = o.TelemetryCap
	}
	sc.ColdWorld = o.ColdWorld
	return sc
}

// runCell executes one grid cell: forked from the shared prototype
// when one is available, or via a cold Start otherwise. Results are
// byte-identical either way.
func runCell(proto *agilepower.Prototype, sc agilepower.Scenario) (*agilepower.Result, error) {
	if proto != nil {
		return proto.Run(sc)
	}
	return sc.Run()
}

// Runner executes one experiment, writing its report to w.
type Runner func(w io.Writer, opts Options) error

var registry = map[string]Runner{
	"t1":      T1,
	"f2":      F2,
	"f3":      F3,
	"f4":      F4,
	"f5":      F5,
	"f6":      F6,
	"f7":      F7,
	"f8":      F8,
	"f9":      F9,
	"f10":     F10,
	"t2":      T2,
	"prov":    Prov,
	"predict": Predict,
	"dvfs":    DVFS,
	"robust":  Robustness,
	"ctrl":    CtrlPlane,
	"scale":   Scale,
	"hyper":   Hyperscale,
	"ablate":  Ablations,
}

// IDs returns all experiment identifiers in run order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return orderKey(ids[i]) < orderKey(ids[j]) })
	return ids
}

func orderKey(id string) string {
	// t1 first, then f2..f10 numerically, then t2, then ablate.
	switch id {
	case "t1":
		return "00"
	case "t2":
		return "90"
	case "prov":
		return "95"
	case "predict":
		return "96"
	case "dvfs":
		return "97"
	case "robust":
		return "98"
	case "ctrl":
		return "985"
	case "scale":
		return "987"
	case "hyper":
		return "988"
	case "ablate":
		return "99"
	default:
		if len(id) == 2 {
			return "0" + id[1:]
		}
		return id[1:]
	}
}

// Run executes the experiment with the given id.
func Run(id string, w io.Writer, opts Options) error {
	r, ok := registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return r(w, opts)
}

// RunAll executes every experiment and writes the reports in
// experiment order. Experiments run concurrently on up to
// opts.Workers workers (0 = GOMAXPROCS), each rendering into its own
// buffer; the stitched output is byte-identical to a sequential run.
// When opts.Progress is non-nil, one line per experiment (id + wall
// time) is written there as runs complete.
func RunAll(w io.Writer, opts Options) error {
	ids := IDs()
	start := time.Now()
	var progressMu sync.Mutex
	bufs, err := parallel.Map(context.Background(), len(ids), opts.Workers,
		func(_ context.Context, i int) (*bytes.Buffer, error) {
			var buf bytes.Buffer
			fmt.Fprintf(&buf, "\n=== experiment %s ===\n", ids[i])
			expStart := time.Now()
			if err := Run(ids[i], &buf, opts); err != nil {
				return nil, fmt.Errorf("experiment %s: %w", ids[i], err)
			}
			if opts.Progress != nil {
				progressMu.Lock()
				fmt.Fprintf(opts.Progress, "experiment %-8s done in %8.2fs\n",
					ids[i], time.Since(expStart).Seconds())
				progressMu.Unlock()
			}
			return &buf, nil
		})
	if err != nil {
		return err
	}
	for _, buf := range bufs {
		if _, err := w.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	if opts.Progress != nil {
		fmt.Fprintf(opts.Progress, "all %d experiments done in %.2fs (workers=%d)\n",
			len(ids), time.Since(start).Seconds(), opts.workers())
	}
	return nil
}

// hours is a small helper for report durations.
func hours(d time.Duration) float64 { return d.Hours() }
