// Package experiments implements the reproduction of every table and
// figure in the paper's evaluation (reconstructed — see DESIGN.md).
// Each experiment is a named function that runs the workload, prints
// the same rows/series the paper reports, and returns the numbers for
// programmatic checks. The cmd/powerbench and cmd/sweep binaries and
// the root bench_test.go all drive this package, so the figures are
// regenerated from exactly one implementation.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"agilepower/internal/power"
)

// Options tunes experiment execution.
type Options struct {
	// Quick shrinks horizons and fleet sizes so the full suite runs in
	// seconds (used by `go test -bench`). Full mode reproduces the
	// paper-scale parameters.
	Quick bool
	// Seed drives workload generation (default 1).
	Seed uint64
	// SVGDir, when non-empty, makes figure experiments also write SVG
	// charts into this directory (currently F5).
	SVGDir string
	// Profile overrides the server power calibration (default
	// power.DefaultProfile). Characterization and cluster experiments
	// both honour it, so alternative platforms can be explored from
	// the CLIs.
	Profile *power.Profile
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) profile() *power.Profile {
	if o.Profile != nil {
		return o.Profile
	}
	return power.DefaultProfile()
}

// Runner executes one experiment, writing its report to w.
type Runner func(w io.Writer, opts Options) error

var registry = map[string]Runner{
	"t1":      T1,
	"f2":      F2,
	"f3":      F3,
	"f4":      F4,
	"f5":      F5,
	"f6":      F6,
	"f7":      F7,
	"f8":      F8,
	"f9":      F9,
	"f10":     F10,
	"t2":      T2,
	"prov":    Prov,
	"predict": Predict,
	"dvfs":    DVFS,
	"ablate":  Ablations,
}

// IDs returns all experiment identifiers in run order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return orderKey(ids[i]) < orderKey(ids[j]) })
	return ids
}

func orderKey(id string) string {
	// t1 first, then f2..f10 numerically, then t2, then ablate.
	switch id {
	case "t1":
		return "00"
	case "t2":
		return "90"
	case "prov":
		return "95"
	case "predict":
		return "96"
	case "dvfs":
		return "97"
	case "ablate":
		return "99"
	default:
		if len(id) == 2 {
			return "0" + id[1:]
		}
		return id[1:]
	}
}

// Run executes the experiment with the given id.
func Run(id string, w io.Writer, opts Options) error {
	r, ok := registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return r(w, opts)
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer, opts Options) error {
	for _, id := range IDs() {
		fmt.Fprintf(w, "\n=== experiment %s ===\n", id)
		if err := Run(id, w, opts); err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
	}
	return nil
}

// hours is a small helper for report durations.
func hours(d time.Duration) float64 { return d.Hours() }
