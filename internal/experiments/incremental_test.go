package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"agilepower"
)

// TestIncrementalMatrixMatchesGolden replays the robust and ctrl
// experiments — fault injection, crash/repair churn, and the imperfect
// control plane, the paths that stress the manager's cache
// invalidation hardest — across the execution matrix: shards {1, 2, 4}
// × workers {1, 4} × incremental planning {on, off}, comparing each
// report byte-for-byte against the golden. Planning mode is a
// wall-clock knob; it may not move a single byte.
func TestIncrementalMatrixMatchesGolden(t *testing.T) {
	for _, id := range []string{"robust", "ctrl"} {
		want := goldenQuickSection(t, id)
		for _, shards := range []int{1, 2, 4} {
			for _, workers := range []int{1, 4} {
				for _, inc := range []agilepower.IncrementalMode{agilepower.IncrementalOn, agilepower.IncrementalOff} {
					name := fmt.Sprintf("%s/shards=%d/workers=%d/incremental=%s", id, shards, workers, inc)
					t.Run(name, func(t *testing.T) {
						var got bytes.Buffer
						opts := Options{
							Quick: true, Shards: shards, EvalWorkers: workers, Incremental: inc,
						}
						if err := Run(id, &got, opts); err != nil {
							t.Fatal(err)
						}
						diffAt(t, name, got.Bytes(), want)
					})
				}
			}
		}
	}
}

// TestHyperscaleIncrementalMatrixMatchesGolden replays the hyperscale
// experiment across incremental {on, off} × shards {1, 2, 4} ×
// workers {1, 4} and compares every report against the golden bytes.
// This is the tentpole's headline identity at experiment scale: the
// cached plans, the incrementally-maintained census and forecasts, and
// the lazy forecast catch-up produce exactly the bytes the full-scan
// planner does, for every sharding of the evaluation tick.
func TestHyperscaleIncrementalMatrixMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-mode hyperscale replays; skipped with -short")
	}
	want := goldenQuickSection(t, "hyper")
	for _, inc := range []agilepower.IncrementalMode{agilepower.IncrementalOn, agilepower.IncrementalOff} {
		for _, shards := range []int{1, 2, 4} {
			for _, workers := range []int{1, 4} {
				name := fmt.Sprintf("hyper/incremental=%s/shards=%d/workers=%d", inc, shards, workers)
				t.Run(name, func(t *testing.T) {
					var got bytes.Buffer
					opts := Options{
						Quick: true, Shards: shards, EvalWorkers: workers, Incremental: inc,
					}
					if err := Run("hyper", &got, opts); err != nil {
						t.Fatal(err)
					}
					diffAt(t, name, got.Bytes(), want)
				})
			}
		}
	}
}
