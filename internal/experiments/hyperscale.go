package experiments

import (
	"fmt"
	"io"
	"time"

	"agilepower"
	"agilepower/internal/report"
)

// Hyperscale sizing. Full mode is the headline delta-evaluation run:
// a hundred-thousand-host fleet carrying a million VMs through a
// simulated day, feasible on a laptop because quiescent hosts are
// never rescanned and telemetry is bounded. Quick mode shrinks to a
// smoke-sized fleet with the same structure so the golden/CI suites
// replay it in seconds.
const (
	hyperscaleHosts    = 100000
	hyperscaleVMs      = 1000000
	hyperscaleShards   = 16
	hyperscaleQuickN   = 256
	hyperscaleQuickVMs = 4096
	// hyperscaleTelemetryCap bounds each recorded series. A day at a
	// 1-minute evaluation step plus management-action evaluations stays
	// well under 4096 buckets of useful resolution, and memory per
	// series is fixed at cap × 24 bytes for any horizon.
	hyperscaleTelemetryCap = 4096
)

// Hyperscale — delta evaluation at hyperscale [extension]: the full
// policy comparison on a 100,000-host / 1,000,000-VM fleet over a
// simulated day, the scale the event-driven delta evaluation tick and
// bounded telemetry exist for. VMs draw demand from a shared trace
// pool sampled at 15-minute intervals, so between demand edges hosts
// are quiescent and a tick's work is proportional to change volume,
// not fleet size. A trough-heavy variant (demand concentrated in
// short windows, the overwhelming majority of hosts quiescent at any
// instant) adds one row under the dpm-s3 policy.
//
// Energy/SLA land in the report (deterministic, byte-identical across
// shard/worker counts and delta on/off); throughput and the delta
// skip ratio are execution diagnostics and go to opts.Progress.
func Hyperscale(w io.Writer, opts Options) error {
	hosts, vmsN := hyperscaleHosts, hyperscaleVMs
	horizon := 24 * time.Hour
	if opts.Quick {
		hosts, vmsN = hyperscaleQuickN, hyperscaleQuickVMs
		horizon = time.Hour
	}
	sc := opts.tune(agilepower.Scenario{
		Name:         "hyperscale",
		Profile:      opts.Profile,
		Hosts:        hosts,
		HostCores:    16,
		HostMemoryGB: 256,
		VMs:          agilepower.HyperscaleFleet(vmsN, opts.seed()),
		Horizon:      horizon,
		Seed:         opts.seed(),
		CtrlPlane:    opts.ctrlPlane(),
		Delta:        true,
		TelemetryCap: hyperscaleTelemetryCap,
	})
	if sc.Shards == 0 {
		sc.Shards = hyperscaleShards
	}
	fmt.Fprintf(w, "Hyperscale: %d hosts × 16c, %d pooled-trace VMs, horizon %.0fh, delta evaluation\n",
		hosts, vmsN, hours(horizon))

	// Full mode runs the policies sequentially: four concurrent
	// million-VM simulations would multiply the peak heap by four,
	// and the point of this experiment is fitting the day in bounded
	// memory. Quick mode keeps the usual fan-out.
	policyWorkers := opts.workers()
	if !opts.Quick {
		policyWorkers = 1
	}
	start := time.Now()
	results, err := sc.RunPoliciesWorkers(policyWorkers, agilepower.Policies())
	if err != nil {
		return err
	}
	opts.note(results...)

	static := results[0]
	tbl := report.NewTable(
		"hyperscale: full policy comparison at hyperscale",
		"policy", "energy_kwh", "savings_vs_static", "satisfaction", "violation_frac",
		"migrations", "sleeps", "wakes", "power_p95_w")
	for _, r := range results {
		tbl.AddRow(r.Policy, r.EnergyKWh(), r.SavingsVs(static),
			r.Satisfaction, r.ViolationFraction,
			r.Migrations.Completed, r.Sleeps, r.Wakes,
			r.Power.Summarize().P95)
	}
	if err := tbl.Write(w); err != nil {
		return err
	}

	// Trough-heavy variant: same fleet size, demand concentrated in
	// short windows so most hosts sit quiescent — the best case for
	// delta evaluation and the row that shows SLA does not degrade
	// when nearly everything is parked. One policy keeps the variant a
	// single row.
	tsc := sc
	tsc.Name = "hyperscale-trough"
	tsc.VMs = agilepower.DeepTroughFleet(vmsN, opts.seed()+1)
	tsc.Manager.Policy = agilepower.DPMS3
	trough, err := tsc.Run()
	if err != nil {
		return err
	}
	opts.note(trough)
	wall := time.Since(start)
	vtbl := report.NewTable(
		"hyperscale: trough-heavy diurnal variant (dpm-s3)",
		"variant", "energy_kwh", "satisfaction", "violation_frac",
		"migrations", "sleeps", "wakes", "power_p95_w")
	vtbl.AddRow("trough-heavy", trough.EnergyKWh(),
		trough.Satisfaction, trough.ViolationFraction,
		trough.Migrations.Completed, trough.Sleeps, trough.Wakes,
		trough.Power.Summarize().P95)
	if err := vtbl.Write(w); err != nil {
		return err
	}

	if opts.Progress != nil {
		var ticks, evals int64
		for _, r := range results {
			ticks += r.EvalTicks
			evals += r.HostEvals
		}
		ticks += trough.EvalTicks
		evals += trough.HostEvals
		slots := float64(ticks) * float64(hosts)
		skip := 0.0
		if slots > 0 {
			skip = 1 - float64(evals)/slots
		}
		tSlots := float64(trough.EvalTicks) * float64(hosts)
		tSkip := 0.0
		if tSlots > 0 {
			tSkip = 1 - float64(trough.HostEvals)/tSlots
		}
		simHours := hours(horizon) * float64(len(results)+1)
		fmt.Fprintf(opts.Progress,
			"experiment hyperscale throughput: %.1f simulated-hours/wall-second (%.2fs wall, shards=%d); delta skipped %.1f%% of host-ticks (%.1f%% in the trough variant)\n",
			simHours/wall.Seconds(), wall.Seconds(), sc.Shards, 100*skip, 100*tSkip)
	}
	return nil
}
