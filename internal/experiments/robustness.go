package experiments

import (
	"context"
	"fmt"
	"io"

	"agilepower"
	"agilepower/internal/core"
	"agilepower/internal/parallel"
	"agilepower/internal/report"
)

// Robustness — policy × fault-rate grid [extension]: the paper's
// comparison re-run under injected infrastructure faults (failed/slow
// power transitions, aborted/stalled migrations, transient host
// crashes), reporting energy, SLA violations, and the manager's
// recovery actions (retries, quarantines, re-plans) at each intensity.
//
// This is the risk side of the paper's argument made measurable: power
// management only pays if its energy savings survive the transition
// failures that made operators distrust it. The 0% row is the control
// — it is byte-identical to a fault-free build (the injector is never
// constructed), anchoring the grid to the main comparison.
func Robustness(w io.Writer, opts Options) error {
	rates := []float64{0, 0.02, 0.05, 0.10, 0.20}
	policies := []agilepower.Policy{agilepower.NoPM, agilepower.DPMS5, agilepower.DPMS3}
	if opts.Quick {
		rates = []float64{0, 0.10}
		policies = []agilepower.Policy{agilepower.DPMS5, agilepower.DPMS3}
	}
	type cell struct {
		rate float64
		pol  agilepower.Policy
	}
	cells := make([]cell, 0, len(rates)*len(policies))
	for _, r := range rates {
		for _, p := range policies {
			cells = append(cells, cell{r, p})
		}
	}
	sc0 := dayScenario(opts)
	fmt.Fprintf(w, "Robustness: %d hosts, %d VMs, horizon %.0fh, fault rates %v\n",
		sc0.Hosts, len(sc0.VMs), hours(sc0.Horizon), rates)

	// Every cell shares sc0's fleet and world parameters, so the world
	// is built once and forked per cell (cold fallback on error).
	var proto *agilepower.Prototype
	if !sc0.ColdWorld {
		if p, err := sc0.Prototype(); err == nil {
			proto = p
		}
	}
	rows, err := parallel.Map(context.Background(), len(cells), opts.workers(),
		func(_ context.Context, i int) ([]any, error) {
			c := cells[i]
			sc := sc0
			sc.Name = fmt.Sprintf("robust-%s-%03.0f", c.pol.Name, c.rate*1000)
			sc.Manager.Policy = c.pol
			if c.rate > 0 {
				fc := agilepower.FaultPreset(c.rate)
				sc.Faults = &fc
			}
			res, err := runCell(proto, sc)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", sc.Name, err)
			}
			opts.note(res)
			fc := res.FaultCounters
			return []any{
				fmt.Sprintf("%.0f%%", c.rate*100),
				res.Policy,
				res.EnergyKWh(),
				res.ViolationFraction,
				res.UnmetCoreHours,
				res.SuspendFailures,
				res.WakeFailures,
				res.Crashes,
				fc[core.CtrTransitionRetries],
				fc[core.CtrQuarantines],
				fc[core.CtrMigrationsAborted],
				fc[core.CtrMigrationReplans],
				res.StrandedVMHours,
			}, nil
		})
	if err != nil {
		return err
	}
	tbl := report.NewTable("robustness under injected faults",
		"fault", "policy", "energy_kwh", "sla_viol", "unmet_core_h",
		"susp_fail", "wake_fail", "crashes", "retries", "quarantine",
		"mig_abort", "replans", "stranded_vmh")
	for i, row := range rows {
		if i > 0 && i%len(policies) == 0 {
			tbl.AddSeparator()
		}
		tbl.AddRow(row...)
	}
	return tbl.Write(w)
}
