package experiments

import (
	"bytes"
	"fmt"
	"os"
	"testing"
)

// TestRunAllByteIdenticalAcrossShards is the sharded-evaluation
// determinism gate: the full quick-mode suite must render exactly the
// golden bytes at every shard count × worker count combination. The
// shard count changes which goroutine computes each host's partials;
// it must never change a single float in the serial host-ID-order
// reduction, and therefore never a report byte.
func TestRunAllByteIdenticalAcrossShards(t *testing.T) {
	if testing.Short() {
		t.Skip("several quick-mode full sweeps; skipped with -short")
	}
	want, err := os.ReadFile("testdata/golden_quick.txt")
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		for _, workers := range []int{1, 4} {
			var got bytes.Buffer
			if err := RunAll(&got, Options{Quick: true, Workers: workers, Shards: shards, EvalWorkers: 2}); err != nil {
				t.Fatal(err)
			}
			diffAt(t, fmt.Sprintf("shards=%d/workers=%d", shards, workers), got.Bytes(), want)
		}
	}
}

// TestShardedFaultedExperimentsByteIdentical exercises the sharded
// evaluate under the two adversarial experiments — robust (injected
// faults: crashes strand VMs mid-tick) and ctrl (imperfect control
// plane: stale views, retried commands) — in both their dormant and
// active grid cells, and requires the sharded bytes to match the
// unsharded ones. Run under `make race`, this doubles as the race
// check for concurrent per-host evaluation during fault recovery and
// lossy command handling.
func TestShardedFaultedExperimentsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-mode experiment replays; skipped with -short")
	}
	for _, id := range []string{"robust", "ctrl"} {
		var base bytes.Buffer
		if err := Run(id, &base, Options{Quick: true}); err != nil {
			t.Fatalf("%s serial: %v", id, err)
		}
		var sharded bytes.Buffer
		if err := Run(id, &sharded, Options{Quick: true, Shards: 4, EvalWorkers: 2}); err != nil {
			t.Fatalf("%s sharded: %v", id, err)
		}
		diffAt(t, id+" sharded-vs-serial", sharded.Bytes(), base.Bytes())
	}
}
