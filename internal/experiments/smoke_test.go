package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The smoke tests run every experiment in Quick mode and check the
// qualitative shapes the paper reports, not absolute numbers.

func runExp(t *testing.T, id string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Run(id, &buf, Options{Quick: true}); err != nil {
		t.Fatalf("experiment %s: %v", id, err)
	}
	return buf.String()
}

func TestIDsOrdered(t *testing.T) {
	ids := IDs()
	want := []string{"t1", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "f9", "f10", "t2", "prov", "predict", "dvfs", "robust", "ctrl", "scale", "hyper", "ablate"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nope", &buf, Options{}); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestT1ContainsStates(t *testing.T) {
	out := runExp(t, "t1")
	for _, want := range []string{"S0 peak", "S0 idle", "C6", "S3", "S5", "breakeven"} {
		if !strings.Contains(out, want) {
			t.Fatalf("T1 missing %q:\n%s", want, out)
		}
	}
}

func TestF2ShowsCycle(t *testing.T) {
	out := runExp(t, "f2")
	if !strings.Contains(out, "suspend/resume") || !strings.Contains(out, "total energy") {
		t.Fatalf("F2 output:\n%s", out)
	}
	// The parked segment should show low power (bars collapse to ~12W
	// rows somewhere).
	if !strings.Contains(out, "12") {
		t.Fatalf("F2 never shows parked power:\n%s", out)
	}
}

func TestF3ShapeS3BeatsS5(t *testing.T) {
	out := runExp(t, "f3")
	if !strings.Contains(out, "break-even: S3") {
		t.Fatalf("F3 missing break-even line:\n%s", out)
	}
	// At a 1-minute gap S3 must save and S5 must not.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "1m0s") {
			fields := strings.Fields(line)
			if len(fields) < 3 {
				t.Fatalf("bad F3 row: %q", line)
			}
			if fields[1] == "0" {
				t.Fatalf("S3 saves nothing at 1m gap: %q", line)
			}
			if fields[2] != "0" {
				t.Fatalf("S5 should save nothing at 1m gap: %q", line)
			}
			return
		}
	}
	t.Fatalf("no 1m row in F3:\n%s", out)
}

func TestF4Runs(t *testing.T) {
	out := runExp(t, "f4")
	if !strings.Contains(out, "energy proportionality") || !strings.Contains(out, "90%") {
		t.Fatalf("F4 output:\n%s", out)
	}
}

func TestF5Runs(t *testing.T) {
	out := runExp(t, "f5")
	if !strings.Contains(out, "day-long run") || !strings.Contains(out, "savings_vs_static") {
		t.Fatalf("F5 output:\n%s", out)
	}
}

func TestF6Runs(t *testing.T) {
	out := runExp(t, "f6")
	if !strings.Contains(out, "satisfaction") {
		t.Fatalf("F6 output:\n%s", out)
	}
}

func TestF7Runs(t *testing.T) {
	out := runExp(t, "f7")
	if !strings.Contains(out, "scale-out") {
		t.Fatalf("F7 output:\n%s", out)
	}
}

func TestF8Runs(t *testing.T) {
	out := runExp(t, "f8")
	if !strings.Contains(out, "actions per hour") {
		t.Fatalf("F8 output:\n%s", out)
	}
}

func TestF9Runs(t *testing.T) {
	out := runExp(t, "f9")
	if !strings.Contains(out, "control period") {
		t.Fatalf("F9 output:\n%s", out)
	}
}

func TestF10Runs(t *testing.T) {
	out := runExp(t, "f10")
	if !strings.Contains(out, "trade-off") {
		t.Fatalf("F10 output:\n%s", out)
	}
}

func TestT2Runs(t *testing.T) {
	out := runExp(t, "t2")
	if !strings.Contains(out, "end-to-end summary") || !strings.Contains(out, "oracle") {
		t.Fatalf("T2 output:\n%s", out)
	}
}

func TestProvRuns(t *testing.T) {
	out := runExp(t, "prov")
	if !strings.Contains(out, "dynamic provisioning") || !strings.Contains(out, "prov_p95") {
		t.Fatalf("prov output:\n%s", out)
	}
}

func TestPredictRuns(t *testing.T) {
	out := runExp(t, "predict")
	if !strings.Contains(out, "predictive wake") {
		t.Fatalf("predict output:\n%s", out)
	}
}

func TestDVFSRuns(t *testing.T) {
	out := runExp(t, "dvfs")
	if !strings.Contains(out, "frequency scaling") || !strings.Contains(out, "dpm-s3+dvfs") {
		t.Fatalf("dvfs output:\n%s", out)
	}
}

func TestRobustnessRuns(t *testing.T) {
	out := runExp(t, "robust")
	if !strings.Contains(out, "robustness under injected faults") ||
		!strings.Contains(out, "susp_fail") {
		t.Fatalf("robustness output:\n%s", out)
	}
	// The 0% control row reports a clean ledger; the faulted rows do
	// not (quick mode runs rates 0 and 10%).
	if !strings.Contains(out, "0%") || !strings.Contains(out, "10%") {
		t.Fatalf("fault-rate rows missing:\n%s", out)
	}
}

func TestScaleRuns(t *testing.T) {
	out := runExp(t, "scale")
	if !strings.Contains(out, "datacenter size") || !strings.Contains(out, "sharded evaluation") {
		t.Fatalf("scale output:\n%s", out)
	}
	// The full policy comparison must be present, with the consolidating
	// policies actually saving energy.
	for _, want := range []string{"static", "nopm-drm", "dpm-s5", "dpm-s3", "evals", "power_p95_w"} {
		if !strings.Contains(out, want) {
			t.Fatalf("scale missing %q:\n%s", want, out)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	out := runExp(t, "ablate")
	if !strings.Contains(out, "design choices") || !strings.Contains(out, "exit-latency") {
		t.Fatalf("ablations output:\n%s", out)
	}
}
