// Command regen regenerates testdata/golden_quick.txt (run from the
// repo root). Kept next to the golden test so adding an experiment is
// a one-command refresh.
package main

import (
	"os"

	"agilepower/internal/experiments"
)

func main() {
	f, err := os.Create("internal/experiments/testdata/golden_quick.txt")
	if err != nil {
		panic(err)
	}
	defer f.Close()
	if err := experiments.RunAll(f, experiments.Options{Quick: true, Workers: 1, Progress: os.Stderr}); err != nil {
		panic(err)
	}
}
