package experiments

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"
)

// diffAt reports the first byte where two outputs diverge, with
// context, so a determinism regression is immediately localizable.
func diffAt(t *testing.T, label string, got, want []byte) {
	t.Helper()
	if bytes.Equal(got, want) {
		return
	}
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	i := 0
	for i < n && got[i] == want[i] {
		i++
	}
	lo := i - 80
	if lo < 0 {
		lo = 0
	}
	hiG, hiW := i+80, i+80
	if hiG > len(got) {
		hiG = len(got)
	}
	if hiW > len(want) {
		hiW = len(want)
	}
	t.Fatalf("%s: output differs at byte %d (got %d bytes, want %d bytes)\ngot:  %q\nwant: %q",
		label, i, len(got), len(want), got[lo:hiG], want[lo:hiW])
}

// TestRunAllMatchesPreOptimizationGolden pins the quick-mode suite
// output to the bytes recorded before the allocation-free hot-path
// rework (testdata/golden_quick.txt). The determinism gate doubles as
// the correctness harness for that refactor: scratch buffers, cached
// views and pooled events must not move a single float. Run at one
// worker and several, since worker count must not leak into the bytes
// either.
func TestRunAllMatchesPreOptimizationGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("two quick-mode full sweeps; skipped with -short")
	}
	want, err := os.ReadFile("testdata/golden_quick.txt")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		var got bytes.Buffer
		if err := RunAll(&got, Options{Quick: true, Workers: workers}); err != nil {
			t.Fatal(err)
		}
		diffAt(t, fmt.Sprintf("workers=%d", workers), got.Bytes(), want)
	}
}

// fullResultSection extracts one experiment's report body from the
// archived full-scale results file.
func fullResultSection(t *testing.T, id string) []byte {
	t.Helper()
	data, err := os.ReadFile("../../results_full.txt")
	if err != nil {
		t.Skipf("archived full-scale results not present: %v", err)
	}
	marker := fmt.Sprintf("\n=== experiment %s ===\n", id)
	start := strings.Index(string(data), marker)
	if start < 0 {
		t.Fatalf("experiment %s not found in results_full.txt", id)
	}
	body := data[start+len(marker):]
	// The "\n" before the next header is that header's leading
	// separator (RunAll prints "\n=== experiment ... ==="), not part of
	// this section's report.
	if end := bytes.Index(body, []byte("\n=== experiment ")); end >= 0 {
		body = body[:end]
	}
	return body
}

// TestFullScaleSectionsMatchArchivedResults replays a representative
// subset of experiments at full scale (no Quick shrinkage) and
// compares each report byte-for-byte against the archived
// pre-optimization results_full.txt, at one worker and at several.
// The subset covers the characterization table (t1), the transition
// sweeps (f2, f3) and the energy-proportionality sweep (f4) — the
// fastest full-scale runs that still exercise the evaluate loop, the
// manager control path and power-state machinery end to end.
func TestFullScaleSectionsMatchArchivedResults(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment replays; skipped with -short")
	}
	for _, id := range []string{"t1", "f2", "f3", "f4"} {
		want := fullResultSection(t, id)
		for _, workers := range []int{1, 3} {
			var got bytes.Buffer
			if err := Run(id, &got, Options{Workers: workers}); err != nil {
				t.Fatalf("run %s: %v", id, err)
			}
			diffAt(t, fmt.Sprintf("%s workers=%d", id, workers), got.Bytes(), want)
		}
	}
}
