package experiments

import (
	"bytes"
	"testing"
)

// RunAll fans out twice — across experiments, and inside each
// experiment across policies/loads/seeds — yet the report is stitched
// from per-index buffers, so the bytes on the wire must not depend on
// the worker count. This is the acceptance test for the parallel
// runner: a fully sequential pass (Workers=1 disables concurrency at
// every level) against a 4-worker pass, compared byte for byte.
func TestRunAllByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("two quick-mode full sweeps; skipped with -short")
	}
	var seq, par bytes.Buffer
	if err := RunAll(&seq, Options{Quick: true, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := RunAll(&par, Options{Quick: true, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		a, b := seq.Bytes(), par.Bytes()
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		i := 0
		for i < n && a[i] == b[i] {
			i++
		}
		lo := i - 80
		if lo < 0 {
			lo = 0
		}
		hiA, hiB := i+80, i+80
		if hiA > len(a) {
			hiA = len(a)
		}
		if hiB > len(b) {
			hiB = len(b)
		}
		t.Fatalf("output differs at byte %d (seq %d bytes, par %d bytes)\nseq: %q\npar: %q",
			i, len(a), len(b), a[lo:hiA], b[lo:hiB])
	}
}

// Progress lines go to a separate writer and must not leak into the
// report, and the summary line must report the pinned worker count.
func TestRunAllProgressSeparateFromReport(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-mode full sweep; skipped with -short")
	}
	var report, progress bytes.Buffer
	if err := RunAll(&report, Options{Quick: true, Workers: 2, Progress: &progress}); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(report.Bytes(), []byte("done in")) {
		t.Fatal("progress lines leaked into the report")
	}
	if !bytes.Contains(progress.Bytes(), []byte("experiment t2")) {
		t.Fatalf("progress missing per-experiment lines:\n%s", progress.String())
	}
	if !bytes.Contains(progress.Bytes(), []byte("(workers=2)")) {
		t.Fatalf("progress missing summary line:\n%s", progress.String())
	}
}
