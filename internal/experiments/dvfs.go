package experiments

import (
	"context"
	"io"

	"agilepower"
	"agilepower/internal/parallel"
	"agilepower/internal/report"
)

// DVFS — processor-level scaling versus server-level sleep states
// [reconstructed extension]. The paper's intro contrasts its approach
// with DVFS: frequency scaling only touches dynamic power, so a fleet
// of clocked-down but powered-on servers still burns its full static
// draw. This experiment runs the day workload under (a) DVFS alone,
// (b) consolidation + S3, and (c) both combined, against static
// provisioning. Expected shape: DVFS alone saves a single-digit
// percentage; S3-based DPM saves several times more; the combination
// adds a couple of points on top of DPM by trimming the awake hosts.
func DVFS(w io.Writer, opts Options) error {
	sc := dayScenario(opts)

	combined := agilepower.DPMS3
	combined.Name = "dpm-s3+dvfs"
	combined.DVFS = true

	policies := []agilepower.Policy{agilepower.Static, agilepower.DVFSOnly, agilepower.DPMS3, combined}
	results, err := parallel.Map(context.Background(), len(policies), opts.workers(),
		func(_ context.Context, i int) (*agilepower.Result, error) {
			s := sc
			s.Manager.Policy = policies[i]
			return s.Run()
		})
	if err != nil {
		return err
	}
	opts.note(results...)
	staticRes := results[0]

	tbl := report.NewTable(
		"DVFS: frequency scaling vs server sleep states (day workload)",
		"policy", "energy_kwh", "savings_vs_static", "violation_frac", "freq_changes")
	tbl.AddRow(staticRes.Policy, staticRes.EnergyKWh(), 0.0,
		staticRes.ViolationFraction, staticRes.Manager.FreqChanges)
	for _, r := range results[1:] {
		tbl.AddRow(r.Policy, r.EnergyKWh(), r.SavingsVs(staticRes),
			r.ViolationFraction, r.Manager.FreqChanges)
	}
	return tbl.Write(w)
}
