package experiments

import (
	"fmt"
	"io"
	"time"

	"agilepower/internal/power"
	"agilepower/internal/report"
	"agilepower/internal/sim"
	"agilepower/internal/telemetry"
)

// T1 — power-state characterization table [reconstructed]. The paper
// measures its server prototypes' states with wall-power meters; we
// drive the calibrated state machine through a full park/unpark cycle
// per state and report what a meter would see, alongside the analytic
// break-even gap.
func T1(w io.Writer, opts Options) error {
	profile := opts.profile()
	tbl := report.NewTable(
		"T1: server power-state characterization (prototype substitute, profile "+profile.Name+")",
		"state", "power_w", "entry_s", "exit_s", "cycle_energy_j", "breakeven_s")

	tbl.AddRow("S0 peak", float64(profile.PeakPower), "-", "-", "-", "-")
	tbl.AddRow("S0 idle", float64(profile.IdlePower), "-", "-", "-", "-")
	tbl.AddRow("C6 deep idle", float64(profile.DeepIdlePower), "~0", "~0", "0", "0")

	for _, st := range []power.State{power.S3, power.S5} {
		spec, ok := profile.SleepSpec(st)
		if !ok {
			continue
		}
		// "Measure" the cycle on the state machine itself, verifying
		// that the machine agrees with the spec.
		measured, err := measureCycle(profile, st)
		if err != nil {
			return err
		}
		be, _ := profile.BreakEven(st)
		tbl.AddRow(st.String(),
			float64(spec.Power),
			spec.EntryLatency.Seconds(),
			spec.ExitLatency.Seconds(),
			float64(measured),
			be.Seconds())
	}
	return tbl.Write(w)
}

// measureCycle runs one suspend/park(0s)/resume cycle and returns the
// transition energy a power meter would integrate.
func measureCycle(profile *power.Profile, st power.State) (power.Joules, error) {
	eng := sim.NewEngine(1)
	m, err := power.NewMachine(eng, profile.Clone())
	if err != nil {
		return 0, err
	}
	if err := m.Sleep(st); err != nil {
		return 0, err
	}
	eng.Run() // entry completes
	if err := m.Wake(); err != nil {
		return 0, err
	}
	eng.Run()
	st2 := m.Stats()
	return st2.TransitionE, nil
}

// F2 — power trace of a suspend/resume cycle [reconstructed]. One
// host: busy, then idle, then parked in S3, then woken back to busy.
// The figure is the power-versus-time trace the paper shows from its
// prototype measurements.
func F2(w io.Writer, opts Options) error {
	eng := sim.NewEngine(opts.seed())
	profile := opts.profile()
	m, err := power.NewMachine(eng, profile)
	if err != nil {
		return err
	}
	// ~73 meter samples over the 360s script plus a handful of
	// event-driven ones.
	series := telemetry.NewSeriesCap("host_power_w", 96)
	sample := func() { series.Append(eng.Now(), float64(m.Power())) }

	// Script: 0-60s busy at 70%; 60s idle; at 120s suspend; park until
	// 300s; wake; resume to busy at 70%.
	m.SetUtilization(0.7)
	sample()
	eng.ScheduleFunc(60*time.Second, func() { m.SetUtilization(0); sample() })
	eng.ScheduleFunc(120*time.Second, func() {
		if err := m.Sleep(power.S3); err == nil {
			sample()
		}
	})
	eng.ScheduleFunc(300*time.Second, func() {
		if err := m.Wake(); err == nil {
			sample()
		}
	})
	m.OnSettled(func(st power.State) {
		sample()
		if st == power.S0 {
			m.SetUtilization(0.7)
			sample()
		}
	})
	// 1 Hz sampling like a power meter.
	horizon := 360 * time.Second
	for t := time.Duration(0); t <= horizon; t += 5 * time.Second {
		eng.ScheduleFunc(t, sample)
	}
	eng.RunUntil(horizon)

	fmt.Fprintf(w, "F2: power trace of an S3 suspend/resume cycle (busy→idle→S3→wake→busy)\n")
	fmt.Fprintf(w, "total energy over %v: %.0f J\n", horizon, float64(m.Energy()))
	chart := report.Chart{Title: "host power", Width: 50, YLabel: "W"}
	down := series.Downsample(15*time.Second, horizon)
	return chart.Write(w, down)
}

// F3 — break-even analysis [reconstructed]: energy saved by parking,
// as a function of idle-gap length, S3 versus S5. The paper's headline
// motivation: the S3 crossover sits at tens of seconds, S5's at many
// minutes, which is why management with traditional states was too
// risky to adopt.
func F3(w io.Writer, opts Options) error {
	profile := opts.profile()
	gaps := []time.Duration{
		10 * time.Second, 23 * time.Second, 30 * time.Second, time.Minute,
		2 * time.Minute, 4 * time.Minute, 8 * time.Minute, 15 * time.Minute,
		30 * time.Minute, time.Hour,
	}
	tbl := report.NewTable(
		"F3: energy savings vs idle-gap length (fraction of idle energy saved by parking)",
		"gap", "s3_savings", "s5_savings", "s3_feasible", "s5_feasible")
	for _, g := range gaps {
		_, s3ok := profile.GapEnergySleep(power.S3, g)
		_, s5ok := profile.GapEnergySleep(power.S5, g)
		tbl.AddRow(g.String(),
			profile.GapSavings(power.S3, g),
			profile.GapSavings(power.S5, g),
			fmt.Sprintf("%v", s3ok),
			fmt.Sprintf("%v", s5ok))
	}
	if err := tbl.Write(w); err != nil {
		return err
	}
	beS3, _ := profile.BreakEven(power.S3)
	beS5, _ := profile.BreakEven(power.S5)
	_, err := fmt.Fprintf(w, "break-even: S3 at %v, S5 at %v (ratio %.1fx)\n",
		beS3.Round(time.Second), beS5.Round(time.Second), float64(beS5)/float64(beS3))
	return err
}
