package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"agilepower"
)

// TestForkMatrixMatchesGolden replays the robust and ctrl experiments —
// the faulted grids, where every cell now forks from one shared world
// prototype — across the execution matrix: shards {1, 2, 4} × workers
// {1, 4} × delta {off, on} × incremental {on, off}, comparing each
// report byte-for-byte against the golden. The golden bytes were
// recorded by cold per-cell construction, so every passing cell is a
// fork-vs-cold identity proof under that execution mix.
func TestForkMatrixMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("48 quick-mode experiment replays; skipped with -short")
	}
	for _, id := range []string{"robust", "ctrl"} {
		want := goldenQuickSection(t, id)
		for _, shards := range []int{1, 2, 4} {
			for _, workers := range []int{1, 4} {
				for _, delta := range []DeltaMode{DeltaOff, DeltaOn} {
					for _, inc := range []agilepower.IncrementalMode{agilepower.IncrementalOn, agilepower.IncrementalOff} {
						name := fmt.Sprintf("%s/shards=%d/workers=%d/delta=%v/incremental=%s",
							id, shards, workers, delta == DeltaOn, inc)
						t.Run(name, func(t *testing.T) {
							var got bytes.Buffer
							opts := Options{
								Quick: true, Shards: shards, EvalWorkers: workers,
								Workers: workers, Delta: delta, Incremental: inc,
							}
							if err := Run(id, &got, opts); err != nil {
								t.Fatal(err)
							}
							diffAt(t, name, got.Bytes(), want)
						})
					}
				}
			}
		}
	}
}

// TestColdWorldMatchesGolden pins the escape hatch: with ColdWorld set,
// every grid cell rebuilds its fleet from scratch, and the report bytes
// still match the golden — so fork and cold paths are interchangeable
// at any time, which is what makes ColdWorld a usable bisection tool.
func TestColdWorldMatchesGolden(t *testing.T) {
	for _, id := range []string{"robust", "ctrl"} {
		want := goldenQuickSection(t, id)
		for _, cold := range []bool{false, true} {
			name := fmt.Sprintf("%s/cold=%v", id, cold)
			t.Run(name, func(t *testing.T) {
				var got bytes.Buffer
				if err := Run(id, &got, Options{Quick: true, ColdWorld: cold}); err != nil {
					t.Fatal(err)
				}
				diffAt(t, name, got.Bytes(), want)
			})
		}
	}
}
