package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"agilepower"
	"agilepower/internal/parallel"
	"agilepower/internal/report"
	"agilepower/internal/sim"
	"agilepower/internal/workload"
)

// Predict — predictive wake ablation [reconstructed extension]. A
// natural question about the paper: couldn't traditional S5-based
// management be rescued by *predicting* demand and booting servers
// ahead of recurring ramps? This experiment runs several days of a
// steep market-open workload (demand jumps within ~2 minutes of 9:00
// every day) plus non-repeating flash crowds, with the manager's
// time-of-day predictor on and off, for both states. Expected shape:
// prediction recovers the ramp-related violations (ramps repeat daily)
// but none of the flash-crowd violations (they don't), and S3 needs
// prediction far less than S5 — latency, not forecasting, is the
// binding constraint.
func Predict(w io.Writer, opts Options) error {
	hosts, diurnalVMs, spikyVMs := 16, 64, 16
	days := 3
	if opts.Quick {
		hosts, diurnalVMs, spikyVMs = 8, 32, 8
		days = 2
	}
	horizon := time.Duration(days) * 24 * time.Hour

	fleet := workdayFleet(diurnalVMs, days, opts.seed())
	fleet = append(fleet, spikyMultiDay(spikyVMs, days, opts.seed()+1)...)

	base := opts.tune(agilepower.Scenario{
		Name:    "predictive-wake",
		Profile: opts.Profile,
		Hosts:   hosts,
		VMs:     fleet,
		Horizon: horizon,
		Seed:    opts.seed(),
	})
	// The grid is (policy × predictive) plus the static reference at
	// index 0; all five simulations run through one pool.
	type combo struct {
		policy     agilepower.Policy
		predictive bool
	}
	var combos []combo
	for _, p := range []agilepower.Policy{agilepower.DPMS5, agilepower.DPMS3} {
		for _, predictive := range []bool{false, true} {
			combos = append(combos, combo{p, predictive})
		}
	}
	results, err := parallel.Map(context.Background(), 1+len(combos), opts.workers(),
		func(_ context.Context, i int) (*agilepower.Result, error) {
			sc := base
			if i == 0 {
				sc.Manager.Policy = agilepower.Static
			} else {
				sc.Manager.Policy = combos[i-1].policy
				sc.Manager.PredictiveWake = combos[i-1].predictive
			}
			return sc.Run()
		})
	if err != nil {
		return err
	}
	opts.note(results...)
	staticRes := results[0]

	tbl := report.NewTable(
		fmt.Sprintf("Predict: predictive wake over %d days (diurnal ramps repeat, flash crowds do not)", days),
		"policy", "predictive", "savings_vs_static", "violation_frac", "unmet_core_h", "wakes")
	for i, c := range combos {
		r := results[i+1]
		tbl.AddRow(r.Policy, fmt.Sprintf("%v", c.predictive),
			r.SavingsVs(staticRes), r.ViolationFraction, r.UnmetCoreHours, r.Wakes)
	}
	if err := tbl.Write(w); err != nil {
		return err
	}

	// Second shape: a full week with quiet weekends. The predictor is
	// purely daily, so on Saturday and Sunday mornings it pre-arms
	// capacity for a ramp that never comes — wasted energy that a
	// reactive low-latency manager never spends.
	weekDays := 7
	if opts.Quick {
		weekDays = 7 // a week is the whole point; quick mode shrinks the fleet instead
	}
	weekFleet := workdayWeekFleet(diurnalVMs, weekDays, opts.seed())
	weekBase := opts.tune(agilepower.Scenario{
		Name:    "predictive-week",
		Profile: opts.Profile,
		Hosts:   hosts,
		VMs:     weekFleet,
		Horizon: time.Duration(weekDays) * 24 * time.Hour,
		Seed:    opts.seed(),
	})
	// Index 0 static reference, indices 1-2 DPM-S3 without/with the
	// predictor.
	weekResults, err := parallel.Map(context.Background(), 3, opts.workers(),
		func(_ context.Context, i int) (*agilepower.Result, error) {
			sc := weekBase
			switch i {
			case 0:
				sc.Manager.Policy = agilepower.Static
			default:
				sc.Manager.Policy = agilepower.DPMS3
				sc.Manager.PredictiveWake = i == 2
			}
			return sc.Run()
		})
	if err != nil {
		return err
	}
	opts.note(weekResults...)
	weekStatic := weekResults[0]
	tblW := report.NewTable(
		"Predict: a week with quiet weekends (daily predictor pre-arms for ramps that never come)",
		"policy", "predictive", "savings_vs_static", "violation_frac", "weekend_mean_active")
	for i, predictive := range []bool{false, true} {
		r := weekResults[i+1]
		// Saturday 8:00–12:00 of the first weekend (day 6).
		satStart := 5*24*time.Hour + 8*time.Hour
		tblW.AddRow(r.Policy, fmt.Sprintf("%v", predictive),
			r.SavingsVs(weekStatic), r.ViolationFraction,
			r.ActiveHosts.TimeMean(satStart, satStart+4*time.Hour))
	}
	return tblW.Write(w)
}

// workdayWeekFleet builds business-day VMs with quiet weekends over a
// full week.
func workdayWeekFleet(n, days int, seed uint64) []agilepower.VMSpec {
	rng := sim.NewRNG(seed)
	out := make([]agilepower.VMSpec, n)
	for i := range out {
		tr := workload.Workday(rng.Fork(), workload.WorkdaySpec{
			Days:       days,
			LowCores:   0.4,
			HighCores:  3,
			OpenJitter: 2 * time.Minute,
			NoiseFrac:  0.05,
			Weekends:   true,
		})
		out[i] = agilepower.VMSpec{
			Name: fmt.Sprintf("desk-%03d", i), VCPUs: 4, MemoryGB: 8, Trace: tr,
		}
	}
	return out
}

// workdayFleet builds step-ramp business-day VMs: demand jumps from
// 0.4 to 3 cores within ~2 minutes of 9:00 every day. The recurring
// ramp is steep relative to a server boot — exactly where predictive
// wake should matter.
func workdayFleet(n, days int, seed uint64) []agilepower.VMSpec {
	rng := sim.NewRNG(seed)
	out := make([]agilepower.VMSpec, n)
	for i := range out {
		tr := workload.Workday(rng.Fork(), workload.WorkdaySpec{
			Days:       days,
			LowCores:   0.4,
			HighCores:  3,
			OpenJitter: 2 * time.Minute,
			NoiseFrac:  0.05,
		})
		out[i] = agilepower.VMSpec{
			Name: fmt.Sprintf("web-%03d", i), VCPUs: 4, MemoryGB: 8, Trace: tr,
		}
	}
	return out
}

// spikyMultiDay builds flash-crowd VMs whose spike times differ every
// day — the unpredictable component no time-of-day model can learn.
func spikyMultiDay(n, days int, seed uint64) []agilepower.VMSpec {
	rng := sim.NewRNG(seed)
	// One correlated flash crowd per day, at a different time each day.
	starts := make([]time.Duration, days)
	for d := range starts {
		starts[d] = time.Duration(d)*24*time.Hour +
			time.Duration(rng.Range(6, 22)*float64(time.Hour))
	}
	out := make([]agilepower.VMSpec, n)
	for i := range out {
		tr := workload.Spiky(rng.Fork(), workload.SpikeSpec{
			Length:      time.Duration(days) * 24 * time.Hour,
			BaseCores:   0.3,
			SpikeCores:  4,
			SpikeLen:    15 * time.Minute,
			Starts:      starts,
			StartJitter: 2 * time.Minute,
		})
		out[i] = agilepower.VMSpec{
			Name: fmt.Sprintf("api-%03d", i), VCPUs: 4, MemoryGB: 8, Trace: tr,
		}
	}
	return out
}
