package experiments

import (
	"io"
	"time"

	"agilepower"
	"agilepower/internal/report"
)

// Prov — dynamic provisioning under power management [reconstructed
// extension]. The abstract motivates virtualization by its "dramatic
// simplification of the provisioning and dynamic management of IT
// resources"; this experiment checks that power management does not
// take that away: VMs arrive as a Poisson stream onto a consolidated
// cluster, and we measure how long tenants wait for capacity. With S3
// the wait is a control period plus seconds of wake; with S5 a new
// tenant can sit behind a multi-minute boot.
func Prov(w io.Writer, opts Options) error {
	hosts := 16
	baseVMs := 48
	horizon := 24 * time.Hour
	rate := 12.0
	if opts.Quick {
		hosts, baseVMs = 8, 24
		horizon = 8 * time.Hour
		rate = 8
	}
	base := opts.tune(agilepower.Scenario{
		Name:    "provisioning",
		Profile: opts.Profile,
		Hosts:   hosts,
		VMs:     agilepower.DiurnalFleet(baseVMs, opts.seed()),
		Horizon: horizon,
		Seed:    opts.seed(),
		Churn: &agilepower.ChurnSpec{
			ArrivalsPerHour: rate,
			MeanLifetime:    3 * time.Hour,
			DemandCores:     2,
		},
	})
	results, err := base.RunPoliciesWorkers(opts.workers(), agilepower.Policies())
	if err != nil {
		return err
	}
	opts.note(results...)
	tbl := report.NewTable(
		"Prov: dynamic provisioning under power management",
		"policy", "arrived", "placed", "prov_p50", "prov_p95", "prov_max",
		"energy_kwh", "violation_frac")
	for _, r := range results {
		tbl.AddRow(r.Policy,
			r.Churn.Arrived, r.Churn.Placed,
			r.Churn.ProvisionP50.Round(time.Second).String(),
			r.Churn.ProvisionP95.Round(time.Second).String(),
			r.Churn.ProvisionMax.Round(time.Second).String(),
			r.EnergyKWh(), r.ViolationFraction)
	}
	return tbl.Write(w)
}
