package experiments

import (
	"fmt"
	"io"
	"time"

	"agilepower"
	"agilepower/internal/report"
)

// scaleShards is the shard count the scale experiment defaults to when
// the Options leave sharding unset, so datacenter-scale runs (and the
// golden/CI suites that replay this experiment in quick mode) always
// exercise the sharded evaluation path. Results are byte-identical to
// the serial loop — the shard count is a wall-clock knob only.
const scaleShards = 8

// Scale — datacenter-scale run [extension]: the paper evaluates its
// manager "with scale-out simulations"; this experiment reconstructs
// one at datacenter size — 2,048 heterogeneous hosts running 16,384
// mixed enterprise VMs — and runs the full policy comparison over it.
// It is the consumer the sharded evaluation tick exists for: per-host
// scheduling work fans out across Scenario.Shards ID-contiguous host
// ranges while every report byte stays identical to the serial loop.
// Quick mode shrinks to a 64-host / 512-VM fleet.
//
// Energy/SLA land in the report (deterministic); simulator throughput
// (simulated-hours per wall-second, ticks per wall-second) is wall
// clock and therefore goes to opts.Progress, keeping the report
// byte-identical across machines and worker counts.
func Scale(w io.Writer, opts Options) error {
	classes := []agilepower.HostClass{
		{Count: 1536, Cores: 16, MemoryGB: 256},
		{Count: 512, Cores: 32, MemoryGB: 512},
	}
	vmsN := 16384
	horizon := 4 * time.Hour
	if opts.Quick {
		classes = []agilepower.HostClass{
			{Count: 48, Cores: 16, MemoryGB: 256},
			{Count: 16, Cores: 32, MemoryGB: 512},
		}
		vmsN = 512
		horizon = 2 * time.Hour
	}
	sc := opts.tune(agilepower.Scenario{
		Name:        "scale",
		Profile:     opts.Profile,
		HostClasses: classes,
		VMs:         agilepower.MixedFleet(vmsN, opts.seed()),
		Horizon:     horizon,
		Seed:        opts.seed(),
		CtrlPlane:   opts.ctrlPlane(),
	})
	if sc.Shards == 0 {
		sc.Shards = scaleShards
	}
	hostsTotal := 0
	for _, hc := range classes {
		hostsTotal += hc.Count
	}
	// The shard count stays out of the report header: it is a wall-clock
	// knob, and the report must stay byte-identical for every value (the
	// Progress line carries it instead).
	fmt.Fprintf(w, "Scale: %d hosts (%d×16c + %d×32c), %d VMs, horizon %.0fh, sharded evaluation\n",
		hostsTotal, classes[0].Count, classes[1].Count, vmsN, hours(horizon))

	start := time.Now()
	results, err := sc.RunPoliciesWorkers(opts.workers(), agilepower.Policies())
	if err != nil {
		return err
	}
	opts.note(results...)
	wall := time.Since(start)

	static := results[0]
	tbl := report.NewTable(
		"scale: full policy comparison at datacenter size",
		"policy", "energy_kwh", "savings_vs_static", "satisfaction", "violation_frac",
		"migrations", "sleeps", "wakes", "evals", "power_p95_w")
	totalTicks := 0
	for _, r := range results {
		// Power.Len counts every evaluation the run performed (periodic
		// ticks plus management actions) — the per-policy work metric the
		// throughput numbers below are denominated in. Summarize uses the
		// cached sort, so repeated percentile columns stay cheap.
		ticks := r.Power.Len()
		totalTicks += ticks
		tbl.AddRow(r.Policy, r.EnergyKWh(), r.SavingsVs(static),
			r.Satisfaction, r.ViolationFraction,
			r.Migrations.Completed, r.Sleeps, r.Wakes,
			ticks, r.Power.Summarize().P95)
	}
	if err := tbl.Write(w); err != nil {
		return err
	}
	if opts.Progress != nil {
		simHours := hours(horizon) * float64(len(results))
		fmt.Fprintf(opts.Progress,
			"experiment scale    throughput: %.1f simulated-hours/wall-second, %.0f ticks/sec (%.2fs wall, shards=%d, workers=%d)\n",
			simHours/wall.Seconds(), float64(totalTicks)/wall.Seconds(),
			wall.Seconds(), sc.Shards, opts.workers())
	}
	return nil
}
