package experiments

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
)

// goldenQuickSection extracts one experiment's report body (including
// its "=== experiment id ===" header) from testdata/golden_quick.txt.
func goldenQuickSection(t *testing.T, id string) []byte {
	t.Helper()
	data, err := os.ReadFile("testdata/golden_quick.txt")
	if err != nil {
		t.Fatal(err)
	}
	marker := fmt.Sprintf("\n=== experiment %s ===\n", id)
	start := strings.Index(string(data), marker)
	if start < 0 {
		t.Fatalf("experiment %s not found in golden_quick.txt", id)
	}
	body := data[start+len(marker):]
	if end := bytes.Index(body, []byte("\n=== experiment ")); end >= 0 {
		body = body[:end]
	}
	return body
}

// TestDeltaMatrixMatchesGolden replays the robust and ctrl experiments
// — the two that exercise fault injection, crash/repair churn and the
// imperfect control plane on top of the evaluation tick — across the
// full execution matrix: shards {1, 2, 4} × workers {1, 4} × delta
// {on, off}, comparing each report byte-for-byte against the golden.
// Evaluation mode, shard count and worker count are wall-clock knobs;
// none of them may move a single byte. Under -race this doubles as
// the concurrency workout for the delta queues and due-heaps.
func TestDeltaMatrixMatchesGolden(t *testing.T) {
	for _, id := range []string{"robust", "ctrl"} {
		want := goldenQuickSection(t, id)
		for _, shards := range []int{1, 2, 4} {
			for _, workers := range []int{1, 4} {
				for _, delta := range []DeltaMode{DeltaOn, DeltaOff} {
					name := fmt.Sprintf("%s/shards=%d/workers=%d/delta=%d", id, shards, workers, delta)
					t.Run(name, func(t *testing.T) {
						var got bytes.Buffer
						opts := Options{
							Quick: true, Shards: shards, EvalWorkers: workers, Delta: delta,
						}
						if err := Run(id, &got, opts); err != nil {
							t.Fatal(err)
						}
						diffAt(t, name, got.Bytes(), want)
					})
				}
			}
		}
	}
}

// TestHyperscaleFullScanMatchesGolden forces the hyperscale experiment
// — whose default is delta evaluation — through the full per-host
// scan on a sharded, multi-worker configuration and compares against
// the golden bytes (which were recorded with delta on). This is the
// headline identity: the delta tick, the analytic integration of
// quiescent hosts, and the bounded telemetry produce exactly the
// bytes a full scan does.
func TestHyperscaleFullScanMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("a quick-mode hyperscale replay; skipped with -short")
	}
	want := goldenQuickSection(t, "hyper")
	var got bytes.Buffer
	if err := Run("hyper", &got, Options{Quick: true, Shards: 2, EvalWorkers: 4, Delta: DeltaOff}); err != nil {
		t.Fatal(err)
	}
	diffAt(t, "hyper full-scan", got.Bytes(), want)
}

// hyperscaleQuickHeapBudget bounds the quick hyperscale run's heap
// growth. The quick fleet is ~400× smaller than the full one, so this
// asserts the memory-bounding machinery (pooled traces, telemetry
// caps, chunked SLA arena) at proportionally tiny scale; the full-run
// budget lives in the bench-hyperscale Makefile target.
const hyperscaleQuickHeapBudget = 256 << 20

// TestHyperscaleQuickHeapBudget runs the hyperscale experiment in
// quick mode and asserts the live heap stays under the budget — the
// guard that trace pooling or series caps cannot silently regress
// into per-VM copies.
func TestHyperscaleQuickHeapBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("a quick-mode hyperscale replay; skipped with -short")
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	var buf bytes.Buffer
	if err := Run("hyper", &buf, Options{Quick: true, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	if buf.Len() == 0 {
		t.Fatal("empty report")
	}
	// HeapAlloc after a GC approximates live bytes; the delta versus
	// the pre-run baseline is what the run retains plus fragmentation
	// slack, far under the budget unless memory bounding broke.
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > hyperscaleQuickHeapBudget {
		t.Fatalf("hyperscale quick grew live heap by %d MiB, budget %d MiB",
			grew>>20, int64(hyperscaleQuickHeapBudget)>>20)
	}
}
