// Package parallel is the deterministic worker-pool runner behind
// every experiment fan-out in the repository. The evaluation grid —
// policies × load points × seeds — is embarrassingly parallel: each
// Scenario.Run owns its engine, cluster, and RNG and shares nothing
// mutable with its siblings, so the only job of this package is to
// bound concurrency and keep results in input order.
//
// The contract that makes parallel runs indistinguishable from
// sequential ones:
//
//   - Results are returned in input order, never completion order.
//   - fn(ctx, i) must be a pure function of i (plus immutable captured
//     state); workers share no mutable structures.
//   - On error the pool stops handing out new indices, waits for
//     in-flight calls, and returns the error with the lowest index —
//     the same error a sequential loop that ran everything would
//     surface first.
//
// Callers render per-index output into per-index slots (table rows,
// buffers) and stitch them in order afterwards, which is how the
// experiment suite keeps its reports byte-identical for every worker
// count.
package parallel

import (
	"context"
	"runtime"
	"sync"
)

// DefaultWorkers is the worker count used when a caller passes
// workers <= 0: one worker per schedulable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// clampWorkers resolves the effective pool size for n tasks.
func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Map runs fn(ctx, i) for every i in [0, n) on at most workers
// goroutines (workers <= 0 means DefaultWorkers) and returns the
// results indexed by input position. The first error — "first" by
// input index, so the choice is deterministic — cancels the derived
// context, stops the handout of new indices, and is returned after all
// in-flight calls finish; the partial results are discarded. A nil ctx
// is treated as context.Background.
//
// workers == 1 degenerates to a plain sequential loop on the calling
// goroutine, with an early return on the first error exactly like the
// hand-written loops this package replaced.
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]T, n)
	if workers = clampWorkers(workers, n); workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := fn(ctx, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		next     int
		firstErr error
		errIdx   = -1
	)
	// claim hands out the next unclaimed index, or -1 when the work is
	// exhausted or an error/cancellation already ended the run.
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= n || ctx.Err() != nil {
			return -1
		}
		i := next
		next++
		return i
	}
	fail := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil || i < errIdx {
			firstErr, errIdx = err, i
		}
		cancel()
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i < 0 {
					return
				}
				v, err := fn(ctx, i)
				if err != nil {
					fail(i, err)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Run is Map without results: it executes fn(ctx, i) for every i in
// [0, n) under the same ordering and cancellation rules.
func Run(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	_, err := Map(ctx, n, workers, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}
