package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderPreserved(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		out, err := Map(context.Background(), 100, workers, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: got %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), 0, 4, func(_ context.Context, i int) (int, error) {
		t.Fatal("fn called for n=0")
		return 0, nil
	})
	if err != nil || out != nil {
		t.Fatalf("got (%v, %v), want (nil, nil)", out, err)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	_, err := Map(context.Background(), 50, workers, func(_ context.Context, i int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent calls, limit %d", p, workers)
	}
}

func TestMapFirstErrorDeterministic(t *testing.T) {
	// Indices 30 and 60 fail; every worker count must surface index 30,
	// the error a sequential loop would hit first.
	fail := map[int]bool{30: true, 60: true}
	for _, workers := range []int{1, 2, 8} {
		_, err := Map(context.Background(), 100, workers, func(_ context.Context, i int) (int, error) {
			if fail[i] {
				return 0, fmt.Errorf("boom at %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "boom at 30" {
			t.Fatalf("workers=%d: err = %v, want boom at 30", workers, err)
		}
	}
}

func TestMapErrorStopsHandout(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(context.Background(), 1000, 2, func(_ context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("early failure")
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("all %d tasks ran despite early error", n)
	}
}

func TestMapContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, 10, 4, func(ctx context.Context, i int) (int, error) {
		return i, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMapNilContext(t *testing.T) {
	out, err := Map(nil, 3, 2, func(ctx context.Context, i int) (int, error) {
		if ctx == nil {
			return 0, errors.New("nil ctx passed to fn")
		}
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d results", len(out))
	}
}

func TestRun(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[int]bool)
	err := Run(context.Background(), 20, 4, func(_ context.Context, i int) error {
		mu.Lock()
		seen[i] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 20 {
		t.Fatalf("ran %d of 20 tasks", len(seen))
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers() = %d", DefaultWorkers())
	}
}
