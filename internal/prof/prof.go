// Package prof wires runtime/pprof capture into the command-line
// tools, so hot-path work (the evaluate loop, the manager control
// step) can be profiled on real experiment runs rather than only in
// microbenchmarks.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (empty disables it) and
// returns a stop function that ends the CPU profile and, when memPath
// is non-empty, writes a heap profile there. Call stop exactly once,
// after the workload finishes and before exit.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: create mem profile: %w", err)
			}
			defer f.Close()
			// Fold in everything still reachable so the heap profile
			// reflects steady-state retention, not GC timing.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: write mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
