// Package prof wires runtime/pprof and runtime/trace capture into the
// command-line tools, so hot-path work (the evaluate loop, the manager
// control step, the sharded tick's goroutine handoffs) can be profiled
// on real experiment runs rather than only in microbenchmarks.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Start begins CPU profiling into cpuPath and execution tracing into
// tracePath (empty disables either) and returns a stop function that
// ends them and, when memPath is non-empty, writes a heap profile
// there. The execution trace is the tool for the sharded evaluation
// tick: `go tool trace` shows the per-shard goroutine scheduling that
// a sampling CPU profile flattens. Call stop exactly once, after the
// workload finishes and before exit.
func Start(cpuPath, memPath, tracePath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	var traceFile *os.File
	if tracePath != "" {
		traceFile, err = os.Create(tracePath)
		if err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, fmt.Errorf("prof: create trace: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, fmt.Errorf("prof: start trace: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: close cpu profile: %w", err)
			}
		}
		if traceFile != nil {
			trace.Stop()
			if err := traceFile.Close(); err != nil {
				return fmt.Errorf("prof: close trace: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: create mem profile: %w", err)
			}
			defer f.Close()
			// Fold in everything still reachable so the heap profile
			// reflects steady-state retention, not GC timing.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: write mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
