// Package ctrlplane models the imperfect management network between
// the power-aware manager and its hosts: telemetry that arrives late
// (or not at all), power and migration commands that can be dropped
// and must be retried, and liveness that has to be inferred from
// heartbeats instead of read directly.
//
// The paper's manager runs against real servers over a management
// network; our core.Manager reads cluster state synchronously and its
// commands always land. This package interposes a deterministic,
// seed-driven message layer, carried entirely on sim.Engine events:
//
//   - Telemetry agents: each host publishes a utilization/power
//     snapshot every ReportInterval; reports travel with delay+jitter
//     and can be lost, so the manager's per-host view carries an age.
//   - Command channel: SleepHost/WakeHost/migration orders are
//     sequence-numbered. Each command leg and each ack leg can be
//     delayed and dropped; the sender detects ack timeouts and
//     retransmits (capped), the receiver dedups by sequence number and
//     re-acks the cached result, so re-issue is idempotent.
//   - Heartbeat liveness: hosts beat every HeartbeatInterval; a
//     monitor applies hysteresis (SuspectMissed missed beats suspect a
//     host, DeadMissed more presume it dead) instead of letting the
//     manager observe crashes directly.
//
// Dormancy contract (mirroring internal/faults): a Config with zero
// delay, jitter and loss is Enabled() == false and callers must not
// construct a Plane for it — even the RNG fork alone would perturb the
// engine's stream and break byte-identity with plane-free runs.
package ctrlplane

import (
	"errors"
	"fmt"
	"time"

	"agilepower/internal/cluster"
	"agilepower/internal/host"
	"agilepower/internal/power"
	"agilepower/internal/sim"
	"agilepower/internal/telemetry"
	"agilepower/internal/vm"
)

// Counter names the plane reports through the manager's
// telemetry.Counters. All stay zero on a loss-free, delay-free run.
const (
	// CtrCmdTimeouts — ack deadlines that expired before an ack landed.
	CtrCmdTimeouts = "cmd_timeouts"
	// CtrCmdRetries — command retransmissions after an ack timeout.
	CtrCmdRetries = "cmd_retries"
	// CtrCmdDupes — duplicate command deliveries suppressed by the
	// receiver's sequence-number dedup (the cached result is re-acked).
	CtrCmdDupes = "cmd_dupes_suppressed"
	// CtrCmdDrops — command legs lost in flight.
	CtrCmdDrops = "cmd_drops"
	// CtrAckDrops — ack legs lost in flight.
	CtrAckDrops = "ack_drops"
	// CtrCmdNacks — commands the host executed and rejected (the ack
	// carried an error).
	CtrCmdNacks = "cmd_nacks"
	// CtrCmdLost — commands abandoned after exhausting retransmissions.
	CtrCmdLost = "cmd_lost"
	// CtrLateAcks — acks that landed after their command was already
	// resolved (a retry succeeded first, or the sender gave up); the
	// reconciliation path drops them so completion fires exactly once.
	CtrLateAcks = "cmd_late_acks"
	// CtrReportDrops — telemetry reports lost in flight.
	CtrReportDrops = "report_drops"
	// CtrBeatDrops — heartbeats lost in flight.
	CtrBeatDrops = "hb_drops"
	// CtrSuspects — hosts that crossed the missed-beat suspect
	// threshold.
	CtrSuspects = "hb_suspects"
	// CtrDeaths — suspected hosts presumed dead after DeadMissed more
	// missed beats.
	CtrDeaths = "hb_deaths"
	// CtrRecoveries — non-alive hosts whose beat resumed (including
	// false-positive suspicions of healthy hosts).
	CtrRecoveries = "hb_recoveries"
	// CtrReportAgeMaxMS — high-water mark of telemetry snapshot age in
	// milliseconds, sampled at every monitor sweep.
	CtrReportAgeMaxMS = "report_age_max_ms"
)

// ErrLost is the command result when every transmission attempt went
// unacknowledged: the sender cannot know whether the command executed.
var ErrLost = errors.New("ctrlplane: command lost (retries exhausted)")

// Config parameterizes the message layer. The zero value is dormant.
type Config struct {
	// CmdDelay and CmdJitter shape each command and ack leg's transit
	// time: base plus a uniform draw in [0, jitter).
	CmdDelay  time.Duration
	CmdJitter time.Duration
	// CmdLossProb is the probability any single command or ack leg is
	// dropped in flight.
	CmdLossProb float64
	// AckTimeout is how long the sender waits for an ack before
	// retransmitting (default: 2×(CmdDelay+CmdJitter) + 5s, so a
	// loss-free round trip never times out spuriously).
	AckTimeout time.Duration
	// MaxCmdRetries caps retransmissions after the first attempt
	// (default 3; negative disables retries).
	MaxCmdRetries int

	// ReportInterval is the telemetry agents' publish period (default
	// 30s). ReportDelay/ReportJitter/ReportLossProb shape the report
	// path; heartbeats travel the same path.
	ReportInterval time.Duration
	ReportDelay    time.Duration
	ReportJitter   time.Duration
	ReportLossProb float64
	// StaleLimit is the snapshot age beyond which the manager must not
	// trust a host's telemetry for power-down decisions (default
	// 4×ReportInterval).
	StaleLimit time.Duration

	// HeartbeatInterval is the liveness beat period (default 10s).
	// SuspectMissed beats missed mark a host suspect; DeadMissed more
	// presume it dead (defaults 3 and 3).
	HeartbeatInterval time.Duration
	SuspectMissed     int
	DeadMissed        int
}

// Enabled reports whether the configuration perturbs anything at all.
// Dormant configurations must stay plane-free so runs are
// byte-identical to plane-unaware builds.
func (c Config) Enabled() bool {
	return c.CmdDelay > 0 || c.CmdJitter > 0 || c.CmdLossProb > 0 ||
		c.ReportDelay > 0 || c.ReportJitter > 0 || c.ReportLossProb > 0
}

func (c *Config) applyDefaults() {
	if c.ReportInterval <= 0 {
		c.ReportInterval = 30 * time.Second
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 10 * time.Second
	}
	if c.SuspectMissed == 0 {
		c.SuspectMissed = 3
	}
	if c.DeadMissed == 0 {
		c.DeadMissed = 3
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 2*(c.CmdDelay+c.CmdJitter) + 5*time.Second
	}
	if c.MaxCmdRetries == 0 {
		c.MaxCmdRetries = 3
	} else if c.MaxCmdRetries < 0 {
		c.MaxCmdRetries = 0
	}
	if c.StaleLimit <= 0 {
		c.StaleLimit = 4 * c.ReportInterval
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	probs := []struct {
		name string
		v    float64
	}{
		{"command loss", c.CmdLossProb},
		{"report loss", c.ReportLossProb},
	}
	for _, p := range probs {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("ctrlplane: %s probability %v outside [0,1]", p.name, p.v)
		}
	}
	durs := []struct {
		name string
		v    time.Duration
	}{
		{"command delay", c.CmdDelay},
		{"command jitter", c.CmdJitter},
		{"ack timeout", c.AckTimeout},
		{"report interval", c.ReportInterval},
		{"report delay", c.ReportDelay},
		{"report jitter", c.ReportJitter},
		{"stale limit", c.StaleLimit},
		{"heartbeat interval", c.HeartbeatInterval},
	}
	for _, d := range durs {
		if d.v < 0 {
			return fmt.Errorf("ctrlplane: negative %s %v", d.name, d.v)
		}
	}
	if c.SuspectMissed < 0 || c.DeadMissed < 0 {
		return fmt.Errorf("ctrlplane: negative hysteresis thresholds (%d suspect, %d dead)",
			c.SuspectMissed, c.DeadMissed)
	}
	return nil
}

// Preset returns the standard degraded-network mix for a mean one-way
// delay and a per-leg loss probability — the two knobs the ctrlplane
// experiment sweeps. Zero delay and loss return the zero Config
// (fully dormant).
func Preset(delay time.Duration, loss float64) Config {
	if delay <= 0 && loss <= 0 {
		return Config{}
	}
	if loss > 1 {
		loss = 1
	}
	if delay < 0 {
		delay = 0
	}
	return Config{
		CmdDelay:       delay,
		CmdJitter:      delay / 2,
		CmdLossProb:    loss,
		ReportDelay:    delay,
		ReportJitter:   delay / 2,
		ReportLossProb: loss,
	}
}

// Status is a host's inferred liveness.
type Status int

const (
	// Alive — heartbeats current; the host is trusted.
	Alive Status = iota
	// Suspect — SuspectMissed beats missed. The host keeps its VMs in
	// the manager's books (they must not be double-placed — the
	// suspicion may be false) but receives no new work.
	Suspect
	// Dead — DeadMissed further beats missed; the manager plans around
	// the host entirely until a beat resumes.
	Dead
)

func (s Status) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// CommandKind identifies an actuation order.
type CommandKind int

const (
	// CmdSleep parks a host in a sleep state.
	CmdSleep CommandKind = iota
	// CmdWake brings a sleeping host back.
	CmdWake
	// CmdMigrate starts a live migration.
	CmdMigrate
)

func (k CommandKind) String() string {
	switch k {
	case CmdSleep:
		return "sleep"
	case CmdWake:
		return "wake"
	case CmdMigrate:
		return "migrate"
	default:
		return fmt.Sprintf("CommandKind(%d)", int(k))
	}
}

// Command is one sequence-numbered actuation order in flight.
type Command struct {
	Seq  uint64
	Kind CommandKind
	// Host is the power-command target (CmdSleep/CmdWake).
	Host       host.ID
	SleepState power.State
	// VM and Dst describe a CmdMigrate.
	VM  vm.ID
	Dst host.ID
}

// Snapshot is one host telemetry report as the manager last received
// it.
type Snapshot struct {
	// At is the measurement time (publication), not the arrival time;
	// age is measured against it.
	At     sim.Time
	Util   float64
	PowerW float64
	VMs    int
	// Valid is false until the first report lands.
	Valid bool
}

type pendingCmd struct {
	cmd      Command
	attempts int
	done     bool
}

// Plane is the message layer between one manager and its cluster. Like
// everything else in the simulator it is single-threaded: one plane per
// engine, driven entirely by engine events.
type Plane struct {
	eng *sim.Engine
	cl  *cluster.Cluster
	cfg Config
	// base preserves the construction-time impairment knobs so a
	// scenario partition or degradation window can be lifted again
	// (RestoreImpairment).
	base Config
	rng  *sim.RNG
	ctrs *telemetry.Counters

	// Sender-side command state: outstanding commands by sequence
	// number plus per-target indices so the manager can avoid issuing
	// duplicates while one is in flight.
	nextSeq     uint64
	pending     map[uint64]*pendingCmd
	hostPending []int // outstanding power commands per host (ID-1)
	vmPending   map[vm.ID]int
	// Receiver-side dedup: first-execution result by sequence number,
	// re-acked verbatim on duplicate delivery.
	applied map[uint64]error

	// Manager-visible stale view (ID-1 indexed).
	snaps    []Snapshot
	lastBeat []sim.Time
	status   []Status

	onResult   func(Command, error)
	onLiveness func(host.ID, Status)
	started    bool
}

// New builds a plane over the cluster, forking the engine's RNG so
// message-layer decisions consume an independent substream. cfg must be
// Enabled() and valid; constructing a plane for a dormant configuration
// is a caller bug because the fork alone perturbs the engine's stream.
// Counters (typically the manager's) receive the plane's telemetry;
// nil allocates a private set.
func New(eng *sim.Engine, cl *cluster.Cluster, cfg Config, ctrs *telemetry.Counters) (*Plane, error) {
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, fmt.Errorf("ctrlplane: refusing to build a plane for a dormant config")
	}
	if ctrs == nil {
		ctrs = telemetry.NewCounters()
	}
	n := len(cl.Hosts())
	return &Plane{
		eng:         eng,
		cl:          cl,
		cfg:         cfg,
		base:        cfg,
		rng:         eng.RNG().Fork(),
		ctrs:        ctrs,
		nextSeq:     1,
		pending:     make(map[uint64]*pendingCmd),
		hostPending: make([]int, n),
		vmPending:   make(map[vm.ID]int),
		applied:     make(map[uint64]error),
		snaps:       make([]Snapshot, n),
		lastBeat:    make([]sim.Time, n),
		status:      make([]Status, n),
	}, nil
}

// Config returns the plane's effective (defaulted) configuration.
func (p *Plane) Config() Config { return p.cfg }

// SetImpairment replaces the six Preset-shaped network knobs (command
// and report delay, jitter, loss) at runtime — scenario ctrl-degrade
// events. Timeouts, retry budgets, heartbeat cadence and liveness
// hysteresis keep their construction-time values. Deterministic for
// the same reason faults.Tune is: every send reads the config at its
// own event time, inside the engine.
func (p *Plane) SetImpairment(delay time.Duration, loss float64) {
	if delay < 0 {
		delay = 0
	}
	if loss < 0 {
		loss = 0
	}
	if loss > 1 {
		loss = 1
	}
	p.cfg.CmdDelay = delay
	p.cfg.CmdJitter = delay / 2
	p.cfg.CmdLossProb = loss
	p.cfg.ReportDelay = delay
	p.cfg.ReportJitter = delay / 2
	p.cfg.ReportLossProb = loss
}

// Partition severs the plane completely: every command and report leg
// is lost until RestoreImpairment. Heartbeats stop arriving, so the
// liveness monitor will walk every host to Suspect and then Dead at
// its configured hysteresis.
func (p *Plane) Partition() {
	p.cfg.CmdLossProb = 1
	p.cfg.ReportLossProb = 1
}

// RestoreImpairment puts the six network knobs back to their
// construction-time values, ending a Partition or SetImpairment
// window.
func (p *Plane) RestoreImpairment() {
	p.cfg.CmdDelay = p.base.CmdDelay
	p.cfg.CmdJitter = p.base.CmdJitter
	p.cfg.CmdLossProb = p.base.CmdLossProb
	p.cfg.ReportDelay = p.base.ReportDelay
	p.cfg.ReportJitter = p.base.ReportJitter
	p.cfg.ReportLossProb = p.base.ReportLossProb
}

// OnCommandResult registers the single sender-side completion callback:
// it fires exactly once per command, with nil on an acked success, the
// host's error on an acked rejection, or ErrLost after retry
// exhaustion.
func (p *Plane) OnCommandResult(fn func(Command, error)) { p.onResult = fn }

// OnLiveness registers the liveness-transition callback.
func (p *Plane) OnLiveness(fn func(host.ID, Status)) { p.onLiveness = fn }

// Start schedules the telemetry agents, the heartbeat publishers and
// the liveness monitor. Call it once, after the cluster's hosts exist,
// so event ordering is deterministic.
func (p *Plane) Start() {
	if p.started {
		return
	}
	p.started = true
	p.eng.AfterFunc(p.cfg.ReportInterval, p.telemetrySweep)
	p.eng.AfterFunc(p.cfg.HeartbeatInterval, p.heartbeatSweep)
	p.eng.AfterFunc(p.cfg.HeartbeatInterval, p.monitorSweep)
}

// legDelay draws one leg's transit time. The jitter draw is skipped
// when jitter is zero so partial configurations leave the stream
// untouched.
func (p *Plane) legDelay(base, jitter time.Duration) time.Duration {
	return base + p.rng.DurationJitter(jitter)
}

// SendSleep queues a park order for the host.
func (p *Plane) SendSleep(id host.ID, st power.State) {
	p.send(Command{Kind: CmdSleep, Host: id, SleepState: st})
}

// SendWake queues a wake order for the host.
func (p *Plane) SendWake(id host.ID) {
	p.send(Command{Kind: CmdWake, Host: id})
}

// SendMigrate queues a migration order.
func (p *Plane) SendMigrate(vid vm.ID, dst host.ID) {
	p.send(Command{Kind: CmdMigrate, VM: vid, Dst: dst})
}

func (p *Plane) send(cmd Command) {
	cmd.Seq = p.nextSeq
	p.nextSeq++
	pd := &pendingCmd{cmd: cmd}
	p.pending[cmd.Seq] = pd
	switch cmd.Kind {
	case CmdSleep, CmdWake:
		p.hostPending[cmd.Host-1]++
	case CmdMigrate:
		p.vmPending[cmd.VM]++
	}
	p.transmit(pd)
}

// transmit sends one attempt of the command leg and arms its ack
// deadline. Drop and delay are drawn per leg in a fixed order so the
// substream is deterministic.
func (p *Plane) transmit(pd *pendingCmd) {
	pd.attempts++
	if pd.attempts > 1 {
		p.ctrs.Inc(CtrCmdRetries)
	}
	if p.rng.Bernoulli(p.cfg.CmdLossProb) {
		p.ctrs.Inc(CtrCmdDrops)
	} else {
		cmd := pd.cmd
		p.eng.AfterFunc(p.legDelay(p.cfg.CmdDelay, p.cfg.CmdJitter), func() { p.deliver(cmd) })
	}
	p.eng.AfterFunc(p.cfg.AckTimeout, func() { p.ackDeadline(pd) })
}

// ackDeadline fires when an attempt's ack window closes: retransmit
// while retries remain, otherwise abandon the command as lost.
func (p *Plane) ackDeadline(pd *pendingCmd) {
	if pd.done {
		return
	}
	p.ctrs.Inc(CtrCmdTimeouts)
	if pd.attempts > p.cfg.MaxCmdRetries {
		p.ctrs.Inc(CtrCmdLost)
		p.resolve(pd, ErrLost)
		return
	}
	p.transmit(pd)
}

// deliver is the host-side receipt of a command leg: execute on first
// delivery, suppress-and-re-ack on duplicates (idempotent re-issue).
func (p *Plane) deliver(cmd Command) {
	if res, ok := p.applied[cmd.Seq]; ok {
		p.ctrs.Inc(CtrCmdDupes)
		p.sendAck(cmd.Seq, res)
		return
	}
	err := p.execute(cmd)
	p.applied[cmd.Seq] = err
	p.sendAck(cmd.Seq, err)
}

func (p *Plane) execute(cmd Command) error {
	switch cmd.Kind {
	case CmdSleep:
		return p.cl.SleepHost(cmd.Host, cmd.SleepState)
	case CmdWake:
		return p.cl.WakeHost(cmd.Host)
	case CmdMigrate:
		return p.cl.StartMigration(cmd.VM, cmd.Dst)
	default:
		return fmt.Errorf("ctrlplane: unknown command kind %v", cmd.Kind)
	}
}

func (p *Plane) sendAck(seq uint64, result error) {
	if p.rng.Bernoulli(p.cfg.CmdLossProb) {
		p.ctrs.Inc(CtrAckDrops)
		return
	}
	p.eng.AfterFunc(p.legDelay(p.cfg.CmdDelay, p.cfg.CmdJitter), func() { p.recvAck(seq, result) })
}

// recvAck is the sender-side ack receipt. Acks for already-resolved
// commands (a retry's ack won the race, or the command was abandoned)
// are the stale-view case: they are counted and dropped so the
// completion callback fires exactly once.
func (p *Plane) recvAck(seq uint64, result error) {
	pd, ok := p.pending[seq]
	if !ok || pd.done {
		p.ctrs.Inc(CtrLateAcks)
		return
	}
	if result != nil {
		p.ctrs.Inc(CtrCmdNacks)
	}
	p.resolve(pd, result)
}

func (p *Plane) resolve(pd *pendingCmd, result error) {
	pd.done = true
	delete(p.pending, pd.cmd.Seq)
	switch pd.cmd.Kind {
	case CmdSleep, CmdWake:
		p.hostPending[pd.cmd.Host-1]--
	case CmdMigrate:
		if p.vmPending[pd.cmd.VM]--; p.vmPending[pd.cmd.VM] <= 0 {
			delete(p.vmPending, pd.cmd.VM)
		}
	}
	if p.onResult != nil {
		p.onResult(pd.cmd, result)
	}
}

// HostCmdPending reports whether a power command for the host is still
// unresolved — the manager must not issue another until it settles.
func (p *Plane) HostCmdPending(id host.ID) bool {
	if id < 1 || int(id) > len(p.hostPending) {
		return false
	}
	return p.hostPending[id-1] > 0
}

// MigrationPending reports whether a migration command for the VM is
// still unresolved.
func (p *Plane) MigrationPending(id vm.ID) bool { return p.vmPending[id] > 0 }

// telemetrySweep publishes one report per live host (ID order, so the
// drop/delay draws are deterministic) and reschedules itself.
func (p *Plane) telemetrySweep() {
	now := p.eng.Now()
	for _, h := range p.cl.Hosts() {
		mach := h.Machine()
		if mach.Crashed() {
			continue // a crashed host's agent publishes nothing
		}
		if p.rng.Bernoulli(p.cfg.ReportLossProb) {
			p.ctrs.Inc(CtrReportDrops)
			continue
		}
		id := h.ID()
		snap := Snapshot{
			At:     now,
			Util:   mach.Utilization(),
			PowerW: float64(mach.Power()),
			VMs:    h.NumVMs(),
			Valid:  true,
		}
		p.eng.AfterFunc(p.legDelay(p.cfg.ReportDelay, p.cfg.ReportJitter),
			func() { p.deliverSnapshot(id, snap) })
	}
	p.eng.AfterFunc(p.cfg.ReportInterval, p.telemetrySweep)
}

// deliverSnapshot lands a report; out-of-order arrivals never roll the
// view backwards.
func (p *Plane) deliverSnapshot(id host.ID, snap Snapshot) {
	cur := &p.snaps[id-1]
	if cur.Valid && cur.At >= snap.At {
		return
	}
	*cur = snap
}

// heartbeatSweep publishes one beat per live host and reschedules
// itself. Sleeping hosts still beat (their management controller stays
// powered); only crashed hosts fall silent.
func (p *Plane) heartbeatSweep() {
	for _, h := range p.cl.Hosts() {
		if h.Machine().Crashed() {
			continue
		}
		if p.rng.Bernoulli(p.cfg.ReportLossProb) {
			p.ctrs.Inc(CtrBeatDrops)
			continue
		}
		id := h.ID()
		p.eng.AfterFunc(p.legDelay(p.cfg.ReportDelay, p.cfg.ReportJitter),
			func() { p.recvBeat(id) })
	}
	p.eng.AfterFunc(p.cfg.HeartbeatInterval, p.heartbeatSweep)
}

func (p *Plane) recvBeat(id host.ID) {
	i := int(id) - 1
	if now := p.eng.Now(); now > p.lastBeat[i] {
		p.lastBeat[i] = now
	}
	if p.status[i] != Alive {
		p.setStatus(id, Alive)
	}
}

// monitorSweep applies the missed-beat hysteresis in host-ID order and
// records the telemetry-age high-water mark.
func (p *Plane) monitorSweep() {
	now := p.eng.Now()
	suspectAfter := sim.Time(p.cfg.SuspectMissed) * sim.Time(p.cfg.HeartbeatInterval)
	deadAfter := suspectAfter + sim.Time(p.cfg.DeadMissed)*sim.Time(p.cfg.HeartbeatInterval)
	for i := range p.status {
		id := host.ID(i + 1)
		gap := now - p.lastBeat[i]
		if p.status[i] == Alive && gap > suspectAfter {
			p.setStatus(id, Suspect)
		}
		if p.status[i] == Suspect && gap > deadAfter {
			p.setStatus(id, Dead)
		}
		if p.snaps[i].Valid {
			p.ctrs.Max(CtrReportAgeMaxMS, int(time.Duration(now-p.snaps[i].At).Milliseconds()))
		}
	}
	p.eng.AfterFunc(p.cfg.HeartbeatInterval, p.monitorSweep)
}

func (p *Plane) setStatus(id host.ID, s Status) {
	i := int(id) - 1
	if p.status[i] == s {
		return
	}
	p.status[i] = s
	switch s {
	case Suspect:
		p.ctrs.Inc(CtrSuspects)
	case Dead:
		p.ctrs.Inc(CtrDeaths)
	case Alive:
		p.ctrs.Inc(CtrRecoveries)
	}
	if p.onLiveness != nil {
		p.onLiveness(id, s)
	}
}

// Status returns the host's inferred liveness.
func (p *Plane) Status(id host.ID) Status {
	if id < 1 || int(id) > len(p.status) {
		return Alive
	}
	return p.status[id-1]
}

// LastSnapshot returns the host's most recent telemetry report (Valid
// false before the first report lands).
func (p *Plane) LastSnapshot(id host.ID) Snapshot {
	if id < 1 || int(id) > len(p.snaps) {
		return Snapshot{}
	}
	return p.snaps[id-1]
}

// SnapshotAge returns how stale the host's telemetry view is. The
// second result is false while no report has arrived yet.
func (p *Plane) SnapshotAge(id host.ID) (time.Duration, bool) {
	if id < 1 || int(id) > len(p.snaps) || !p.snaps[id-1].Valid {
		return 0, false
	}
	return time.Duration(p.eng.Now() - p.snaps[id-1].At), true
}

// Fresh reports whether the host's telemetry is recent enough to base
// a power-down decision on: a snapshot exists and its age is within
// StaleLimit. Hosts that have never reported are not fresh —
// conservative keep-on is the fallback.
func (p *Plane) Fresh(id host.ID) bool {
	age, ok := p.SnapshotAge(id)
	return ok && age <= p.cfg.StaleLimit
}
