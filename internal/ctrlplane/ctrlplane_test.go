package ctrlplane

import (
	"errors"
	"testing"
	"time"

	"agilepower/internal/cluster"
	"agilepower/internal/host"
	"agilepower/internal/power"
	"agilepower/internal/sim"
	"agilepower/internal/telemetry"
	"agilepower/internal/vm"
	"agilepower/internal/workload"
)

func newPlane(t *testing.T, hosts int, cfg Config) (*sim.Engine, *cluster.Cluster, *Plane) {
	t.Helper()
	eng := sim.NewEngine(7)
	cl, err := cluster.New(eng, cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < hosts; i++ {
		if _, err := cl.AddHost(host.Config{Cores: 16, MemoryGB: 64}); err != nil {
			t.Fatal(err)
		}
	}
	p, err := New(eng, cl, cfg, telemetry.NewCounters())
	if err != nil {
		t.Fatal(err)
	}
	return eng, cl, p
}

func TestDormantConfigRefused(t *testing.T) {
	eng := sim.NewEngine(1)
	cl, err := cluster.New(eng, cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(eng, cl, Config{}, nil); err == nil {
		t.Fatal("accepted a dormant config — the RNG fork alone would perturb the stream")
	}
	// An interval alone does not enable the plane: no message can be
	// delayed or lost, so nothing observable changes.
	if (Config{ReportInterval: time.Minute}).Enabled() {
		t.Fatal("interval-only config reported enabled")
	}
	for _, c := range []Config{
		{CmdDelay: time.Second}, {CmdJitter: time.Second}, {CmdLossProb: 0.1},
		{ReportDelay: time.Second}, {ReportJitter: time.Second}, {ReportLossProb: 0.1},
	} {
		if !c.Enabled() {
			t.Fatalf("config %+v should be enabled", c)
		}
	}
}

func TestPresetMixes(t *testing.T) {
	if cfg := Preset(0, 0); cfg != (Config{}) || cfg.Enabled() {
		t.Fatalf("Preset(0,0) = %+v, want dormant zero config", cfg)
	}
	if cfg := Preset(-time.Second, -0.5); cfg != (Config{}) {
		t.Fatalf("negative preset inputs = %+v, want dormant zero config", cfg)
	}
	cfg := Preset(2*time.Second, 3)
	if cfg.CmdLossProb != 1 || cfg.ReportLossProb != 1 {
		t.Fatalf("loss not clamped to 1: %+v", cfg)
	}
	if cfg.CmdDelay != 2*time.Second || cfg.CmdJitter != time.Second {
		t.Fatalf("preset delay/jitter wrong: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("preset config invalid: %v", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	_, _, p := newPlane(t, 1, Config{CmdDelay: 2 * time.Second})
	cfg := p.Config()
	if cfg.ReportInterval != 30*time.Second || cfg.HeartbeatInterval != 10*time.Second ||
		cfg.SuspectMissed != 3 || cfg.DeadMissed != 3 {
		t.Fatalf("telemetry/liveness defaults wrong: %+v", cfg)
	}
	if want := 2*(2*time.Second) + 5*time.Second; cfg.AckTimeout != want {
		t.Fatalf("AckTimeout = %v, want %v (2×RTT budget + 5s)", cfg.AckTimeout, want)
	}
	if cfg.MaxCmdRetries != 3 {
		t.Fatalf("MaxCmdRetries = %d, want 3", cfg.MaxCmdRetries)
	}
	if cfg.StaleLimit != 4*cfg.ReportInterval {
		t.Fatalf("StaleLimit = %v, want %v", cfg.StaleLimit, 4*cfg.ReportInterval)
	}
	// Negative retries means "no retransmissions", not a default.
	_, _, p2 := newPlane(t, 1, Config{CmdDelay: time.Second, MaxCmdRetries: -1})
	if p2.Config().MaxCmdRetries != 0 {
		t.Fatalf("MaxCmdRetries(-1) = %d, want 0", p2.Config().MaxCmdRetries)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Config{
		{CmdLossProb: 1.5},
		{ReportLossProb: -0.1},
		{CmdDelay: -time.Second},
		{ReportJitter: -time.Second},
		{SuspectMissed: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("Validate accepted %+v", c)
		}
	}
}

func TestCommandLostAfterRetryExhaustion(t *testing.T) {
	// Total loss: every command leg is dropped, so every attempt times
	// out and the command is eventually abandoned with ErrLost.
	eng, _, p := newPlane(t, 1, Config{
		CmdLossProb: 1, AckTimeout: time.Second, MaxCmdRetries: 2,
	})
	var results []error
	p.OnCommandResult(func(_ Command, err error) { results = append(results, err) })
	p.SendSleep(1, power.S3)
	if !p.HostCmdPending(1) {
		t.Fatal("command not pending right after send")
	}
	eng.RunUntil(sim.Time(time.Minute))

	if len(results) != 1 || !errors.Is(results[0], ErrLost) {
		t.Fatalf("results = %v, want exactly one ErrLost", results)
	}
	if p.HostCmdPending(1) {
		t.Fatal("command still pending after abandonment")
	}
	c := p.ctrs
	if got := c.Get(CtrCmdDrops); got != 3 {
		t.Fatalf("cmd_drops = %d, want 3 (initial + 2 retries)", got)
	}
	if got := c.Get(CtrCmdTimeouts); got != 3 {
		t.Fatalf("cmd_timeouts = %d, want 3", got)
	}
	if got := c.Get(CtrCmdRetries); got != 2 {
		t.Fatalf("cmd_retries = %d, want 2", got)
	}
	if got := c.Get(CtrCmdLost); got != 1 {
		t.Fatalf("cmd_lost = %d, want 1", got)
	}
}

func TestRetransmitDedupAndLateAck(t *testing.T) {
	// No loss, but the ack timeout is shorter than the round trip, so
	// the sender retransmits a command that did arrive. The receiver
	// must suppress the duplicate and re-ack the cached result, and the
	// second ack must land as a counted no-op (the first one resolved
	// the command).
	//
	// Timeline (delay 3s each leg, ack timeout 4s):
	//   t=0  attempt 1 sent          t=4  timeout → attempt 2
	//   t=3  attempt 1 executes      t=7  attempt 2 → duplicate
	//   t=6  ack 1 resolves (nil)    t=10 ack 2 → late, dropped
	eng, cl, p := newPlane(t, 1, Config{
		CmdDelay: 3 * time.Second, AckTimeout: 4 * time.Second, MaxCmdRetries: 3,
	})
	var results []error
	p.OnCommandResult(func(_ Command, err error) { results = append(results, err) })
	cl.Start()
	p.SendSleep(1, power.S3)
	eng.RunUntil(sim.Time(30 * time.Second))

	if len(results) != 1 || results[0] != nil {
		t.Fatalf("results = %v, want exactly one nil (acked success)", results)
	}
	c := p.ctrs
	for name, want := range map[string]int{
		CtrCmdTimeouts: 1, CtrCmdRetries: 1, CtrCmdDupes: 1,
		CtrLateAcks: 1, CtrCmdLost: 0, CtrCmdDrops: 0,
	} {
		if got := c.Get(name); got != want {
			t.Fatalf("%s = %d, want %d", name, got, want)
		}
	}
	// The command executed exactly once: the host really went down.
	h, _ := cl.Host(1)
	if h.Machine().State() != power.S3 {
		t.Fatalf("host state = %v, want S3 (single execution)", h.Machine().State())
	}
	if p.HostCmdPending(1) {
		t.Fatal("command still pending after resolution")
	}
}

func TestNackedCommandReportsHostError(t *testing.T) {
	// Host 1 has a resident VM, so SleepHost is rejected host-side; the
	// rejection must travel back as the command result.
	eng, cl, p := newPlane(t, 1, Config{CmdDelay: time.Second})
	if _, err := cl.AddVM(vm.Config{VCPUs: 4, MemoryGB: 8, Trace: workload.Constant(2)}, 1); err != nil {
		t.Fatal(err)
	}
	var results []error
	p.OnCommandResult(func(_ Command, err error) { results = append(results, err) })
	cl.Start()
	p.SendSleep(1, power.S3)
	eng.RunUntil(sim.Time(time.Minute))

	if len(results) != 1 || results[0] == nil {
		t.Fatalf("results = %v, want exactly one non-nil rejection", results)
	}
	if got := p.ctrs.Get(CtrCmdNacks); got != 1 {
		t.Fatalf("cmd_nacks = %d, want 1", got)
	}
}

func TestMigrationCommandLifecycle(t *testing.T) {
	eng, cl, p := newPlane(t, 2, Config{CmdDelay: time.Second})
	v, err := cl.AddVM(vm.Config{VCPUs: 4, MemoryGB: 8, Trace: workload.Constant(2)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var results []error
	p.OnCommandResult(func(_ Command, err error) { results = append(results, err) })
	cl.Start()
	p.SendMigrate(v.ID(), 2)
	if !p.MigrationPending(v.ID()) {
		t.Fatal("migration order not pending after send")
	}
	eng.RunUntil(sim.Time(30 * time.Minute))

	if len(results) != 1 || results[0] != nil {
		t.Fatalf("results = %v, want one acked success", results)
	}
	if p.MigrationPending(v.ID()) {
		t.Fatal("migration order still pending after ack")
	}
	if st := cl.Migrations().Stats(); st.Completed != 1 {
		t.Fatalf("migration stats = %+v, want 1 completed", st)
	}
	if on, _ := cl.Placement(v.ID()); on != 2 {
		t.Fatalf("VM on host %d, want 2", on)
	}
}

func TestLivenessHysteresisAndRecovery(t *testing.T) {
	// Host 1 crashes at t=65s for 2 minutes. Beats stop, so the monitor
	// suspects it (3 missed beats), then presumes it dead (3 more); the
	// repair restores beats and the status returns to Alive. Host 2
	// beats throughout and never leaves Alive.
	eng, cl, p := newPlane(t, 2, Config{ReportDelay: 100 * time.Millisecond})
	var transitions []Status
	p.OnLiveness(func(id host.ID, s Status) {
		if id == 1 {
			transitions = append(transitions, s)
		} else {
			t.Errorf("host 2 changed liveness to %v", s)
		}
	})
	cl.Start()
	p.Start()
	eng.AfterFunc(65*time.Second, func() {
		if err := cl.CrashHost(1, 2*time.Minute); err != nil {
			t.Errorf("crash: %v", err)
		}
	})
	eng.RunUntil(sim.Time(6 * time.Minute))

	want := []Status{Suspect, Dead, Alive}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i, s := range want {
		if transitions[i] != s {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
	if p.Status(1) != Alive || p.Status(2) != Alive {
		t.Fatalf("final status = %v/%v, want alive/alive", p.Status(1), p.Status(2))
	}
	c := p.ctrs
	if c.Get(CtrSuspects) != 1 || c.Get(CtrDeaths) != 1 || c.Get(CtrRecoveries) != 1 {
		t.Fatalf("liveness counters = %d/%d/%d, want 1/1/1",
			c.Get(CtrSuspects), c.Get(CtrDeaths), c.Get(CtrRecoveries))
	}
	// Out-of-range IDs are reported Alive (no panic, no false alarm).
	if p.Status(99) != Alive {
		t.Fatal("unknown host not reported alive")
	}
}

func TestSleepingHostsKeepBeating(t *testing.T) {
	// A parked host's management controller stays powered: it beats and
	// must never be suspected just for sleeping.
	eng, cl, p := newPlane(t, 1, Config{ReportDelay: 100 * time.Millisecond})
	cl.Start()
	p.Start()
	if err := cl.SleepHost(1, power.S5); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(5 * time.Minute))
	if p.Status(1) != Alive {
		t.Fatalf("sleeping host status = %v, want alive", p.Status(1))
	}
	if got := p.ctrs.Get(CtrSuspects); got != 0 {
		t.Fatalf("hb_suspects = %d, want 0", got)
	}
}

func TestSnapshotFreshnessAndOrdering(t *testing.T) {
	eng, cl, p := newPlane(t, 1, Config{ReportDelay: time.Second})
	cl.Start()
	p.Start()
	if p.Fresh(1) {
		t.Fatal("host fresh before any report landed")
	}
	if _, ok := p.SnapshotAge(1); ok {
		t.Fatal("SnapshotAge reported a value before any report")
	}
	eng.RunUntil(sim.Time(40 * time.Second))

	// The t=30s report arrived at t=31s; its age at t=40s is 10s.
	snap := p.LastSnapshot(1)
	if !snap.Valid || snap.At != sim.Time(30*time.Second) {
		t.Fatalf("snapshot = %+v, want valid report published at 30s", snap)
	}
	age, ok := p.SnapshotAge(1)
	if !ok || age != 10*time.Second {
		t.Fatalf("age = %v/%v, want 10s", age, ok)
	}
	if !p.Fresh(1) {
		t.Fatal("10s-old snapshot not fresh under a 120s limit")
	}
	// A delayed older report must never roll the view backwards.
	p.deliverSnapshot(1, Snapshot{At: sim.Time(5 * time.Second), Util: 0.99, Valid: true})
	if got := p.LastSnapshot(1); got.At != sim.Time(30*time.Second) {
		t.Fatalf("out-of-order report rolled the view back to %v", got.At)
	}

	// Once the host crashes, reports stop and the view ages past the
	// stale limit (120s): freshness is lost, conservatively.
	if err := cl.CrashHost(1, time.Hour); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(160 * time.Second))
	if p.Fresh(1) {
		age, _ := p.SnapshotAge(1)
		t.Fatalf("crashed host still fresh at age %v", age)
	}
	if got := p.ctrs.Get(CtrReportAgeMaxMS); got < 120_000 {
		t.Fatalf("report_age_max_ms = %d, want >= 120000", got)
	}
}

func TestPlaneDeterministicAcrossReruns(t *testing.T) {
	run := func() map[string]int {
		eng, cl, p := newPlane(t, 3, Config{
			CmdDelay: time.Second, CmdJitter: 500 * time.Millisecond, CmdLossProb: 0.4,
			ReportDelay: time.Second, ReportJitter: 500 * time.Millisecond, ReportLossProb: 0.4,
			AckTimeout: 3 * time.Second,
		})
		cl.Start()
		p.Start()
		for i := 0; i < 5; i++ {
			id := host.ID(i%3 + 1)
			eng.AfterFunc(time.Duration(i)*time.Minute, func() { p.SendSleep(id, power.S3) })
			eng.AfterFunc(time.Duration(i)*time.Minute+30*time.Second, func() { p.SendWake(id) })
		}
		eng.RunUntil(sim.Time(10 * time.Minute))
		return p.ctrs.Snapshot()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("lossy run left no counter tracks")
	}
	for name, v := range a {
		if b[name] != v {
			t.Fatalf("counter %s diverged across reruns: %d vs %d", name, v, b[name])
		}
	}
	if len(a) != len(b) {
		t.Fatalf("counter sets diverged: %v vs %v", a, b)
	}
}
