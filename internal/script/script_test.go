package script

import (
	"strings"
	"testing"
	"time"
)

func TestParseTarget(t *testing.T) {
	cases := []struct {
		in     string
		lo, hi int
		bad    bool
	}{
		{in: "host-17", lo: 17, hi: 17},
		{in: "host-1", lo: 1, hi: 1},
		{in: "host-3..7", lo: 3, hi: 7},
		{in: "host-5..5", lo: 5, hi: 5},
		{in: "node-3", bad: true},
		{in: "host-", bad: true},
		{in: "host-a", bad: true},
		{in: "host-3..", bad: true},
		{in: "host-7..3", bad: true},
		{in: "", bad: true},
	}
	for _, c := range cases {
		lo, hi, err := ParseTarget(c.in)
		if c.bad {
			if err == nil {
				t.Errorf("ParseTarget(%q) accepted", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseTarget(%q): %v", c.in, err)
			continue
		}
		if lo != c.lo || hi != c.hi {
			t.Errorf("ParseTarget(%q) = %d..%d, want %d..%d", c.in, lo, hi, c.lo, c.hi)
		}
	}
}

func TestEventValidate(t *testing.T) {
	const hosts = 8
	good := []Event{
		{Action: ActionCrash, Host: 1},
		{Action: ActionCrash, Host: 3, HostTo: 7, Repair: time.Hour},
		{Action: ActionMaintenance, Host: 8},
		{Action: ActionMaintenanceEnd, Host: 8},
		{Action: ActionPowerCap, Watts: 2000},
		{Action: ActionPowerCap, Watts: 0}, // uncap
		{Action: ActionDemandSurge, Factor: 3, Fleet: "web"},
		{Action: ActionFaultRate, Rate: 0.5},
		{Action: ActionWakeFail, Prob: 1},
		{Action: ActionCtrlDegrade, Delay: 100 * time.Millisecond, Loss: 0.1},
		{Action: ActionCtrlPartition, Duration: time.Minute},
	}
	for _, e := range good {
		if err := e.Validate(hosts); err != nil {
			t.Errorf("%v rejected: %v", e, err)
		}
	}
	bad := []Event{
		{Action: "reboot"},
		{Action: ActionCrash, Host: 0},
		{Action: ActionCrash, Host: 9},
		{Action: ActionCrash, Host: 5, HostTo: 3},
		{Action: ActionCrash, Host: 1, Repair: -time.Second},
		{Action: ActionCrash, Host: 1, At: -time.Hour},
		{Action: ActionMaintenance, Host: 1, Duration: -time.Minute},
		{Action: ActionPowerCap, Watts: -1},
		{Action: ActionDemandSurge, Factor: 0},
		{Action: ActionFaultRate, Rate: 1.5},
		{Action: ActionWakeFail, Prob: -0.1},
		{Action: ActionCtrlDegrade, Delay: -time.Second},
		{Action: ActionCtrlDegrade, Loss: 2},
		{Action: ActionCtrlPartition}, // no duration
	}
	for _, e := range bad {
		if err := e.Validate(hosts); err == nil {
			t.Errorf("%+v accepted", e)
		}
	}
}

func TestEventNeeds(t *testing.T) {
	if !(Event{Action: ActionFaultRate}).NeedsFaults() || !(Event{Action: ActionWakeFail}).NeedsFaults() {
		t.Fatal("fault events should need the injector")
	}
	if !(Event{Action: ActionCtrlDegrade}).NeedsCtrlPlane() || !(Event{Action: ActionCtrlPartition}).NeedsCtrlPlane() {
		t.Fatal("ctrl events should need the plane")
	}
	if (Event{Action: ActionCrash}).NeedsFaults() || (Event{Action: ActionCrash}).NeedsCtrlPlane() {
		t.Fatal("crash needs neither subsystem")
	}
	if !(Event{Action: ActionDemandSurge}).ScalesDemand() || (Event{Action: ActionPowerCap}).ScalesDemand() {
		t.Fatal("ScalesDemand should flag only demand-surge")
	}
}

func TestEventString(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Event{At: 2 * time.Hour, Action: ActionCrash, Host: 17}, "2h0m0s crash host-17"},
		{Event{Action: ActionMaintenance, Host: 3, HostTo: 7}, "0s maintenance host-3..7"},
		{Event{At: time.Hour, Action: ActionPowerCap, Watts: 5000, Duration: 2 * time.Hour},
			"1h0m0s power-cap 5000W for 2h0m0s"},
		{Event{Action: ActionDemandSurge, Factor: 2.5, Fleet: "web"}, `0s demand-surge ×2.5 fleet="web"`},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestAssertionValidate(t *testing.T) {
	good := []Assertion{
		{Kind: KindNoStrandedVM},
		{Kind: KindNoStrandedVM, Over: 10 * time.Minute, From: time.Hour, Until: 2 * time.Hour},
		{Kind: KindPowerBelow, Watts: 9000},
		{Kind: KindNoPendingVM, Over: time.Minute},
		{Kind: KindActiveHostsMin, Count: 2},
		{Kind: KindSLAViolationMax, Frac: 0.01},
		{Kind: KindSatisfactionMin, Frac: 0.99},
		{Kind: KindEnergyBelow, KWh: 100},
	}
	for _, a := range good {
		if err := a.Validate(); err != nil {
			t.Errorf("%v rejected: %v", a, err)
		}
	}
	bad := []Assertion{
		{Kind: "always-green"},
		{Kind: KindNoStrandedVM, Over: -time.Second},
		{Kind: KindNoStrandedVM, From: 2 * time.Hour, Until: time.Hour},
		{Kind: KindPowerBelow},
		{Kind: KindActiveHostsMin},
		{Kind: KindSLAViolationMax, Frac: 1.5},
		{Kind: KindSatisfactionMin, Frac: -0.1},
		{Kind: KindEnergyBelow},
	}
	for _, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("%+v accepted", a)
		}
	}
}

func TestAssertionContinuousAndLimit(t *testing.T) {
	cont := map[string]bool{
		KindNoStrandedVM:    true,
		KindPowerBelow:      true,
		KindNoPendingVM:     true,
		KindActiveHostsMin:  true,
		KindSLAViolationMax: false,
		KindSatisfactionMin: false,
		KindEnergyBelow:     false,
	}
	for kind, want := range cont {
		if got := (Assertion{Kind: kind}).Continuous(); got != want {
			t.Errorf("Continuous(%s) = %v, want %v", kind, got, want)
		}
	}
	a := Assertion{Kind: KindPowerBelow, Watts: 1234}
	if a.Limit() != 1234 {
		t.Fatalf("Limit = %v", a.Limit())
	}
	if got := a.String(); !strings.Contains(got, "1234") {
		t.Fatalf("String() = %q misses bound", got)
	}
	withGrace := Assertion{Kind: KindNoStrandedVM, Over: 10 * time.Minute}
	if got := withGrace.String(); !strings.Contains(got, "over 10m") {
		t.Fatalf("String() = %q misses grace", got)
	}
}
