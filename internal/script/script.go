// Package script defines the scenario event DSL and assertion
// grammar: timed operator/chaos actions ("at 2h, crash host-17") and
// run predicates ("power stays below 90 kW") that scenario files and
// the chaos pattern generators both compile down to. The types here
// are pure data plus validation — the session layer schedules events
// on the engine and evaluates assertions against cluster telemetry,
// and internal/chaos emits event scripts from named patterns — so the
// package depends on nothing but the standard library and can be
// imported from every layer without cycles.
//
// Determinism rules: an event script is applied by scheduling one
// engine event per entry at its At offset, so two runs of the same
// (scenario, script, seed) are byte-identical; an empty script
// schedules nothing and leaves the run byte-identical to a script-free
// build (dormancy-by-construction). Events that need a seed-driven
// subsystem (fault-rate, wake-fail need the fault injector;
// ctrl-degrade, ctrl-partition need the control plane) statically
// require the scenario to enable that subsystem, so the script layer
// never constructs one — the dormancy contracts of internal/faults and
// internal/ctrlplane stay intact.
package script

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Actions an event script can perform.
const (
	// ActionCrash crashes the target host(s); VMs freeze in place until
	// the repair completes (Repair, default 10 minutes).
	ActionCrash = "crash"
	// ActionMaintenance drains the target host(s) and holds them out of
	// service; ActionMaintenanceEnd returns them.
	ActionMaintenance    = "maintenance"
	ActionMaintenanceEnd = "maintenance-end"
	// ActionPowerCap caps the manager's active-host budget to Watts
	// (0 removes the cap) — the power-feed emergency knob.
	ActionPowerCap = "power-cap"
	// ActionDemandSurge multiplies demand of every VM whose name starts
	// with Fleet ("" = all VMs) by Factor; a positive Duration restores
	// ×1 afterwards.
	ActionDemandSurge = "demand-surge"
	// ActionFaultRate retunes the fault injector to the standard preset
	// at Rate; a positive Duration restores the scenario's base config.
	ActionFaultRate = "fault-rate"
	// ActionWakeFail sets only the wake-failure probability to Prob
	// (flaky-resume bursts); a positive Duration restores the base.
	ActionWakeFail = "wake-fail"
	// ActionCtrlDegrade sets the control plane's delay/jitter/loss to a
	// Preset-shaped mix of Delay and Loss; a positive Duration restores
	// the scenario's base impairment.
	ActionCtrlDegrade = "ctrl-degrade"
	// ActionCtrlPartition drops every command and report leg for
	// Duration (required), then restores the base impairment.
	ActionCtrlPartition = "ctrl-partition"
)

// Event is one timed action in a scenario's event script. Which fields
// matter depends on Action; Validate rejects combinations that make no
// sense. Host ranges are 1-based and inclusive: Host alone targets one
// host, Host..HostTo a contiguous range.
type Event struct {
	// At is the action's offset from the start of the run.
	At time.Duration
	// Action selects what happens (one of the Action* constants).
	Action string

	// Host and HostTo target crash/maintenance actions (HostTo 0 means
	// just Host).
	Host   int
	HostTo int
	// Repair is the crash repair delay (default 10 minutes).
	Repair time.Duration

	// Duration bounds reversible actions (surge, fault retune,
	// degrade, partition): the pre-event state is restored at
	// At+Duration. Zero means the change persists (except partition,
	// which requires a duration).
	Duration time.Duration

	// Factor and Fleet parameterize demand-surge.
	Factor float64
	Fleet  string

	// Watts parameterizes power-cap (0 = uncap).
	Watts float64

	// Rate parameterizes fault-rate, Prob wake-fail.
	Rate float64
	Prob float64

	// Delay and Loss parameterize ctrl-degrade.
	Delay time.Duration
	Loss  float64
}

// hostRange returns the event's normalized inclusive host range.
func (e Event) hostRange() (lo, hi int) {
	lo, hi = e.Host, e.HostTo
	if hi == 0 {
		hi = lo
	}
	return lo, hi
}

// HostLo and HostHi expose the normalized inclusive target range.
func (e Event) HostLo() int { lo, _ := e.hostRange(); return lo }
func (e Event) HostHi() int { _, hi := e.hostRange(); return hi }

// NeedsFaults reports whether applying the event requires a
// constructed fault injector (an enabled faults config).
func (e Event) NeedsFaults() bool {
	return e.Action == ActionFaultRate || e.Action == ActionWakeFail
}

// NeedsCtrlPlane reports whether applying the event requires a
// constructed control plane (an enabled ctrlplane config).
func (e Event) NeedsCtrlPlane() bool {
	return e.Action == ActionCtrlDegrade || e.Action == ActionCtrlPartition
}

// ScalesDemand reports whether the event rescales VM demand at
// runtime — the signal that disables the manager's lazy forecast
// replay, which assumes demand is a pure function of the trace
// schedule.
func (e Event) ScalesDemand() bool { return e.Action == ActionDemandSurge }

// Validate checks the event against a fleet of the given size.
func (e Event) Validate(hosts int) error {
	if e.At < 0 {
		return fmt.Errorf("script: event at %v is before the start", e.At)
	}
	if e.Duration < 0 {
		return fmt.Errorf("script: %s has negative duration %v", e.Action, e.Duration)
	}
	checkRange := func() error {
		lo, hi := e.hostRange()
		if lo < 1 || hi < lo || hi > hosts {
			return fmt.Errorf("script: %s targets hosts %d..%d outside fleet 1..%d",
				e.Action, lo, hi, hosts)
		}
		return nil
	}
	switch e.Action {
	case ActionCrash:
		if e.Repair < 0 {
			return fmt.Errorf("script: crash has negative repair %v", e.Repair)
		}
		return checkRange()
	case ActionMaintenance, ActionMaintenanceEnd:
		return checkRange()
	case ActionPowerCap:
		if e.Watts < 0 {
			return fmt.Errorf("script: power-cap has negative watts %v", e.Watts)
		}
	case ActionDemandSurge:
		if e.Factor <= 0 {
			return fmt.Errorf("script: demand-surge needs factor > 0, got %v", e.Factor)
		}
	case ActionFaultRate:
		if e.Rate < 0 || e.Rate > 1 {
			return fmt.Errorf("script: fault-rate %v outside [0,1]", e.Rate)
		}
	case ActionWakeFail:
		if e.Prob < 0 || e.Prob > 1 {
			return fmt.Errorf("script: wake-fail probability %v outside [0,1]", e.Prob)
		}
	case ActionCtrlDegrade:
		if e.Delay < 0 {
			return fmt.Errorf("script: ctrl-degrade has negative delay %v", e.Delay)
		}
		if e.Loss < 0 || e.Loss > 1 {
			return fmt.Errorf("script: ctrl-degrade loss %v outside [0,1]", e.Loss)
		}
	case ActionCtrlPartition:
		if e.Duration <= 0 {
			return fmt.Errorf("script: ctrl-partition needs a positive duration")
		}
	default:
		return fmt.Errorf("script: unknown action %q", e.Action)
	}
	return nil
}

// String renders the event for reports and error messages.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v %s", e.At, e.Action)
	switch e.Action {
	case ActionCrash, ActionMaintenance, ActionMaintenanceEnd:
		lo, hi := e.hostRange()
		if lo == hi {
			fmt.Fprintf(&b, " host-%d", lo)
		} else {
			fmt.Fprintf(&b, " host-%d..%d", lo, hi)
		}
	case ActionPowerCap:
		fmt.Fprintf(&b, " %.0fW", e.Watts)
	case ActionDemandSurge:
		fmt.Fprintf(&b, " ×%g fleet=%q", e.Factor, e.Fleet)
	case ActionFaultRate:
		fmt.Fprintf(&b, " rate=%g", e.Rate)
	case ActionWakeFail:
		fmt.Fprintf(&b, " prob=%g", e.Prob)
	case ActionCtrlDegrade:
		fmt.Fprintf(&b, " delay=%v loss=%g", e.Delay, e.Loss)
	}
	if e.Duration > 0 {
		fmt.Fprintf(&b, " for %v", e.Duration)
	}
	return b.String()
}

// ParseTarget parses a host target: "host-17" is one host, and
// "host-3..7" the inclusive range 3..7. Host IDs are 1-based.
func ParseTarget(s string) (lo, hi int, err error) {
	const prefix = "host-"
	if !strings.HasPrefix(s, prefix) {
		return 0, 0, fmt.Errorf("script: target %q does not start with %q", s, prefix)
	}
	body := s[len(prefix):]
	loStr, hiStr, ranged := strings.Cut(body, "..")
	if lo, err = strconv.Atoi(loStr); err != nil {
		return 0, 0, fmt.Errorf("script: bad target %q: %v", s, err)
	}
	if !ranged {
		return lo, lo, nil
	}
	if hi, err = strconv.Atoi(hiStr); err != nil {
		return 0, 0, fmt.Errorf("script: bad target range %q: %v", s, err)
	}
	if hi < lo {
		return 0, 0, fmt.Errorf("script: empty target range %q", s)
	}
	return lo, hi, nil
}

// Assertion kinds. Continuous kinds are checked on every evaluation
// tick; final kinds once, against the finished run's aggregates.
const (
	// KindNoStrandedVM (continuous): no VM stays frozen on a crashed
	// host for longer than Over.
	KindNoStrandedVM = "no-stranded-vm"
	// KindPowerBelow (continuous): cluster power stays at or below
	// Watts (sustained past Over before it counts).
	KindPowerBelow = "power-below"
	// KindNoPendingVM (continuous): no VM waits unplaced longer than
	// Over.
	KindNoPendingVM = "no-pending-vm"
	// KindActiveHostsMin (continuous): at least Count hosts stay
	// available (sustained past Over before it counts).
	KindActiveHostsMin = "active-hosts-min"
	// KindSLAViolationMax (final): the run's violation fraction stays
	// at or below Frac.
	KindSLAViolationMax = "sla-violation-max"
	// KindSatisfactionMin (final): the run's satisfaction stays at or
	// above Frac.
	KindSatisfactionMin = "satisfaction-min"
	// KindEnergyBelow (final): the run's total energy stays at or
	// below KWh.
	KindEnergyBelow = "energy-below"
)

// Assertion is one predicate a scenario must satisfy. Continuous
// assertions are evaluated against every evaluation tick's cluster
// aggregates; a violation latches the first time the condition has
// held continuously for Over (0 = instantly) inside the [From, Until]
// window (Until 0 = the horizon). Final assertions are checked once
// against the Result.
type Assertion struct {
	// Kind selects the predicate (one of the Kind* constants).
	Kind string
	// Over is the grace: how long the bad condition must persist
	// before a continuous assertion is violated.
	Over time.Duration
	// From and Until bound when a continuous assertion is active
	// (Until 0 = until the horizon).
	From  time.Duration
	Until time.Duration

	// Watts bounds power-below; Frac bounds sla-violation-max and
	// satisfaction-min; Count bounds active-hosts-min; KWh bounds
	// energy-below.
	Watts float64
	Frac  float64
	Count int
	KWh   float64
}

// Continuous reports whether the assertion is checked per tick (as
// opposed to once, at the end of the run).
func (a Assertion) Continuous() bool {
	switch a.Kind {
	case KindNoStrandedVM, KindPowerBelow, KindNoPendingVM, KindActiveHostsMin:
		return true
	}
	return false
}

// Limit returns the assertion's numeric bound, for reporting.
func (a Assertion) Limit() float64 {
	switch a.Kind {
	case KindPowerBelow:
		return a.Watts
	case KindSLAViolationMax, KindSatisfactionMin:
		return a.Frac
	case KindActiveHostsMin:
		return float64(a.Count)
	case KindEnergyBelow:
		return a.KWh
	}
	return 0
}

// Validate checks the assertion.
func (a Assertion) Validate() error {
	if a.Over < 0 {
		return fmt.Errorf("script: assertion %s has negative grace %v", a.Kind, a.Over)
	}
	if a.From < 0 || a.Until < 0 || (a.Until > 0 && a.Until < a.From) {
		return fmt.Errorf("script: assertion %s has an empty window [%v, %v]", a.Kind, a.From, a.Until)
	}
	switch a.Kind {
	case KindNoStrandedVM, KindNoPendingVM:
	case KindPowerBelow:
		if a.Watts <= 0 {
			return fmt.Errorf("script: power-below needs watts > 0")
		}
	case KindActiveHostsMin:
		if a.Count <= 0 {
			return fmt.Errorf("script: active-hosts-min needs count > 0")
		}
	case KindSLAViolationMax, KindSatisfactionMin:
		if a.Frac < 0 || a.Frac > 1 {
			return fmt.Errorf("script: %s fraction %v outside [0,1]", a.Kind, a.Frac)
		}
	case KindEnergyBelow:
		if a.KWh <= 0 {
			return fmt.Errorf("script: energy-below needs kwh > 0")
		}
	default:
		return fmt.Errorf("script: unknown assertion kind %q", a.Kind)
	}
	return nil
}

// String renders the assertion for verdict lines.
func (a Assertion) String() string {
	var b strings.Builder
	b.WriteString(a.Kind)
	switch a.Kind {
	case KindPowerBelow:
		fmt.Fprintf(&b, "[%.0f W]", a.Watts)
	case KindSLAViolationMax, KindSatisfactionMin:
		fmt.Fprintf(&b, "[%g]", a.Frac)
	case KindActiveHostsMin:
		fmt.Fprintf(&b, "[%d]", a.Count)
	case KindEnergyBelow:
		fmt.Fprintf(&b, "[%g kWh]", a.KWh)
	}
	if a.Over > 0 {
		fmt.Fprintf(&b, " over %v", a.Over)
	}
	return b.String()
}
