package host

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"agilepower/internal/power"
	"agilepower/internal/sim"
	"agilepower/internal/vm"
	"agilepower/internal/workload"
)

func testVM(t *testing.T, id vm.ID, vcpus, memGB, demand float64) *vm.VM {
	t.Helper()
	v, err := vm.New(id, vm.Config{
		VCPUs:    vcpus,
		MemoryGB: memGB,
		Trace:    workload.Constant(demand),
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// demandsFor builds a demand slice parallel to h.VMs() from an
// ID-keyed map, so tests can state demands by VM ID while exercising
// the slice-based Schedule API.
func demandsFor(h *Host, byID map[vm.ID]float64) []float64 {
	out := make([]float64, h.NumVMs())
	for i, id := range h.VMs() {
		out[i] = byID[id]
	}
	return out
}

func newTestHost(t *testing.T) (*sim.Engine, *Host) {
	t.Helper()
	eng := sim.NewEngine(1)
	h, err := New(eng, 1, Config{Cores: 16, MemoryGB: 64})
	if err != nil {
		t.Fatal(err)
	}
	return eng, h
}

func TestNewValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	if _, err := New(eng, 1, Config{Cores: 0, MemoryGB: 64}); err == nil {
		t.Error("accepted zero cores")
	}
	if _, err := New(eng, 1, Config{Cores: 16, MemoryGB: 0}); err == nil {
		t.Error("accepted zero memory")
	}
	bad := power.DefaultProfile()
	bad.PeakPower = -1
	if _, err := New(eng, 1, Config{Cores: 16, MemoryGB: 64, Profile: bad}); err == nil {
		t.Error("accepted invalid profile")
	}
}

func TestNewDefaults(t *testing.T) {
	eng := sim.NewEngine(1)
	h, err := New(eng, 3, Config{Cores: 8, MemoryGB: 32})
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() != "host-3" {
		t.Fatalf("default name = %q", h.Name())
	}
	if h.Machine().Profile().Name != power.DefaultProfile().Name {
		t.Fatal("default profile not applied")
	}
	if !h.Available() || !h.Empty() {
		t.Fatal("new host should be available and empty")
	}
}

func TestPlaceRemoveMemoryAccounting(t *testing.T) {
	_, h := newTestHost(t)
	v1 := testVM(t, 1, 4, 24, 1)
	v2 := testVM(t, 2, 4, 24, 1)
	v3 := testVM(t, 3, 4, 24, 1)
	if err := h.Place(v1); err != nil {
		t.Fatal(err)
	}
	if err := h.Place(v2); err != nil {
		t.Fatal(err)
	}
	if h.MemFreeGB() != 16 {
		t.Fatalf("free mem = %v, want 16", h.MemFreeGB())
	}
	// Third 24GB VM exceeds 64GB capacity.
	if err := h.Place(v3); err == nil {
		t.Fatal("overcommitted memory accepted")
	}
	if err := h.Remove(v1.ID()); err != nil {
		t.Fatal(err)
	}
	if err := h.Place(v3); err != nil {
		t.Fatalf("place after remove failed: %v", err)
	}
	if h.NumVMs() != 2 {
		t.Fatalf("NumVMs = %d", h.NumVMs())
	}
}

func TestPlaceDuplicateRejected(t *testing.T) {
	_, h := newTestHost(t)
	v := testVM(t, 1, 4, 8, 1)
	if err := h.Place(v); err != nil {
		t.Fatal(err)
	}
	if err := h.Place(v); err == nil {
		t.Fatal("duplicate placement accepted")
	}
}

func TestRemoveMissingRejected(t *testing.T) {
	_, h := newTestHost(t)
	if err := h.Remove(99); err == nil {
		t.Fatal("removing absent VM succeeded")
	}
}

func TestVMsSortedAndGet(t *testing.T) {
	_, h := newTestHost(t)
	for _, id := range []vm.ID{5, 2, 9} {
		if err := h.Place(testVM(t, id, 1, 1, 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	ids := h.VMs()
	if len(ids) != 3 || ids[0] != 2 || ids[1] != 5 || ids[2] != 9 {
		t.Fatalf("VMs = %v, want sorted [2 5 9]", ids)
	}
	if _, ok := h.Get(5); !ok {
		t.Fatal("Get(5) missed")
	}
	if _, ok := h.Get(7); ok {
		t.Fatal("Get(7) hit")
	}
}

func TestReservations(t *testing.T) {
	_, h := newTestHost(t)
	if err := h.Reserve(1, 40); err != nil {
		t.Fatal(err)
	}
	if h.Empty() {
		t.Fatal("host with reservation reported empty")
	}
	if err := h.Reserve(1, 10); err == nil {
		t.Fatal("duplicate reservation accepted")
	}
	// 40 reserved of 64: a 30GB reservation must fail.
	if err := h.Reserve(2, 30); err == nil {
		t.Fatal("over-reservation accepted")
	}
	if h.MemFreeGB() != 24 {
		t.Fatalf("free = %v, want 24", h.MemFreeGB())
	}
	h.ReleaseReservation(1)
	if !h.Empty() || h.MemFreeGB() != 64 {
		t.Fatal("reservation not released")
	}
}

func TestScheduleUndersubscribed(t *testing.T) {
	_, h := newTestHost(t)
	h.Place(testVM(t, 1, 4, 8, 0))
	h.Place(testVM(t, 2, 4, 8, 0))
	alloc := h.Schedule(demandsFor(h, map[vm.ID]float64{1: 3, 2: 5}), 0)
	if alloc.Delivered(1) != 3 || alloc.Delivered(2) != 5 {
		t.Fatalf("delivered = %v / %v", alloc.Delivered(1), alloc.Delivered(2))
	}
	if alloc.TotalDelivered != 8 || alloc.TotalDemand != 8 {
		t.Fatalf("totals = %v/%v", alloc.TotalDelivered, alloc.TotalDemand)
	}
	if alloc.Utilization != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", alloc.Utilization)
	}
}

func TestScheduleOversubscribedProportional(t *testing.T) {
	_, h := newTestHost(t)
	h.Place(testVM(t, 1, 16, 8, 0))
	h.Place(testVM(t, 2, 16, 8, 0))
	// Demand 24 on 16 cores: each gets 2/3 of its ask.
	alloc := h.Schedule(demandsFor(h, map[vm.ID]float64{1: 16, 2: 8}), 0)
	if math.Abs(alloc.Delivered(1)-16.0*2/3) > 1e-9 {
		t.Fatalf("vm1 delivered = %v", alloc.Delivered(1))
	}
	if math.Abs(alloc.Delivered(2)-8.0*2/3) > 1e-9 {
		t.Fatalf("vm2 delivered = %v", alloc.Delivered(2))
	}
	if alloc.Utilization != 1 {
		t.Fatalf("utilization = %v, want 1", alloc.Utilization)
	}
}

func TestScheduleOverheadPreempts(t *testing.T) {
	_, h := newTestHost(t)
	h.Place(testVM(t, 1, 16, 8, 0))
	// 16 demanded, 2 cores of migration overhead: VM gets 14.
	alloc := h.Schedule(demandsFor(h, map[vm.ID]float64{1: 16}), 2)
	if math.Abs(alloc.Delivered(1)-14) > 1e-9 {
		t.Fatalf("delivered = %v, want 14", alloc.Delivered(1))
	}
	if alloc.Utilization != 1 {
		t.Fatalf("utilization = %v", alloc.Utilization)
	}
}

func TestScheduleUnavailableHostDeliversNothing(t *testing.T) {
	eng, h := newTestHost(t)
	h.Place(testVM(t, 1, 4, 8, 0))
	if err := h.Machine().Sleep(power.S3); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(time.Second) // mid-transition
	alloc := h.Schedule(demandsFor(h, map[vm.ID]float64{1: 4}), 0)
	if alloc.Delivered(1) != 0 || alloc.TotalDelivered != 0 {
		t.Fatalf("sleeping host delivered %v", alloc.Delivered(1))
	}
	if alloc.TotalDemand != 4 {
		t.Fatalf("demand should still be recorded: %v", alloc.TotalDemand)
	}
}

func TestScheduleClampsInputs(t *testing.T) {
	_, h := newTestHost(t)
	h.Place(testVM(t, 1, 4, 8, 0))
	alloc := h.Schedule(demandsFor(h, map[vm.ID]float64{1: -5}), -3)
	if alloc.Delivered(1) != 0 || alloc.TotalDemand != 0 {
		t.Fatalf("negative demand not clamped: %+v", alloc)
	}
	// Overhead beyond capacity starves VMs entirely but does not go
	// negative.
	alloc = h.Schedule(demandsFor(h, map[vm.ID]float64{1: 4}), 100)
	if alloc.Delivered(1) != 0 {
		t.Fatalf("delivered %v with saturating overhead", alloc.Delivered(1))
	}
	if alloc.Utilization != 1 {
		t.Fatalf("utilization = %v", alloc.Utilization)
	}
}

func TestScheduleMissingDemandDefaultsZero(t *testing.T) {
	_, h := newTestHost(t)
	h.Place(testVM(t, 1, 4, 8, 0))
	alloc := h.Schedule(demandsFor(h, map[vm.ID]float64{}), 0)
	if alloc.Delivered(1) != 0 {
		t.Fatalf("delivered = %v for missing demand", alloc.Delivered(1))
	}
}

// Property: the scheduler never delivers more than demanded per VM,
// never exceeds capacity in total, and is work-conserving (delivers
// min(demand, available) in aggregate).
func TestScheduleProperty(t *testing.T) {
	eng := sim.NewEngine(1)
	f := func(d1Raw, d2Raw, d3Raw, ovRaw uint8) bool {
		h, err := New(eng, 1, Config{Cores: 8, MemoryGB: 64})
		if err != nil {
			return false
		}
		for i := vm.ID(1); i <= 3; i++ {
			v, _ := vm.New(i, vm.Config{VCPUs: 8, MemoryGB: 4, Trace: workload.Constant(1)})
			if err := h.Place(v); err != nil {
				return false
			}
		}
		demands := []float64{
			float64(d1Raw) / 16,
			float64(d2Raw) / 16,
			float64(d3Raw) / 16,
		}
		overhead := float64(ovRaw) / 64
		alloc := h.Schedule(demands, overhead)
		total := 0.0
		for i := range demands {
			got := alloc.DeliveredAt(i)
			if got > demands[i]+1e-9 || got < 0 {
				return false
			}
			total += got
		}
		if total > h.Cores()-overhead+1e-9 {
			return false
		}
		available := h.Cores() - overhead
		wantTotal := alloc.TotalDemand
		if wantTotal > available {
			wantTotal = available
		}
		return math.Abs(total-wantTotal) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
