package host

import (
	"math"
	"testing"
	"testing/quick"

	"agilepower/internal/sim"
	"agilepower/internal/vm"
	"agilepower/internal/workload"
)

func sharesVM(t *testing.T, id vm.ID, shares int) *vm.VM {
	t.Helper()
	v, err := vm.New(id, vm.Config{
		VCPUs:    16,
		MemoryGB: 8,
		Trace:    workload.Constant(1),
		Shares:   shares,
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestSharesWeightContention(t *testing.T) {
	_, h := newTestHost(t)
	h.Place(sharesVM(t, 1, 2000)) // high priority
	h.Place(sharesVM(t, 2, 1000)) // normal
	// Both demand 12 on a 16-core host: weighted slices 2:1.
	alloc := h.Schedule(demandsFor(h, map[vm.ID]float64{1: 12, 2: 12}), 0)
	if math.Abs(alloc.Delivered(1)-16.0*2/3) > 1e-9 {
		t.Fatalf("high-shares VM got %v, want %v", alloc.Delivered(1), 16.0*2/3)
	}
	if math.Abs(alloc.Delivered(2)-16.0*1/3) > 1e-9 {
		t.Fatalf("normal VM got %v, want %v", alloc.Delivered(2), 16.0/3)
	}
}

func TestSharesWaterFillingCapsAtDemand(t *testing.T) {
	_, h := newTestHost(t)
	h.Place(sharesVM(t, 1, 8000)) // huge priority, small ask
	h.Place(sharesVM(t, 2, 1000))
	h.Place(sharesVM(t, 3, 1000))
	// VM1 asks 2; its weighted slice would far exceed that. Surplus
	// goes to the others.
	alloc := h.Schedule(demandsFor(h, map[vm.ID]float64{1: 2, 2: 12, 3: 12}), 0)
	if alloc.Delivered(1) != 2 {
		t.Fatalf("capped VM got %v, want its full ask 2", alloc.Delivered(1))
	}
	// Remaining 14 split evenly (equal demand × equal shares).
	if math.Abs(alloc.Delivered(2)-7) > 1e-9 || math.Abs(alloc.Delivered(3)-7) > 1e-9 {
		t.Fatalf("redistribution wrong: %v / %v", alloc.Delivered(2), alloc.Delivered(3))
	}
	if math.Abs(alloc.TotalDelivered-16) > 1e-9 {
		t.Fatalf("not work-conserving: delivered %v of 16", alloc.TotalDelivered)
	}
}

func TestEqualSharesMatchesProportional(t *testing.T) {
	// With default shares the scheduler must reduce exactly to
	// demand-proportional scaling (the original model).
	_, h := newTestHost(t)
	h.Place(testVM(t, 1, 16, 8, 0))
	h.Place(testVM(t, 2, 16, 8, 0))
	alloc := h.Schedule(demandsFor(h, map[vm.ID]float64{1: 16, 2: 8}), 0)
	if math.Abs(alloc.Delivered(1)-16.0*2/3) > 1e-9 || math.Abs(alloc.Delivered(2)-8.0*2/3) > 1e-9 {
		t.Fatalf("equal-shares allocation diverged: %v / %v", alloc.Delivered(1), alloc.Delivered(2))
	}
}

// Property: for any demands and shares, the scheduler never delivers
// more than demanded per VM, never exceeds capacity in total, and is
// work-conserving (min(total demand, available) is delivered).
func TestSharesScheduleProperty(t *testing.T) {
	eng := sim.NewEngine(1)
	f := func(d1, d2, d3 uint8, s1, s2, s3 uint16, ovRaw uint8) bool {
		h, err := New(eng, 1, Config{Cores: 8, MemoryGB: 64})
		if err != nil {
			return false
		}
		shares := []int{int(s1%4000) + 1, int(s2%4000) + 1, int(s3%4000) + 1}
		for i := vm.ID(1); i <= 3; i++ {
			v, err := vm.New(i, vm.Config{
				VCPUs: 8, MemoryGB: 4,
				Trace:  workload.Constant(1),
				Shares: shares[i-1],
			})
			if err != nil {
				return false
			}
			if err := h.Place(v); err != nil {
				return false
			}
		}
		demands := []float64{
			float64(d1) / 32,
			float64(d2) / 32,
			float64(d3) / 32,
		}
		overhead := float64(ovRaw) / 64
		alloc := h.Schedule(demands, overhead)
		total := 0.0
		for i := range demands {
			got := alloc.DeliveredAt(i)
			if got > demands[i]+1e-9 || got < -1e-12 {
				return false
			}
			total += got
		}
		available := h.Cores() - overhead
		if total > available+1e-9 {
			return false
		}
		want := alloc.TotalDemand
		if want > available {
			want = available
		}
		return math.Abs(total-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestSharesValidation(t *testing.T) {
	_, err := vm.New(1, vm.Config{VCPUs: 1, MemoryGB: 1, Trace: workload.Constant(1), Shares: -5})
	if err == nil {
		t.Fatal("negative shares accepted")
	}
	v, err := vm.New(1, vm.Config{VCPUs: 1, MemoryGB: 1, Trace: workload.Constant(1)})
	if err != nil {
		t.Fatal(err)
	}
	if v.Shares() != 1000 {
		t.Fatalf("default shares = %d", v.Shares())
	}
}
