package host

import (
	"math"
	"testing"

	"agilepower/internal/vm"
	"agilepower/internal/workload"
)

func resVM(t *testing.T, id vm.ID, reserved, limit float64) *vm.VM {
	t.Helper()
	v, err := vm.New(id, vm.Config{
		VCPUs:         8,
		MemoryGB:      8,
		Trace:         workload.Constant(1),
		ReservedCores: reserved,
		LimitCores:    limit,
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestReservationValidation(t *testing.T) {
	if _, err := vm.New(1, vm.Config{VCPUs: 4, MemoryGB: 1, Trace: workload.Constant(1), ReservedCores: 5}); err == nil {
		t.Error("reservation above vcpus accepted")
	}
	if _, err := vm.New(1, vm.Config{VCPUs: 4, MemoryGB: 1, Trace: workload.Constant(1), ReservedCores: -1}); err == nil {
		t.Error("negative reservation accepted")
	}
	if _, err := vm.New(1, vm.Config{VCPUs: 4, MemoryGB: 1, Trace: workload.Constant(1), LimitCores: 5}); err == nil {
		t.Error("limit above vcpus accepted")
	}
	if _, err := vm.New(1, vm.Config{VCPUs: 4, MemoryGB: 1, Trace: workload.Constant(1), ReservedCores: 3, LimitCores: 2}); err == nil {
		t.Error("reservation above limit accepted")
	}
}

func TestLimitCapsDemand(t *testing.T) {
	v, err := vm.New(1, vm.Config{VCPUs: 8, MemoryGB: 1, Trace: workload.Constant(6), LimitCores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Demand(0); got != 2 {
		t.Fatalf("limited demand = %v, want 2", got)
	}
}

func TestReservationAdmissionControl(t *testing.T) {
	_, h := newTestHost(t) // 16 cores
	if err := h.Place(resVM(t, 1, 8, 0)); err != nil {
		t.Fatal(err)
	}
	if err := h.Place(resVM(t, 2, 8, 0)); err != nil {
		t.Fatal(err)
	}
	if h.CPUReservedCores() != 16 {
		t.Fatalf("reserved = %v", h.CPUReservedCores())
	}
	// A third reservation exceeds 16 cores.
	if err := h.Place(resVM(t, 3, 1, 0)); err == nil {
		t.Fatal("overcommitted reservations accepted")
	}
	// Unreserved VMs still land (CPU oversubscription is allowed).
	if err := h.Place(resVM(t, 4, 0, 0)); err != nil {
		t.Fatalf("unreserved VM rejected: %v", err)
	}
	// Removal releases the budget.
	if err := h.Remove(1); err != nil {
		t.Fatal(err)
	}
	if err := h.Place(resVM(t, 3, 1, 0)); err != nil {
		t.Fatalf("reservation budget not released: %v", err)
	}
}

func TestReservationHonoredUnderContention(t *testing.T) {
	_, h := newTestHost(t)     // 16 cores
	h.Place(resVM(t, 1, 6, 0)) // guaranteed 6
	h.Place(resVM(t, 2, 0, 0))
	h.Place(resVM(t, 3, 0, 0))
	// All demand 8: total 24 on 16 cores. VM1 gets its 6 plus a share
	// of the rest; VMs 2-3 split what remains.
	alloc := h.Schedule(demandsFor(h, map[vm.ID]float64{1: 8, 2: 8, 3: 8}), 0)
	if alloc.Delivered(1) < 6 {
		t.Fatalf("reserved VM got %v, guaranteed 6", alloc.Delivered(1))
	}
	if math.Abs(alloc.TotalDelivered-16) > 1e-9 {
		t.Fatalf("not work-conserving: %v", alloc.TotalDelivered)
	}
	// Equal residual demands and shares → VMs 2,3 equal.
	if math.Abs(alloc.Delivered(2)-alloc.Delivered(3)) > 1e-9 {
		t.Fatalf("unreserved peers diverged: %v vs %v", alloc.Delivered(2), alloc.Delivered(3))
	}
}

func TestReservationCappedAtDemand(t *testing.T) {
	_, h := newTestHost(t)
	h.Place(resVM(t, 1, 8, 0)) // reserves 8 but asks 1
	h.Place(resVM(t, 2, 0, 0))
	alloc := h.Schedule(demandsFor(h, map[vm.ID]float64{1: 1, 2: 20}), 0)
	if alloc.Delivered(1) != 1 {
		t.Fatalf("idle reserved VM got %v, want its ask 1", alloc.Delivered(1))
	}
	// The unused reservation is work-conserving: VM2 gets the rest.
	if math.Abs(alloc.Delivered(2)-15) > 1e-9 {
		t.Fatalf("vm2 got %v, want 15", alloc.Delivered(2))
	}
}

func TestReservationsScaleWhenOverheadSqueezes(t *testing.T) {
	_, h := newTestHost(t) // 16 cores
	h.Place(resVM(t, 1, 8, 0))
	h.Place(resVM(t, 2, 8, 0))
	// 8 cores of migration overhead leave 8 for 16 of reservations:
	// both scale to 4.
	alloc := h.Schedule(demandsFor(h, map[vm.ID]float64{1: 8, 2: 8}), 8)
	if math.Abs(alloc.Delivered(1)-4) > 1e-9 || math.Abs(alloc.Delivered(2)-4) > 1e-9 {
		t.Fatalf("squeezed reservations = %v / %v, want 4 / 4", alloc.Delivered(1), alloc.Delivered(2))
	}
}
