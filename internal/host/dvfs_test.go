package host

import (
	"agilepower/internal/vm"
	"math"
	"testing"
)

func TestHostSetFrequencyShrinksCapacity(t *testing.T) {
	_, h := newTestHost(t) // 16 cores
	h.Place(testVM(t, 1, 16, 8, 0))
	if err := h.SetFrequency(0.5); err != nil {
		t.Fatal(err)
	}
	if h.EffectiveCores() != 8 {
		t.Fatalf("effective cores = %v, want 8", h.EffectiveCores())
	}
	// Demand 12 on 8 effective cores: only 8 delivered.
	alloc := h.Schedule(demandsFor(h, map[vm.ID]float64{1: 12}), 0)
	if math.Abs(alloc.Delivered(1)-8) > 1e-9 {
		t.Fatalf("delivered = %v, want 8 at half clock", alloc.Delivered(1))
	}
	// Power utilization is the full-speed fraction: 8/16 = 0.5.
	if alloc.Utilization != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", alloc.Utilization)
	}
}

func TestHostFrequencyBackToFull(t *testing.T) {
	_, h := newTestHost(t)
	h.Place(testVM(t, 1, 16, 8, 0))
	if err := h.SetFrequency(0.5); err != nil {
		t.Fatal(err)
	}
	if err := h.SetFrequency(1); err != nil {
		t.Fatal(err)
	}
	alloc := h.Schedule(demandsFor(h, map[vm.ID]float64{1: 12}), 0)
	if alloc.Delivered(1) != 12 {
		t.Fatalf("delivered = %v after restoring full clock", alloc.Delivered(1))
	}
}

func TestHostFrequencyValidation(t *testing.T) {
	_, h := newTestHost(t)
	if err := h.SetFrequency(0.1); err == nil {
		t.Fatal("accepted frequency below profile minimum")
	}
	if h.Frequency() != 1 {
		t.Fatalf("failed change mutated frequency: %v", h.Frequency())
	}
}
