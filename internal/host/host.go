// Package host models a physical virtualization host: its CPU and
// memory capacity, the VMs placed on it, a work-conserving
// proportional-share CPU scheduler that decides how much of each VM's
// demand is actually delivered, and the platform power state machine
// from internal/power.
package host

import (
	"fmt"
	"sort"

	"agilepower/internal/power"
	"agilepower/internal/sim"
	"agilepower/internal/vm"
)

// ID identifies a host within a cluster.
type ID int

// Config describes a host to create.
type Config struct {
	Name string
	// Cores is CPU capacity in cores.
	Cores float64
	// MemoryGB is RAM capacity.
	MemoryGB float64
	// Profile is the power calibration; nil selects
	// power.DefaultProfile.
	Profile *power.Profile
}

// Host is one physical server.
type Host struct {
	id      ID
	name    string
	cores   float64
	memGB   float64
	machine *power.Machine

	// freq is the DVFS operating point: effective capacity is
	// freq × cores.
	freq float64

	vms      map[vm.ID]*vm.VM
	memUsed  float64
	reserved map[vm.ID]float64 // inbound migration memory reservations
	// cpuReserved sums resident VMs' guaranteed CPU minimums; new
	// placements are admitted only while it fits capacity.
	cpuReserved float64
}

// New validates cfg and builds a host attached to the engine.
func New(eng *sim.Engine, id ID, cfg Config) (*Host, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("host %q: cores %v must be positive", cfg.Name, cfg.Cores)
	}
	if cfg.MemoryGB <= 0 {
		return nil, fmt.Errorf("host %q: memory %v GB must be positive", cfg.Name, cfg.MemoryGB)
	}
	profile := cfg.Profile
	if profile == nil {
		profile = power.DefaultProfile()
	}
	machine, err := power.NewMachine(eng, profile)
	if err != nil {
		return nil, fmt.Errorf("host %q: %w", cfg.Name, err)
	}
	name := cfg.Name
	if name == "" {
		name = fmt.Sprintf("host-%d", id)
	}
	return &Host{
		id:       id,
		name:     name,
		cores:    cfg.Cores,
		memGB:    cfg.MemoryGB,
		freq:     1,
		machine:  machine,
		vms:      make(map[vm.ID]*vm.VM),
		reserved: make(map[vm.ID]float64),
	}, nil
}

// ID returns the host identifier.
func (h *Host) ID() ID { return h.id }

// Name returns the host's display name.
func (h *Host) Name() string { return h.name }

// Cores returns CPU capacity.
func (h *Host) Cores() float64 { return h.cores }

// MemoryGB returns RAM capacity.
func (h *Host) MemoryGB() float64 { return h.memGB }

// Machine returns the power state machine.
func (h *Host) Machine() *power.Machine { return h.machine }

// SetFaultInjector installs a power-transition fault injector on the
// host's machine (nil disables injection — the default).
func (h *Host) SetFaultInjector(f power.FaultInjector) { h.machine.SetFaultInjector(f) }

// Available reports whether the host can serve VMs right now.
func (h *Host) Available() bool { return h.machine.Available() }

// Frequency returns the DVFS operating point.
func (h *Host) Frequency() float64 { return h.freq }

// SetFrequency changes the DVFS operating point: effective CPU
// capacity becomes f × cores and the power machine's dynamic power
// scales accordingly.
func (h *Host) SetFrequency(f float64) error {
	if err := h.machine.SetFrequency(f); err != nil {
		return err
	}
	h.freq = f
	return nil
}

// EffectiveCores returns capacity at the current frequency.
func (h *Host) EffectiveCores() float64 { return h.freq * h.cores }

// VMs returns the IDs of placed VMs in ascending order (deterministic
// iteration for reproducible simulations).
func (h *Host) VMs() []vm.ID {
	ids := make([]vm.ID, 0, len(h.vms))
	for id := range h.vms {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// NumVMs returns the count of placed VMs.
func (h *Host) NumVMs() int { return len(h.vms) }

// Empty reports whether the host has no VMs and no inbound
// reservations — the precondition for parking it.
func (h *Host) Empty() bool { return len(h.vms) == 0 && len(h.reserved) == 0 }

// MemUsedGB returns committed memory including inbound reservations.
func (h *Host) MemUsedGB() float64 {
	total := h.memUsed
	// Sum reservations in key order: map iteration order must not
	// leak into floating-point results.
	ids := make([]vm.ID, 0, len(h.reserved))
	for id := range h.reserved {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		total += h.reserved[id]
	}
	return total
}

// CPUReservedCores returns the sum of resident VMs' guaranteed CPU.
func (h *Host) CPUReservedCores() float64 { return h.cpuReserved }

// MemFreeGB returns uncommitted memory.
func (h *Host) MemFreeGB() float64 { return h.memGB - h.MemUsedGB() }

// CanFit reports whether a VM with memGB of memory fits.
func (h *Host) CanFit(memGB float64) bool { return memGB <= h.MemFreeGB() }

// Place puts the VM on this host. Memory and CPU reservations are
// strictly admission controlled; CPU beyond reservations may be
// oversubscribed (the scheduler then shares it by weight).
func (h *Host) Place(v *vm.VM) error {
	if _, ok := h.vms[v.ID()]; ok {
		return fmt.Errorf("host %s: vm %s already placed", h.name, v.Name())
	}
	if !h.CanFit(v.MemoryGB()) {
		return fmt.Errorf("host %s: no memory for vm %s (%v GB free, %v GB needed)",
			h.name, v.Name(), h.MemFreeGB(), v.MemoryGB())
	}
	if h.cpuReserved+v.ReservedCores() > h.cores+1e-9 {
		return fmt.Errorf("host %s: cpu reservations exhausted for vm %s (%v reserved of %v cores, %v needed)",
			h.name, v.Name(), h.cpuReserved, h.cores, v.ReservedCores())
	}
	h.vms[v.ID()] = v
	h.memUsed += v.MemoryGB()
	h.cpuReserved += v.ReservedCores()
	return nil
}

// Remove takes the VM off this host.
func (h *Host) Remove(id vm.ID) error {
	v, ok := h.vms[id]
	if !ok {
		return fmt.Errorf("host %s: vm %d not placed here", h.name, id)
	}
	delete(h.vms, id)
	h.memUsed -= v.MemoryGB()
	h.cpuReserved -= v.ReservedCores()
	return nil
}

// Get returns a placed VM.
func (h *Host) Get(id vm.ID) (*vm.VM, bool) {
	v, ok := h.vms[id]
	return v, ok
}

// Reserve holds memory for an inbound migration of the VM. The
// reservation converts to a placement via Place after
// ReleaseReservation, or is dropped if the migration is abandoned.
func (h *Host) Reserve(id vm.ID, memGB float64) error {
	if _, ok := h.reserved[id]; ok {
		return fmt.Errorf("host %s: vm %d already reserved", h.name, id)
	}
	if !h.CanFit(memGB) {
		return fmt.Errorf("host %s: no memory to reserve %v GB for vm %d", h.name, memGB, id)
	}
	h.reserved[id] = memGB
	return nil
}

// ReleaseReservation drops an inbound reservation.
func (h *Host) ReleaseReservation(id vm.ID) {
	delete(h.reserved, id)
}

// Allocation is the scheduler's verdict for one interval.
type Allocation struct {
	// Delivered maps each placed VM to the cores it receives.
	Delivered map[vm.ID]float64
	// TotalDemand is the sum of VM demands.
	TotalDemand float64
	// TotalDelivered is the sum of delivered cores.
	TotalDelivered float64
	// Utilization is busy cores (delivered + overhead) over capacity,
	// in [0,1].
	Utilization float64
}

// Schedule runs the weighted proportional-share scheduler: given each
// placed VM's demand and an additional overhead (cores consumed by
// in-flight migrations), it computes what each VM receives. The
// scheduler is work-conserving: if total demand plus overhead fits,
// everyone gets what they asked; otherwise capacity is divided in
// proportion to demand × shares, water-filling so that no VM receives
// more than its demand (hypervisor-style resource shares; with equal
// shares this reduces to plain demand-proportional scaling). Overhead
// is served first, as hypervisor management traffic effectively
// preempts guest CPU.
//
// If the host is not available (asleep or transitioning), every VM
// receives zero.
func (h *Host) Schedule(demands map[vm.ID]float64, overheadCores float64) Allocation {
	alloc := Allocation{Delivered: make(map[vm.ID]float64, len(h.vms))}
	// All iteration is in ascending VM-ID order: floating-point sums
	// must not depend on map iteration order, or identical runs
	// diverge by ULPs.
	ids := h.VMs()
	clean := make(map[vm.ID]float64, len(h.vms))
	for _, id := range ids {
		d := demands[id]
		if d < 0 {
			d = 0
		}
		clean[id] = d
		alloc.TotalDemand += d
	}
	if !h.Available() {
		for _, id := range ids {
			alloc.Delivered[id] = 0
		}
		return alloc
	}
	capacity := h.freq * h.cores
	if overheadCores < 0 {
		overheadCores = 0
	}
	if overheadCores > capacity {
		overheadCores = capacity
	}
	available := capacity - overheadCores

	if alloc.TotalDemand <= available {
		// Undersubscribed: everyone gets their ask.
		for _, id := range ids {
			d := clean[id]
			alloc.Delivered[id] = d
			alloc.TotalDelivered += d
		}
	} else {
		// Phase 0: honour reservations — each VM is guaranteed
		// min(demand, reservation) before shares divide the rest. If
		// migration overhead squeezed capacity below the sum of
		// reservations, they scale down proportionally.
		resWant := make(map[vm.ID]float64, len(clean))
		totalRes := 0.0
		for _, id := range ids {
			d := clean[id]
			r := h.vms[id].ReservedCores()
			if r > d {
				r = d
			}
			resWant[id] = r
			totalRes += r
		}
		resScale := 1.0
		if totalRes > available && totalRes > 0 {
			resScale = available / totalRes
		}
		granted := make(map[vm.ID]float64, len(clean))
		remainingAfterRes := available
		for _, id := range ids {
			g := resWant[id] * resScale
			granted[id] = g
			remainingAfterRes -= g
		}
		// Phase 1+: water-fill the residual demands by shares.
		residual := make(map[vm.ID]float64, len(clean))
		for _, id := range ids {
			residual[id] = clean[id] - granted[id]
		}
		fillByShares(h, ids, residual, remainingAfterRes, granted)
		for _, id := range ids {
			alloc.Delivered[id] = granted[id]
			alloc.TotalDelivered += granted[id]
		}
	}

	// Utilization is the busy fraction of *full-speed* capacity: the
	// power machine scales the dynamic portion by frequency itself.
	busy := alloc.TotalDelivered + overheadCores
	alloc.Utilization = busy / h.cores
	if alloc.Utilization > 1 {
		alloc.Utilization = 1
	}
	return alloc
}

// fillByShares water-fills `remaining` capacity over residual demands
// in proportion to demand × shares, capping each VM at its residual
// and redistributing surplus. Results accumulate into granted. ids
// fixes the iteration order so the arithmetic is deterministic.
func fillByShares(h *Host, ids []vm.ID, residual map[vm.ID]float64, remaining float64, granted map[vm.ID]float64) {
	unsat := make(map[vm.ID]bool, len(residual))
	n := 0
	for _, id := range ids {
		if residual[id] > 1e-12 {
			unsat[id] = true
			n++
		}
	}
	for n > 0 && remaining > 1e-12 {
		totalW := 0.0
		for _, id := range ids {
			if unsat[id] {
				totalW += residual[id] * float64(h.vms[id].Shares())
			}
		}
		if totalW <= 0 {
			break
		}
		capped := false
		for _, id := range ids {
			if !unsat[id] {
				continue
			}
			w := residual[id] * float64(h.vms[id].Shares())
			slice := remaining * w / totalW
			if slice >= residual[id] {
				granted[id] += residual[id]
				remaining -= residual[id]
				residual[id] = 0
				delete(unsat, id)
				n--
				capped = true
			}
		}
		if capped {
			continue
		}
		for _, id := range ids {
			if !unsat[id] {
				continue
			}
			w := residual[id] * float64(h.vms[id].Shares())
			granted[id] += remaining * w / totalW
			delete(unsat, id)
			n--
		}
		remaining = 0
	}
}

// String implements fmt.Stringer.
func (h *Host) String() string {
	return fmt.Sprintf("%s(%gc,%gGB,%v,%d vms)", h.name, h.cores, h.memGB, h.machine.State(), len(h.vms))
}
