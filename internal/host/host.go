// Package host models a physical virtualization host: its CPU and
// memory capacity, the VMs placed on it, a work-conserving
// proportional-share CPU scheduler that decides how much of each VM's
// demand is actually delivered, and the platform power state machine
// from internal/power.
package host

import (
	"fmt"
	"sort"

	"agilepower/internal/power"
	"agilepower/internal/sim"
	"agilepower/internal/vm"
)

// ID identifies a host within a cluster.
type ID int

// Config describes a host to create.
type Config struct {
	Name string
	// Cores is CPU capacity in cores.
	Cores float64
	// MemoryGB is RAM capacity.
	MemoryGB float64
	// Profile is the power calibration; nil selects
	// power.DefaultProfile.
	Profile *power.Profile
}

// reservation is one inbound migration memory hold.
type reservation struct {
	id    vm.ID
	memGB float64
}

// Host is one physical server.
type Host struct {
	id      ID
	name    string
	cores   float64
	memGB   float64
	machine *power.Machine

	// freq is the DVFS operating point: effective capacity is
	// freq × cores.
	freq float64

	// onChange, when non-nil, runs after any change to the host's
	// scheduling inputs made directly on the host rather than through
	// the cluster (today: a DVFS frequency move). Delta evaluation
	// installs it to mark the host dirty.
	onChange func()

	// listener is the closure-free observer: one shared value (the
	// cluster) serves the whole fleet, tagged with this host's ID, so
	// binding callbacks during AddHost or a fleet fork allocates
	// nothing. See SetListener.
	listener Listener

	// res holds resident VMs in ascending ID order — the one canonical
	// iteration order for every scheduler and accounting loop, so
	// floating-point sums never depend on map iteration order. resIDs
	// is the parallel ID view handed out by VMs.
	res    []*vm.VM
	resIDs []vm.ID

	memUsed float64
	// resv holds inbound migration memory reservations in ascending VM
	// ID order (summation order is part of the determinism contract).
	resv []reservation
	// cpuReserved sums resident VMs' guaranteed CPU minimums; new
	// placements are admitted only while it fits capacity.
	cpuReserved float64

	// Scheduler scratch: one reusable Allocation plus working buffers,
	// all sized to the resident count, so the per-tick evaluate path
	// performs zero heap allocations once the buffers have grown to
	// the host's population high-water mark.
	alloc    Allocation
	demands  []float64
	clean    []float64
	resWant  []float64
	granted  []float64
	residual []float64
	unsat    []bool
}

// New validates cfg and builds a host attached to the engine.
func New(eng *sim.Engine, id ID, cfg Config) (*Host, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("host %q: cores %v must be positive", cfg.Name, cfg.Cores)
	}
	if cfg.MemoryGB <= 0 {
		return nil, fmt.Errorf("host %q: memory %v GB must be positive", cfg.Name, cfg.MemoryGB)
	}
	profile := cfg.Profile
	if profile == nil {
		profile = power.DefaultProfile()
	}
	machine, err := power.NewMachine(eng, profile)
	if err != nil {
		return nil, fmt.Errorf("host %q: %w", cfg.Name, err)
	}
	name := cfg.Name
	if name == "" {
		name = fmt.Sprintf("host-%d", id)
	}
	return &Host{
		id:      id,
		name:    name,
		cores:   cfg.Cores,
		memGB:   cfg.MemoryGB,
		freq:    1,
		machine: machine,
	}, nil
}

// CloneFleet copies a pre-Start fleet into hosts attached to eng, in
// three arena allocations (hosts, power machines, resident views)
// instead of per-host allocation loops — the bulk of the snapshot/fork
// layer's setup saving at fleet scale. Resident *vm.VM pointers are
// shared: VMs are immutable after creation, so clones alias them
// freely. The resident slices are capacity-clipped into the arena, so
// a later Place on either side copies-on-grow rather than overwriting
// a sibling's window. Scheduler scratch, callbacks and fault injectors
// are not carried over (the owning cluster re-registers them); a host
// with inbound migration reservations or a transition in flight cannot
// be cloned.
func CloneFleet(eng *sim.Engine, src []*Host) ([]*Host, error) {
	hosts := make([]Host, len(src))
	machines := make([]power.Machine, len(src))
	out := make([]*Host, len(src))
	total := 0
	for _, s := range src {
		total += len(s.res)
	}
	resArena := make([]*vm.VM, total)
	idArena := make([]vm.ID, total)
	off := 0
	for i, s := range src {
		if len(s.resv) != 0 {
			return nil, fmt.Errorf("host %s: cannot clone with inbound reservations", s.name)
		}
		if err := s.machine.CloneInto(&machines[i], eng); err != nil {
			return nil, fmt.Errorf("host %s: %w", s.name, err)
		}
		h := &hosts[i]
		h.id = s.id
		h.name = s.name
		h.cores = s.cores
		h.memGB = s.memGB
		h.machine = &machines[i]
		h.freq = s.freq
		h.memUsed = s.memUsed
		h.cpuReserved = s.cpuReserved
		k := len(s.res)
		h.res = resArena[off : off+k : off+k]
		h.resIDs = idArena[off : off+k : off+k]
		copy(h.res, s.res)
		copy(h.resIDs, s.resIDs)
		off += k
		out[i] = h
	}
	return out, nil
}

// ID returns the host identifier.
func (h *Host) ID() ID { return h.id }

// Name returns the host's display name.
func (h *Host) Name() string { return h.name }

// Cores returns CPU capacity.
func (h *Host) Cores() float64 { return h.cores }

// MemoryGB returns RAM capacity.
func (h *Host) MemoryGB() float64 { return h.memGB }

// Machine returns the power state machine.
func (h *Host) Machine() *power.Machine { return h.machine }

// SetFaultInjector installs a power-transition fault injector on the
// host's machine (nil disables injection — the default).
func (h *Host) SetFaultInjector(f power.FaultInjector) { h.machine.SetFaultInjector(f) }

// Available reports whether the host can serve VMs right now.
func (h *Host) Available() bool { return h.machine.Available() }

// Frequency returns the DVFS operating point.
func (h *Host) Frequency() float64 { return h.freq }

// SetFrequency changes the DVFS operating point: effective CPU
// capacity becomes f × cores and the power machine's dynamic power
// scales accordingly.
func (h *Host) SetFrequency(f float64) error {
	if err := h.machine.SetFrequency(f); err != nil {
		return err
	}
	changed := f != h.freq
	h.freq = f
	if changed {
		if h.onChange != nil {
			h.onChange()
		}
		if h.listener != nil {
			h.listener.HostChanged(h.id)
		}
	}
	return nil
}

// OnChange registers fn to run after any host-local change to the
// scheduling inputs (see the onChange field). One observer only.
func (h *Host) OnChange(fn func()) { h.onChange = fn }

// Listener receives host-identity-tagged notifications: local changes
// to scheduling inputs (the OnChange events) and completed power
// transitions (the machine's OnSettled events). It is the
// allocation-free alternative to per-host closures — a pointer
// converts to this interface without heap allocation, so one listener
// (the owning cluster) binds to an entire fleet for free.
type Listener interface {
	HostChanged(id ID)
	HostSettled(id ID, st power.State)
}

// SetListener registers l as the host's observer and wires the power
// machine's settle notifications through it. One listener only.
func (h *Host) SetListener(l Listener) {
	h.listener = l
	h.machine.OnSettledListener(h)
}

// MachineSettled relays the power machine's completed transition to
// the listener, tagged with this host's identity. It implements
// power.SettleListener; callers never invoke it directly.
func (h *Host) MachineSettled(st power.State) {
	if h.listener != nil {
		h.listener.HostSettled(h.id, st)
	}
}

// EffectiveCores returns capacity at the current frequency.
func (h *Host) EffectiveCores() float64 { return h.freq * h.cores }

// VMs returns the IDs of placed VMs in ascending order (deterministic
// iteration for reproducible simulations). The slice is a cached view
// owned by the host — callers must not mutate or retain it across
// Place/Remove.
func (h *Host) VMs() []vm.ID { return h.resIDs }

// Residents returns the placed VMs in ascending ID order, parallel to
// VMs. Like VMs, the slice is a cached read-only view.
func (h *Host) Residents() []*vm.VM { return h.res }

// NumVMs returns the count of placed VMs.
func (h *Host) NumVMs() int { return len(h.res) }

// Empty reports whether the host has no VMs and no inbound
// reservations — the precondition for parking it.
func (h *Host) Empty() bool { return len(h.res) == 0 && len(h.resv) == 0 }

// MemUsedGB returns committed memory including inbound reservations.
func (h *Host) MemUsedGB() float64 {
	total := h.memUsed
	// Reservations are kept in ascending VM-ID order: the float sum
	// below must be identical from call to call.
	for _, r := range h.resv {
		total += r.memGB
	}
	return total
}

// CPUReservedCores returns the sum of resident VMs' guaranteed CPU.
func (h *Host) CPUReservedCores() float64 { return h.cpuReserved }

// MemFreeGB returns uncommitted memory.
func (h *Host) MemFreeGB() float64 { return h.memGB - h.MemUsedGB() }

// CanFit reports whether a VM with memGB of memory fits.
func (h *Host) CanFit(memGB float64) bool { return memGB <= h.MemFreeGB() }

// residentIndex returns the position of id in the sorted resident
// slice and whether it is present.
func (h *Host) residentIndex(id vm.ID) (int, bool) {
	i := sort.Search(len(h.res), func(i int) bool { return h.res[i].ID() >= id })
	return i, i < len(h.res) && h.res[i].ID() == id
}

// Place puts the VM on this host. Memory and CPU reservations are
// strictly admission controlled; CPU beyond reservations may be
// oversubscribed (the scheduler then shares it by weight).
func (h *Host) Place(v *vm.VM) error {
	i, ok := h.residentIndex(v.ID())
	if ok {
		return fmt.Errorf("host %s: vm %s already placed", h.name, v.Name())
	}
	if !h.CanFit(v.MemoryGB()) {
		return fmt.Errorf("host %s: no memory for vm %s (%v GB free, %v GB needed)",
			h.name, v.Name(), h.MemFreeGB(), v.MemoryGB())
	}
	if h.cpuReserved+v.ReservedCores() > h.cores+1e-9 {
		return fmt.Errorf("host %s: cpu reservations exhausted for vm %s (%v reserved of %v cores, %v needed)",
			h.name, v.Name(), h.cpuReserved, h.cores, v.ReservedCores())
	}
	h.res = append(h.res, nil)
	copy(h.res[i+1:], h.res[i:])
	h.res[i] = v
	h.resIDs = append(h.resIDs, 0)
	copy(h.resIDs[i+1:], h.resIDs[i:])
	h.resIDs[i] = v.ID()
	h.memUsed += v.MemoryGB()
	h.cpuReserved += v.ReservedCores()
	return nil
}

// Remove takes the VM off this host.
func (h *Host) Remove(id vm.ID) error {
	i, ok := h.residentIndex(id)
	if !ok {
		return fmt.Errorf("host %s: vm %d not placed here", h.name, id)
	}
	v := h.res[i]
	copy(h.res[i:], h.res[i+1:])
	h.res[len(h.res)-1] = nil
	h.res = h.res[:len(h.res)-1]
	copy(h.resIDs[i:], h.resIDs[i+1:])
	h.resIDs = h.resIDs[:len(h.resIDs)-1]
	h.memUsed -= v.MemoryGB()
	h.cpuReserved -= v.ReservedCores()
	return nil
}

// Get returns a placed VM.
func (h *Host) Get(id vm.ID) (*vm.VM, bool) {
	i, ok := h.residentIndex(id)
	if !ok {
		return nil, false
	}
	return h.res[i], true
}

// Reserve holds memory for an inbound migration of the VM. The
// reservation converts to a placement via Place after
// ReleaseReservation, or is dropped if the migration is abandoned.
func (h *Host) Reserve(id vm.ID, memGB float64) error {
	i := sort.Search(len(h.resv), func(i int) bool { return h.resv[i].id >= id })
	if i < len(h.resv) && h.resv[i].id == id {
		return fmt.Errorf("host %s: vm %d already reserved", h.name, id)
	}
	if !h.CanFit(memGB) {
		return fmt.Errorf("host %s: no memory to reserve %v GB for vm %d", h.name, memGB, id)
	}
	h.resv = append(h.resv, reservation{})
	copy(h.resv[i+1:], h.resv[i:])
	h.resv[i] = reservation{id: id, memGB: memGB}
	return nil
}

// ReleaseReservation drops an inbound reservation.
func (h *Host) ReleaseReservation(id vm.ID) {
	i := sort.Search(len(h.resv), func(i int) bool { return h.resv[i].id >= id })
	if i < len(h.resv) && h.resv[i].id == id {
		h.resv = append(h.resv[:i], h.resv[i+1:]...)
	}
}

// Allocation is the scheduler's verdict for one interval. It is owned
// by the host and reused across Schedule calls: read it before the
// next Schedule on the same host.
type Allocation struct {
	ids       []vm.ID // aliases the host's resident view, ascending
	delivered []float64
	// TotalDemand is the sum of VM demands.
	TotalDemand float64
	// TotalDelivered is the sum of delivered cores.
	TotalDelivered float64
	// Utilization is busy cores (delivered + overhead) over capacity,
	// in [0,1].
	Utilization float64
}

// Len returns the number of VMs covered by the allocation.
func (a *Allocation) Len() int { return len(a.ids) }

// DeliveredAt returns the cores delivered to the i-th VM in the
// host's VMs/Residents order.
func (a *Allocation) DeliveredAt(i int) float64 { return a.delivered[i] }

// Delivered returns the cores delivered to the VM, or 0 when the VM
// was not part of the scheduled set.
func (a *Allocation) Delivered(id vm.ID) float64 {
	i := sort.Search(len(a.ids), func(i int) bool { return a.ids[i] >= id })
	if i < len(a.ids) && a.ids[i] == id {
		return a.delivered[i]
	}
	return 0
}

// growFloats returns s resized to n, reusing its backing array and
// zeroing the active window.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// DemandScratch returns a reusable buffer with one slot per resident
// VM, parallel to VMs/Residents order, for callers to fill with
// demands before Schedule. The buffer is owned by the host.
func (h *Host) DemandScratch() []float64 {
	h.demands = growFloats(h.demands, len(h.res))
	return h.demands
}

// Schedule runs the weighted proportional-share scheduler: given each
// placed VM's demand (demands[i] belongs to Residents()[i]; ascending
// VM-ID order) and an additional overhead (cores consumed by in-flight
// migrations), it computes what each VM receives. The scheduler is
// work-conserving: if total demand plus overhead fits, everyone gets
// what they asked; otherwise capacity is divided in proportion to
// demand × shares, water-filling so that no VM receives more than its
// demand (hypervisor-style resource shares; with equal shares this
// reduces to plain demand-proportional scaling). Overhead is served
// first, as hypervisor management traffic effectively preempts guest
// CPU.
//
// If the host is not available (asleep or transitioning), every VM
// receives zero.
//
// The returned Allocation is scratch owned by the host, valid until
// the next Schedule call; demands is not mutated.
func (h *Host) Schedule(demands []float64, overheadCores float64) *Allocation {
	n := len(h.res)
	if len(demands) != n {
		panic(fmt.Sprintf("host %s: Schedule with %d demands for %d residents", h.name, len(demands), n))
	}
	alloc := &h.alloc
	alloc.ids = h.resIDs
	alloc.delivered = growFloats(alloc.delivered, n)
	alloc.TotalDemand, alloc.TotalDelivered, alloc.Utilization = 0, 0, 0
	// All iteration is in ascending VM-ID order (the resident order):
	// floating-point sums must not depend on caller-visible ordering
	// choices, or identical runs diverge by ULPs.
	h.clean = growFloats(h.clean, n)
	clean := h.clean
	for i := 0; i < n; i++ {
		d := demands[i]
		if d < 0 {
			d = 0
		}
		clean[i] = d
		alloc.TotalDemand += d
	}
	if !h.Available() {
		return alloc
	}
	capacity := h.freq * h.cores
	if overheadCores < 0 {
		overheadCores = 0
	}
	if overheadCores > capacity {
		overheadCores = capacity
	}
	available := capacity - overheadCores

	if alloc.TotalDemand <= available {
		// Undersubscribed: everyone gets their ask.
		for i := 0; i < n; i++ {
			d := clean[i]
			alloc.delivered[i] = d
			alloc.TotalDelivered += d
		}
	} else {
		// Phase 0: honour reservations — each VM is guaranteed
		// min(demand, reservation) before shares divide the rest. If
		// migration overhead squeezed capacity below the sum of
		// reservations, they scale down proportionally.
		h.resWant = growFloats(h.resWant, n)
		resWant := h.resWant
		totalRes := 0.0
		for i := 0; i < n; i++ {
			d := clean[i]
			r := h.res[i].ReservedCores()
			if r > d {
				r = d
			}
			resWant[i] = r
			totalRes += r
		}
		resScale := 1.0
		if totalRes > available && totalRes > 0 {
			resScale = available / totalRes
		}
		h.granted = growFloats(h.granted, n)
		granted := h.granted
		remainingAfterRes := available
		for i := 0; i < n; i++ {
			g := resWant[i] * resScale
			granted[i] = g
			remainingAfterRes -= g
		}
		// Phase 1+: water-fill the residual demands by shares.
		h.residual = growFloats(h.residual, n)
		residual := h.residual
		for i := 0; i < n; i++ {
			residual[i] = clean[i] - granted[i]
		}
		h.fillByShares(residual, remainingAfterRes, granted)
		for i := 0; i < n; i++ {
			alloc.delivered[i] = granted[i]
			alloc.TotalDelivered += granted[i]
		}
	}

	// Utilization is the busy fraction of *full-speed* capacity: the
	// power machine scales the dynamic portion by frequency itself.
	busy := alloc.TotalDelivered + overheadCores
	alloc.Utilization = busy / h.cores
	if alloc.Utilization > 1 {
		alloc.Utilization = 1
	}
	return alloc
}

// fillByShares water-fills `remaining` capacity over residual demands
// in proportion to demand × shares, capping each VM at its residual
// and redistributing surplus. Results accumulate into granted. All
// slices are indexed in resident (ascending VM-ID) order so the
// arithmetic is deterministic.
func (h *Host) fillByShares(residual []float64, remaining float64, granted []float64) {
	n := len(residual)
	if cap(h.unsat) < n {
		h.unsat = make([]bool, n)
	}
	h.unsat = h.unsat[:n]
	unsat := h.unsat
	live := 0
	for i := 0; i < n; i++ {
		unsat[i] = residual[i] > 1e-12
		if unsat[i] {
			live++
		}
	}
	for live > 0 && remaining > 1e-12 {
		totalW := 0.0
		for i := 0; i < n; i++ {
			if unsat[i] {
				totalW += residual[i] * float64(h.res[i].Shares())
			}
		}
		if totalW <= 0 {
			break
		}
		capped := false
		for i := 0; i < n; i++ {
			if !unsat[i] {
				continue
			}
			w := residual[i] * float64(h.res[i].Shares())
			slice := remaining * w / totalW
			if slice >= residual[i] {
				granted[i] += residual[i]
				remaining -= residual[i]
				residual[i] = 0
				unsat[i] = false
				live--
				capped = true
			}
		}
		if capped {
			continue
		}
		for i := 0; i < n; i++ {
			if !unsat[i] {
				continue
			}
			w := residual[i] * float64(h.res[i].Shares())
			granted[i] += remaining * w / totalW
			unsat[i] = false
			live--
		}
		remaining = 0
	}
}

// String implements fmt.Stringer.
func (h *Host) String() string {
	return fmt.Sprintf("%s(%gc,%gGB,%v,%d vms)", h.name, h.cores, h.memGB, h.machine.State(), len(h.res))
}
