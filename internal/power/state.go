package power

// State is a server platform power state at management granularity.
// Deep processor C-states are folded into the S0 power curve (their
// transitions are OS-transparent and take microseconds); S3 and S5 are
// explicit because entering and leaving them takes the server off the
// network for seconds to minutes — exactly the latency the paper's
// management layer reasons about.
type State int

const (
	// S0 — the server is on and can run VMs.
	S0 State = iota
	// S3 — suspend-to-RAM: the low-latency sleep state the paper's
	// prototypes demonstrate. Memory stays powered; resume takes
	// seconds.
	S3
	// S5 — soft-off: the traditional "power down" used by prior DPM
	// systems. Resume is a full boot taking minutes.
	S5
)

// String returns the ACPI-style name of the state.
func (s State) String() string {
	switch s {
	case S0:
		return "S0"
	case S3:
		return "S3"
	case S5:
		return "S5"
	default:
		return "S?"
	}
}

// IsSleep reports whether the state is a sleep (parked) state.
func (s State) IsSleep() bool { return s == S3 || s == S5 }

// Phase describes what the platform is doing right now: parked in a
// state, or in the middle of a transition.
type Phase int

const (
	// Settled — the machine is parked in its current State.
	Settled Phase = iota
	// Entering — the machine is transitioning from S0 into a sleep
	// state and is unavailable.
	Entering
	// Exiting — the machine is transitioning from a sleep state back to
	// S0 and is unavailable.
	Exiting
)

// String returns a short name for the phase.
func (p Phase) String() string {
	switch p {
	case Settled:
		return "settled"
	case Entering:
		return "entering"
	case Exiting:
		return "exiting"
	default:
		return "phase?"
	}
}
