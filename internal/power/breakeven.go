package power

import "time"

// The break-even analysis answers the question at the heart of the
// paper's motivation: for an idle gap of a given length, does parking
// the server in a sleep state save energy once the transition energy
// and unavailability are paid? Traditional S5 breaks even only for
// gaps of many minutes, which is why prior DPM saw limited adoption;
// S3 breaks even within tens of seconds.

// GapEnergyIdle is the energy of riding out a gap of length d idling
// in S0 (with deep C-states if the profile has them).
func (p *Profile) GapEnergyIdle(d time.Duration) Joules {
	return WattSeconds(p.ActivePower(0), d)
}

// GapEnergySleep is the energy of handling a gap of length d by
// entering the sleep state st, parking, and resuming so the server is
// available again exactly at the end of the gap. If the gap is shorter
// than the state's cycle latency, parking is infeasible and the result
// is the idle energy (the server cannot complete the round trip).
func (p *Profile) GapEnergySleep(st State, d time.Duration) (Joules, bool) {
	spec, ok := p.Sleep[st]
	if !ok {
		return 0, false
	}
	cycle := spec.CycleLatency()
	if d < cycle {
		return p.GapEnergyIdle(d), false
	}
	parked := d - cycle
	return spec.CycleEnergy() + WattSeconds(spec.Power, parked), true
}

// BreakEven returns the shortest gap length for which parking in st
// consumes no more energy than idling, and whether such a gap exists.
// Solved analytically: idle power × d ≥ cycle energy + sleep power ×
// (d − cycle latency).
func (p *Profile) BreakEven(st State) (time.Duration, bool) {
	spec, ok := p.Sleep[st]
	if !ok {
		return 0, false
	}
	idle := float64(p.ActivePower(0))
	sleep := float64(spec.Power)
	if idle <= sleep {
		return 0, false
	}
	cycleE := float64(spec.CycleEnergy())
	cycleL := spec.CycleLatency().Seconds()
	// idle*d = cycleE + sleep*(d - cycleL)  =>  d = (cycleE - sleep*cycleL) / (idle - sleep)
	d := (cycleE - sleep*cycleL) / (idle - sleep)
	if d < cycleL {
		// The cycle itself is the binding constraint: any gap long
		// enough to complete the round trip already saves energy.
		d = cycleL
	}
	return time.Duration(d * float64(time.Second)), true
}

// GapSavings returns the fraction of idle energy saved by parking in
// st for a gap of length d (0 when parking is infeasible or loses).
func (p *Profile) GapSavings(st State, d time.Duration) float64 {
	idle := p.GapEnergyIdle(d)
	if idle <= 0 {
		return 0
	}
	sleep, feasible := p.GapEnergySleep(st, d)
	if !feasible || sleep >= idle {
		return 0
	}
	return float64(idle-sleep) / float64(idle)
}
