package power

import "time"

// Fault is one injected defect on a power-state transition. Extra
// lengthens the transition (firmware retries, slow device re-init);
// Fail makes the transition not take effect: the machine spends the
// full (lengthened) latency and then settles back in the state it was
// leaving, exactly how a failed suspend leaves a server running or a
// failed resume leaves it asleep.
type Fault struct {
	Fail  bool
	Extra time.Duration
}

// FaultInjector decides faults for power-state transitions. The zero
// implementation (a nil injector on the Machine) is fully dormant: no
// randomness is drawn and no behaviour changes. Injectors must be
// deterministic functions of their own seeded stream so simulations
// stay reproducible.
type FaultInjector interface {
	// SleepFault is consulted when a transition into sleep state target
	// is admitted.
	SleepFault(target State) Fault
	// WakeFault is consulted when a transition out of sleep state from
	// is admitted.
	WakeFault(from State) Fault
}
