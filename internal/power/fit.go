package power

import (
	"fmt"
	"sort"
)

// Measurement is one (utilization, watts) observation from a wall
// power meter — the raw material of a SPECpower-style calibration run
// on a prototype.
type Measurement struct {
	// Util is CPU utilization in [0,1].
	Util float64
	// Power is the measured draw.
	Power Watts
}

// FitCurve builds the 11-point utilization→power curve (draws at 0%,
// 10%, …, 100%) from scattered measurements, the way the paper's
// prototype characterization would be folded into a reusable profile:
//
//  1. measurements are averaged into the nearest decile bucket,
//  2. empty buckets are filled by linear interpolation (endpoints
//     extrapolate flat),
//  3. the result is made monotone non-decreasing by pooling adjacent
//     violators (noise can otherwise produce a locally decreasing
//     curve, which Validate rejects).
func FitCurve(ms []Measurement) ([]Watts, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("power: no measurements to fit")
	}
	sums := make([]float64, 11)
	counts := make([]int, 11)
	for i, m := range ms {
		if m.Util < 0 || m.Util > 1 {
			return nil, fmt.Errorf("power: measurement %d utilization %v outside [0,1]", i, m.Util)
		}
		if m.Power < 0 {
			return nil, fmt.Errorf("power: measurement %d negative power %v", i, m.Power)
		}
		b := int(m.Util*10 + 0.5)
		sums[b] += float64(m.Power)
		counts[b]++
	}
	filled := 0
	curve := make([]float64, 11)
	for i := range curve {
		if counts[i] > 0 {
			curve[i] = sums[i] / float64(counts[i])
			filled++
		}
	}
	if filled < 2 {
		return nil, fmt.Errorf("power: measurements cover %d utilization decile(s), need ≥2", filled)
	}
	interpolateGaps(curve, counts)
	isotonic(curve)
	out := make([]Watts, 11)
	for i, v := range curve {
		out[i] = Watts(v)
	}
	return out, nil
}

// interpolateGaps fills empty buckets linearly between the nearest
// filled neighbours; leading/trailing gaps copy the nearest value.
func interpolateGaps(curve []float64, counts []int) {
	var idx []int
	for i, c := range counts {
		if c > 0 {
			idx = append(idx, i)
		}
	}
	for i := 0; i < idx[0]; i++ {
		curve[i] = curve[idx[0]]
	}
	for k := 0; k+1 < len(idx); k++ {
		lo, hi := idx[k], idx[k+1]
		for i := lo + 1; i < hi; i++ {
			frac := float64(i-lo) / float64(hi-lo)
			curve[i] = curve[lo] + frac*(curve[hi]-curve[lo])
		}
	}
	for i := idx[len(idx)-1] + 1; i < len(curve); i++ {
		curve[i] = curve[idx[len(idx)-1]]
	}
}

// isotonic enforces monotone non-decreasing values via the
// pool-adjacent-violators algorithm.
func isotonic(v []float64) {
	n := len(v)
	vals := make([]float64, 0, n)
	weights := make([]int, 0, n)
	for _, x := range v {
		vals = append(vals, x)
		weights = append(weights, 1)
		for len(vals) > 1 && vals[len(vals)-2] > vals[len(vals)-1] {
			a, b := len(vals)-2, len(vals)-1
			merged := (vals[a]*float64(weights[a]) + vals[b]*float64(weights[b])) /
				float64(weights[a]+weights[b])
			weights[a] += weights[b]
			vals[a] = merged
			vals = vals[:b]
			weights = weights[:b]
		}
	}
	i := 0
	for k, w := range weights {
		for j := 0; j < w; j++ {
			v[i] = vals[k]
			i++
		}
	}
}

// CalibrateProfile builds a complete profile from prototype
// measurements: a fitted utilization curve plus measured sleep-state
// specs. Idle and peak power come from the curve endpoints.
func CalibrateProfile(name string, ms []Measurement, deepIdle Watts, sleep map[State]StateSpec) (*Profile, error) {
	curve, err := FitCurve(ms)
	if err != nil {
		return nil, err
	}
	sleepCopy := make(map[State]StateSpec, len(sleep))
	for k, v := range sleep {
		sleepCopy[k] = v
	}
	p := &Profile{
		Name:          name,
		PeakPower:     curve[10],
		IdlePower:     curve[0],
		DeepIdlePower: deepIdle,
		Curve:         curve,
		Sleep:         sleepCopy,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// SortMeasurements orders measurements by utilization (a convenience
// for displaying calibration runs).
func SortMeasurements(ms []Measurement) {
	sort.Slice(ms, func(i, j int) bool { return ms[i].Util < ms[j].Util })
}
