package power

import (
	"fmt"
	"time"
)

// Facility models datacenter infrastructure overhead on top of IT
// power: power delivery losses and cooling. It is an affine model —
// a fixed overhead that burns regardless of IT load (CRAC fans, UPS
// losses, lighting) plus a component proportional to IT draw
// (conversion losses, heat removal). Server consolidation results are
// usually reported at the IT meter; the facility view shows what the
// utility bill sees, and the fixed term means facility-level *relative*
// savings are always a bit smaller than IT-level savings.
type Facility struct {
	// Name labels the model in reports.
	Name string
	// FixedW is load-independent overhead.
	FixedW Watts
	// Proportional multiplies IT power into its delivery+cooling cost:
	// total = FixedW + Proportional × IT. A Proportional of 1.25 means
	// every IT watt costs 1.25 W at the meter before fixed overhead.
	Proportional float64
}

// DefaultFacility returns a mid-efficiency enterprise room: 1.25×
// proportional overhead plus 2 kW fixed — about PUE 1.55 at a 10 kW IT
// load, improving as IT load grows.
func DefaultFacility() Facility {
	return Facility{Name: "enterprise-room", FixedW: 2000, Proportional: 1.25}
}

// Validate checks the model.
func (f Facility) Validate() error {
	if f.FixedW < 0 {
		return fmt.Errorf("power: facility %q: negative fixed overhead %v", f.Name, f.FixedW)
	}
	if f.Proportional < 1 {
		return fmt.Errorf("power: facility %q: proportional factor %v must be ≥1 (IT power passes through)", f.Name, f.Proportional)
	}
	return nil
}

// TotalPower returns the meter draw for a given IT draw.
func (f Facility) TotalPower(it Watts) Watts {
	if it < 0 {
		it = 0
	}
	return f.FixedW + Watts(f.Proportional)*it
}

// PUE returns total/IT at the given IT draw (infinite at zero IT load;
// returns 0 in that degenerate case).
func (f Facility) PUE(it Watts) float64 {
	if it <= 0 {
		return 0
	}
	return float64(f.TotalPower(it)) / float64(it)
}

// Energy converts IT energy consumed over duration d into facility
// energy, assuming the IT draw profile that produced it (the affine
// model only needs the mean: fixed × time + proportional × IT energy).
func (f Facility) Energy(it Joules, d time.Duration) Joules {
	if it < 0 {
		it = 0
	}
	return WattSeconds(f.FixedW, d) + Joules(f.Proportional)*it
}
