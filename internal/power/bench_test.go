package power

import (
	"testing"
	"time"

	"agilepower/internal/sim"
)

// BenchmarkMachineCycle measures one full suspend/park/resume cycle
// including event scheduling and energy accrual.
func BenchmarkMachineCycle(b *testing.B) {
	eng := sim.NewEngine(1)
	m, err := NewMachine(eng, DefaultProfile())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.Sleep(S3); err != nil {
			b.Fatal(err)
		}
		eng.Run()
		if err := m.Wake(); err != nil {
			b.Fatal(err)
		}
		eng.Run()
	}
}

// BenchmarkActivePowerCurve measures curve interpolation.
func BenchmarkActivePowerCurve(b *testing.B) {
	p := DefaultProfile()
	p.Curve = []Watts{100, 130, 150, 165, 178, 190, 201, 212, 224, 237, 250}
	var sink Watts
	for i := 0; i < b.N; i++ {
		sink += p.ActivePower(float64(i%100) / 100)
	}
	_ = sink
}

// BenchmarkFitCurve measures calibration fitting from 2000 samples.
func BenchmarkFitCurve(b *testing.B) {
	rng := sim.NewRNG(1)
	ms := make([]Measurement, 2000)
	for i := range ms {
		u := rng.Float64()
		ms[i] = Measurement{Util: u, Power: Watts(100 + 150*u + rng.Norm(0, 5))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitCurve(ms); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBreakEven measures the analytic break-even solver.
func BenchmarkBreakEven(b *testing.B) {
	p := DefaultProfile()
	var sink time.Duration
	for i := 0; i < b.N; i++ {
		be, _ := p.BreakEven(S3)
		sink += be
	}
	_ = sink
}
