package power

import (
	"errors"
	"math"
	"testing"
	"time"

	"agilepower/internal/sim"
)

func newTestMachine(t *testing.T) (*sim.Engine, *Machine) {
	t.Helper()
	eng := sim.NewEngine(1)
	m, err := NewMachine(eng, DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	return eng, m
}

func TestNewMachineStartsOnAndIdle(t *testing.T) {
	_, m := newTestMachine(t)
	if m.State() != S0 || m.Phase() != Settled {
		t.Fatalf("new machine in %v/%v, want S0/settled", m.State(), m.Phase())
	}
	if !m.Available() {
		t.Fatal("new machine should be available")
	}
	if m.Utilization() != 0 {
		t.Fatal("new machine should be idle")
	}
}

func TestNewMachineRejectsInvalidProfile(t *testing.T) {
	p := DefaultProfile()
	p.PeakPower = -1
	if _, err := NewMachine(sim.NewEngine(1), p); err == nil {
		t.Fatal("NewMachine accepted invalid profile")
	}
}

func TestEnergyIntegrationAtConstantUtil(t *testing.T) {
	eng, m := newTestMachine(t)
	m.SetUtilization(0.5) // 200 W on the linear curve
	eng.RunUntil(100 * time.Second)
	got := float64(m.Energy())
	want := 200.0 * 100
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("energy = %v J, want %v J", got, want)
	}
}

func TestEnergyIntegrationAcrossUtilChanges(t *testing.T) {
	eng, m := newTestMachine(t)
	m.SetUtilization(1.0) // 250 W
	eng.RunUntil(10 * time.Second)
	m.SetUtilization(0.5) // 200 W
	eng.RunUntil(30 * time.Second)
	want := 250.0*10 + 200.0*20
	if got := float64(m.Energy()); math.Abs(got-want) > 1e-6 {
		t.Fatalf("energy = %v J, want %v J", got, want)
	}
}

func TestDeepIdleEnergyAtZeroUtil(t *testing.T) {
	eng, m := newTestMachine(t)
	eng.RunUntil(50 * time.Second)
	want := 120.0 * 50 // deep-idle watts
	if got := float64(m.Energy()); math.Abs(got-want) > 1e-6 {
		t.Fatalf("idle energy = %v J, want %v J", got, want)
	}
}

func TestSleepTransitionLifecycle(t *testing.T) {
	eng, m := newTestMachine(t)
	var settledIn []State
	m.OnSettled(func(s State) { settledIn = append(settledIn, s) })

	if err := m.Sleep(S3); err != nil {
		t.Fatal(err)
	}
	if m.Phase() != Entering || m.Target() != S3 {
		t.Fatalf("phase/target = %v/%v, want entering/S3", m.Phase(), m.Target())
	}
	if m.Available() {
		t.Fatal("machine available during suspend")
	}
	// Entry latency for S3 is 8s.
	eng.RunUntil(8 * time.Second)
	if m.State() != S3 || m.Phase() != Settled {
		t.Fatalf("after entry latency: %v/%v, want S3/settled", m.State(), m.Phase())
	}
	if err := m.Wake(); err != nil {
		t.Fatal(err)
	}
	// Exit latency 15s.
	eng.RunUntil(23 * time.Second)
	if m.State() != S0 || !m.Available() {
		t.Fatalf("after wake: %v/%v", m.State(), m.Phase())
	}
	if len(settledIn) != 2 || settledIn[0] != S3 || settledIn[1] != S0 {
		t.Fatalf("settle callbacks = %v, want [S3 S0]", settledIn)
	}
}

func TestSleepCycleEnergyAccounting(t *testing.T) {
	eng, m := newTestMachine(t)
	if err := m.Sleep(S3); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(8 * time.Second) // entry done
	eng.RunUntil(108 * time.Second)
	if err := m.Wake(); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(123 * time.Second)
	// entry: 8s * 150W; parked: 100s * 12W; exit: 15s * 220W
	want := 8.0*150 + 100.0*12 + 15.0*220
	if got := float64(m.Energy()); math.Abs(got-want) > 1e-6 {
		t.Fatalf("cycle energy = %v J, want %v J", got, want)
	}
	st := m.Stats()
	if st.Entries[S3] != 1 || st.Exits[S3] != 1 {
		t.Fatalf("entries/exits = %d/%d, want 1/1", st.Entries[S3], st.Exits[S3])
	}
	if st.TransitTime != 23*time.Second {
		t.Fatalf("transit time = %v, want 23s", st.TransitTime)
	}
	wantTE := 8.0*150 + 15.0*220
	if math.Abs(float64(st.TransitionE)-wantTE) > 1e-6 {
		t.Fatalf("transition energy = %v, want %v", st.TransitionE, wantTE)
	}
	if st.TimeIn[S3] != 100*time.Second {
		t.Fatalf("time in S3 = %v, want 100s", st.TimeIn[S3])
	}
}

func TestSleepRejectsWhileTransitioning(t *testing.T) {
	_, m := newTestMachine(t)
	if err := m.Sleep(S3); err != nil {
		t.Fatal(err)
	}
	if err := m.Sleep(S3); !errors.Is(err, ErrBusy) {
		t.Fatalf("second Sleep = %v, want ErrBusy", err)
	}
	if err := m.Wake(); !errors.Is(err, ErrBusy) {
		t.Fatalf("Wake during suspend = %v, want ErrBusy", err)
	}
}

func TestSleepRejectsNonSleepState(t *testing.T) {
	_, m := newTestMachine(t)
	if err := m.Sleep(S0); !errors.Is(err, ErrNotOn) {
		t.Fatalf("Sleep(S0) = %v, want ErrNotOn", err)
	}
}

func TestSleepRejectsUnsupportedState(t *testing.T) {
	p := DefaultProfile()
	delete(p.Sleep, S5)
	m, err := NewMachine(sim.NewEngine(1), p)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Sleep(S5); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Sleep(S5) = %v, want ErrUnsupported", err)
	}
}

func TestWakeRejectsWhenOn(t *testing.T) {
	_, m := newTestMachine(t)
	if err := m.Wake(); !errors.Is(err, ErrNotOn) {
		t.Fatalf("Wake while on = %v, want ErrNotOn", err)
	}
}

func TestSleepFromSleepRejected(t *testing.T) {
	eng, m := newTestMachine(t)
	if err := m.Sleep(S3); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(10 * time.Second)
	if err := m.Sleep(S5); !errors.Is(err, ErrNotOn) {
		t.Fatalf("Sleep from S3 = %v, want ErrNotOn", err)
	}
}

func TestUtilizationForcedZeroWhileSleeping(t *testing.T) {
	eng, m := newTestMachine(t)
	if err := m.Sleep(S3); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(10 * time.Second)
	m.SetUtilization(0.9)
	if m.Utilization() != 0 {
		t.Fatalf("sleeping machine utilization = %v, want 0", m.Utilization())
	}
}

func TestUtilizationClamped(t *testing.T) {
	_, m := newTestMachine(t)
	m.SetUtilization(2)
	if m.Utilization() != 1 {
		t.Fatalf("util = %v, want clamp to 1", m.Utilization())
	}
	m.SetUtilization(-1)
	if m.Utilization() != 0 {
		t.Fatalf("util = %v, want clamp to 0", m.Utilization())
	}
}

func TestPowerDuringPhases(t *testing.T) {
	eng, m := newTestMachine(t)
	m.SetUtilization(1)
	if m.Power() != 250 {
		t.Fatalf("busy power = %v, want 250", m.Power())
	}
	if err := m.Sleep(S3); err != nil {
		t.Fatal(err)
	}
	if m.Power() != 150 {
		t.Fatalf("entry power = %v, want 150", m.Power())
	}
	eng.RunUntil(8 * time.Second)
	if m.Power() != 12 {
		t.Fatalf("parked power = %v, want 12", m.Power())
	}
	if err := m.Wake(); err != nil {
		t.Fatal(err)
	}
	if m.Power() != 220 {
		t.Fatalf("exit power = %v, want 220", m.Power())
	}
}

func TestTransitionEndVisible(t *testing.T) {
	eng, m := newTestMachine(t)
	eng.RunUntil(5 * time.Second)
	if err := m.Sleep(S3); err != nil {
		t.Fatal(err)
	}
	if m.TransitionEnd() != 13*time.Second {
		t.Fatalf("transition end = %v, want 13s", m.TransitionEnd())
	}
}

func TestS5RoundTripSlow(t *testing.T) {
	eng, m := newTestMachine(t)
	if err := m.Sleep(S5); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(45 * time.Second)
	if m.State() != S5 {
		t.Fatalf("state = %v after 45s, want S5", m.State())
	}
	if err := m.Wake(); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(234 * time.Second)
	if m.State() != S5 || m.Phase() != Exiting {
		t.Fatalf("S5 boot finished too early: %v/%v", m.State(), m.Phase())
	}
	eng.RunUntil(235 * time.Second)
	if !m.Available() {
		t.Fatal("machine not available after full S5 boot")
	}
}

func TestStatsSnapshotIsolated(t *testing.T) {
	eng, m := newTestMachine(t)
	eng.RunUntil(time.Second)
	st := m.Stats()
	st.TimeIn[S0] = 0
	st.Entries[S3] = 99
	st2 := m.Stats()
	if st2.TimeIn[S0] != time.Second || st2.Entries[S3] == 99 {
		t.Fatal("Stats snapshot shares maps with machine")
	}
}
