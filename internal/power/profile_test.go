package power

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultProfileValid(t *testing.T) {
	if err := DefaultProfile().Validate(); err != nil {
		t.Fatalf("default profile invalid: %v", err)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Profile)
	}{
		{"zero peak", func(p *Profile) { p.PeakPower = 0 }},
		{"idle above peak", func(p *Profile) { p.IdlePower = p.PeakPower + 1 }},
		{"negative idle", func(p *Profile) { p.IdlePower = -1 }},
		{"deep idle above idle", func(p *Profile) { p.DeepIdlePower = p.IdlePower + 1 }},
		{"short curve", func(p *Profile) { p.Curve = []Watts{1, 2, 3} }},
		{"non-monotonic curve", func(p *Profile) {
			p.Curve = []Watts{100, 120, 110, 130, 140, 150, 160, 170, 180, 190, 200}
		}},
		{"sleep above idle", func(p *Profile) {
			s := p.Sleep[S3]
			s.Power = p.IdlePower + 1
			p.Sleep[S3] = s
		}},
		{"negative latency", func(p *Profile) {
			s := p.Sleep[S3]
			s.EntryLatency = -time.Second
			p.Sleep[S3] = s
		}},
		{"non-sleep key", func(p *Profile) { p.Sleep[S0] = StateSpec{} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultProfile()
			tc.mut(p)
			if err := p.Validate(); err == nil {
				t.Errorf("Validate accepted profile with %s", tc.name)
			}
		})
	}
}

func TestActivePowerLinearEndpoints(t *testing.T) {
	p := DefaultProfile()
	p.DeepIdlePower = 0 // isolate the linear model
	if got := p.ActivePower(0); got != p.IdlePower {
		t.Fatalf("P(0) = %v, want idle %v", got, p.IdlePower)
	}
	if got := p.ActivePower(1); got != p.PeakPower {
		t.Fatalf("P(1) = %v, want peak %v", got, p.PeakPower)
	}
	if got := p.ActivePower(0.5); got != 200 {
		t.Fatalf("P(0.5) = %v, want 200 (150+0.5*100)", got)
	}
}

func TestActivePowerClamps(t *testing.T) {
	p := DefaultProfile()
	if p.ActivePower(-0.5) != p.ActivePower(0) {
		t.Fatal("negative utilization not clamped to 0")
	}
	if p.ActivePower(1.5) != p.PeakPower {
		t.Fatal("utilization >1 not clamped to 1")
	}
}

func TestActivePowerDeepIdleKicksInAtZero(t *testing.T) {
	p := DefaultProfile()
	if got := p.ActivePower(0); got != p.DeepIdlePower {
		t.Fatalf("P(0) with deep idle = %v, want %v", got, p.DeepIdlePower)
	}
	// Any nonzero utilization must leave deep idle.
	if got := p.ActivePower(0.001); got < p.IdlePower {
		t.Fatalf("P(0.001) = %v, below idle %v", got, p.IdlePower)
	}
}

func TestActivePowerPiecewiseCurve(t *testing.T) {
	p := DefaultProfile()
	p.DeepIdlePower = 0
	// A convex SPECpower-like curve.
	p.Curve = []Watts{100, 130, 150, 165, 178, 190, 201, 212, 224, 237, 250}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.ActivePower(0); got != 100 {
		t.Fatalf("curve P(0) = %v, want 100", got)
	}
	if got := p.ActivePower(1); got != 250 {
		t.Fatalf("curve P(1) = %v, want 250", got)
	}
	if got := p.ActivePower(0.1); got != 130 {
		t.Fatalf("curve P(0.1) = %v, want 130", got)
	}
	// Midpoint of a segment interpolates.
	if got := p.ActivePower(0.05); math.Abs(float64(got-115)) > 1e-9 {
		t.Fatalf("curve P(0.05) = %v, want 115", got)
	}
}

// Property: the power curve is monotonically non-decreasing in
// utilization, for both linear and piecewise models.
func TestActivePowerMonotoneProperty(t *testing.T) {
	p := DefaultProfile()
	f := func(a, b float64) bool {
		ua, ub := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if ua > ub {
			ua, ub = ub, ua
		}
		return p.ActivePower(ua) <= p.ActivePower(ub)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestProportionalPower(t *testing.T) {
	p := DefaultProfile()
	if p.ProportionalPower(0) != 0 {
		t.Fatal("proportional power at idle should be 0")
	}
	if p.ProportionalPower(1) != p.PeakPower {
		t.Fatal("proportional power at peak should equal peak")
	}
	if p.ProportionalPower(0.4) != 100 {
		t.Fatalf("proportional P(0.4) = %v, want 100", p.ProportionalPower(0.4))
	}
}

func TestCloneIsIndependent(t *testing.T) {
	p := DefaultProfile()
	q := p.Clone()
	s := q.Sleep[S3]
	s.Power = 99
	q.Sleep[S3] = s
	q.PeakPower = 1
	if p.Sleep[S3].Power == 99 || p.PeakPower == 1 {
		t.Fatal("Clone shares state with original")
	}
}

func TestStateSpecEnergies(t *testing.T) {
	spec := StateSpec{
		Power:        10,
		EntryLatency: 10 * time.Second,
		ExitLatency:  20 * time.Second,
		EntryPower:   100,
		ExitPower:    200,
	}
	if spec.EntryEnergy() != 1000 {
		t.Fatalf("entry energy = %v, want 1000 J", spec.EntryEnergy())
	}
	if spec.ExitEnergy() != 4000 {
		t.Fatalf("exit energy = %v, want 4000 J", spec.ExitEnergy())
	}
	if spec.CycleEnergy() != 5000 {
		t.Fatalf("cycle energy = %v, want 5000 J", spec.CycleEnergy())
	}
	if spec.CycleLatency() != 30*time.Second {
		t.Fatalf("cycle latency = %v, want 30s", spec.CycleLatency())
	}
}

func TestStateStrings(t *testing.T) {
	if S0.String() != "S0" || S3.String() != "S3" || S5.String() != "S5" {
		t.Fatal("state names wrong")
	}
	if State(99).String() != "S?" {
		t.Fatal("unknown state should print S?")
	}
	if S0.IsSleep() || !S3.IsSleep() || !S5.IsSleep() {
		t.Fatal("IsSleep classification wrong")
	}
	if Settled.String() != "settled" || Entering.String() != "entering" || Exiting.String() != "exiting" {
		t.Fatal("phase names wrong")
	}
}

func TestKWhConversion(t *testing.T) {
	if Joules(3.6e6).KWh() != 1 {
		t.Fatal("3.6 MJ should be 1 kWh")
	}
}

func TestWattSeconds(t *testing.T) {
	if WattSeconds(100, 90*time.Second) != 9000 {
		t.Fatalf("WattSeconds(100, 90s) = %v", WattSeconds(100, 90*time.Second))
	}
}
