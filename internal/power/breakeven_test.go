package power

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestBreakEvenS3FasterThanS5(t *testing.T) {
	p := DefaultProfile()
	s3, ok := p.BreakEven(S3)
	if !ok {
		t.Fatal("no S3 break-even")
	}
	s5, ok := p.BreakEven(S5)
	if !ok {
		t.Fatal("no S5 break-even")
	}
	if s3 >= s5 {
		t.Fatalf("S3 break-even %v should be well below S5 %v", s3, s5)
	}
	// The paper's headline shape: S3 pays off in tens of seconds, S5
	// needs minutes.
	if s3 > time.Minute {
		t.Fatalf("S3 break-even %v, expected tens of seconds", s3)
	}
	if s5 < 2*time.Minute {
		t.Fatalf("S5 break-even %v, expected minutes", s5)
	}
}

func TestBreakEvenIsActuallyBreakEven(t *testing.T) {
	p := DefaultProfile()
	for _, st := range []State{S3, S5} {
		be, ok := p.BreakEven(st)
		if !ok {
			t.Fatalf("no break-even for %v", st)
		}
		idle := p.GapEnergyIdle(be)
		sleep, feasible := p.GapEnergySleep(st, be)
		if !feasible {
			t.Fatalf("%v: break-even gap %v not feasible", st, be)
		}
		if sleep > idle+1 { // 1 J tolerance for rounding to ns
			t.Fatalf("%v: at break-even %v sleeping costs %v > idling %v", st, be, sleep, idle)
		}
		// Just before break-even (and above cycle latency) sleeping
		// must not win, unless the cycle latency itself is binding.
		spec := p.Sleep[st]
		if be > spec.CycleLatency() {
			short := be - time.Second
			idleS := p.GapEnergyIdle(short)
			sleepS, f := p.GapEnergySleep(st, short)
			if f && sleepS < idleS {
				t.Fatalf("%v: gap %v below break-even still saves energy", st, short)
			}
		}
	}
}

func TestGapEnergySleepInfeasibleShortGap(t *testing.T) {
	p := DefaultProfile()
	// S3 cycle is 23s; a 10s gap cannot complete the round trip.
	e, feasible := p.GapEnergySleep(S3, 10*time.Second)
	if feasible {
		t.Fatal("10s gap reported feasible for S3")
	}
	if e != p.GapEnergyIdle(10*time.Second) {
		t.Fatal("infeasible gap should cost idle energy")
	}
}

func TestGapEnergySleepUnsupportedState(t *testing.T) {
	p := DefaultProfile()
	delete(p.Sleep, S5)
	if _, ok := p.GapEnergySleep(S5, time.Hour); ok {
		t.Fatal("unsupported state reported feasible")
	}
	if _, ok := p.BreakEven(S5); ok {
		t.Fatal("unsupported state has break-even")
	}
}

func TestBreakEvenNoneWhenSleepNotCheaper(t *testing.T) {
	p := DefaultProfile()
	s := p.Sleep[S3]
	s.Power = p.IdlePower // sleeping draws as much as idling
	p.DeepIdlePower = 0
	p.Sleep[S3] = s
	if _, ok := p.BreakEven(S3); ok {
		t.Fatal("break-even exists although sleep saves nothing")
	}
}

func TestGapSavingsMonotoneInGapLength(t *testing.T) {
	p := DefaultProfile()
	prev := -1.0
	for _, d := range []time.Duration{10 * time.Second, time.Minute, 5 * time.Minute, time.Hour} {
		s := p.GapSavings(S3, d)
		if s < prev {
			t.Fatalf("savings not monotone: %v at %v after %v", s, d, prev)
		}
		prev = s
	}
	// Savings approach (idle - sleep)/idle for long gaps.
	limit := 1 - float64(p.Sleep[S3].Power)/float64(p.ActivePower(0))
	if got := p.GapSavings(S3, 24*time.Hour); math.Abs(got-limit) > 0.01 {
		t.Fatalf("asymptotic savings = %v, want ~%v", got, limit)
	}
}

func TestGapSavingsZeroForShortGaps(t *testing.T) {
	p := DefaultProfile()
	if s := p.GapSavings(S3, time.Second); s != 0 {
		t.Fatalf("1s gap savings = %v, want 0", s)
	}
	if s := p.GapSavings(S3, 0); s != 0 {
		t.Fatalf("0 gap savings = %v, want 0", s)
	}
}

// Property: for any gap, parked energy never exceeds idle energy at or
// beyond the break-even point.
func TestBreakEvenProperty(t *testing.T) {
	p := DefaultProfile()
	be, _ := p.BreakEven(S3)
	f := func(extraSecs uint16) bool {
		d := be + time.Duration(extraSecs)*time.Second
		idle := p.GapEnergyIdle(d)
		sleep, feasible := p.GapEnergySleep(S3, d)
		return feasible && sleep <= idle+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
