package power

import (
	"encoding/json"
	"testing"
)

// FuzzProfileUnmarshal hardens the profile decoder: arbitrary JSON
// must either yield a validated profile or an error — never panic,
// never produce a profile that its own Validate rejects.
func FuzzProfileUnmarshal(f *testing.F) {
	if seed, err := json.Marshal(DefaultProfile()); err == nil {
		f.Add(string(seed))
	}
	f.Add(`{"name":"x","peakPowerW":200,"idlePowerW":100}`)
	f.Add(`{"name":"x","peakPowerW":-1}`)
	f.Add(`{"sleep":{"S3":{"entryLatency":"nope"}}}`)
	f.Add(`{`)
	f.Add(`{"curveW":[1,2,3]}`)
	f.Fuzz(func(t *testing.T, input string) {
		var p Profile
		if err := json.Unmarshal([]byte(input), &p); err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("decoder produced invalid profile: %v", err)
		}
		// Power queries on a valid profile never go out of range.
		for _, u := range []float64{-1, 0, 0.33, 1, 2} {
			w := p.ActivePower(u)
			if w < 0 || w > p.PeakPower {
				t.Fatalf("ActivePower(%v) = %v outside [0, %v]", u, w, p.PeakPower)
			}
		}
	})
}

// FuzzFitCurve hardens the calibration fitter against arbitrary
// measurement sets.
func FuzzFitCurve(f *testing.F) {
	f.Add(0.0, 100.0, 1.0, 250.0)
	f.Add(0.5, 50.0, 0.5, 60.0)
	f.Fuzz(func(t *testing.T, u1, w1, u2, w2 float64) {
		ms := []Measurement{{Util: u1, Power: Watts(w1)}, {Util: u2, Power: Watts(w2)}}
		curve, err := FitCurve(ms)
		if err != nil {
			return
		}
		if len(curve) != 11 {
			t.Fatalf("curve length %d", len(curve))
		}
		for i := 1; i < len(curve); i++ {
			if curve[i] < curve[i-1] {
				t.Fatalf("fitted curve not monotone: %v", curve)
			}
		}
	})
}
