package power

import (
	"testing"
	"time"

	"agilepower/internal/sim"
)

func TestResumeFailProbValidation(t *testing.T) {
	p := DefaultProfile()
	p.ResumeFailProb = -0.1
	if err := p.Validate(); err == nil {
		t.Fatal("accepted negative failure probability")
	}
	p.ResumeFailProb = 1.1
	if err := p.Validate(); err == nil {
		t.Fatal("accepted probability > 1")
	}
	p.ResumeFailProb = 0.5
	if err := p.Validate(); err != nil {
		t.Fatalf("rejected valid probability: %v", err)
	}
}

func TestResumeAlwaysFailsFallsBackToBoot(t *testing.T) {
	eng := sim.NewEngine(1)
	p := DefaultProfile()
	p.ResumeFailProb = 1
	m, err := NewMachine(eng, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Sleep(S3); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(8 * time.Second)
	start := eng.Now()
	if err := m.Wake(); err != nil {
		t.Fatal(err)
	}
	// Exit = S3 exit (15s) + S5 exit (190s).
	want := start + 205*time.Second
	if m.TransitionEnd() != want {
		t.Fatalf("failed-resume end = %v, want %v", m.TransitionEnd(), want)
	}
	eng.RunUntil(want)
	if !m.Available() {
		t.Fatal("machine not available after fallback boot")
	}
	if got := m.Stats().ResumeFailures; got != 1 {
		t.Fatalf("resume failures = %d, want 1", got)
	}
}

func TestResumeNeverFailsByDefault(t *testing.T) {
	eng := sim.NewEngine(1)
	m, err := NewMachine(eng, DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := m.Sleep(S3); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if err := m.Wake(); err != nil {
			t.Fatal(err)
		}
		eng.Run()
	}
	if got := m.Stats().ResumeFailures; got != 0 {
		t.Fatalf("resume failures = %d with zero probability", got)
	}
}

func TestResumeFailureRateStatistical(t *testing.T) {
	eng := sim.NewEngine(7)
	p := DefaultProfile()
	p.ResumeFailProb = 0.3
	m, err := NewMachine(eng, p)
	if err != nil {
		t.Fatal(err)
	}
	cycles := 500
	for i := 0; i < cycles; i++ {
		if err := m.Sleep(S3); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if err := m.Wake(); err != nil {
			t.Fatal(err)
		}
		eng.Run()
	}
	fails := m.Stats().ResumeFailures
	rate := float64(fails) / float64(cycles)
	if rate < 0.2 || rate > 0.4 {
		t.Fatalf("failure rate = %v over %d cycles, want ~0.3", rate, cycles)
	}
}

func TestResumeFailureWithoutS5Calibration(t *testing.T) {
	eng := sim.NewEngine(1)
	p := DefaultProfile()
	p.ResumeFailProb = 1
	delete(p.Sleep, S5)
	m, err := NewMachine(eng, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Sleep(S3); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	start := eng.Now()
	if err := m.Wake(); err != nil {
		t.Fatal(err)
	}
	// 10× the S3 exit latency when no S5 path is calibrated.
	if m.TransitionEnd() != start+150*time.Second {
		t.Fatalf("fallback without S5 = %v, want %v", m.TransitionEnd()-start, 150*time.Second)
	}
}

func TestS5ExitNeverFails(t *testing.T) {
	eng := sim.NewEngine(1)
	p := DefaultProfile()
	p.ResumeFailProb = 1
	m, err := NewMachine(eng, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Sleep(S5); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	start := eng.Now()
	if err := m.Wake(); err != nil {
		t.Fatal(err)
	}
	// A boot is a boot: injection only applies to S3 resume.
	if m.TransitionEnd() != start+190*time.Second {
		t.Fatalf("S5 exit affected by resume injection: %v", m.TransitionEnd()-start)
	}
	if m.Stats().ResumeFailures != 0 {
		t.Fatal("S5 exit counted as resume failure")
	}
}
