package power

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestProfileJSONRoundTrip(t *testing.T) {
	orig := DefaultProfile()
	orig.Curve = []Watts{100, 130, 150, 165, 178, 190, 201, 212, 224, 237, 250}
	orig.IdlePower = 100
	orig.DeepIdlePower = 90
	orig.ResumeFailProb = 0.05
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var got Profile
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.PeakPower != orig.PeakPower ||
		got.IdlePower != orig.IdlePower || got.DeepIdlePower != orig.DeepIdlePower ||
		got.ResumeFailProb != orig.ResumeFailProb {
		t.Fatalf("scalar mismatch: %+v vs %+v", got, orig)
	}
	if len(got.Curve) != 11 || got.Curve[5] != orig.Curve[5] {
		t.Fatalf("curve mismatch: %v", got.Curve)
	}
	for st, want := range orig.Sleep {
		have, ok := got.Sleep[st]
		if !ok || have != want {
			t.Fatalf("sleep %v mismatch: %+v vs %+v", st, have, want)
		}
	}
}

func TestProfileJSONHumanReadable(t *testing.T) {
	data, err := json.Marshal(DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"S3"`, `"S5"`, `"15s"`, `"3m10s"`, `"peakPowerW":250`} {
		if !strings.Contains(s, want) {
			t.Fatalf("json missing %q:\n%s", want, s)
		}
	}
}

func TestProfileJSONRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"bad json", `{`},
		{"unknown state", `{"name":"x","peakPowerW":200,"idlePowerW":100,"sleep":{"S9":{"powerW":1,"entryLatency":"1s","exitLatency":"1s"}}}`},
		{"bad duration", `{"name":"x","peakPowerW":200,"idlePowerW":100,"sleep":{"S3":{"powerW":1,"entryLatency":"soon","exitLatency":"1s"}}}`},
		{"fails validation", `{"name":"x","peakPowerW":-5,"idlePowerW":100}`},
		{"idle above peak", `{"name":"x","peakPowerW":100,"idlePowerW":200}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var p Profile
			if err := json.Unmarshal([]byte(tc.in), &p); err == nil {
				t.Errorf("accepted %s", tc.name)
			}
		})
	}
}

func TestProfileJSONMinimal(t *testing.T) {
	var p Profile
	in := `{"name":"simple","peakPowerW":200,"idlePowerW":120}`
	if err := json.Unmarshal([]byte(in), &p); err != nil {
		t.Fatal(err)
	}
	if p.ActivePower(1) != 200 || p.ActivePower(0) != 120 {
		t.Fatalf("minimal profile curve wrong: %v/%v", p.ActivePower(0), p.ActivePower(1))
	}
	if len(p.Sleep) != 0 {
		t.Fatal("minimal profile has sleep states")
	}
}
