// Package power models enterprise-server power behaviour: the
// utilization→power curve of a running server and the ACPI-style sleep
// states the paper's prototypes demonstrate, with their per-state power
// draws, transition latencies and transition energies.
//
// This package is the reproduction's substitute for the paper's
// hardware prototypes (IBM System x servers with firmware support for
// S3 suspend-to-RAM). The management layer above only observes state
// availability, latency and power, so a calibrated state machine
// exercises the same decision paths as real hardware.
package power

import (
	"fmt"
	"time"
)

// Watts is electrical power.
type Watts float64

// Joules is energy. One Watt sustained for one second is one Joule.
type Joules float64

// WattSeconds returns the energy of drawing p for d.
func WattSeconds(p Watts, d time.Duration) Joules {
	return Joules(float64(p) * d.Seconds())
}

// KWh converts energy to kilowatt-hours for reporting.
func (j Joules) KWh() float64 { return float64(j) / 3.6e6 }

// StateSpec describes one sleep state of a server platform.
type StateSpec struct {
	// Power is the draw while parked in the state.
	Power Watts
	// EntryLatency is how long the platform takes to enter the state,
	// during which it is unavailable and draws EntryPower.
	EntryLatency time.Duration
	// ExitLatency is how long the platform takes to come back to S0,
	// during which it is unavailable and draws ExitPower.
	ExitLatency time.Duration
	// EntryPower and ExitPower are the draws during transitions. Exit
	// (resume/boot) typically runs near peak power.
	EntryPower Watts
	ExitPower  Watts
}

// EntryEnergy is the energy spent entering the state.
func (s StateSpec) EntryEnergy() Joules { return WattSeconds(s.EntryPower, s.EntryLatency) }

// ExitEnergy is the energy spent leaving the state.
func (s StateSpec) ExitEnergy() Joules { return WattSeconds(s.ExitPower, s.ExitLatency) }

// CycleLatency is the total unavailability of one park/unpark cycle.
func (s StateSpec) CycleLatency() time.Duration { return s.EntryLatency + s.ExitLatency }

// CycleEnergy is the total transition energy of one park/unpark cycle.
func (s StateSpec) CycleEnergy() Joules { return s.EntryEnergy() + s.ExitEnergy() }

// Profile is the full power calibration of one server model.
type Profile struct {
	// Name identifies the calibration in reports.
	Name string
	// PeakPower is the draw at 100% utilization in S0.
	PeakPower Watts
	// IdlePower is the draw at 0% utilization in S0 with only shallow
	// (C1-class) idle states — the energy-proportionality gap the paper
	// motivates with.
	IdlePower Watts
	// DeepIdlePower, when >0, is the draw at 0% utilization with deep
	// package C-states (C6-class) enabled. Deep C-state transitions are
	// microseconds–milliseconds, invisible at management time scale, so
	// they are folded into the idle point of the curve rather than
	// modelled as explicit transitions.
	DeepIdlePower Watts
	// Curve optionally gives a SPECpower-style piecewise-linear
	// utilization→power curve as draws at 0%,10%,…,100% utilization
	// (11 points). When nil, the curve is linear between IdlePower and
	// PeakPower.
	Curve []Watts
	// Sleep holds the platform's reachable sleep states.
	Sleep map[State]StateSpec
	// FreqMin, when >0, enables DVFS: the platform can run at any
	// frequency factor in [FreqMin, 1]. Dynamic power scales ~f² per
	// unit of work (f³ at constant utilization), static/idle power is
	// unaffected — which is exactly why DVFS alone cannot approach
	// energy proportionality and the paper reaches for server-level
	// sleep states instead.
	FreqMin float64
	// ResumeFailProb is the probability that an S3 resume fails and
	// the platform falls back to a power-cycle plus full boot (S5 exit
	// path). Suspend-to-RAM resume is the one fragile step of the
	// low-latency state story, so robustness experiments inject
	// failures here. Zero for a healthy platform.
	ResumeFailProb float64
}

// DefaultProfile returns the reproduction's calibration anchors for a
// 2-socket enterprise server (see DESIGN.md "Calibrated power-state
// parameters"). These stand in for the paper's prototype measurements.
func DefaultProfile() *Profile {
	return &Profile{
		Name:          "enterprise-2s",
		PeakPower:     250,
		IdlePower:     150,
		DeepIdlePower: 120,
		FreqMin:       0.4,
		Sleep: map[State]StateSpec{
			S3: {
				Power:        12,
				EntryLatency: 8 * time.Second,
				ExitLatency:  15 * time.Second,
				EntryPower:   150,
				ExitPower:    220,
			},
			S5: {
				Power:        4,
				EntryLatency: 45 * time.Second,
				ExitLatency:  190 * time.Second,
				EntryPower:   150,
				ExitPower:    230,
			},
		},
	}
}

// Validate checks the profile for internal consistency.
func (p *Profile) Validate() error {
	if p.PeakPower <= 0 {
		return fmt.Errorf("power: profile %q: peak power %v must be positive", p.Name, p.PeakPower)
	}
	if p.IdlePower < 0 || p.IdlePower > p.PeakPower {
		return fmt.Errorf("power: profile %q: idle power %v outside [0, peak=%v]", p.Name, p.IdlePower, p.PeakPower)
	}
	if p.DeepIdlePower < 0 || p.DeepIdlePower > p.IdlePower {
		return fmt.Errorf("power: profile %q: deep-idle power %v outside [0, idle=%v]", p.Name, p.DeepIdlePower, p.IdlePower)
	}
	if p.Curve != nil && len(p.Curve) != 11 {
		return fmt.Errorf("power: profile %q: curve has %d points, want 11", p.Name, len(p.Curve))
	}
	for i := 1; i < len(p.Curve); i++ {
		if p.Curve[i] < p.Curve[i-1] {
			return fmt.Errorf("power: profile %q: curve not monotonic at point %d", p.Name, i)
		}
	}
	if p.ResumeFailProb < 0 || p.ResumeFailProb > 1 {
		return fmt.Errorf("power: profile %q: resume failure probability %v outside [0,1]", p.Name, p.ResumeFailProb)
	}
	if p.FreqMin < 0 || p.FreqMin > 1 {
		return fmt.Errorf("power: profile %q: minimum frequency %v outside [0,1]", p.Name, p.FreqMin)
	}
	for st, spec := range p.Sleep {
		if !st.IsSleep() {
			return fmt.Errorf("power: profile %q: %v is not a sleep state", p.Name, st)
		}
		if spec.Power < 0 || spec.Power > p.IdlePower {
			return fmt.Errorf("power: profile %q: %v power %v outside [0, idle=%v]", p.Name, st, spec.Power, p.IdlePower)
		}
		if spec.EntryLatency < 0 || spec.ExitLatency < 0 {
			return fmt.Errorf("power: profile %q: %v has negative latency", p.Name, st)
		}
	}
	return nil
}

// Clone returns a deep copy that can be mutated independently.
func (p *Profile) Clone() *Profile {
	q := *p
	if p.Curve != nil {
		q.Curve = append([]Watts(nil), p.Curve...)
	}
	q.Sleep = make(map[State]StateSpec, len(p.Sleep))
	for k, v := range p.Sleep {
		q.Sleep[k] = v
	}
	return &q
}

// ActivePower returns the S0 draw at CPU utilization u in [0,1],
// interpolating the piecewise curve if present and otherwise the
// linear idle–peak model. Utilization is clamped to [0,1]. The u==0
// point reflects DeepIdlePower when configured: deep C-states engage
// whenever the server is truly idle.
func (p *Profile) ActivePower(u float64) Watts {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	if u == 0 && p.DeepIdlePower > 0 {
		return p.DeepIdlePower
	}
	if p.Curve != nil {
		pos := u * 10
		i := int(pos)
		if i >= 10 {
			return p.Curve[10]
		}
		frac := pos - float64(i)
		return p.Curve[i] + Watts(frac)*(p.Curve[i+1]-p.Curve[i])
	}
	return p.IdlePower + Watts(u)*(p.PeakPower-p.IdlePower)
}

// ActivePowerAtFreq returns the S0 draw when the host is busy with a
// u fraction of its *full-speed* capacity while clocked at frequency
// factor f ∈ (0,1]: static power stays, the dynamic portion scales by
// f² (same work, quadratically less switching power).
func (p *Profile) ActivePowerAtFreq(u, f float64) Watts {
	if f >= 1 || f <= 0 {
		return p.ActivePower(u)
	}
	base := p.ActivePower(u)
	static := p.IdlePower
	if u == 0 && p.DeepIdlePower > 0 {
		static = p.DeepIdlePower
	}
	dyn := base - static
	if dyn < 0 {
		dyn = 0
	}
	return static + Watts(f*f)*dyn
}

// SleepSpec returns the spec of a sleep state and whether the platform
// supports it.
func (p *Profile) SleepSpec(st State) (StateSpec, bool) {
	spec, ok := p.Sleep[st]
	return spec, ok
}

// ProportionalPower is the draw an ideal energy-proportional server
// would have at utilization u: zero at idle, peak at full load. It is
// the lower bound the paper's Oracle policy is compared against.
func (p *Profile) ProportionalPower(u float64) Watts {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return Watts(u) * p.PeakPower
}
