package power

import (
	"math"
	"testing"
	"time"

	"agilepower/internal/sim"
)

// scriptInjector returns pre-scripted faults in order, then zero
// faults forever.
type scriptInjector struct {
	sleep []Fault
	wake  []Fault
}

func (s *scriptInjector) SleepFault(State) Fault {
	if len(s.sleep) == 0 {
		return Fault{}
	}
	f := s.sleep[0]
	s.sleep = s.sleep[1:]
	return f
}

func (s *scriptInjector) WakeFault(State) Fault {
	if len(s.wake) == 0 {
		return Fault{}
	}
	f := s.wake[0]
	s.wake = s.wake[1:]
	return f
}

func TestSleepFaultFailSettlesBackOn(t *testing.T) {
	eng, m := newTestMachine(t)
	m.SetFaultInjector(&scriptInjector{sleep: []Fault{{Fail: true}}})
	var settled []State
	m.OnSettled(func(st State) { settled = append(settled, st) })
	if err := m.Sleep(S3); err != nil {
		t.Fatal(err)
	}
	if m.Available() {
		t.Fatal("machine available mid-transition")
	}
	eng.RunUntil(sim.Time(DefaultProfile().Sleep[S3].EntryLatency))
	if !m.Available() {
		t.Fatalf("failed suspend should settle back in S0, machine is %v/%v", m.State(), m.Phase())
	}
	if len(settled) != 1 || settled[0] != S0 {
		t.Fatalf("settled = %v, want [S0]", settled)
	}
	st := m.Stats()
	if st.SuspendFailures != 1 {
		t.Fatalf("SuspendFailures = %d, want 1", st.SuspendFailures)
	}
	// A second, clean sleep must work.
	if err := m.Sleep(S3); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(eng.Now() + sim.Time(DefaultProfile().Sleep[S3].EntryLatency))
	if m.State() != S3 {
		t.Fatalf("clean retry did not park: %v", m.State())
	}
}

func TestSleepFaultExtraLatency(t *testing.T) {
	eng, m := newTestMachine(t)
	extra := 10 * time.Second
	m.SetFaultInjector(&scriptInjector{sleep: []Fault{{Extra: extra}}})
	if err := m.Sleep(S3); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(DefaultProfile().Sleep[S3].EntryLatency + extra)
	if m.TransitionEnd() != want {
		t.Fatalf("TransitionEnd = %v, want %v", m.TransitionEnd(), want)
	}
	eng.RunUntil(want - 1)
	if m.Phase() != Entering {
		t.Fatal("settled before the slowed latency elapsed")
	}
	eng.RunUntil(want)
	if m.State() != S3 || m.Phase() != Settled {
		t.Fatalf("machine %v/%v after slowed entry", m.State(), m.Phase())
	}
}

func TestWakeFaultFailFallsBackAsleep(t *testing.T) {
	eng, m := newTestMachine(t)
	m.SetFaultInjector(&scriptInjector{wake: []Fault{{Fail: true}}})
	spec := DefaultProfile().Sleep[S3]
	if err := m.Sleep(S3); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(spec.EntryLatency))
	if err := m.Wake(); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(eng.Now() + sim.Time(spec.ExitLatency))
	if m.State() != S3 || m.Phase() != Settled {
		t.Fatalf("failed wake should fall back to S3, machine is %v/%v", m.State(), m.Phase())
	}
	if st := m.Stats(); st.WakeFailures != 1 {
		t.Fatalf("WakeFailures = %d, want 1", st.WakeFailures)
	}
	// The retry (no scripted fault left) succeeds.
	if err := m.Wake(); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(eng.Now() + sim.Time(spec.ExitLatency))
	if !m.Available() {
		t.Fatalf("retry wake failed: %v/%v", m.State(), m.Phase())
	}
}

func TestCrashTakesMachineDownAndRepairs(t *testing.T) {
	eng, m := newTestMachine(t)
	m.SetUtilization(0.8)
	repair := time.Minute
	if err := m.Crash(repair); err != nil {
		t.Fatal(err)
	}
	if m.Available() || !m.Crashed() {
		t.Fatalf("crashed machine available=%v crashed=%v", m.Available(), m.Crashed())
	}
	if m.Utilization() != 0 {
		t.Fatal("crashed machine retains utilization")
	}
	start := eng.Now()
	eng.RunUntil(start + sim.Time(repair))
	if !m.Available() || m.Crashed() {
		t.Fatalf("repaired machine available=%v crashed=%v", m.Available(), m.Crashed())
	}
	st := m.Stats()
	if st.Crashes != 1 {
		t.Fatalf("Crashes = %d, want 1", st.Crashes)
	}
}

func TestCrashPowerDuringRepair(t *testing.T) {
	eng, m := newTestMachine(t)
	if err := m.Crash(100 * time.Second); err != nil {
		t.Fatal(err)
	}
	before := float64(m.Energy())
	eng.RunUntil(eng.Now() + sim.Time(100*time.Second))
	got := float64(m.Energy()) - before
	// Repair draws the S5 exit (boot) power on the default profile.
	want := float64(DefaultProfile().Sleep[S5].ExitPower) * 100
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("repair energy = %v J, want %v J", got, want)
	}
}

func TestCrashRejectsUnavailableAndBadRepair(t *testing.T) {
	eng, m := newTestMachine(t)
	if err := m.Crash(-time.Second); err == nil {
		t.Fatal("negative repair accepted")
	}
	if err := m.Sleep(S3); err != nil {
		t.Fatal(err)
	}
	if err := m.Crash(time.Minute); err == nil {
		t.Fatal("crash mid-transition accepted")
	}
	eng.RunUntil(sim.Time(DefaultProfile().Sleep[S3].EntryLatency))
	if err := m.Crash(time.Minute); err == nil {
		t.Fatal("crash while asleep accepted")
	}
}
