package power

import (
	"errors"
	"fmt"
	"time"

	"agilepower/internal/sim"
)

// Transition errors returned by Machine.
var (
	// ErrBusy — a transition is already in flight. Real platforms
	// cannot abort a suspend or boot halfway; callers must wait for the
	// completion callback.
	ErrBusy = errors.New("power: transition in progress")
	// ErrUnsupported — the profile has no spec for the requested state.
	ErrUnsupported = errors.New("power: state not supported by profile")
	// ErrNotOn — sleep was requested while not in S0, or wake while
	// already on.
	ErrNotOn = errors.New("power: invalid state for request")
)

// Stats are cumulative counters a Machine maintains for reporting.
type Stats struct {
	Energy      Joules                  // total energy consumed
	TimeIn      map[State]time.Duration // settled time per state
	TransitTime time.Duration           // time spent transitioning
	Entries     map[State]int           // sleep entries per state
	Exits       map[State]int           // sleep exits per state
	TransitionE Joules                  // energy spent in transitions
	// ResumeFailures counts S3 resumes that failed and fell back to a
	// full boot.
	ResumeFailures int
	// SuspendFailures counts injected sleep entries that did not take:
	// the machine spent the entry latency and settled back in S0.
	SuspendFailures int
	// WakeFailures counts injected sleep exits that did not take: the
	// machine spent the exit latency and settled back asleep.
	WakeFailures int
	// Crashes counts transient host crashes (power lost, then a repair
	// delay back to S0).
	Crashes int
}

// Machine is the power state machine of one server, driven by the
// simulation engine. It integrates energy exactly: every change of
// utilization or state accrues the interval since the previous change
// at the previous draw.
type Machine struct {
	eng     *sim.Engine
	profile *Profile

	state State
	phase Phase
	// target is the state being entered/exited toward while phase is
	// not Settled.
	target State
	// doneAt is when the in-flight transition completes.
	doneAt sim.Time

	util        float64
	freq        float64
	lastAccrual sim.Time
	stats       Stats

	// faults, when non-nil, is consulted on every admitted transition.
	// Nil (the default) is fully dormant.
	faults FaultInjector
	// crashed is true from Crash until the repair completes; it lets
	// invariant checks distinguish a crashed host (which may hold VMs
	// while unavailable) from a managed transition (which may not).
	crashed bool

	// onSettled, when non-nil, runs after every completed transition
	// with the newly settled state.
	onSettled func(State)
	// settleListener is the closure-free registration variant: one
	// shared listener value serves any number of machines, so binding a
	// fleet allocates nothing (see OnSettledListener).
	settleListener SettleListener
}

// SettleListener receives completed-transition notifications. It is
// the allocation-free alternative to an OnSettled closure: a pointer
// converts to this interface without heap allocation, so one listener
// can be registered on every machine of a fleet for free.
type SettleListener interface {
	MachineSettled(st State)
}

// NewMachine returns a machine settled in S0 at zero utilization.
func NewMachine(eng *sim.Engine, profile *Profile) (*Machine, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	return &Machine{
		eng:         eng,
		profile:     profile,
		state:       S0,
		phase:       Settled,
		freq:        1,
		lastAccrual: eng.Now(),
		stats: Stats{
			TimeIn:  make(map[State]time.Duration),
			Entries: make(map[State]int),
			Exits:   make(map[State]int),
		},
	}, nil
}

// cloneStateMap deep-copies a stats map, collapsing empty (or nil)
// maps to nil: cloned machines start with nil maps and lazily allocate
// on first write, so a fleet-scale clone performs no per-machine map
// allocations.
func cloneStateMap[V any](src map[State]V) map[State]V {
	if len(src) == 0 {
		return nil
	}
	out := make(map[State]V, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out
}

// CloneInto copies this machine's settled state into dst, attached to
// eng. The profile pointer is shared (profiles are immutable once a
// machine holds them); the stats maps are deep-copied. The fault
// injector and OnSettled callback/listener are not carried over — they
// bind to the owning cluster and must be re-registered by the caller. Cloning
// a machine with a transition in flight fails: the pending settle
// event lives in the old engine and cannot be transplanted.
func (m *Machine) CloneInto(dst *Machine, eng *sim.Engine) error {
	if m.phase != Settled {
		return fmt.Errorf("power: cannot clone machine mid-transition (%v→%v)", m.state, m.target)
	}
	*dst = Machine{
		eng:         eng,
		profile:     m.profile,
		state:       m.state,
		phase:       m.phase,
		target:      m.target,
		doneAt:      m.doneAt,
		util:        m.util,
		freq:        m.freq,
		lastAccrual: m.lastAccrual,
		stats:       m.stats,
	}
	dst.stats.TimeIn = cloneStateMap(m.stats.TimeIn)
	dst.stats.Entries = cloneStateMap(m.stats.Entries)
	dst.stats.Exits = cloneStateMap(m.stats.Exits)
	return nil
}

// Profile returns the machine's calibration.
func (m *Machine) Profile() *Profile { return m.profile }

// State returns the settled state (or, during a transition, the state
// being left).
func (m *Machine) State() State { return m.state }

// Phase returns whether the machine is settled or transitioning.
func (m *Machine) Phase() Phase { return m.phase }

// Target returns the destination of an in-flight transition; it is
// meaningful only when Phase() != Settled.
func (m *Machine) Target() State { return m.target }

// TransitionEnd returns when the in-flight transition completes; it is
// meaningful only when Phase() != Settled.
func (m *Machine) TransitionEnd() sim.Time { return m.doneAt }

// Available reports whether the server can run VM load right now.
func (m *Machine) Available() bool { return m.state == S0 && m.phase == Settled }

// OnSettled registers fn to run after every completed transition.
func (m *Machine) OnSettled(fn func(State)) { m.onSettled = fn }

// OnSettledListener registers l to be notified after every completed
// transition, alongside any OnSettled callback. One observer only.
func (m *Machine) OnSettledListener(l SettleListener) { m.settleListener = l }

// SetFaultInjector installs a transition fault injector (nil disables
// injection entirely — the default).
func (m *Machine) SetFaultInjector(f FaultInjector) { m.faults = f }

// Crashed reports whether the machine is currently down due to a crash
// (between Crash and the completed repair).
func (m *Machine) Crashed() bool { return m.crashed }

// Power returns the instantaneous draw.
func (m *Machine) Power() Watts {
	switch m.phase {
	case Entering:
		return m.profile.Sleep[m.target].EntryPower
	case Exiting:
		return m.profile.Sleep[m.state].ExitPower
	}
	if m.state == S0 {
		return m.profile.ActivePowerAtFreq(m.util, m.freq)
	}
	return m.profile.Sleep[m.state].Power
}

// Frequency returns the current DVFS frequency factor (1 when DVFS is
// unused).
func (m *Machine) Frequency() float64 { return m.freq }

// SetFrequency changes the DVFS operating point, accruing energy for
// the elapsed interval first. It fails when the profile has no DVFS
// range or f is outside [FreqMin, 1].
func (m *Machine) SetFrequency(f float64) error {
	if m.profile.FreqMin <= 0 {
		return fmt.Errorf("power: profile %q has no DVFS range", m.profile.Name)
	}
	if f < m.profile.FreqMin || f > 1 {
		return fmt.Errorf("power: frequency %v outside [%v, 1]", f, m.profile.FreqMin)
	}
	if f == m.freq {
		// No-op: the draw is unchanged, so energy keeps integrating
		// analytically from the last real change. Coalescing here keeps
		// the accrual sequence — and therefore every FP result —
		// identical whether callers poll every tick or only on change.
		return nil
	}
	m.accrue()
	m.freq = f
	return nil
}

// Utilization returns the current CPU utilization signal in [0,1].
func (m *Machine) Utilization() float64 { return m.util }

// SetUtilization updates the CPU utilization signal, accruing energy
// for the elapsed interval first. Utilization on a sleeping or
// transitioning machine is forced to zero.
func (m *Machine) SetUtilization(u float64) {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	if !m.Available() {
		u = 0
	}
	if u == m.util {
		// No-op: see SetFrequency. An unchanged utilization must not
		// split the accrual interval, so that a full-scan tick (which
		// calls this every step) and delta evaluation (which only calls
		// it when demand moved) produce bitwise-identical energy.
		return
	}
	m.accrue()
	m.util = u
}

// accrue charges the interval since the last accrual at the current
// draw and attributes settled/transition time.
func (m *Machine) accrue() {
	now := m.eng.Now()
	dt := now - m.lastAccrual
	if dt <= 0 {
		return
	}
	e := WattSeconds(m.Power(), dt)
	m.stats.Energy += e
	if m.phase == Settled {
		// Cloned machines start with nil maps (see CloneInto).
		if m.stats.TimeIn == nil {
			m.stats.TimeIn = make(map[State]time.Duration)
		}
		m.stats.TimeIn[m.state] += dt
	} else {
		m.stats.TransitTime += dt
		m.stats.TransitionE += e
	}
	m.lastAccrual = now
}

// Sleep starts a transition from S0 into the given sleep state. The
// machine becomes unavailable immediately; after the state's entry
// latency it settles and the OnSettled callback fires.
func (m *Machine) Sleep(st State) error {
	if !st.IsSleep() {
		return fmt.Errorf("%w: %v", ErrNotOn, st)
	}
	if _, ok := m.profile.Sleep[st]; !ok {
		return fmt.Errorf("%w: %v", ErrUnsupported, st)
	}
	if m.phase != Settled {
		return ErrBusy
	}
	if m.state != S0 {
		return fmt.Errorf("%w: sleep from %v", ErrNotOn, m.state)
	}
	m.accrue()
	m.util = 0
	m.phase = Entering
	m.target = st
	spec := m.profile.Sleep[st]
	latency := spec.EntryLatency
	settleIn := st
	if m.faults != nil {
		f := m.faults.SleepFault(st)
		if f.Extra > 0 {
			latency += f.Extra
		}
		if f.Fail {
			// The suspend does not take: the machine burns the entry
			// latency and comes back up running.
			settleIn = S0
			m.stats.SuspendFailures++
		}
	}
	m.doneAt = m.eng.Now() + latency
	if m.stats.Entries == nil {
		m.stats.Entries = make(map[State]int)
	}
	m.stats.Entries[st]++
	m.eng.ScheduleFunc(m.doneAt, func() { m.settle(settleIn) })
	return nil
}

// Wake starts a transition from the current sleep state back to S0.
// After the state's exit latency the machine settles in S0.
func (m *Machine) Wake() error {
	if m.phase != Settled {
		return ErrBusy
	}
	if !m.state.IsSleep() {
		return fmt.Errorf("%w: wake from %v", ErrNotOn, m.state)
	}
	m.accrue()
	from := m.state
	m.phase = Exiting
	m.target = S0
	spec := m.profile.Sleep[from]
	exit := spec.ExitLatency
	// A failed S3 resume falls back to a power cycle plus full boot:
	// the S5 exit path (or 10x the S3 exit when the profile has no S5
	// calibration).
	if from == S3 && m.eng.RNG().Bernoulli(m.profile.ResumeFailProb) {
		if s5, ok := m.profile.Sleep[S5]; ok {
			exit += s5.ExitLatency
		} else {
			exit += 9 * spec.ExitLatency
		}
		m.stats.ResumeFailures++
	}
	settleIn := S0
	if m.faults != nil {
		f := m.faults.WakeFault(from)
		if f.Extra > 0 {
			exit += f.Extra
		}
		if f.Fail {
			// The resume does not take at all: the machine burns the
			// exit latency and falls back asleep. Callers retry.
			settleIn = from
			m.stats.WakeFailures++
		}
	}
	m.doneAt = m.eng.Now() + exit
	if m.stats.Exits == nil {
		m.stats.Exits = make(map[State]int)
	}
	m.stats.Exits[from]++
	m.eng.ScheduleFunc(m.doneAt, func() { m.settle(settleIn) })
	return nil
}

// Crash takes an available machine down instantly — power is lost (the
// settled S5 draw, effectively off) — and schedules the repair: after
// the given delay the machine boots back to S0 and OnSettled fires.
// During the repair the machine draws the S5 exit (boot) power when the
// profile has an S5 calibration, and nothing otherwise. Crashing a
// machine that is asleep or mid-transition is rejected: parked servers
// have no workload to lose and transitions cannot be preempted.
func (m *Machine) Crash(repair time.Duration) error {
	if repair < 0 {
		return fmt.Errorf("power: negative repair delay %v", repair)
	}
	if !m.Available() {
		return fmt.Errorf("%w: crash while %v/%v", ErrNotOn, m.state, m.phase)
	}
	m.accrue()
	m.util = 0
	m.state = S5
	m.phase = Exiting
	m.target = S0
	m.crashed = true
	m.doneAt = m.eng.Now() + repair
	m.stats.Crashes++
	m.eng.ScheduleFunc(m.doneAt, func() { m.settle(S0) })
	return nil
}

// settle completes the in-flight transition.
func (m *Machine) settle(st State) {
	m.accrue()
	m.state = st
	m.phase = Settled
	m.crashed = false
	if m.onSettled != nil {
		m.onSettled(st)
	}
	if m.settleListener != nil {
		m.settleListener.MachineSettled(st)
	}
}

// Stats returns a snapshot of the cumulative counters, accrued up to
// the current virtual time.
func (m *Machine) Stats() Stats {
	m.accrue()
	out := m.stats
	out.TimeIn = make(map[State]time.Duration, len(m.stats.TimeIn))
	for k, v := range m.stats.TimeIn {
		out.TimeIn[k] = v
	}
	out.Entries = make(map[State]int, len(m.stats.Entries))
	for k, v := range m.stats.Entries {
		out.Entries[k] = v
	}
	out.Exits = make(map[State]int, len(m.stats.Exits))
	for k, v := range m.stats.Exits {
		out.Exits[k] = v
	}
	return out
}

// Energy returns total energy consumed up to the current virtual time.
func (m *Machine) Energy() Joules {
	m.accrue()
	return m.stats.Energy
}
