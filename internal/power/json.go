package power

import (
	"encoding/json"
	"fmt"
	"time"
)

// Profiles serialize to JSON so calibrations can live in config files
// and travel between the calibrate CLI, the API and the library. Sleep
// states are keyed by name ("S3", "S5") and durations are strings
// ("15s"), which keeps the files human-editable.

type profileJSON struct {
	Name           string                   `json:"name"`
	PeakPowerW     float64                  `json:"peakPowerW"`
	IdlePowerW     float64                  `json:"idlePowerW"`
	DeepIdlePowerW float64                  `json:"deepIdlePowerW,omitempty"`
	CurveW         []float64                `json:"curveW,omitempty"`
	Sleep          map[string]stateSpecJSON `json:"sleep,omitempty"`
	ResumeFailProb float64                  `json:"resumeFailProb,omitempty"`
}

type stateSpecJSON struct {
	PowerW       float64 `json:"powerW"`
	EntryLatency string  `json:"entryLatency"`
	ExitLatency  string  `json:"exitLatency"`
	EntryPowerW  float64 `json:"entryPowerW"`
	ExitPowerW   float64 `json:"exitPowerW"`
}

func stateByName(name string) (State, error) {
	switch name {
	case "S3":
		return S3, nil
	case "S5":
		return S5, nil
	default:
		return S0, fmt.Errorf("power: unknown sleep state %q (want S3 or S5)", name)
	}
}

// MarshalJSON implements json.Marshaler.
func (p *Profile) MarshalJSON() ([]byte, error) {
	out := profileJSON{
		Name:           p.Name,
		PeakPowerW:     float64(p.PeakPower),
		IdlePowerW:     float64(p.IdlePower),
		DeepIdlePowerW: float64(p.DeepIdlePower),
		ResumeFailProb: p.ResumeFailProb,
	}
	for _, w := range p.Curve {
		out.CurveW = append(out.CurveW, float64(w))
	}
	if len(p.Sleep) > 0 {
		out.Sleep = make(map[string]stateSpecJSON, len(p.Sleep))
		for st, spec := range p.Sleep {
			out.Sleep[st.String()] = stateSpecJSON{
				PowerW:       float64(spec.Power),
				EntryLatency: spec.EntryLatency.String(),
				ExitLatency:  spec.ExitLatency.String(),
				EntryPowerW:  float64(spec.EntryPower),
				ExitPowerW:   float64(spec.ExitPower),
			}
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler. The decoded profile is
// validated.
func (p *Profile) UnmarshalJSON(data []byte) error {
	var in profileJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("power: decoding profile: %w", err)
	}
	out := Profile{
		Name:           in.Name,
		PeakPower:      Watts(in.PeakPowerW),
		IdlePower:      Watts(in.IdlePowerW),
		DeepIdlePower:  Watts(in.DeepIdlePowerW),
		ResumeFailProb: in.ResumeFailProb,
	}
	for _, w := range in.CurveW {
		out.Curve = append(out.Curve, Watts(w))
	}
	if len(in.Sleep) > 0 {
		out.Sleep = make(map[State]StateSpec, len(in.Sleep))
		for name, spec := range in.Sleep {
			st, err := stateByName(name)
			if err != nil {
				return err
			}
			entry, err := time.ParseDuration(spec.EntryLatency)
			if err != nil {
				return fmt.Errorf("power: %s entry latency: %w", name, err)
			}
			exit, err := time.ParseDuration(spec.ExitLatency)
			if err != nil {
				return fmt.Errorf("power: %s exit latency: %w", name, err)
			}
			out.Sleep[st] = StateSpec{
				Power:        Watts(spec.PowerW),
				EntryLatency: entry,
				ExitLatency:  exit,
				EntryPower:   Watts(spec.EntryPowerW),
				ExitPower:    Watts(spec.ExitPowerW),
			}
		}
	}
	if err := out.Validate(); err != nil {
		return err
	}
	*p = out
	return nil
}
