package power

import (
	"math"
	"testing"
	"time"

	"agilepower/internal/sim"
)

func TestActivePowerAtFreqFullSpeedIdentity(t *testing.T) {
	p := DefaultProfile()
	for _, u := range []float64{0, 0.25, 0.5, 1} {
		if p.ActivePowerAtFreq(u, 1) != p.ActivePower(u) {
			t.Fatalf("f=1 diverges at u=%v", u)
		}
	}
}

func TestActivePowerAtFreqScalesDynamicOnly(t *testing.T) {
	p := DefaultProfile()
	// At u=0.5, base = 200 W: 150 static + 50 dynamic. At f=0.5 the
	// dynamic part scales by 0.25 → 162.5 W.
	got := p.ActivePowerAtFreq(0.5, 0.5)
	if math.Abs(float64(got-162.5)) > 1e-9 {
		t.Fatalf("P(0.5, f=0.5) = %v, want 162.5", got)
	}
	// Idle power is untouched by frequency (static dominated).
	if p.ActivePowerAtFreq(0, 0.4) != p.ActivePower(0) {
		t.Fatal("idle power changed with frequency")
	}
}

func TestActivePowerAtFreqMonotoneInF(t *testing.T) {
	p := DefaultProfile()
	prev := Watts(0)
	for i, f := range []float64{0.4, 0.6, 0.8, 1.0} {
		got := p.ActivePowerAtFreq(0.7, f)
		if i > 0 && got < prev {
			t.Fatalf("power decreased with rising frequency: %v at f=%v", got, f)
		}
		prev = got
	}
}

func TestFreqMinValidation(t *testing.T) {
	p := DefaultProfile()
	p.FreqMin = 1.5
	if err := p.Validate(); err == nil {
		t.Fatal("accepted FreqMin > 1")
	}
	p.FreqMin = -0.1
	if err := p.Validate(); err == nil {
		t.Fatal("accepted negative FreqMin")
	}
}

func TestMachineSetFrequency(t *testing.T) {
	eng := sim.NewEngine(1)
	m, err := NewMachine(eng, DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	if m.Frequency() != 1 {
		t.Fatalf("initial frequency = %v", m.Frequency())
	}
	m.SetUtilization(0.5)
	if err := m.SetFrequency(0.5); err != nil {
		t.Fatal(err)
	}
	if m.Power() != 162.5 {
		t.Fatalf("power at half clock = %v, want 162.5", m.Power())
	}
	if err := m.SetFrequency(0.2); err == nil {
		t.Fatal("accepted frequency below FreqMin")
	}
	if err := m.SetFrequency(1.1); err == nil {
		t.Fatal("accepted frequency above 1")
	}
}

func TestMachineSetFrequencyRejectedWithoutDVFS(t *testing.T) {
	p := DefaultProfile()
	p.FreqMin = 0
	m, err := NewMachine(sim.NewEngine(1), p)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetFrequency(0.8); err == nil {
		t.Fatal("accepted frequency change without a DVFS range")
	}
}

func TestFrequencyEnergyAccrual(t *testing.T) {
	eng := sim.NewEngine(1)
	m, err := NewMachine(eng, DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	m.SetUtilization(0.5) // 200 W at f=1
	eng.RunUntil(10 * time.Second)
	if err := m.SetFrequency(0.5); err != nil { // 162.5 W
		t.Fatal(err)
	}
	eng.RunUntil(20 * time.Second)
	want := 200.0*10 + 162.5*10
	if got := float64(m.Energy()); math.Abs(got-want) > 1e-6 {
		t.Fatalf("energy = %v, want %v", got, want)
	}
}
