package power

import (
	"math"
	"testing"
	"time"
)

func TestFacilityValidate(t *testing.T) {
	if err := DefaultFacility().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Facility{FixedW: -1, Proportional: 1.2}
	if err := bad.Validate(); err == nil {
		t.Error("accepted negative fixed overhead")
	}
	bad = Facility{FixedW: 100, Proportional: 0.9}
	if err := bad.Validate(); err == nil {
		t.Error("accepted proportional < 1")
	}
}

func TestFacilityTotalPower(t *testing.T) {
	f := DefaultFacility()
	if got := f.TotalPower(10000); got != 2000+12500 {
		t.Fatalf("total = %v, want 14500", got)
	}
	if got := f.TotalPower(-5); got != 2000 {
		t.Fatalf("negative IT clamps: %v", got)
	}
}

func TestFacilityPUEImprovesWithLoad(t *testing.T) {
	f := DefaultFacility()
	low := f.PUE(1000)
	high := f.PUE(20000)
	if low <= high {
		t.Fatalf("PUE should fall with load: %v vs %v", low, high)
	}
	// At 10 kW: (2000+12500)/10000 = 1.45.
	if got := f.PUE(10000); math.Abs(got-1.45) > 1e-9 {
		t.Fatalf("PUE(10kW) = %v, want 1.45", got)
	}
	if f.PUE(0) != 0 {
		t.Fatal("degenerate PUE not 0")
	}
}

func TestFacilityEnergy(t *testing.T) {
	f := DefaultFacility()
	// 1 hour at 10 kW IT: 36 MJ IT → facility = 2kW×3600 + 1.25×36MJ.
	it := Joules(36e6)
	got := f.Energy(it, time.Hour)
	want := Joules(2000*3600) + 1.25*it
	if math.Abs(float64(got-want)) > 1 {
		t.Fatalf("facility energy = %v, want %v", got, want)
	}
	if f.Energy(-5, time.Hour) != Joules(2000*3600) {
		t.Fatal("negative IT energy not clamped")
	}
}

// The facility view shrinks relative savings: fixed overhead dilutes
// any IT-level reduction.
func TestFacilityDilutesSavings(t *testing.T) {
	f := DefaultFacility()
	staticIT := Joules(100e6)
	dpmIT := Joules(70e6) // 30% IT savings
	d := 24 * time.Hour
	itSavings := 1 - float64(dpmIT)/float64(staticIT)
	facSavings := 1 - float64(f.Energy(dpmIT, d))/float64(f.Energy(staticIT, d))
	if facSavings >= itSavings {
		t.Fatalf("facility savings %v should be below IT savings %v", facSavings, itSavings)
	}
	if facSavings <= 0 {
		t.Fatal("facility savings vanished entirely")
	}
}
