package power

import (
	"math"
	"testing"
	"testing/quick"

	"agilepower/internal/sim"
)

func TestFitCurveRecoversLinear(t *testing.T) {
	var ms []Measurement
	for u := 0.0; u <= 1.001; u += 0.05 {
		ms = append(ms, Measurement{Util: math.Min(u, 1), Power: Watts(100 + 150*u)})
	}
	curve, err := FitCurve(ms)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 11 {
		t.Fatalf("curve length = %d", len(curve))
	}
	if math.Abs(float64(curve[0]-100)) > 5 || math.Abs(float64(curve[10]-250)) > 5 {
		t.Fatalf("endpoints = %v / %v, want ~100 / ~250", curve[0], curve[10])
	}
	if math.Abs(float64(curve[5]-175)) > 5 {
		t.Fatalf("midpoint = %v, want ~175", curve[5])
	}
}

func TestFitCurveAveragesNoise(t *testing.T) {
	rng := sim.NewRNG(1)
	var ms []Measurement
	for i := 0; i < 2000; i++ {
		u := rng.Float64()
		w := 100 + 150*u + rng.Norm(0, 8)
		if w < 0 {
			w = 0
		}
		ms = append(ms, Measurement{Util: u, Power: Watts(w)})
	}
	curve, err := FitCurve(ms)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatalf("fitted curve not monotone at %d: %v", i, curve)
		}
	}
	if math.Abs(float64(curve[5]-175)) > 10 {
		t.Fatalf("noisy midpoint = %v, want ~175", curve[5])
	}
}

func TestFitCurveInterpolatesGaps(t *testing.T) {
	// Only idle and peak measured: everything between interpolates.
	ms := []Measurement{
		{Util: 0, Power: 100},
		{Util: 1, Power: 300},
	}
	curve, err := FitCurve(ms)
	if err != nil {
		t.Fatal(err)
	}
	if curve[5] != 200 {
		t.Fatalf("interpolated midpoint = %v, want 200", curve[5])
	}
}

func TestFitCurveRejectsBadInput(t *testing.T) {
	if _, err := FitCurve(nil); err == nil {
		t.Error("accepted empty measurements")
	}
	if _, err := FitCurve([]Measurement{{Util: 2, Power: 10}}); err == nil {
		t.Error("accepted out-of-range utilization")
	}
	if _, err := FitCurve([]Measurement{{Util: 0.5, Power: -1}, {Util: 1, Power: 10}}); err == nil {
		t.Error("accepted negative power")
	}
	// A single decile cannot define a curve.
	if _, err := FitCurve([]Measurement{{Util: 0.5, Power: 10}, {Util: 0.52, Power: 11}}); err == nil {
		t.Error("accepted single-decile coverage")
	}
}

func TestIsotonicPAV(t *testing.T) {
	v := []float64{1, 3, 2, 2, 5, 4}
	isotonic(v)
	for i := 1; i < len(v); i++ {
		if v[i] < v[i-1] {
			t.Fatalf("isotonic output decreasing: %v", v)
		}
	}
	// PAV pools violators to their mean: {3,2,2} → 7/3.
	if math.Abs(v[1]-7.0/3) > 1e-9 {
		t.Fatalf("pooled value = %v, want 7/3", v[1])
	}
}

// Property: FitCurve output is always 11 monotone points within the
// measured power range.
func TestFitCurveProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 5
		rng := sim.NewRNG(seed)
		ms := make([]Measurement, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range ms {
			u := rng.Float64()
			w := rng.Range(50, 400)
			ms[i] = Measurement{Util: u, Power: Watts(w)}
			if w < lo {
				lo = w
			}
			if w > hi {
				hi = w
			}
		}
		curve, err := FitCurve(ms)
		if err != nil {
			// Single-decile coverage is a legitimate rejection.
			return true
		}
		for i, v := range curve {
			if float64(v) < lo-1e-9 || float64(v) > hi+1e-9 {
				return false
			}
			if i > 0 && v < curve[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrateProfile(t *testing.T) {
	ms := []Measurement{
		{Util: 0, Power: 110},
		{Util: 0.5, Power: 190},
		{Util: 1, Power: 260},
	}
	p, err := CalibrateProfile("fitted", ms, 90, DefaultProfile().Sleep)
	if err != nil {
		t.Fatal(err)
	}
	if p.PeakPower != 260 || p.IdlePower != 110 || p.DeepIdlePower != 90 {
		t.Fatalf("calibrated profile = %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// The calibrated profile drives a machine like any other.
	eng := sim.NewEngine(1)
	if _, err := NewMachine(eng, p); err != nil {
		t.Fatal(err)
	}
	// Sleep map is copied, not shared.
	src := DefaultProfile().Sleep
	s := src[S3]
	s.Power = 1
	src[S3] = s
	if p.Sleep[S3].Power == 1 {
		t.Fatal("CalibrateProfile shares the sleep map")
	}
}

func TestCalibrateProfileRejectsDeepIdleAboveIdle(t *testing.T) {
	ms := []Measurement{{Util: 0, Power: 100}, {Util: 1, Power: 200}}
	if _, err := CalibrateProfile("bad", ms, 150, nil); err == nil {
		t.Fatal("accepted deep idle above fitted idle")
	}
}

func TestSortMeasurements(t *testing.T) {
	ms := []Measurement{{Util: 0.9}, {Util: 0.1}, {Util: 0.5}}
	SortMeasurements(ms)
	if ms[0].Util != 0.1 || ms[2].Util != 0.9 {
		t.Fatalf("not sorted: %v", ms)
	}
}
