// Package cluster is the substrate the management layer operates on:
// an inventory of hosts and VMs, the committed placement map, in-flight
// migrations, and the periodic evaluation loop that turns VM demand
// traces into delivered CPU, host utilization, power draw and SLA
// accounting.
//
// The cluster is mechanism, not policy: it exposes the actuators the
// paper's manager uses (migrate a VM, sleep a host, wake a host) and
// faithfully charges their costs, but decides nothing itself.
//
// Host and VM IDs are dense (assigned 1, 2, 3, … in creation order),
// so all per-entity state lives in slices indexed by ID-1 rather than
// maps: the evaluation tick — the simulator's innermost loop — runs
// without hashing and, in steady state, without allocating.
//
// At fleet scale the tick itself can be sharded (Config.Shards):
// hosts are partitioned into fixed ID-contiguous ranges and the
// expensive per-host work runs concurrently on a bounded set of
// persistent workers, each writing into per-host slots; the cheap
// final reduction walks those slots serially in host-ID order, so the
// floating-point accumulation sequence — and therefore every report
// byte — is identical for any shard and worker count, including the
// serial path.
//
// On top of sharding, the tick can run in delta mode (Config.Delta):
// a host is re-evaluated only when marked dirty — by a cluster event
// (placement, migration, crash, power transition, DVFS move) or by a
// resident VM's demand trace reaching its next change time (a
// per-shard indexed min-heap of deadlines) — and the shard workers
// drain per-shard dirty queues instead of scanning fixed ranges.
// Quiescent hosts integrate energy and SLA time analytically: power
// accrues in closed-form watts × Δt segments between real changes, and
// each VM's (demand, delivered) run is charged in one SLA record when
// it ends. Because an unchanged input performs no floating-point
// operation in either mode, delta-vs-full is byte-identical too.
package cluster

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"agilepower/internal/events"
	"agilepower/internal/host"
	"agilepower/internal/migrate"
	"agilepower/internal/power"
	"agilepower/internal/sim"
	"agilepower/internal/telemetry"
	"agilepower/internal/vm"
)

// Config describes a cluster to create.
type Config struct {
	// EvalStep is the demand re-evaluation period (default 1 minute;
	// should match the workload trace interval).
	EvalStep time.Duration
	// Migration is the live-migration model (default
	// migrate.DefaultModel).
	Migration *migrate.Model
	// PerHostMigrationLimit caps concurrent migrations per host
	// (default 4).
	PerHostMigrationLimit int
	// Horizon, when positive, is the expected simulated duration. It
	// is only a capacity hint: the telemetry series are preallocated
	// for Horizon/EvalStep samples so the per-tick recording path does
	// not grow slices from nil on every run. Running past the horizon
	// stays correct, just reallocates.
	Horizon time.Duration
	// Shards partitions the evaluation tick's per-host work into this
	// many fixed, ID-contiguous host ranges run concurrently (clamped
	// to the host count at Start). 0 or 1 keeps the serial loop.
	// Results are byte-identical for every value — see the package
	// comment for the determinism argument.
	Shards int
	// EvalWorkers bounds the persistent goroutines that process shards
	// (<= 0 means min(Shards, GOMAXPROCS)). Like Shards, it is
	// invisible in the results.
	EvalWorkers int
	// Delta switches the evaluation tick from a full scan to delta
	// evaluation: after Start, a host is re-evaluated only when
	// something affecting its power or SLA changed — a resident's
	// demand trace advanced, a placement/migration/crash event landed,
	// a power transition settled, or its DVFS point moved. Quiescent
	// hosts integrate energy and SLA time analytically between events.
	// Like Shards, Delta is wall-clock only: every report byte is
	// identical with it on or off.
	Delta bool
	// TelemetryCap, when positive, bounds each cluster telemetry series
	// to about this many stored samples (see telemetry.Series.SetCap):
	// long runs fold samples into fixed-width bucket means instead of
	// growing without bound. Changes report bytes (deterministically) —
	// off by default.
	TelemetryCap int
}

// Cluster owns the simulated datacenter state.
type Cluster struct {
	eng  *sim.Engine
	step time.Duration
	// cfg is the Config the cluster was built from, kept verbatim so
	// Fork can rebuild an identically configured empty cluster.
	cfg Config

	// hostList holds every host in creation order; host N has ID N+1
	// and hosts are never removed, so the slice doubles as the cached
	// read-only view returned by Hosts().
	hostList []*host.Host
	// vmsByID is indexed by vm.ID-1 and nil once a VM departs.
	vmsByID []*vm.VM
	// vmList holds live VMs in creation order — the cached view
	// returned by VMs(). Departures splice it (cold path).
	vmList []*vm.VM
	// placement is indexed by vm.ID-1; 0 means not placed (pending,
	// departed, or never existed).
	placement []host.ID

	migrations *migrate.Manager

	// sla is indexed by vm.ID-1 and survives departure: a departed
	// VM's service history still counts toward the run's aggregate.
	// The trackers themselves live in slaArena chunks (fixed-capacity,
	// so the pointers are stable): one bump allocation per chunk
	// instead of one per VM, which matters at a million VMs.
	sla      []*telemetry.SLATracker
	slaArena [][]telemetry.SLATracker
	// current holds the open allocation run of each VM (indexed by
	// vm.ID-1): the (demand, delivered) pair in effect since rec.since.
	// A run is charged to the VM's SLA tracker in one closed-form
	// Record call when the pair changes (or the VM departs, or Flush
	// closes the books) — not once per tick — so an unchanged VM costs
	// nothing no matter how long it idles.
	current []allocRecord

	powerSeries     *telemetry.Series
	demandSeries    *telemetry.Series
	deliveredSeries *telemetry.Series
	activeSeries    *telemetry.Series

	onHostSettled     func(host.ID, power.State)
	onMigrationDone   func(vm.ID, host.ID)
	onMigrationFailed func(vm.ID, host.ID, host.ID)
	onHostCrashed     func(host.ID)
	// onHostDirty is the management layer's event feed: it fires on
	// every event-path change to a host's scheduling inputs (placement,
	// migration endpoints, crash/repair, power commands, settles, DVFS)
	// regardless of the evaluation mode. Unlike markDirty — which is a
	// no-op outside an active delta window — this callback is
	// unconditional, so an incremental manager can invalidate its
	// cached planning inputs even when the cluster itself runs full
	// scans. See noteDirty.
	onHostDirty func(host.ID)
	// vmEpoch counts VM-set changes (arrivals, placements-at-creation,
	// departures — including pending VMs, which touch no host and so
	// fire no dirty signal). Managers compare it across control steps
	// to detect that fleet membership moved.
	vmEpoch uint64

	// strandedCount is the number of VMs currently frozen on crashed
	// (unavailable) hosts; strandedVMSec integrates it over time in
	// run-length segments: the open segment started at strandedSince
	// and is folded in when the count changes (or at Flush).
	strandedCount int
	strandedVMSec float64
	strandedSince sim.Time

	// demandScale holds per-VM runtime demand multipliers (indexed by
	// vm.ID-1), the mechanism behind scenario demand-surge events. It
	// stays nil until the first ScaleDemandPrefix call, and an entry of
	// 0 or 1 means unscaled, so script-free runs never branch into the
	// scaling path and VMDemand degenerates to vm.Demand bit-for-bit.
	// The scale lives here, not on the VM: VM objects are shared by
	// pointer across prototype forks, and per-run mutable state must
	// stay with the run.
	demandScale []float64

	// onTick observers see every evaluation tick's cluster-wide
	// aggregates — the hook the scenario assertion engine and the
	// service's streaming-progress layer ride, so continuous predicates
	// and live dashboards are fed without scheduling a single extra
	// engine event (dormancy: an empty list changes nothing).
	onTick []func(TickStats)

	// pending marks VMs that have arrived but are not yet placed on a
	// host (dynamic provisioning, indexed by vm.ID-1). Their demand is
	// charged as unserved until placement. pendingCount lets the
	// evaluation tick skip the scan entirely in the common case.
	pending      []bool
	pendingCount int
	// arrivedAt records when each pending VM arrived; provisionLat
	// collects arrival→placement latencies. Cold path: stays a map.
	arrivedAt    map[vm.ID]sim.Time
	provisionLat []time.Duration

	nextHostID host.ID
	nextVMID   vm.ID
	started    bool

	departed int

	log *events.Log

	// Evaluation sharding and delta state (dormant until Start). Shard
	// k owns the host-index range shardBounds[k]; its worker writes
	// each host's partials into the hostPartial slots for that range,
	// and evaluate reduces the slots serially in host-ID order. The
	// slots are per host, not per shard, so the reduction's
	// floating-point order cannot depend on where the shard boundaries
	// fall. From Start on, every tick reduces from the slots — in full
	// mode all slots are refreshed first; in delta mode only dirty
	// hosts' slots are, and a clean host's cached slot is bitwise what
	// recomputing it would produce.
	shards      int
	evalWorkers int
	delta       bool
	shardBounds []shardRange
	shardSize   int
	hostPartial []hostPartial
	// evalNow and evalFull are the tick's parameters, published to the
	// workers by the evalWork sends (channel happens-before).
	evalNow  sim.Time
	evalFull bool
	evalWork chan int
	evalDone chan struct{}
	// primed flips true after the first post-Start evaluation: until
	// the partial slots, deadlines and heaps hold a full fleet
	// snapshot, every tick is a full one.
	primed bool
	closed bool

	// Delta bookkeeping (allocated at Start when delta is on).
	// dirtyQ[s] is shard s's queue of event-dirtied host indices
	// (deduplicated by dirtyFlag); hostNext[i] is the earliest time a
	// resident of host i changes demand; dueHeaps[s] is shard s's
	// indexed min-heap over hostNext (heapPos[i] is i's position+1 in
	// its shard's heap, 0 when absent). All arrays are preallocated to
	// fleet size so steady-state ticks never allocate.
	dirtyQ    [][]int32
	dirtyFlag []bool
	hostNext  []sim.Time
	dueHeaps  [][]int32
	heapPos   []int32

	// Evaluation-volume counters (diagnostics, never reported):
	// tickCount counts evaluation passes; shardEvals[s] counts per-host
	// evaluations shard s performed (per shard so workers never share a
	// cache line on the hot path); directEvals counts per-host
	// evaluations on the serial direct path. EvalCounts sums them.
	tickCount   int64
	shardEvals  []int64
	directEvals int64
}

// never is the hostNext sentinel for "no future demand change": such
// hosts are left out of the due-heaps entirely.
const never = sim.Time(math.MaxInt64)

// shardRange is one shard's half-open host-index range.
type shardRange struct{ lo, hi int }

// hostPartial holds one host's contribution to the tick's aggregates,
// written by exactly one shard worker and read by the serial reduce.
// In delta mode a clean host's slot is simply reused: its inputs are
// unchanged, so the cached values are bitwise what evalHost would
// recompute.
type hostPartial struct {
	power     power.Watts
	demand    float64
	delivered float64
	avail     bool
	// vms caches NumVMs for the stranded count (residents only change
	// on events, which dirty the host).
	vms int
}

type allocRecord struct {
	demand    float64
	delivered float64
	slo       float64
	// since is when this (demand, delivered) run opened; the run is
	// charged to the SLA tracker as one closed-form Record when it
	// ends.
	since sim.Time
	// present distinguishes "no open run for this VM" (freshly added,
	// or departed) from a genuine zero record — the slice analogue of
	// the record existing in a map.
	present bool
}

// New builds an empty cluster attached to the engine.
func New(eng *sim.Engine, cfg Config) (*Cluster, error) {
	step := cfg.EvalStep
	if step <= 0 {
		step = time.Minute
	}
	model := migrate.DefaultModel()
	if cfg.Migration != nil {
		model = *cfg.Migration
	}
	mgr, err := migrate.NewManager(eng, model, cfg.PerHostMigrationLimit)
	if err != nil {
		return nil, err
	}
	// Preallocate one slot per evaluation tick (plus slack for the
	// start/flush samples) when the caller told us the horizon.
	seriesCap := 0
	if cfg.Horizon > 0 {
		seriesCap = int(cfg.Horizon/step) + 2
	}
	if cfg.TelemetryCap > 0 && seriesCap > cfg.TelemetryCap {
		seriesCap = 0 // SetCap below preallocates the bounded store
	}
	c := &Cluster{
		eng:             eng,
		step:            step,
		cfg:             cfg,
		migrations:      mgr,
		shards:          cfg.Shards,
		evalWorkers:     cfg.EvalWorkers,
		delta:           cfg.Delta,
		powerSeries:     telemetry.NewSeriesCap("cluster_power_w", seriesCap),
		demandSeries:    telemetry.NewSeriesCap("cluster_demand_cores", seriesCap),
		deliveredSeries: telemetry.NewSeriesCap("cluster_delivered_cores", seriesCap),
		activeSeries:    telemetry.NewSeriesCap("active_hosts", seriesCap),
		arrivedAt:       make(map[vm.ID]sim.Time),
		nextHostID:      1,
		nextVMID:        1,
		strandedSince:   eng.Now(),
		log:             events.NewLog(0),
	}
	if cfg.TelemetryCap > 0 {
		c.powerSeries.SetCap(cfg.TelemetryCap)
		c.demandSeries.SetCap(cfg.TelemetryCap)
		c.deliveredSeries.SetCap(cfg.TelemetryCap)
		c.activeSeries.SetCap(cfg.TelemetryCap)
	}
	mgr.OnComplete(c.finishMigration)
	mgr.OnFailed(c.failMigration)
	return c, nil
}

// hostByID returns the host with the given ID, or nil. IDs are dense,
// so this is a bounds check and an index.
func (c *Cluster) hostByID(id host.ID) *host.Host {
	if id < 1 || int(id) > len(c.hostList) {
		return nil
	}
	return c.hostList[id-1]
}

// vmByID returns the VM with the given ID, or nil if it never existed
// or has departed.
func (c *Cluster) vmByID(id vm.ID) *vm.VM {
	if id < 1 || int(id) > len(c.vmsByID) {
		return nil
	}
	return c.vmsByID[id-1]
}

// InjectFaults installs fault injectors on every host's power machine
// and on the migration manager. Call it after all hosts are added and
// before Start; passing nils disables injection (the default).
func (c *Cluster) InjectFaults(pf power.FaultInjector, mf migrate.FaultInjector) {
	for _, h := range c.hostList {
		h.SetFaultInjector(pf)
	}
	c.migrations.SetFaultInjector(mf)
}

// Fork copies a pristine cluster — fully built (hosts added, VMs
// placed) but never started, evaluated, or faulted — into an
// independent cluster attached to eng. The copy is flat: the host
// fleet clones in three arena allocations (host.CloneFleet), per-VM
// state copies as dense slices, and the construction event log is
// duplicated, while immutable structure (VM objects, demand traces,
// power profiles) is shared by pointer. Because a pristine cluster has
// scheduled no engine events, consumed no randomness, and recorded no
// telemetry, a forked cluster then driven through Start is
// byte-identical to building the same cluster cold — the invariant the
// snapshot/fork layer's golden tests pin. Fork only reads the source,
// so many forks may run concurrently from one prototype.
func (c *Cluster) Fork(eng *sim.Engine) (*Cluster, error) {
	if c.started || c.closed {
		return nil, fmt.Errorf("cluster: fork requires a cluster that has not been started")
	}
	if c.tickCount != 0 {
		return nil, fmt.Errorf("cluster: fork requires a pristine cluster (evaluations already ran)")
	}
	if eng.Now() != c.eng.Now() {
		return nil, fmt.Errorf("cluster: fork engine clock %v differs from source %v", eng.Now(), c.eng.Now())
	}
	if len(c.migrations.Inflights()) != 0 {
		return nil, fmt.Errorf("cluster: fork with in-flight migrations")
	}
	nc, err := New(eng, c.cfg)
	if err != nil {
		return nil, err
	}
	fleet, err := host.CloneFleet(eng, c.hostList)
	if err != nil {
		return nil, err
	}
	nc.hostList = fleet
	nc.nextHostID = c.nextHostID
	// Rebind the per-host observer exactly as AddHost does on the cold
	// path: one shared listener value, zero allocations across the
	// fleet.
	for _, h := range fleet {
		h.SetListener(nc)
	}
	// Per-VM dense state: flat slice copies, VM pointers shared. The two
	// pointer slices share one arena allocation, capacity-clipped so
	// appends copy-on-grow instead of clobbering the neighbor.
	vmArena := make([]*vm.VM, len(c.vmsByID)+len(c.vmList))
	nc.vmsByID = vmArena[:len(c.vmsByID):len(c.vmsByID)]
	copy(nc.vmsByID, c.vmsByID)
	nc.vmList = vmArena[len(c.vmsByID):len(vmArena):len(vmArena)]
	copy(nc.vmList, c.vmList)
	nc.placement = append([]host.ID(nil), c.placement...)
	nc.pending = append([]bool(nil), c.pending...)
	nc.pendingCount = c.pendingCount
	nc.current = append([]allocRecord(nil), c.current...)
	// SLA trackers rebuild in fixed-capacity arena chunks so the sla
	// pointers stay stable as later arrivals append into the open chunk
	// (see growVMState).
	if len(c.sla) > 0 {
		nc.sla = make([]*telemetry.SLATracker, 0, len(c.sla))
		nc.slaArena = make([][]telemetry.SLATracker, 0, len(c.slaArena))
		for _, chunk := range c.slaArena {
			copied := make([]telemetry.SLATracker, len(chunk), slaChunkSize)
			copy(copied, chunk)
			nc.slaArena = append(nc.slaArena, copied)
			for j := range copied {
				nc.sla = append(nc.sla, &copied[j])
			}
		}
	}
	for id, at := range c.arrivedAt {
		nc.arrivedAt[id] = at
	}
	nc.provisionLat = append([]time.Duration(nil), c.provisionLat...)
	nc.vmEpoch = c.vmEpoch
	nc.demandScale = append([]float64(nil), c.demandScale...)
	nc.strandedCount = c.strandedCount
	nc.strandedVMSec = c.strandedVMSec
	nc.strandedSince = c.strandedSince
	nc.nextVMID = c.nextVMID
	nc.departed = c.departed
	nc.log = c.log.Clone()
	return nc, nil
}

// Engine returns the simulation engine driving this cluster.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Events returns the cluster's audit log.
func (c *Cluster) Events() *events.Log { return c.log }

func (c *Cluster) record(kind events.Kind, vmID vm.ID, hostID host.ID, detail string) {
	c.log.Append(events.Event{
		At:     c.eng.Now(),
		Kind:   kind,
		VM:     int(vmID),
		Host:   int(hostID),
		Detail: detail,
	})
}

// EvalStep returns the demand re-evaluation period.
func (c *Cluster) EvalStep() time.Duration { return c.step }

// Migrations returns the migration manager (read-only use).
func (c *Cluster) Migrations() *migrate.Manager { return c.migrations }

// AddHost creates a host. All hosts must be added before Start.
func (c *Cluster) AddHost(cfg host.Config) (*host.Host, error) {
	if c.started {
		return nil, fmt.Errorf("cluster: cannot add hosts after Start")
	}
	id := c.nextHostID
	h, err := host.New(c.eng, id, cfg)
	if err != nil {
		return nil, err
	}
	c.nextHostID++
	c.hostList = append(c.hostList, h)
	h.SetListener(c)
	return h, nil
}

// HostChanged implements host.Listener: a host-local change to
// scheduling inputs (today: a DVFS frequency move) marks the host
// dirty for delta evaluation.
func (c *Cluster) HostChanged(id host.ID) { c.noteDirty(id) }

// HostSettled implements host.Listener: a completed power transition
// runs the cluster's settle bookkeeping.
func (c *Cluster) HostSettled(id host.ID, st power.State) { c.hostSettled(id, st) }

// slaChunkSize is the arena granularity for SLA trackers: large enough
// to amortize allocation at fleet scale, small enough not to waste
// memory on toy clusters.
const slaChunkSize = 1024

// growVMState appends one slot of per-VM state for a newly created VM.
func (c *Cluster) growVMState(v *vm.VM) {
	c.vmEpoch++
	c.vmsByID = append(c.vmsByID, v)
	c.vmList = append(c.vmList, v)
	c.placement = append(c.placement, 0)
	c.pending = append(c.pending, false)
	c.current = append(c.current, allocRecord{})
	if n := len(c.slaArena); n == 0 || len(c.slaArena[n-1]) == slaChunkSize {
		c.slaArena = append(c.slaArena, make([]telemetry.SLATracker, 0, slaChunkSize))
	}
	chunk := &c.slaArena[len(c.slaArena)-1]
	*chunk = append(*chunk, telemetry.SLATracker{})
	c.sla = append(c.sla, &(*chunk)[len(*chunk)-1])
}

// AddVM creates a VM and places it on the given host.
func (c *Cluster) AddVM(cfg vm.Config, on host.ID) (*vm.VM, error) {
	h := c.hostByID(on)
	if h == nil {
		return nil, fmt.Errorf("cluster: unknown host %d", on)
	}
	id := c.nextVMID
	v, err := vm.New(id, cfg)
	if err != nil {
		return nil, err
	}
	if c.GroupConflict(on, v.Group(), id) {
		return nil, fmt.Errorf("cluster: anti-affinity group %q conflict on host %d", v.Group(), on)
	}
	if err := h.Place(v); err != nil {
		return nil, err
	}
	c.nextVMID++
	c.growVMState(v)
	c.placement[id-1] = on
	c.noteDirty(on)
	c.record(events.VMPlaced, id, on, "initial")
	return v, nil
}

// AddPendingVM creates a VM that has arrived but is not yet placed —
// dynamic provisioning. Its demand is charged as fully unserved until
// the management layer places it with PlaceVM.
func (c *Cluster) AddPendingVM(cfg vm.Config) (*vm.VM, error) {
	id := c.nextVMID
	v, err := vm.New(id, cfg)
	if err != nil {
		return nil, err
	}
	c.nextVMID++
	c.growVMState(v)
	c.pending[id-1] = true
	c.pendingCount++
	c.arrivedAt[id] = c.eng.Now()
	c.record(events.VMArrived, id, 0, "")
	c.evaluate()
	return v, nil
}

// PlaceVM commits a pending VM onto a host, recording its provisioning
// latency.
func (c *Cluster) PlaceVM(id vm.ID, on host.ID) error {
	if id < 1 || int(id) > len(c.pending) || !c.pending[id-1] {
		return fmt.Errorf("cluster: vm %d is not pending", id)
	}
	h := c.hostByID(on)
	if h == nil {
		return fmt.Errorf("cluster: unknown host %d", on)
	}
	if !h.Available() {
		return fmt.Errorf("cluster: host %d not available", on)
	}
	v := c.vmsByID[id-1]
	if c.GroupConflict(on, v.Group(), id) {
		return fmt.Errorf("cluster: anti-affinity group %q conflict on host %d", v.Group(), on)
	}
	if err := h.Place(v); err != nil {
		return err
	}
	c.pending[id-1] = false
	c.pendingCount--
	c.placement[id-1] = on
	c.provisionLat = append(c.provisionLat, time.Duration(c.eng.Now()-c.arrivedAt[id]))
	delete(c.arrivedAt, id)
	c.noteDirty(on)
	c.record(events.VMPlaced, id, on, "provisioned")
	c.evaluate()
	return nil
}

// RemoveVM departs a VM (placed or pending). Migrating VMs cannot be
// removed mid-flight; callers retry after the migration commits.
func (c *Cluster) RemoveVM(id vm.ID) error {
	v := c.vmByID(id)
	if v == nil {
		return fmt.Errorf("cluster: unknown vm %d", id)
	}
	if c.migrations.Migrating(id) {
		return fmt.Errorf("cluster: vm %d is migrating; retry after it commits", id)
	}
	// Evaluate first so the departing VM's final allocation is current,
	// then close its open run while the record still exists.
	c.evaluate()
	c.closeRun(int(id)-1, c.eng.Now())
	if c.pending[id-1] {
		c.pending[id-1] = false
		c.pendingCount--
		delete(c.arrivedAt, id)
	} else if hid := c.placement[id-1]; hid != 0 {
		if err := c.hostList[hid-1].Remove(id); err != nil {
			return err
		}
		c.placement[id-1] = 0
		c.noteDirty(hid)
	}
	c.vmsByID[id-1] = nil
	for i, lv := range c.vmList {
		if lv == v {
			c.vmList = append(c.vmList[:i], c.vmList[i+1:]...)
			break
		}
	}
	c.current[id-1] = allocRecord{}
	// The SLA tracker stays in c.sla: departed VMs' service history
	// still counts toward the run's aggregate.
	c.vmEpoch++
	c.departed++
	c.record(events.VMRemoved, id, 0, "")
	c.evaluate()
	return nil
}

// PendingVMs returns the IDs of arrived-but-unplaced VMs in arrival
// order.
func (c *Cluster) PendingVMs() []vm.ID {
	var out []vm.ID
	for _, v := range c.vmList {
		if c.pending[v.ID()-1] {
			out = append(out, v.ID())
		}
	}
	return out
}

// Departed returns how many VMs have left the cluster.
func (c *Cluster) Departed() int { return c.departed }

// ProvisionLatencies returns arrival→placement latencies of all VMs
// placed so far (callers must not mutate).
func (c *Cluster) ProvisionLatencies() []time.Duration { return c.provisionLat }

// startEval builds the evaluation machinery the fleet's size fixes at
// Start: the shard partition (one ID-contiguous range per shard), the
// per-host partial slots every tick reduces from, the delta
// bookkeeping, and the persistent worker pool when there is more than
// one shard. Evaluations before Start (pending-VM arrivals during
// setup) take the direct serial path.
func (c *Cluster) startEval() {
	n := len(c.hostList)
	if n == 0 {
		return
	}
	s := c.shards
	if s > n {
		s = n
	}
	if s < 1 {
		s = 1
	}
	per := (n + s - 1) / s
	c.shardSize = per
	c.shardBounds = make([]shardRange, 0, s)
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		c.shardBounds = append(c.shardBounds, shardRange{lo: lo, hi: hi})
	}
	c.hostPartial = make([]hostPartial, n)
	c.shardEvals = make([]int64, len(c.shardBounds))
	if c.delta {
		c.dirtyFlag = make([]bool, n)
		c.hostNext = make([]sim.Time, n)
		c.heapPos = make([]int32, n)
		c.dirtyQ = make([][]int32, len(c.shardBounds))
		c.dueHeaps = make([][]int32, len(c.shardBounds))
		for k, b := range c.shardBounds {
			c.dirtyQ[k] = make([]int32, 0, b.hi-b.lo)
			c.dueHeaps[k] = make([]int32, 0, b.hi-b.lo)
		}
	}
	if len(c.shardBounds) <= 1 {
		return
	}
	w := c.evalWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(c.shardBounds) {
		w = len(c.shardBounds)
	}
	// Buffered to the shard count: the dispatch loop in evaluate never
	// blocks on a slow worker, and the channel operations stay
	// allocation-free in steady state.
	c.evalWork = make(chan int, len(c.shardBounds))
	c.evalDone = make(chan struct{}, len(c.shardBounds))
	for i := 0; i < w; i++ {
		go c.evalWorker()
	}
}

// shardOf maps a host index to its owning shard.
func (c *Cluster) shardOf(i int) int { return i / c.shardSize }

// noteDirty is the single entry point for event-path host changes: it
// feeds the management layer's unconditional dirty callback, then the
// delta tick's queue. Every mutation site (placement, migration
// endpoints, crash/repair, power commands, settles, DVFS) calls this
// rather than markDirty directly, so the two consumers can never
// drift apart.
func (c *Cluster) noteDirty(id host.ID) {
	if c.onHostDirty != nil {
		c.onHostDirty(id)
	}
	c.markDirty(id)
}

// OnHostDirty registers fn to run whenever an event-path change
// touches a host's scheduling inputs. One observer only; register
// before Start. The callback fires on the serial event paths (never
// concurrently with a running tick) and in delta and full-scan modes
// alike.
func (c *Cluster) OnHostDirty(fn func(host.ID)) { c.onHostDirty = fn }

// VMEpoch returns a counter that advances on every VM-set change
// (arrival, initial placement, departure — pending VMs included).
func (c *Cluster) VMEpoch() uint64 { return c.vmEpoch }

// MaxVMID returns the highest VM ID ever issued (IDs are monotonic
// and never reused), or 0 before the first VM.
func (c *Cluster) MaxVMID() vm.ID { return c.nextVMID - 1 }

// PendingCount returns how many arrived-but-unplaced VMs exist,
// without materializing the ID list (see PendingVMs).
func (c *Cluster) PendingCount() int { return c.pendingCount }

// markDirty queues host id for re-evaluation at the next tick. Called
// from the serial event paths only (never concurrently with a running
// tick); a no-op outside an active delta window (before Start, after
// Close, or with delta off) because those modes re-scan everything
// anyway.
func (c *Cluster) markDirty(id host.ID) {
	if c.dirtyFlag == nil || c.closed {
		return
	}
	i := int(id) - 1
	if i < 0 || i >= len(c.dirtyFlag) || c.dirtyFlag[i] {
		return
	}
	c.dirtyFlag[i] = true
	s := c.shardOf(i)
	c.dirtyQ[s] = append(c.dirtyQ[s], int32(i))
}

// evalWorker processes shard indices until Close. Each host's partials
// land in slots no other worker touches; the evalDone send publishes
// them to the reducing goroutine.
func (c *Cluster) evalWorker() {
	for s := range c.evalWork {
		c.runShard(s, c.evalNow, c.evalFull)
		c.evalDone <- struct{}{}
	}
}

// runShard performs one shard's slice of a tick: either a full refresh
// of every host in the shard, or — in a delta tick — only the hosts
// made dirty by events (the shard's queue) or by a resident's demand
// trace advancing (the shard's due-heap). Everything touched here is
// owned by this shard: its hosts' scratch and partial slots, its
// residents' allocation records and SLA trackers, its queue, its heap.
func (c *Cluster) runShard(s int, now sim.Time, full bool) {
	if full {
		b := c.shardBounds[s]
		for i := b.lo; i < b.hi; i++ {
			c.refreshHost(i, now)
		}
		c.shardEvals[s] += int64(b.hi - b.lo)
		return
	}
	evals := int64(0)
	q := c.dirtyQ[s]
	for _, i := range q {
		c.dirtyFlag[i] = false
		c.refreshHost(int(i), now)
	}
	evals += int64(len(q))
	c.dirtyQ[s] = q[:0]
	h := c.dueHeaps[s]
	for len(h) > 0 && c.hostNext[h[0]] <= now {
		c.refreshHost(int(h[0]), now)
		h = c.dueHeaps[s] // refreshHost reheapified
		evals++
	}
	c.shardEvals[s] += evals
}

// refreshHost recomputes one host's partial slot and, in delta mode,
// its next-demand-change deadline and due-heap entry.
func (c *Cluster) refreshHost(i int, now sim.Time) {
	h := c.hostList[i]
	c.hostPartial[i] = c.evalHost(h, now)
	if c.hostNext == nil {
		return
	}
	next := never
	for _, v := range h.Residents() {
		if nc := v.NextDemandChange(now); nc < next {
			next = nc
		}
	}
	c.hostNext[i] = next
	c.heapSet(c.shardOf(i), int32(i))
}

// heapSet inserts, repositions, or removes host index i in shard s's
// due-heap to match hostNext[i]. The heap is indexed (heapPos) so the
// update is in-place and allocation-free; a host has at most one entry.
func (c *Cluster) heapSet(s int, i int32) {
	h := c.dueHeaps[s]
	p := int(c.heapPos[i]) - 1
	if c.hostNext[i] == never {
		if p >= 0 {
			// Remove: move the tail into the hole and sift.
			last := len(h) - 1
			if p != last {
				h[p] = h[last]
				c.heapPos[h[p]] = int32(p) + 1
			}
			c.heapPos[i] = 0
			c.dueHeaps[s] = h[:last]
			if p != last {
				c.heapFix(s, p)
			}
		}
		return
	}
	if p < 0 {
		h = append(h, i)
		c.dueHeaps[s] = h
		p = len(h) - 1
		c.heapPos[i] = int32(p) + 1
	}
	c.heapFix(s, p)
}

// heapFix restores the heap property around position p.
func (c *Cluster) heapFix(s, p int) {
	if !c.heapDown(s, p) {
		c.heapUp(s, p)
	}
}

func (c *Cluster) heapUp(s, p int) {
	h := c.dueHeaps[s]
	for p > 0 {
		parent := (p - 1) / 2
		if c.hostNext[h[parent]] <= c.hostNext[h[p]] {
			break
		}
		h[p], h[parent] = h[parent], h[p]
		c.heapPos[h[p]] = int32(p) + 1
		c.heapPos[h[parent]] = int32(parent) + 1
		p = parent
	}
}

// heapDown sifts position p down; reports whether it moved.
func (c *Cluster) heapDown(s, p int) bool {
	h := c.dueHeaps[s]
	n := len(h)
	moved := false
	for {
		kid := 2*p + 1
		if kid >= n {
			break
		}
		if r := kid + 1; r < n && c.hostNext[h[r]] < c.hostNext[h[kid]] {
			kid = r
		}
		if c.hostNext[h[p]] <= c.hostNext[h[kid]] {
			break
		}
		h[p], h[kid] = h[kid], h[p]
		c.heapPos[h[p]] = int32(p) + 1
		c.heapPos[h[kid]] = int32(kid) + 1
		p = kid
		moved = true
	}
	return moved
}

// Close retires the evaluation machinery: shard workers stop, and
// every later evaluation — including a post-Close Flush — falls back
// to the direct serial full scan, which produces the same bytes.
// Idempotent.
func (c *Cluster) Close() {
	if c.closed {
		return
	}
	c.closed = true
	if c.evalWork != nil {
		close(c.evalWork)
	}
}

// Start performs the initial evaluation and schedules the periodic
// re-evaluation loop.
func (c *Cluster) Start() {
	if c.started {
		return
	}
	c.started = true
	c.startEval()
	c.evaluate()
	var tick func()
	tick = func() {
		c.evaluate()
		c.eng.AfterFunc(c.step, tick)
	}
	c.eng.AfterFunc(c.step, tick)
}

// Flush closes the accounting books up to the current virtual time:
// one evaluation at now, then every open SLA run and the open stranded
// segment are charged. Call it after the final RunUntil so SLA and
// telemetry cover the whole horizon, including the analytically
// integrated tails of quiescent VMs. Flush works after Close too — the
// post-Close evaluation is a full direct scan, never a delta pass, so
// a final report can never miss tail accounting.
func (c *Cluster) Flush() {
	c.evaluate()
	now := c.eng.Now()
	for i := range c.current {
		c.closeRun(i, now)
	}
	c.closeStranded(now)
}

// closeStranded charges the open stranded segment up to now.
func (c *Cluster) closeStranded(now sim.Time) {
	if dt := now - c.strandedSince; dt > 0 {
		c.strandedVMSec += float64(c.strandedCount) * time.Duration(dt).Seconds()
		c.strandedSince = now
	}
}

// evaluate recomputes allocations, utilization and telemetry at the
// current time.
//
// This is the simulator's innermost hot path: it runs once per
// EvalStep per run plus once per management action. It must not
// allocate in steady state — demand vectors live in per-host scratch
// buffers, allocations are written into host-owned records, and all
// per-VM state is indexed by dense IDs. Floating-point accumulation
// order is fixed (hosts in ID order, VMs in ascending ID within each
// host, pending VMs in creation order) so results stay byte-identical
// run to run — and identical between the full-scan and delta modes,
// because a clean host's cached partial is bitwise what recomputation
// would produce and an unchanged allocation run performs no
// floating-point operations at all in either mode.
func (c *Cluster) evaluate() {
	c.tickCount++
	now := c.eng.Now()
	if c.hostPartial == nil || c.closed {
		// Direct path: before Start the shard machinery does not exist
		// yet, and after Close it must not be used — both fall back to a
		// serial full scan, which produces the same bytes.
		c.evaluateDirect(now)
		return
	}
	// A delta tick only touches dirty hosts; every tick before the
	// delta bookkeeping is primed (the Start evaluation) is full, as is
	// every tick when delta is off.
	full := !c.delta || !c.primed
	if c.evalWork != nil {
		// Fan the per-host work out to the persistent workers, then
		// reduce the per-host slots serially in host-ID order below.
		c.evalNow = now
		c.evalFull = full
		for s := range c.shardBounds {
			c.evalWork <- s
		}
		for range c.shardBounds {
			<-c.evalDone
		}
	} else {
		for s := range c.shardBounds {
			c.runShard(s, now, full)
		}
	}
	c.primed = true
	totalPower := power.Watts(0)
	totalDemand, totalDelivered := 0.0, 0.0
	active, stranded := 0, 0
	for i := range c.hostPartial {
		p := &c.hostPartial[i]
		totalPower += p.power
		totalDemand += p.demand
		totalDelivered += p.delivered
		if p.avail {
			active++
		} else {
			stranded += p.vms
		}
	}
	c.finishTick(now, totalPower, totalDemand, totalDelivered, active, stranded)
}

// evaluateDirect is the partial-free serial scan used before Start and
// after Close.
func (c *Cluster) evaluateDirect(now sim.Time) {
	totalPower := power.Watts(0)
	totalDemand, totalDelivered := 0.0, 0.0
	active, stranded := 0, 0
	for _, h := range c.hostList {
		p := c.evalHost(h, now)
		totalPower += p.power
		totalDemand += p.demand
		totalDelivered += p.delivered
		if p.avail {
			active++
		} else {
			stranded += p.vms
		}
	}
	c.directEvals += int64(len(c.hostList))
	c.finishTick(now, totalPower, totalDemand, totalDelivered, active, stranded)
}

// EvalCounts returns how many evaluation passes have run and how many
// per-host evaluations they performed in total. Full-scan mode
// evaluates every host every pass; delta mode's host count is the
// fleet's actual change volume, so 1 − hostEvals/(ticks×hosts) is the
// skip ratio. Diagnostics only — deterministic within a mode but
// different between modes, so the numbers must never reach a report.
// Not safe to call while a sharded tick is in flight (call between
// engine steps or after Close).
func (c *Cluster) EvalCounts() (ticks, hostEvals int64) {
	hostEvals = c.directEvals
	for _, n := range c.shardEvals {
		hostEvals += n
	}
	return c.tickCount, hostEvals
}

// finishTick applies a tick's reduced aggregates: stranded-population
// accounting, pending-VM demand, and the telemetry samples.
func (c *Cluster) finishTick(now sim.Time, totalPower power.Watts, totalDemand, totalDelivered float64, active, stranded int) {
	// stranded counts VMs frozen on downed hosts. Only crashed hosts
	// can hold residents while unavailable, so the sum is exactly the
	// stranded population; the integral charges run-length segments at
	// the old count whenever it moves.
	if stranded != c.strandedCount {
		c.closeStranded(now)
		c.strandedCount = stranded
	}
	// Pending (unplaced) VMs demand but receive nothing — the cost of
	// provisioning latency.
	if c.pendingCount > 0 {
		for _, v := range c.vmList {
			i := int(v.ID()) - 1
			if !c.pending[i] {
				continue
			}
			d := c.VMDemand(v, now)
			rec := &c.current[i]
			if !rec.present || rec.demand != d {
				c.closeRun(i, now)
				*rec = allocRecord{demand: d, delivered: 0, slo: v.SLOTarget(), since: now, present: true}
			}
			totalDemand += d
		}
	}
	c.powerSeries.Append(now, float64(totalPower))
	c.demandSeries.Append(now, totalDemand)
	c.deliveredSeries.Append(now, totalDelivered)
	c.activeSeries.Append(now, float64(active))
	if len(c.onTick) > 0 {
		ts := TickStats{
			Now: now, PowerW: float64(totalPower),
			Demand: totalDemand, Delivered: totalDelivered,
			Active: active, Stranded: stranded, Pending: c.pendingCount,
		}
		for _, fn := range c.onTick {
			fn(ts)
		}
	}
}

// TickStats is one evaluation tick's cluster-wide aggregates, handed
// to the OnTick observer: the same numbers the telemetry series
// record, plus the stranded and pending populations.
type TickStats struct {
	Now       sim.Time
	PowerW    float64
	Demand    float64
	Delivered float64
	Active    int
	Stranded  int
	Pending   int
}

// OnTick registers fn to observe every evaluation tick's aggregates.
// Observers accumulate and run in registration order: the scenario
// assertion engine and the service's streaming-progress feed can both
// watch one run. Registration schedules no events and perturbs
// nothing — the simulation is byte-identical with any observer set.
func (c *Cluster) OnTick(fn func(TickStats)) { c.onTick = append(c.onTick, fn) }

// VMDemand returns v's CPU demand at time at, including any runtime
// demand scaling applied by scenario demand-surge events. With no
// scale in effect it returns exactly v.Demand(at) — same branch-free
// arithmetic, same bits — so script-free runs are untouched. A scale
// multiplies the raw trace demand and then applies the vCPU and limit
// caps in vm.Demand's clamping order.
func (c *Cluster) VMDemand(v *vm.VM, at sim.Time) float64 {
	if c.demandScale != nil {
		if i := int(v.ID()) - 1; i < len(c.demandScale) {
			if s := c.demandScale[i]; s != 0 && s != 1 {
				d := v.Trace().At(at) * s
				if vc := v.VCPUs(); d > vc {
					d = vc
				}
				if lim := v.LimitCores(); lim > 0 && d > lim {
					d = lim
				}
				return d
			}
		}
	}
	return v.Demand(at)
}

// ScaleDemandPrefix sets the demand multiplier of every live VM whose
// name starts with prefix ("" = all VMs) to factor (1 restores
// normal), returning how many VMs matched. Affected hosts are dirtied
// and the cluster re-evaluates once, so allocation runs, SLA
// accounting, and the delta machinery all see the step exactly at the
// event time. Repeated calls overwrite (absolute scale, not
// compounding); VMs arriving later are unscaled.
func (c *Cluster) ScaleDemandPrefix(prefix string, factor float64) int {
	matched := 0
	for _, v := range c.vmList {
		if prefix != "" && !strings.HasPrefix(v.Name(), prefix) {
			continue
		}
		if c.demandScale == nil {
			c.demandScale = make([]float64, len(c.vmsByID))
		}
		i := int(v.ID()) - 1
		if i >= len(c.demandScale) {
			grown := make([]float64, len(c.vmsByID))
			copy(grown, c.demandScale)
			c.demandScale = grown
		}
		c.demandScale[i] = factor
		matched++
		if h, ok := c.Placement(v.ID()); ok {
			c.noteDirty(h)
		}
	}
	if matched == 0 {
		return 0
	}
	c.record(events.DemandScaled, 0, 0,
		fmt.Sprintf("fleet %q ×%g (%d vms)", prefix, factor, matched))
	if c.started {
		c.evaluate()
	}
	return matched
}

// StrandedCount returns how many VMs are frozen on crashed hosts right
// now (as opposed to StrandedVMSeconds, the time integral) — the
// end-of-run health signal the CLIs turn into a nonzero exit.
func (c *Cluster) StrandedCount() int { return c.strandedCount }

// closeRun charges VM index i's open allocation run up to now and
// restarts the run there (no-op when there is no open run or it is
// empty) — idempotent, so callers may close defensively before
// rewriting or clearing the record.
func (c *Cluster) closeRun(i int, now sim.Time) {
	rec := &c.current[i]
	if !rec.present {
		return
	}
	if dt := now - rec.since; dt > 0 {
		c.sla[i].Record(dt, rec.demand, rec.delivered, rec.slo)
		rec.since = now
	}
}

// evalHost performs one host's share of the evaluation tick: fill the
// host's demand scratch, run the proportional-share scheduler, push
// utilization into the power model, and maintain the per-VM allocation
// runs — a run is closed (one closed-form SLA Record over its whole
// span) only when the VM's (demand, delivered) pair actually moved, so
// an idle-stable VM costs zero work and zero FP operations per tick.
// evalHost touches only state owned by this host (scratch buffers,
// power machine) or indexed by its resident VMs (c.current slots and
// SLA trackers — each VM is resident on exactly one host), plus
// read-only shared state (migration overhead map, engine clock), so
// distinct hosts can be evaluated concurrently.
func (c *Cluster) evalHost(h *host.Host, now sim.Time) hostPartial {
	res := h.Residents() // ascending VM ID
	demands := h.DemandScratch()
	for i, v := range res {
		demands[i] = c.VMDemand(v, now)
	}
	alloc := h.Schedule(demands, c.migrations.CPUOverhead(int(h.ID())))
	h.Machine().SetUtilization(alloc.Utilization)
	for i, v := range res {
		idx := int(v.ID()) - 1
		d, del := demands[i], alloc.DeliveredAt(i)
		rec := &c.current[idx]
		if rec.present && rec.demand == d && rec.delivered == del {
			continue // the open run extends — nothing to record
		}
		c.closeRun(idx, now)
		*rec = allocRecord{demand: d, delivered: del, slo: v.SLOTarget(), since: now, present: true}
	}
	return hostPartial{
		power:     h.Machine().Power(),
		demand:    alloc.TotalDemand,
		delivered: alloc.TotalDelivered,
		avail:     h.Available(),
		vms:       len(res),
	}
}

// hostSettled runs when a host finishes a power transition.
func (c *Cluster) hostSettled(id host.ID, st power.State) {
	c.noteDirty(id)
	c.record(events.HostSettled, 0, id, st.String())
	c.evaluate()
	if c.onHostSettled != nil {
		c.onHostSettled(id, st)
	}
}

// OnHostSettled registers fn to run after any host completes a power
// transition. The management layer uses this to react to wakes
// immediately instead of waiting for its next control period.
func (c *Cluster) OnHostSettled(fn func(host.ID, power.State)) { c.onHostSettled = fn }

// Hosts returns all hosts in creation order. The slice is a cached
// read-only view owned by the cluster — callers must not mutate it.
func (c *Cluster) Hosts() []*host.Host { return c.hostList }

// Host returns a host by ID.
func (c *Cluster) Host(id host.ID) (*host.Host, bool) {
	h := c.hostByID(id)
	return h, h != nil
}

// VMs returns all live VMs in creation order. The slice is a cached
// read-only view owned by the cluster — callers must not mutate it.
func (c *Cluster) VMs() []*vm.VM { return c.vmList }

// VM returns a VM by ID.
func (c *Cluster) VM(id vm.ID) (*vm.VM, bool) {
	v := c.vmByID(id)
	return v, v != nil
}

// Placement returns the host a VM currently runs on.
func (c *Cluster) Placement(id vm.ID) (host.ID, bool) {
	if id < 1 || int(id) > len(c.placement) || c.placement[id-1] == 0 {
		return 0, false
	}
	return c.placement[id-1], true
}

// Migrating reports whether the VM is in flight.
func (c *Cluster) Migrating(id vm.ID) bool { return c.migrations.Migrating(id) }

// GroupConflict reports whether placing a VM of the given
// anti-affinity group on host h would violate the group: another
// member is resident, or an in-flight migration is about to land one
// there. An empty group never conflicts.
func (c *Cluster) GroupConflict(h host.ID, group string, exclude vm.ID) bool {
	if group == "" {
		return false
	}
	hh := c.hostByID(h)
	if hh == nil {
		return false
	}
	for _, v := range hh.Residents() {
		if v.ID() == exclude {
			continue
		}
		if v.Group() == group {
			return true
		}
	}
	for _, mig := range c.migrations.Inflights() {
		if host.ID(mig.Dst) != h || mig.VM == exclude {
			continue
		}
		if v := c.vmByID(mig.VM); v != nil && v.Group() == group {
			return true
		}
	}
	return false
}

// StartMigration begins moving a VM to dst. The VM keeps running on
// its source (with migration CPU overhead on both ends) until the
// pre-copy completes; the final stop-and-copy downtime is charged to
// the VM's SLA.
func (c *Cluster) StartMigration(id vm.ID, dst host.ID) error {
	v := c.vmByID(id)
	if v == nil {
		return fmt.Errorf("cluster: unknown vm %d", id)
	}
	src, ok := c.Placement(id)
	if !ok {
		return fmt.Errorf("cluster: vm %d has no placement", id)
	}
	if src == dst {
		return fmt.Errorf("cluster: vm %d already on host %d", id, dst)
	}
	if srcHost := c.hostByID(src); srcHost == nil || !srcHost.Available() {
		// A manager acting on a stale view can order a move off a host
		// that has since crashed; the frozen VM cannot be pre-copied.
		return fmt.Errorf("cluster: source host %d not available", src)
	}
	dstHost := c.hostByID(dst)
	if dstHost == nil {
		return fmt.Errorf("cluster: unknown destination host %d", dst)
	}
	if !dstHost.Available() {
		return fmt.Errorf("cluster: destination host %d not available (%v/%v)",
			dst, dstHost.Machine().State(), dstHost.Machine().Phase())
	}
	if c.migrations.Migrating(id) {
		return fmt.Errorf("cluster: vm %d already migrating", id)
	}
	if !c.migrations.CanStart(int(src), int(dst)) {
		return fmt.Errorf("cluster: migration slots exhausted for %d→%d", src, dst)
	}
	if c.GroupConflict(dst, v.Group(), id) {
		return fmt.Errorf("cluster: anti-affinity group %q conflict on host %d", v.Group(), dst)
	}
	if err := dstHost.Reserve(id, v.MemoryGB()); err != nil {
		return err
	}
	if _, err := c.migrations.Start(id, int(src), int(dst), v.MemoryGB()); err != nil {
		dstHost.ReleaseReservation(id)
		return err
	}
	c.noteDirty(src)
	c.noteDirty(dst)
	c.record(events.MigrationStarted, id, dst, fmt.Sprintf("%d→%d", src, dst))
	c.evaluate() // migration overhead starts now
	return nil
}

// finishMigration commits a completed migration.
func (c *Cluster) finishMigration(mig *migrate.Migration) {
	v := c.vmsByID[mig.VM-1]
	src := c.hostList[mig.Src-1]
	dst := c.hostList[mig.Dst-1]
	if err := src.Remove(mig.VM); err != nil {
		panic(fmt.Sprintf("cluster: migration invariant broken: %v", err))
	}
	dst.ReleaseReservation(mig.VM)
	if err := dst.Place(v); err != nil {
		panic(fmt.Sprintf("cluster: migration reservation broken: %v", err))
	}
	c.placement[mig.VM-1] = host.ID(mig.Dst)
	c.noteDirty(host.ID(mig.Src))
	c.noteDirty(host.ID(mig.Dst))
	// The stop-and-copy pause fully blanks the VM.
	c.sla[mig.VM-1].RecordOutage(mig.Plan.Downtime, c.VMDemand(v, c.eng.Now()))
	c.record(events.MigrationCompleted, mig.VM, host.ID(mig.Dst),
		fmt.Sprintf("%d→%d in %v", mig.Src, mig.Dst, mig.Plan.Duration.Round(time.Millisecond)))
	c.evaluate()
	if c.onMigrationDone != nil {
		c.onMigrationDone(mig.VM, host.ID(mig.Dst))
	}
}

// OnMigrationDone registers fn to run after each migration commits.
// The management layer uses it to issue follow-up moves as soon as
// migration slots free up, instead of waiting for the next control
// period.
func (c *Cluster) OnMigrationDone(fn func(vm.ID, host.ID)) { c.onMigrationDone = fn }

// failMigration unwinds an aborted migration: the VM never left its
// source, so only the destination reservation is released.
func (c *Cluster) failMigration(mig *migrate.Migration) {
	dst := c.hostList[mig.Dst-1]
	dst.ReleaseReservation(mig.VM)
	c.noteDirty(host.ID(mig.Src)) // migration CPU overhead ends on both hosts
	c.noteDirty(host.ID(mig.Dst))
	c.record(events.MigrationFailed, mig.VM, host.ID(mig.Dst),
		fmt.Sprintf("%d→%d aborted", mig.Src, mig.Dst))
	c.evaluate()
	if c.onMigrationFailed != nil {
		c.onMigrationFailed(mig.VM, host.ID(mig.Src), host.ID(mig.Dst))
	}
}

// OnMigrationFailed registers fn to run after a migration aborts, with
// the VM and the move's source and destination. The VM is still on the
// source; the management layer re-plans.
func (c *Cluster) OnMigrationFailed(fn func(vm.ID, host.ID, host.ID)) { c.onMigrationFailed = fn }

// CrashHost takes an available host down transiently: its VMs freeze in
// place (delivering nothing) until the repair completes and the host
// boots back to S0, and every in-flight migration touching it aborts.
// Crashing an unavailable host fails — see power.Machine.Crash.
func (c *Cluster) CrashHost(id host.ID, repair time.Duration) error {
	h := c.hostByID(id)
	if h == nil {
		return fmt.Errorf("cluster: unknown host %d", id)
	}
	if err := h.Machine().Crash(repair); err != nil {
		return err
	}
	aborted := c.migrations.FailHost(int(id))
	c.noteDirty(id)
	c.record(events.HostCrashed, 0, id,
		fmt.Sprintf("repair %v, %d migrations aborted", repair.Round(time.Second), aborted))
	c.evaluate()
	if c.onHostCrashed != nil {
		c.onHostCrashed(id)
	}
	return nil
}

// OnHostCrashed registers fn to run after a host crashes (its repair is
// already scheduled; OnHostSettled fires when it returns).
func (c *Cluster) OnHostCrashed(fn func(host.ID)) { c.onHostCrashed = fn }

// StrandedVMSeconds returns the integral of VMs-frozen-on-crashed-hosts
// over time, in VM·seconds — the availability cost of crashes that the
// robustness experiment reports.
func (c *Cluster) StrandedVMSeconds() float64 { return c.strandedVMSec }

// TransitionFaultStats sums injected transition faults and crashes
// across all hosts.
func (c *Cluster) TransitionFaultStats() (suspendFailures, wakeFailures, crashes int) {
	for _, h := range c.hostList {
		st := h.Machine().Stats()
		suspendFailures += st.SuspendFailures
		wakeFailures += st.WakeFailures
		crashes += st.Crashes
	}
	return suspendFailures, wakeFailures, crashes
}

// SleepHost parks an empty, available host in the given sleep state.
func (c *Cluster) SleepHost(id host.ID, st power.State) error {
	h := c.hostByID(id)
	if h == nil {
		return fmt.Errorf("cluster: unknown host %d", id)
	}
	if !h.Empty() {
		return fmt.Errorf("cluster: host %d not empty (%d vms)", id, h.NumVMs())
	}
	if c.migrations.HostLoad(int(id)) > 0 {
		return fmt.Errorf("cluster: host %d has in-flight migrations", id)
	}
	if err := h.Machine().Sleep(st); err != nil {
		return err
	}
	c.noteDirty(id)
	c.record(events.HostSleeping, 0, id, st.String())
	c.evaluate()
	return nil
}

// WakeHost starts waking a sleeping host. The host becomes available
// after its power state's exit latency; OnHostSettled fires then.
func (c *Cluster) WakeHost(id host.ID) error {
	h := c.hostByID(id)
	if h == nil {
		return fmt.Errorf("cluster: unknown host %d", id)
	}
	if err := h.Machine().Wake(); err != nil {
		return err
	}
	c.noteDirty(id)
	c.record(events.HostWaking, 0, id, "")
	c.evaluate()
	return nil
}

// LastEvaluation returns the total demand and delivered CPU recorded
// at the most recent evaluation — the monitoring signal the manager's
// panic brake watches.
func (c *Cluster) LastEvaluation() (demand, delivered float64) {
	n := c.demandSeries.Len()
	if n == 0 {
		return 0, 0
	}
	return c.demandSeries.Points()[n-1].Value, c.deliveredSeries.Points()[n-1].Value
}

// TotalDemand returns the sum of all VM demands at the current time.
func (c *Cluster) TotalDemand() float64 {
	total := 0.0
	now := c.eng.Now()
	for _, v := range c.vmList {
		total += c.VMDemand(v, now)
	}
	return total
}

// TotalPower returns the instantaneous cluster draw.
func (c *Cluster) TotalPower() power.Watts {
	total := power.Watts(0)
	for _, h := range c.hostList {
		total += h.Machine().Power()
	}
	return total
}

// TotalEnergy returns the cluster energy consumed so far.
func (c *Cluster) TotalEnergy() power.Joules {
	total := power.Joules(0)
	for _, h := range c.hostList {
		total += h.Machine().Energy()
	}
	return total
}

// AvailableHosts returns hosts currently able to run VMs, in ID order.
func (c *Cluster) AvailableHosts() []*host.Host {
	var out []*host.Host
	for _, h := range c.hostList {
		if h.Available() {
			out = append(out, h)
		}
	}
	return out
}

// SLA returns the tracker of one VM. Trackers survive departure, so
// this resolves for any VM that ever existed.
func (c *Cluster) SLA(id vm.ID) (*telemetry.SLATracker, bool) {
	if id < 1 || int(id) > len(c.sla) {
		return nil, false
	}
	return c.sla[id-1], true
}

// AggregateSLA merges all VM trackers into one cluster-wide view.
// Trackers are merged in ascending VM ID order so the aggregation is
// deterministic. Open allocation runs (accounting coalesced since the
// last change — see allocRecord) are folded in virtually, without
// mutating the per-VM trackers, so the aggregate is complete at any
// time; after a Flush the fold contributes nothing.
func (c *Cluster) AggregateSLA() *telemetry.SLATracker {
	agg := &telemetry.SLATracker{}
	now := c.eng.Now()
	for i, s := range c.sla {
		agg.Merge(s)
		rec := &c.current[i]
		if rec.present {
			if dt := now - rec.since; dt > 0 {
				agg.Record(dt, rec.demand, rec.delivered, rec.slo)
			}
		}
	}
	return agg
}

// PowerSeries returns the sampled cluster power (watts).
func (c *Cluster) PowerSeries() *telemetry.Series { return c.powerSeries }

// DemandSeries returns the sampled total demand (cores).
func (c *Cluster) DemandSeries() *telemetry.Series { return c.demandSeries }

// DeliveredSeries returns the sampled delivered CPU (cores).
func (c *Cluster) DeliveredSeries() *telemetry.Series { return c.deliveredSeries }

// ActiveHostSeries returns the sampled count of available hosts.
func (c *Cluster) ActiveHostSeries() *telemetry.Series { return c.activeSeries }

// ResumeFailures returns total failed S3 resumes across all hosts.
func (c *Cluster) ResumeFailures() int {
	total := 0
	for _, h := range c.hostList {
		total += h.Machine().Stats().ResumeFailures
	}
	return total
}

// PowerActions returns total sleep entries and exits across all hosts.
func (c *Cluster) PowerActions() (entries, exits int) {
	for _, h := range c.hostList {
		st := h.Machine().Stats()
		for _, n := range st.Entries {
			entries += n
		}
		for _, n := range st.Exits {
			exits += n
		}
	}
	return entries, exits
}
