// Package cluster is the substrate the management layer operates on:
// an inventory of hosts and VMs, the committed placement map, in-flight
// migrations, and the periodic evaluation loop that turns VM demand
// traces into delivered CPU, host utilization, power draw and SLA
// accounting.
//
// The cluster is mechanism, not policy: it exposes the actuators the
// paper's manager uses (migrate a VM, sleep a host, wake a host) and
// faithfully charges their costs, but decides nothing itself.
package cluster

import (
	"fmt"
	"sort"
	"time"

	"agilepower/internal/events"
	"agilepower/internal/host"
	"agilepower/internal/migrate"
	"agilepower/internal/power"
	"agilepower/internal/sim"
	"agilepower/internal/telemetry"
	"agilepower/internal/vm"
)

// Config describes a cluster to create.
type Config struct {
	// EvalStep is the demand re-evaluation period (default 1 minute;
	// should match the workload trace interval).
	EvalStep time.Duration
	// Migration is the live-migration model (default
	// migrate.DefaultModel).
	Migration *migrate.Model
	// PerHostMigrationLimit caps concurrent migrations per host
	// (default 4).
	PerHostMigrationLimit int
	// Horizon, when positive, is the expected simulated duration. It
	// is only a capacity hint: the telemetry series are preallocated
	// for Horizon/EvalStep samples so the per-tick recording path does
	// not grow slices from nil on every run. Running past the horizon
	// stays correct, just reallocates.
	Horizon time.Duration
}

// Cluster owns the simulated datacenter state.
type Cluster struct {
	eng  *sim.Engine
	step time.Duration

	hosts   map[host.ID]*host.Host
	hostIDs []host.ID // insertion-ordered for determinism
	vms     map[vm.ID]*vm.VM
	vmIDs   []vm.ID
	// placement maps each VM to the host where it currently runs.
	placement map[vm.ID]host.ID

	migrations *migrate.Manager

	sla map[vm.ID]*telemetry.SLATracker
	// current holds the allocation computed at the last evaluation;
	// it is charged to the SLA trackers when the next evaluation
	// closes the interval.
	current  map[vm.ID]allocRecord
	lastEval sim.Time

	powerSeries     *telemetry.Series
	demandSeries    *telemetry.Series
	deliveredSeries *telemetry.Series
	activeSeries    *telemetry.Series

	onHostSettled     func(host.ID, power.State)
	onMigrationDone   func(vm.ID, host.ID)
	onMigrationFailed func(vm.ID, host.ID, host.ID)
	onHostCrashed     func(host.ID)

	// strandedCount is the number of VMs currently frozen on crashed
	// (unavailable) hosts; strandedVMSec integrates it over time.
	strandedCount int
	strandedVMSec float64

	// pending holds VMs that have arrived but are not yet placed on a
	// host (dynamic provisioning). Their demand is charged as unserved
	// until placement.
	pending map[vm.ID]bool
	// arrivedAt records when each pending VM arrived; provisionLat
	// collects arrival→placement latencies.
	arrivedAt    map[vm.ID]sim.Time
	provisionLat []time.Duration

	nextHostID host.ID
	nextVMID   vm.ID
	started    bool

	departed int

	log *events.Log
}

type allocRecord struct {
	demand    float64
	delivered float64
	slo       float64
}

// New builds an empty cluster attached to the engine.
func New(eng *sim.Engine, cfg Config) (*Cluster, error) {
	step := cfg.EvalStep
	if step <= 0 {
		step = time.Minute
	}
	model := migrate.DefaultModel()
	if cfg.Migration != nil {
		model = *cfg.Migration
	}
	mgr, err := migrate.NewManager(eng, model, cfg.PerHostMigrationLimit)
	if err != nil {
		return nil, err
	}
	// Preallocate one slot per evaluation tick (plus slack for the
	// start/flush samples) when the caller told us the horizon.
	seriesCap := 0
	if cfg.Horizon > 0 {
		seriesCap = int(cfg.Horizon/step) + 2
	}
	c := &Cluster{
		eng:             eng,
		step:            step,
		hosts:           make(map[host.ID]*host.Host),
		vms:             make(map[vm.ID]*vm.VM),
		placement:       make(map[vm.ID]host.ID),
		migrations:      mgr,
		sla:             make(map[vm.ID]*telemetry.SLATracker),
		current:         make(map[vm.ID]allocRecord),
		powerSeries:     telemetry.NewSeriesCap("cluster_power_w", seriesCap),
		demandSeries:    telemetry.NewSeriesCap("cluster_demand_cores", seriesCap),
		deliveredSeries: telemetry.NewSeriesCap("cluster_delivered_cores", seriesCap),
		activeSeries:    telemetry.NewSeriesCap("active_hosts", seriesCap),
		pending:         make(map[vm.ID]bool),
		arrivedAt:       make(map[vm.ID]sim.Time),
		nextHostID:      1,
		nextVMID:        1,
		log:             events.NewLog(0),
	}
	mgr.OnComplete(c.finishMigration)
	mgr.OnFailed(c.failMigration)
	return c, nil
}

// InjectFaults installs fault injectors on every host's power machine
// and on the migration manager. Call it after all hosts are added and
// before Start; passing nils disables injection (the default).
func (c *Cluster) InjectFaults(pf power.FaultInjector, mf migrate.FaultInjector) {
	for _, id := range c.hostIDs {
		c.hosts[id].SetFaultInjector(pf)
	}
	c.migrations.SetFaultInjector(mf)
}

// Engine returns the simulation engine driving this cluster.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Events returns the cluster's audit log.
func (c *Cluster) Events() *events.Log { return c.log }

func (c *Cluster) record(kind events.Kind, vmID vm.ID, hostID host.ID, detail string) {
	c.log.Append(events.Event{
		At:     c.eng.Now(),
		Kind:   kind,
		VM:     int(vmID),
		Host:   int(hostID),
		Detail: detail,
	})
}

// EvalStep returns the demand re-evaluation period.
func (c *Cluster) EvalStep() time.Duration { return c.step }

// Migrations returns the migration manager (read-only use).
func (c *Cluster) Migrations() *migrate.Manager { return c.migrations }

// AddHost creates a host. All hosts must be added before Start.
func (c *Cluster) AddHost(cfg host.Config) (*host.Host, error) {
	if c.started {
		return nil, fmt.Errorf("cluster: cannot add hosts after Start")
	}
	id := c.nextHostID
	h, err := host.New(c.eng, id, cfg)
	if err != nil {
		return nil, err
	}
	c.nextHostID++
	c.hosts[id] = h
	c.hostIDs = append(c.hostIDs, id)
	h.Machine().OnSettled(func(st power.State) { c.hostSettled(id, st) })
	return h, nil
}

// AddVM creates a VM and places it on the given host.
func (c *Cluster) AddVM(cfg vm.Config, on host.ID) (*vm.VM, error) {
	h, ok := c.hosts[on]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown host %d", on)
	}
	id := c.nextVMID
	v, err := vm.New(id, cfg)
	if err != nil {
		return nil, err
	}
	if c.GroupConflict(on, v.Group(), id) {
		return nil, fmt.Errorf("cluster: anti-affinity group %q conflict on host %d", v.Group(), on)
	}
	if err := h.Place(v); err != nil {
		return nil, err
	}
	c.nextVMID++
	c.vms[id] = v
	c.vmIDs = append(c.vmIDs, id)
	c.placement[id] = on
	c.sla[id] = &telemetry.SLATracker{}
	c.record(events.VMPlaced, id, on, "initial")
	return v, nil
}

// AddPendingVM creates a VM that has arrived but is not yet placed —
// dynamic provisioning. Its demand is charged as fully unserved until
// the management layer places it with PlaceVM.
func (c *Cluster) AddPendingVM(cfg vm.Config) (*vm.VM, error) {
	id := c.nextVMID
	v, err := vm.New(id, cfg)
	if err != nil {
		return nil, err
	}
	c.nextVMID++
	c.vms[id] = v
	c.vmIDs = append(c.vmIDs, id)
	c.sla[id] = &telemetry.SLATracker{}
	c.pending[id] = true
	c.arrivedAt[id] = c.eng.Now()
	c.record(events.VMArrived, id, 0, "")
	c.evaluate()
	return v, nil
}

// PlaceVM commits a pending VM onto a host, recording its provisioning
// latency.
func (c *Cluster) PlaceVM(id vm.ID, on host.ID) error {
	if !c.pending[id] {
		return fmt.Errorf("cluster: vm %d is not pending", id)
	}
	h, ok := c.hosts[on]
	if !ok {
		return fmt.Errorf("cluster: unknown host %d", on)
	}
	if !h.Available() {
		return fmt.Errorf("cluster: host %d not available", on)
	}
	v := c.vms[id]
	if c.GroupConflict(on, v.Group(), id) {
		return fmt.Errorf("cluster: anti-affinity group %q conflict on host %d", v.Group(), on)
	}
	if err := h.Place(v); err != nil {
		return err
	}
	delete(c.pending, id)
	c.placement[id] = on
	c.provisionLat = append(c.provisionLat, time.Duration(c.eng.Now()-c.arrivedAt[id]))
	delete(c.arrivedAt, id)
	c.record(events.VMPlaced, id, on, "provisioned")
	c.evaluate()
	return nil
}

// RemoveVM departs a VM (placed or pending). Migrating VMs cannot be
// removed mid-flight; callers retry after the migration commits.
func (c *Cluster) RemoveVM(id vm.ID) error {
	v, ok := c.vms[id]
	if !ok {
		return fmt.Errorf("cluster: unknown vm %d", id)
	}
	if c.migrations.Migrating(id) {
		return fmt.Errorf("cluster: vm %d is migrating; retry after it commits", id)
	}
	// Close the open accounting interval while the VM's allocation
	// record still exists, so its final interval is charged.
	c.evaluate()
	if c.pending[id] {
		delete(c.pending, id)
		delete(c.arrivedAt, id)
	} else if hid, ok := c.placement[id]; ok {
		if err := c.hosts[hid].Remove(id); err != nil {
			return err
		}
		delete(c.placement, id)
	}
	delete(c.vms, id)
	for i, vid := range c.vmIDs {
		if vid == id {
			c.vmIDs = append(c.vmIDs[:i], c.vmIDs[i+1:]...)
			break
		}
	}
	delete(c.current, id)
	// The SLA tracker stays in c.sla: departed VMs' service history
	// still counts toward the run's aggregate.
	c.departed++
	_ = v
	c.record(events.VMRemoved, id, 0, "")
	c.evaluate()
	return nil
}

// PendingVMs returns the IDs of arrived-but-unplaced VMs in arrival
// order.
func (c *Cluster) PendingVMs() []vm.ID {
	var out []vm.ID
	for _, id := range c.vmIDs {
		if c.pending[id] {
			out = append(out, id)
		}
	}
	return out
}

// Departed returns how many VMs have left the cluster.
func (c *Cluster) Departed() int { return c.departed }

// ProvisionLatencies returns arrival→placement latencies of all VMs
// placed so far (callers must not mutate).
func (c *Cluster) ProvisionLatencies() []time.Duration { return c.provisionLat }

// Start performs the initial evaluation and schedules the periodic
// re-evaluation loop.
func (c *Cluster) Start() {
	if c.started {
		return
	}
	c.started = true
	c.lastEval = c.eng.Now()
	c.evaluate()
	var tick func()
	tick = func() {
		c.evaluate()
		c.eng.After(c.step, tick)
	}
	c.eng.After(c.step, tick)
}

// Flush closes the accounting interval up to the current virtual time.
// Call it after the final RunUntil so SLA and telemetry cover the whole
// horizon.
func (c *Cluster) Flush() { c.evaluate() }

// evaluate closes the open accounting interval and recomputes
// allocations, utilization and telemetry at the current time.
func (c *Cluster) evaluate() {
	now := c.eng.Now()
	if dt := now - c.lastEval; dt > 0 {
		for id, rec := range c.current {
			c.sla[id].Record(dt, rec.demand, rec.delivered, rec.slo)
		}
		// Charge stranded time at the count that held over the closing
		// interval, mirroring the allocation records above.
		c.strandedVMSec += float64(c.strandedCount) * time.Duration(dt).Seconds()
	}
	c.lastEval = now

	totalPower := power.Watts(0)
	totalDemand, totalDelivered := 0.0, 0.0
	active := 0
	for _, hid := range c.hostIDs {
		h := c.hosts[hid]
		demands := make(map[vm.ID]float64)
		for _, vid := range h.VMs() {
			demands[vid] = c.vms[vid].Demand(now)
		}
		alloc := h.Schedule(demands, c.migrations.CPUOverhead(int(hid)))
		h.Machine().SetUtilization(alloc.Utilization)
		for _, vid := range h.VMs() {
			v := c.vms[vid]
			c.current[vid] = allocRecord{
				demand:    demands[vid],
				delivered: alloc.Delivered[vid],
				slo:       v.SLOTarget(),
			}
		}
		totalPower += h.Machine().Power()
		totalDemand += alloc.TotalDemand
		totalDelivered += alloc.TotalDelivered
		if h.Available() {
			active++
		}
	}
	// Recount VMs frozen on downed hosts for the interval just opened.
	// Only crashed hosts can hold residents while unavailable, so the
	// sum is exactly the stranded population.
	stranded := 0
	for _, hid := range c.hostIDs {
		if h := c.hosts[hid]; !h.Available() {
			stranded += h.NumVMs()
		}
	}
	c.strandedCount = stranded
	// Pending (unplaced) VMs demand but receive nothing — the cost of
	// provisioning latency.
	for _, vid := range c.vmIDs {
		if !c.pending[vid] {
			continue
		}
		v := c.vms[vid]
		d := v.Demand(now)
		c.current[vid] = allocRecord{demand: d, delivered: 0, slo: v.SLOTarget()}
		totalDemand += d
	}
	c.powerSeries.Append(now, float64(totalPower))
	c.demandSeries.Append(now, totalDemand)
	c.deliveredSeries.Append(now, totalDelivered)
	c.activeSeries.Append(now, float64(active))
}

// hostSettled runs when a host finishes a power transition.
func (c *Cluster) hostSettled(id host.ID, st power.State) {
	c.record(events.HostSettled, 0, id, st.String())
	c.evaluate()
	if c.onHostSettled != nil {
		c.onHostSettled(id, st)
	}
}

// OnHostSettled registers fn to run after any host completes a power
// transition. The management layer uses this to react to wakes
// immediately instead of waiting for its next control period.
func (c *Cluster) OnHostSettled(fn func(host.ID, power.State)) { c.onHostSettled = fn }

// Hosts returns all hosts in creation order.
func (c *Cluster) Hosts() []*host.Host {
	out := make([]*host.Host, len(c.hostIDs))
	for i, id := range c.hostIDs {
		out[i] = c.hosts[id]
	}
	return out
}

// Host returns a host by ID.
func (c *Cluster) Host(id host.ID) (*host.Host, bool) {
	h, ok := c.hosts[id]
	return h, ok
}

// VMs returns all VMs in creation order.
func (c *Cluster) VMs() []*vm.VM {
	out := make([]*vm.VM, len(c.vmIDs))
	for i, id := range c.vmIDs {
		out[i] = c.vms[id]
	}
	return out
}

// VM returns a VM by ID.
func (c *Cluster) VM(id vm.ID) (*vm.VM, bool) {
	v, ok := c.vms[id]
	return v, ok
}

// Placement returns the host a VM currently runs on.
func (c *Cluster) Placement(id vm.ID) (host.ID, bool) {
	h, ok := c.placement[id]
	return h, ok
}

// Migrating reports whether the VM is in flight.
func (c *Cluster) Migrating(id vm.ID) bool { return c.migrations.Migrating(id) }

// GroupConflict reports whether placing a VM of the given
// anti-affinity group on host h would violate the group: another
// member is resident, or an in-flight migration is about to land one
// there. An empty group never conflicts.
func (c *Cluster) GroupConflict(h host.ID, group string, exclude vm.ID) bool {
	if group == "" {
		return false
	}
	hh, ok := c.hosts[h]
	if !ok {
		return false
	}
	for _, vid := range hh.VMs() {
		if vid == exclude {
			continue
		}
		if c.vms[vid].Group() == group {
			return true
		}
	}
	for _, mig := range c.migrations.Inflights() {
		if host.ID(mig.Dst) != h || mig.VM == exclude {
			continue
		}
		if v, ok := c.vms[mig.VM]; ok && v.Group() == group {
			return true
		}
	}
	return false
}

// StartMigration begins moving a VM to dst. The VM keeps running on
// its source (with migration CPU overhead on both ends) until the
// pre-copy completes; the final stop-and-copy downtime is charged to
// the VM's SLA.
func (c *Cluster) StartMigration(id vm.ID, dst host.ID) error {
	v, ok := c.vms[id]
	if !ok {
		return fmt.Errorf("cluster: unknown vm %d", id)
	}
	src, ok := c.placement[id]
	if !ok {
		return fmt.Errorf("cluster: vm %d has no placement", id)
	}
	if src == dst {
		return fmt.Errorf("cluster: vm %d already on host %d", id, dst)
	}
	dstHost, ok := c.hosts[dst]
	if !ok {
		return fmt.Errorf("cluster: unknown destination host %d", dst)
	}
	if !dstHost.Available() {
		return fmt.Errorf("cluster: destination host %d not available (%v/%v)",
			dst, dstHost.Machine().State(), dstHost.Machine().Phase())
	}
	if c.migrations.Migrating(id) {
		return fmt.Errorf("cluster: vm %d already migrating", id)
	}
	if !c.migrations.CanStart(int(src), int(dst)) {
		return fmt.Errorf("cluster: migration slots exhausted for %d→%d", src, dst)
	}
	if c.GroupConflict(dst, v.Group(), id) {
		return fmt.Errorf("cluster: anti-affinity group %q conflict on host %d", v.Group(), dst)
	}
	if err := dstHost.Reserve(id, v.MemoryGB()); err != nil {
		return err
	}
	if _, err := c.migrations.Start(id, int(src), int(dst), v.MemoryGB()); err != nil {
		dstHost.ReleaseReservation(id)
		return err
	}
	c.record(events.MigrationStarted, id, dst, fmt.Sprintf("%d→%d", src, dst))
	c.evaluate() // migration overhead starts now
	return nil
}

// finishMigration commits a completed migration.
func (c *Cluster) finishMigration(mig *migrate.Migration) {
	v := c.vms[mig.VM]
	src := c.hosts[host.ID(mig.Src)]
	dst := c.hosts[host.ID(mig.Dst)]
	if err := src.Remove(mig.VM); err != nil {
		panic(fmt.Sprintf("cluster: migration invariant broken: %v", err))
	}
	dst.ReleaseReservation(mig.VM)
	if err := dst.Place(v); err != nil {
		panic(fmt.Sprintf("cluster: migration reservation broken: %v", err))
	}
	c.placement[mig.VM] = host.ID(mig.Dst)
	// The stop-and-copy pause fully blanks the VM.
	c.sla[mig.VM].RecordOutage(mig.Plan.Downtime, v.Demand(c.eng.Now()))
	c.record(events.MigrationCompleted, mig.VM, host.ID(mig.Dst),
		fmt.Sprintf("%d→%d in %v", mig.Src, mig.Dst, mig.Plan.Duration.Round(time.Millisecond)))
	c.evaluate()
	if c.onMigrationDone != nil {
		c.onMigrationDone(mig.VM, host.ID(mig.Dst))
	}
}

// OnMigrationDone registers fn to run after each migration commits.
// The management layer uses it to issue follow-up moves as soon as
// migration slots free up, instead of waiting for the next control
// period.
func (c *Cluster) OnMigrationDone(fn func(vm.ID, host.ID)) { c.onMigrationDone = fn }

// failMigration unwinds an aborted migration: the VM never left its
// source, so only the destination reservation is released.
func (c *Cluster) failMigration(mig *migrate.Migration) {
	dst := c.hosts[host.ID(mig.Dst)]
	dst.ReleaseReservation(mig.VM)
	c.record(events.MigrationFailed, mig.VM, host.ID(mig.Dst),
		fmt.Sprintf("%d→%d aborted", mig.Src, mig.Dst))
	c.evaluate()
	if c.onMigrationFailed != nil {
		c.onMigrationFailed(mig.VM, host.ID(mig.Src), host.ID(mig.Dst))
	}
}

// OnMigrationFailed registers fn to run after a migration aborts, with
// the VM and the move's source and destination. The VM is still on the
// source; the management layer re-plans.
func (c *Cluster) OnMigrationFailed(fn func(vm.ID, host.ID, host.ID)) { c.onMigrationFailed = fn }

// CrashHost takes an available host down transiently: its VMs freeze in
// place (delivering nothing) until the repair completes and the host
// boots back to S0, and every in-flight migration touching it aborts.
// Crashing an unavailable host fails — see power.Machine.Crash.
func (c *Cluster) CrashHost(id host.ID, repair time.Duration) error {
	h, ok := c.hosts[id]
	if !ok {
		return fmt.Errorf("cluster: unknown host %d", id)
	}
	if err := h.Machine().Crash(repair); err != nil {
		return err
	}
	aborted := c.migrations.FailHost(int(id))
	c.record(events.HostCrashed, 0, id,
		fmt.Sprintf("repair %v, %d migrations aborted", repair.Round(time.Second), aborted))
	c.evaluate()
	if c.onHostCrashed != nil {
		c.onHostCrashed(id)
	}
	return nil
}

// OnHostCrashed registers fn to run after a host crashes (its repair is
// already scheduled; OnHostSettled fires when it returns).
func (c *Cluster) OnHostCrashed(fn func(host.ID)) { c.onHostCrashed = fn }

// StrandedVMSeconds returns the integral of VMs-frozen-on-crashed-hosts
// over time, in VM·seconds — the availability cost of crashes that the
// robustness experiment reports.
func (c *Cluster) StrandedVMSeconds() float64 { return c.strandedVMSec }

// TransitionFaultStats sums injected transition faults and crashes
// across all hosts.
func (c *Cluster) TransitionFaultStats() (suspendFailures, wakeFailures, crashes int) {
	for _, id := range c.hostIDs {
		st := c.hosts[id].Machine().Stats()
		suspendFailures += st.SuspendFailures
		wakeFailures += st.WakeFailures
		crashes += st.Crashes
	}
	return suspendFailures, wakeFailures, crashes
}

// SleepHost parks an empty, available host in the given sleep state.
func (c *Cluster) SleepHost(id host.ID, st power.State) error {
	h, ok := c.hosts[id]
	if !ok {
		return fmt.Errorf("cluster: unknown host %d", id)
	}
	if !h.Empty() {
		return fmt.Errorf("cluster: host %d not empty (%d vms)", id, h.NumVMs())
	}
	if c.migrations.HostLoad(int(id)) > 0 {
		return fmt.Errorf("cluster: host %d has in-flight migrations", id)
	}
	if err := h.Machine().Sleep(st); err != nil {
		return err
	}
	c.record(events.HostSleeping, 0, id, st.String())
	c.evaluate()
	return nil
}

// WakeHost starts waking a sleeping host. The host becomes available
// after its power state's exit latency; OnHostSettled fires then.
func (c *Cluster) WakeHost(id host.ID) error {
	h, ok := c.hosts[id]
	if !ok {
		return fmt.Errorf("cluster: unknown host %d", id)
	}
	if err := h.Machine().Wake(); err != nil {
		return err
	}
	c.record(events.HostWaking, 0, id, "")
	c.evaluate()
	return nil
}

// LastEvaluation returns the total demand and delivered CPU recorded
// at the most recent evaluation — the monitoring signal the manager's
// panic brake watches.
func (c *Cluster) LastEvaluation() (demand, delivered float64) {
	n := c.demandSeries.Len()
	if n == 0 {
		return 0, 0
	}
	return c.demandSeries.Points()[n-1].Value, c.deliveredSeries.Points()[n-1].Value
}

// TotalDemand returns the sum of all VM demands at the current time.
func (c *Cluster) TotalDemand() float64 {
	total := 0.0
	now := c.eng.Now()
	for _, id := range c.vmIDs {
		total += c.vms[id].Demand(now)
	}
	return total
}

// TotalPower returns the instantaneous cluster draw.
func (c *Cluster) TotalPower() power.Watts {
	total := power.Watts(0)
	for _, id := range c.hostIDs {
		total += c.hosts[id].Machine().Power()
	}
	return total
}

// TotalEnergy returns the cluster energy consumed so far.
func (c *Cluster) TotalEnergy() power.Joules {
	total := power.Joules(0)
	for _, id := range c.hostIDs {
		total += c.hosts[id].Machine().Energy()
	}
	return total
}

// AvailableHosts returns hosts currently able to run VMs, in ID order.
func (c *Cluster) AvailableHosts() []*host.Host {
	var out []*host.Host
	for _, id := range c.hostIDs {
		if c.hosts[id].Available() {
			out = append(out, c.hosts[id])
		}
	}
	return out
}

// SLA returns the tracker of one VM.
func (c *Cluster) SLA(id vm.ID) (*telemetry.SLATracker, bool) {
	s, ok := c.sla[id]
	return s, ok
}

// AggregateSLA merges all VM trackers into one cluster-wide view.
func (c *Cluster) AggregateSLA() *telemetry.SLATracker {
	agg := &telemetry.SLATracker{}
	ids := make([]vm.ID, 0, len(c.sla))
	for id := range c.sla {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		agg.Merge(c.sla[id])
	}
	return agg
}

// PowerSeries returns the sampled cluster power (watts).
func (c *Cluster) PowerSeries() *telemetry.Series { return c.powerSeries }

// DemandSeries returns the sampled total demand (cores).
func (c *Cluster) DemandSeries() *telemetry.Series { return c.demandSeries }

// DeliveredSeries returns the sampled delivered CPU (cores).
func (c *Cluster) DeliveredSeries() *telemetry.Series { return c.deliveredSeries }

// ActiveHostSeries returns the sampled count of available hosts.
func (c *Cluster) ActiveHostSeries() *telemetry.Series { return c.activeSeries }

// ResumeFailures returns total failed S3 resumes across all hosts.
func (c *Cluster) ResumeFailures() int {
	total := 0
	for _, id := range c.hostIDs {
		total += c.hosts[id].Machine().Stats().ResumeFailures
	}
	return total
}

// PowerActions returns total sleep entries and exits across all hosts.
func (c *Cluster) PowerActions() (entries, exits int) {
	for _, id := range c.hostIDs {
		st := c.hosts[id].Machine().Stats()
		for _, n := range st.Entries {
			entries += n
		}
		for _, n := range st.Exits {
			exits += n
		}
	}
	return entries, exits
}
