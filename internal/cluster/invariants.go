package cluster

import (
	"fmt"
	"math"

	"agilepower/internal/host"
	"agilepower/internal/power"
	"agilepower/internal/vm"
)

// CheckInvariants verifies the cluster's structural consistency. It is
// meant for tests and debugging harnesses (the randomized stress tests
// call it after every event), not for hot paths. It returns the first
// violation found:
//
//   - the placement map and host containment agree bidirectionally,
//   - every VM is placed on exactly one host or pending, never both,
//   - per-host memory accounting matches the sum of resident VMs and
//     inbound reservations and fits capacity,
//   - migrating VMs are placed on their migration's source host,
//   - sleeping or transitioning hosts hold no VMs,
//   - power machines are in coherent state/phase combinations.
func (c *Cluster) CheckInvariants() error {
	// Placement → containment.
	seenOn := make(map[vm.ID]host.ID)
	for _, h := range c.hostList {
		hid := h.ID()
		memSum := 0.0
		groups := make(map[string]vm.ID)
		for _, vid := range h.VMs() {
			v := c.vmByID(vid)
			if v == nil {
				return fmt.Errorf("host %d contains unknown vm %d", hid, vid)
			}
			if prev, dup := seenOn[vid]; dup {
				return fmt.Errorf("vm %d resident on hosts %d and %d", vid, prev, hid)
			}
			seenOn[vid] = hid
			if got, ok := c.Placement(vid); !ok || got != hid {
				return fmt.Errorf("vm %d resident on host %d but placement says %v", vid, hid, got)
			}
			if c.pending[vid-1] {
				return fmt.Errorf("vm %d is both resident and pending", vid)
			}
			if g := v.Group(); g != "" {
				if other, dup := groups[g]; dup {
					return fmt.Errorf("anti-affinity group %q violated: vms %d and %d share host %d", g, other, vid, hid)
				}
				groups[g] = vid
			}
			memSum += v.MemoryGB()
		}
		// CPU reservation admission must hold.
		resSum := 0.0
		for _, v := range h.Residents() {
			resSum += v.ReservedCores()
		}
		if h.CPUReservedCores() > h.Cores()+1e-9 {
			return fmt.Errorf("host %d cpu reservations %v exceed capacity %v", hid, h.CPUReservedCores(), h.Cores())
		}
		if math.Abs(h.CPUReservedCores()-resSum) > 1e-9 {
			return fmt.Errorf("host %d cpu reservation accounting %v != resident sum %v", hid, h.CPUReservedCores(), resSum)
		}
		// Host memory accounting: MemUsedGB includes reservations; the
		// resident share must be consistent and total within capacity.
		if h.MemUsedGB() > h.MemoryGB()+1e-9 {
			return fmt.Errorf("host %d memory overcommitted: %v > %v", hid, h.MemUsedGB(), h.MemoryGB())
		}
		if h.MemUsedGB()+1e-9 < memSum {
			return fmt.Errorf("host %d memory accounting below resident sum: %v < %v", hid, h.MemUsedGB(), memSum)
		}
		// Unavailable hosts must be empty of residents — except a
		// crashed host, whose VMs are frozen in place until repair.
		if !h.Available() && h.NumVMs() > 0 && !h.Machine().Crashed() {
			return fmt.Errorf("host %d (%v/%v) holds %d vms while unavailable",
				hid, h.Machine().State(), h.Machine().Phase(), h.NumVMs())
		}
		// Machine coherence.
		m := h.Machine()
		switch m.Phase() {
		case power.Settled:
		case power.Entering:
			if !m.Target().IsSleep() {
				return fmt.Errorf("host %d entering non-sleep state %v", hid, m.Target())
			}
		case power.Exiting:
			if m.Target() != power.S0 {
				return fmt.Errorf("host %d exiting toward %v", hid, m.Target())
			}
		default:
			return fmt.Errorf("host %d in unknown phase %v", hid, m.Phase())
		}
		if u := m.Utilization(); u < 0 || u > 1 || math.IsNaN(u) {
			return fmt.Errorf("host %d utilization %v out of range", hid, u)
		}
	}
	// Containment ← placement.
	for i, hid := range c.placement {
		if hid == 0 {
			continue
		}
		vid := vm.ID(i + 1)
		if c.vmsByID[i] == nil {
			return fmt.Errorf("placement references unknown vm %d", vid)
		}
		h := c.hostByID(hid)
		if h == nil {
			return fmt.Errorf("vm %d placed on unknown host %d", vid, hid)
		}
		if _, resident := h.Get(vid); !resident {
			return fmt.Errorf("placement says vm %d on host %d but it is not resident", vid, hid)
		}
	}
	// Pending VMs exist and have no placement.
	for i, p := range c.pending {
		if !p {
			continue
		}
		vid := vm.ID(i + 1)
		if c.vmsByID[i] == nil {
			return fmt.Errorf("pending references unknown vm %d", vid)
		}
		if _, placed := c.Placement(vid); placed {
			return fmt.Errorf("pending vm %d has a placement", vid)
		}
	}
	// Migrating VMs run on their migration source.
	for _, mig := range c.migrations.Inflights() {
		hid, ok := c.Placement(mig.VM)
		if !ok {
			return fmt.Errorf("migrating vm %d has no placement", mig.VM)
		}
		if int(hid) != mig.Src {
			return fmt.Errorf("migrating vm %d placed on %d, migration source is %d", mig.VM, hid, mig.Src)
		}
		if c.hostByID(host.ID(mig.Dst)) == nil {
			return fmt.Errorf("migration of vm %d targets unknown host %d", mig.VM, mig.Dst)
		}
	}
	// Energy is finite and non-negative.
	if e := float64(c.TotalEnergy()); e < 0 || math.IsNaN(e) || math.IsInf(e, 0) {
		return fmt.Errorf("total energy %v out of range", e)
	}
	return nil
}
